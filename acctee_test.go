package acctee_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"acctee"
)

const doubleWAT = `
(module $double
  (memory 1)
  (global $g (mut i64) (i64.const 0))
  (func $double (param i32) (result i32)
    local.get 0
    i32.const 2
    i32.mul
  )
  (export "double" (func $double))
  (export "memory" (memory 0))
)`

// TestFacadeEndToEnd walks the full public-API workflow from WAT source to
// a verified usage log.
func TestFacadeEndToEnd(t *testing.T) {
	m, err := acctee.ParseWAT(doubleWAT)
	if err != nil {
		t.Fatal(err)
	}

	platform, err := acctee.NewPlatform("provider-1")
	if err != nil {
		t.Fatal(err)
	}
	ie, err := acctee.NewInstrumenter(acctee.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ie.Attest(platform); err != nil {
		t.Fatalf("IE attestation: %v", err)
	}
	inst, ev, err := ie.Instrument(m)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := acctee.NewSandbox(acctee.SandboxConfig{
		Ledger: acctee.LedgerOptions{Shards: 1, EagerSign: true},
	}, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	if err := sb.Attest(platform); err != nil {
		t.Fatalf("AE attestation: %v", err)
	}
	res, err := sb.Run(acctee.RunOptions{Entry: "double", Args: []uint64{21}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0] != 42 {
		t.Errorf("double(21) = %d", res.Results[0])
	}
	if res.Record.Log.WeightedInstructions != 3 {
		t.Errorf("weighted instructions = %d, want 3 (local.get, i32.const, i32.mul)",
			res.Record.Log.WeightedInstructions)
	}
	// Eager mode: the record carries its own verifiable signature.
	if err := acctee.VerifyRecord(res.Record, sb.PublicKey()); err != nil {
		t.Errorf("record verification: %v", err)
	}
	// The on-request checkpoint covers it with one batch signature, and
	// the serialised ledger replays offline.
	sc, err := sb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := acctee.VerifyCheckpoint(sc, sb.PublicKey()); err != nil {
		t.Errorf("checkpoint verification: %v", err)
	}
	dump, err := sb.Dump()
	if err != nil {
		t.Fatal(err)
	}
	vr, err := acctee.VerifyLedger(dump, sb.PublicKey())
	if err != nil {
		t.Fatalf("ledger verification: %v", err)
	}
	if vr.Records != 1 || vr.CoveredRecords != 1 || vr.EagerSignatures != 1 {
		t.Errorf("ledger verification result %+v", vr)
	}
}

func TestFacadeWATBinaryRoundTrip(t *testing.T) {
	m, err := acctee.ParseWAT(doubleWAT)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := m.Binary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := acctee.DecodeBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := back.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("binary round trip changed module identity")
	}
	if !strings.Contains(back.WAT(), "i32.mul") {
		t.Error("WAT output lost instructions")
	}
}

func TestFacadeExecute(t *testing.T) {
	m, err := acctee.ParseWAT(doubleWAT)
	if err != nil {
		t.Fatal(err)
	}
	res, err := acctee.Execute(m, "double", 8)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 16 {
		t.Errorf("double(8) = %d", res[0])
	}
}

func TestFacadeRejectsInvalidWAT(t *testing.T) {
	if _, err := acctee.ParseWAT(`(module (func $f (result i32)))`); err == nil {
		t.Error("expected validation error for missing result")
	}
}

// TestFacadeCompiledModule exercises the compile-once public API: one
// Compile, many (concurrent) pooled Executes, all agreeing with the
// one-shot Execute.
func TestFacadeCompiledModule(t *testing.T) {
	m, err := acctee.ParseWAT(doubleWAT)
	if err != nil {
		t.Fatal(err)
	}
	want, err := acctee.Execute(m, "double", 21)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				res, err := cm.Execute("double", 21)
				if err != nil {
					errs <- err
					return
				}
				if res[0] != want[0] {
					errs <- fmt.Errorf("pooled Execute = %d, want %d", res[0], want[0])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFacadeSandboxPoolConfig drives a sandbox with explicit pool knobs.
func TestFacadeSandboxPoolConfig(t *testing.T) {
	m, err := acctee.ParseWAT(doubleWAT)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := acctee.NewInstrumenter(acctee.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, ev, err := ie.Instrument(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range []acctee.PoolConfig{{Prewarm: 2}, {Disabled: true}} {
		sb, err := acctee.NewSandbox(acctee.SandboxConfig{
			Pool:   pool,
			Ledger: acctee.LedgerOptions{Shards: 1},
		}, inst, ev, ie.PublicKey())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			res, err := sb.Run(acctee.RunOptions{Entry: "double", Args: []uint64{21}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Results[0] != 42 {
				t.Errorf("pool %+v run %d: double(21) = %d", pool, i, res.Results[0])
			}
			if res.Receipt.Shard != 0 || res.Receipt.Sequence != uint64(i) {
				t.Errorf("pool %+v run %d: receipt %d/%d", pool, i, res.Receipt.Shard, res.Receipt.Sequence)
			}
		}
		sb.Close()
	}
}
