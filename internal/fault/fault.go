// Package fault is the spill pipeline's fault-injection harness: an
// Injector interposes on the file store's write/sync/truncate calls and,
// per a test-scripted schedule, fails the nth write, fails fsync, slows
// writes down, tears a write mid-frame, or "crashes" at a named point —
// after which every injected I/O fails without touching the files again,
// leaving a faithful on-disk crash image for recovery tests.
//
// All methods are nil-receiver safe: production code holds a nil *Injector
// and pays one predictable branch per I/O call. The package deliberately
// imports nothing from the accounting layer so it can be wired anywhere.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Sentinel errors returned by injected operations.
var (
	// ErrInjected is the base error for scheduled write/sync failures.
	ErrInjected = errors.New("fault: injected I/O error")
	// ErrCrashed is returned by every operation after a crash point fired:
	// the process is pretending to be dead, so no file may be touched.
	ErrCrashed = errors.New("fault: crashed")
)

// Injector schedules I/O faults. The zero value injects nothing; configure
// it with the Fail*/Slow*/Crash* methods before handing it to the store.
// Configuration and counters are guarded by one mutex — injectors sit on
// test paths where a lock per I/O is irrelevant.
type Injector struct {
	mu     sync.Mutex
	writes uint64 // completed Write interpositions (1-based in schedules)
	syncs  uint64

	failWriteFrom, failWriteN uint64 // fail writes [from, from+n)
	writeErr                  error
	tornBytes                 int // bytes persisted by a failing write (0 = none)

	failSyncFrom, failSyncN uint64
	syncErr                 error

	slowWrite time.Duration

	crashWriteAt uint64 // crash on this write ordinal (0 = disarmed)
	crashTorn    int    // bytes the crashing write leaves behind
	hits         map[string]uint64
	crashPoint   string
	crashHit     uint64 // crash on this ordinal hit of crashPoint

	crashed   bool
	crashedCh chan struct{}
}

// New returns an empty injector (injects nothing until configured).
func New() *Injector {
	return &Injector{crashedCh: make(chan struct{})}
}

// FailWrites schedules writes [from, from+n) (1-based ordinals) to fail
// with err (ErrInjected when nil). A bounded n models a transient fault
// that heals — the store's retry loop should ride it out; a huge n models
// a permanently failing disk.
func (i *Injector) FailWrites(from, n uint64, err error) {
	if err == nil {
		err = ErrInjected
	}
	i.mu.Lock()
	i.failWriteFrom, i.failWriteN, i.writeErr = from, n, err
	i.mu.Unlock()
}

// TornBytes makes every scheduled write failure first persist up to k bytes
// of the attempted buffer — a torn write, as a power cut mid-write leaves.
func (i *Injector) TornBytes(k int) {
	i.mu.Lock()
	i.tornBytes = k
	i.mu.Unlock()
}

// FailSyncs schedules syncs [from, from+n) (1-based ordinals) to fail with
// err (ErrInjected when nil).
func (i *Injector) FailSyncs(from, n uint64, err error) {
	if err == nil {
		err = ErrInjected
	}
	i.mu.Lock()
	i.failSyncFrom, i.failSyncN, i.syncErr = from, n, err
	i.mu.Unlock()
}

// SlowWrites delays every subsequent write by d, modelling a saturated or
// dying disk that has not failed outright yet.
func (i *Injector) SlowWrites(d time.Duration) {
	i.mu.Lock()
	i.slowWrite = d
	i.mu.Unlock()
}

// CrashOnWrite arms a crash at the nth write (1-based): that write persists
// exactly torn bytes of its buffer, then the injector enters the crashed
// state — every later Write/Sync/Truncate fails with ErrCrashed without
// touching files, so the directory holds a faithful mid-group-commit crash
// image (torn tail included) while the test can still Close cleanly.
func (i *Injector) CrashOnWrite(n uint64, torn int) {
	i.mu.Lock()
	i.crashWriteAt, i.crashTorn = n, torn
	i.mu.Unlock()
}

// CrashAt arms a crash at the nth Hit (1-based) of the named point.
func (i *Injector) CrashAt(point string, nth uint64) {
	i.mu.Lock()
	i.crashPoint, i.crashHit = point, nth
	i.mu.Unlock()
}

// Crash flips the injector into the crashed state immediately.
func (i *Injector) Crash() {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.crash()
	i.mu.Unlock()
}

// crash must be called with mu held.
func (i *Injector) crash() {
	if !i.crashed {
		i.crashed = true
		if i.crashedCh != nil {
			close(i.crashedCh)
		}
	}
}

// Crashed reports whether a crash point has fired.
func (i *Injector) Crashed() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// CrashedChan is closed when a crash point fires, for test synchronisation.
// Only valid on injectors built with New.
func (i *Injector) CrashedChan() <-chan struct{} { return i.crashedCh }

// Writes returns how many writes have been interposed so far.
func (i *Injector) Writes() uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.writes
}

// Syncs returns how many syncs have been interposed so far.
func (i *Injector) Syncs() uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.syncs
}

// Hits returns how many times the named point has been reached.
func (i *Injector) Hits(point string) uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[point]
}

// Hit registers reaching a named instrumentation point (e.g. the head of a
// group commit). If a crash is armed at this point and the ordinal matches,
// the injector enters the crashed state; the caller's next injected I/O
// fails with ErrCrashed.
func (i *Injector) Hit(point string) {
	if i == nil {
		return
	}
	i.mu.Lock()
	if i.hits == nil {
		i.hits = make(map[string]uint64)
	}
	i.hits[point]++
	if i.crashPoint == point && i.hits[point] == i.crashHit {
		i.crash()
	}
	i.mu.Unlock()
}

// Write interposes f.Write(b) per the schedule. A failing write reports how
// many bytes it actually tore into the file alongside the error, matching
// the contract of a real short write.
func (i *Injector) Write(f *os.File, b []byte) (int, error) {
	if i == nil {
		return f.Write(b)
	}
	i.mu.Lock()
	i.writes++
	n := i.writes
	if d := i.slowWrite; d > 0 {
		i.mu.Unlock()
		time.Sleep(d)
		i.mu.Lock()
	}
	if i.crashed {
		i.mu.Unlock()
		return 0, ErrCrashed
	}
	if i.crashWriteAt != 0 && n >= i.crashWriteAt {
		torn := i.crashTorn
		i.crash()
		i.mu.Unlock()
		wrote := 0
		if torn > 0 {
			if torn > len(b) {
				torn = len(b)
			}
			wrote, _ = f.Write(b[:torn])
		}
		return wrote, fmt.Errorf("write %d: %w", n, ErrCrashed)
	}
	if n >= i.failWriteFrom && n < i.failWriteFrom+i.failWriteN {
		torn, err := i.tornBytes, i.writeErr
		i.mu.Unlock()
		wrote := 0
		if torn > 0 {
			if torn > len(b) {
				torn = len(b)
			}
			wrote, _ = f.Write(b[:torn])
		}
		return wrote, fmt.Errorf("write %d: %w", n, err)
	}
	i.mu.Unlock()
	return f.Write(b)
}

// Sync interposes f.Sync() per the schedule.
func (i *Injector) Sync(f *os.File) error {
	if i == nil {
		return f.Sync()
	}
	i.mu.Lock()
	i.syncs++
	n := i.syncs
	if i.crashed {
		i.mu.Unlock()
		return ErrCrashed
	}
	if n >= i.failSyncFrom && n < i.failSyncFrom+i.failSyncN {
		err := i.syncErr
		i.mu.Unlock()
		return fmt.Errorf("sync %d: %w", n, err)
	}
	i.mu.Unlock()
	return f.Sync()
}

// Truncate interposes f.Truncate(size). After a crash it fails without
// touching the file: a dead process cannot clean up its torn tail, and
// recovery must cope with what is on disk.
func (i *Injector) Truncate(f *os.File, size int64) error {
	if i == nil {
		return f.Truncate(size)
	}
	i.mu.Lock()
	crashed := i.crashed
	i.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.Truncate(size)
}
