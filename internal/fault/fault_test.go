package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tmpFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func size(t *testing.T, f *os.File) int64 {
	t.Helper()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestNilInjectorPassesThrough(t *testing.T) {
	f := tmpFile(t)
	var i *Injector
	if n, err := i.Write(f, []byte("abc")); err != nil || n != 3 {
		t.Fatalf("nil Write = (%d, %v)", n, err)
	}
	if err := i.Sync(f); err != nil {
		t.Fatalf("nil Sync = %v", err)
	}
	if err := i.Truncate(f, 1); err != nil {
		t.Fatalf("nil Truncate = %v", err)
	}
	if i.Crashed() || i.Writes() != 0 {
		t.Fatal("nil injector reported state")
	}
}

func TestFailNthWriteWithTornBytes(t *testing.T) {
	f := tmpFile(t)
	i := New()
	i.FailWrites(2, 1, nil)
	i.TornBytes(2)
	if _, err := i.Write(f, []byte("aaaa")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := i.Write(f, []byte("bbbb"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: err = %v, want ErrInjected", err)
	}
	if n != 2 {
		t.Fatalf("write 2 tore %d bytes, want 2", n)
	}
	if _, err := i.Write(f, []byte("cccc")); err != nil {
		t.Fatalf("write 3 (healed): %v", err)
	}
	if got := size(t, f); got != 10 {
		t.Fatalf("file size = %d, want 10 (4 + torn 2 + 4)", got)
	}
}

func TestFailSyncs(t *testing.T) {
	f := tmpFile(t)
	i := New()
	i.FailSyncs(1, 2, nil)
	if err := i.Sync(f); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1: %v", err)
	}
	if err := i.Sync(f); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2: %v", err)
	}
	if err := i.Sync(f); err != nil {
		t.Fatalf("sync 3 (healed): %v", err)
	}
}

func TestCrashOnWriteLeavesTornTailAndGoesDead(t *testing.T) {
	f := tmpFile(t)
	i := New()
	i.CrashOnWrite(2, 3)
	if _, err := i.Write(f, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := i.Write(f, []byte("bbbbbb"))
	if !errors.Is(err, ErrCrashed) || n != 3 {
		t.Fatalf("crash write = (%d, %v), want (3, ErrCrashed)", n, err)
	}
	if !i.Crashed() {
		t.Fatal("not crashed")
	}
	select {
	case <-i.CrashedChan():
	default:
		t.Fatal("CrashedChan not closed")
	}
	// Dead: nothing may touch the file again, including cleanup truncates.
	if _, err := i.Write(f, []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := i.Sync(f); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := i.Truncate(f, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash truncate: %v", err)
	}
	if got := size(t, f); got != 7 {
		t.Fatalf("crash image size = %d, want 7 (4 + torn 3)", got)
	}
}

func TestCrashAtNamedPoint(t *testing.T) {
	f := tmpFile(t)
	i := New()
	i.CrashAt("group-commit", 3)
	i.Hit("group-commit")
	i.Hit("other")
	i.Hit("group-commit")
	if i.Crashed() {
		t.Fatal("crashed too early")
	}
	i.Hit("group-commit")
	if !i.Crashed() {
		t.Fatal("did not crash at 3rd hit")
	}
	if _, err := i.Write(f, []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if i.Hits("group-commit") != 3 || i.Hits("other") != 1 {
		t.Fatalf("hit counters wrong: %d/%d", i.Hits("group-commit"), i.Hits("other"))
	}
}
