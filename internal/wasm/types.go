// Package wasm defines the in-memory representation of WebAssembly (MVP)
// modules used throughout AccTEE: value types, the full numeric/control/
// memory instruction set, module sections, and a programmatic builder that
// serves as the repository's compiler front-end for workloads.
//
// The representation mirrors the WebAssembly 1.0 core specification closely
// enough that the binary codec (internal/wasm/binary) and the text format
// (internal/wasm/wat) are straightforward projections of it.
package wasm

import "fmt"

// ValueType is a WebAssembly value type. The constants use the binary
// encoding bytes from the specification.
type ValueType byte

// Value types of the WebAssembly MVP.
const (
	I32 ValueType = 0x7F
	I64 ValueType = 0x7E
	F32 ValueType = 0x7D
	F64 ValueType = 0x7C
)

// String returns the text-format name of the value type.
func (v ValueType) String() string {
	switch v {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("valuetype(0x%02x)", byte(v))
}

// Valid reports whether v is one of the four MVP value types.
func (v ValueType) Valid() bool {
	return v == I32 || v == I64 || v == F32 || v == F64
}

// FuncType is a function signature.
type FuncType struct {
	Params  []ValueType
	Results []ValueType
}

// Equal reports whether two signatures are identical.
func (t FuncType) Equal(o FuncType) bool {
	if len(t.Params) != len(o.Params) || len(t.Results) != len(o.Results) {
		return false
	}
	for i, p := range t.Params {
		if o.Params[i] != p {
			return false
		}
	}
	for i, r := range t.Results {
		if o.Results[i] != r {
			return false
		}
	}
	return true
}

// String renders the signature in text-format style.
func (t FuncType) String() string {
	s := "(func"
	for _, p := range t.Params {
		s += " (param " + p.String() + ")"
	}
	for _, r := range t.Results {
		s += " (result " + r.String() + ")"
	}
	return s + ")"
}

// Limits bound a memory or table size, in units of pages or elements.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// PageSize is the WebAssembly linear memory page size in bytes.
const PageSize = 64 * 1024

// Memory declares a linear memory.
type Memory struct {
	Limits Limits
}

// Table declares a funcref table.
type Table struct {
	Limits Limits
}

// Global declares a module global variable. Init must be a constant
// expression (a single const instruction in this implementation).
type Global struct {
	Type    ValueType
	Mutable bool
	Init    Instr
	Name    string // optional, for text format round-trips and debugging
}

// Import declares an imported item. Only function imports are used by the
// AccTEE runtime, but memory imports are supported for side modules.
type Import struct {
	Module string
	Name   string
	// Kind selects which of the following fields applies.
	Kind     ExternalKind
	TypeIdx  uint32 // for functions: index into Module.Types
	MemLimit Limits // for memories
}

// ExternalKind identifies the kind of an import or export.
type ExternalKind byte

// Import/export kinds, matching the binary encoding.
const (
	ExternalFunc   ExternalKind = 0
	ExternalTable  ExternalKind = 1
	ExternalMemory ExternalKind = 2
	ExternalGlobal ExternalKind = 3
)

// Export declares an exported item.
type Export struct {
	Name string
	Kind ExternalKind
	Idx  uint32
}

// Func is a function defined inside the module (not imported).
type Func struct {
	TypeIdx uint32
	Locals  []ValueType // locals beyond the parameters
	Body    []Instr     // flat structured code, terminated by OpEnd
	Name    string      // optional
}

// Element initialises a span of a table with function indices.
type Element struct {
	Offset Instr // constant expression (i32.const)
	Funcs  []uint32
}

// Data initialises a span of linear memory.
type Data struct {
	Offset Instr // constant expression (i32.const)
	Bytes  []byte
}

// Module is a complete WebAssembly module.
type Module struct {
	Types    []FuncType
	Imports  []Import
	Funcs    []Func
	Tables   []Table
	Memories []Memory
	Globals  []Global
	Exports  []Export
	Elements []Element
	Data     []Data
	Start    *uint32
	Name     string // optional module name
}

// NumImportedFuncs returns the count of imported functions; defined function
// index space starts after them.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternalFunc {
			n++
		}
	}
	return n
}

// FuncTypeAt resolves the signature of the function with the given index in
// the combined (imports-first) function index space.
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	ni := 0
	for _, im := range m.Imports {
		if im.Kind != ExternalFunc {
			continue
		}
		if uint32(ni) == idx {
			if int(im.TypeIdx) >= len(m.Types) {
				return FuncType{}, fmt.Errorf("import %s.%s: type index %d out of range", im.Module, im.Name, im.TypeIdx)
			}
			return m.Types[im.TypeIdx], nil
		}
		ni++
	}
	di := int(idx) - ni
	if di < 0 || di >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("function index %d out of range", idx)
	}
	ti := m.Funcs[di].TypeIdx
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("func %d: type index %d out of range", idx, ti)
	}
	return m.Types[ti], nil
}

// ExportedFunc looks up an exported function by name and returns its index
// in the function index space.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ExternalFunc && e.Name == name {
			return e.Idx, true
		}
	}
	return 0, false
}

// AddType interns a signature, returning its index.
func (m *Module) AddType(t FuncType) uint32 {
	for i, existing := range m.Types {
		if existing.Equal(t) {
			return uint32(i)
		}
	}
	m.Types = append(m.Types, t)
	return uint32(len(m.Types) - 1)
}

// GlobalNames returns the set of global names already present, used by the
// instrumenter to pick a fresh counter name (§3.5 of the paper).
func (m *Module) GlobalNames() map[string]bool {
	names := make(map[string]bool, len(m.Globals))
	for _, g := range m.Globals {
		if g.Name != "" {
			names[g.Name] = true
		}
	}
	return names
}

// Clone returns a deep copy of the module. Instrumentation operates on a
// copy so the caller's module is never mutated.
func (m *Module) Clone() *Module {
	c := &Module{Name: m.Name}
	if len(m.Types) > 0 {
		c.Types = make([]FuncType, len(m.Types))
	}
	for i, t := range m.Types {
		c.Types[i] = FuncType{
			Params:  append([]ValueType(nil), t.Params...),
			Results: append([]ValueType(nil), t.Results...),
		}
	}
	c.Imports = append([]Import(nil), m.Imports...)
	if len(m.Funcs) > 0 {
		c.Funcs = make([]Func, len(m.Funcs))
	}
	for i, f := range m.Funcs {
		nf := Func{TypeIdx: f.TypeIdx, Name: f.Name}
		nf.Locals = append([]ValueType(nil), f.Locals...)
		nf.Body = make([]Instr, len(f.Body))
		for j, in := range f.Body {
			ni := in
			if in.Table != nil {
				ni.Table = append([]uint32(nil), in.Table...)
			}
			nf.Body[j] = ni
		}
		c.Funcs[i] = nf
	}
	c.Tables = append([]Table(nil), m.Tables...)
	c.Memories = append([]Memory(nil), m.Memories...)
	c.Globals = append([]Global(nil), m.Globals...)
	c.Exports = append([]Export(nil), m.Exports...)
	if len(m.Elements) > 0 {
		c.Elements = make([]Element, len(m.Elements))
		for i, e := range m.Elements {
			c.Elements[i] = Element{Offset: e.Offset, Funcs: append([]uint32(nil), e.Funcs...)}
		}
	}
	if len(m.Data) > 0 {
		c.Data = make([]Data, len(m.Data))
		for i, d := range m.Data {
			c.Data[i] = Data{Offset: d.Offset, Bytes: append([]byte(nil), d.Bytes...)}
		}
	}
	if m.Start != nil {
		s := *m.Start
		c.Start = &s
	}
	return c
}
