package wasm_test

import (
	"reflect"
	"testing"

	"acctee/internal/wasm"
)

func TestFuncTypeEqual(t *testing.T) {
	a := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I64}}
	b := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I64}}
	c := wasm.FuncType{Params: []wasm.ValueType{wasm.I64}, Results: []wasm.ValueType{wasm.I64}}
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) {
		t.Error("a should not equal c")
	}
	if a.Equal(wasm.FuncType{}) {
		t.Error("a should not equal empty")
	}
}

func TestAddTypeInterns(t *testing.T) {
	m := &wasm.Module{}
	t1 := m.AddType(wasm.FuncType{Params: []wasm.ValueType{wasm.I32}})
	t2 := m.AddType(wasm.FuncType{Params: []wasm.ValueType{wasm.I32}})
	t3 := m.AddType(wasm.FuncType{Params: []wasm.ValueType{wasm.F64}})
	if t1 != t2 {
		t.Errorf("identical types interned to %d and %d", t1, t2)
	}
	if t3 == t1 {
		t.Error("distinct types interned to same index")
	}
}

func TestFuncTypeAt(t *testing.T) {
	b := wasm.NewModule("m")
	b.ImportFunc("env", "f", []wasm.ValueType{wasm.I32}, nil)
	fb := b.Func("g", []wasm.ValueType{wasm.F64}, []wasm.ValueType{wasm.F64})
	fb.LocalGet(0)
	fb.End()
	m := b.MustBuild()
	imp, err := m.FuncTypeAt(0)
	if err != nil || len(imp.Params) != 1 || imp.Params[0] != wasm.I32 {
		t.Errorf("import type: %v %v", imp, err)
	}
	def, err := m.FuncTypeAt(1)
	if err != nil || def.Params[0] != wasm.F64 {
		t.Errorf("defined type: %v %v", def, err)
	}
	if _, err := m.FuncTypeAt(2); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := wasm.NewModule("orig")
	b.Memory(1, 1)
	b.Global("g", wasm.I64, true, wasm.ConstI64(1))
	f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
	f.I32Const(7)
	b.ExportFunc("f", f.End())
	b.Data(0, []byte{1, 2, 3})
	m := b.MustBuild()
	c := m.Clone()
	if !reflect.DeepEqual(m, c) {
		t.Fatal("clone differs from original")
	}
	c.Funcs[0].Body[0] = wasm.ConstI32(9)
	c.Data[0].Bytes[0] = 42
	c.Globals[0].Name = "h"
	if m.Funcs[0].Body[0].I32Val() != 7 {
		t.Error("mutating clone body changed original")
	}
	if m.Data[0].Bytes[0] != 1 {
		t.Error("mutating clone data changed original")
	}
	if m.Globals[0].Name != "g" {
		t.Error("mutating clone global changed original")
	}
}

func TestValidateStructure(t *testing.T) {
	cases := []struct {
		name string
		body []wasm.Instr
		ok   bool
	}{
		{"empty-end", []wasm.Instr{{Op: wasm.OpEnd}}, true},
		{"missing-end", []wasm.Instr{{Op: wasm.OpNop}}, false},
		{"unbalanced", []wasm.Instr{{Op: wasm.OpBlock, BT: wasm.BlockEmpty}, {Op: wasm.OpEnd}}, false},
		{"balanced", []wasm.Instr{
			{Op: wasm.OpBlock, BT: wasm.BlockEmpty}, {Op: wasm.OpEnd}, {Op: wasm.OpEnd},
		}, true},
	}
	for _, tc := range cases {
		err := wasm.ValidateStructure(tc.body)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestGlobalNames(t *testing.T) {
	b := wasm.NewModule("m")
	b.Global("alpha", wasm.I64, true, wasm.ConstI64(0))
	b.Global("", wasm.I32, false, wasm.ConstI32(0))
	m := b.MustBuild()
	names := m.GlobalNames()
	if !names["alpha"] || len(names) != 1 {
		t.Errorf("names = %v", names)
	}
}

func TestCountBodyInstrs(t *testing.T) {
	body := []wasm.Instr{
		{Op: wasm.OpBlock, BT: wasm.BlockEmpty},
		wasm.ConstI32(1),
		{Op: wasm.OpDrop},
		{Op: wasm.OpEnd},
		{Op: wasm.OpEnd},
	}
	// block, const, drop count; the two ends do not.
	if n := wasm.CountBodyInstrs(body); n != 3 {
		t.Errorf("count = %d, want 3", n)
	}
}

func TestOpcodeNamesRoundTrip(t *testing.T) {
	for _, op := range wasm.AllOpcodes() {
		name := op.String()
		back, ok := wasm.OpcodeByName(name)
		if !ok || back != op {
			t.Errorf("opcode %#x name %q did not round-trip", byte(op), name)
		}
	}
	if len(wasm.AllOpcodes()) != 172 {
		t.Errorf("expected 172 MVP opcodes, got %d", len(wasm.AllOpcodes()))
	}
}

func TestBuilderRejectsLateImports(t *testing.T) {
	b := wasm.NewModule("m")
	f := b.Func("f", nil, nil)
	f.End()
	b.ImportFunc("env", "late", nil, nil)
	if _, err := b.Build(); err == nil {
		t.Error("expected error for import after defined function")
	}
}
