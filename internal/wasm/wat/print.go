// Package wat implements the WebAssembly text format for AccTEE modules.
// The paper's instrumentation pass operates on the text format because it is
// "easier to parse, analyze and manipulate" (§4); this package provides the
// same capability: a printer producing linear-style WAT and a parser
// accepting it back, with a round-trip identity guarantee over the AST.
package wat

import (
	"fmt"
	"strconv"
	"strings"

	"acctee/internal/wasm"
)

// Print renders a module as WebAssembly text.
func Print(m *wasm.Module) string {
	var b strings.Builder
	p := printer{w: &b, m: m}
	p.module()
	return b.String()
}

type printer struct {
	w *strings.Builder
	m *wasm.Module
}

func (p *printer) line(depth int, s string) {
	for i := 0; i < depth; i++ {
		p.w.WriteString("  ")
	}
	p.w.WriteString(s)
	p.w.WriteByte('\n')
}

func (p *printer) module() {
	head := "(module"
	if p.m.Name != "" {
		head += " $" + p.m.Name
	}
	p.line(0, head)
	for _, im := range p.m.Imports {
		p.importDecl(im)
	}
	for i, mem := range p.m.Memories {
		_ = i
		s := "(memory " + strconv.FormatUint(uint64(mem.Limits.Min), 10)
		if mem.Limits.HasMax {
			s += " " + strconv.FormatUint(uint64(mem.Limits.Max), 10)
		}
		p.line(1, s+")")
	}
	for _, t := range p.m.Tables {
		s := "(table " + strconv.FormatUint(uint64(t.Limits.Min), 10)
		if t.Limits.HasMax {
			s += " " + strconv.FormatUint(uint64(t.Limits.Max), 10)
		}
		p.line(1, s+" funcref)")
	}
	for i, g := range p.m.Globals {
		ty := g.Type.String()
		if g.Mutable {
			ty = "(mut " + ty + ")"
		}
		name := ""
		if g.Name != "" {
			name = " $" + g.Name
		} else {
			name = " $g" + strconv.Itoa(i)
		}
		p.line(1, "(global"+name+" "+ty+" ("+g.Init.String()+"))")
	}
	for i := range p.m.Funcs {
		p.funcDecl(uint32(p.m.NumImportedFuncs()+i), &p.m.Funcs[i])
	}
	for _, e := range p.m.Elements {
		s := "(elem (" + e.Offset.String() + ")"
		for _, f := range e.Funcs {
			s += " " + strconv.FormatUint(uint64(f), 10)
		}
		p.line(1, s+")")
	}
	for _, d := range p.m.Data {
		p.line(1, "(data ("+d.Offset.String()+") "+quoteBytes(d.Bytes)+")")
	}
	for _, e := range p.m.Exports {
		kind := exportKind(e.Kind)
		p.line(1, `(export "`+escape(e.Name)+`" (`+kind+" "+strconv.FormatUint(uint64(e.Idx), 10)+"))")
	}
	if p.m.Start != nil {
		p.line(1, "(start "+strconv.FormatUint(uint64(*p.m.Start), 10)+")")
	}
	p.line(0, ")")
}

func exportKind(k wasm.ExternalKind) string {
	switch k {
	case wasm.ExternalFunc:
		return "func"
	case wasm.ExternalTable:
		return "table"
	case wasm.ExternalMemory:
		return "memory"
	default:
		return "global"
	}
}

func (p *printer) importDecl(im wasm.Import) {
	switch im.Kind {
	case wasm.ExternalFunc:
		t := p.m.Types[im.TypeIdx]
		s := `(import "` + escape(im.Module) + `" "` + escape(im.Name) + `" (func` + sigString(t) + "))"
		p.line(1, s)
	case wasm.ExternalMemory:
		s := `(import "` + escape(im.Module) + `" "` + escape(im.Name) + `" (memory ` +
			strconv.FormatUint(uint64(im.MemLimit.Min), 10)
		if im.MemLimit.HasMax {
			s += " " + strconv.FormatUint(uint64(im.MemLimit.Max), 10)
		}
		p.line(1, s+"))")
	}
}

func sigString(t wasm.FuncType) string {
	s := ""
	if len(t.Params) > 0 {
		s += " (param"
		for _, v := range t.Params {
			s += " " + v.String()
		}
		s += ")"
	}
	if len(t.Results) > 0 {
		s += " (result"
		for _, v := range t.Results {
			s += " " + v.String()
		}
		s += ")"
	}
	return s
}

func (p *printer) funcDecl(idx uint32, f *wasm.Func) {
	t := p.m.Types[f.TypeIdx]
	head := "(func"
	if f.Name != "" {
		head += " $" + f.Name
	} else {
		head += " $f" + strconv.FormatUint(uint64(idx), 10)
	}
	head += sigString(t)
	p.line(1, head)
	if len(f.Locals) > 0 {
		s := "(local"
		for _, l := range f.Locals {
			s += " " + l.String()
		}
		p.line(2, s+")")
	}
	depth := 2
	for i, in := range f.Body {
		if i == len(f.Body)-1 && in.Op == wasm.OpEnd {
			break // implicit function-closing end
		}
		switch in.Op {
		case wasm.OpEnd:
			depth--
			p.line(depth, "end")
		case wasm.OpElse:
			p.line(depth-1, "else")
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			p.line(depth, in.String())
			depth++
		default:
			p.line(depth, in.String())
		}
	}
	p.line(1, ")")
}

func quoteBytes(bs []byte) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, c := range bs {
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c >= 0x20 && c < 0x7F:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "\\%02x", c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func escape(s string) string {
	var b strings.Builder
	for _, c := range []byte(s) {
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c >= 0x20 && c < 0x7F:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "\\%02x", c)
		}
	}
	return b.String()
}
