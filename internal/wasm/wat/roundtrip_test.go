package wat_test

import (
	"math/rand"
	"testing"

	"acctee/internal/interp"
	"acctee/internal/wasm"
	"acctee/internal/wasm/wat"
	"acctee/internal/weights"
)

// TestRandomModulesRoundTripExecution is the text-format equivalence
// property: for randomly generated structured programs, printing to WAT and
// parsing back yields a module with identical execution behaviour —
// results AND weighted instruction counts (the quantity AccTEE bills).
func TestRandomModulesRoundTripExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(0x57A7))
	for trial := 0; trial < 40; trial++ {
		m := randomWatModule(rng)
		text := wat.Print(m)
		back, err := wat.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, text)
		}
		arg := uint64(rng.Intn(30))
		r1, c1, err1 := runCounted(m, arg)
		r2, c2, err2 := runCounted(back, arg)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: trap divergence: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if r1 != r2 || c1 != c2 {
			t.Errorf("trial %d: behaviour diverged: result %d/%d, count %d/%d",
				trial, r1, r2, c1, c2)
		}
	}
}

func runCounted(m *wasm.Module, arg uint64) (uint64, uint64, error) {
	vm, err := interp.Instantiate(m, interp.Config{CostModel: weights.Unit(), Fuel: 1 << 20})
	if err != nil {
		return 0, 0, err
	}
	res, err := vm.InvokeExport("main", arg)
	if err != nil {
		return 0, 0, err
	}
	return res[0], vm.Cost(), nil
}

// randomWatModule generates random structured programs over i32/i64 locals
// with memory traffic, mirroring the generator used by the instrumentation
// property tests.
func randomWatModule(rng *rand.Rand) *wasm.Module {
	b := wasm.NewModule("rand")
	b.Memory(1, 2)
	g := b.Global("acc64", wasm.I64, true, wasm.ConstI64(1))
	f := b.Func("main", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	x := f.Local(wasm.I32)
	f.LocalGet(0).LocalSet(x)

	var gen func(depth int)
	stmt := func() {
		switch rng.Intn(6) {
		case 0:
			f.LocalGet(x).I32Const(int32(rng.Intn(9) + 1)).Op(wasm.OpI32Add).LocalSet(x)
		case 1:
			f.LocalGet(x).I32Const(int32(rng.Intn(13) + 1)).Op(wasm.OpI32RemU).LocalSet(x)
		case 2:
			// memory round trip at a bounded address
			f.LocalGet(x).I32Const(1023).Op(wasm.OpI32And)
			f.LocalGet(x)
			f.Store(wasm.OpI32Store, 64)
			f.LocalGet(x).I32Const(1023).Op(wasm.OpI32And)
			f.Load(wasm.OpI32Load, 64)
			f.LocalGet(x).Op(wasm.OpI32Xor).LocalSet(x)
		case 3:
			f.GlobalGet(g).I64ConstV(int64(rng.Intn(5) + 1)).Op(wasm.OpI64Mul).GlobalSet(g)
		case 4:
			f.LocalGet(x).Op(wasm.OpI32Popcnt).LocalSet(x)
		case 5:
			f.LocalGet(x).I64ConstV(3).Op(wasm.OpI64ExtendI32U).Op(wasm.OpI64Add).Op(wasm.OpI32WrapI64).LocalSet(x)
		}
	}
	gen = func(depth int) {
		for k := rng.Intn(3) + 1; k > 0; k-- {
			switch c := rng.Intn(8); {
			case c < 4 || depth >= 3:
				stmt()
			case c < 6:
				f.LocalGet(x).I32Const(1).Op(wasm.OpI32And)
				f.If(wasm.BlockEmpty, func() { gen(depth + 1) }, func() { gen(depth + 1) })
			default:
				i := f.Local(wasm.I32)
				f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(int32(rng.Intn(5)))}, 1, func() {
					gen(depth + 1)
				})
			}
		}
	}
	gen(0)
	f.GlobalGet(g).Op(wasm.OpI32WrapI64).LocalGet(x).Op(wasm.OpI32Add)
	b.ExportFunc("main", f.End())
	return b.MustBuild()
}
