package wat_test

import (
	"reflect"
	"testing"

	"acctee/internal/wasm"
	"acctee/internal/wasm/wat"
)

// complexModule builds a module exercising every construct the printer and
// parser must handle.
func complexModule() *wasm.Module {
	b := wasm.NewModule("kitchen")
	emit := b.ImportFunc("env", "emit", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	b.Memory(1, 16)
	g := b.Global("wic", wasm.I64, true, wasm.ConstI64(0))
	b.Data(16, []byte("hi\x00\xff\"\\"))

	f := b.Func("main", []wasm.ValueType{wasm.I32, wasm.F64}, []wasm.ValueType{wasm.I32})
	l := f.Local(wasm.I32)
	f.GlobalGet(g).I64ConstV(3).Op(wasm.OpI64Add).GlobalSet(g)
	f.LocalGet(0).Call(emit).LocalSet(l)
	f.ForI32(l, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(4)}, 1, func() {
		f.LocalGet(l).LocalGet(l).Store(wasm.OpI32Store, 64)
	})
	f.LocalGet(1).F64ConstV(1.5).Op(wasm.OpF64Mul).Op(wasm.OpI32TruncF64S)
	f.If(wasm.BlockOf(wasm.I32), func() {
		f.I32Const(1)
	}, func() {
		f.I32Const(0)
	})
	b.ExportFunc("main", f.End())

	h := b.Func("helper", nil, nil)
	h.Block(wasm.BlockEmpty, func() {
		h.I32Const(1).BrIf(0)
		h.Emit(wasm.Instr{Op: wasm.OpBrTable, Table: []uint32{0, 0}})
	})
	hIdx := h.End()
	b.Table(hIdx)
	return b.MustBuild()
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := complexModule()
	text := wat.Print(m)
	back, err := wat.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	// Names of functions/globals survive only partially (auto names differ),
	// so blank them before comparing.
	norm := func(m *wasm.Module) *wasm.Module {
		c := m.Clone()
		for i := range c.Funcs {
			c.Funcs[i].Name = ""
		}
		for i := range c.Globals {
			c.Globals[i].Name = ""
		}
		c.Name = ""
		return c
	}
	a, bm := norm(m), norm(back)
	if !reflect.DeepEqual(a, bm) {
		t.Fatalf("round-trip mismatch\n--- original ---\n%s\n--- reprinted ---\n%s", text, wat.Print(back))
	}
}

func TestPrintParseIdempotent(t *testing.T) {
	m := complexModule()
	t1 := wat.Print(m)
	back, err := wat.Parse(t1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	t2 := wat.Print(back)
	back2, err := wat.Parse(t2)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	t3 := wat.Print(back2)
	if t2 != t3 {
		t.Error("printing is not a fixed point after one round trip")
	}
}

func TestParseHandWritten(t *testing.T) {
	src := `
(module $demo
  ;; a line comment
  (memory 1)
  (global $c (mut i64) (i64.const 0))
  (func $double (param i32) (result i32)
    local.get 0
    i32.const 2
    i32.mul
  )
  (export "double" (func $double))
  (export "memory" (memory 0))
)`
	m, err := wat.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Name != "demo" || len(m.Funcs) != 1 || len(m.Globals) != 1 {
		t.Fatalf("unexpected module shape: %+v", m)
	}
	idx, ok := m.ExportedFunc("double")
	if !ok || idx != 0 {
		t.Errorf("export double: idx=%d ok=%v", idx, ok)
	}
	if got := len(m.Funcs[0].Body); got != 4 { // 3 instrs + end
		t.Errorf("body len = %d, want 4", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"(module",
		`(module (func $f (result i32) bogus.op))`,
		`(module (data (i32.const 0)))`,
		`(module (export "x" (func $missing)))`,
	}
	for _, src := range cases {
		if _, err := wat.Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestBlockCommentsAndStrings(t *testing.T) {
	src := `(module (; block (; nested ;) comment ;) (memory 2 4))`
	m, err := wat.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(m.Memories) != 1 || m.Memories[0].Limits.Min != 2 || m.Memories[0].Limits.Max != 4 {
		t.Errorf("memory = %+v", m.Memories)
	}
}
