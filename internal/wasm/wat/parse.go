package wat

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"acctee/internal/wasm"
)

// Parse reads WebAssembly text (the linear style emitted by Print, which is
// also what common toolchains produce with --fold-expr disabled) and builds
// a module.
func Parse(src string) (*wasm.Module, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	sx, rest, err := parseSexpr(toks)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wat: trailing tokens after module")
	}
	p := &modParser{
		m:       &wasm.Module{},
		funcIdx: map[string]uint32{},
		globIdx: map[string]uint32{},
	}
	if err := p.module(sx); err != nil {
		return nil, err
	}
	return p.m, nil
}

// ---------------------------------------------------------------------------
// tokenizer

type token struct {
	kind byte // '(' ')' 'a' atom, 's' string
	text string
}

func tokenize(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ';' && i+1 < len(src) && src[i+1] == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(':
			if i+1 < len(src) && src[i+1] == ';' {
				depth := 1
				i += 2
				for i < len(src) && depth > 0 {
					if src[i] == '(' && i+1 < len(src) && src[i+1] == ';' {
						depth++
						i++
					} else if src[i] == ';' && i+1 < len(src) && src[i+1] == ')' {
						depth--
						i++
					}
					i++
				}
				continue
			}
			toks = append(toks, token{kind: '('})
			i++
		case c == ')':
			toks = append(toks, token{kind: ')'})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					if j+1 >= len(src) {
						return nil, fmt.Errorf("wat: unterminated escape")
					}
					n := src[j+1]
					switch n {
					case '"', '\\':
						sb.WriteByte(n)
						j += 2
					case 'n':
						sb.WriteByte('\n')
						j += 2
					case 't':
						sb.WriteByte('\t')
						j += 2
					default:
						if j+2 >= len(src) {
							return nil, fmt.Errorf("wat: bad escape")
						}
						v, err := strconv.ParseUint(src[j+1:j+3], 16, 8)
						if err != nil {
							return nil, fmt.Errorf("wat: bad hex escape %q", src[j+1:j+3])
						}
						sb.WriteByte(byte(v))
						j += 3
					}
					continue
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("wat: unterminated string")
			}
			toks = append(toks, token{kind: 's', text: sb.String()})
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r()\";", rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: 'a', text: src[i:j]})
			i = j
		}
	}
	return toks, nil
}

// ---------------------------------------------------------------------------
// generic s-expressions

type sexpr struct {
	atom  string // set when leaf
	str   string // set when string leaf
	isStr bool
	list  []sexpr
	leaf  bool
}

func parseSexpr(toks []token) (sexpr, []token, error) {
	if len(toks) == 0 {
		return sexpr{}, nil, fmt.Errorf("wat: unexpected end of input")
	}
	t := toks[0]
	switch t.kind {
	case 'a':
		return sexpr{atom: t.text, leaf: true}, toks[1:], nil
	case 's':
		return sexpr{str: t.text, isStr: true, leaf: true}, toks[1:], nil
	case '(':
		toks = toks[1:]
		var items []sexpr
		for {
			if len(toks) == 0 {
				return sexpr{}, nil, fmt.Errorf("wat: missing )")
			}
			if toks[0].kind == ')' {
				return sexpr{list: items}, toks[1:], nil
			}
			item, rest, err := parseSexpr(toks)
			if err != nil {
				return sexpr{}, nil, err
			}
			items = append(items, item)
			toks = rest
		}
	default:
		return sexpr{}, nil, fmt.Errorf("wat: unexpected )")
	}
}

func (s sexpr) head() string {
	if len(s.list) > 0 && s.list[0].leaf {
		return s.list[0].atom
	}
	return ""
}

// ---------------------------------------------------------------------------
// module parsing

type modParser struct {
	m       *wasm.Module
	funcIdx map[string]uint32
	globIdx map[string]uint32
}

func (p *modParser) module(sx sexpr) error {
	if sx.head() != "module" {
		return fmt.Errorf("wat: expected (module ...)")
	}
	decls := sx.list[1:]
	if len(decls) > 0 && decls[0].leaf && strings.HasPrefix(decls[0].atom, "$") {
		p.m.Name = decls[0].atom[1:]
		decls = decls[1:]
	}
	// Pass 1: assign indices for names (imports first, then funcs/globals).
	fi := uint32(0)
	for _, d := range decls {
		if d.head() == "import" && len(d.list) == 4 && d.list[3].head() == "func" {
			fi++
		}
	}
	nImports := fi
	_ = nImports
	for _, d := range decls {
		switch d.head() {
		case "func":
			if len(d.list) > 1 && d.list[1].leaf && strings.HasPrefix(d.list[1].atom, "$") {
				p.funcIdx[d.list[1].atom[1:]] = fi
			}
			fi++
		case "global":
			if len(d.list) > 1 && d.list[1].leaf && strings.HasPrefix(d.list[1].atom, "$") {
				p.globIdx[d.list[1].atom[1:]] = uint32(len(p.globIdx))
			}
		}
	}
	// Pass 2: build.
	for _, d := range decls {
		if err := p.decl(d); err != nil {
			return err
		}
	}
	return nil
}

func (p *modParser) decl(d sexpr) error {
	switch d.head() {
	case "import":
		return p.importDecl(d)
	case "memory":
		lim, err := parseLimits(d.list[1:])
		if err != nil {
			return err
		}
		p.m.Memories = append(p.m.Memories, wasm.Memory{Limits: lim})
		return nil
	case "table":
		args := d.list[1:]
		// strip trailing "funcref"
		if n := len(args); n > 0 && args[n-1].leaf && args[n-1].atom == "funcref" {
			args = args[:n-1]
		}
		lim, err := parseLimits(args)
		if err != nil {
			return err
		}
		p.m.Tables = append(p.m.Tables, wasm.Table{Limits: lim})
		return nil
	case "global":
		return p.globalDecl(d)
	case "func":
		return p.funcDecl(d)
	case "elem":
		return p.elemDecl(d)
	case "data":
		return p.dataDecl(d)
	case "export":
		return p.exportDecl(d)
	case "start":
		idx, err := p.funcRef(d.list[1])
		if err != nil {
			return err
		}
		p.m.Start = &idx
		return nil
	default:
		return fmt.Errorf("wat: unsupported declaration %q", d.head())
	}
}

func parseLimits(args []sexpr) (wasm.Limits, error) {
	var lim wasm.Limits
	if len(args) == 0 {
		return lim, fmt.Errorf("wat: missing limits")
	}
	v, err := strconv.ParseUint(args[0].atom, 10, 32)
	if err != nil {
		return lim, fmt.Errorf("wat: bad limit %q", args[0].atom)
	}
	lim.Min = uint32(v)
	if len(args) > 1 && args[1].leaf {
		v, err := strconv.ParseUint(args[1].atom, 10, 32)
		if err != nil {
			return lim, fmt.Errorf("wat: bad limit %q", args[1].atom)
		}
		lim.Max = uint32(v)
		lim.HasMax = true
	}
	return lim, nil
}

func (p *modParser) importDecl(d sexpr) error {
	if len(d.list) != 4 || !d.list[1].isStr || !d.list[2].isStr {
		return fmt.Errorf("wat: malformed import")
	}
	desc := d.list[3]
	switch desc.head() {
	case "func":
		params, results := parseSig(desc.list[1:])
		ti := p.m.AddType(wasm.FuncType{Params: params, Results: results})
		p.m.Imports = append(p.m.Imports, wasm.Import{
			Module: d.list[1].str, Name: d.list[2].str,
			Kind: wasm.ExternalFunc, TypeIdx: ti,
		})
	case "memory":
		lim, err := parseLimits(desc.list[1:])
		if err != nil {
			return err
		}
		p.m.Imports = append(p.m.Imports, wasm.Import{
			Module: d.list[1].str, Name: d.list[2].str,
			Kind: wasm.ExternalMemory, MemLimit: lim,
		})
	default:
		return fmt.Errorf("wat: unsupported import kind %q", desc.head())
	}
	return nil
}

func parseSig(items []sexpr) (params, results []wasm.ValueType) {
	for _, it := range items {
		switch it.head() {
		case "param":
			for _, v := range it.list[1:] {
				if vt, ok := valueType(v.atom); ok {
					params = append(params, vt)
				}
			}
		case "result":
			for _, v := range it.list[1:] {
				if vt, ok := valueType(v.atom); ok {
					results = append(results, vt)
				}
			}
		}
	}
	return params, results
}

func valueType(s string) (wasm.ValueType, bool) {
	switch s {
	case "i32":
		return wasm.I32, true
	case "i64":
		return wasm.I64, true
	case "f32":
		return wasm.F32, true
	case "f64":
		return wasm.F64, true
	}
	return 0, false
}

func (p *modParser) globalDecl(d sexpr) error {
	items := d.list[1:]
	name := ""
	if len(items) > 0 && items[0].leaf && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom[1:]
		items = items[1:]
	}
	if len(items) < 2 {
		return fmt.Errorf("wat: malformed global")
	}
	var vt wasm.ValueType
	mutable := false
	if items[0].leaf {
		v, ok := valueType(items[0].atom)
		if !ok {
			return fmt.Errorf("wat: bad global type %q", items[0].atom)
		}
		vt = v
	} else if items[0].head() == "mut" {
		v, ok := valueType(items[0].list[1].atom)
		if !ok {
			return fmt.Errorf("wat: bad global type")
		}
		vt = v
		mutable = true
	}
	init, err := parseConstExpr(items[1])
	if err != nil {
		return err
	}
	p.m.Globals = append(p.m.Globals, wasm.Global{Type: vt, Mutable: mutable, Init: init, Name: name})
	return nil
}

func parseConstExpr(s sexpr) (wasm.Instr, error) {
	if len(s.list) != 2 {
		return wasm.Instr{}, fmt.Errorf("wat: malformed constant expression")
	}
	op, ok := wasm.OpcodeByName(s.list[0].atom)
	if !ok {
		return wasm.Instr{}, fmt.Errorf("wat: unknown const op %q", s.list[0].atom)
	}
	return constInstr(op, s.list[1].atom)
}

func constInstr(op wasm.Opcode, lit string) (wasm.Instr, error) {
	switch op {
	case wasm.OpI32Const:
		v, err := parseIntLit(lit, 32)
		if err != nil {
			return wasm.Instr{}, err
		}
		return wasm.ConstI32(int32(v)), nil
	case wasm.OpI64Const:
		v, err := parseIntLit(lit, 64)
		if err != nil {
			return wasm.Instr{}, err
		}
		return wasm.ConstI64(v), nil
	case wasm.OpF32Const:
		f, err := parseFloatLit(lit)
		if err != nil {
			return wasm.Instr{}, err
		}
		return wasm.ConstF32(float32(f)), nil
	case wasm.OpF64Const:
		f, err := parseFloatLit(lit)
		if err != nil {
			return wasm.Instr{}, err
		}
		return wasm.ConstF64(f), nil
	}
	return wasm.Instr{}, fmt.Errorf("wat: %s is not a constant op", op)
}

func parseIntLit(s string, bits int) (int64, error) {
	if v, err := strconv.ParseInt(s, 0, bits); err == nil {
		return v, nil
	}
	// Accept the unsigned form too (e.g. 4294967295 for i32 -1).
	u, err := strconv.ParseUint(s, 0, bits)
	if err != nil {
		return 0, fmt.Errorf("wat: bad integer literal %q", s)
	}
	return int64(u), nil
}

func parseFloatLit(s string) (float64, error) {
	switch s {
	case "nan":
		return math.NaN(), nil
	case "inf":
		return math.Inf(1), nil
	case "-inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func (p *modParser) elemDecl(d sexpr) error {
	items := d.list[1:]
	if len(items) < 1 {
		return fmt.Errorf("wat: malformed elem")
	}
	off, err := parseConstExpr(items[0])
	if err != nil {
		return err
	}
	var funcs []uint32
	for _, it := range items[1:] {
		idx, err := p.funcRef(it)
		if err != nil {
			return err
		}
		funcs = append(funcs, idx)
	}
	p.m.Elements = append(p.m.Elements, wasm.Element{Offset: off, Funcs: funcs})
	return nil
}

func (p *modParser) dataDecl(d sexpr) error {
	items := d.list[1:]
	if len(items) != 2 || !items[1].isStr {
		return fmt.Errorf("wat: malformed data segment")
	}
	off, err := parseConstExpr(items[0])
	if err != nil {
		return err
	}
	p.m.Data = append(p.m.Data, wasm.Data{Offset: off, Bytes: []byte(items[1].str)})
	return nil
}

func (p *modParser) exportDecl(d sexpr) error {
	if len(d.list) != 3 || !d.list[1].isStr {
		return fmt.Errorf("wat: malformed export")
	}
	desc := d.list[2]
	var kind wasm.ExternalKind
	switch desc.head() {
	case "func":
		kind = wasm.ExternalFunc
	case "memory":
		kind = wasm.ExternalMemory
	case "table":
		kind = wasm.ExternalTable
	case "global":
		kind = wasm.ExternalGlobal
	default:
		return fmt.Errorf("wat: bad export kind %q", desc.head())
	}
	var idx uint32
	var err error
	if kind == wasm.ExternalFunc {
		idx, err = p.funcRef(desc.list[1])
	} else {
		idx, err = p.indexRef(desc.list[1], nil)
	}
	if err != nil {
		return err
	}
	p.m.Exports = append(p.m.Exports, wasm.Export{Name: d.list[1].str, Kind: kind, Idx: idx})
	return nil
}

func (p *modParser) funcRef(s sexpr) (uint32, error) { return p.indexRef(s, p.funcIdx) }

func (p *modParser) indexRef(s sexpr, names map[string]uint32) (uint32, error) {
	if !s.leaf {
		return 0, fmt.Errorf("wat: expected index")
	}
	if strings.HasPrefix(s.atom, "$") {
		if names != nil {
			if idx, ok := names[s.atom[1:]]; ok {
				return idx, nil
			}
		}
		return 0, fmt.Errorf("wat: unknown name %s", s.atom)
	}
	v, err := strconv.ParseUint(s.atom, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("wat: bad index %q", s.atom)
	}
	return uint32(v), nil
}

// ---------------------------------------------------------------------------
// function bodies

func (p *modParser) funcDecl(d sexpr) error {
	items := d.list[1:]
	name := ""
	if len(items) > 0 && items[0].leaf && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom[1:]
		items = items[1:]
	}
	// signature lists come first
	var sigItems []sexpr
	for len(items) > 0 && !items[0].leaf && (items[0].head() == "param" || items[0].head() == "result") {
		sigItems = append(sigItems, items[0])
		items = items[1:]
	}
	params, results := parseSig(sigItems)
	fn := wasm.Func{Name: name, TypeIdx: p.m.AddType(wasm.FuncType{Params: params, Results: results})}
	for len(items) > 0 && !items[0].leaf && items[0].head() == "local" {
		for _, v := range items[0].list[1:] {
			if vt, ok := valueType(v.atom); ok {
				fn.Locals = append(fn.Locals, vt)
			}
		}
		items = items[1:]
	}
	body, err := p.body(items)
	if err != nil {
		return fmt.Errorf("wat: func %q: %w", name, err)
	}
	fn.Body = append(body, wasm.Instr{Op: wasm.OpEnd})
	p.m.Funcs = append(p.m.Funcs, fn)
	return nil
}

// body parses the linear instruction sequence of a function.
func (p *modParser) body(items []sexpr) ([]wasm.Instr, error) {
	var out []wasm.Instr
	i := 0
	next := func() (sexpr, bool) {
		if i < len(items) {
			s := items[i]
			i++
			return s, true
		}
		return sexpr{}, false
	}
	peekList := func(head string) (sexpr, bool) {
		if i < len(items) && !items[i].leaf && items[i].head() == head {
			s := items[i]
			i++
			return s, true
		}
		return sexpr{}, false
	}
	for i < len(items) {
		it, _ := next()
		if !it.leaf {
			return nil, fmt.Errorf("unexpected list %q in body", it.head())
		}
		opName := it.atom
		op, ok := wasm.OpcodeByName(opName)
		if !ok {
			return nil, fmt.Errorf("unknown instruction %q", opName)
		}
		in := wasm.Instr{Op: op}
		switch op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			in.BT = wasm.BlockEmpty
			if res, ok := peekList("result"); ok {
				vt, okv := valueType(res.list[1].atom)
				if !okv {
					return nil, fmt.Errorf("bad block result type")
				}
				in.BT = wasm.BlockOf(vt)
			}
		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			lit, ok := next()
			if !ok {
				return nil, fmt.Errorf("%s: missing literal", opName)
			}
			ci, err := constInstr(op, lit.atom)
			if err != nil {
				return nil, err
			}
			in = ci
		case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee, wasm.OpBr, wasm.OpBrIf:
			lit, ok := next()
			if !ok {
				return nil, fmt.Errorf("%s: missing index", opName)
			}
			idx, err := p.indexRef(lit, nil)
			if err != nil {
				return nil, err
			}
			in.Idx = idx
		case wasm.OpGlobalGet, wasm.OpGlobalSet:
			lit, ok := next()
			if !ok {
				return nil, fmt.Errorf("%s: missing index", opName)
			}
			idx, err := p.indexRef(lit, p.globIdx)
			if err != nil {
				return nil, err
			}
			in.Idx = idx
		case wasm.OpCall:
			lit, ok := next()
			if !ok {
				return nil, fmt.Errorf("call: missing target")
			}
			idx, err := p.funcRef(lit)
			if err != nil {
				return nil, err
			}
			in.Idx = idx
		case wasm.OpCallIndirect:
			if tl, ok := peekList("type"); ok {
				idx, err := p.indexRef(tl.list[1], nil)
				if err != nil {
					return nil, err
				}
				in.Idx = idx
			}
		case wasm.OpBrTable:
			for i < len(items) && items[i].leaf {
				if _, err := strconv.ParseUint(items[i].atom, 10, 32); err != nil {
					break
				}
				v, _ := strconv.ParseUint(items[i].atom, 10, 32)
				in.Table = append(in.Table, uint32(v))
				i++
			}
			if len(in.Table) == 0 {
				return nil, fmt.Errorf("br_table: missing targets")
			}
		default:
			if op.IsMemAccess() {
				in.Align = wasm.NaturalAlign(op)
				for i < len(items) && items[i].leaf {
					a := items[i].atom
					if strings.HasPrefix(a, "offset=") {
						v, err := strconv.ParseUint(a[len("offset="):], 10, 32)
						if err != nil {
							return nil, fmt.Errorf("bad offset %q", a)
						}
						in.Off = uint32(v)
						i++
					} else if strings.HasPrefix(a, "align=") {
						v, err := strconv.ParseUint(a[len("align="):], 10, 32)
						if err != nil {
							return nil, fmt.Errorf("bad align %q", a)
						}
						// store the exponent form used internally
						exp := uint32(0)
						for (uint32(1) << exp) < uint32(v) {
							exp++
						}
						in.Align = exp
						i++
					} else {
						break
					}
				}
			}
		}
		out = append(out, in)
	}
	return out, nil
}
