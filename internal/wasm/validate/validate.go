// Package validate implements WebAssembly module validation (stack typing,
// label discipline, index bounds). AccTEE validates modules twice: the
// instrumentation enclave validates its input before instrumenting, and the
// accounting enclave validates the instrumented module before execution —
// the language-based half of the two-way sandbox depends on it.
package validate

import (
	"fmt"

	"acctee/internal/wasm"
)

// Module validates an entire module.
func Module(m *wasm.Module) error {
	for i, t := range m.Types {
		for _, v := range append(append([]wasm.ValueType{}, t.Params...), t.Results...) {
			if !v.Valid() {
				return fmt.Errorf("validate: type %d: invalid value type", i)
			}
		}
		if len(t.Results) > 1 {
			return fmt.Errorf("validate: type %d: multiple results not supported in MVP", i)
		}
	}
	for i, im := range m.Imports {
		if im.Kind == wasm.ExternalFunc && int(im.TypeIdx) >= len(m.Types) {
			return fmt.Errorf("validate: import %d: type index out of range", i)
		}
	}
	if len(m.Memories) > 1 {
		return fmt.Errorf("validate: at most one memory allowed")
	}
	for i, g := range m.Globals {
		if !g.Type.Valid() {
			return fmt.Errorf("validate: global %d: invalid type", i)
		}
		if ct, ok := constType(g.Init.Op); !ok || ct != g.Type {
			return fmt.Errorf("validate: global %d: init type mismatch", i)
		}
	}
	nfuncs := uint32(m.NumImportedFuncs() + len(m.Funcs))
	for i, e := range m.Exports {
		switch e.Kind {
		case wasm.ExternalFunc:
			if e.Idx >= nfuncs {
				return fmt.Errorf("validate: export %d: function index out of range", i)
			}
		case wasm.ExternalMemory:
			if int(e.Idx) >= len(m.Memories) && !hasMemImport(m) {
				return fmt.Errorf("validate: export %d: memory index out of range", i)
			}
		case wasm.ExternalGlobal:
			if int(e.Idx) >= len(m.Globals) {
				return fmt.Errorf("validate: export %d: global index out of range", i)
			}
		}
	}
	for i, e := range m.Elements {
		if len(m.Tables) == 0 {
			return fmt.Errorf("validate: element %d: no table", i)
		}
		for _, f := range e.Funcs {
			if f >= nfuncs {
				return fmt.Errorf("validate: element %d: function index %d out of range", i, f)
			}
		}
	}
	if m.Start != nil {
		t, err := m.FuncTypeAt(*m.Start)
		if err != nil {
			return fmt.Errorf("validate: start: %w", err)
		}
		if len(t.Params) != 0 || len(t.Results) != 0 {
			return fmt.Errorf("validate: start function must have empty signature")
		}
	}
	for i := range m.Funcs {
		idx := uint32(m.NumImportedFuncs() + i)
		if err := function(m, idx, &m.Funcs[i]); err != nil {
			name := m.Funcs[i].Name
			if name == "" {
				name = fmt.Sprintf("#%d", idx)
			}
			return fmt.Errorf("validate: func %s: %w", name, err)
		}
	}
	return nil
}

func hasMemImport(m *wasm.Module) bool {
	for _, im := range m.Imports {
		if im.Kind == wasm.ExternalMemory {
			return true
		}
	}
	return false
}

func constType(op wasm.Opcode) (wasm.ValueType, bool) {
	switch op {
	case wasm.OpI32Const:
		return wasm.I32, true
	case wasm.OpI64Const:
		return wasm.I64, true
	case wasm.OpF32Const:
		return wasm.F32, true
	case wasm.OpF64Const:
		return wasm.F64, true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// function body validation: the classic two-stack algorithm from the spec.

type ctrlFrame struct {
	op          wasm.Opcode // Block / Loop / If / "func" marker (OpEnd)
	result      wasm.BlockType
	stackHeight int
	unreachable bool
}

type checker struct {
	m      *wasm.Module
	locals []wasm.ValueType
	stack  []wasm.ValueType
	ctrl   []ctrlFrame
}

const anyType wasm.ValueType = 0 // wildcard produced in unreachable code

func function(m *wasm.Module, idx uint32, f *wasm.Func) error {
	if int(f.TypeIdx) >= len(m.Types) {
		return fmt.Errorf("type index out of range")
	}
	ft := m.Types[f.TypeIdx]
	if err := wasm.ValidateStructure(f.Body); err != nil {
		return err
	}
	c := &checker{m: m}
	c.locals = append(c.locals, ft.Params...)
	c.locals = append(c.locals, f.Locals...)
	resBT := wasm.BlockEmpty
	if len(ft.Results) == 1 {
		resBT = wasm.BlockOf(ft.Results[0])
	}
	c.ctrl = append(c.ctrl, ctrlFrame{op: wasm.OpEnd, result: resBT})
	for pc, in := range f.Body {
		if err := c.instr(in, ft); err != nil {
			return fmt.Errorf("instr %d (%s): %w", pc, in.Op, err)
		}
		if len(c.ctrl) == 0 {
			if pc != len(f.Body)-1 {
				return fmt.Errorf("instr %d: code after function end", pc)
			}
		}
	}
	if len(c.ctrl) != 0 {
		return fmt.Errorf("control frames not closed")
	}
	return nil
}

func (c *checker) push(t wasm.ValueType) { c.stack = append(c.stack, t) }

func (c *checker) pop(want wasm.ValueType) error {
	fr := &c.ctrl[len(c.ctrl)-1]
	if len(c.stack) == fr.stackHeight {
		if fr.unreachable {
			return nil // polymorphic stack
		}
		return fmt.Errorf("stack underflow, want %s", want)
	}
	got := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	if want != anyType && got != anyType && got != want {
		return fmt.Errorf("type mismatch: got %s, want %s", got, want)
	}
	return nil
}

func (c *checker) popAny() (wasm.ValueType, error) {
	fr := &c.ctrl[len(c.ctrl)-1]
	if len(c.stack) == fr.stackHeight {
		if fr.unreachable {
			return anyType, nil
		}
		return 0, fmt.Errorf("stack underflow")
	}
	got := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	return got, nil
}

func (c *checker) setUnreachable() {
	fr := &c.ctrl[len(c.ctrl)-1]
	c.stack = c.stack[:fr.stackHeight]
	fr.unreachable = true
}

// labelType returns the type that a branch to the label at relative depth d
// must provide: loops take no values (branch to header), others take the
// block result.
func (c *checker) labelType(d uint32) (wasm.BlockType, error) {
	if int(d) >= len(c.ctrl) {
		return 0, fmt.Errorf("branch depth %d exceeds nesting %d", d, len(c.ctrl))
	}
	fr := c.ctrl[len(c.ctrl)-1-int(d)]
	if fr.op == wasm.OpLoop {
		return wasm.BlockEmpty, nil
	}
	return fr.result, nil
}

func (c *checker) instr(in wasm.Instr, ft wasm.FuncType) error {
	op := in.Op
	switch op {
	case wasm.OpNop:
		return nil
	case wasm.OpUnreachable:
		c.setUnreachable()
		return nil
	case wasm.OpBlock, wasm.OpLoop:
		c.ctrl = append(c.ctrl, ctrlFrame{op: op, result: in.BT, stackHeight: len(c.stack)})
		return nil
	case wasm.OpIf:
		if err := c.pop(wasm.I32); err != nil {
			return err
		}
		c.ctrl = append(c.ctrl, ctrlFrame{op: op, result: in.BT, stackHeight: len(c.stack)})
		return nil
	case wasm.OpElse:
		fr := c.ctrl[len(c.ctrl)-1]
		if fr.op != wasm.OpIf {
			return fmt.Errorf("else without if")
		}
		if err := c.closeFrame(fr); err != nil {
			return err
		}
		c.ctrl[len(c.ctrl)-1] = ctrlFrame{op: wasm.OpElse, result: fr.result, stackHeight: fr.stackHeight}
		return nil
	case wasm.OpEnd:
		fr := c.ctrl[len(c.ctrl)-1]
		if err := c.closeFrame(fr); err != nil {
			return err
		}
		if fr.op == wasm.OpIf {
			// An if without else must produce no value.
			if _, has := fr.result.Value(); has {
				return fmt.Errorf("if with result type requires else")
			}
		}
		c.ctrl = c.ctrl[:len(c.ctrl)-1]
		if v, ok := fr.result.Value(); ok {
			c.push(v)
		}
		return nil
	case wasm.OpBr:
		bt, err := c.labelType(in.Idx)
		if err != nil {
			return err
		}
		if v, ok := bt.Value(); ok {
			if err := c.pop(v); err != nil {
				return err
			}
		}
		c.setUnreachable()
		return nil
	case wasm.OpBrIf:
		if err := c.pop(wasm.I32); err != nil {
			return err
		}
		bt, err := c.labelType(in.Idx)
		if err != nil {
			return err
		}
		if v, ok := bt.Value(); ok {
			if err := c.pop(v); err != nil {
				return err
			}
			c.push(v)
		}
		return nil
	case wasm.OpBrTable:
		if err := c.pop(wasm.I32); err != nil {
			return err
		}
		if len(in.Table) == 0 {
			return fmt.Errorf("br_table without targets")
		}
		def, err := c.labelType(in.Table[len(in.Table)-1])
		if err != nil {
			return err
		}
		for _, t := range in.Table[:len(in.Table)-1] {
			bt, err := c.labelType(t)
			if err != nil {
				return err
			}
			if bt != def {
				return fmt.Errorf("br_table targets have mismatched types")
			}
		}
		if v, ok := def.Value(); ok {
			if err := c.pop(v); err != nil {
				return err
			}
		}
		c.setUnreachable()
		return nil
	case wasm.OpReturn:
		if len(ft.Results) == 1 {
			if err := c.pop(ft.Results[0]); err != nil {
				return err
			}
		}
		c.setUnreachable()
		return nil
	case wasm.OpCall:
		t, err := c.m.FuncTypeAt(in.Idx)
		if err != nil {
			return err
		}
		return c.applySig(t)
	case wasm.OpCallIndirect:
		if len(c.m.Tables) == 0 {
			return fmt.Errorf("call_indirect without table")
		}
		if int(in.Idx) >= len(c.m.Types) {
			return fmt.Errorf("call_indirect type index out of range")
		}
		if err := c.pop(wasm.I32); err != nil {
			return err
		}
		return c.applySig(c.m.Types[in.Idx])
	case wasm.OpDrop:
		_, err := c.popAny()
		return err
	case wasm.OpSelect:
		if err := c.pop(wasm.I32); err != nil {
			return err
		}
		t1, err := c.popAny()
		if err != nil {
			return err
		}
		t2, err := c.popAny()
		if err != nil {
			return err
		}
		if t1 != anyType && t2 != anyType && t1 != t2 {
			return fmt.Errorf("select operands differ: %s vs %s", t1, t2)
		}
		if t1 == anyType {
			t1 = t2
		}
		c.push(t1)
		return nil
	case wasm.OpLocalGet:
		t, err := c.localType(in.Idx)
		if err != nil {
			return err
		}
		c.push(t)
		return nil
	case wasm.OpLocalSet:
		t, err := c.localType(in.Idx)
		if err != nil {
			return err
		}
		return c.pop(t)
	case wasm.OpLocalTee:
		t, err := c.localType(in.Idx)
		if err != nil {
			return err
		}
		if err := c.pop(t); err != nil {
			return err
		}
		c.push(t)
		return nil
	case wasm.OpGlobalGet:
		if int(in.Idx) >= len(c.m.Globals) {
			return fmt.Errorf("global index %d out of range", in.Idx)
		}
		c.push(c.m.Globals[in.Idx].Type)
		return nil
	case wasm.OpGlobalSet:
		if int(in.Idx) >= len(c.m.Globals) {
			return fmt.Errorf("global index %d out of range", in.Idx)
		}
		if !c.m.Globals[in.Idx].Mutable {
			return fmt.Errorf("global %d is immutable", in.Idx)
		}
		return c.pop(c.m.Globals[in.Idx].Type)
	case wasm.OpMemorySize:
		if err := c.requireMemory(); err != nil {
			return err
		}
		c.push(wasm.I32)
		return nil
	case wasm.OpMemoryGrow:
		if err := c.requireMemory(); err != nil {
			return err
		}
		if err := c.pop(wasm.I32); err != nil {
			return err
		}
		c.push(wasm.I32)
		return nil
	case wasm.OpI32Const:
		c.push(wasm.I32)
		return nil
	case wasm.OpI64Const:
		c.push(wasm.I64)
		return nil
	case wasm.OpF32Const:
		c.push(wasm.F32)
		return nil
	case wasm.OpF64Const:
		c.push(wasm.F64)
		return nil
	}
	if op.IsMemAccess() {
		if err := c.requireMemory(); err != nil {
			return err
		}
		width, vt, store := memAccessInfo(op)
		if in.Align > width {
			return fmt.Errorf("alignment 2^%d larger than access width", in.Align)
		}
		if store {
			if err := c.pop(vt); err != nil {
				return err
			}
			return c.pop(wasm.I32)
		}
		if err := c.pop(wasm.I32); err != nil {
			return err
		}
		c.push(vt)
		return nil
	}
	if sig, ok := numericSigs[op]; ok {
		for i := len(sig.in) - 1; i >= 0; i-- {
			if err := c.pop(sig.in[i]); err != nil {
				return err
			}
		}
		c.push(sig.out)
		return nil
	}
	return fmt.Errorf("unhandled opcode")
}

func (c *checker) requireMemory() error {
	if len(c.m.Memories) == 0 && !hasMemImport(c.m) {
		return fmt.Errorf("no memory declared")
	}
	return nil
}

func (c *checker) localType(idx uint32) (wasm.ValueType, error) {
	if int(idx) >= len(c.locals) {
		return 0, fmt.Errorf("local index %d out of range", idx)
	}
	return c.locals[idx], nil
}

func (c *checker) applySig(t wasm.FuncType) error {
	for i := len(t.Params) - 1; i >= 0; i-- {
		if err := c.pop(t.Params[i]); err != nil {
			return err
		}
	}
	for _, r := range t.Results {
		c.push(r)
	}
	return nil
}

// closeFrame checks the stack against the frame's result at a block end
// or else boundary and resets the stack to the frame's entry height.
func (c *checker) closeFrame(fr ctrlFrame) error {
	if v, ok := fr.result.Value(); ok {
		if err := c.pop(v); err != nil {
			return err
		}
	}
	if len(c.stack) != fr.stackHeight && !fr.unreachable {
		return fmt.Errorf("block leaves %d extra values on stack", len(c.stack)-fr.stackHeight)
	}
	c.stack = c.stack[:fr.stackHeight]
	return nil
}

// memAccessInfo returns (log2 width, value type, isStore).
func memAccessInfo(op wasm.Opcode) (uint32, wasm.ValueType, bool) {
	switch op {
	case wasm.OpI32Load:
		return 2, wasm.I32, false
	case wasm.OpI64Load:
		return 3, wasm.I64, false
	case wasm.OpF32Load:
		return 2, wasm.F32, false
	case wasm.OpF64Load:
		return 3, wasm.F64, false
	case wasm.OpI32Load8S, wasm.OpI32Load8U:
		return 0, wasm.I32, false
	case wasm.OpI32Load16S, wasm.OpI32Load16U:
		return 1, wasm.I32, false
	case wasm.OpI64Load8S, wasm.OpI64Load8U:
		return 0, wasm.I64, false
	case wasm.OpI64Load16S, wasm.OpI64Load16U:
		return 1, wasm.I64, false
	case wasm.OpI64Load32S, wasm.OpI64Load32U:
		return 2, wasm.I64, false
	case wasm.OpI32Store:
		return 2, wasm.I32, true
	case wasm.OpI64Store:
		return 3, wasm.I64, true
	case wasm.OpF32Store:
		return 2, wasm.F32, true
	case wasm.OpF64Store:
		return 3, wasm.F64, true
	case wasm.OpI32Store8:
		return 0, wasm.I32, true
	case wasm.OpI32Store16:
		return 1, wasm.I32, true
	case wasm.OpI64Store8:
		return 0, wasm.I64, true
	case wasm.OpI64Store16:
		return 1, wasm.I64, true
	case wasm.OpI64Store32:
		return 2, wasm.I64, true
	}
	return 0, 0, false
}

type numSig struct {
	in  []wasm.ValueType
	out wasm.ValueType
}

func sig(out wasm.ValueType, in ...wasm.ValueType) numSig { return numSig{in: in, out: out} }

var numericSigs = buildNumericSigs()

func buildNumericSigs() map[wasm.Opcode]numSig {
	m := map[wasm.Opcode]numSig{}
	// i32 comparisons
	m[wasm.OpI32Eqz] = sig(wasm.I32, wasm.I32)
	for op := wasm.OpI32Eq; op <= wasm.OpI32GeU; op++ {
		m[op] = sig(wasm.I32, wasm.I32, wasm.I32)
	}
	m[wasm.OpI64Eqz] = sig(wasm.I32, wasm.I64)
	for op := wasm.OpI64Eq; op <= wasm.OpI64GeU; op++ {
		m[op] = sig(wasm.I32, wasm.I64, wasm.I64)
	}
	for op := wasm.OpF32Eq; op <= wasm.OpF32Ge; op++ {
		m[op] = sig(wasm.I32, wasm.F32, wasm.F32)
	}
	for op := wasm.OpF64Eq; op <= wasm.OpF64Ge; op++ {
		m[op] = sig(wasm.I32, wasm.F64, wasm.F64)
	}
	// i32 numeric
	for _, op := range []wasm.Opcode{wasm.OpI32Clz, wasm.OpI32Ctz, wasm.OpI32Popcnt} {
		m[op] = sig(wasm.I32, wasm.I32)
	}
	for op := wasm.OpI32Add; op <= wasm.OpI32Rotr; op++ {
		m[op] = sig(wasm.I32, wasm.I32, wasm.I32)
	}
	for _, op := range []wasm.Opcode{wasm.OpI64Clz, wasm.OpI64Ctz, wasm.OpI64Popcnt} {
		m[op] = sig(wasm.I64, wasm.I64)
	}
	for op := wasm.OpI64Add; op <= wasm.OpI64Rotr; op++ {
		m[op] = sig(wasm.I64, wasm.I64, wasm.I64)
	}
	for op := wasm.OpF32Abs; op <= wasm.OpF32Sqrt; op++ {
		m[op] = sig(wasm.F32, wasm.F32)
	}
	for op := wasm.OpF32Add; op <= wasm.OpF32Copysign; op++ {
		m[op] = sig(wasm.F32, wasm.F32, wasm.F32)
	}
	for op := wasm.OpF64Abs; op <= wasm.OpF64Sqrt; op++ {
		m[op] = sig(wasm.F64, wasm.F64)
	}
	for op := wasm.OpF64Add; op <= wasm.OpF64Copysign; op++ {
		m[op] = sig(wasm.F64, wasm.F64, wasm.F64)
	}
	// conversions
	m[wasm.OpI32WrapI64] = sig(wasm.I32, wasm.I64)
	m[wasm.OpI32TruncF32S] = sig(wasm.I32, wasm.F32)
	m[wasm.OpI32TruncF32U] = sig(wasm.I32, wasm.F32)
	m[wasm.OpI32TruncF64S] = sig(wasm.I32, wasm.F64)
	m[wasm.OpI32TruncF64U] = sig(wasm.I32, wasm.F64)
	m[wasm.OpI64ExtendI32S] = sig(wasm.I64, wasm.I32)
	m[wasm.OpI64ExtendI32U] = sig(wasm.I64, wasm.I32)
	m[wasm.OpI64TruncF32S] = sig(wasm.I64, wasm.F32)
	m[wasm.OpI64TruncF32U] = sig(wasm.I64, wasm.F32)
	m[wasm.OpI64TruncF64S] = sig(wasm.I64, wasm.F64)
	m[wasm.OpI64TruncF64U] = sig(wasm.I64, wasm.F64)
	m[wasm.OpF32ConvertI32S] = sig(wasm.F32, wasm.I32)
	m[wasm.OpF32ConvertI32U] = sig(wasm.F32, wasm.I32)
	m[wasm.OpF32ConvertI64S] = sig(wasm.F32, wasm.I64)
	m[wasm.OpF32ConvertI64U] = sig(wasm.F32, wasm.I64)
	m[wasm.OpF32DemoteF64] = sig(wasm.F32, wasm.F64)
	m[wasm.OpF64ConvertI32S] = sig(wasm.F64, wasm.I32)
	m[wasm.OpF64ConvertI32U] = sig(wasm.F64, wasm.I32)
	m[wasm.OpF64ConvertI64S] = sig(wasm.F64, wasm.I64)
	m[wasm.OpF64ConvertI64U] = sig(wasm.F64, wasm.I64)
	m[wasm.OpF64PromoteF32] = sig(wasm.F64, wasm.F32)
	m[wasm.OpI32ReinterpretF] = sig(wasm.I32, wasm.F32)
	m[wasm.OpI64ReinterpretF] = sig(wasm.I64, wasm.F64)
	m[wasm.OpF32ReinterpretI] = sig(wasm.F32, wasm.I32)
	m[wasm.OpF64ReinterpretI] = sig(wasm.F64, wasm.I64)
	return m
}
