package validate_test

import (
	"strings"
	"testing"

	"acctee/internal/wasm"
	"acctee/internal/wasm/validate"
)

// mod builds a single-function module from raw instructions.
func mod(params, results []wasm.ValueType, locals []wasm.ValueType, body ...wasm.Instr) *wasm.Module {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: params, Results: results})
	m.Funcs = append(m.Funcs, wasm.Func{TypeIdx: ti, Locals: locals, Body: append(body, wasm.Op1(wasm.OpEnd))})
	m.Memories = append(m.Memories, wasm.Memory{Limits: wasm.Limits{Min: 1}})
	return m
}

func TestAcceptsWellTyped(t *testing.T) {
	cases := map[string]*wasm.Module{
		"arith": mod(nil, []wasm.ValueType{wasm.I32}, nil,
			wasm.ConstI32(1), wasm.ConstI32(2), wasm.Op1(wasm.OpI32Add)),
		"block-result": mod(nil, []wasm.ValueType{wasm.I64}, nil,
			wasm.Instr{Op: wasm.OpBlock, BT: wasm.BlockOf(wasm.I64)},
			wasm.ConstI64(7),
			wasm.Op1(wasm.OpEnd)),
		"if-else": mod([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}, nil,
			wasm.WithIdx(wasm.OpLocalGet, 0),
			wasm.Instr{Op: wasm.OpIf, BT: wasm.BlockOf(wasm.I32)},
			wasm.ConstI32(1),
			wasm.Op1(wasm.OpElse),
			wasm.ConstI32(2),
			wasm.Op1(wasm.OpEnd)),
		"unreachable-polymorphic": mod(nil, []wasm.ValueType{wasm.I32}, nil,
			wasm.Op1(wasm.OpUnreachable),
			wasm.Op1(wasm.OpI32Add)), // allowed: stack is polymorphic
		"memory": mod(nil, []wasm.ValueType{wasm.I32}, nil,
			wasm.ConstI32(0),
			wasm.Instr{Op: wasm.OpI32Load, Align: 2},
		),
		"br-with-value": mod(nil, []wasm.ValueType{wasm.I32}, nil,
			wasm.Instr{Op: wasm.OpBlock, BT: wasm.BlockOf(wasm.I32)},
			wasm.ConstI32(5),
			wasm.WithIdx(wasm.OpBr, 0),
			wasm.Op1(wasm.OpEnd)),
	}
	for name, m := range cases {
		if err := validate.Module(m); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

func TestRejectsIllTyped(t *testing.T) {
	cases := map[string]*wasm.Module{
		"type-mismatch": mod(nil, []wasm.ValueType{wasm.I32}, nil,
			wasm.ConstI64(1), wasm.ConstI32(2), wasm.Op1(wasm.OpI32Add)),
		"underflow": mod(nil, []wasm.ValueType{wasm.I32}, nil,
			wasm.ConstI32(1), wasm.Op1(wasm.OpI32Add)),
		"missing-result": mod(nil, []wasm.ValueType{wasm.I32}, nil,
			wasm.ConstI32(1), wasm.Op1(wasm.OpDrop)),
		"bad-local": mod(nil, nil, nil,
			wasm.WithIdx(wasm.OpLocalGet, 3), wasm.Op1(wasm.OpDrop)),
		"bad-branch-depth": mod(nil, nil, nil,
			wasm.WithIdx(wasm.OpBr, 5)),
		"if-result-no-else": mod([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32}, nil,
			wasm.WithIdx(wasm.OpLocalGet, 0),
			wasm.Instr{Op: wasm.OpIf, BT: wasm.BlockOf(wasm.I32)},
			wasm.ConstI32(1),
			wasm.Op1(wasm.OpEnd)),
		"extra-stack-at-end": mod(nil, nil, nil,
			wasm.ConstI32(1)),
		"bad-alignment": mod(nil, []wasm.ValueType{wasm.I32}, nil,
			wasm.ConstI32(0),
			wasm.Instr{Op: wasm.OpI32Load, Align: 5}),
		"select-mismatch": mod(nil, nil, nil,
			wasm.ConstI32(1), wasm.ConstI64(2), wasm.ConstI32(0),
			wasm.Op1(wasm.OpSelect), wasm.Op1(wasm.OpDrop)),
	}
	for name, m := range cases {
		if err := validate.Module(m); err == nil {
			t.Errorf("%s: invalid module accepted", name)
		}
	}
}

func TestRejectsImmutableGlobalWrite(t *testing.T) {
	m := mod(nil, nil, nil,
		wasm.ConstI64(1), wasm.WithIdx(wasm.OpGlobalSet, 0))
	m.Globals = append(m.Globals, wasm.Global{Type: wasm.I64, Mutable: false, Init: wasm.ConstI64(0)})
	err := validate.Module(m)
	if err == nil || !strings.Contains(err.Error(), "immutable") {
		t.Errorf("immutable global write: %v", err)
	}
}

func TestRejectsBadGlobalInit(t *testing.T) {
	m := &wasm.Module{}
	m.Globals = append(m.Globals, wasm.Global{Type: wasm.I64, Init: wasm.ConstI32(1)})
	if err := validate.Module(m); err == nil {
		t.Error("global init type mismatch accepted")
	}
}

func TestRejectsMemoryOpsWithoutMemory(t *testing.T) {
	m := mod(nil, []wasm.ValueType{wasm.I32}, nil,
		wasm.ConstI32(0), wasm.Instr{Op: wasm.OpI32Load, Align: 2})
	m.Memories = nil
	if err := validate.Module(m); err == nil {
		t.Error("load without memory accepted")
	}
}

func TestRejectsBadStart(t *testing.T) {
	m := mod([]wasm.ValueType{wasm.I32}, nil, nil, wasm.WithIdx(wasm.OpLocalGet, 0), wasm.Op1(wasm.OpDrop))
	idx := uint32(0)
	m.Start = &idx
	if err := validate.Module(m); err == nil {
		t.Error("start function with params accepted")
	}
}

func TestRejectsCallArity(t *testing.T) {
	m := mod(nil, nil, nil, wasm.WithIdx(wasm.OpCall, 0))
	// self-call of a () -> () function is fine; now break it: call with a
	// missing argument
	m2 := &wasm.Module{}
	ti := m2.AddType(wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: nil})
	t0 := m2.AddType(wasm.FuncType{})
	m2.Funcs = append(m2.Funcs,
		wasm.Func{TypeIdx: ti, Body: []wasm.Instr{wasm.Op1(wasm.OpEnd)}},
		wasm.Func{TypeIdx: t0, Body: []wasm.Instr{wasm.WithIdx(wasm.OpCall, 0), wasm.Op1(wasm.OpEnd)}},
	)
	if err := validate.Module(m); err != nil {
		t.Errorf("valid self-call rejected: %v", err)
	}
	if err := validate.Module(m2); err == nil {
		t.Error("call with missing argument accepted")
	}
}

func TestBrTableConsistency(t *testing.T) {
	// br_table whose targets disagree on arity must be rejected.
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
	body := []wasm.Instr{
		wasm.Instr{Op: wasm.OpBlock, BT: wasm.BlockOf(wasm.I32)},
		wasm.Instr{Op: wasm.OpBlock, BT: wasm.BlockEmpty},
		wasm.ConstI32(0),
		wasm.Instr{Op: wasm.OpBrTable, Table: []uint32{0, 1}},
		wasm.Op1(wasm.OpEnd),
		wasm.ConstI32(1),
		wasm.Op1(wasm.OpEnd),
		wasm.Op1(wasm.OpEnd),
	}
	m.Funcs = append(m.Funcs, wasm.Func{TypeIdx: ti, Body: body})
	if err := validate.Module(m); err == nil {
		t.Error("br_table with mismatched target arities accepted")
	}
}
