package wasm

import "fmt"

// ModuleBuilder assembles a Module programmatically. It is the repository's
// stand-in for the paper's Emscripten/rustc/go compilers (§5): workloads are
// authored directly against this API and produce ordinary Wasm modules that
// go through the same instrumentation, validation, encoding and execution
// pipeline a compiled binary would.
type ModuleBuilder struct {
	m    *Module
	errs []error
}

// NewModule returns an empty module builder.
func NewModule(name string) *ModuleBuilder {
	return &ModuleBuilder{m: &Module{Name: name}}
}

// ImportFunc adds a function import and returns its function index.
// All function imports must be added before the first defined function.
func (b *ModuleBuilder) ImportFunc(module, name string, params, results []ValueType) uint32 {
	if len(b.m.Funcs) > 0 {
		b.errs = append(b.errs, fmt.Errorf("import %s.%s added after defined functions", module, name))
	}
	ti := b.m.AddType(FuncType{Params: params, Results: results})
	b.m.Imports = append(b.m.Imports, Import{Module: module, Name: name, Kind: ExternalFunc, TypeIdx: ti})
	return uint32(b.m.NumImportedFuncs() - 1)
}

// Memory declares the module's linear memory (pages of 64 KiB) and exports
// it under the name "memory".
func (b *ModuleBuilder) Memory(minPages, maxPages uint32) {
	b.m.Memories = append(b.m.Memories, Memory{Limits: Limits{Min: minPages, Max: maxPages, HasMax: maxPages > 0}})
	b.m.Exports = append(b.m.Exports, Export{Name: "memory", Kind: ExternalMemory, Idx: uint32(len(b.m.Memories) - 1)})
}

// Global adds a module global and returns its index.
func (b *ModuleBuilder) Global(name string, t ValueType, mutable bool, init Instr) uint32 {
	b.m.Globals = append(b.m.Globals, Global{Type: t, Mutable: mutable, Init: init, Name: name})
	return uint32(len(b.m.Globals) - 1)
}

// Data adds a data segment at the given linear-memory offset.
func (b *ModuleBuilder) Data(offset int32, bytes []byte) {
	b.m.Data = append(b.m.Data, Data{Offset: ConstI32(offset), Bytes: bytes})
}

// Table declares a funcref table with the given element entries starting at
// offset 0, as produced for call_indirect dispatch.
func (b *ModuleBuilder) Table(funcs ...uint32) {
	n := uint32(len(funcs))
	b.m.Tables = append(b.m.Tables, Table{Limits: Limits{Min: n, Max: n, HasMax: true}})
	if n > 0 {
		b.m.Elements = append(b.m.Elements, Element{Offset: ConstI32(0), Funcs: funcs})
	}
}

// Func starts a new defined function and returns its builder. The function
// index (in the combined index space) is available immediately so bodies may
// recursively call the function being defined.
func (b *ModuleBuilder) Func(name string, params, results []ValueType) *FuncBuilder {
	ti := b.m.AddType(FuncType{Params: params, Results: results})
	b.m.Funcs = append(b.m.Funcs, Func{TypeIdx: ti, Name: name})
	idx := uint32(b.m.NumImportedFuncs() + len(b.m.Funcs) - 1)
	return &FuncBuilder{
		mb:      b,
		slot:    len(b.m.Funcs) - 1,
		Index:   idx,
		nparams: len(params),
	}
}

// TypeIndex interns a signature and returns its type index, as needed for
// call_indirect immediates.
func (b *ModuleBuilder) TypeIndex(params, results []ValueType) uint32 {
	return b.m.AddType(FuncType{Params: params, Results: results})
}

// ExportFunc exports the function with the given index.
func (b *ModuleBuilder) ExportFunc(name string, idx uint32) {
	b.m.Exports = append(b.m.Exports, Export{Name: name, Kind: ExternalFunc, Idx: idx})
}

// Build finalises and returns the module, reporting any deferred builder
// errors (unbalanced blocks, imports after functions, ...).
func (b *ModuleBuilder) Build() (*Module, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for i := range b.m.Funcs {
		if err := ValidateStructure(b.m.Funcs[i].Body); err != nil {
			return nil, fmt.Errorf("func %q: %w", b.m.Funcs[i].Name, err)
		}
	}
	return b.m, nil
}

// MustBuild is Build for tests and statically-known-good generators; it
// panics on error (program-construction bugs, not runtime conditions).
func (b *ModuleBuilder) MustBuild() *Module {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// FuncBuilder accumulates the flat body of one function. Structured helpers
// (Block/Loop/If/ForI32) keep label depths correct so workload authors never
// hand-count branch targets.
type FuncBuilder struct {
	mb      *ModuleBuilder
	slot    int
	Index   uint32
	nparams int
	depth   int
	code    []Instr
	closed  bool
}

// Local declares an extra local of type t and returns its index.
func (f *FuncBuilder) Local(t ValueType) uint32 {
	fn := &f.mb.m.Funcs[f.slot]
	fn.Locals = append(fn.Locals, t)
	return uint32(f.nparams + len(fn.Locals) - 1)
}

// Emit appends raw instructions.
func (f *FuncBuilder) Emit(ins ...Instr) *FuncBuilder {
	f.code = append(f.code, ins...)
	return f
}

// Op appends a no-immediate instruction.
func (f *FuncBuilder) Op(op Opcode) *FuncBuilder { return f.Emit(Instr{Op: op}) }

// I32Const pushes an i32 constant.
func (f *FuncBuilder) I32Const(v int32) *FuncBuilder { return f.Emit(ConstI32(v)) }

// I64ConstV pushes an i64 constant.
func (f *FuncBuilder) I64ConstV(v int64) *FuncBuilder { return f.Emit(ConstI64(v)) }

// F32ConstV pushes an f32 constant.
func (f *FuncBuilder) F32ConstV(v float32) *FuncBuilder { return f.Emit(ConstF32(v)) }

// F64ConstV pushes an f64 constant.
func (f *FuncBuilder) F64ConstV(v float64) *FuncBuilder { return f.Emit(ConstF64(v)) }

// LocalGet pushes a local.
func (f *FuncBuilder) LocalGet(i uint32) *FuncBuilder { return f.Emit(WithIdx(OpLocalGet, i)) }

// LocalSet pops into a local.
func (f *FuncBuilder) LocalSet(i uint32) *FuncBuilder { return f.Emit(WithIdx(OpLocalSet, i)) }

// LocalTee stores the top of stack into a local, keeping it on the stack.
func (f *FuncBuilder) LocalTee(i uint32) *FuncBuilder { return f.Emit(WithIdx(OpLocalTee, i)) }

// GlobalGet pushes a global.
func (f *FuncBuilder) GlobalGet(i uint32) *FuncBuilder { return f.Emit(WithIdx(OpGlobalGet, i)) }

// GlobalSet pops into a global.
func (f *FuncBuilder) GlobalSet(i uint32) *FuncBuilder { return f.Emit(WithIdx(OpGlobalSet, i)) }

// Call invokes a function by index.
func (f *FuncBuilder) Call(idx uint32) *FuncBuilder { return f.Emit(WithIdx(OpCall, idx)) }

// Load emits a load with the given memarg offset.
func (f *FuncBuilder) Load(op Opcode, offset uint32) *FuncBuilder {
	return f.Emit(Instr{Op: op, Off: offset, Align: NaturalAlign(op)})
}

// Store emits a store with the given memarg offset.
func (f *FuncBuilder) Store(op Opcode, offset uint32) *FuncBuilder {
	return f.Emit(Instr{Op: op, Off: offset, Align: NaturalAlign(op)})
}

// NaturalAlign returns the natural alignment exponent of a memory
// instruction (log2 of the access width in bytes).
func NaturalAlign(op Opcode) uint32 {
	switch op {
	case OpI32Load8S, OpI32Load8U, OpI64Load8S, OpI64Load8U, OpI32Store8, OpI64Store8:
		return 0
	case OpI32Load16S, OpI32Load16U, OpI64Load16S, OpI64Load16U, OpI32Store16, OpI64Store16:
		return 1
	case OpI32Load, OpF32Load, OpI32Store, OpF32Store, OpI64Load32S, OpI64Load32U, OpI64Store32:
		return 2
	default:
		return 3
	}
}

// Block opens a block, runs body, and closes it.
func (f *FuncBuilder) Block(bt BlockType, body func()) *FuncBuilder {
	f.Emit(Instr{Op: OpBlock, BT: bt})
	f.depth++
	body()
	f.depth--
	return f.Op(OpEnd)
}

// Loop opens a loop, runs body, and closes it. Branch depth 0 inside body
// (relative to the loop) jumps back to the loop header.
func (f *FuncBuilder) Loop(bt BlockType, body func()) *FuncBuilder {
	f.Emit(Instr{Op: OpLoop, BT: bt})
	f.depth++
	body()
	f.depth--
	return f.Op(OpEnd)
}

// If emits if/else/end around the two branches; els may be nil.
func (f *FuncBuilder) If(bt BlockType, then func(), els func()) *FuncBuilder {
	f.Emit(Instr{Op: OpIf, BT: bt})
	f.depth++
	then()
	if els != nil {
		f.Op(OpElse)
		els()
	}
	f.depth--
	return f.Op(OpEnd)
}

// Br emits an unconditional branch to the given relative label depth.
func (f *FuncBuilder) Br(depth uint32) *FuncBuilder { return f.Emit(WithIdx(OpBr, depth)) }

// BrIf emits a conditional branch to the given relative label depth.
func (f *FuncBuilder) BrIf(depth uint32) *FuncBuilder { return f.Emit(WithIdx(OpBrIf, depth)) }

// Return emits an early return.
func (f *FuncBuilder) Return() *FuncBuilder { return f.Op(OpReturn) }

// ForI32 emits a canonical counted loop over an i32 local:
//
//	for idx = start; idx < limit; idx += step { body }
//
// start and limit are instruction sequences that each push one i32. The
// shape matches what C compilers emit and is exactly the single-write
// loop-variable pattern the paper's loop-based optimisation targets (§3.6).
func (f *FuncBuilder) ForI32(idx uint32, start, limit []Instr, step int32, body func()) *FuncBuilder {
	f.Emit(start...)
	f.LocalSet(idx)
	f.Block(BlockEmpty, func() {
		f.Loop(BlockEmpty, func() {
			// exit when idx >= limit
			f.LocalGet(idx)
			f.Emit(limit...)
			f.Op(OpI32GeS)
			f.BrIf(1)
			body()
			f.LocalGet(idx).I32Const(step).Op(OpI32Add).LocalSet(idx)
			f.Br(0)
		})
	})
	return f
}

// While emits a loop that keeps iterating while cond pushes a non-zero i32.
func (f *FuncBuilder) While(cond func(), body func()) *FuncBuilder {
	f.Block(BlockEmpty, func() {
		f.Loop(BlockEmpty, func() {
			cond()
			f.Op(OpI32Eqz)
			f.BrIf(1)
			body()
			f.Br(0)
		})
	})
	return f
}

// BodyLen returns the number of instructions emitted so far, for use with
// TakeFrom when a DSL needs to capture an emitted sub-sequence.
func (f *FuncBuilder) BodyLen() int { return len(f.code) }

// TakeFrom removes and returns the instructions emitted since the given
// mark (a prior BodyLen result).
func (f *FuncBuilder) TakeFrom(mark int) []Instr {
	out := append([]Instr(nil), f.code[mark:]...)
	f.code = f.code[:mark]
	return out
}

// End finalises the function body with the trailing end opcode and writes it
// into the module. It must be called exactly once per FuncBuilder.
func (f *FuncBuilder) End() uint32 {
	if f.closed {
		f.mb.errs = append(f.mb.errs, fmt.Errorf("func %q: End called twice", f.mb.m.Funcs[f.slot].Name))
		return f.Index
	}
	f.closed = true
	f.code = append(f.code, Instr{Op: OpEnd})
	f.mb.m.Funcs[f.slot].Body = f.code
	return f.Index
}
