// Package binary encodes and decodes WebAssembly modules in the binary
// format (wasm 1.0). AccTEE needs the codec for the §5.4 binary-size
// experiment and so instrumented modules can be shipped to accounting
// enclaves exactly like compiler-produced binaries.
package binary

import (
	"bytes"
	"fmt"

	"acctee/internal/wasm"
)

// Magic and version of the wasm binary format.
var header = []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

// Section ids.
const (
	secType     = 1
	secImport   = 2
	secFunction = 3
	secTable    = 4
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secStart    = 8
	secElement  = 9
	secCode     = 10
	secData     = 11
)

// Encode serialises a module to wasm binary.
func Encode(m *wasm.Module) ([]byte, error) {
	var out bytes.Buffer
	out.Write(header)

	sec := func(id byte, payload []byte) {
		if len(payload) == 0 {
			return
		}
		out.WriteByte(id)
		writeU32(&out, uint32(len(payload)))
		out.Write(payload)
	}

	// Type section.
	if len(m.Types) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Types)))
		for _, t := range m.Types {
			b.WriteByte(0x60)
			writeU32(&b, uint32(len(t.Params)))
			for _, p := range t.Params {
				b.WriteByte(byte(p))
			}
			writeU32(&b, uint32(len(t.Results)))
			for _, r := range t.Results {
				b.WriteByte(byte(r))
			}
		}
		sec(secType, b.Bytes())
	}

	// Import section.
	if len(m.Imports) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Imports)))
		for _, im := range m.Imports {
			writeName(&b, im.Module)
			writeName(&b, im.Name)
			b.WriteByte(byte(im.Kind))
			switch im.Kind {
			case wasm.ExternalFunc:
				writeU32(&b, im.TypeIdx)
			case wasm.ExternalMemory:
				writeLimits(&b, im.MemLimit)
			default:
				return nil, fmt.Errorf("binary: unsupported import kind %d", im.Kind)
			}
		}
		sec(secImport, b.Bytes())
	}

	// Function section.
	if len(m.Funcs) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Funcs)))
		for _, f := range m.Funcs {
			writeU32(&b, f.TypeIdx)
		}
		sec(secFunction, b.Bytes())
	}

	// Table section.
	if len(m.Tables) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Tables)))
		for _, t := range m.Tables {
			b.WriteByte(0x70) // funcref
			writeLimits(&b, t.Limits)
		}
		sec(secTable, b.Bytes())
	}

	// Memory section.
	if len(m.Memories) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Memories)))
		for _, mem := range m.Memories {
			writeLimits(&b, mem.Limits)
		}
		sec(secMemory, b.Bytes())
	}

	// Global section.
	if len(m.Globals) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Globals)))
		for _, g := range m.Globals {
			b.WriteByte(byte(g.Type))
			if g.Mutable {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
			if err := encodeInstr(&b, g.Init); err != nil {
				return nil, err
			}
			b.WriteByte(byte(wasm.OpEnd))
		}
		sec(secGlobal, b.Bytes())
	}

	// Export section.
	if len(m.Exports) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Exports)))
		for _, e := range m.Exports {
			writeName(&b, e.Name)
			b.WriteByte(byte(e.Kind))
			writeU32(&b, e.Idx)
		}
		sec(secExport, b.Bytes())
	}

	// Start section.
	if m.Start != nil {
		var b bytes.Buffer
		writeU32(&b, *m.Start)
		sec(secStart, b.Bytes())
	}

	// Element section.
	if len(m.Elements) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Elements)))
		for _, e := range m.Elements {
			writeU32(&b, 0) // table index
			if err := encodeInstr(&b, e.Offset); err != nil {
				return nil, err
			}
			b.WriteByte(byte(wasm.OpEnd))
			writeU32(&b, uint32(len(e.Funcs)))
			for _, f := range e.Funcs {
				writeU32(&b, f)
			}
		}
		sec(secElement, b.Bytes())
	}

	// Code section.
	if len(m.Funcs) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Funcs)))
		for i := range m.Funcs {
			body, err := encodeBody(&m.Funcs[i])
			if err != nil {
				return nil, fmt.Errorf("binary: func %d: %w", i, err)
			}
			writeU32(&b, uint32(len(body)))
			b.Write(body)
		}
		sec(secCode, b.Bytes())
	}

	// Data section.
	if len(m.Data) > 0 {
		var b bytes.Buffer
		writeU32(&b, uint32(len(m.Data)))
		for _, d := range m.Data {
			writeU32(&b, 0) // memory index
			if err := encodeInstr(&b, d.Offset); err != nil {
				return nil, err
			}
			b.WriteByte(byte(wasm.OpEnd))
			writeU32(&b, uint32(len(d.Bytes)))
			b.Write(d.Bytes)
		}
		sec(secData, b.Bytes())
	}

	return out.Bytes(), nil
}

func encodeBody(f *wasm.Func) ([]byte, error) {
	var b bytes.Buffer
	// Locals, run-length compressed by type.
	type run struct {
		t wasm.ValueType
		n uint32
	}
	var runs []run
	for _, l := range f.Locals {
		if len(runs) > 0 && runs[len(runs)-1].t == l {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{t: l, n: 1})
		}
	}
	writeU32(&b, uint32(len(runs)))
	for _, r := range runs {
		writeU32(&b, r.n)
		b.WriteByte(byte(r.t))
	}
	for _, in := range f.Body {
		if err := encodeInstr(&b, in); err != nil {
			return nil, err
		}
	}
	return b.Bytes(), nil
}

func encodeInstr(b *bytes.Buffer, in wasm.Instr) error {
	b.WriteByte(byte(in.Op))
	switch in.Op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
		bt := in.BT
		if bt == 0 {
			bt = wasm.BlockEmpty
		}
		b.WriteByte(byte(bt))
	case wasm.OpBr, wasm.OpBrIf, wasm.OpCall, wasm.OpLocalGet, wasm.OpLocalSet,
		wasm.OpLocalTee, wasm.OpGlobalGet, wasm.OpGlobalSet:
		writeU32(b, in.Idx)
	case wasm.OpCallIndirect:
		writeU32(b, in.Idx)
		b.WriteByte(0) // table index
	case wasm.OpBrTable:
		if len(in.Table) == 0 {
			return fmt.Errorf("br_table without targets")
		}
		writeU32(b, uint32(len(in.Table)-1))
		for _, t := range in.Table {
			writeU32(b, t)
		}
	case wasm.OpI32Const:
		writeS64(b, int64(in.I32Val()))
	case wasm.OpI64Const:
		writeS64(b, in.I64Val())
	case wasm.OpF32Const:
		v := uint32(in.U64)
		b.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	case wasm.OpF64Const:
		v := in.U64
		b.Write([]byte{
			byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
			byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
		})
	case wasm.OpMemorySize, wasm.OpMemoryGrow:
		b.WriteByte(0) // memory index
	default:
		if in.Op.IsMemAccess() {
			writeU32(b, in.Align)
			writeU32(b, in.Off)
		}
	}
	return nil
}

func writeName(b *bytes.Buffer, s string) {
	writeU32(b, uint32(len(s)))
	b.WriteString(s)
}

func writeLimits(b *bytes.Buffer, l wasm.Limits) {
	if l.HasMax {
		b.WriteByte(1)
		writeU32(b, l.Min)
		writeU32(b, l.Max)
	} else {
		b.WriteByte(0)
		writeU32(b, l.Min)
	}
}

// writeU32 writes an unsigned LEB128.
func writeU32(b *bytes.Buffer, v uint32) {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			b.WriteByte(c | 0x80)
		} else {
			b.WriteByte(c)
			return
		}
	}
}

// writeS64 writes a signed LEB128.
func writeS64(b *bytes.Buffer, v int64) {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		if (v == 0 && c&0x40 == 0) || (v == -1 && c&0x40 != 0) {
			b.WriteByte(c)
			return
		}
		b.WriteByte(c | 0x80)
	}
}
