package binary

import (
	"errors"
	"fmt"

	"acctee/internal/wasm"
)

// ErrBadMagic indicates the input is not a wasm binary.
var ErrBadMagic = errors.New("binary: bad magic or version")

// Decode parses a wasm binary into a module.
func Decode(data []byte) (*wasm.Module, error) {
	r := &reader{data: data}
	for _, h := range header {
		b, err := r.byte()
		if err != nil || b != h {
			return nil, ErrBadMagic
		}
	}
	m := &wasm.Module{}
	for !r.eof() {
		id, err := r.byte()
		if err != nil {
			return nil, err
		}
		size, err := r.u32()
		if err != nil {
			return nil, err
		}
		payload, err := r.bytes(int(size))
		if err != nil {
			return nil, err
		}
		sr := &reader{data: payload}
		switch id {
		case secType:
			err = decodeTypes(sr, m)
		case secImport:
			err = decodeImports(sr, m)
		case secFunction:
			err = decodeFuncDecls(sr, m)
		case secTable:
			err = decodeTables(sr, m)
		case secMemory:
			err = decodeMemories(sr, m)
		case secGlobal:
			err = decodeGlobals(sr, m)
		case secExport:
			err = decodeExports(sr, m)
		case secStart:
			v, e := sr.u32()
			if e == nil {
				m.Start = &v
			}
			err = e
		case secElement:
			err = decodeElements(sr, m)
		case secCode:
			err = decodeCode(sr, m)
		case secData:
			err = decodeData(sr, m)
		default:
			// custom or unknown section: skipped
		}
		if err != nil {
			return nil, fmt.Errorf("binary: section %d: %w", id, err)
		}
	}
	return m, nil
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) eof() bool { return r.pos >= len(r.data) }

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, errors.New("unexpected end of input")
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, errors.New("unexpected end of input")
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	var v uint32
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		v |= uint32(b&0x7F) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift >= 35 {
			return 0, errors.New("leb128 u32 overflow")
		}
	}
}

func (r *reader) s64() (int64, error) {
	var v int64
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		v |= int64(b&0x7F) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= -1 << shift
			}
			return v, nil
		}
		if shift >= 70 {
			return 0, errors.New("leb128 s64 overflow")
		}
	}
}

func (r *reader) name() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) limits() (wasm.Limits, error) {
	var l wasm.Limits
	flag, err := r.byte()
	if err != nil {
		return l, err
	}
	l.Min, err = r.u32()
	if err != nil {
		return l, err
	}
	if flag == 1 {
		l.Max, err = r.u32()
		if err != nil {
			return l, err
		}
		l.HasMax = true
	}
	return l, nil
}

func decodeTypes(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		form, err := r.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return fmt.Errorf("bad functype form 0x%02x", form)
		}
		var t wasm.FuncType
		np, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < np; j++ {
			b, err := r.byte()
			if err != nil {
				return err
			}
			t.Params = append(t.Params, wasm.ValueType(b))
		}
		nr, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nr; j++ {
			b, err := r.byte()
			if err != nil {
				return err
			}
			t.Results = append(t.Results, wasm.ValueType(b))
		}
		m.Types = append(m.Types, t)
	}
	return nil
}

func decodeImports(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		mod, err := r.name()
		if err != nil {
			return err
		}
		name, err := r.name()
		if err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		im := wasm.Import{Module: mod, Name: name, Kind: wasm.ExternalKind(kind)}
		switch im.Kind {
		case wasm.ExternalFunc:
			im.TypeIdx, err = r.u32()
		case wasm.ExternalMemory:
			im.MemLimit, err = r.limits()
		default:
			return fmt.Errorf("unsupported import kind %d", kind)
		}
		if err != nil {
			return err
		}
		m.Imports = append(m.Imports, im)
	}
	return nil
}

func decodeFuncDecls(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		ti, err := r.u32()
		if err != nil {
			return err
		}
		m.Funcs = append(m.Funcs, wasm.Func{TypeIdx: ti})
	}
	return nil
}

func decodeTables(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		et, err := r.byte()
		if err != nil {
			return err
		}
		if et != 0x70 {
			return fmt.Errorf("unsupported table elem type 0x%02x", et)
		}
		l, err := r.limits()
		if err != nil {
			return err
		}
		m.Tables = append(m.Tables, wasm.Table{Limits: l})
	}
	return nil
}

func decodeMemories(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		l, err := r.limits()
		if err != nil {
			return err
		}
		m.Memories = append(m.Memories, wasm.Memory{Limits: l})
	}
	return nil
}

func decodeGlobals(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		vt, err := r.byte()
		if err != nil {
			return err
		}
		mut, err := r.byte()
		if err != nil {
			return err
		}
		init, err := decodeConstExpr(r)
		if err != nil {
			return err
		}
		m.Globals = append(m.Globals, wasm.Global{
			Type: wasm.ValueType(vt), Mutable: mut == 1, Init: init,
		})
	}
	return nil
}

func decodeConstExpr(r *reader) (wasm.Instr, error) {
	in, err := decodeInstr(r)
	if err != nil {
		return wasm.Instr{}, err
	}
	end, err := r.byte()
	if err != nil {
		return wasm.Instr{}, err
	}
	if wasm.Opcode(end) != wasm.OpEnd {
		return wasm.Instr{}, errors.New("constant expression not terminated by end")
	}
	return in, nil
}

func decodeExports(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		name, err := r.name()
		if err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		idx, err := r.u32()
		if err != nil {
			return err
		}
		m.Exports = append(m.Exports, wasm.Export{Name: name, Kind: wasm.ExternalKind(kind), Idx: idx})
	}
	return nil
}

func decodeElements(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		if _, err := r.u32(); err != nil { // table index
			return err
		}
		off, err := decodeConstExpr(r)
		if err != nil {
			return err
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		e := wasm.Element{Offset: off}
		for j := uint32(0); j < cnt; j++ {
			f, err := r.u32()
			if err != nil {
				return err
			}
			e.Funcs = append(e.Funcs, f)
		}
		m.Elements = append(m.Elements, e)
	}
	return nil
}

func decodeCode(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if int(n) != len(m.Funcs) {
		return fmt.Errorf("code count %d != function count %d", n, len(m.Funcs))
	}
	for i := uint32(0); i < n; i++ {
		size, err := r.u32()
		if err != nil {
			return err
		}
		body, err := r.bytes(int(size))
		if err != nil {
			return err
		}
		br := &reader{data: body}
		nruns, err := br.u32()
		if err != nil {
			return err
		}
		f := &m.Funcs[i]
		for j := uint32(0); j < nruns; j++ {
			cnt, err := br.u32()
			if err != nil {
				return err
			}
			vt, err := br.byte()
			if err != nil {
				return err
			}
			for k := uint32(0); k < cnt; k++ {
				f.Locals = append(f.Locals, wasm.ValueType(vt))
			}
		}
		for !br.eof() {
			in, err := decodeInstr(br)
			if err != nil {
				return fmt.Errorf("func %d: %w", i, err)
			}
			f.Body = append(f.Body, in)
		}
		if err := wasm.ValidateStructure(f.Body); err != nil {
			return fmt.Errorf("func %d: %w", i, err)
		}
	}
	return nil
}

func decodeData(r *reader, m *wasm.Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		if _, err := r.u32(); err != nil { // memory index
			return err
		}
		off, err := decodeConstExpr(r)
		if err != nil {
			return err
		}
		size, err := r.u32()
		if err != nil {
			return err
		}
		b, err := r.bytes(int(size))
		if err != nil {
			return err
		}
		m.Data = append(m.Data, wasm.Data{Offset: off, Bytes: append([]byte(nil), b...)})
	}
	return nil
}

func decodeInstr(r *reader) (wasm.Instr, error) {
	opb, err := r.byte()
	if err != nil {
		return wasm.Instr{}, err
	}
	op := wasm.Opcode(opb)
	in := wasm.Instr{Op: op}
	switch op {
	case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
		bt, err := r.byte()
		if err != nil {
			return in, err
		}
		in.BT = wasm.BlockType(bt)
	case wasm.OpBr, wasm.OpBrIf, wasm.OpCall, wasm.OpLocalGet, wasm.OpLocalSet,
		wasm.OpLocalTee, wasm.OpGlobalGet, wasm.OpGlobalSet:
		in.Idx, err = r.u32()
		if err != nil {
			return in, err
		}
	case wasm.OpCallIndirect:
		in.Idx, err = r.u32()
		if err != nil {
			return in, err
		}
		if _, err := r.byte(); err != nil { // table index
			return in, err
		}
	case wasm.OpBrTable:
		cnt, err := r.u32()
		if err != nil {
			return in, err
		}
		for j := uint32(0); j <= cnt; j++ {
			t, err := r.u32()
			if err != nil {
				return in, err
			}
			in.Table = append(in.Table, t)
		}
	case wasm.OpI32Const:
		v, err := r.s64()
		if err != nil {
			return in, err
		}
		in.U64 = uint64(uint32(int32(v)))
	case wasm.OpI64Const:
		v, err := r.s64()
		if err != nil {
			return in, err
		}
		in.U64 = uint64(v)
	case wasm.OpF32Const:
		b, err := r.bytes(4)
		if err != nil {
			return in, err
		}
		in.U64 = uint64(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	case wasm.OpF64Const:
		b, err := r.bytes(8)
		if err != nil {
			return in, err
		}
		var v uint64
		for k := 7; k >= 0; k-- {
			v = v<<8 | uint64(b[k])
		}
		in.U64 = v
	case wasm.OpMemorySize, wasm.OpMemoryGrow:
		if _, err := r.byte(); err != nil { // memory index
			return in, err
		}
	default:
		if op.IsMemAccess() {
			in.Align, err = r.u32()
			if err != nil {
				return in, err
			}
			in.Off, err = r.u32()
			if err != nil {
				return in, err
			}
		} else if _, ok := wasm.OpcodeByName(op.String()); !ok {
			return in, fmt.Errorf("unknown opcode 0x%02x", opb)
		}
	}
	return in, nil
}
