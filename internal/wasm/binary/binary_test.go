package binary_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"acctee/internal/wasm"
	"acctee/internal/wasm/binary"
)

func demoModule() *wasm.Module {
	b := wasm.NewModule("")
	emit := b.ImportFunc("env", "emit", []wasm.ValueType{wasm.I32}, nil)
	b.Memory(1, 8)
	g := b.Global("", wasm.I64, true, wasm.ConstI64(-7))
	b.Data(8, []byte{0, 1, 2, 255})
	f := b.Func("", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	l := f.Local(wasm.F64)
	f.GlobalGet(g).I64ConstV(1).Op(wasm.OpI64Add).GlobalSet(g)
	f.F64ConstV(2.5).LocalSet(l)
	f.LocalGet(0).Call(emit)
	f.LocalGet(0).I32Const(-123456).Op(wasm.OpI32Add)
	fIdx := f.End()
	b.ExportFunc("run", fIdx)
	b.Table(fIdx)
	return b.MustBuild()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := demoModule()
	bin, err := binary.Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := binary.Decode(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Binary format drops names; blank them on the source for comparison.
	c := m.Clone()
	c.Name = ""
	for i := range c.Funcs {
		c.Funcs[i].Name = ""
	}
	for i := range c.Globals {
		c.Globals[i].Name = ""
	}
	if !reflect.DeepEqual(c, back) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back, c)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := binary.Decode([]byte("not wasm at all")); err == nil {
		t.Error("expected error for bad magic")
	}
	bin, _ := binary.Encode(demoModule())
	if _, err := binary.Decode(bin[:len(bin)-3]); err == nil {
		t.Error("expected error for truncated module")
	}
}

func TestHeaderStable(t *testing.T) {
	bin, err := binary.Encode(&wasm.Module{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	want := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}
	if len(bin) != 8 || !reflect.DeepEqual(bin, want) {
		t.Errorf("empty module encoding = % x", bin)
	}
}

// TestLEBConstRoundTrip property-checks signed constant encoding through a
// module round trip.
func TestLEBConstRoundTrip(t *testing.T) {
	f := func(v32 int32, v64 int64) bool {
		b := wasm.NewModule("")
		fb := b.Func("", nil, []wasm.ValueType{wasm.I64})
		fb.I32Const(v32).Op(wasm.OpDrop)
		fb.I64ConstV(v64)
		b.ExportFunc("c", fb.End())
		bin, err := binary.Encode(b.MustBuild())
		if err != nil {
			return false
		}
		back, err := binary.Decode(bin)
		if err != nil {
			return false
		}
		body := back.Funcs[0].Body
		return body[0].I32Val() == v32 && body[2].I64Val() == v64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFloatConstRoundTrip property-checks float bit patterns.
func TestFloatConstRoundTrip(t *testing.T) {
	f := func(f32 float32, f64 float64) bool {
		b := wasm.NewModule("")
		fb := b.Func("", nil, []wasm.ValueType{wasm.F64})
		fb.F32ConstV(f32).Op(wasm.OpDrop)
		fb.F64ConstV(f64)
		b.ExportFunc("c", fb.End())
		bin, err := binary.Encode(b.MustBuild())
		if err != nil {
			return false
		}
		back, err := binary.Decode(bin)
		if err != nil {
			return false
		}
		body := back.Funcs[0].Body
		// compare bit patterns (NaN-safe)
		return body[0].U64 == uint64(mathFloat32bits(f32)) && body[2].U64 == mathFloat64bits(f64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mathFloat32bits(f float32) uint32 { return uint32(wasm.ConstF32(f).U64) }
func mathFloat64bits(f float64) uint64 { return wasm.ConstF64(f).U64 }
