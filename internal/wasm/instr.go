package wasm

import (
	"fmt"
	"math"
	"strconv"
)

// BlockType describes the result type of a block/loop/if. The MVP permits
// either no result or a single value type. The encoding matches the binary
// format (0x40 = empty); the zero value is treated as empty too so that
// instructions without block semantics need not set the field.
type BlockType byte

// BlockEmpty is the block type of a block producing no value.
const BlockEmpty BlockType = 0x40

// BlockOf returns the block type producing a single value of type v.
func BlockOf(v ValueType) BlockType { return BlockType(v) }

// Value returns the single result type and whether one exists.
func (b BlockType) Value() (ValueType, bool) {
	if b == BlockEmpty || b == 0 {
		return 0, false
	}
	return ValueType(b), true
}

// Instr is a single flat instruction. Structured instructions (block, loop,
// if/else) appear inline and are delimited by OpEnd, exactly as in the
// binary format. The immediate fields used depend on Op:
//
//	Idx    — local/global/function/type index, or br/br_if label depth
//	U64    — constant bits (i32/i64/f32/f64 const)
//	Off    — memarg offset (loads/stores)
//	Align  — memarg alignment exponent (loads/stores)
//	BT     — block result type (block/loop/if)
//	Table  — br_table targets; the final entry is the default label
type Instr struct {
	Op    Opcode
	Idx   uint32
	Align uint32
	Off   uint32
	U64   uint64
	BT    BlockType
	Table []uint32
}

// Convenience constructors for common instructions.

// ConstI32 builds an i32.const instruction.
func ConstI32(v int32) Instr { return Instr{Op: OpI32Const, U64: uint64(uint32(v))} }

// ConstI64 builds an i64.const instruction.
func ConstI64(v int64) Instr { return Instr{Op: OpI64Const, U64: uint64(v)} }

// ConstF32 builds an f32.const instruction.
func ConstF32(v float32) Instr { return Instr{Op: OpF32Const, U64: uint64(math.Float32bits(v))} }

// ConstF64 builds an f64.const instruction.
func ConstF64(v float64) Instr { return Instr{Op: OpF64Const, U64: math.Float64bits(v)} }

// Op1 builds an instruction with no immediates.
func Op1(op Opcode) Instr { return Instr{Op: op} }

// WithIdx builds an instruction with a single index immediate.
func WithIdx(op Opcode, idx uint32) Instr { return Instr{Op: op, Idx: idx} }

// I32Val returns the i32 constant carried by the instruction.
func (in Instr) I32Val() int32 { return int32(uint32(in.U64)) }

// I64Val returns the i64 constant carried by the instruction.
func (in Instr) I64Val() int64 { return int64(in.U64) }

// F32Val returns the f32 constant carried by the instruction.
func (in Instr) F32Val() float32 { return math.Float32frombits(uint32(in.U64)) }

// F64Val returns the f64 constant carried by the instruction.
func (in Instr) F64Val() float64 { return math.Float64frombits(in.U64) }

// HasMemarg reports whether the instruction carries a memarg immediate.
func (in Instr) HasMemarg() bool { return in.Op.IsMemAccess() }

// String renders the instruction in text-format style (without nesting).
func (in Instr) String() string {
	switch in.Op {
	case OpI32Const:
		return "i32.const " + strconv.FormatInt(int64(in.I32Val()), 10)
	case OpI64Const:
		return "i64.const " + strconv.FormatInt(in.I64Val(), 10)
	case OpF32Const:
		return "f32.const " + formatFloat(float64(in.F32Val()), 32)
	case OpF64Const:
		return "f64.const " + formatFloat(in.F64Val(), 64)
	case OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet,
		OpCall, OpBr, OpBrIf:
		return in.Op.String() + " " + strconv.FormatUint(uint64(in.Idx), 10)
	case OpCallIndirect:
		return "call_indirect (type " + strconv.FormatUint(uint64(in.Idx), 10) + ")"
	case OpBrTable:
		s := "br_table"
		for _, t := range in.Table {
			s += " " + strconv.FormatUint(uint64(t), 10)
		}
		return s
	case OpBlock, OpLoop, OpIf:
		s := in.Op.String()
		if v, ok := in.BT.Value(); ok {
			s += " (result " + v.String() + ")"
		}
		return s
	default:
		if in.HasMemarg() {
			s := in.Op.String()
			if in.Off != 0 {
				s += " offset=" + strconv.FormatUint(uint64(in.Off), 10)
			}
			return s
		}
		return in.Op.String()
	}
}

func formatFloat(f float64, bits int) string {
	if math.IsNaN(f) {
		return "nan"
	}
	if math.IsInf(f, 1) {
		return "inf"
	}
	if math.IsInf(f, -1) {
		return "-inf"
	}
	return strconv.FormatFloat(f, 'g', -1, bits)
}

// CountBodyInstrs counts the executable instructions in a body, excluding
// the structural delimiters end/else that carry no runtime cost in the
// paper's counting model (§3.5: increments are based on the instructions
// contained in a basic block).
func CountBodyInstrs(body []Instr) int {
	n := 0
	for _, in := range body {
		if in.Op == OpEnd || in.Op == OpElse {
			continue
		}
		n++
	}
	return n
}

// StackEffect returns the operand-stack pops and pushes of one dynamic
// execution of op. It covers every opcode whose effect is independent of
// module context; for call/call_indirect (which need the callee signature)
// and for the structured control opcodes (whose effect depends on block
// types and branch arities) it returns ok == false. The interpreter's
// lowering pass uses it to precompute static stack heights.
func (op Opcode) StackEffect() (pop, push int, ok bool) {
	switch op {
	case OpNop:
		return 0, 0, true
	case OpDrop:
		return 1, 0, true
	case OpSelect:
		return 3, 1, true
	case OpLocalGet, OpGlobalGet, OpMemorySize,
		OpI32Const, OpI64Const, OpF32Const, OpF64Const:
		return 0, 1, true
	case OpLocalSet, OpGlobalSet:
		return 1, 0, true
	case OpLocalTee, OpMemoryGrow, OpI32Eqz, OpI64Eqz:
		return 1, 1, true
	}
	switch {
	case op.IsLoad():
		return 1, 1, true
	case op.IsStore():
		return 2, 0, true
	case op >= OpI32Eq && op <= OpF64Ge: // binary comparisons
		return 2, 1, true
	case op >= OpI32Clz && op <= OpI32Popcnt, // unary numerics
		op >= OpI64Clz && op <= OpI64Popcnt,
		op >= OpF32Abs && op <= OpF32Sqrt,
		op >= OpF64Abs && op <= OpF64Sqrt,
		op >= OpI32WrapI64 && op <= OpF64ReinterpretI: // conversions
		return 1, 1, true
	case op >= OpI32Add && op <= OpI32Rotr, // binary numerics
		op >= OpI64Add && op <= OpI64Rotr,
		op >= OpF32Add && op <= OpF32Copysign,
		op >= OpF64Add && op <= OpF64Copysign:
		return 2, 1, true
	}
	return 0, 0, false
}

// ValidateStructure performs a cheap structural check: every block/loop/if
// has a matching end and the body ends exactly once at depth zero.
func ValidateStructure(body []Instr) error {
	depth := 0
	for i, in := range body {
		switch in.Op {
		case OpBlock, OpLoop, OpIf:
			depth++
		case OpElse:
			if depth == 0 {
				return fmt.Errorf("instr %d: else outside if", i)
			}
		case OpEnd:
			depth--
			if depth < 0 {
				if i != len(body)-1 {
					return fmt.Errorf("instr %d: end below depth zero before body end", i)
				}
			}
		}
	}
	if depth != -1 {
		return fmt.Errorf("unbalanced blocks: depth %d at body end", depth)
	}
	if len(body) == 0 || body[len(body)-1].Op != OpEnd {
		return fmt.Errorf("body must terminate with end")
	}
	return nil
}
