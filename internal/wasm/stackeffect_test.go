package wasm

import "testing"

// TestStackEffectCompleteness pins the operand-stack effect of every
// defined opcode. The interpreter's lowerings (the flat pass's static
// height analysis and the register allocator's home-slot assignment) trust
// StackEffect for every non-control, non-call opcode; a new opcode that
// reaches the lowering without an entry here — or with the wrong arity —
// would silently corrupt register assignment, so this test enumerates the
// full opcode space and fails on any unclassified instruction.
func TestStackEffectCompleteness(t *testing.T) {
	// Opcodes whose stack effect depends on module context (callee
	// signatures) or block structure (label arities). These are exactly the
	// ones both lowerings special-case instead of consulting StackEffect.
	contextual := map[Opcode]bool{
		OpUnreachable: true, OpBlock: true, OpLoop: true, OpIf: true,
		OpElse: true, OpEnd: true, OpBr: true, OpBrIf: true,
		OpBrTable: true, OpReturn: true, OpCall: true, OpCallIndirect: true,
	}

	type effect struct{ pop, push int }
	want := map[Opcode]effect{
		OpNop:    {0, 0},
		OpDrop:   {1, 0},
		OpSelect: {3, 1},
	}
	add := func(e effect, ops ...Opcode) {
		for _, op := range ops {
			want[op] = e
		}
	}
	// Earlier entries win: i64.eqz (0x50) sits numerically inside the
	// comparison byte range but is a unary op, exactly as in StackEffect's
	// own explicit-case-first structure.
	addRange := func(e effect, lo, hi Opcode) {
		for op := lo; op <= hi; op++ {
			if _, defined := opNames[op]; !defined {
				continue
			}
			if _, done := want[op]; !done {
				want[op] = e
			}
		}
	}

	// Producers: push one value from locals/globals/immediates/memory size.
	add(effect{0, 1}, OpLocalGet, OpGlobalGet, OpMemorySize,
		OpI32Const, OpI64Const, OpF32Const, OpF64Const)
	// Consumers: pop one value into locals/globals.
	add(effect{1, 0}, OpLocalSet, OpGlobalSet)
	// One-in-one-out value transforms.
	add(effect{1, 1}, OpLocalTee, OpMemoryGrow, OpI32Eqz, OpI64Eqz)
	// Memory: loads pop an address and push a value; stores pop both.
	addRange(effect{1, 1}, OpI32Load, OpI64Load32U)
	addRange(effect{2, 0}, OpI32Store, OpI64Store32)
	// Binary comparisons.
	addRange(effect{2, 1}, OpI32Eq, OpF64Ge)
	// Unary numerics and conversions.
	addRange(effect{1, 1}, OpI32Clz, OpI32Popcnt)
	addRange(effect{1, 1}, OpI64Clz, OpI64Popcnt)
	addRange(effect{1, 1}, OpF32Abs, OpF32Sqrt)
	addRange(effect{1, 1}, OpF64Abs, OpF64Sqrt)
	addRange(effect{1, 1}, OpI32WrapI64, OpF64ReinterpretI)
	// Binary numerics.
	addRange(effect{2, 1}, OpI32Add, OpI32Rotr)
	addRange(effect{2, 1}, OpI64Add, OpI64Rotr)
	addRange(effect{2, 1}, OpF32Add, OpF32Copysign)
	addRange(effect{2, 1}, OpF64Add, OpF64Copysign)

	for _, op := range AllOpcodes() {
		pop, push, ok := op.StackEffect()
		if contextual[op] {
			if ok {
				t.Errorf("%s: StackEffect ok for context-dependent opcode", op)
			}
			if _, claimed := want[op]; claimed {
				t.Errorf("%s: test table classifies a contextual opcode", op)
			}
			continue
		}
		e, classified := want[op]
		if !classified {
			t.Errorf("%s: defined opcode missing from completeness table", op)
			continue
		}
		if !ok {
			t.Errorf("%s: StackEffect not ok for value opcode", op)
			continue
		}
		if pop != e.pop || push != e.push {
			t.Errorf("%s: StackEffect = (%d,%d), want (%d,%d)", op, pop, push, e.pop, e.push)
		}
	}

	// The two partitions must tile the defined opcode space exactly.
	if got, all := len(want)+len(contextual), len(AllOpcodes()); got != all {
		t.Errorf("classification covers %d opcodes, %d defined", got, all)
	}
}
