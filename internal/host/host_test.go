package host_test

import (
	"errors"
	"testing"

	"acctee/internal/host"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/wasm"
	"acctee/internal/wasm/validate"
	"acctee/internal/weights"
)

// sideModule builds a side module that imports memcpy and abs from the
// main module and exports shift(dst, src, len, bias).
func sideModule() *wasm.Module {
	b := wasm.NewModule("side")
	memcpy := b.ImportFunc("main", "memcpy",
		[]wasm.ValueType{wasm.I32, wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	abs := b.ImportFunc("main", "abs", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	g := b.Global("calls", wasm.I64, true, wasm.ConstI64(0))
	f := b.Func("shift", []wasm.ValueType{wasm.I32, wasm.I32, wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	f.GlobalGet(g).I64ConstV(1).Op(wasm.OpI64Add).GlobalSet(g)
	f.LocalGet(0).LocalGet(1).LocalGet(2).Call(memcpy).Op(wasm.OpDrop)
	f.LocalGet(3).Call(abs)
	b.ExportFunc("shift", f.End())
	return b.MustBuild()
}

func TestLinkAndRun(t *testing.T) {
	main := host.StdlibMain(1)
	merged, err := host.Link(main, sideModule())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	if err := validate.Module(merged); err != nil {
		t.Fatalf("merged module invalid: %v", err)
	}
	vm, err := interp.Instantiate(merged, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	copy(vm.Memory()[100:], []byte("hello"))
	res, err := vm.InvokeExport("shift", 200, 100, 5, uint64(uint32(0xFFFFFFF8))) // bias -8
	if err != nil {
		t.Fatalf("shift: %v", err)
	}
	if res[0] != 8 {
		t.Errorf("abs(-8) via side module = %d", res[0])
	}
	if string(vm.Memory()[200:205]) != "hello" {
		t.Error("memcpy via main module did not copy")
	}
	// Side-module global must have been rebased and updated.
	found := false
	for i, g := range merged.Globals {
		if g.Name == "calls" {
			v, _ := vm.Global(uint32(i))
			if v != 1 {
				t.Errorf("side global = %d, want 1", v)
			}
			found = true
		}
	}
	if !found {
		t.Error("side global lost in merge")
	}
}

func TestLinkRejectsBadSides(t *testing.T) {
	main := host.StdlibMain(1)

	withMem := wasm.NewModule("m")
	withMem.Memory(1, 1)
	if _, err := host.Link(main, withMem.MustBuild()); !errors.Is(err, host.ErrSideHasMemory) {
		t.Errorf("memory side: %v", err)
	}

	b := wasm.NewModule("m")
	b.ImportFunc("main", "no_such_fn", nil, nil)
	f := b.Func("f", nil, nil)
	f.End()
	var unresolved *host.UnresolvedImportError
	if _, err := host.Link(main, b.MustBuild()); !errors.As(err, &unresolved) {
		t.Errorf("unresolved import: %v", err)
	}

	// signature mismatch
	b2 := wasm.NewModule("m")
	b2.ImportFunc("main", "abs", []wasm.ValueType{wasm.I64}, []wasm.ValueType{wasm.I64})
	f2 := b2.Func("f", nil, nil)
	f2.End()
	if _, err := host.Link(main, b2.MustBuild()); err == nil {
		t.Error("signature mismatch accepted")
	}

	// export clash
	b3 := wasm.NewModule("m")
	f3 := b3.Func("abs2", nil, nil)
	idx := f3.End()
	b3.ExportFunc("abs", idx)
	if _, err := host.Link(main, b3.MustBuild()); !errors.Is(err, host.ErrExportClash) {
		t.Errorf("export clash: %v", err)
	}
}

// TestLinkedModuleInstrumentsExactly: the §4.1 deployment instruments the
// merged module; the exactness invariant must survive linking.
func TestLinkedModuleInstrumentsExactly(t *testing.T) {
	merged, err := host.Link(host.StdlibMain(1), sideModule())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.Instantiate(merged, interp.Config{CostModel: weights.Unit()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InvokeExport("shift", 300, 0, 16, 5); err != nil {
		t.Fatal(err)
	}
	want := ref.Cost()
	for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
		res, err := instrument.Instrument(merged, instrument.Options{Level: lvl})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := interp.Instantiate(res.Module, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.InvokeExport("shift", 300, 0, 16, 5); err != nil {
			t.Fatal(err)
		}
		got, _ := vm.Global(res.CounterGlobal)
		if got != want {
			t.Errorf("level %v: counter %d != %d", lvl, got, want)
		}
	}
}
