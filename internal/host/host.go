// Package host implements the runtime embedding concerns of AccTEE's
// execution sandbox (paper §4.1): the Emscripten-style main-module /
// side-module split. Accepting workload-supplied JavaScript glue code would
// let workloads interfere with the accounting, so AccTEE statically ships
// one audited *main module* exporting the standard-library surface, and
// every dynamically loaded workload is a *side module* that may only import
// from it. Link statically merges a side module into the main module,
// producing a single self-contained module for the accounting enclave.
package host

import (
	"errors"
	"fmt"

	"acctee/internal/wasm"
)

// Linking errors.
var (
	ErrSideHasMemory = errors.New("host: side modules must import memory, not define it")
	ErrSideHasTable  = errors.New("host: side modules must not define tables")
	ErrSideHasStart  = errors.New("host: side modules must not declare start functions")
	ErrExportClash   = errors.New("host: side module export collides with main module")
)

// UnresolvedImportError reports a side-module import the main module does
// not export.
type UnresolvedImportError struct {
	Module, Name string
}

func (e *UnresolvedImportError) Error() string {
	return fmt.Sprintf("host: unresolved side-module import %s.%s", e.Module, e.Name)
}

// Link merges side into main. Side-module function imports from module
// "main" (or "env", Emscripten's default namespace) resolve against the
// main module's exports; everything else in the side module is rebased
// into the merged index spaces. The merged module exports the union of
// both modules' exports.
func Link(main, side *wasm.Module) (*wasm.Module, error) {
	if len(side.Memories) > 0 {
		return nil, ErrSideHasMemory
	}
	if len(side.Tables) > 0 || len(side.Elements) > 0 {
		return nil, ErrSideHasTable
	}
	if side.Start != nil {
		return nil, ErrSideHasStart
	}

	out := main.Clone()
	mainFuncs := uint32(main.NumImportedFuncs() + len(main.Funcs))

	// Remap side type indices into the merged type section.
	typeMap := make([]uint32, len(side.Types))
	for i, t := range side.Types {
		typeMap[i] = out.AddType(wasm.FuncType{
			Params:  append([]wasm.ValueType(nil), t.Params...),
			Results: append([]wasm.ValueType(nil), t.Results...),
		})
	}

	// Resolve side function imports against main exports (checking
	// signatures), build the function index translation table.
	nSideImports := side.NumImportedFuncs()
	funcMap := make([]uint32, nSideImports+len(side.Funcs))
	impIdx := 0
	for _, im := range side.Imports {
		switch im.Kind {
		case wasm.ExternalFunc:
			if im.Module != "main" && im.Module != "env" {
				return nil, &UnresolvedImportError{im.Module, im.Name}
			}
			target, ok := main.ExportedFunc(im.Name)
			if !ok {
				return nil, &UnresolvedImportError{im.Module, im.Name}
			}
			want := side.Types[im.TypeIdx]
			got, err := main.FuncTypeAt(target)
			if err != nil {
				return nil, err
			}
			if !got.Equal(want) {
				return nil, fmt.Errorf("host: import %s.%s signature mismatch: main exports %s, side wants %s",
					im.Module, im.Name, got, want)
			}
			funcMap[impIdx] = target
			impIdx++
		case wasm.ExternalMemory:
			// side imports the main module's memory: nothing to merge,
			// offsets already refer to the shared linear memory.
		default:
			return nil, fmt.Errorf("host: unsupported side import kind %d", im.Kind)
		}
	}
	for i := range side.Funcs {
		funcMap[nSideImports+i] = mainFuncs + uint32(i)
	}

	globalBase := uint32(len(main.Globals))
	for _, g := range side.Globals {
		out.Globals = append(out.Globals, g)
	}

	// Rebase and append side functions.
	for _, f := range side.Funcs {
		nf := wasm.Func{
			TypeIdx: typeMap[f.TypeIdx],
			Locals:  append([]wasm.ValueType(nil), f.Locals...),
			Name:    f.Name,
			Body:    make([]wasm.Instr, len(f.Body)),
		}
		for pc, in := range f.Body {
			ni := in
			switch in.Op {
			case wasm.OpCall:
				if int(in.Idx) >= len(funcMap) {
					return nil, fmt.Errorf("host: side call index %d out of range", in.Idx)
				}
				ni.Idx = funcMap[in.Idx]
			case wasm.OpCallIndirect:
				ni.Idx = typeMap[in.Idx]
			case wasm.OpGlobalGet, wasm.OpGlobalSet:
				ni.Idx = in.Idx + globalBase
			}
			if in.Table != nil {
				ni.Table = append([]uint32(nil), in.Table...)
			}
			nf.Body[pc] = ni
		}
		out.Funcs = append(out.Funcs, nf)
	}

	// Side data segments land in the shared memory.
	for _, d := range side.Data {
		out.Data = append(out.Data, wasm.Data{
			Offset: d.Offset,
			Bytes:  append([]byte(nil), d.Bytes...),
		})
	}

	// Merge exports; side exports win only if the name is free.
	taken := make(map[string]bool, len(out.Exports))
	for _, e := range out.Exports {
		taken[e.Name] = true
	}
	for _, e := range side.Exports {
		if e.Kind != wasm.ExternalFunc {
			continue // memory/table exports belong to the main module
		}
		if taken[e.Name] {
			return nil, fmt.Errorf("%w: %q", ErrExportClash, e.Name)
		}
		if int(e.Idx) >= len(funcMap) {
			return nil, fmt.Errorf("host: side export %q index out of range", e.Name)
		}
		out.Exports = append(out.Exports, wasm.Export{
			Name: e.Name, Kind: wasm.ExternalFunc, Idx: funcMap[e.Idx],
		})
		taken[e.Name] = true
	}
	if side.Name != "" {
		out.Name = main.Name + "+" + side.Name
	}
	return out, nil
}

// StdlibMain builds the audited main module the accounting enclave ships:
// linear memory plus the standard-library surface side modules import
// (paper §4.1: "a main module which provides all standard library
// functions together with its glue code").
func StdlibMain(memPages uint32) *wasm.Module {
	b := wasm.NewModule("main")
	b.Memory(memPages, memPages)

	// abs(i32) -> i32
	abs := b.Func("abs", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	abs.LocalGet(0).I32Const(0).Op(wasm.OpI32LtS)
	abs.If(wasm.BlockOf(wasm.I32), func() {
		abs.I32Const(0).LocalGet(0).Op(wasm.OpI32Sub)
	}, func() {
		abs.LocalGet(0)
	})
	b.ExportFunc("abs", abs.End())

	// memset(dst, byte, len) -> dst
	ms := b.Func("memset", []wasm.ValueType{wasm.I32, wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	i := ms.Local(wasm.I32)
	ms.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 2)}, 1, func() {
		ms.LocalGet(0).LocalGet(i).Op(wasm.OpI32Add)
		ms.LocalGet(1)
		ms.Store(wasm.OpI32Store8, 0)
	})
	ms.LocalGet(0)
	b.ExportFunc("memset", ms.End())

	// memcpy(dst, src, len) -> dst
	mc := b.Func("memcpy", []wasm.ValueType{wasm.I32, wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	j := mc.Local(wasm.I32)
	mc.ForI32(j, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 2)}, 1, func() {
		mc.LocalGet(0).LocalGet(j).Op(wasm.OpI32Add)
		mc.LocalGet(1).LocalGet(j).Op(wasm.OpI32Add)
		mc.Load(wasm.OpI32Load8U, 0)
		mc.Store(wasm.OpI32Store8, 0)
	})
	mc.LocalGet(0)
	b.ExportFunc("memcpy", mc.End())

	// imin/imax(i32, i32) -> i32
	for _, fn := range []struct {
		name string
		op   wasm.Opcode
	}{{"imin", wasm.OpI32LtS}, {"imax", wasm.OpI32GtS}} {
		f := b.Func(fn.name, []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
		f.LocalGet(0).LocalGet(1)
		f.LocalGet(0).LocalGet(1).Op(fn.op)
		f.Op(wasm.OpSelect)
		b.ExportFunc(fn.name, f.End())
	}

	return b.MustBuild()
}
