package instrument_test

import (
	"math/rand"
	"testing"

	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// TestCounterUnaddressableByWorkload verifies the §3.5 protection
// argument: the counter global is appended after all workload globals, and
// a workload that references the future counter index is rejected by
// validation before instrumentation even runs — "since operations on
// global variables must identify the operand at compile time, it is
// impossible to modify the counter other than with the injected code".
func TestCounterUnaddressableByWorkload(t *testing.T) {
	b := wasm.NewModule("evil")
	b.Global("mine", wasm.I64, true, wasm.ConstI64(0))
	f := b.Func("f", nil, nil)
	// global index 1 does not exist yet — it would become the counter.
	f.I64ConstV(-1_000_000).Emit(wasm.WithIdx(wasm.OpGlobalSet, 1))
	f.End()
	m := b.MustBuild()
	if _, err := instrument.Instrument(m, instrument.Options{}); err == nil {
		t.Fatal("module addressing the future counter index was accepted")
	}
}

// TestCounterOnlyWrittenByInjectedCode: in the instrumented module, every
// write to the counter global is one of the injected update shapes
// (global.get c / const / add / global.set c, or the loop epilogue ending
// in global.set c) — there is no bare store of an attacker-chosen value.
func TestCounterOnlyWrittenByInjectedCode(t *testing.T) {
	res, err := instrument.Instrument(sumModule(), instrument.Options{Level: instrument.LoopBased})
	if err != nil {
		t.Fatal(err)
	}
	for fi, fn := range res.Module.Funcs {
		for pc, in := range fn.Body {
			if in.Op == wasm.OpGlobalSet && in.Idx == res.CounterGlobal {
				// the instruction before the set must be an i64.add whose
				// chain started from global.get counter
				if pc == 0 || fn.Body[pc-1].Op != wasm.OpI64Add {
					t.Errorf("func %d pc %d: counter write not preceded by i64.add", fi, pc)
				}
			}
			if in.Op == wasm.OpGlobalGet && in.Idx == res.CounterGlobal {
				continue // reads are fine (they feed the adds)
			}
		}
	}
}

// TestRandomWeightTablesExact: exactness holds for arbitrary weight
// tables, not just unit/calibrated ones (§3.7 runtime weight adjustment).
func TestRandomWeightTablesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		tbl := weights.Unit()
		for _, op := range wasm.AllOpcodes() {
			tbl.Set(op, uint64(rng.Intn(64)+1))
		}
		m := sumModule()
		ref, err := interp.Instantiate(m, interp.Config{CostModel: tbl})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.InvokeExport("sum", 37); err != nil {
			t.Fatal(err)
		}
		want := ref.Cost()
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			res, err := instrument.Instrument(m, instrument.Options{Level: lvl, Weights: tbl})
			if err != nil {
				t.Fatal(err)
			}
			vm, err := interp.Instantiate(res.Module, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := vm.InvokeExport("sum", 37); err != nil {
				t.Fatal(err)
			}
			got, _ := vm.Global(res.CounterGlobal)
			if got != want {
				t.Errorf("trial %d level %v: counter %d != %d", trial, lvl, got, want)
			}
		}
	}
}

// TestInstrumentedModuleRoundTripsThroughWAT: the deployment pipeline
// prints instrumented modules to WAT (cmd/acctee-instrument); behaviour
// must survive.
func TestInstrumentedStatsConsistent(t *testing.T) {
	res, err := instrument.Instrument(sumModule(), instrument.Options{Level: instrument.Naive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IncrementsPlaced != res.Stats.IncrementsNaive {
		t.Errorf("naive pass placed %d of %d increments", res.Stats.IncrementsPlaced, res.Stats.IncrementsNaive)
	}
	flow, err := instrument.Instrument(sumModule(), instrument.Options{Level: instrument.FlowBased})
	if err != nil {
		t.Fatal(err)
	}
	if flow.Stats.IncrementsPlaced > res.Stats.IncrementsPlaced {
		t.Error("flow-based placed more increments than naive")
	}
}
