package instrument

import (
	"acctee/internal/cfg"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// countedLoop describes a loop matched by the loop-based optimisation: the
// canonical counted-loop shape emitted by compilers (and by the builder's
// ForI32 helper):
//
//	blockPC:  block
//	loopPC:   loop
//	          local.get v ; <limit instrs> ; <cmp> ; br_if 1   (header)
//	          <straight-line body>
//	          local.get v ; i32.const step ; i32.add ; local.set v
//	          br 0
//	loopEnd:  end
//	blockEnd: end
//
// Exactness requires the loop variable v to be written exactly once per
// iteration by a constant step, and the single br_if 1 to be the only exit.
// These are also the conditions the paper imposes to stop the workload from
// gaming the optimisation by fiddling with the loop variable (§3.6).
type countedLoop struct {
	blockPC  int
	loopPC   int
	brIfPC   int // exit branch (end of header segment)
	backBrPC int // br 0 (end of body segment)
	loopEnd  int
	blockEnd int
	loopVar  uint32
	step     int32
}

// detectCountedLoops scans a function body for loops matching the canonical
// shape above.
func detectCountedLoops(body []wasm.Instr, g *cfg.Graph) []countedLoop {
	var loops []countedLoop
	ends := matchEnds(body)
	for pc := 0; pc+1 < len(body); pc++ {
		if body[pc].Op != wasm.OpBlock || body[pc+1].Op != wasm.OpLoop {
			continue
		}
		blockEnd := ends[pc]
		loopPC := pc + 1
		loopEnd := ends[loopPC]
		if loopEnd+1 != blockEnd {
			continue // loop must be the block's sole content
		}
		lp, ok := matchLoopShape(body, pc, loopPC, loopEnd, blockEnd)
		if !ok {
			continue
		}
		loops = append(loops, lp)
	}
	return loops
}

// matchEnds maps each block/loop/if opener pc to its matching end pc.
func matchEnds(body []wasm.Instr) map[int]int {
	ends := make(map[int]int)
	var stack []int
	for pc, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			stack = append(stack, pc)
		case wasm.OpEnd:
			if len(stack) > 0 {
				ends[stack[len(stack)-1]] = pc
				stack = stack[:len(stack)-1]
			}
		}
	}
	return ends
}

func matchLoopShape(body []wasm.Instr, blockPC, loopPC, loopEnd, blockEnd int) (countedLoop, bool) {
	var lp countedLoop
	lp.blockPC, lp.loopPC, lp.loopEnd, lp.blockEnd = blockPC, loopPC, loopEnd, blockEnd

	// Header must start with local.get v.
	hdr := loopPC + 1
	if hdr >= loopEnd || body[hdr].Op != wasm.OpLocalGet {
		return lp, false
	}
	lp.loopVar = body[hdr].Idx

	// Find the single br_if (must target depth 1 = the wrapping block) and
	// the single back-edge br 0 which must be the last body instruction.
	brIf := -1
	for pc := hdr; pc < loopEnd; pc++ {
		op := body[pc].Op
		switch op {
		case wasm.OpBrIf:
			if brIf >= 0 || body[pc].Idx != 1 {
				return lp, false
			}
			brIf = pc
		case wasm.OpBr:
			if pc != loopEnd-1 || body[pc].Idx != 0 {
				return lp, false
			}
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf, wasm.OpElse, wasm.OpBrTable,
			wasm.OpReturn, wasm.OpUnreachable:
			// nested control flow or extra exits: not a simple counted loop
			return lp, false
		}
	}
	if brIf < 0 || body[loopEnd-1].Op != wasm.OpBr {
		return lp, false
	}
	lp.brIfPC = brIf
	lp.backBrPC = loopEnd - 1

	// Header instructions (between local.get v and br_if) must not write
	// any state the trip-count computation depends on: reject writes to v
	// and all global writes.
	for pc := hdr + 1; pc < brIf; pc++ {
		in := body[pc]
		if (in.Op == wasm.OpLocalSet || in.Op == wasm.OpLocalTee) && in.Idx == lp.loopVar {
			return lp, false
		}
		if in.Op == wasm.OpGlobalSet {
			return lp, false
		}
	}

	// The loop variable must be written exactly once in the body, by the
	// canonical `local.get v ; i32.const step ; i32.add ; local.set v`
	// immediately before the back edge.
	writes := 0
	for pc := brIf + 1; pc < loopEnd; pc++ {
		in := body[pc]
		if (in.Op == wasm.OpLocalSet || in.Op == wasm.OpLocalTee) && in.Idx == lp.loopVar {
			writes++
		}
	}
	if writes != 1 {
		return lp, false
	}
	setPC := lp.backBrPC - 1
	if setPC-3 <= brIf {
		return lp, false
	}
	if body[setPC].Op != wasm.OpLocalSet || body[setPC].Idx != lp.loopVar {
		return lp, false
	}
	if body[setPC-1].Op != wasm.OpI32Add ||
		body[setPC-2].Op != wasm.OpI32Const ||
		body[setPC-3].Op != wasm.OpLocalGet || body[setPC-3].Idx != lp.loopVar {
		return lp, false
	}
	lp.step = body[setPC-2].I32Val()
	if lp.step == 0 {
		return lp, false
	}
	return lp, true
}

// applyLoopOpt rewrites accounting for one counted loop:
//
//   - a fresh local captures the loop variable before the block
//     (prologue, inserted before the `block` opener);
//   - header and body blocks get no per-iteration increments;
//   - after the block's end an epilogue computes the trip count
//     N = (v_end − v_start)/step and charges
//     counter += (W_header + W_body)·N + W_header
//     (the header executes N+1 times, the body N times).
//
// All blocks covered by the loop region are marked protected so the
// flow-based passes do not move counts across it.
func applyLoopOpt(f *wasm.Func, nparams int, g *cfg.Graph, lp countedLoop, counter uint32,
	tbl *weights.Table, incr []uint64, protected []bool, inserts map[int][]wasm.Instr) {

	body := f.Body
	hdrBlk := g.BlockAt(lp.loopPC + 1)
	bodyBlk := g.BlockAt(lp.brIfPC + 1)

	wHeader := cfg.RangeCost(body, hdrBlk.Start, hdrBlk.Term, tbl.Weight)
	wBody := cfg.RangeCost(body, bodyBlk.Start, bodyBlk.Term, tbl.Weight)
	// The loop opener executes once per region entry; its segment
	// [blockPC+1, loopPC] is inside the protected region, so fold its weight
	// into the epilogue constant.
	wOnce := cfg.RangeCost(body, lp.blockPC+1, lp.loopPC, tbl.Weight)
	// The block opener itself usually sits at the end of the predecessor
	// basic block (after the loop-variable initialisation), whose increment
	// charges it. With an empty prologue — `block` starting its own basic
	// block, as hand-written WAT does — that block is [blockPC, blockPC],
	// lies wholly inside the protected region and is zeroed below, so the
	// opener's once-per-entry weight must be recovered here too.
	if g.BlockAt(lp.blockPC).Start == lp.blockPC {
		wOnce += tbl.Weight(body[lp.blockPC].Op)
	}

	// Zero the per-iteration increments and protect the whole region
	// (every block whose instructions lie within [blockPC, blockEnd]).
	for _, b := range g.Blocks {
		if b.Start >= lp.blockPC && b.Term <= lp.blockEnd {
			incr[b.ID] = 0
			protected[b.ID] = true
		}
	}

	// Fresh local capturing the loop variable's entry value.
	saved := uint32(nparams + len(f.Locals))
	f.Locals = append(f.Locals, wasm.I32)

	// Prologue: saved = v (before the block opener).
	inserts[lp.blockPC] = append(inserts[lp.blockPC],
		wasm.WithIdx(wasm.OpLocalGet, lp.loopVar),
		wasm.WithIdx(wasm.OpLocalSet, saved),
	)

	// Epilogue: counter += (wHeader+wBody) * (v - saved)/step + wHeader,
	// inserted immediately after the block's end.
	epi := []wasm.Instr{
		wasm.WithIdx(wasm.OpGlobalGet, counter),
		wasm.WithIdx(wasm.OpLocalGet, lp.loopVar),
		wasm.WithIdx(wasm.OpLocalGet, saved),
		wasm.Op1(wasm.OpI32Sub),
		wasm.ConstI32(lp.step),
		wasm.Op1(wasm.OpI32DivS),
		wasm.Op1(wasm.OpI64ExtendI32S),
		wasm.ConstI64(int64(wHeader + wBody)),
		wasm.Op1(wasm.OpI64Mul),
		wasm.Op1(wasm.OpI64Add),
		wasm.ConstI64(int64(wHeader + wOnce)),
		wasm.Op1(wasm.OpI64Add),
		wasm.WithIdx(wasm.OpGlobalSet, counter),
	}
	inserts[lp.blockEnd+1] = append(inserts[lp.blockEnd+1], epi...)
}
