package instrument_test

import (
	"math/rand"
	"testing"

	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/wasm"
	"acctee/internal/wasm/wat"
	"acctee/internal/weights"
)

// groundTruth executes the uninstrumented module with the weight table as
// the interpreter's cost model and returns the weighted instruction count.
func groundTruth(t *testing.T, m *wasm.Module, tbl *weights.Table, export string, args ...uint64) uint64 {
	t.Helper()
	vm, err := interp.Instantiate(m, interp.Config{CostModel: tbl})
	if err != nil {
		t.Fatalf("instantiate reference: %v", err)
	}
	if _, err := vm.InvokeExport(export, args...); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return vm.Cost()
}

// instrumentedCount runs the instrumented module and reads the counter.
func instrumentedCount(t *testing.T, m *wasm.Module, lvl instrument.Level, tbl *weights.Table, export string, args ...uint64) uint64 {
	t.Helper()
	res, err := instrument.Instrument(m, instrument.Options{Level: lvl, Weights: tbl})
	if err != nil {
		t.Fatalf("instrument(%v): %v", lvl, err)
	}
	vm, err := interp.Instantiate(res.Module, interp.Config{})
	if err != nil {
		t.Fatalf("instantiate instrumented: %v", err)
	}
	if _, err := vm.InvokeExport(export, args...); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	c, err := vm.Global(res.CounterGlobal)
	if err != nil {
		t.Fatalf("read counter: %v", err)
	}
	return c
}

// checkAllLevels asserts the exactness invariant (DESIGN.md §4.1) for one
// module/entry/args combination.
func checkAllLevels(t *testing.T, m *wasm.Module, export string, args ...uint64) {
	t.Helper()
	for _, tbl := range []*weights.Table{weights.Unit(), weights.Calibrated()} {
		want := groundTruth(t, m, tbl, export, args...)
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			got := instrumentedCount(t, m, lvl, tbl, export, args...)
			if got != want {
				t.Errorf("level %v: counter = %d, ground truth = %d", lvl, got, want)
			}
		}
	}
}

func sumModule() *wasm.Module {
	b := wasm.NewModule("sum")
	f := b.Func("sum", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
	})
	f.LocalGet(acc)
	b.ExportFunc("sum", f.End())
	return b.MustBuild()
}

func TestExactCountingLoop(t *testing.T) {
	m := sumModule()
	for _, n := range []uint64{0, 1, 7, 100} {
		checkAllLevels(t, m, "sum", n)
	}
}

func TestLoopOptimisationFires(t *testing.T) {
	res, err := instrument.Instrument(sumModule(), instrument.Options{Level: instrument.LoopBased})
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	if res.Stats.LoopsOptimised != 1 {
		t.Errorf("loops optimised = %d, want 1", res.Stats.LoopsOptimised)
	}
	// The loop body must contain no counter updates: between the loop opcode
	// and its end there must be no global.set of the counter.
	body := res.Module.Funcs[0].Body
	inLoop := false
	for _, in := range body {
		switch in.Op {
		case wasm.OpLoop:
			inLoop = true
		case wasm.OpEnd:
			inLoop = false
		case wasm.OpGlobalSet:
			if inLoop && in.Idx == res.CounterGlobal {
				t.Fatal("loop body still contains counter update")
			}
		}
	}
}

func TestFlowBasedReducesIncrements(t *testing.T) {
	// Diamond: if/else merging — flow-based should place fewer increments
	// than naive.
	b := wasm.NewModule("diamond")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).I32Const(0).Op(wasm.OpI32GtS)
	f.If(wasm.BlockOf(wasm.I32), func() {
		f.LocalGet(0).I32Const(3).Op(wasm.OpI32Mul)
	}, func() {
		f.LocalGet(0).I32Const(5).Op(wasm.OpI32Sub).I32Const(2).Op(wasm.OpI32Mul)
	})
	b.ExportFunc("f", f.End())
	m := b.MustBuild()

	naive, err := instrument.Instrument(m, instrument.Options{Level: instrument.Naive})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := instrument.Instrument(m, instrument.Options{Level: instrument.FlowBased})
	if err != nil {
		t.Fatal(err)
	}
	if flow.Stats.IncrementsPlaced >= naive.Stats.IncrementsPlaced {
		t.Errorf("flow-based placed %d increments, naive %d — expected a reduction",
			flow.Stats.IncrementsPlaced, naive.Stats.IncrementsPlaced)
	}
	checkAllLevels(t, m, "f", 5)
	checkAllLevels(t, m, "f", uint64(uint32(0xFFFFFFF0)))
}

func TestCounterNameFresh(t *testing.T) {
	b := wasm.NewModule("clash")
	b.Global("acctee_wic", wasm.I64, true, wasm.ConstI64(0))
	b.Global("acctee_wic_0", wasm.I64, true, wasm.ConstI64(0))
	f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
	f.I32Const(1)
	b.ExportFunc("f", f.End())
	res, err := instrument.Instrument(b.MustBuild(), instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterName != "acctee_wic_1" {
		t.Errorf("counter name = %q, want acctee_wic_1", res.CounterName)
	}
	if res.CounterGlobal != 2 {
		t.Errorf("counter global = %d, want 2", res.CounterGlobal)
	}
}

func TestInputModuleNotMutated(t *testing.T) {
	m := sumModule()
	before := len(m.Funcs[0].Body)
	if _, err := instrument.Instrument(m, instrument.Options{}); err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs[0].Body) != before || len(m.Globals) != 0 {
		t.Error("Instrument mutated its input module")
	}
}

func TestLoopVarTamperingNotOptimised(t *testing.T) {
	// A loop that writes the loop variable twice per iteration must NOT be
	// loop-optimised (§3.6 attack: decrease the loop variable in the last
	// operation).
	b := wasm.NewModule("tamper")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	f.I32Const(0).LocalSet(i)
	f.Block(wasm.BlockEmpty, func() {
		f.Loop(wasm.BlockEmpty, func() {
			f.LocalGet(i).LocalGet(0).Op(wasm.OpI32GeS).BrIf(1)
			// extra write to the loop variable inside the body
			f.LocalGet(i).I32Const(0).Op(wasm.OpI32Add).LocalSet(i)
			f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalSet(i)
			f.Br(0)
		})
	})
	f.LocalGet(i)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	res, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LoopsOptimised != 0 {
		t.Errorf("tampered loop was optimised (%d loops)", res.Stats.LoopsOptimised)
	}
	checkAllLevels(t, m, "f", 9)
}

func TestNestedLoops(t *testing.T) {
	// inner counted loop inside an outer counted loop: inner is optimised,
	// outer is not (its body has control flow); counts stay exact.
	b := wasm.NewModule("nested")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	j := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.ForI32(j, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
			f.LocalGet(acc).I32Const(1).Op(wasm.OpI32Add).LocalSet(acc)
		})
	})
	f.LocalGet(acc)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	for _, n := range []uint64{0, 1, 5, 13} {
		checkAllLevels(t, m, "f", n)
	}
}

func TestBrTableExact(t *testing.T) {
	b := wasm.NewModule("bt")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	r := f.Local(wasm.I32)
	f.Block(wasm.BlockEmpty, func() {
		f.Block(wasm.BlockEmpty, func() {
			f.Block(wasm.BlockEmpty, func() {
				f.LocalGet(0)
				f.Emit(wasm.Instr{Op: wasm.OpBrTable, Table: []uint32{0, 1, 2}})
			})
			f.I32Const(11).LocalSet(r).Br(1)
		})
		f.I32Const(22).LocalSet(r)
	})
	f.LocalGet(r)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	for _, n := range []uint64{0, 1, 2, 9} {
		checkAllLevels(t, m, "f", n)
	}
}

func TestCallsExact(t *testing.T) {
	b := wasm.NewModule("calls")
	g := b.Func("double", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	g.LocalGet(0).I32Const(2).Op(wasm.OpI32Mul)
	gi := g.End()
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).Call(gi).Call(gi)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	checkAllLevels(t, m, "f", 10)
}

// TestRandomProgramsExact generates random structured programs and checks
// the exactness invariant at every level against the interpreter's ground
// truth. This is the repository's main property test for the paper's core
// claim: instrumentation never miscounts.
func TestRandomProgramsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(0xACC7EE))
	for trial := 0; trial < 60; trial++ {
		m := randomModule(rng)
		arg := uint64(rng.Intn(20))
		// Reference run may trap (e.g. due to random div): skip those.
		vmRef, err := interp.Instantiate(m, interp.Config{CostModel: weights.Unit(), Fuel: 1 << 20})
		if err != nil {
			t.Fatalf("trial %d: instantiate: %v", trial, err)
		}
		if _, err := vmRef.InvokeExport("main", arg); err != nil {
			continue
		}
		want := vmRef.Cost()
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			res, err := instrument.Instrument(m, instrument.Options{Level: lvl, Weights: weights.Unit()})
			if err != nil {
				t.Fatalf("trial %d level %v: instrument: %v", trial, lvl, err)
			}
			vm, err := interp.Instantiate(res.Module, interp.Config{Fuel: 1 << 21})
			if err != nil {
				t.Fatalf("trial %d level %v: instantiate: %v", trial, lvl, err)
			}
			if _, err := vm.InvokeExport("main", arg); err != nil {
				t.Fatalf("trial %d level %v: run: %v", trial, lvl, err)
			}
			got, _ := vm.Global(res.CounterGlobal)
			if got != want {
				t.Errorf("trial %d level %v: counter = %d, ground truth = %d", trial, lvl, got, want)
			}
		}
	}
}

// randomModule builds a random structured program with loops, branches and
// arithmetic over two i32 locals.
func randomModule(rng *rand.Rand) *wasm.Module {
	b := wasm.NewModule("rand")
	f := b.Func("main", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	x := f.Local(wasm.I32)
	y := f.Local(wasm.I32)
	f.LocalGet(0).LocalSet(x)
	f.I32Const(1).LocalSet(y)

	var gen func(depth int)
	arith := func() {
		switch rng.Intn(5) {
		case 0:
			f.LocalGet(x).I32Const(int32(rng.Intn(7) + 1)).Op(wasm.OpI32Add).LocalSet(x)
		case 1:
			f.LocalGet(y).LocalGet(x).Op(wasm.OpI32Xor).LocalSet(y)
		case 2:
			f.LocalGet(x).I32Const(3).Op(wasm.OpI32Mul).LocalGet(y).Op(wasm.OpI32Add).LocalSet(y)
		case 3:
			f.LocalGet(y).I32Const(int32(rng.Intn(15) + 1)).Op(wasm.OpI32RemU).LocalSet(y)
		case 4:
			f.LocalGet(x).LocalGet(y).Op(wasm.OpI32Or).LocalSet(x)
		}
	}
	gen = func(depth int) {
		n := rng.Intn(4) + 1
		for k := 0; k < n; k++ {
			switch c := rng.Intn(10); {
			case c < 5 || depth >= 3:
				arith()
			case c < 7:
				// if/else on y&1
				f.LocalGet(y).I32Const(1).Op(wasm.OpI32And)
				if rng.Intn(2) == 0 {
					f.If(wasm.BlockEmpty, func() { gen(depth + 1) }, func() { gen(depth + 1) })
				} else {
					f.If(wasm.BlockEmpty, func() { gen(depth + 1) }, nil)
				}
			case c < 9:
				// counted loop over a fresh local
				i := f.Local(wasm.I32)
				limit := int32(rng.Intn(6))
				f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(limit)}, 1, func() {
					gen(depth + 1)
				})
			default:
				// block with early exit
				f.Block(wasm.BlockEmpty, func() {
					arith()
					f.LocalGet(y).I32Const(2).Op(wasm.OpI32And).BrIf(0)
					arith()
				})
			}
		}
	}
	gen(0)
	f.LocalGet(x).LocalGet(y).Op(wasm.OpI32Add)
	b.ExportFunc("main", f.End())
	return b.MustBuild()
}

// TestEmptyPrologueLoopExact is the regression test for the seed
// off-by-one: a counted loop whose `block` opener immediately follows a
// control boundary (here: it is the first instruction of the function, as
// hand-written WAT produces) starts its own one-instruction basic block,
// which lies wholly inside the protected loop region. The loop optimisation
// used to zero that block's increment without folding the opener's weight
// into the epilogue constant, undercounting by one per region entry
// (counter 1306 vs ground truth 1307 on sum(100)). The builder's ForI32
// shape never exposed it because the loop-variable initialisation precedes
// the opener in the same basic block.
func TestEmptyPrologueLoopExact(t *testing.T) {
	const src = `(module
  (func (param i32) (result i32)
    (local i32 i32)
    block
      loop
        local.get 1
        local.get 0
        i32.ge_s
        br_if 1
        local.get 2
        local.get 1
        i32.add
        local.set 2
        local.get 1
        i32.const 1
        i32.add
        local.set 1
        br 0
      end
    end
    local.get 2
  )
  (export "sum" (func 0)))`
	m, err := wat.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// The loop optimisation must still fire on this shape.
	res, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LoopsOptimised != 1 {
		t.Fatalf("loops optimised = %d, want 1", res.Stats.LoopsOptimised)
	}
	for _, n := range []uint64{0, 1, 7, 100} {
		checkAllLevels(t, m, "sum", n)
	}
	// Pin the ISSUE's concrete numbers: sum(100) under unit weights.
	want := groundTruth(t, m, weights.Unit(), "sum", 100)
	got := instrumentedCount(t, m, instrument.LoopBased, weights.Unit(), "sum", 100)
	if want != 1307 || got != want {
		t.Errorf("sum(100): counter = %d, ground truth = %d (want both 1307)", got, want)
	}
}
