// Package instrument implements AccTEE's automated WebAssembly code
// instrumentation for trusted resource accounting (paper §3.5–§3.7): a
// weighted instruction counter held in a freshly-named module global, with
// three placement strategies of increasing sophistication —
//
//	Naive     — one counter update at the end of every basic block (§3.5)
//	FlowBased — dominator-sink and predecessor-minimum hoisting eliminate
//	            redundant updates across the CFG (§3.6, Fig. 4)
//	LoopBased — counted loops with a single loop-variable write per
//	            iteration have their per-iteration updates replaced by one
//	            multiplication after the loop (§3.6)
//
// All three levels preserve exactness: the counter's final value always
// equals the weighted number of executed instructions.
package instrument

import (
	"fmt"
	"strconv"

	"acctee/internal/cfg"
	"acctee/internal/wasm"
	"acctee/internal/wasm/validate"
	"acctee/internal/weights"
)

// Level selects the optimisation level of the instrumentation pass.
type Level int

// Instrumentation levels, in increasing order of static analysis effort.
const (
	Naive Level = iota + 1
	FlowBased
	LoopBased
)

// String names the level as in the paper's figures.
func (l Level) String() string {
	switch l {
	case Naive:
		return "naive"
	case FlowBased:
		return "flow-based"
	case LoopBased:
		return "loop-based"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// Options configure an instrumentation run.
type Options struct {
	// Level defaults to LoopBased.
	Level Level
	// Weights defaults to weights.Unit() (plain instruction counting).
	Weights *weights.Table
}

// Stats reports static properties of an instrumentation run, used by the
// evaluation (§5.4 and Fig. 10 discussions).
type Stats struct {
	Functions        int
	BlocksTotal      int
	IncrementsNaive  int // increments a naive pass would insert
	IncrementsPlaced int // increments actually inserted
	LoopsOptimised   int
}

// Result is an instrumented module plus the metadata the accounting
// enclave needs to read the counter back.
type Result struct {
	Module *wasm.Module
	// CounterGlobal is the index of the injected weighted-instruction
	// counter global (i64, mutable, initially zero).
	CounterGlobal uint32
	// CounterName is the fresh name chosen for the counter (§3.5: a name
	// unused by the input module, so workload code cannot address it).
	CounterName string
	Stats       Stats
}

// Instrument returns an instrumented deep copy of m. The input module is
// validated before and the output after, so a malicious module cannot
// smuggle code past the pass nor can the pass emit invalid code.
func Instrument(m *wasm.Module, opts Options) (*Result, error) {
	if opts.Level == 0 {
		opts.Level = LoopBased
	}
	if opts.Weights == nil {
		opts.Weights = weights.Unit()
	}
	if err := validate.Module(m); err != nil {
		return nil, fmt.Errorf("instrument: input module invalid: %w", err)
	}

	out := m.Clone()
	name := freshCounterName(out)
	counterIdx := uint32(len(out.Globals))
	out.Globals = append(out.Globals, wasm.Global{
		Type:    wasm.I64,
		Mutable: true,
		Init:    wasm.ConstI64(0),
		Name:    name,
	})

	res := &Result{Module: out, CounterGlobal: counterIdx, CounterName: name}
	for i := range out.Funcs {
		if err := instrumentFunc(out, &out.Funcs[i], counterIdx, opts, &res.Stats); err != nil {
			return nil, fmt.Errorf("instrument: func %d: %w", i, err)
		}
	}
	res.Stats.Functions = len(out.Funcs)

	if err := validate.Module(out); err != nil {
		return nil, fmt.Errorf("instrument: output module invalid: %w", err)
	}
	return res, nil
}

// freshCounterName scans existing global names and picks an unused one
// (§3.5: "AccTEE scans the code and chooses a previously unused variable
// name to refer to the counter").
func freshCounterName(m *wasm.Module) string {
	used := m.GlobalNames()
	base := "acctee_wic"
	if !used[base] {
		return base
	}
	for i := 0; ; i++ {
		c := base + "_" + strconv.Itoa(i)
		if !used[c] {
			return c
		}
	}
}

// incrSeq builds the four-instruction counter update: c += w.
func incrSeq(counter uint32, w uint64) []wasm.Instr {
	return []wasm.Instr{
		wasm.WithIdx(wasm.OpGlobalGet, counter),
		wasm.ConstI64(int64(w)),
		wasm.Op1(wasm.OpI64Add),
		wasm.WithIdx(wasm.OpGlobalSet, counter),
	}
}

func instrumentFunc(m *wasm.Module, f *wasm.Func, counter uint32, opts Options, stats *Stats) error {
	g, err := cfg.Build(f.Body)
	if err != nil {
		return err
	}
	stats.BlocksTotal += len(g.Blocks)

	// Per-block increments (naive placement), from the shared CFG analysis.
	incr := g.BlockCosts(opts.Weights.Weight)
	for _, w := range incr {
		if w > 0 {
			stats.IncrementsNaive++
		}
	}

	protected := make([]bool, len(g.Blocks))
	inserts := map[int][]wasm.Instr{}

	if opts.Level >= LoopBased {
		nparams := len(m.Types[f.TypeIdx].Params)
		loops := detectCountedLoops(f.Body, g)
		for _, lp := range loops {
			applyLoopOpt(f, nparams, g, lp, counter, opts.Weights, incr, protected, inserts)
			stats.LoopsOptimised++
		}
	}
	if opts.Level >= FlowBased {
		optimiseFlow(g, incr, protected)
	}

	// Place the remaining per-block increments before each block terminator.
	for i, b := range g.Blocks {
		if incr[i] == 0 {
			continue
		}
		inserts[b.Term] = append(inserts[b.Term], incrSeq(counter, incr[i])...)
		stats.IncrementsPlaced++
	}

	// Rebuild the body with all insertions applied.
	if len(inserts) == 0 {
		return nil
	}
	newBody := make([]wasm.Instr, 0, len(f.Body)+len(inserts)*4)
	for pc, in := range f.Body {
		if extra, ok := inserts[pc]; ok {
			newBody = append(newBody, extra...)
		}
		newBody = append(newBody, in)
	}
	f.Body = newBody
	return nil
}

// optimiseFlow applies the paper's two flow-based transformations (§3.6).
//
// Sink (dominator combination, Fig. 4 left→middle): when every successor of
// block A has A as its sole predecessor — i.e. A dominates each successor
// and each successor executes exactly once per execution of A — A's update
// can be folded into the successors' updates and removed.
//
// Hoist (predecessor minimum, Fig. 4 middle→right): for a block N whose
// predecessors all flow only into N, the minimum predecessor increment is
// moved into N; the predecessor with the minimum count loses its update
// entirely.
func optimiseFlow(g *cfg.Graph, incr []uint64, protected []bool) {
	rpo := g.ReversePostorder()

	// Sink pass.
	for _, a := range rpo {
		if incr[a] == 0 || protected[a] {
			continue
		}
		blk := g.Blocks[a]
		if len(blk.Succs) == 0 {
			continue
		}
		ok := true
		for _, s := range blk.Succs {
			if s == cfg.Exit || protected[s] || len(g.Blocks[s].Preds) != 1 || s == a {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, s := range blk.Succs {
			incr[s] += incr[a]
		}
		incr[a] = 0
	}

	// Hoist pass.
	for _, n := range rpo {
		if protected[n] {
			continue
		}
		blk := g.Blocks[n]
		if len(blk.Preds) < 2 {
			continue
		}
		minv := ^uint64(0)
		ok := true
		for _, p := range blk.Preds {
			pb := g.Blocks[p]
			if protected[p] || len(pb.Succs) != 1 || pb.Succs[0] != n || p == n {
				ok = false
				break
			}
			if incr[p] < minv {
				minv = incr[p]
			}
		}
		if !ok || minv == 0 || minv == ^uint64(0) {
			continue
		}
		for _, p := range blk.Preds {
			incr[p] -= minv
		}
		incr[n] += minv
	}
}
