package core_test

import (
	"bytes"
	"errors"
	"testing"

	"acctee/internal/accounting"
	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

func sumModule() *wasm.Module {
	b := wasm.NewModule("sum")
	b.Memory(1, 4)
	f := b.Func("sum", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
		// touch memory so the EPC model sees traffic
		f.I32Const(0).LocalGet(acc).Store(wasm.OpI32Store, 0)
	})
	f.LocalGet(acc)
	b.ExportFunc("sum", f.End())
	return b.MustBuild()
}

// TestEndToEndWorkflow walks the full Fig. 3 pipeline: instrument → attest
// both enclaves → verify evidence → execute → verify the signed log.
func TestEndToEndWorkflow(t *testing.T) {
	// Platform setup (infrastructure provider machine).
	qe, err := sgx.NewQuotingEnclave()
	if err != nil {
		t.Fatal(err)
	}
	svc := sgx.NewAttestationService()
	svc.RegisterPlatform("provider-1", qe)

	// Workload provider instruments through the IE.
	ie, err := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := sumModule()
	inst, ev, err := ie.Instrument(m)
	if err != nil {
		t.Fatal(err)
	}

	// Both parties attest the IE before trusting the evidence.
	ieQuote, err := ie.Quote(qe)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Attest(ieQuote, core.IEMeasurement(), ie.PublicKey()); err != nil {
		t.Fatalf("IE attestation: %v", err)
	}

	// Infrastructure provider sets up the AE with the evidence.
	ae, err := core.NewAccountingEnclave(sgx.ModeHardware, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	aeQuote, err := ae.Quote(qe)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Attest(aeQuote, core.AEMeasurement(), ae.PublicKey()); err != nil {
		t.Fatalf("AE attestation: %v", err)
	}

	// Execute and check results + ledger record.
	res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{100}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Results[0] != 4950 {
		t.Errorf("sum(100) = %d, want 4950", res.Results[0])
	}
	if res.Record.Log.WeightedInstructions == 0 {
		t.Error("weighted instruction counter is zero")
	}
	if res.Record.Log.PeakMemoryBytes != 64*1024 {
		t.Errorf("peak memory = %d, want one page", res.Record.Log.PeakMemoryBytes)
	}
	if res.Receipt.ChainHead != res.Record.Hash || res.Receipt.ChainHead == ([32]byte{}) {
		t.Error("receipt does not carry the record's chain head")
	}

	// Counter equals the uninstrumented ground truth.
	ref, err := interp.Instantiate(m, interp.Config{CostModel: weights.Unit()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InvokeExport("sum", 100); err != nil {
		t.Fatal(err)
	}
	if res.Record.Log.WeightedInstructions != ref.Cost() {
		t.Errorf("counter %d != ground truth %d", res.Record.Log.WeightedInstructions, ref.Cost())
	}

	// A second run chains onto the ledger; the on-request checkpoint
	// covers both with one signature that both parties can verify.
	if _, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{10}}); err != nil {
		t.Fatal(err)
	}
	sc, err := ae.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Checkpoint.Covered(); got != 2 {
		t.Errorf("checkpoint covers %d records, want 2", got)
	}
	if err := accounting.VerifyCheckpointSig(sc, ae.PublicKey(), core.AEMeasurement()); err != nil {
		t.Errorf("checkpoint verification: %v", err)
	}

	// The checkpoint can be bound into a fresh attestation quote: proof
	// that the attested enclave stood behind exactly this ledger state.
	cpQuote, err := ae.QuoteCheckpoint(qe, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AttestCheckpoint(cpQuote, core.AEMeasurement(), ae.PublicKey(), sc.Checkpoint.Hash()); err != nil {
		t.Errorf("checkpoint attestation: %v", err)
	}
	other := sc
	other.Checkpoint.Totals.WeightedInstructions++
	if err := svc.AttestCheckpoint(cpQuote, core.AEMeasurement(), ae.PublicKey(), other.Checkpoint.Hash()); err == nil {
		t.Error("quote attested a checkpoint it does not bind")
	}

	// And the full ledger replays offline.
	dump, err := ae.Ledger().Dump()
	if err != nil {
		t.Fatal(err)
	}
	vr, err := accounting.VerifyDump(dump, accounting.VerifyOptions{Key: ae.PublicKey(), Measurement: core.AEMeasurement()})
	if err != nil {
		t.Fatalf("offline verification: %v", err)
	}
	if vr.Records != 2 || vr.CoveredRecords != 2 {
		t.Errorf("offline verification result %+v", vr)
	}
}

func TestEvidenceTamperDetected(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.Naive, nil)
	inst, ev, err := ie.Instrument(sumModule())
	if err != nil {
		t.Fatal(err)
	}

	// Tampering with the module after instrumentation must be detected.
	bad := inst.Clone()
	bad.Funcs[0].Body[0] = wasm.ConstI32(42) // swap an instruction
	if _, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, bad, ev, ie.PublicKey()); !errors.Is(err, core.ErrEvidenceMismatch) {
		t.Errorf("module tamper: %v", err)
	}

	// Tampering with the evidence (counter index redirect) must be detected.
	badEv := ev
	badEv.CounterGlobal++
	if _, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, badEv, ie.PublicKey()); !errors.Is(err, core.ErrEvidenceSignature) {
		t.Errorf("evidence tamper: %v", err)
	}

	// Evidence signed by a different (unattested) IE key must be rejected.
	other, _ := core.NewInstrumentationEnclave(instrument.Naive, nil)
	if _, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, other.PublicKey()); !errors.Is(err, core.ErrEvidenceSignature) {
		t.Errorf("wrong IE key: %v", err)
	}
}

func TestWeightTableMismatchRejected(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, weights.Unit())
	inst, ev, err := ie.Instrument(sumModule())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), weights.Calibrated(), inst, ev, ie.PublicKey()); err == nil {
		t.Error("mismatched weight table accepted")
	}
}

func TestLogTamperDetected(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	inst, ev, _ := ie.Instrument(sumModule())
	ae, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	// Eager mode: every record carries its own signature (the per-record
	// baseline kept for differential testing).
	ae.SetLedgerOptions(accounting.LedgerOptions{EagerSign: true})
	res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := accounting.VerifyRecordSig(res.Record, ae.PublicKey()); err != nil {
		t.Fatalf("honest record rejected: %v", err)
	}
	forged := res.Record
	forged.Log.WeightedInstructions /= 2 // provider tries to undercharge
	forged.Hash = forged.ComputeHash()   // even re-hashing cannot save the forgery
	if err := accounting.VerifyRecordSig(forged, ae.PublicKey()); !errors.Is(err, accounting.ErrBadLogSignature) {
		t.Errorf("forged record: %v", err)
	}
}

func TestFuelBoundsExecution(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	inst, ev, _ := ie.Instrument(sumModule())
	ae, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{1 << 30}, Fuel: 10_000})
	if !errors.Is(err, interp.ErrFuelExhausted) {
		t.Errorf("unbounded workload: %v", err)
	}
}

func TestHardwareModeCostsMore(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	inst, ev, _ := ie.Instrument(sumModule())
	params := sgx.DefaultCostParams()
	params.UsableEPCBytes = 4096 // tiny EPC so paging shows immediately

	runMode := func(mode sgx.Mode) uint64 {
		ae, err := core.NewAccountingEnclave(mode, params, nil, inst, ev, ie.PublicKey())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{500}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Record.Log.SimulatedCycles
	}
	sim := runMode(sgx.ModeSimulation)
	hw := runMode(sgx.ModeHardware)
	if hw <= sim {
		t.Errorf("hardware cycles %d not above simulation cycles %d", hw, sim)
	}
}

func TestLedgerDumpJSONRoundTrip(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	inst, ev, _ := ie.Instrument(sumModule())
	ae, _ := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	for i := 0; i < 3; i++ {
		if _, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{7}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ae.Snapshot(); err != nil {
		t.Fatal(err)
	}
	dump, err := ae.Ledger().Dump()
	if err != nil {
		t.Fatal(err)
	}
	j, err := dump.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The serialised ledger verifies offline with the embedded identity
	// and with the independently attested one.
	if _, err := accounting.VerifyReader(bytes.NewReader(j), accounting.VerifyOptions{}); err != nil {
		t.Errorf("embedded-identity verification: %v", err)
	}
	vr, err := accounting.VerifyReader(bytes.NewReader(j),
		accounting.VerifyOptions{Key: ae.PublicKey(), Measurement: core.AEMeasurement()})
	if err != nil {
		t.Fatalf("attested-identity verification: %v", err)
	}
	if vr.Records != 3 || vr.CoveredRecords != 3 || vr.Checkpoints != 1 {
		t.Errorf("verification result %+v", vr)
	}
}
