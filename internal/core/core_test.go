package core_test

import (
	"errors"
	"testing"

	"acctee/internal/accounting"
	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

func sumModule() *wasm.Module {
	b := wasm.NewModule("sum")
	b.Memory(1, 4)
	f := b.Func("sum", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
		// touch memory so the EPC model sees traffic
		f.I32Const(0).LocalGet(acc).Store(wasm.OpI32Store, 0)
	})
	f.LocalGet(acc)
	b.ExportFunc("sum", f.End())
	return b.MustBuild()
}

// TestEndToEndWorkflow walks the full Fig. 3 pipeline: instrument → attest
// both enclaves → verify evidence → execute → verify the signed log.
func TestEndToEndWorkflow(t *testing.T) {
	// Platform setup (infrastructure provider machine).
	qe, err := sgx.NewQuotingEnclave()
	if err != nil {
		t.Fatal(err)
	}
	svc := sgx.NewAttestationService()
	svc.RegisterPlatform("provider-1", qe)

	// Workload provider instruments through the IE.
	ie, err := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := sumModule()
	inst, ev, err := ie.Instrument(m)
	if err != nil {
		t.Fatal(err)
	}

	// Both parties attest the IE before trusting the evidence.
	ieQuote, err := ie.Quote(qe)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Attest(ieQuote, core.IEMeasurement(), ie.PublicKey()); err != nil {
		t.Fatalf("IE attestation: %v", err)
	}

	// Infrastructure provider sets up the AE with the evidence.
	ae, err := core.NewAccountingEnclave(sgx.ModeHardware, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	aeQuote, err := ae.Quote(qe)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Attest(aeQuote, core.AEMeasurement(), ae.PublicKey()); err != nil {
		t.Fatalf("AE attestation: %v", err)
	}

	// Execute and check results + log.
	res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{100}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Results[0] != 4950 {
		t.Errorf("sum(100) = %d, want 4950", res.Results[0])
	}
	if err := accounting.Verify(res.SignedLog, ae.PublicKey(), core.AEMeasurement()); err != nil {
		t.Errorf("log verification: %v", err)
	}
	if res.SignedLog.Log.WeightedInstructions == 0 {
		t.Error("weighted instruction counter is zero")
	}
	if res.SignedLog.Log.PeakMemoryBytes != 64*1024 {
		t.Errorf("peak memory = %d, want one page", res.SignedLog.Log.PeakMemoryBytes)
	}

	// Counter equals the uninstrumented ground truth.
	ref, err := interp.Instantiate(m, interp.Config{CostModel: weights.Unit()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InvokeExport("sum", 100); err != nil {
		t.Fatal(err)
	}
	if res.SignedLog.Log.WeightedInstructions != ref.Cost() {
		t.Errorf("counter %d != ground truth %d", res.SignedLog.Log.WeightedInstructions, ref.Cost())
	}

	// Sequence numbers advance per invocation.
	res2, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{10}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.SignedLog.Log.Sequence != 1 {
		t.Errorf("second log sequence = %d, want 1", res2.SignedLog.Log.Sequence)
	}
}

func TestEvidenceTamperDetected(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.Naive, nil)
	inst, ev, err := ie.Instrument(sumModule())
	if err != nil {
		t.Fatal(err)
	}

	// Tampering with the module after instrumentation must be detected.
	bad := inst.Clone()
	bad.Funcs[0].Body[0] = wasm.ConstI32(42) // swap an instruction
	if _, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, bad, ev, ie.PublicKey()); !errors.Is(err, core.ErrEvidenceMismatch) {
		t.Errorf("module tamper: %v", err)
	}

	// Tampering with the evidence (counter index redirect) must be detected.
	badEv := ev
	badEv.CounterGlobal++
	if _, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, badEv, ie.PublicKey()); !errors.Is(err, core.ErrEvidenceSignature) {
		t.Errorf("evidence tamper: %v", err)
	}

	// Evidence signed by a different (unattested) IE key must be rejected.
	other, _ := core.NewInstrumentationEnclave(instrument.Naive, nil)
	if _, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, other.PublicKey()); !errors.Is(err, core.ErrEvidenceSignature) {
		t.Errorf("wrong IE key: %v", err)
	}
}

func TestWeightTableMismatchRejected(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, weights.Unit())
	inst, ev, err := ie.Instrument(sumModule())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), weights.Calibrated(), inst, ev, ie.PublicKey()); err == nil {
		t.Error("mismatched weight table accepted")
	}
}

func TestLogTamperDetected(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	inst, ev, _ := ie.Instrument(sumModule())
	ae, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{5}})
	if err != nil {
		t.Fatal(err)
	}
	forged := res.SignedLog
	forged.Log.WeightedInstructions /= 2 // provider tries to undercharge
	if err := accounting.Verify(forged, ae.PublicKey(), core.AEMeasurement()); !errors.Is(err, accounting.ErrBadLogSignature) {
		t.Errorf("forged log: %v", err)
	}
}

func TestFuelBoundsExecution(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	inst, ev, _ := ie.Instrument(sumModule())
	ae, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{1 << 30}, Fuel: 10_000})
	if !errors.Is(err, interp.ErrFuelExhausted) {
		t.Errorf("unbounded workload: %v", err)
	}
}

func TestHardwareModeCostsMore(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	inst, ev, _ := ie.Instrument(sumModule())
	params := sgx.DefaultCostParams()
	params.UsableEPCBytes = 4096 // tiny EPC so paging shows immediately

	runMode := func(mode sgx.Mode) uint64 {
		ae, err := core.NewAccountingEnclave(mode, params, nil, inst, ev, ie.PublicKey())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{500}})
		if err != nil {
			t.Fatal(err)
		}
		return res.SignedLog.Log.SimulatedCycles
	}
	sim := runMode(sgx.ModeSimulation)
	hw := runMode(sgx.ModeHardware)
	if hw <= sim {
		t.Errorf("hardware cycles %d not above simulation cycles %d", hw, sim)
	}
}

func TestUsageLogJSONRoundTrip(t *testing.T) {
	ie, _ := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	inst, ev, _ := ie.Instrument(sumModule())
	ae, _ := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{7}})
	if err != nil {
		t.Fatal(err)
	}
	j, err := res.SignedLog.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := accounting.ParseJSON(j)
	if err != nil {
		t.Fatal(err)
	}
	if back.Log != res.SignedLog.Log {
		t.Error("JSON round trip changed the log")
	}
	if err := accounting.Verify(back, ae.PublicKey(), core.AEMeasurement()); err != nil {
		t.Errorf("round-tripped log fails verification: %v", err)
	}
}
