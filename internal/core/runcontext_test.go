package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"acctee/internal/core"
	"acctee/internal/interp"
	"acctee/internal/sgx"
)

// TestRunContextPreCancelled: an already-expired context still flows through
// the ledger — the run aborts at the entry leader with a zero-work record,
// so cancellation never produces an unaccounted execution.
func TestRunContextPreCancelled(t *testing.T) {
	ae, _ := newTestAE(t, sgx.ModeSimulation)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ae.RunContext(ctx, core.RunOptions{Entry: "sum", Args: []uint64{100}})
	if !errors.Is(err, interp.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res.Record.Hash == ([32]byte{}) {
		t.Fatal("no record hash for interrupted run")
	}
	if res.Record.Log.WeightedInstructions != 0 {
		t.Errorf("pre-cancelled run charged %d weighted instructions, want 0", res.Record.Log.WeightedInstructions)
	}
	// The zero-work record must still chain and verify.
	if _, err := ae.Snapshot(); err != nil {
		t.Fatalf("checkpoint after interrupted run: %v", err)
	}
}

// TestRunContextDeadlineChargesPartialWork cancels a long-running workload
// mid-flight and asserts the receipt charges strictly less than the full
// run, while the subsequent uninterrupted run on the same enclave still
// chains normally behind it.
func TestRunContextDeadlineChargesPartialWork(t *testing.T) {
	ae, _ := newTestAE(t, sgx.ModeSimulation)

	full, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{30_000_000}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	res, err := ae.RunContext(ctx, core.RunOptions{Entry: "sum", Args: []uint64{30_000_000}})
	if !errors.Is(err, interp.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted (workload finished before the deadline?)", err)
	}
	got := res.Record.Log.WeightedInstructions
	if got >= full.Record.Log.WeightedInstructions {
		t.Errorf("interrupted run charged %d >= full run's %d", got, full.Record.Log.WeightedInstructions)
	}

	// The enclave stays healthy: later runs append and verify behind the
	// interrupted record.
	after, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{100}})
	if err != nil {
		t.Fatal(err)
	}
	if after.Receipt.Shard == res.Receipt.Shard && after.Receipt.Sequence <= res.Receipt.Sequence {
		t.Errorf("post-interrupt run did not advance the lane: seq %d then %d", res.Receipt.Sequence, after.Receipt.Sequence)
	}
	if _, err := ae.Snapshot(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
}
