package core_test

import (
	"testing"

	"acctee/internal/accounting"
	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
)

// growingModule grows memory by one page per outer iteration and touches
// it, so the memory integral is sensitive to when growth happens.
func growingModule() *wasm.Module {
	b := wasm.NewModule("grow")
	b.Memory(1, 16)
	f := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	j := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.I32Const(1).Op(wasm.OpMemoryGrow).Op(wasm.OpDrop)
		// busy work between grows so intervals have weight
		f.ForI32(j, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(500)}, 1, func() {
			f.LocalGet(acc).LocalGet(j).Op(wasm.OpI32Add).LocalSet(acc)
		})
	})
	f.LocalGet(acc)
	b.ExportFunc("run", f.End())
	return b.MustBuild()
}

func newAE(t *testing.T, m *wasm.Module) *core.AccountingEnclave {
	t.Helper()
	ie, err := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, ev, err := ie.Instrument(m)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	return ae
}

// TestMemoryIntegralPolicy checks the §3.5 fine-grained memory policy: the
// integral reflects that early instructions ran against a smaller memory.
func TestMemoryIntegralPolicy(t *testing.T) {
	ae := newAE(t, growingModule())
	res, err := ae.Run(core.RunOptions{Entry: "run", Args: []uint64{4}, Policy: accounting.MemoryIntegral})
	if err != nil {
		t.Fatal(err)
	}
	log := res.SignedLog.Log
	if log.Policy != accounting.MemoryIntegral {
		t.Errorf("policy = %v", log.Policy)
	}
	// 4 grows: final memory = 5 pages.
	if log.PeakMemoryBytes != 5*wasm.PageSize {
		t.Errorf("peak = %d, want 5 pages", log.PeakMemoryBytes)
	}
	// The integral must be strictly below counter*peak (some instructions
	// ran with less memory) and at least counter*initial.
	upper := log.WeightedInstructions * log.PeakMemoryBytes
	lower := log.WeightedInstructions * wasm.PageSize
	if log.MemoryIntegral >= upper {
		t.Errorf("integral %d not below peak bound %d", log.MemoryIntegral, upper)
	}
	if log.MemoryIntegral < lower {
		t.Errorf("integral %d below initial-size bound %d", log.MemoryIntegral, lower)
	}
}

// TestIntegralScalesWithWork: more iterations at large memory push the
// integral closer to the peak bound.
func TestIntegralScalesWithWork(t *testing.T) {
	run := func(iters uint64) (integral, counter uint64) {
		ae := newAE(t, growingModule())
		res, err := ae.Run(core.RunOptions{Entry: "run", Args: []uint64{iters}, Policy: accounting.MemoryIntegral})
		if err != nil {
			t.Fatal(err)
		}
		return res.SignedLog.Log.MemoryIntegral, res.SignedLog.Log.WeightedInstructions
	}
	i2, c2 := run(2)
	i8, c8 := run(8)
	if i8 <= i2 || c8 <= c2 {
		t.Errorf("integral/counter did not grow with work: %d/%d vs %d/%d", i2, c2, i8, c8)
	}
	// average memory per instruction must grow too (later iterations run
	// against more pages)
	if float64(i8)/float64(c8) <= float64(i2)/float64(c2) {
		t.Errorf("average memory did not increase: %f vs %f",
			float64(i8)/float64(c8), float64(i2)/float64(c2))
	}
}

// TestSnapshotAccumulates checks the on-request cumulative log.
func TestSnapshotAccumulates(t *testing.T) {
	ae := newAE(t, growingModule())
	var perRun uint64
	for i := 0; i < 3; i++ {
		res, err := ae.Run(core.RunOptions{Entry: "run", Args: []uint64{2}})
		if err != nil {
			t.Fatal(err)
		}
		perRun = res.SignedLog.Log.WeightedInstructions
	}
	snap, err := ae.Snapshot(accounting.PeakMemory)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Log.WeightedInstructions != 3*perRun {
		t.Errorf("cumulative = %d, want %d", snap.Log.WeightedInstructions, 3*perRun)
	}
	if snap.Log.Sequence != 3 {
		t.Errorf("snapshot sequence = %d, want 3", snap.Log.Sequence)
	}
	if err := accounting.Verify(snap, ae.PublicKey(), core.AEMeasurement()); err != nil {
		t.Errorf("snapshot verification: %v", err)
	}
}
