package core_test

import (
	"testing"

	"acctee/internal/accounting"
	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
)

// growingModule grows memory by one page per outer iteration and touches
// it, so the memory integral is sensitive to when growth happens.
func growingModule() *wasm.Module {
	b := wasm.NewModule("grow")
	b.Memory(1, 16)
	f := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	j := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.I32Const(1).Op(wasm.OpMemoryGrow).Op(wasm.OpDrop)
		// busy work between grows so intervals have weight
		f.ForI32(j, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(500)}, 1, func() {
			f.LocalGet(acc).LocalGet(j).Op(wasm.OpI32Add).LocalSet(acc)
		})
	})
	f.LocalGet(acc)
	b.ExportFunc("run", f.End())
	return b.MustBuild()
}

func newAE(t *testing.T, m *wasm.Module) *core.AccountingEnclave {
	t.Helper()
	ie, err := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, ev, err := ie.Instrument(m)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := core.NewAccountingEnclave(sgx.ModeSimulation, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	return ae
}

// TestMemoryIntegralPolicy checks the §3.5 fine-grained memory policy: the
// integral reflects that early instructions ran against a smaller memory.
func TestMemoryIntegralPolicy(t *testing.T) {
	ae := newAE(t, growingModule())
	res, err := ae.Run(core.RunOptions{Entry: "run", Args: []uint64{4}, Policy: accounting.MemoryIntegral})
	if err != nil {
		t.Fatal(err)
	}
	log := res.Record.Log
	if log.Policy != accounting.MemoryIntegral {
		t.Errorf("policy = %v", log.Policy)
	}
	// 4 grows: final memory = 5 pages.
	if log.PeakMemoryBytes != 5*wasm.PageSize {
		t.Errorf("peak = %d, want 5 pages", log.PeakMemoryBytes)
	}
	// The integral must be strictly below counter*peak (some instructions
	// ran with less memory) and at least counter*initial.
	upper := log.WeightedInstructions * log.PeakMemoryBytes
	lower := log.WeightedInstructions * wasm.PageSize
	if log.MemoryIntegral >= upper {
		t.Errorf("integral %d not below peak bound %d", log.MemoryIntegral, upper)
	}
	if log.MemoryIntegral < lower {
		t.Errorf("integral %d below initial-size bound %d", log.MemoryIntegral, lower)
	}
}

// TestIntegralScalesWithWork: more iterations at large memory push the
// integral closer to the peak bound.
func TestIntegralScalesWithWork(t *testing.T) {
	run := func(iters uint64) (integral, counter uint64) {
		ae := newAE(t, growingModule())
		res, err := ae.Run(core.RunOptions{Entry: "run", Args: []uint64{iters}, Policy: accounting.MemoryIntegral})
		if err != nil {
			t.Fatal(err)
		}
		return res.Record.Log.MemoryIntegral, res.Record.Log.WeightedInstructions
	}
	i2, c2 := run(2)
	i8, c8 := run(8)
	if i8 <= i2 || c8 <= c2 {
		t.Errorf("integral/counter did not grow with work: %d/%d vs %d/%d", i2, c2, i8, c8)
	}
	// average memory per instruction must grow too (later iterations run
	// against more pages)
	if float64(i8)/float64(c8) <= float64(i2)/float64(c2) {
		t.Errorf("average memory did not increase: %f vs %f",
			float64(i8)/float64(c8), float64(i2)/float64(c2))
	}
}

// ioModule writes its argument's worth of bytes from memory offset 0 to
// the block device and returns the errno.
func ioModule() *wasm.Module {
	b := wasm.NewModule("io")
	bw := b.ImportFunc("env", "block_write",
		[]wasm.ValueType{wasm.I32, wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	b.Memory(1, 2)
	f := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.I32Const(0).I32Const(0).LocalGet(0).Call(bw)
	b.ExportFunc("run", f.End())
	return b.MustBuild()
}

// TestPerRunIODeltas pins that ledger records carry per-run I/O, not the
// library OS's cumulative counters: summing records must reconstruct the
// true total (the checkpoint aggregation depends on it).
func TestPerRunIODeltas(t *testing.T) {
	ae := newAE(t, ioModule())
	defer ae.Close()
	if err := ae.LibOS().AttachBlockDevice(1<<16, nil); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, n := range []uint64{100, 100, 50} {
		res, err := ae.Run(core.RunOptions{Entry: "run", Args: []uint64{n}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Results[0] != 0 {
			t.Fatalf("block_write errno %d", res.Results[0])
		}
		// Cumulative counters would report 100, 200, 250 here.
		if got := res.Record.Log.IOBytesOut; got != n {
			t.Fatalf("record IOBytesOut = %d, want per-run %d", got, n)
		}
		want += n
	}
	sc, err := ae.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Checkpoint.Totals.IOBytesOut; got != want {
		t.Errorf("checkpoint IOBytesOut = %d, want %d", got, want)
	}
}

// TestIOTransitionCyclesAttributed: in hardware mode the enclave crossing
// the library OS records for a block syscall lands in that run's
// SimulatedCycles (call entry + exit + one I/O crossing = 3 transitions
// minimum).
func TestIOTransitionCyclesAttributed(t *testing.T) {
	ie, err := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, ev, err := ie.Instrument(ioModule())
	if err != nil {
		t.Fatal(err)
	}
	params := sgx.DefaultCostParams()
	ae, err := core.NewAccountingEnclave(sgx.ModeHardware, params, nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Close()
	if err := ae.LibOS().AttachBlockDevice(1<<16, nil); err != nil {
		t.Fatal(err)
	}
	res, err := ae.Run(core.RunOptions{Entry: "run", Args: []uint64{64}})
	if err != nil {
		t.Fatal(err)
	}
	if min := 3 * params.TransitionCycles; res.Record.Log.SimulatedCycles < min {
		t.Errorf("SimulatedCycles = %d, want at least %d (3 enclave crossings)",
			res.Record.Log.SimulatedCycles, min)
	}
}

// TestSnapshotAccumulates checks the on-request cumulative checkpoint.
func TestSnapshotAccumulates(t *testing.T) {
	ae := newAE(t, growingModule())
	var perRun uint64
	for i := 0; i < 3; i++ {
		res, err := ae.Run(core.RunOptions{Entry: "run", Args: []uint64{2}})
		if err != nil {
			t.Fatal(err)
		}
		perRun = res.Record.Log.WeightedInstructions
	}
	snap, err := ae.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Checkpoint.Totals.WeightedInstructions != 3*perRun {
		t.Errorf("cumulative = %d, want %d", snap.Checkpoint.Totals.WeightedInstructions, 3*perRun)
	}
	if snap.Checkpoint.Covered() != 3 {
		t.Errorf("checkpoint covers %d records, want 3", snap.Checkpoint.Covered())
	}
	if err := accounting.VerifyCheckpointSig(snap, ae.PublicKey(), core.AEMeasurement()); err != nil {
		t.Errorf("snapshot verification: %v", err)
	}
}
