package core_test

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"acctee/internal/accounting"
	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
)

// newTestAE instruments sumModule and builds an AE around it.
func newTestAE(t *testing.T, mode sgx.Mode) (*core.AccountingEnclave, *core.InstrumentationEnclave) {
	t.Helper()
	ie, err := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, ev, err := ie.Instrument(sumModule())
	if err != nil {
		t.Fatal(err)
	}
	ae, err := core.NewAccountingEnclave(mode, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	return ae, ie
}

// driveConcurrent fires goroutines×runsEach runs and returns all receipts.
func driveConcurrent(t *testing.T, ae *core.AccountingEnclave, goroutines, runsEach int) []accounting.Receipt {
	t.Helper()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		receipts []accounting.Receipt
	)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{uint64(10 + g)}})
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				receipts = append(receipts, res.Receipt)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return receipts
}

// TestConcurrentRunsShardedSequences drives N goroutines × M runs through
// one accounting enclave: every run gets a receipt, per-shard sequence
// numbers are gap-free starting at 0 (the sharded replacement for the old
// single global sequence), the on-request checkpoint covers every record
// with one verifiable signature, and the full ledger replays offline.
func TestConcurrentRunsShardedSequences(t *testing.T) {
	const goroutines, runsEach = 8, 10
	ae, _ := newTestAE(t, sgx.ModeSimulation)
	defer ae.Close()

	receipts := driveConcurrent(t, ae, goroutines, runsEach)
	if len(receipts) != goroutines*runsEach {
		t.Fatalf("got %d receipts, want %d", len(receipts), goroutines*runsEach)
	}

	// Per-shard gap-freedom: each lane's sequences are exactly 0..n-1.
	byShard := map[uint32][]uint64{}
	for _, r := range receipts {
		byShard[r.Shard] = append(byShard[r.Shard], r.Sequence)
	}
	var total int
	for shard, seqs := range byShard {
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for i, s := range seqs {
			if s != uint64(i) {
				t.Fatalf("shard %d sequences not gap-free: position %d holds %d (all: %v)", shard, i, s, seqs)
			}
		}
		total += len(seqs)
	}
	if total != goroutines*runsEach {
		t.Fatalf("shards account for %d records, want %d", total, goroutines*runsEach)
	}

	// One checkpoint signature covers everything; totals match the live
	// aggregate; the dump replays offline with zero violations.
	sc, err := ae.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Checkpoint.Covered(); got != goroutines*runsEach {
		t.Errorf("checkpoint covers %d, want %d", got, goroutines*runsEach)
	}
	if err := accounting.VerifyCheckpointSig(sc, ae.PublicKey(), ae.Measurement()); err != nil {
		t.Fatal(err)
	}
	if lt := ae.Ledger().Totals(); lt != sc.Checkpoint.Totals {
		t.Errorf("live totals %+v != checkpoint totals %+v", lt, sc.Checkpoint.Totals)
	}
	dump, err := ae.Ledger().Dump()
	if err != nil {
		t.Fatal(err)
	}
	vr, err := accounting.VerifyDump(dump, accounting.VerifyOptions{Key: ae.PublicKey(), Measurement: core.AEMeasurement()})
	if err != nil {
		t.Fatalf("offline verification after concurrent runs: %v", err)
	}
	if vr.Records != goroutines*runsEach || vr.CoveredRecords != goroutines*runsEach {
		t.Errorf("offline verification result %+v", vr)
	}
}

// TestEagerVsBatchedDifferential pins the acceptance criterion at the AE
// level: the checkpoint-batched ledger's totals are bit-identical to the
// per-record eager-signing baseline across concurrent runs of the same
// workload set — batching changes where signatures happen, never what is
// accounted.
func TestEagerVsBatchedDifferential(t *testing.T) {
	const goroutines, runsEach = 6, 8
	run := func(opts accounting.LedgerOptions) accounting.UsageLog {
		ae, _ := newTestAE(t, sgx.ModeSimulation)
		defer ae.Close()
		ae.SetLedgerOptions(opts)
		driveConcurrent(t, ae, goroutines, runsEach)
		sc, err := ae.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return sc.Checkpoint.Totals
	}
	eager := run(accounting.LedgerOptions{Shards: 4, EagerSign: true})
	batched := run(accounting.LedgerOptions{Shards: 4})
	if eager != batched {
		t.Fatalf("eager totals %+v != batched totals %+v", eager, batched)
	}
	// Shard count must not change what is accounted either.
	single := run(accounting.LedgerOptions{Shards: 1})
	if single != batched {
		t.Fatalf("1-shard totals %+v != 4-shard totals %+v", single, batched)
	}
}

// TestConcurrentRunsDeterministicPerInput: concurrent runs on pooled
// instances must count exactly like isolated ones — same input, same
// weighted instruction count, regardless of which recycled instance served
// it or which sequence lane recorded it.
func TestConcurrentRunsDeterministicPerInput(t *testing.T) {
	ae, _ := newTestAE(t, sgx.ModeSimulation)
	defer ae.Close()
	ref, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{25}})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Record.Log.WeightedInstructions

	const goroutines, runsEach = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*runsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{25}})
				if err != nil {
					errs <- err
					return
				}
				if got := res.Record.Log.WeightedInstructions; got != want {
					t.Errorf("weighted instructions = %d, want %d", got, want)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSaturatedRunsBitExactAccounting is the multi-core stress pin for the
// contention work (run under -race in CI): with GOMAXPROCS forced to 4 —
// lane affinity, striped instance pool and padded shard state all active —
// every shard's sequence lane must stay strictly increasing and gap-free,
// and the signed checkpoint totals must equal an independent field-by-field
// re-aggregation of every record the runs returned. Affinity may place
// records anywhere; it must never change what is accounted.
func TestSaturatedRunsBitExactAccounting(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const goroutines, runsEach = 12, 25
	ae, _ := newTestAE(t, sgx.ModeSimulation)
	defer ae.Close()
	ae.SetLedgerOptions(accounting.LedgerOptions{Shards: 4})

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		recs []accounting.Record
	)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{uint64(5 + g%4)}})
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				recs = append(recs, res.Record)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(recs) != goroutines*runsEach {
		t.Fatalf("got %d records, want %d", len(recs), goroutines*runsEach)
	}

	// Per-shard lanes: sorted sequences must be exactly 0..n-1 — strictly
	// increasing with no gap and no duplicate.
	byShard := map[uint32][]uint64{}
	for _, r := range recs {
		byShard[r.Shard] = append(byShard[r.Shard], r.Log.Sequence)
	}
	for shard, seqs := range byShard {
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for i, s := range seqs {
			if s != uint64(i) {
				t.Fatalf("shard %d lane not gap-free at position %d: %v", shard, i, seqs)
			}
		}
	}

	// Independent re-aggregation (same commutative fold the ledger uses:
	// sums plus max of peak memory) must hit the checkpoint totals exactly.
	var want accounting.UsageLog
	for _, r := range recs {
		want.WeightedInstructions += r.Log.WeightedInstructions
		if r.Log.PeakMemoryBytes > want.PeakMemoryBytes {
			want.PeakMemoryBytes = r.Log.PeakMemoryBytes
		}
		want.MemoryIntegral += r.Log.MemoryIntegral
		want.IOBytesIn += r.Log.IOBytesIn
		want.IOBytesOut += r.Log.IOBytesOut
		want.SimulatedCycles += r.Log.SimulatedCycles
	}
	sc, err := ae.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got := sc.Checkpoint.Totals
	if got.WeightedInstructions != want.WeightedInstructions ||
		got.PeakMemoryBytes != want.PeakMemoryBytes ||
		got.MemoryIntegral != want.MemoryIntegral ||
		got.IOBytesIn != want.IOBytesIn ||
		got.IOBytesOut != want.IOBytesOut ||
		got.SimulatedCycles != want.SimulatedCycles {
		t.Fatalf("checkpoint totals %+v != independent re-aggregation %+v", got, want)
	}
	if sc.Checkpoint.Covered() != goroutines*runsEach {
		t.Fatalf("checkpoint covers %d, want %d", sc.Checkpoint.Covered(), goroutines*runsEach)
	}
	if err := accounting.VerifyCheckpointSig(sc, ae.PublicKey(), ae.Measurement()); err != nil {
		t.Fatal(err)
	}
}

// TestPoolConfigDisabledRunsFresh: an AE with pooling disabled still serves
// correct, sequence-ordered runs (every Run instantiates fresh).
func TestPoolConfigDisabledRunsFresh(t *testing.T) {
	ae, _ := newTestAE(t, sgx.ModeSimulation)
	defer ae.Close()
	if err := ae.SetPoolConfig(interp.PoolConfig{Disabled: true}); err != nil {
		t.Fatal(err)
	}
	ae.SetLedgerOptions(accounting.LedgerOptions{Shards: 1})
	for i := 0; i < 3; i++ {
		res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{7}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Receipt.Shard != 0 || res.Receipt.Sequence != uint64(i) {
			t.Errorf("run %d landed at %d/%d", i, res.Receipt.Shard, res.Receipt.Sequence)
		}
	}
}
