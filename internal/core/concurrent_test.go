package core_test

import (
	"sort"
	"sync"
	"testing"

	"acctee/internal/accounting"
	"acctee/internal/core"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
)

// newTestAE instruments sumModule and builds an AE around it.
func newTestAE(t *testing.T, mode sgx.Mode) (*core.AccountingEnclave, *core.InstrumentationEnclave) {
	t.Helper()
	ie, err := core.NewInstrumentationEnclave(instrument.LoopBased, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, ev, err := ie.Instrument(sumModule())
	if err != nil {
		t.Fatal(err)
	}
	ae, err := core.NewAccountingEnclave(mode, sgx.DefaultCostParams(), nil, inst, ev, ie.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	return ae, ie
}

// TestConcurrentRunsSequenceAndTotals drives N goroutines × M runs through
// one accounting enclave: every run must yield a verifiable signed log, the
// N×M sequence numbers must be strictly increasing and gap-free, and the
// cumulative snapshot totals must equal the sum of the per-run logs.
func TestConcurrentRunsSequenceAndTotals(t *testing.T) {
	const goroutines, runsEach = 8, 10
	ae, _ := newTestAE(t, sgx.ModeSimulation)

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		logs []accounting.SignedLog
	)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{uint64(10 + g)}})
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				logs = append(logs, res.SignedLog)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if len(logs) != goroutines*runsEach {
		t.Fatalf("got %d signed logs, want %d", len(logs), goroutines*runsEach)
	}
	seqs := make([]uint64, 0, len(logs))
	var sumWeighted uint64
	for _, sl := range logs {
		if err := accounting.Verify(sl, ae.PublicKey(), ae.Measurement()); err != nil {
			t.Fatalf("log %d: %v", sl.Log.Sequence, err)
		}
		seqs = append(seqs, sl.Log.Sequence)
		sumWeighted += sl.Log.WeightedInstructions
		if sl.Log.WeightedInstructions == 0 {
			t.Errorf("log %d: zero weighted instructions", sl.Log.Sequence)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("sequence numbers not gap-free: position %d holds %d (all: %v)", i, s, seqs)
		}
	}

	snap, err := ae.Snapshot(accounting.PeakMemory)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Log.Sequence != uint64(goroutines*runsEach) {
		t.Errorf("snapshot sequence = %d, want %d", snap.Log.Sequence, goroutines*runsEach)
	}
	if snap.Log.WeightedInstructions != sumWeighted {
		t.Errorf("snapshot totals = %d, want sum of per-run logs %d",
			snap.Log.WeightedInstructions, sumWeighted)
	}
}

// TestConcurrentRunsDeterministicPerInput: concurrent runs on pooled
// instances must count exactly like isolated ones — same input, same
// weighted instruction count, regardless of which recycled instance served
// it.
func TestConcurrentRunsDeterministicPerInput(t *testing.T) {
	ae, _ := newTestAE(t, sgx.ModeSimulation)
	ref, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{25}})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.SignedLog.Log.WeightedInstructions

	const goroutines, runsEach = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*runsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{25}})
				if err != nil {
					errs <- err
					return
				}
				if got := res.SignedLog.Log.WeightedInstructions; got != want {
					t.Errorf("weighted instructions = %d, want %d", got, want)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolConfigDisabledRunsFresh: an AE with pooling disabled still serves
// correct, sequence-ordered runs (every Run instantiates fresh).
func TestPoolConfigDisabledRunsFresh(t *testing.T) {
	ae, _ := newTestAE(t, sgx.ModeSimulation)
	if err := ae.SetPoolConfig(interp.PoolConfig{Disabled: true}); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i := 0; i < 3; i++ {
		res, err := ae.Run(core.RunOptions{Entry: "sum", Args: []uint64{7}})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.SignedLog.Log.Sequence != prev+1 {
			t.Errorf("sequence %d after %d", res.SignedLog.Log.Sequence, prev)
		}
		prev = res.SignedLog.Log.Sequence
	}
}
