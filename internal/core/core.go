// Package core assembles AccTEE's two-way sandbox (paper §3, Fig. 2/3):
// the Instrumentation Enclave (IE) that rewrites WebAssembly for weighted
// instruction counting and signs evidence of having done so, and the
// Accounting Enclave (AE) that verifies the evidence, executes the workload
// inside the execution sandbox under an SGX cost model, and emits signed
// resource usage logs trusted by both the workload provider and the
// infrastructure provider.
package core

import (
	"context"
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"acctee/internal/accounting"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
	"acctee/internal/sgxlkl"
	"acctee/internal/wasm"
	wasmbin "acctee/internal/wasm/binary"
	"acctee/internal/wasm/validate"
	"acctee/internal/weights"
)

// Enclave code identities. Both parties audit the (public) enclave code and
// compute these measurements independently (§3.3); attestation then proves
// a genuine enclave with exactly this code is running.
const (
	ieCodeIdentity = "acctee/instrumentation-enclave v1.0"
	aeCodeIdentity = "acctee/accounting-enclave v1.0 (sgx-lkl + wasm interpreter)"
)

// IEMeasurement returns the expected instrumentation-enclave measurement.
func IEMeasurement() sgx.Measurement { return sgx.MeasureCode([]byte(ieCodeIdentity)) }

// AEMeasurement returns the expected accounting-enclave measurement.
func AEMeasurement() sgx.Measurement { return sgx.MeasureCode([]byte(aeCodeIdentity)) }

// Evidence is the instrumentation enclave's signed statement that a given
// instrumented module was derived from a given original module with a given
// instrumentation configuration (Fig. 3 "Instrumentation Evidence").
type Evidence struct {
	OriginalHash     [32]byte
	InstrumentedHash [32]byte
	CounterGlobal    uint32
	CounterName      string
	Level            instrument.Level
	WeightsHash      [32]byte
	Signature        []byte
}

func (e *Evidence) marshalForSig() []byte {
	out := make([]byte, 0, 128)
	out = append(out, e.OriginalHash[:]...)
	out = append(out, e.InstrumentedHash[:]...)
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], e.CounterGlobal)
	out = append(out, b[:4]...)
	binary.LittleEndian.PutUint64(b[:], uint64(e.Level))
	out = append(out, b[:]...)
	out = append(out, e.WeightsHash[:]...)
	out = append(out, []byte(e.CounterName)...)
	return out
}

// Evidence verification errors.
var (
	ErrEvidenceSignature = errors.New("core: instrumentation evidence signature invalid")
	ErrEvidenceMismatch  = errors.New("core: module does not match instrumentation evidence")
)

// InstrumentationEnclave (IE) instruments modules inside a TEE and signs
// evidence binding input to output. Its code is public and auditable; the
// measurement commits to exactly this implementation.
type InstrumentationEnclave struct {
	enclave *sgx.Enclave
	weights *weights.Table
	level   instrument.Level
}

// NewInstrumentationEnclave creates an IE with the given instrumentation
// level and weight table (nil means unit weights).
func NewInstrumentationEnclave(level instrument.Level, tbl *weights.Table) (*InstrumentationEnclave, error) {
	if tbl == nil {
		tbl = weights.Unit()
	}
	encl, err := sgx.NewEnclave([]byte(ieCodeIdentity), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		return nil, err
	}
	return &InstrumentationEnclave{enclave: encl, weights: tbl, level: level}, nil
}

// PublicKey returns the IE's signing key (bound via attestation).
func (ie *InstrumentationEnclave) PublicKey() *ecdsa.PublicKey { return ie.enclave.PublicKey() }

// Quote produces a remote-attestation quote for the IE via the platform's
// quoting enclave.
func (ie *InstrumentationEnclave) Quote(qe *sgx.QuotingEnclave) (sgx.Quote, error) {
	rep := ie.enclave.CreateReport(sgx.PubKeyUserData(ie.enclave.PublicKey()))
	return qe.QuoteReport(rep)
}

// ModuleHash hashes a module's binary encoding.
func ModuleHash(m *wasm.Module) ([32]byte, error) {
	bin, err := wasmbin.Encode(m)
	if err != nil {
		return [32]byte{}, fmt.Errorf("core: encode module: %w", err)
	}
	return sha256.Sum256(bin), nil
}

// Instrument validates and instruments a module, returning the instrumented
// module and signed evidence. The instrumentation runs once; the output can
// be cached and reused across many executions (§3.3).
func (ie *InstrumentationEnclave) Instrument(m *wasm.Module) (*wasm.Module, Evidence, error) {
	origHash, err := ModuleHash(m)
	if err != nil {
		return nil, Evidence{}, err
	}
	res, err := instrument.Instrument(m, instrument.Options{Level: ie.level, Weights: ie.weights})
	if err != nil {
		return nil, Evidence{}, err
	}
	instHash, err := ModuleHash(res.Module)
	if err != nil {
		return nil, Evidence{}, err
	}
	ev := Evidence{
		OriginalHash:     origHash,
		InstrumentedHash: instHash,
		CounterGlobal:    res.CounterGlobal,
		CounterName:      res.CounterName,
		Level:            ie.level,
		WeightsHash:      ie.weights.Hash(),
	}
	sig, err := ie.enclave.Sign(ev.marshalForSig())
	if err != nil {
		return nil, Evidence{}, fmt.Errorf("core: sign evidence: %w", err)
	}
	ev.Signature = sig
	return res.Module, ev, nil
}

// VerifyEvidence checks that the instrumented module matches the evidence
// and that the evidence was signed by the attested IE key.
func VerifyEvidence(m *wasm.Module, ev Evidence, iePub *ecdsa.PublicKey) error {
	h, err := ModuleHash(m)
	if err != nil {
		return err
	}
	if h != ev.InstrumentedHash {
		return ErrEvidenceMismatch
	}
	probe := ev
	probe.Signature = nil
	if !sgx.VerifyBy(iePub, probe.marshalForSig(), ev.Signature) {
		return ErrEvidenceSignature
	}
	return nil
}

// ---------------------------------------------------------------------------
// Accounting enclave

// RunOptions configure one workload execution inside the AE.
type RunOptions struct {
	// Entry is the exported function to invoke.
	Entry string
	// Args are the raw argument values.
	Args []uint64
	// Fuel bounds total executed instructions (0 = unbounded) — the
	// two-way sandbox's resource limit.
	Fuel uint64
	// Policy selects the memory accounting policy (default PeakMemory).
	Policy accounting.MemoryPolicy
	// Imports adds host functions beyond the library-OS defaults.
	Imports map[string]interp.HostFunc
	// MaxPages caps linear memory growth.
	MaxPages uint32
	// Engine selects the interpreter tier (default EngineFused; see
	// interp.ParseEngine for the CLI spellings). Accounting is
	// bit-identical across tiers, so this only trades execution speed
	// against the reference engine's simplicity.
	Engine interp.Engine
}

// RunResult is one execution's outcome plus its ledger evidence.
type RunResult struct {
	Results []uint64
	// Receipt locates the run's record in the AE's hash-chained ledger:
	// shard, lane-local sequence, and the shard's chain head after the
	// append. A later signed checkpoint covering (shard, sequence) vouches
	// for the record with one signature.
	Receipt accounting.Receipt
	// Record is the appended hash-chained ledger record. Its Signature is
	// set only under LedgerOptions.EagerSign (the per-record signing
	// baseline); in the default batched mode records are vouched for by
	// checkpoints instead.
	Record accounting.Record
	// PageFaults and Transitions expose cost-model detail for evaluation.
	PageFaults  uint64
	Transitions uint64
}

// AccountingEnclave (AE) hosts the execution sandbox under SGX protection.
// One AE instance executes one workload module (possibly many invocations,
// e.g. FaaS requests), appending one record per invocation to a sharded,
// hash-chained ledger. The module is compiled once at construction (paper
// §3.3, "instrument once, execute many times"); each Run borrows a pooled
// sandbox instance. Run and Snapshot are safe to call concurrently:
// concurrent runs land on independent sequence lanes (per-shard locks,
// lane-local gap-free sequences), and signing happens at checkpoints
// (periodic or on Snapshot — the paper's "either periodically or upon
// request"), not per record, unless eager signing is configured.
type AccountingEnclave struct {
	enclave  *sgx.Enclave
	libos    *sgxlkl.LibOS
	mode     sgx.Mode
	costs    sgx.CostParams
	weights  *weights.Table
	module   *wasm.Module
	compiled *interp.CompiledModule
	pool     *interp.InstancePool
	modHash  [32]byte
	counter  uint32
	ledger   *accounting.Ledger
}

// NewAccountingEnclave verifies the instrumented module against the
// evidence and prepares it for execution. iePub must already have been
// attested against IEMeasurement by the caller (see Workflow in the root
// package for the full chain).
func NewAccountingEnclave(mode sgx.Mode, costs sgx.CostParams, tbl *weights.Table,
	m *wasm.Module, ev Evidence, iePub *ecdsa.PublicKey) (*AccountingEnclave, error) {
	if tbl == nil {
		tbl = weights.Unit()
	}
	if tbl.Hash() != ev.WeightsHash {
		return nil, errors.New("core: weight table does not match evidence")
	}
	if iePub != nil {
		if err := VerifyEvidence(m, ev, iePub); err != nil {
			return nil, err
		}
	}
	if err := validate.Module(m); err != nil {
		return nil, fmt.Errorf("core: instrumented module invalid: %w", err)
	}
	encl, err := sgx.NewEnclave([]byte(aeCodeIdentity), mode, costs)
	if err != nil {
		return nil, err
	}
	h, err := ModuleHash(m)
	if err != nil {
		return nil, err
	}
	// Compile once; every Run instantiates from the artifact. Pre-warming
	// with this AE's cost-model fingerprint makes the first Run as cheap as
	// the rest.
	compiled, err := interp.Compile(m, interp.CompileOptions{
		CostModels: []interp.CostModel{sgx.NewEPCModel(mode, costs, tbl)},
	})
	if err != nil {
		return nil, fmt.Errorf("core: compile workload: %w", err)
	}
	ledger, err := accounting.NewLedger(encl, accounting.LedgerOptions{})
	if err != nil {
		return nil, fmt.Errorf("core: ledger: %w", err)
	}
	ae := &AccountingEnclave{
		enclave:  encl,
		libos:    sgxlkl.New(encl),
		mode:     mode,
		costs:    costs,
		weights:  tbl,
		module:   m,
		compiled: compiled,
		modHash:  h,
		counter:  ev.CounterGlobal,
		ledger:   ledger,
	}
	if err := ae.SetPoolConfig(interp.PoolConfig{}); err != nil {
		return nil, err
	}
	return ae, nil
}

// SetLedgerOptions replaces the AE's ledger (e.g. to change the shard
// count, enable eager per-record signing, start periodic checkpointing, or
// configure bounded retention/spill-to-disk). It starts a FRESH ledger —
// unless the options name a spill directory holding a previous ledger of
// this enclave identity, which is recovered with its chain state carried
// forward. Records and checkpoints chained in the replaced in-memory
// ledger are discarded with it, and receipts issued against it no longer
// resolve — call it once at setup, before the first Run.
func (ae *AccountingEnclave) SetLedgerOptions(opts accounting.LedgerOptions) error {
	ledger, err := accounting.NewLedger(ae.enclave, opts)
	if err != nil {
		return fmt.Errorf("core: ledger: %w", err)
	}
	ae.ledger.Close()
	ae.ledger = ledger
	return nil
}

// Ledger exposes the AE's hash-chained ledger (receipt lookup, checkpoints,
// offline-verification dumps).
func (ae *AccountingEnclave) Ledger() *accounting.Ledger { return ae.ledger }

// Compact bounds the ledger's resident footprint on request: it signs a
// checkpoint covering every lane and seals the covered records (spilling
// or dropping them per the retention policy), leaving the chain heads
// carried forward.
func (ae *AccountingEnclave) Compact() (accounting.CompactResult, error) {
	return ae.ledger.Compact()
}

// Close stops the ledger's periodic checkpoint goroutine, if one runs, and
// closes its spill files.
func (ae *AccountingEnclave) Close() { ae.ledger.Close() }

// SetPoolConfig replaces the AE's sandbox instance pool (e.g. to disable
// reuse or pre-warm instances). Call it before serving concurrent runs;
// instances already handed out to in-flight runs drain to the old pool.
func (ae *AccountingEnclave) SetPoolConfig(pc interp.PoolConfig) error {
	pool, err := ae.compiled.NewPool(interp.Config{Imports: DefaultImports(ae.libos)}, pc)
	if err != nil {
		return fmt.Errorf("core: sandbox pool: %w", err)
	}
	ae.pool = pool
	return nil
}

// PublicKey returns the AE key that signs usage logs.
func (ae *AccountingEnclave) PublicKey() *ecdsa.PublicKey { return ae.enclave.PublicKey() }

// Measurement returns the AE's measurement.
func (ae *AccountingEnclave) Measurement() sgx.Measurement { return ae.enclave.Measurement() }

// Quote produces a remote-attestation quote for the AE.
func (ae *AccountingEnclave) Quote(qe *sgx.QuotingEnclave) (sgx.Quote, error) {
	rep := ae.enclave.CreateReport(sgx.PubKeyUserData(ae.enclave.PublicKey()))
	return qe.QuoteReport(rep)
}

// LibOS exposes the in-enclave library OS (network pipe, block device).
func (ae *AccountingEnclave) LibOS() *sgxlkl.LibOS { return ae.libos }

// Run executes the workload once, chains its usage record onto the ledger,
// and returns results plus the receipt. Each invocation serves from a
// pooled sandbox instance deterministically reset to fresh-instantiation
// state, as the FaaS gateway does per request (§5.3) — without re-running
// the lowering pass. Run is safe to call from concurrent goroutines: each
// run gets its own instance and its record lands on a caller-affine
// sequence lane (sticky per processor, rebalanced round-robin between
// windows), so runs never contend on a shared lock; per-shard sequences
// are gap-free and strictly increasing.
func (ae *AccountingEnclave) Run(opts RunOptions) (RunResult, error) {
	return ae.RunContext(context.Background(), opts)
}

// RunContext is Run with deadline propagation: when ctx carries a deadline
// or cancellation, a watcher arms the sandbox's cooperative-interrupt flag
// the moment ctx is done, and the workload aborts at its next segment-leader
// charge point with interp.ErrInterrupted (check with errors.Is). The abort
// is accounting-exact: the returned record and receipt charge precisely the
// fuel/instructions retired before the interrupt — resources already spent
// are still billed, bit-identical across engines — so cancellation never
// produces an unaccounted partial execution.
func (ae *AccountingEnclave) RunContext(ctx context.Context, opts RunOptions) (RunResult, error) {
	if opts.Policy == 0 {
		opts.Policy = accounting.PeakMemory
	}
	var intr *atomic.Bool
	if done := ctx.Done(); done != nil {
		intr = new(atomic.Bool)
		if ctx.Err() != nil {
			// Already expired: the run aborts at the entry leader, charging
			// nothing, but still flows through the ledger for a zero-work
			// record — callers see one uniform cancellation path.
			intr.Store(true)
		} else {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					intr.Store(true)
				case <-stop:
				}
			}()
		}
	}
	model := sgx.NewEPCModel(ae.mode, ae.costs, ae.weights)
	// Per-run I/O tally: the ledger sums per-record values into signed
	// checkpoint totals, so every record must carry only this run's bytes,
	// never the library OS's cumulative counters.
	var tally ioTally
	imports := talliedImports(ae.libos, &tally)
	for k, v := range opts.Imports {
		imports[k] = v
	}
	// The meter integrates linear-memory size over the weighted counter:
	// each growth event closes the interval at the old size (§3.5,
	// fine-grained memory policy).
	var meter accounting.Meter
	counterIdx := ae.counter
	pool := ae.pool
	vm, err := pool.Get(interp.Config{
		Engine:    opts.Engine,
		Imports:   imports,
		Fuel:      opts.Fuel,
		CostModel: model,
		MaxPages:  opts.MaxPages,
		GrowHook: func(vm *interp.VM, oldPages, newPages uint32) {
			c, err := vm.Global(counterIdx)
			if err == nil {
				meter.Update(c, uint64(oldPages)*wasm.PageSize)
			}
		},
		Interrupt: intr,
	})
	if err != nil {
		return RunResult{}, fmt.Errorf("core: instantiate workload: %w", err)
	}
	defer pool.Put(vm)
	// Entering the enclave for the call is one transition.
	vm.AddCost(ae.enclave.Transition())

	results, runErr := vm.InvokeExport(opts.Entry, opts.Args...)
	// Leaving the enclave with the results is another transition.
	vm.AddCost(ae.enclave.Transition())

	counter, err := vm.Global(ae.counter)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: read counter: %w", err)
	}
	meter.Update(counter, uint64(vm.MemorySize()))

	// vm.IOBytes() holds only custom-import traffic here (the tallied
	// library-OS shims account into the tally instead), so nothing is
	// counted twice and the record is a pure per-run delta: summing
	// records across a checkpoint yields exact cumulative totals.
	log := accounting.UsageLog{
		WorkloadHash:         ae.modHash,
		WeightedInstructions: counter,
		PeakMemoryBytes:      uint64(vm.MemorySize()),
		MemoryIntegral:       meter.Integral(),
		IOBytesIn:            tally.in + vm.IOBytes(),
		IOBytesOut:           tally.out,
		SimulatedCycles:      vm.Cost(),
		Policy:               opts.Policy,
	}
	receipt, record, err := ae.ledger.Append(log)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{
		Results:     results,
		Receipt:     receipt,
		Record:      record,
		PageFaults:  model.PageFaults(),
		Transitions: ae.enclave.Transitions(),
	}
	if runErr != nil {
		// The record is still valid — resources were spent up to the trap.
		return res, fmt.Errorf("core: workload: %w", runErr)
	}
	return res, nil
}

// Snapshot produces a signed checkpoint on request (the paper's on-demand
// log, §3.3): one signature covering the contiguous prefix of every
// sequence lane, with totals over all invocations so far. It can be called
// between invocations, e.g. once per billing period, including concurrently
// with Run.
func (ae *AccountingEnclave) Snapshot() (accounting.SignedCheckpoint, error) {
	return ae.ledger.Checkpoint()
}

// QuoteCheckpoint produces a remote-attestation quote whose report binds
// the AE's key AND the given checkpoint — verifiable with
// sgx.AttestationService.AttestCheckpoint. It lets a party prove to a third
// one that the attested enclave stood behind exactly this ledger state.
func (ae *AccountingEnclave) QuoteCheckpoint(qe *sgx.QuotingEnclave, sc accounting.SignedCheckpoint) (sgx.Quote, error) {
	h := sc.Checkpoint.Hash()
	rep := ae.enclave.CreateReport(sgx.CheckpointUserData(ae.enclave.PublicKey(), h))
	return qe.QuoteReport(rep)
}

// ioTally accumulates one run's sandbox-boundary I/O by direction. Host
// functions execute on the run's own goroutine, so no locking is needed.
type ioTally struct{ in, out uint64 }

// DefaultImports exposes the library OS to workloads as host functions:
//
//	env.read(fd, ptr, len) -> n      env.write(fd, ptr, len) -> n
//	env.clock() -> i64               env.block_read(off, ptr, len) -> errno
//	env.block_write(off, ptr, len) -> errno
func DefaultImports(l *sgxlkl.LibOS) map[string]interp.HostFunc {
	return talliedImports(l, nil)
}

// talliedImports is DefaultImports with per-run attribution: with a tally,
// the shims account their bytes there (leaving vm.AddIOBytes to custom
// imports, so nothing is counted twice) and charge the enclave-transition
// cycles the library OS records for net/block syscalls into the run's VM —
// mirroring the LibOS's own accounting, so per-record SimulatedCycles
// include I/O crossings. Without a tally they fall back to the plain VM
// byte counter.
func talliedImports(l *sgxlkl.LibOS, t *ioTally) map[string]interp.HostFunc {
	tallyIn := func(vm *interp.VM, n uint64) {
		if t != nil {
			t.in += n
		} else {
			vm.AddIOBytes(n)
		}
	}
	tallyOut := func(vm *interp.VM, n uint64) {
		if t != nil {
			t.out += n
		} else {
			vm.AddIOBytes(n)
		}
	}
	// The LibOS records one enclave crossing per net or block syscall
	// (mem-file I/O stays inside); attribute its cycle cost to this run.
	crossing := func(vm *interp.VM) {
		if t != nil {
			vm.AddCost(l.TransitionCost())
		}
	}
	return map[string]interp.HostFunc{
		"env.read": func(vm *interp.VM, args []uint64) ([]uint64, error) {
			fd, ptr, n := int32(uint32(args[0])), uint32(args[1]), uint32(args[2])
			buf, err := vm.MemoryDirty(ptr, n)
			if err != nil {
				return []uint64{uint64(uint32(0xFFFFFFFF))}, nil
			}
			got, err := l.Read(fd, buf)
			if err != nil {
				return []uint64{uint64(uint32(0xFFFFFFFF))}, nil
			}
			if fd == sgxlkl.NetFD {
				crossing(vm)
			}
			tallyIn(vm, uint64(got))
			return []uint64{uint64(uint32(got))}, nil
		},
		"env.write": func(vm *interp.VM, args []uint64) ([]uint64, error) {
			fd, ptr, n := int32(uint32(args[0])), uint32(args[1]), uint32(args[2])
			data, err := vm.MemoryView(ptr, n)
			if err != nil {
				return []uint64{uint64(uint32(0xFFFFFFFF))}, nil
			}
			put, err := l.Write(fd, data)
			if err != nil {
				return []uint64{uint64(uint32(0xFFFFFFFF))}, nil
			}
			if fd == sgxlkl.NetFD {
				crossing(vm)
			}
			tallyOut(vm, uint64(put))
			return []uint64{uint64(uint32(put))}, nil
		},
		"env.clock": func(vm *interp.VM, args []uint64) ([]uint64, error) {
			return []uint64{l.Clock()}, nil
		},
		"env.block_read": func(vm *interp.VM, args []uint64) ([]uint64, error) {
			off, ptr, n := uint32(args[0]), uint32(args[1]), uint32(args[2])
			buf, err := vm.MemoryDirty(ptr, n)
			if err != nil {
				return []uint64{1}, nil
			}
			if err := l.ReadBlock(int(off), buf); err != nil {
				return []uint64{1}, nil
			}
			crossing(vm)
			if t != nil {
				t.in += uint64(n)
			}
			return []uint64{0}, nil
		},
		"env.block_write": func(vm *interp.VM, args []uint64) ([]uint64, error) {
			off, ptr, n := uint32(args[0]), uint32(args[1]), uint32(args[2])
			data, err := vm.MemoryView(ptr, n)
			if err != nil {
				return []uint64{1}, nil
			}
			if err := l.WriteBlock(int(off), data); err != nil {
				return []uint64{1}, nil
			}
			crossing(vm)
			if t != nil {
				t.out += uint64(len(data))
			}
			return []uint64{0}, nil
		},
	}
}
