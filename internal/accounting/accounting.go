// Package accounting defines AccTEE's resource usage log (paper §3.5): the
// weighted instruction counter, memory accounting under the peak and
// integral policies, I/O byte counts, and the sharded, hash-chained,
// batch-signed ledger (ledger.go) both parties trust after attesting the
// accounting enclave, with offline replay verification (verify.go).
package accounting

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MemoryPolicy selects how memory usage is billed (§3.5 "two policies").
type MemoryPolicy int

// Memory accounting policies.
const (
	// PeakMemory bills the final (== peak, memory never shrinks) linear
	// memory size.
	PeakMemory MemoryPolicy = iota + 1
	// MemoryIntegral bills the integral of linear memory size over
	// execution time, approximated by the weighted instruction counter.
	MemoryIntegral
)

// String names the policy.
func (p MemoryPolicy) String() string {
	switch p {
	case PeakMemory:
		return "peak"
	case MemoryIntegral:
		return "integral"
	}
	return "policy?"
}

// UsageLog is one workload execution's resource record.
type UsageLog struct {
	// WorkloadHash identifies the (instrumented) module that ran.
	WorkloadHash [32]byte `json:"workloadHash"`
	// WeightedInstructions is the weighted instruction counter value.
	WeightedInstructions uint64 `json:"weightedInstructions"`
	// PeakMemoryBytes is the final linear memory size.
	PeakMemoryBytes uint64 `json:"peakMemoryBytes"`
	// MemoryIntegral is ∑ memorySize·Δcounter over the execution, in
	// byte·instructions (meaningful under MemoryIntegral policy).
	MemoryIntegral uint64 `json:"memoryIntegral"`
	// IOBytesIn / IOBytesOut count bytes crossing the sandbox boundary.
	IOBytesIn  uint64 `json:"ioBytesIn"`
	IOBytesOut uint64 `json:"ioBytesOut"`
	// SimulatedCycles is the cost-model cycle total (EPC paging,
	// transitions) — reported for transparency, not billed per §3.2.
	SimulatedCycles uint64 `json:"simulatedCycles"`
	// Policy is the memory policy both parties agreed on.
	Policy MemoryPolicy `json:"policy"`
	// Sequence orders periodic log records of one execution.
	Sequence uint64 `json:"sequence"`
}

// MarshalSize is the exact byte length of a marshalled UsageLog. The
// chained-hash ledger format (ledger.go) builds on this layout; it must
// never drift silently — see TestMarshalPinned.
const MarshalSize = 32 + 8*8

// Marshal serialises the log deterministically for signing and chaining:
// the workload hash followed by eight little-endian uint64 fields.
func (u *UsageLog) Marshal() []byte {
	return u.AppendMarshal(make([]byte, 0, MarshalSize))
}

// AppendMarshal appends the marshalled log to buf in place (chain hashing
// composes several marshalled structures without intermediate buffers).
func (u *UsageLog) AppendMarshal(buf []byte) []byte {
	buf = append(buf, u.WorkloadHash[:]...)
	var b [8]byte
	for _, v := range [8]uint64{
		u.WeightedInstructions, u.PeakMemoryBytes, u.MemoryIntegral,
		u.IOBytesIn, u.IOBytesOut, u.SimulatedCycles, uint64(u.Policy), u.Sequence,
	} {
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	return buf
}

// UnmarshalUsageLog is Marshal's inverse.
func UnmarshalUsageLog(b []byte) (UsageLog, error) {
	if len(b) != MarshalSize {
		return UsageLog{}, fmt.Errorf("accounting: usage log is %d bytes, want %d", len(b), MarshalSize)
	}
	var u UsageLog
	copy(u.WorkloadHash[:], b[:32])
	fields := [8]*uint64{
		&u.WeightedInstructions, &u.PeakMemoryBytes, &u.MemoryIntegral,
		&u.IOBytesIn, &u.IOBytesOut, &u.SimulatedCycles, nil, &u.Sequence,
	}
	for i, p := range fields {
		v := binary.LittleEndian.Uint64(b[32+8*i:])
		if p != nil {
			*p = v
		} else {
			u.Policy = MemoryPolicy(v)
		}
	}
	return u, nil
}

// ErrBadLogSignature indicates a forged or corrupted usage record
// signature (see VerifyRecordSig in ledger.go — records and checkpoints
// are the only signed accounting artefacts; the pre-ledger per-log
// signing API was removed with PR 3 so there is exactly one trust-critical
// signing surface to audit).
var ErrBadLogSignature = errors.New("accounting: usage log signature invalid")

// Meter tracks the memory integral during execution: Update is called with
// the current counter and memory size whenever either may have changed
// (e.g. at host-call boundaries and after execution).
type Meter struct {
	lastCounter uint64
	integral    uint64
}

// Update advances the integral: memory size is weighted by the counter
// delta since the previous observation.
func (m *Meter) Update(counter uint64, memBytes uint64) {
	if counter > m.lastCounter {
		m.integral += (counter - m.lastCounter) * memBytes
		m.lastCounter = counter
	}
}

// Integral returns the accumulated byte·instruction integral.
func (m *Meter) Integral() uint64 { return m.integral }
