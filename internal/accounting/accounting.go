// Package accounting defines AccTEE's resource usage log (paper §3.5): the
// weighted instruction counter, memory accounting under the peak and
// integral policies, I/O byte counts, and the signed log record both
// parties trust after attesting the accounting enclave.
package accounting

import (
	"crypto/ecdsa"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"acctee/internal/sgx"
)

// MemoryPolicy selects how memory usage is billed (§3.5 "two policies").
type MemoryPolicy int

// Memory accounting policies.
const (
	// PeakMemory bills the final (== peak, memory never shrinks) linear
	// memory size.
	PeakMemory MemoryPolicy = iota + 1
	// MemoryIntegral bills the integral of linear memory size over
	// execution time, approximated by the weighted instruction counter.
	MemoryIntegral
)

// String names the policy.
func (p MemoryPolicy) String() string {
	switch p {
	case PeakMemory:
		return "peak"
	case MemoryIntegral:
		return "integral"
	}
	return "policy?"
}

// UsageLog is one workload execution's resource record.
type UsageLog struct {
	// WorkloadHash identifies the (instrumented) module that ran.
	WorkloadHash [32]byte `json:"workloadHash"`
	// WeightedInstructions is the weighted instruction counter value.
	WeightedInstructions uint64 `json:"weightedInstructions"`
	// PeakMemoryBytes is the final linear memory size.
	PeakMemoryBytes uint64 `json:"peakMemoryBytes"`
	// MemoryIntegral is ∑ memorySize·Δcounter over the execution, in
	// byte·instructions (meaningful under MemoryIntegral policy).
	MemoryIntegral uint64 `json:"memoryIntegral"`
	// IOBytesIn / IOBytesOut count bytes crossing the sandbox boundary.
	IOBytesIn  uint64 `json:"ioBytesIn"`
	IOBytesOut uint64 `json:"ioBytesOut"`
	// SimulatedCycles is the cost-model cycle total (EPC paging,
	// transitions) — reported for transparency, not billed per §3.2.
	SimulatedCycles uint64 `json:"simulatedCycles"`
	// Policy is the memory policy both parties agreed on.
	Policy MemoryPolicy `json:"policy"`
	// Sequence orders periodic log records of one execution.
	Sequence uint64 `json:"sequence"`
}

// Marshal serialises the log deterministically for signing.
func (u *UsageLog) Marshal() []byte {
	buf := make([]byte, 0, 32+8*8)
	buf = append(buf, u.WorkloadHash[:]...)
	for _, v := range []uint64{
		u.WeightedInstructions, u.PeakMemoryBytes, u.MemoryIntegral,
		u.IOBytesIn, u.IOBytesOut, u.SimulatedCycles, uint64(u.Policy), u.Sequence,
	} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	return buf
}

// SignedLog is a usage log signed by the accounting enclave. After remote
// attestation binds the enclave's public key to the audited measurement,
// both the workload provider and the infrastructure provider trust it.
type SignedLog struct {
	Log         UsageLog        `json:"log"`
	Measurement sgx.Measurement `json:"measurement"`
	Signature   []byte          `json:"signature"`
}

// ErrBadLogSignature indicates a forged or corrupted usage log.
var ErrBadLogSignature = errors.New("accounting: usage log signature invalid")

// Sign produces a signed log with the enclave's key.
func Sign(e *sgx.Enclave, log UsageLog) (SignedLog, error) {
	sig, err := e.Sign(log.Marshal())
	if err != nil {
		return SignedLog{}, fmt.Errorf("accounting: sign log: %w", err)
	}
	return SignedLog{Log: log, Measurement: e.Measurement(), Signature: sig}, nil
}

// Verify checks a signed log against the accounting enclave's attested
// public key and expected measurement.
func Verify(sl SignedLog, pub *ecdsa.PublicKey, expected sgx.Measurement) error {
	if sl.Measurement != expected {
		return sgx.ErrWrongMeasurement
	}
	if !sgx.VerifyBy(pub, sl.Log.Marshal(), sl.Signature) {
		return ErrBadLogSignature
	}
	return nil
}

// JSON renders a signed log for transport.
func (sl SignedLog) JSON() ([]byte, error) { return json.Marshal(sl) }

// ParseJSON parses a transported signed log.
func ParseJSON(data []byte) (SignedLog, error) {
	var sl SignedLog
	if err := json.Unmarshal(data, &sl); err != nil {
		return SignedLog{}, fmt.Errorf("accounting: parse log: %w", err)
	}
	return sl, nil
}

// Meter tracks the memory integral during execution: Update is called with
// the current counter and memory size whenever either may have changed
// (e.g. at host-call boundaries and after execution).
type Meter struct {
	lastCounter uint64
	integral    uint64
}

// Update advances the integral: memory size is weighted by the counter
// delta since the previous observation.
func (m *Meter) Update(counter uint64, memBytes uint64) {
	if counter > m.lastCounter {
		m.integral += (counter - m.lastCounter) * memBytes
		m.lastCounter = counter
	}
}

// Integral returns the accumulated byte·instruction integral.
func (m *Meter) Integral() uint64 { return m.integral }
