package accounting_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"acctee/internal/accounting"
	"acctee/internal/sgx"
)

// buildDump creates a ledger with `records` records across 4 shards,
// checkpointing every `cpEvery` appends, and returns the parsed dump plus
// its serialisation.
func buildDump(t *testing.T, records, cpEvery int) (*accounting.Dump, []byte) {
	t.Helper()
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{Shards: 4})
	defer l.Close()
	for i := 0; i < records; i++ {
		if _, _, err := l.Append(logFor(i%7, i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%cpEvery == 0 {
			if _, err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d, err := l.Dump()
	if err != nil {
		t.Fatal(err)
	}
	j, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return d, j
}

func TestVerifyDumpHappyPath(t *testing.T) {
	d, j := buildDump(t, 200, 50)
	res, err := accounting.VerifyDump(d, accounting.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 checkpoints: one per 50 appends; the final Checkpoint() call finds
	// nothing new and returns the last one instead of signing a duplicate.
	if res.Records != 200 || res.Shards != 4 || res.Checkpoints != 4 || res.CoveredRecords != 200 {
		t.Fatalf("result %+v", res)
	}
	if res.Totals != d.Checkpoints[len(d.Checkpoints)-1].Checkpoint.Totals {
		t.Fatal("replayed totals differ from final checkpoint totals")
	}
	// The serialised round trip verifies identically (the acctee-verify path).
	res2, err := accounting.VerifyReader(bytes.NewReader(j), accounting.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if *res2 != *res {
		t.Fatalf("reader result %+v != direct result %+v", res2, res)
	}
	// Measurement pinning: the wrong expectation must fail.
	if _, err := accounting.VerifyDump(d, accounting.VerifyOptions{Measurement: sgx.MeasureCode([]byte("evil"))}); err == nil {
		t.Fatal("wrong measurement accepted")
	}
	// A verifier-supplied key that is not the signer must fail.
	other := newEnclave(t)
	if _, err := accounting.VerifyDump(d, accounting.VerifyOptions{Key: other.PublicKey()}); err == nil {
		t.Fatal("wrong key accepted")
	}
}

// TestVerifyDetectsSingleFlippedByte pins the acceptance criterion: a
// single flipped byte anywhere in a 10k-record serialised ledger must be
// detected — either the dump no longer parses, or verification fails, or
// (for flips in serialisation cosmetics, e.g. the key name of a zero-valued
// field) the parsed content is bit-identical to the original, i.e. nothing
// was actually tampered with.
func TestVerifyDetectsSingleFlippedByte(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-record dump")
	}
	if raceEnabled {
		// Single-goroutine hash replay: the race detector adds minutes of
		// instrumentation overhead and no coverage. The race job still runs
		// the concurrent ledger tests.
		t.Skip("sequential test, skipped under -race")
	}
	orig, j := buildDump(t, 10_000, 2_500)

	// Deterministic sample of flip positions across the whole dump, plus
	// targeted hits on every structural region.
	rng := rand.New(rand.NewSource(42))
	positions := make([]int, 0, 160)
	for i := 0; i < 128; i++ {
		positions = append(positions, rng.Intn(len(j)))
	}
	for _, marker := range []string{
		`"format"`, `"publicKey"`, `"measurement"`, `"shards"`,
		`"weightedInstructions"`, `"prevHash"`, `"hash"`,
		`"checkpoint"`, `"signature"`, `"totals"`, `"heads"`,
	} {
		if idx := strings.Index(string(j), marker); idx >= 0 {
			positions = append(positions, idx+2, idx+len(marker)+4)
		}
	}

	for _, pos := range positions {
		flip := byte(1 + rng.Intn(255))
		mut := append([]byte(nil), j...)
		mut[pos] ^= flip

		d, err := accounting.ParseDump(mut)
		if err != nil {
			continue // corrupted serialisation: detected
		}
		if _, err := accounting.VerifyDump(d, accounting.VerifyOptions{}); err != nil {
			continue // integrity violation: detected
		}
		// Verification passed: the flip must have been cosmetic — the
		// parsed content must be exactly the original's.
		if !reflect.DeepEqual(d, orig) {
			t.Fatalf("flip of byte %d (xor %#x) changed ledger content yet verified", pos, flip)
		}
	}
}

// TestVerifyDetectsStructuralTampering drives the verifier's individual
// checks through semantic (parsed-level) mutations.
func TestVerifyDetectsStructuralTampering(t *testing.T) {
	base, _ := buildDump(t, 60, 20)
	reparse := func() *accounting.Dump {
		j, err := base.JSON()
		if err != nil {
			t.Fatal(err)
		}
		d, err := accounting.ParseDump(j)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name   string
		mutate func(*accounting.Dump)
	}{
		{"undercharge a record", func(d *accounting.Dump) { d.Records[30].Log.WeightedInstructions /= 2 }},
		{"drop a record", func(d *accounting.Dump) { d.Records = append(d.Records[:10], d.Records[11:]...) }},
		{"reorder two records", func(d *accounting.Dump) {
			d.Records[5], d.Records[6] = d.Records[6], d.Records[5]
		}},
		{"splice a forged record", func(d *accounting.Dump) {
			r := d.Records[12]
			r.Log.WeightedInstructions = 0
			r.Hash = r.ComputeHash() // self-consistent, but breaks the successor's PrevHash
			d.Records[12] = r
		}},
		{"truncate a shard", func(d *accounting.Dump) {
			// Remove the last record of shard 3: the final checkpoint's
			// count for that shard no longer matches the dump.
			last := len(d.Records) - 1
			d.Records = d.Records[:last]
		}},
		{"inflate checkpoint totals", func(d *accounting.Dump) {
			d.Checkpoints[1].Checkpoint.Totals.WeightedInstructions++
		}},
		{"drop a checkpoint", func(d *accounting.Dump) { d.Checkpoints = d.Checkpoints[1:] }},
		{"swap checkpoint order", func(d *accounting.Dump) {
			d.Checkpoints[0], d.Checkpoints[1] = d.Checkpoints[1], d.Checkpoints[0]
		}},
		{"truncate checkpoint signature", func(d *accounting.Dump) {
			sig := d.Checkpoints[0].Signature
			d.Checkpoints[0].Signature = sig[:len(sig)-1]
		}},
		{"wrong measurement", func(d *accounting.Dump) { d.Measurement[0] ^= 1 }},
	}
	for _, tc := range cases {
		d := reparse()
		tc.mutate(d)
		if _, err := accounting.VerifyDump(d, accounting.VerifyOptions{}); err == nil {
			t.Errorf("%s: tampered dump verified", tc.name)
		}
	}
}
