//go:build race

package accounting_test

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
