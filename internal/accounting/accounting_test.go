package accounting_test

import (
	"errors"
	"testing"
	"testing/quick"

	"acctee/internal/accounting"
	"acctee/internal/sgx"
)

func newEnclave(t *testing.T) *sgx.Enclave {
	t.Helper()
	e, err := sgx.NewEnclave([]byte("acctee test AE"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sampleLog() accounting.UsageLog {
	return accounting.UsageLog{
		WorkloadHash:         [32]byte{1, 2, 3},
		WeightedInstructions: 123456,
		PeakMemoryBytes:      1 << 20,
		MemoryIntegral:       99,
		IOBytesIn:            10,
		IOBytesOut:           20,
		SimulatedCycles:      777,
		Policy:               accounting.PeakMemory,
		Sequence:             3,
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	e := newEnclave(t)
	sl, err := accounting.Sign(e, sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	if err := accounting.Verify(sl, e.PublicKey(), e.Measurement()); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	e := newEnclave(t)
	sl, err := accounting.Sign(e, sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	// Every field of the log is covered by the signature.
	mutations := []func(*accounting.UsageLog){
		func(u *accounting.UsageLog) { u.WeightedInstructions++ },
		func(u *accounting.UsageLog) { u.PeakMemoryBytes-- },
		func(u *accounting.UsageLog) { u.MemoryIntegral++ },
		func(u *accounting.UsageLog) { u.IOBytesIn++ },
		func(u *accounting.UsageLog) { u.IOBytesOut++ },
		func(u *accounting.UsageLog) { u.SimulatedCycles++ },
		func(u *accounting.UsageLog) { u.Sequence++ },
		func(u *accounting.UsageLog) { u.Policy = accounting.MemoryIntegral },
		func(u *accounting.UsageLog) { u.WorkloadHash[0] ^= 1 },
	}
	for i, mutate := range mutations {
		forged := sl
		mutate(&forged.Log)
		if err := accounting.Verify(forged, e.PublicKey(), e.Measurement()); !errors.Is(err, accounting.ErrBadLogSignature) {
			t.Errorf("mutation %d accepted: %v", i, err)
		}
	}
	// Wrong measurement must also fail.
	other := newEnclave(t)
	_ = other
	wrong := sl
	wrong.Measurement[0] ^= 1
	if err := accounting.Verify(wrong, e.PublicKey(), e.Measurement()); !errors.Is(err, sgx.ErrWrongMeasurement) {
		t.Errorf("wrong measurement: %v", err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a := sampleLog()
	b := sampleLog()
	if string(a.Marshal()) != string(b.Marshal()) {
		t.Error("identical logs marshal differently")
	}
	b.Sequence++
	if string(a.Marshal()) == string(b.Marshal()) {
		t.Error("different logs marshal identically")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := newEnclave(t)
	sl, err := accounting.Sign(e, sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	j, err := sl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := accounting.ParseJSON(j)
	if err != nil {
		t.Fatal(err)
	}
	if back.Log != sl.Log {
		t.Error("JSON round trip changed the log")
	}
	if err := accounting.Verify(back, e.PublicKey(), e.Measurement()); err != nil {
		t.Errorf("round-tripped log rejected: %v", err)
	}
	if _, err := accounting.ParseJSON([]byte("not json")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

// TestMeterIntegral property-checks the memory-integral meter: it is
// monotone and equals Σ mem·Δcounter for increasing counters.
func TestMeterIntegral(t *testing.T) {
	f := func(steps []uint16) bool {
		var m accounting.Meter
		var counter, want uint64
		mem := uint64(4096)
		for _, s := range steps {
			delta := uint64(s % 100)
			counter += delta
			want += delta * mem
			m.Update(counter, mem)
		}
		return m.Integral() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeterIgnoresCounterRegression(t *testing.T) {
	var m accounting.Meter
	m.Update(100, 10)
	before := m.Integral()
	m.Update(50, 10) // a stale observation must not decrease the integral
	if m.Integral() != before {
		t.Error("meter regressed on stale counter")
	}
}

func TestPolicyStrings(t *testing.T) {
	if accounting.PeakMemory.String() != "peak" || accounting.MemoryIntegral.String() != "integral" {
		t.Error("policy names wrong")
	}
}
