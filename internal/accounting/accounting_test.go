package accounting_test

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"

	"acctee/internal/accounting"
	"acctee/internal/sgx"
)

func newEnclave(t *testing.T) *sgx.Enclave {
	t.Helper()
	e, err := sgx.NewEnclave([]byte("acctee test AE"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newTestLedger(t *testing.T, e *sgx.Enclave, opts accounting.LedgerOptions) *accounting.Ledger {
	t.Helper()
	l, err := accounting.NewLedger(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func sampleLog() accounting.UsageLog {
	return accounting.UsageLog{
		WorkloadHash:         [32]byte{1, 2, 3},
		WeightedInstructions: 123456,
		PeakMemoryBytes:      1 << 20,
		MemoryIntegral:       99,
		IOBytesIn:            10,
		IOBytesOut:           20,
		SimulatedCycles:      777,
		Policy:               accounting.PeakMemory,
		Sequence:             3,
	}
}

func TestRecordSignVerifyRoundTrip(t *testing.T) {
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{Shards: 1, EagerSign: true})
	defer l.Close()
	_, rec, err := l.Append(sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	if err := accounting.VerifyRecordSig(rec, e.PublicKey()); err != nil {
		t.Errorf("verify: %v", err)
	}
	// A batched-mode record has no per-record signature to verify.
	lb := newTestLedger(t, e, accounting.LedgerOptions{Shards: 1})
	defer lb.Close()
	_, unsigned, err := lb.Append(sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	if err := accounting.VerifyRecordSig(unsigned, e.PublicKey()); !errors.Is(err, accounting.ErrNoRecordSignature) {
		t.Errorf("unsigned record: %v", err)
	}
}

// TestRecordSigRejectsTampering sweeps every usage-log field: each is
// covered by the eager record signature, and re-hashing a forged record
// never saves the forgery.
func TestRecordSigRejectsTampering(t *testing.T) {
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{Shards: 1, EagerSign: true})
	defer l.Close()
	_, rec, err := l.Append(sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	mutations := []func(*accounting.Record){
		func(r *accounting.Record) { r.Log.WeightedInstructions++ },
		func(r *accounting.Record) { r.Log.PeakMemoryBytes-- },
		func(r *accounting.Record) { r.Log.MemoryIntegral++ },
		func(r *accounting.Record) { r.Log.IOBytesIn++ },
		func(r *accounting.Record) { r.Log.IOBytesOut++ },
		func(r *accounting.Record) { r.Log.SimulatedCycles++ },
		func(r *accounting.Record) { r.Log.Sequence++ },
		func(r *accounting.Record) { r.Log.Policy = accounting.MemoryIntegral },
		func(r *accounting.Record) { r.Log.WorkloadHash[0] ^= 1 },
		func(r *accounting.Record) { r.PrevHash[0] ^= 1 },
		func(r *accounting.Record) { r.Shard++ },
	}
	for i, mutate := range mutations {
		forged := rec
		mutate(&forged)
		forged.Hash = forged.ComputeHash()
		if err := accounting.VerifyRecordSig(forged, e.PublicKey()); !errors.Is(err, accounting.ErrBadLogSignature) {
			t.Errorf("mutation %d accepted: %v", i, err)
		}
	}
	// A wrong key must fail too.
	other := newEnclave(t)
	if err := accounting.VerifyRecordSig(rec, other.PublicKey()); !errors.Is(err, accounting.ErrBadLogSignature) {
		t.Errorf("wrong key: %v", err)
	}
}

// TestMarshalPinned pins the exact serialisation the hash-chained ledger
// builds on: size, field order, and endianness. If this test breaks, every
// existing ledger dump becomes unverifiable — bump DumpFormat instead of
// changing the layout silently.
func TestMarshalPinned(t *testing.T) {
	u := sampleLog()
	b := u.Marshal()
	if len(b) != accounting.MarshalSize {
		t.Fatalf("marshal size %d, want %d", len(b), accounting.MarshalSize)
	}
	want := hex.EncodeToString(u.WorkloadHash[:]) +
		"40e2010000000000" + // WeightedInstructions 123456 LE
		"0000100000000000" + // PeakMemoryBytes 1<<20
		"6300000000000000" + // MemoryIntegral 99
		"0a00000000000000" + // IOBytesIn 10
		"1400000000000000" + // IOBytesOut 20
		"0903000000000000" + // SimulatedCycles 777
		"0100000000000000" + // Policy PeakMemory
		"0300000000000000" // Sequence 3
	if got := hex.EncodeToString(b); got != want {
		t.Fatalf("marshal layout drifted:\n got %s\nwant %s", got, want)
	}
}

// TestMarshalRoundTrip property-checks Marshal/UnmarshalUsageLog inversion.
func TestMarshalRoundTrip(t *testing.T) {
	f := func(hash [32]byte, wi, pk, mi, in, out, cyc, seq uint64, pol uint8) bool {
		u := accounting.UsageLog{
			WorkloadHash:         hash,
			WeightedInstructions: wi,
			PeakMemoryBytes:      pk,
			MemoryIntegral:       mi,
			IOBytesIn:            in,
			IOBytesOut:           out,
			SimulatedCycles:      cyc,
			Policy:               accounting.MemoryPolicy(pol),
			Sequence:             seq,
		}
		back, err := accounting.UnmarshalUsageLog(u.Marshal())
		return err == nil && back == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := accounting.UnmarshalUsageLog([]byte("short")); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a := sampleLog()
	b := sampleLog()
	if string(a.Marshal()) != string(b.Marshal()) {
		t.Error("identical logs marshal differently")
	}
	b.Sequence++
	if string(a.Marshal()) == string(b.Marshal()) {
		t.Error("different logs marshal identically")
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{Shards: 1, EagerSign: true})
	defer l.Close()
	_, rec, err := l.Append(sampleLog())
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back accounting.Record
	if err := json.Unmarshal(j, &back); err != nil {
		t.Fatal(err)
	}
	if back.Log != rec.Log || back.Hash != rec.Hash || back.PrevHash != rec.PrevHash {
		t.Error("JSON round trip changed the record")
	}
	if err := accounting.VerifyRecordSig(back, e.PublicKey()); err != nil {
		t.Errorf("round-tripped record rejected: %v", err)
	}
	if _, err := accounting.ParseDump([]byte("not json")); err == nil {
		t.Error("garbage JSON accepted as a dump")
	}
}

// TestMeterIntegral property-checks the memory-integral meter: it is
// monotone and equals Σ mem·Δcounter for increasing counters.
func TestMeterIntegral(t *testing.T) {
	f := func(steps []uint16) bool {
		var m accounting.Meter
		var counter, want uint64
		mem := uint64(4096)
		for _, s := range steps {
			delta := uint64(s % 100)
			counter += delta
			want += delta * mem
			m.Update(counter, mem)
		}
		return m.Integral() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeterIgnoresCounterRegression(t *testing.T) {
	var m accounting.Meter
	m.Update(100, 10)
	before := m.Integral()
	m.Update(50, 10) // a stale observation must not decrease the integral
	if m.Integral() != before {
		t.Error("meter regressed on stale counter")
	}
}

func TestPolicyStrings(t *testing.T) {
	if accounting.PeakMemory.String() != "peak" || accounting.MemoryIntegral.String() != "integral" {
		t.Error("policy names wrong")
	}
}
