package accounting_test

import (
	"sync"
	"testing"
	"time"

	"acctee/internal/accounting"
)

// logFor builds a distinct usage log per worker/iteration.
func logFor(g, i int) accounting.UsageLog {
	return accounting.UsageLog{
		WorkloadHash:         [32]byte{9, 9, 9},
		WeightedInstructions: uint64(1000 + 13*g + i),
		PeakMemoryBytes:      uint64(1<<16 + g),
		MemoryIntegral:       uint64(7 * i),
		IOBytesIn:            uint64(g),
		IOBytesOut:           uint64(i),
		SimulatedCycles:      uint64(3 * g * i),
		Policy:               accounting.PeakMemory,
	}
}

func TestLedgerChainsPerShard(t *testing.T) {
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{Shards: 3})
	defer l.Close()

	var prev [3][32]byte
	var perShard [3]uint64
	for i := 0; i < 12; i++ {
		rcpt, rec, err := l.Append(logFor(0, i))
		if err != nil {
			t.Fatal(err)
		}
		if rcpt.Shard != rec.Shard || rcpt.Sequence != rec.Log.Sequence || rcpt.ChainHead != rec.Hash {
			t.Fatalf("receipt %+v does not match record", rcpt)
		}
		if rec.PrevHash != prev[rec.Shard] {
			t.Fatalf("record %d/%d not chained to previous head", rec.Shard, rec.Log.Sequence)
		}
		if rec.Hash != rec.ComputeHash() {
			t.Fatal("record hash does not recompute")
		}
		prev[rec.Shard] = rec.Hash
		// Affinity pick: the lane is a performance hint, but whatever lane
		// a record lands on, its lane-local sequence must be gap-free.
		if int(rec.Shard) >= 3 {
			t.Fatalf("record %d landed on out-of-range shard %d", i, rec.Shard)
		}
		if rec.Log.Sequence != perShard[rec.Shard] {
			t.Fatalf("record %d: shard %d sequence %d, want %d", i, rec.Shard, rec.Log.Sequence, perShard[rec.Shard])
		}
		perShard[rec.Shard]++
	}
	// Every append is retrievable by its receipt coordinates.
	var checked int
	for shard := uint32(0); shard < 3; shard++ {
		for seq := uint64(0); seq < perShard[shard]; seq++ {
			r, ok := l.Record(shard, seq)
			if !ok || r.Shard != shard || r.Log.Sequence != seq {
				t.Fatalf("Record(%d,%d) = %+v, %v", shard, seq, r, ok)
			}
			checked++
		}
		if _, ok := l.Record(shard, perShard[shard]); ok {
			t.Fatalf("out-of-range record found on shard %d", shard)
		}
	}
	if checked != 12 {
		t.Fatalf("retrieved %d records, want 12", checked)
	}
}

// TestLedgerEagerVsBatchedDifferential pins the acceptance criterion:
// checkpoint-batched totals are bit-identical to per-record eager signing
// across concurrent appends of the same workload set.
func TestLedgerEagerVsBatchedDifferential(t *testing.T) {
	const goroutines, each = 8, 25
	run := func(opts accounting.LedgerOptions) (accounting.UsageLog, *accounting.Ledger) {
		e := newEnclave(t)
		l := newTestLedger(t, e, opts)
		defer l.Close()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					if _, _, err := l.Append(logFor(g, i)); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		sc, err := l.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if got := sc.Checkpoint.Covered(); got != goroutines*each {
			t.Fatalf("checkpoint covers %d records, want %d", got, goroutines*each)
		}
		return sc.Checkpoint.Totals, l
	}
	eager, el := run(accounting.LedgerOptions{Shards: 4, EagerSign: true})
	batched, bl := run(accounting.LedgerOptions{Shards: 4})
	if eager != batched {
		t.Fatalf("eager totals %+v != batched totals %+v", eager, batched)
	}
	if lt := bl.Totals(); lt != batched {
		t.Fatalf("live totals %+v != checkpoint totals %+v", lt, batched)
	}
	// Eager mode attaches verifiable per-record signatures.
	d, err := el.Dump()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := accounting.ParsePublicKey(d.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Records[:3] {
		if err := accounting.VerifyRecordSig(r, pub); err != nil {
			t.Fatalf("eager record %d/%d: %v", r.Shard, r.Log.Sequence, err)
		}
	}
}

func TestCheckpointSignAndChain(t *testing.T) {
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{Shards: 2})
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, _, err := l.Append(logFor(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	cp1, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 9; i++ {
		if _, _, err := l.Append(logFor(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	cp2, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := accounting.VerifyCheckpointSig(cp1, e.PublicKey(), e.Measurement()); err != nil {
		t.Fatal(err)
	}
	if err := accounting.VerifyCheckpointSig(cp2, e.PublicKey(), e.Measurement()); err != nil {
		t.Fatal(err)
	}
	if cp2.Checkpoint.PrevHash != cp1.Checkpoint.Hash() {
		t.Fatal("checkpoint chain broken")
	}
	if cp1.Checkpoint.Covered() != 5 || cp2.Checkpoint.Covered() != 9 {
		t.Fatalf("covered = %d, %d; want 5, 9", cp1.Checkpoint.Covered(), cp2.Checkpoint.Covered())
	}
	// Tampering with any covered field must invalidate the signature.
	forged := cp2
	forged.Checkpoint.Totals.WeightedInstructions /= 2
	if err := accounting.VerifyCheckpointSig(forged, e.PublicKey(), e.Measurement()); err == nil {
		t.Fatal("forged checkpoint totals accepted")
	}
	forged = cp2
	forged.Checkpoint.Heads[0].Count--
	if err := accounting.VerifyCheckpointSig(forged, e.PublicKey(), e.Measurement()); err == nil {
		t.Fatal("forged checkpoint head accepted")
	}
	if latest, ok := l.LatestCheckpoint(); !ok || latest.Checkpoint.Sequence != 1 {
		t.Fatalf("latest checkpoint = %+v, %v", latest, ok)
	}
	// An idle checkpoint request returns the existing one instead of
	// signing a zero-information duplicate.
	cp3, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp3.Checkpoint.Sequence != cp2.Checkpoint.Sequence {
		t.Fatalf("idle checkpoint signed a duplicate (sequence %d)", cp3.Checkpoint.Sequence)
	}
	if _, _, err := l.Append(logFor(1, 9)); err != nil {
		t.Fatal(err)
	}
	cp4, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp4.Checkpoint.Sequence != cp2.Checkpoint.Sequence+1 {
		t.Fatalf("advancing lane did not produce a new checkpoint (sequence %d)", cp4.Checkpoint.Sequence)
	}
}

func TestPeriodicCheckpointGoroutine(t *testing.T) {
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{Shards: 1, CheckpointInterval: 2 * time.Millisecond})
	if _, _, err := l.Append(logFor(0, 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if sc, ok := l.LatestCheckpoint(); ok && sc.Checkpoint.Covered() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never covered the appended record")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
	// After Close no further checkpoints appear.
	sc1, _ := l.LatestCheckpoint()
	time.Sleep(10 * time.Millisecond)
	sc2, _ := l.LatestCheckpoint()
	if sc1.Checkpoint.Sequence != sc2.Checkpoint.Sequence {
		t.Fatal("checkpoint goroutine survived Close")
	}
}

// TestDumpConsistentUnderConcurrentCheckpointing: a dump taken while
// appends and checkpoint signing race must always verify — checkpoints are
// snapshotted before lane records, so every captured checkpoint covers a
// prefix of the captured records.
func TestDumpConsistentUnderConcurrentCheckpointing(t *testing.T) {
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{Shards: 4})
	defer l.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := l.Append(logFor(g, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for i := 0; i < 15; i++ {
		d, err := l.Dump()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := accounting.VerifyDump(d, accounting.VerifyOptions{}); err != nil {
			t.Fatalf("dump %d taken mid-flight does not verify: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestAppendShardOutOfRange(t *testing.T) {
	l := newTestLedger(t, newEnclave(t), accounting.LedgerOptions{Shards: 2})
	defer l.Close()
	if _, _, err := l.AppendShard(7, logFor(0, 0)); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
