package accounting_test

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"acctee/internal/accounting"
	"acctee/internal/fault"
)

// TestCrashRecoveryDifferential pins the crash path: write records with
// spill enabled, checkpoint and compact mid-stream, keep appending, then
// fire the fault injector's crash point — every later injected write,
// sync, or truncate fails without touching the files, so the directory
// holds a faithful crash image with the resident tail lost even though
// the process shuts down in an orderly way. Reopening the spill
// directory must rebuild per-shard heads,
// sequences and totals to exactly the state the last compaction anchor's
// signature vouches for; a post-anchor checkpoint that covered the lost
// tail must be discarded; and the recovered ledger must keep chaining —
// new records, new checkpoints, and a full from-genesis dump that
// verifies across the crash boundary.
func TestCrashRecoveryDifferential(t *testing.T) {
	dir := t.TempDir()
	e := newEnclave(t)
	opts := accounting.LedgerOptions{
		Shards: 2,
		Retention: accounting.RetentionPolicy{
			MaxResidentRecords: 1 << 20, // no auto-trigger: compaction points are explicit
			SegmentRecords:     8,
			SpillDir:           dir,
		},
	}
	inj := fault.New()
	crashOpts := opts
	crashOpts.Faults = inj
	l1, err := accounting.NewLedger(e, crashOpts)
	if err != nil {
		t.Fatal(err)
	}

	const sealed = 100
	for i := 0; i < sealed; i++ {
		if _, _, err := l1.Append(logFor(1, i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%25 == 0 {
			if _, err := l1.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	comp, err := l1.Compact()
	if err != nil {
		t.Fatal(err)
	}
	anchor := comp.Checkpoint
	if got := anchor.Checkpoint.Covered(); got != sealed {
		t.Fatalf("compaction anchor covers %d, want %d", got, sealed)
	}
	// The doomed tail: appended after the seal, resident only. One more
	// checkpoint covers it — persisted, but its records never spill, so
	// recovery must discard it.
	for i := 0; i < 30; i++ {
		if _, _, err := l1.Append(logFor(7, i)); err != nil {
			t.Fatal(err)
		}
	}
	doomed, err := l1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if doomed.Checkpoint.Sequence <= anchor.Checkpoint.Sequence {
		t.Fatalf("post-anchor checkpoint sequence %d not past anchor %d",
			doomed.Checkpoint.Sequence, anchor.Checkpoint.Sequence)
	}
	// Spill writes are asynchronous since the group-commit writer; Anchor
	// is the documented drain barrier, making the sealed prefix durable
	// before the simulated crash (a real crash can of course also lose
	// enqueued frames — that torn-tail path is pinned by
	// TestRecoveryFallsBackToFrameAlignedAnchor and the mid-group-commit
	// recovery test).
	l1.Anchor()
	// CRASH: the injector enters the dead state, so nothing — not even the
	// orderly Close below — can touch the spill files again. The resident
	// tail is lost exactly as a power cut would lose it, while file
	// handles and writer goroutines still wind down cleanly (the leak
	// checks stay meaningful).
	inj.Crash()
	l1.Close()

	l2, err := accounting.NewLedger(e, opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l2.Close()

	// The discarded checkpoint is surfaced, and the recovered chain state
	// is exactly the anchor's: an idle checkpoint request returns the
	// anchor itself (same heads), rather than signing anything new.
	if dropped := l2.Recovered(); dropped != 1 {
		t.Fatalf("recovery discarded %d checkpoints, want 1 (the post-anchor one)", dropped)
	}
	sc, err := l2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Checkpoint.Sequence != anchor.Checkpoint.Sequence {
		t.Fatalf("recovered checkpoint sequence %d, want anchor %d", sc.Checkpoint.Sequence, anchor.Checkpoint.Sequence)
	}
	for i := range sc.Checkpoint.Heads {
		if sc.Checkpoint.Heads[i] != anchor.Checkpoint.Heads[i] {
			t.Fatalf("recovered head of shard %d %+v != anchor %+v", i, sc.Checkpoint.Heads[i], anchor.Checkpoint.Heads[i])
		}
	}
	if sc.Checkpoint.Totals != anchor.Checkpoint.Totals {
		t.Fatalf("recovered totals %+v != anchor totals %+v", sc.Checkpoint.Totals, anchor.Checkpoint.Totals)
	}
	if lt := l2.Totals(); lt != anchor.Checkpoint.Totals {
		t.Fatalf("recovered live totals %+v != anchor totals %+v", lt, anchor.Checkpoint.Totals)
	}
	if res := l2.Resident(); res != 0 {
		t.Fatalf("recovered ledger has %d resident records, want 0 (tail was lost)", res)
	}
	// Spilled records are reachable; the lost tail is not.
	if _, ok := l2.Record(0, 0); !ok {
		t.Fatal("spilled record 0/0 unreachable after recovery")
	}
	lost := anchor.Checkpoint.Heads[0].Count
	if _, ok := l2.Record(0, lost); ok {
		t.Fatalf("record 0/%d survived the crash but was never spilled", lost)
	}

	// The recovered ledger keeps chaining: sequences continue at the
	// carried-forward counts, new checkpoints extend the persisted chain,
	// and the full dump verifies from genesis across the crash.
	rcpt, rec, err := l2.AppendShard(0, logFor(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Sequence != anchor.Checkpoint.Heads[0].Count {
		t.Fatalf("post-recovery sequence %d, want carry-forward %d", rcpt.Sequence, anchor.Checkpoint.Heads[0].Count)
	}
	if rec.PrevHash != anchor.Checkpoint.Heads[0].Head {
		t.Fatal("post-recovery record does not chain to the anchor's carried-forward head")
	}
	for i := 1; i < 20; i++ {
		if _, _, err := l2.Append(logFor(3, i)); err != nil {
			t.Fatal(err)
		}
	}
	next, err := l2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if next.Checkpoint.Sequence != anchor.Checkpoint.Sequence+1 {
		t.Fatalf("post-recovery checkpoint sequence %d, want %d", next.Checkpoint.Sequence, anchor.Checkpoint.Sequence+1)
	}
	if next.Checkpoint.PrevHash != anchor.Checkpoint.Hash() {
		t.Fatal("post-recovery checkpoint does not chain from the anchor")
	}

	var full bytes.Buffer
	if err := l2.WriteDump(&full, accounting.DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := accounting.VerifyStream(bytes.NewReader(full.Bytes()), accounting.VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatalf("post-recovery full dump: %v", err)
	}
	if res.Records != sealed+20 {
		t.Fatalf("post-recovery dump replayed %d records, want %d", res.Records, sealed+20)
	}
	if res.CoveredRecords != uint64(sealed+20) {
		t.Fatalf("post-recovery checkpoint covers %d, want %d", res.CoveredRecords, sealed+20)
	}
	// And the spill directory itself verifies after another compaction
	// (Anchor drains the async writer so the seal is on disk).
	if _, err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	l2.Anchor()
	sres, err := accounting.VerifySpillDir(dir, accounting.VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Records != sealed+20 {
		t.Fatalf("spill verification replayed %d records, want %d", sres.Records, sealed+20)
	}
}

// TestRecoveryRejectsForeignIdentity: a spill directory belongs to one
// enclave identity; reopening it with a different key must fail rather
// than silently forking the chain.
func TestRecoveryRejectsForeignIdentity(t *testing.T) {
	dir := t.TempDir()
	opts := accounting.LedgerOptions{
		Shards:    1,
		Retention: accounting.RetentionPolicy{SegmentRecords: 4, SpillDir: dir},
	}
	l1, err := accounting.NewLedger(newEnclave(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l1.Append(logFor(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l1.Compact(); err != nil {
		t.Fatal(err)
	}
	l1.Close()
	if _, err := accounting.NewLedger(newEnclave(t), opts); err == nil {
		t.Fatal("spill directory of a different enclave identity reopened without error")
	}
}

// TestRecoveryRefusesCorruptCheckpointLog: a corrupted checkpoint log must
// fail recovery loudly — never silently truncate intact, signature-covered
// segment files down to the (empty) parseable checkpoint prefix.
func TestRecoveryRefusesCorruptCheckpointLog(t *testing.T) {
	dir := t.TempDir()
	e := newEnclave(t)
	opts := accounting.LedgerOptions{
		Shards:    2,
		Retention: accounting.RetentionPolicy{SegmentRecords: 4, SpillDir: dir},
	}
	l1, err := accounting.NewLedger(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit alternating shards: the test stats both shard files, so the
	// populate must not depend on the affinity pick's lane choice.
	for i := 0; i < 10; i++ {
		if _, _, err := l1.AppendShard(uint32(i%2), logFor(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l1.Compact(); err != nil {
		t.Fatal(err)
	}
	l1.Close()

	segSizes := map[string]int64{}
	for _, name := range []string{"shard-0000.seg", "shard-0001.seg"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s empty before corruption — test setup broken", name)
		}
		segSizes[name] = fi.Size()
	}
	cpPath := filepath.Join(dir, "checkpoints.jsonl")
	raw, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] = 'X' // first checkpoint line no longer parses
	if err := os.WriteFile(cpPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := accounting.NewLedger(e, opts); err == nil {
		t.Fatal("recovery accepted a spill dir whose checkpoint log is corrupt")
	}
	// The refusal must leave the segment files untouched.
	for name, want := range segSizes {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != want {
			t.Fatalf("%s truncated from %d to %d bytes by a REFUSED recovery", name, want, fi.Size())
		}
	}
}

// TestRecoveryFallsBackToFrameAlignedAnchor: a torn multi-shard seal can
// leave the newest contained checkpoint mid-frame on some shard (periodic
// checkpoints sign between seals, so their counts need not be frame
// boundaries). Recovery must fall back to the newest checkpoint that is
// both contained AND frame-aligned instead of failing forever.
func TestRecoveryFallsBackToFrameAlignedAnchor(t *testing.T) {
	dir := t.TempDir()
	e := newEnclave(t)
	opts := accounting.LedgerOptions{
		Shards:    2,
		Retention: accounting.RetentionPolicy{SegmentRecords: 2, SpillDir: dir},
	}
	l1, err := accounting.NewLedger(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN := func(shard uint32, n int) {
		for i := 0; i < n; i++ {
			if _, _, err := l1.AppendShard(shard, logFor(int(shard), i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendN(0, 2)
	appendN(1, 2)
	compB, err := l1.Compact() // seal B at (2,2): frames s0:[0,2) s1:[0,2)
	if err != nil {
		t.Fatal(err)
	}
	appendN(0, 2)
	if _, err := l1.Checkpoint(); err != nil { // periodic C at (4,2): persisted, never sealed
		t.Fatal(err)
	}
	appendN(0, 2)
	appendN(1, 2)
	if _, err := l1.Compact(); err != nil { // seal D at (6,4): frames s0:[2,6) s1:[2,4)
		t.Fatal(err)
	}
	l1.Close()

	// Tear shard 1's D frame off, as a crash between Seal's per-shard
	// writes would: shard 0 now ends at 6 (frame ends {2,6}), shard 1 at 2.
	// D (6,4) is uncontained; C (4,2) is contained but 4 is mid-frame on
	// shard 0; B (2,2) is the newest frame-aligned anchor.
	segPath := filepath.Join(dir, "shard-0001.seg")
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// First binary frame = u32 length prefix + payload + u32 CRC.
	if len(raw) < 8 {
		t.Fatalf("expected two frames in %s", segPath)
	}
	end := 4 + int(binary.LittleEndian.Uint32(raw[:4])) + 4
	if end >= len(raw) {
		t.Fatalf("expected two frames in %s", segPath)
	}
	if err := os.WriteFile(segPath, raw[:end], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := accounting.NewLedger(e, opts)
	if err != nil {
		t.Fatalf("recovery failed instead of falling back to the aligned anchor: %v", err)
	}
	defer l2.Close()
	if dropped := l2.Recovered(); dropped != 2 {
		t.Fatalf("recovery discarded %d checkpoints, want 2 (C and D)", dropped)
	}
	sc, err := l2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc.Checkpoint.Heads {
		if sc.Checkpoint.Heads[i] != compB.Checkpoint.Checkpoint.Heads[i] {
			t.Fatalf("recovered head of shard %d %+v != aligned anchor B %+v",
				i, sc.Checkpoint.Heads[i], compB.Checkpoint.Checkpoint.Heads[i])
		}
	}
	// And the surviving spill still verifies end to end.
	if _, err := accounting.VerifySpillDir(dir, accounting.VerifyOptions{Key: e.PublicKey()}); err != nil {
		t.Fatal(err)
	}
}
