package accounting

// Shutdown-ordering, crash, and tamper coverage for the async group-commit
// spill writer, plus the pruned-checkpoint-chain and binary-dump paths.
// White-box so tests can build torn frames byte-for-byte and inspect the
// persisted checkpoint chain.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCloseDuringInflightGroupCommit: Close must act as a full write
// barrier — every sealed frame handed to the writer goroutines before
// Close is durable afterwards, even when Close lands mid-group-commit.
// Repeated seals with no intervening drain keep the writer queues busy so
// Close reliably catches commits in flight (the race detector patrols the
// ordering).
func TestCloseDuringInflightGroupCommit(t *testing.T) {
	dir := t.TempDir()
	e := codecEnclave(t)
	opts := LedgerOptions{
		Shards:    2,
		Retention: RetentionPolicy{SegmentRecords: 4, SpillDir: dir},
	}
	l, err := NewLedger(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		if _, _, err := l.Append(codecLog(i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%8 == 0 {
			if _, err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	sealed := l.SpilledRecords()
	l.Close() // no drain before this: Close itself must flush in-flight commits

	res, err := VerifySpillDir(dir, VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatalf("spill dir after Close: %v", err)
	}
	if uint64(res.Records) != sealed {
		t.Fatalf("spill dir holds %d records after Close, want all %d sealed", res.Records, sealed)
	}
	// And a reopen recovers the full sealed state.
	l2, err := NewLedger(e, opts)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer l2.Close()
	if dropped := l2.Recovered(); dropped != 0 {
		t.Fatalf("clean Close lost %d checkpoints on reopen", dropped)
	}
	if got := l2.SpilledRecords(); got != sealed {
		t.Fatalf("reopen recovered %d spilled records, want %d", got, sealed)
	}
}

// TestCompactRacingWriteDump: dumps taken while another goroutine appends
// and compacts must each be internally consistent — WriteDump drains the
// spill writer, so a dump never observes a half-spilled seal. Every dump
// must verify in both JSON and binary containers.
func TestCompactRacingWriteDump(t *testing.T) {
	dir := t.TempDir()
	e := codecEnclave(t)
	l, err := NewLedger(e, LedgerOptions{
		Shards:    2,
		Retention: RetentionPolicy{SegmentRecords: 4, SpillDir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := l.Append(codecLog(i)); err != nil {
				t.Error(err)
				return
			}
			if (i+1)%16 == 0 {
				if _, err := l.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	pub := e.PublicKey()
	for round := 0; round < 10; round++ {
		bin := round%2 == 1
		var buf bytes.Buffer
		if err := l.WriteDump(&buf, DumpOptions{Binary: bin}); err != nil {
			t.Fatalf("round %d (binary=%v): WriteDump: %v", round, bin, err)
		}
		if _, err := VerifyStream(bytes.NewReader(buf.Bytes()), VerifyOptions{Key: pub}); err != nil {
			t.Fatalf("round %d (binary=%v): dump taken during compaction races does not verify: %v", round, bin, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRecoveryMidGroupCommit: a crash mid-group-commit leaves a shard file
// ending inside a frame (the length prefix promises more bytes than the
// file holds). Recovery must classify that as a torn tail, cut it, and
// reopen on the durable prefix — never refuse the directory and never
// mistake it for tampering.
func TestRecoveryMidGroupCommit(t *testing.T) {
	dir := t.TempDir()
	e := codecEnclave(t)
	opts := LedgerOptions{
		Shards:    1,
		Retention: RetentionPolicy{SegmentRecords: 4, SpillDir: dir},
	}
	l1, err := NewLedger(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := l1.Append(codecLog(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l1.Compact(); err != nil {
		t.Fatal(err)
	}
	l1.Close()

	// Simulate the torn write: replay the first frame's bytes as a HALF
	// frame appended at the tail, exactly what a group commit interrupted
	// mid-Write leaves behind.
	segPath := filepath.Join(dir, shardFileName(0))
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := 4 + int(binary.LittleEndian.Uint32(raw[:4])) + 4
	torn := append(append([]byte(nil), raw...), raw[:frameLen/2]...)
	if err := os.WriteFile(segPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// The offline verifier tolerates the torn tail…
	res, err := VerifySpillDir(dir, VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatalf("torn tail misread as corruption: %v", err)
	}
	if res.Records != 12 {
		t.Fatalf("torn-tail spill verified %d records, want 12", res.Records)
	}
	// …and recovery cuts it and carries on.
	l2, err := NewLedger(e, opts)
	if err != nil {
		t.Fatalf("recovery refused a mid-group-commit directory: %v", err)
	}
	defer l2.Close()
	if got := l2.SpilledRecords(); got != 12 {
		t.Fatalf("recovered %d spilled records, want 12", got)
	}
	if _, _, err := l2.Append(codecLog(12)); err != nil {
		t.Fatal(err)
	}
}

// TestSpilledFrameByteFlipDetected: any single flipped byte inside a
// durable binary frame must fail both the offline verifier and recovery —
// a complete frame with a bad CRC can never demote itself to a torn tail.
func TestSpilledFrameByteFlipDetected(t *testing.T) {
	dir := t.TempDir()
	e := codecEnclave(t)
	opts := LedgerOptions{
		Shards:    1,
		Retention: RetentionPolicy{SegmentRecords: 4, SpillDir: dir},
	}
	l1, err := NewLedger(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := l1.Append(codecLog(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l1.Compact(); err != nil {
		t.Fatal(err)
	}
	l1.Close()

	segPath := filepath.Join(dir, shardFileName(0))
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Byte 10 sits inside the first frame's payload (after the 4-byte
	// length prefix and the shard/base stamps): flipping it breaks the
	// frame CRC without touching any length field, so the mutation cannot
	// masquerade as a torn tail.
	raw[10] ^= 0x01
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := VerifySpillDir(dir, VerifyOptions{Key: e.PublicKey()}); err == nil {
		t.Fatal("verifier accepted a spill dir with a flipped byte in a binary frame")
	}
	if _, err := NewLedger(e, opts); err == nil {
		t.Fatal("recovery reopened a spill dir with a flipped byte in a binary frame")
	}
}

// TestPrunedCheckpointChain: with CheckpointKeepEvery set the persisted
// chain drops non-anchor checkpoints, yet the directory and its dumps
// still verify end-to-end; flipping a byte inside a retained checkpoint
// must still be caught by its signature.
func TestPrunedCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	e := codecEnclave(t)
	opts := LedgerOptions{
		Shards: 1,
		Retention: RetentionPolicy{
			SegmentRecords:      4,
			SpillDir:            dir,
			CheckpointKeepEvery: 4,
		},
	}
	l, err := NewLedger(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Enough compactions that the amortised prune (pruneDrainMin prunable
	// checkpoints before a drain barrier is worth paying) and the store's
	// amortised log rewrite both fire at least once.
	const rounds = 128
	for r := 0; r < rounds; r++ {
		for i := 0; i < 4; i++ {
			if _, _, err := l.Append(codecLog(4*r + i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := l.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	l.Anchor() // drain so the durable chain reflects every seal
	var dump bytes.Buffer
	if err := l.WriteDump(&dump, DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// The persisted chain must actually have pruned something: fewer
	// lines than checkpoints issued, and at least one sequence gap.
	cpRaw, err := os.ReadFile(filepath.Join(dir, checkpointsName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(cpRaw, []byte("\n")), []byte("\n"))
	if len(lines) >= rounds {
		t.Fatalf("checkpoint chain holds %d entries after %d compactions — pruning never fired", len(lines), rounds)
	}
	var seqs []uint64
	for _, line := range lines {
		var sc SignedCheckpoint
		if err := json.Unmarshal(line, &sc); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, sc.Checkpoint.Sequence)
	}
	gapped := false
	for i := 1; i < len(seqs); i++ {
		if seqs[i] > seqs[i-1]+1 {
			gapped = true
		}
	}
	if !gapped {
		t.Fatalf("pruned chain %v has no sequence gaps", seqs)
	}

	// Pruned directory and pruned dump both verify, reporting the gaps.
	res, err := VerifySpillDir(dir, VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatalf("pruned spill dir: %v", err)
	}
	if res.PrunedCheckpointGaps == 0 {
		t.Fatal("pruned spill dir verified with zero reported checkpoint gaps")
	}
	dres, err := VerifyStream(bytes.NewReader(dump.Bytes()), VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatalf("dump of pruned ledger: %v", err)
	}
	if dres.Records != 4*rounds {
		t.Fatalf("pruned dump replayed %d records, want %d", dres.Records, 4*rounds)
	}

	// Tamper with a retained checkpoint: flip one byte inside its totals.
	// Gap tolerance relaxes ADJACENCY only — the signature still covers
	// every retained checkpoint.
	target := lines[len(lines)/2]
	pos := bytes.Index(target, []byte(`"totals"`))
	if pos < 0 {
		t.Fatal("checkpoint line has no totals field")
	}
	mut := append([]byte(nil), cpRaw...)
	off := bytes.Index(mut, target) + pos + len(`"totals":{"`) + 20
	for !(mut[off] >= '0' && mut[off] <= '9') {
		off++ // land on a digit so the line still parses as JSON
	}
	mut[off] = '0' + (mut[off]-'0'+1)%10
	if err := os.WriteFile(filepath.Join(dir, checkpointsName), mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySpillDir(dir, VerifyOptions{Key: e.PublicKey()}); err == nil {
		t.Fatal("verifier accepted a pruned chain with a tampered retained checkpoint")
	}
	if _, err := NewLedger(e, opts); err == nil {
		t.Fatal("recovery accepted a pruned chain with a tampered retained checkpoint")
	}
}

// TestBinaryDumpRoundTrip: the v3 binary container carries exactly the
// JSON dump's verification semantics at a fraction of the bytes, and a
// flipped byte in its record section is detected.
func TestBinaryDumpRoundTrip(t *testing.T) {
	e := codecEnclave(t)
	l, err := NewLedger(e, LedgerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100; i++ {
		if _, _, err := l.Append(codecLog(i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%25 == 0 {
			if _, err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	var jsonDump, binDump bytes.Buffer
	if err := l.WriteDump(&jsonDump, DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteDump(&binDump, DumpOptions{Binary: true}); err != nil {
		t.Fatal(err)
	}
	if binDump.Len() >= jsonDump.Len() {
		t.Fatalf("binary dump (%d bytes) not smaller than JSON (%d bytes)", binDump.Len(), jsonDump.Len())
	}
	jres, err := VerifyStream(bytes.NewReader(jsonDump.Bytes()), VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := VerifyStream(bytes.NewReader(binDump.Bytes()), VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	if *jres != *bres {
		t.Fatalf("binary dump verdict %+v differs from JSON %+v", *bres, *jres)
	}
	if bres.Records != 100 {
		t.Fatalf("binary dump replayed %d records, want 100", bres.Records)
	}

	// Flip one byte inside the record section (past magic + header).
	raw := binDump.Bytes()
	hlen := int(binary.LittleEndian.Uint32(raw[8:12]))
	mut := append([]byte(nil), raw...)
	mut[8+4+hlen+4+10] ^= 0x01
	if _, err := VerifyStream(bytes.NewReader(mut), VerifyOptions{Key: e.PublicKey()}); err == nil {
		t.Fatal("verifier accepted a binary dump with a flipped record byte")
	}
}
