// Offline ledger verification (paper §3.3/§3.5: after attestation, "both
// parties" can check the accounting log without trusting the provider).
//
// A Dump is the serialised ledger. Since the bounded-retention refactor it
// may be *anchored*: records below a signed checkpoint are omitted and
// each shard's chain starts at the anchor's per-shard counts, chaining
// from the anchor's carried-forward heads — the anchor's signature stands
// in for the truncated prefix. Verification replays whatever the dump
// contains, checking
//
//   - per-shard hash-chain continuity from the carried-forward head (every
//     record's PrevHash equals the previous record's recomputed hash — a
//     single flipped byte anywhere breaks the chain at that point),
//   - per-shard gap-free sequence numbers starting at the anchor counts
//     (0 for a from-genesis dump),
//   - checkpoint signatures against the attested enclave key and
//     measurement, checkpoint chaining from the anchor, and that every
//     checkpoint head matches the replayed chain state at its covered
//     count,
//   - totals reconstruction: each checkpoint's aggregate equals the
//     anchor's aggregate plus the deterministic re-aggregation of exactly
//     the records between anchor and checkpoint,
//   - eager per-record signatures where present.
//
// The engine is incremental (verifyCore): it consumes one record at a
// time and keeps O(shards + checkpoints) state, never the records
// themselves. VerifyStream drives it straight off an io.Reader — a
// million-record dump verifies segment-by-segment in O(segment) memory —
// while VerifyDump feeds it from an already-parsed Dump, and
// VerifySpillDir replays a ledger's spill directory frame by frame.
package accounting

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"acctee/internal/sgx"
)

// DumpFormat identifies the serialised ledger layout. v2 added the anchor
// (checkpoint-anchored truncation) and fixed the field order so records
// always come last — the property the streaming verifier relies on.
const DumpFormat = "acctee-ledger/v2"

// DumpFormatV3 is the binary dump container (DumpOptions.Binary): the
// same header JSON framed behind the ACCTDMP3 magic, records as
// length-prefixed binary (codec.go). VerifyStream autodetects v2 vs v3
// by the first byte.
const DumpFormatV3 = "acctee-ledger/v3"

// MaxDumpShards bounds the shard count a dump may declare, far above any
// real configuration (the ledger defaults to one lane per CPU).
const MaxDumpShards = 1 << 16

// Dump is a serialised ledger: the dumped records in deterministic merge
// order (ascending shard, then lane-local sequence), the checkpoints
// covering them, and the identity to verify against. The embedded public
// key is a convenience transport — a suspicious verifier substitutes the
// key it attested itself. Anchor, when present, is the signed checkpoint
// the dump is truncated at: records it covers are omitted and each
// shard's chain carries forward from the anchor's heads.
//
// Field order matters: Records is declared (and always serialised) last,
// so VerifyStream can verify the header and checkpoints before streaming
// records one at a time.
type Dump struct {
	Format      string             `json:"format"`
	Shards      int                `json:"shards"`
	Measurement sgx.Measurement    `json:"measurement"`
	PublicKey   []byte             `json:"publicKey"` // PKIX DER
	Anchor      *SignedCheckpoint  `json:"anchor,omitempty"`
	Checkpoints []SignedCheckpoint `json:"checkpoints"`
	// Pruned declares that checkpoint-chain pruning may have removed
	// entries: the verifier then tolerates sequence gaps between
	// checkpoints (adjacent survivors still chain by hash, and every
	// survivor's signature, heads and totals are fully checked). An
	// undeclared gap remains a hard error — dropping a checkpoint from an
	// unpruned dump is tampering.
	Pruned  bool     `json:"prunedCheckpoints,omitempty"`
	Records []Record `json:"records"`
}

// MarshalPublicKey encodes an ECDSA public key as PKIX DER for a dump.
func MarshalPublicKey(pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("accounting: marshal public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey decodes a dump's PKIX DER public key.
func ParsePublicKey(der []byte) (*ecdsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("accounting: parse public key: %w", err)
	}
	pub, ok := k.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("accounting: dump key is %T, want *ecdsa.PublicKey", k)
	}
	return pub, nil
}

// JSON serialises the dump.
func (d *Dump) JSON() ([]byte, error) { return json.MarshalIndent(d, "", " ") }

// ParseDump parses a serialised dump.
func ParseDump(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
	}
	if d.Format != DumpFormat {
		return nil, fmt.Errorf("accounting: dump format %q, want %q", d.Format, DumpFormat)
	}
	return &d, nil
}

// VerifyResult summarises a successful offline verification.
type VerifyResult struct {
	Shards      int
	Records     int
	Checkpoints int
	// EagerSignatures counts records that carried (verified) per-record
	// signatures.
	EagerSignatures int
	// Totals is the cumulative aggregate since genesis: the anchor's
	// signed totals plus the replay over every record in the dump.
	Totals UsageLog
	// CoveredRecords is how many records (absolute, since genesis) the
	// latest fully verified checkpoint vouches for; records beyond it
	// chain correctly but are not yet signed.
	CoveredRecords uint64
	// Anchored reports a truncated dump; AnchorSequence is the anchoring
	// checkpoint's sequence number and StartRecords how many records it
	// carries forward (omitted from the dump, vouched for by signature).
	Anchored       bool
	AnchorSequence uint64
	StartRecords   uint64
	// BeyondHorizon counts checkpoints whose coverage exceeds the verified
	// input. Only spill-directory verification tolerates these (signed
	// after the last seal, covering records that were never spilled);
	// their signatures and chaining are still checked.
	BeyondHorizon int
	// PrunedCheckpointGaps counts sequence gaps in the checkpoint chain
	// that the input declared as pruning (Dump.Pruned / the spill
	// manifest's prunedCheckpoints flag). Always 0 for unpruned inputs —
	// there a gap fails verification outright.
	PrunedCheckpointGaps int
}

// VerifyOptions tune offline verification.
type VerifyOptions struct {
	// Key overrides the dump-embedded public key (the attested key a
	// verifier obtained out of band).
	Key *ecdsa.PublicKey
	// Measurement, when non-zero, must match the dump's measurement (the
	// audited accounting-enclave identity).
	Measurement sgx.Measurement
}

// verifyCore replays a dump incrementally: header and checkpoints first,
// then one record at a time, in O(shards + checkpoints) state.
type verifyCore struct {
	pub         *ecdsa.PublicKey
	meas        sgx.Measurement
	anchor      *SignedCheckpoint
	cps         []SignedCheckpoint
	allowBeyond bool
	allowGaps   bool

	next      []uint64
	head      [][32]byte
	cpPtr     []int
	deltas    []UsageLog // per-checkpoint aggregate of newly covered records
	tail      UsageLog   // records beyond every checkpoint
	prevShard int

	res *VerifyResult
}

// newVerifyCore validates the header, anchor and checkpoint chain and
// prepares the per-shard replay state. allowGaps tolerates sequence gaps
// between checkpoints — set only when the input declares checkpoint-chain
// pruning; adjacent-sequence checkpoints must hash-chain regardless.
func newVerifyCore(pub *ecdsa.PublicKey, meas sgx.Measurement, shards int,
	anchor *SignedCheckpoint, cps []SignedCheckpoint, allowBeyond, allowGaps bool) (*verifyCore, error) {
	if shards <= 0 || shards > MaxDumpShards {
		// The bound keeps a hand-crafted hostile dump from sizing the
		// verifier's lane state arbitrarily (the verifier is explicitly
		// meant for adversarial inputs).
		return nil, fmt.Errorf("accounting: dump declares %d shards (want 1..%d)", shards, MaxDumpShards)
	}
	c := &verifyCore{
		pub: pub, meas: meas, anchor: anchor, cps: cps,
		allowBeyond: allowBeyond, allowGaps: allowGaps,
		next:      make([]uint64, shards),
		head:      make([][32]byte, shards),
		cpPtr:     make([]int, shards),
		deltas:    make([]UsageLog, len(cps)),
		res:       &VerifyResult{Shards: shards, Checkpoints: len(cps)},
		prevShard: -1,
	}
	checkHeads := func(cp *Checkpoint, what string) error {
		if len(cp.Heads) != shards {
			return fmt.Errorf("accounting: %s %d covers %d shards, dump has %d", what, cp.Sequence, len(cp.Heads), shards)
		}
		for j := range cp.Heads {
			if cp.Heads[j].Shard != uint32(j) {
				return fmt.Errorf("accounting: %s %d heads out of shard order at %d", what, cp.Sequence, j)
			}
		}
		return nil
	}
	var prevHash [32]byte
	var prevSeq uint64
	havePrev := false
	prevCounts := make([]uint64, shards)
	if anchor != nil {
		if err := VerifyCheckpointSig(*anchor, pub, meas); err != nil {
			return nil, fmt.Errorf("accounting: anchor checkpoint %d: %w", anchor.Checkpoint.Sequence, err)
		}
		if err := checkHeads(&anchor.Checkpoint, "anchor checkpoint"); err != nil {
			return nil, err
		}
		for j := range anchor.Checkpoint.Heads {
			h := &anchor.Checkpoint.Heads[j]
			c.next[j] = h.Count
			c.head[j] = h.Head
			prevCounts[j] = h.Count
		}
		prevHash = anchor.Checkpoint.Hash()
		prevSeq = anchor.Checkpoint.Sequence
		havePrev = true
		c.res.Anchored = true
		c.res.AnchorSequence = anchor.Checkpoint.Sequence
		c.res.StartRecords = anchor.Checkpoint.Covered()
	}
	for i := range cps {
		sc := &cps[i]
		cp := &sc.Checkpoint
		if err := VerifyCheckpointSig(*sc, pub, meas); err != nil {
			return nil, fmt.Errorf("accounting: checkpoint %d: %w", cp.Sequence, err)
		}
		// Chain linkage. Adjacent sequences must hash-chain no matter
		// what; a sequence gap is tolerated (and counted) only when the
		// input declared pruning — an undeclared missing checkpoint is
		// tampering, not history management.
		switch {
		case !havePrev:
			if cp.Sequence == 0 {
				if cp.PrevHash != prevHash {
					return nil, fmt.Errorf("accounting: checkpoint 0 breaks the checkpoint chain")
				}
			} else if c.allowGaps {
				c.res.PrunedCheckpointGaps++
			} else {
				return nil, fmt.Errorf("accounting: first checkpoint carries sequence %d, want 0", cp.Sequence)
			}
		case cp.Sequence <= prevSeq:
			return nil, fmt.Errorf("accounting: checkpoint chain runs backwards at %d", cp.Sequence)
		case cp.Sequence == prevSeq+1:
			if cp.PrevHash != prevHash {
				return nil, fmt.Errorf("accounting: checkpoint %d breaks the checkpoint chain", cp.Sequence)
			}
		default:
			if !c.allowGaps {
				return nil, fmt.Errorf("accounting: checkpoint %d breaks the checkpoint chain (gap after %d)", cp.Sequence, prevSeq)
			}
			c.res.PrunedCheckpointGaps++
		}
		prevHash = cp.Hash()
		prevSeq = cp.Sequence
		havePrev = true
		if err := checkHeads(cp, "checkpoint"); err != nil {
			return nil, err
		}
		for j := range cp.Heads {
			if cp.Heads[j].Count < prevCounts[j] {
				return nil, fmt.Errorf("accounting: checkpoint %d rewinds shard %d from %d to %d records",
					cp.Sequence, j, prevCounts[j], cp.Heads[j].Count)
			}
			prevCounts[j] = cp.Heads[j].Count
		}
	}
	// Settle boundaries that coincide with the carried-forward start: a
	// checkpoint covering exactly the anchor counts must carry the
	// anchor's heads.
	for s := 0; s < shards; s++ {
		if err := c.advance(s); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// advance settles every checkpoint boundary the shard's replay cursor has
// reached: at count == next the checkpoint's head must equal the replayed
// chain head.
func (c *verifyCore) advance(s int) error {
	for c.cpPtr[s] < len(c.cps) {
		cp := &c.cps[c.cpPtr[s]].Checkpoint
		cnt := cp.Heads[s].Count
		if cnt > c.next[s] {
			break
		}
		if cnt < c.next[s] {
			return fmt.Errorf("accounting: checkpoint %d covers %d records of shard %d behind the replay cursor %d",
				cp.Sequence, cnt, s, c.next[s])
		}
		if cp.Heads[s].Head != c.head[s] {
			return fmt.Errorf("accounting: checkpoint %d head of shard %d does not match the replayed chain",
				cp.Sequence, s)
		}
		c.cpPtr[s]++
	}
	return nil
}

// record consumes the next record in merge order.
func (c *verifyCore) record(r *Record) error {
	i := c.res.Records
	c.res.Records++
	if int(r.Shard) >= c.res.Shards {
		return fmt.Errorf("accounting: record %d names shard %d of %d", i, r.Shard, c.res.Shards)
	}
	if int(r.Shard) < c.prevShard {
		return fmt.Errorf("accounting: records not in merge order at index %d (shard %d after %d)",
			i, r.Shard, c.prevShard)
	}
	c.prevShard = int(r.Shard)
	s := int(r.Shard)
	if r.Log.Sequence != c.next[s] {
		return fmt.Errorf("accounting: shard %d sequence gap: record %d, want %d",
			r.Shard, r.Log.Sequence, c.next[s])
	}
	if r.PrevHash != c.head[s] {
		return fmt.Errorf("accounting: shard %d record %d breaks the hash chain (prev hash mismatch)",
			r.Shard, r.Log.Sequence)
	}
	h := r.ComputeHash()
	if h != r.Hash {
		return fmt.Errorf("accounting: shard %d record %d content does not match its hash",
			r.Shard, r.Log.Sequence)
	}
	if len(r.Signature) > 0 {
		if err := VerifyRecordSig(*r, c.pub); err != nil {
			return fmt.Errorf("accounting: shard %d record %d: %w", r.Shard, r.Log.Sequence, err)
		}
		c.res.EagerSignatures++
	}
	// Attribute the record to the first checkpoint that covers it (after
	// advance, cpPtr is the first boundary strictly above the cursor).
	if idx := c.cpPtr[s]; idx < len(c.cps) {
		aggregate(&c.deltas[idx], &r.Log)
	} else {
		aggregate(&c.tail, &r.Log)
	}
	c.head[s] = h
	c.next[s]++
	return c.advance(s)
}

// finish checks that every checkpoint boundary was reached and that
// totals reconstruct, then fills the result.
func (c *verifyCore) finish() (*VerifyResult, error) {
	settled := len(c.cps)
	for s := 0; s < c.res.Shards; s++ {
		if c.cpPtr[s] < settled {
			settled = c.cpPtr[s]
		}
	}
	if settled < len(c.cps) && !c.allowBeyond {
		cp := &c.cps[settled].Checkpoint
		for s := range c.next {
			if cp.Heads[s].Count > c.next[s] {
				return nil, fmt.Errorf("accounting: checkpoint %d covers %d records of shard %d, dump has %d",
					cp.Sequence, cp.Heads[s].Count, s, c.next[s])
			}
		}
	}
	c.res.BeyondHorizon = len(c.cps) - settled
	// Totals reconstruction: each fully reached checkpoint's aggregate
	// must equal the anchor's aggregate plus the deltas of every
	// checkpoint up to it. Aggregation is associative and commutative
	// (sums, max, counts), so prefix-merging the per-checkpoint deltas
	// reproduces the from-genesis fold exactly.
	var running UsageLog
	if c.anchor != nil {
		running = c.anchor.Checkpoint.Totals
	}
	cumulative := running
	for i := range c.cps {
		d := c.deltas[i]
		merge(&cumulative, &d)
		if i < settled {
			merge(&running, &d)
			if running != c.cps[i].Checkpoint.Totals {
				return nil, fmt.Errorf("accounting: checkpoint %d totals do not reconstruct from the covered records",
					c.cps[i].Checkpoint.Sequence)
			}
		}
	}
	merge(&cumulative, &c.tail)
	c.res.Totals = cumulative
	if settled > 0 {
		c.res.CoveredRecords = c.cps[settled-1].Checkpoint.Covered()
	} else if c.anchor != nil {
		c.res.CoveredRecords = c.anchor.Checkpoint.Covered()
	}
	return c.res, nil
}

// resolveKey picks the verification key: caller-supplied, else the
// dump-embedded one.
func resolveKey(opts VerifyOptions, der []byte) (*ecdsa.PublicKey, error) {
	if opts.Key != nil {
		return opts.Key, nil
	}
	return ParsePublicKey(der)
}

// checkMeasurement enforces the caller's expected enclave identity.
func checkMeasurement(opts VerifyOptions, got sgx.Measurement) error {
	if opts.Measurement != (sgx.Measurement{}) && got != opts.Measurement {
		return fmt.Errorf("accounting: dump measurement %s does not match expected %s: %w",
			got, opts.Measurement, sgx.ErrWrongMeasurement)
	}
	return nil
}

// VerifyDump replays a parsed ledger dump offline. It returns the first
// integrity violation found, localised to shard/sequence where possible.
func VerifyDump(d *Dump, opts VerifyOptions) (*VerifyResult, error) {
	pub, err := resolveKey(opts, d.PublicKey)
	if err != nil {
		return nil, err
	}
	if err := checkMeasurement(opts, d.Measurement); err != nil {
		return nil, err
	}
	core, err := newVerifyCore(pub, d.Measurement, d.Shards, d.Anchor, d.Checkpoints, false, d.Pruned)
	if err != nil {
		return nil, err
	}
	for i := range d.Records {
		if err := core.record(&d.Records[i]); err != nil {
			return nil, err
		}
	}
	return core.finish()
}

// VerifyStream verifies a serialised dump straight off the reader without
// materialising the record array: the header and checkpoints are decoded
// first (they precede the records in every dump this package writes), then
// records are verified one at a time — O(segment) memory however large the
// ledger grew. Both dump formats are read: the first byte distinguishes a
// JSON v2 dump ('{') from a binary v3 container (the ACCTDMP3 magic).
func VerifyStream(r io.Reader, opts VerifyOptions) (*VerifyResult, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
	}
	if first[0] == dumpMagicV3[0] {
		return verifyBinaryStream(br, opts)
	}
	dec := json.NewDecoder(br)
	expectDelim := func(d json.Delim) error {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("accounting: parse ledger dump: %w", err)
		}
		if got, ok := tok.(json.Delim); !ok || got != d {
			return fmt.Errorf("accounting: parse ledger dump: expected %q, got %v", d, tok)
		}
		return nil
	}
	if err := expectDelim('{'); err != nil {
		return nil, err
	}
	var (
		format      string
		shards      int
		meas        sgx.Measurement
		pubDER      []byte
		anchor      *SignedCheckpoint
		cps         []SignedCheckpoint
		pruned      bool
		sawFormat   bool
		sawShards   bool
		core        *verifyCore
		recordsDone bool
	)
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
		}
		key, ok := tok.(string)
		if !ok {
			return nil, fmt.Errorf("accounting: parse ledger dump: unexpected token %v", tok)
		}
		if core != nil {
			return nil, fmt.Errorf("accounting: dump field %q after records — not a streaming-layout dump", key)
		}
		switch key {
		case "format":
			if err := dec.Decode(&format); err != nil {
				return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
			}
			sawFormat = true
		case "shards":
			if err := dec.Decode(&shards); err != nil {
				return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
			}
			sawShards = true
		case "measurement":
			if err := dec.Decode(&meas); err != nil {
				return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
			}
		case "publicKey":
			if err := dec.Decode(&pubDER); err != nil {
				return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
			}
		case "anchor":
			anchor = new(SignedCheckpoint)
			if err := dec.Decode(anchor); err != nil {
				return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
			}
		case "checkpoints":
			if err := dec.Decode(&cps); err != nil {
				return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
			}
		case "prunedCheckpoints":
			if err := dec.Decode(&pruned); err != nil {
				return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
			}
		case "records":
			if !sawFormat || !sawShards {
				return nil, fmt.Errorf("accounting: dump records precede the header — not a streaming-layout dump")
			}
			if format != DumpFormat {
				return nil, fmt.Errorf("accounting: dump format %q, want %q", format, DumpFormat)
			}
			pub, err := resolveKey(opts, pubDER)
			if err != nil {
				return nil, err
			}
			if err := checkMeasurement(opts, meas); err != nil {
				return nil, err
			}
			if core, err = newVerifyCore(pub, meas, shards, anchor, cps, false, pruned); err != nil {
				return nil, err
			}
			if err := expectDelim('['); err != nil {
				return nil, err
			}
			for dec.More() {
				var rec Record
				if err := dec.Decode(&rec); err != nil {
					return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
				}
				if err := core.record(&rec); err != nil {
					return nil, err
				}
			}
			if err := expectDelim(']'); err != nil {
				return nil, err
			}
			recordsDone = true
		default:
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
			}
		}
	}
	if err := expectDelim('}'); err != nil {
		return nil, err
	}
	if !recordsDone {
		// A dump with no records field at all: still verify header and
		// checkpoints (an idle anchored ledger dumps exactly this).
		if !sawFormat || !sawShards {
			return nil, fmt.Errorf("accounting: dump misses format/shards")
		}
		if format != DumpFormat {
			return nil, fmt.Errorf("accounting: dump format %q, want %q", format, DumpFormat)
		}
		pub, err := resolveKey(opts, pubDER)
		if err != nil {
			return nil, err
		}
		if err := checkMeasurement(opts, meas); err != nil {
			return nil, err
		}
		if core, err = newVerifyCore(pub, meas, shards, anchor, cps, false, pruned); err != nil {
			return nil, err
		}
	}
	return core.finish()
}

// verifyBinaryStream verifies a format-v3 binary dump container.
func verifyBinaryStream(br *bufio.Reader, opts VerifyOptions) (*VerifyResult, error) {
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("accounting: parse binary dump: %w", err)
	}
	if magic != dumpMagicV3 {
		return nil, fmt.Errorf("accounting: binary dump magic %q, want %q", magic[:], dumpMagicV3[:])
	}
	var b [4]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return nil, fmt.Errorf("accounting: parse binary dump header: %w", err)
	}
	hlen := binary.LittleEndian.Uint32(b[:])
	if hlen == 0 || hlen > maxBinDumpHeader {
		return nil, fmt.Errorf("accounting: binary dump declares a %d-byte header", hlen)
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(br, hj); err != nil {
		return nil, fmt.Errorf("accounting: parse binary dump header: %w", err)
	}
	var d Dump
	if err := json.Unmarshal(hj, &d); err != nil {
		return nil, fmt.Errorf("accounting: parse binary dump header: %w", err)
	}
	if d.Format != DumpFormatV3 {
		return nil, fmt.Errorf("accounting: dump format %q, want %q", d.Format, DumpFormatV3)
	}
	pub, err := resolveKey(opts, d.PublicKey)
	if err != nil {
		return nil, err
	}
	if err := checkMeasurement(opts, d.Measurement); err != nil {
		return nil, err
	}
	core, err := newVerifyCore(pub, d.Measurement, d.Shards, d.Anchor, d.Checkpoints, false, d.Pruned)
	if err != nil {
		return nil, err
	}
	var rbuf []byte
	for {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, fmt.Errorf("accounting: binary dump truncated: %w", err)
		}
		rlen := int(binary.LittleEndian.Uint32(b[:]))
		if rlen == 0 {
			break // terminator
		}
		if rlen > maxBinDumpRecord {
			return nil, fmt.Errorf("accounting: binary dump record declares %d bytes", rlen)
		}
		if cap(rbuf) < rlen {
			rbuf = make([]byte, rlen)
		}
		rbuf = rbuf[:rlen]
		if _, err := io.ReadFull(br, rbuf); err != nil {
			return nil, fmt.Errorf("accounting: binary dump truncated: %w", err)
		}
		rec, n, err := decodeRecordBin(rbuf)
		if err != nil {
			return nil, err
		}
		if n != rlen {
			return nil, fmt.Errorf("accounting: binary dump record carries %d trailing bytes", rlen-n)
		}
		if err := core.record(&rec); err != nil {
			return nil, err
		}
	}
	return core.finish()
}

// VerifyReader verifies a serialised dump from r, streaming.
func VerifyReader(r io.Reader, opts VerifyOptions) (*VerifyResult, error) {
	return VerifyStream(r, opts)
}

// VerifySpillDir replays a ledger's spill directory offline, frame by
// frame: the manifest supplies the identity, checkpoints.jsonl the signed
// chain, and every spilled record is re-hashed against it — a single
// flipped byte in any segment file fails verification. Checkpoints signed
// after the last seal cover records that were never spilled; their
// signatures and chaining are verified and they are reported in
// BeyondHorizon rather than failing the replay.
func VerifySpillDir(dir string, opts VerifyOptions) (*VerifyResult, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("accounting: spill manifest: %w", err)
	}
	var m spillManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("accounting: spill manifest: %w", err)
	}
	if m.Format != SpillFormatV1 && m.Format != SpillFormatV2 {
		return nil, fmt.Errorf("accounting: spill format %q, want %q or %q", m.Format, SpillFormatV1, SpillFormatV2)
	}
	bin := m.Format == SpillFormatV2
	pub, err := resolveKey(opts, m.PublicKey)
	if err != nil {
		return nil, err
	}
	if err := checkMeasurement(opts, m.Measurement); err != nil {
		return nil, err
	}
	if m.Shards <= 0 || m.Shards > MaxDumpShards {
		return nil, fmt.Errorf("accounting: spill declares %d shards (want 1..%d)", m.Shards, MaxDumpShards)
	}
	cps, err := readSpillCheckpoints(dir, m.Shards, m.Pruned)
	if err != nil {
		return nil, err
	}
	core, err := newVerifyCore(pub, m.Measurement, m.Shards, nil, cps, true, m.Pruned)
	if err != nil {
		return nil, err
	}
	for shard := 0; shard < m.Shards; shard++ {
		path := filepath.Join(dir, shardFileName(shard))
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		var verr error
		var totals UsageLog
		var head [32]byte
		replay := func(fr *spillFrame) error {
			for i := range fr.Records {
				if err := core.record(&fr.Records[i]); err != nil {
					return err
				}
				aggregate(&totals, &fr.Records[i].Log)
				head = fr.Records[i].Hash
			}
			if fr.Head != head || fr.Totals != totals {
				return fmt.Errorf("accounting: spill shard %d: frame head/totals stamp mismatch", shard)
			}
			return nil
		}
		if bin {
			br := bufio.NewReaderSize(f, 1<<20)
			for {
				fr, _, rerr := readBinFrame(br)
				if rerr == io.EOF || rerr == errTornFrame {
					// Clean end, or a frame cut short by a crash
					// mid-group-commit — the exact residue recovery
					// truncates. The frames before it are intact; any
					// checkpoint reaching into the torn part is reported
					// via BeyondHorizon, not a false tamper alarm on an
					// honest crashed ledger. A complete frame with a bad
					// CRC or structure is corruption and fails below.
					break
				}
				if rerr != nil {
					verr = fmt.Errorf("accounting: spill shard %d: %w", shard, rerr)
					break
				}
				if verr = replay(fr); verr != nil {
					break
				}
			}
		} else {
			sc := bufio.NewScanner(f)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<30)
			for sc.Scan() {
				var fr spillFrame
				if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
					if !sc.Scan() {
						// Torn final line from a crash mid-seal.
						break
					}
					verr = fmt.Errorf("accounting: spill shard %d: corrupt frame (not a torn tail): %w", shard, err)
					break
				}
				if verr = replay(&fr); verr != nil {
					break
				}
			}
			if verr == nil {
				verr = sc.Err()
			}
		}
		f.Close()
		if verr != nil {
			return nil, verr
		}
	}
	return core.finish()
}
