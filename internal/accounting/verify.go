// Offline ledger verification (paper §3.3/§3.5: after attestation, "both
// parties" can check the accounting log without trusting the provider).
// A Dump is the serialised ledger; VerifyDump replays it, checking
//
//   - per-shard hash-chain continuity (every record's PrevHash equals the
//     previous record's recomputed hash — a single flipped byte anywhere
//     breaks the chain at that point),
//   - per-shard gap-free sequence numbers starting at 0,
//   - checkpoint signatures against the attested enclave key and
//     measurement, checkpoint chaining, and that every checkpoint head
//     matches the replayed chain state at its covered count,
//   - totals reconstruction: each checkpoint's aggregate equals the
//     deterministic re-aggregation of exactly the records it covers,
//   - eager per-record signatures where present.
package accounting

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"io"

	"acctee/internal/sgx"
)

// DumpFormat identifies the serialised ledger layout.
const DumpFormat = "acctee-ledger/v1"

// MaxDumpShards bounds the shard count a dump may declare, far above any
// real configuration (the ledger defaults to one lane per CPU).
const MaxDumpShards = 1 << 16

// Dump is a serialised ledger: every record in deterministic merge order
// (ascending shard, then lane-local sequence), every signed checkpoint, and
// the identity to verify against. The embedded public key is a convenience
// transport — a suspicious verifier substitutes the key it attested itself.
type Dump struct {
	Format      string             `json:"format"`
	Shards      int                `json:"shards"`
	Measurement sgx.Measurement    `json:"measurement"`
	PublicKey   []byte             `json:"publicKey"` // PKIX DER
	Records     []Record           `json:"records"`
	Checkpoints []SignedCheckpoint `json:"checkpoints"`
}

// MarshalPublicKey encodes an ECDSA public key as PKIX DER for a dump.
func MarshalPublicKey(pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("accounting: marshal public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey decodes a dump's PKIX DER public key.
func ParsePublicKey(der []byte) (*ecdsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("accounting: parse public key: %w", err)
	}
	pub, ok := k.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("accounting: dump key is %T, want *ecdsa.PublicKey", k)
	}
	return pub, nil
}

// JSON serialises the dump.
func (d *Dump) JSON() ([]byte, error) { return json.MarshalIndent(d, "", " ") }

// ParseDump parses a serialised dump.
func ParseDump(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("accounting: parse ledger dump: %w", err)
	}
	if d.Format != DumpFormat {
		return nil, fmt.Errorf("accounting: dump format %q, want %q", d.Format, DumpFormat)
	}
	return &d, nil
}

// VerifyResult summarises a successful offline verification.
type VerifyResult struct {
	Shards      int
	Records     int
	Checkpoints int
	// EagerSignatures counts records that carried (verified) per-record
	// signatures.
	EagerSignatures int
	// Totals is the replayed aggregate over every record in the dump.
	Totals UsageLog
	// CoveredRecords is how many records the latest checkpoint vouches
	// for; records beyond it chain correctly but are not yet signed.
	CoveredRecords uint64
}

// VerifyOptions tune offline verification.
type VerifyOptions struct {
	// Key overrides the dump-embedded public key (the attested key a
	// verifier obtained out of band).
	Key *ecdsa.PublicKey
	// Measurement, when non-zero, must match the dump's measurement (the
	// audited accounting-enclave identity).
	Measurement sgx.Measurement
}

// VerifyDump replays a ledger dump offline. It returns the first integrity
// violation found, localised to shard/sequence where possible.
func VerifyDump(d *Dump, opts VerifyOptions) (*VerifyResult, error) {
	pub := opts.Key
	if pub == nil {
		var err error
		if pub, err = ParsePublicKey(d.PublicKey); err != nil {
			return nil, err
		}
	}
	if opts.Measurement != (sgx.Measurement{}) && d.Measurement != opts.Measurement {
		return nil, fmt.Errorf("accounting: dump measurement %s does not match expected %s: %w",
			d.Measurement, opts.Measurement, sgx.ErrWrongMeasurement)
	}
	if d.Shards <= 0 || d.Shards > MaxDumpShards {
		// The bound keeps a hand-crafted hostile dump from sizing the
		// verifier's lane state arbitrarily (the verifier is explicitly
		// meant for adversarial inputs).
		return nil, fmt.Errorf("accounting: dump declares %d shards (want 1..%d)", d.Shards, MaxDumpShards)
	}

	res := &VerifyResult{Shards: d.Shards, Records: len(d.Records), Checkpoints: len(d.Checkpoints)}

	// Replay every shard chain: gap-free sequences, linked hashes.
	type laneState struct {
		next  uint64
		head  [32]byte
		chain []Record // records in replay order
	}
	lanes := make([]laneState, d.Shards)
	prevShard := -1
	for i := range d.Records {
		r := &d.Records[i]
		if int(r.Shard) >= d.Shards {
			return nil, fmt.Errorf("accounting: record %d names shard %d of %d", i, r.Shard, d.Shards)
		}
		if int(r.Shard) < prevShard {
			return nil, fmt.Errorf("accounting: records not in merge order at index %d (shard %d after %d)",
				i, r.Shard, prevShard)
		}
		prevShard = int(r.Shard)
		ln := &lanes[r.Shard]
		if r.Log.Sequence != ln.next {
			return nil, fmt.Errorf("accounting: shard %d sequence gap: record %d, want %d",
				r.Shard, r.Log.Sequence, ln.next)
		}
		if r.PrevHash != ln.head {
			return nil, fmt.Errorf("accounting: shard %d record %d breaks the hash chain (prev hash mismatch)",
				r.Shard, r.Log.Sequence)
		}
		h := r.ComputeHash()
		if h != r.Hash {
			return nil, fmt.Errorf("accounting: shard %d record %d content does not match its hash",
				r.Shard, r.Log.Sequence)
		}
		if len(r.Signature) > 0 {
			if err := VerifyRecordSig(*r, pub); err != nil {
				return nil, fmt.Errorf("accounting: shard %d record %d: %w", r.Shard, r.Log.Sequence, err)
			}
			res.EagerSignatures++
		}
		ln.head = h
		ln.next++
		ln.chain = append(ln.chain, *r)
		aggregate(&res.Totals, &r.Log)
	}

	// Replay checkpoints: signature, chaining, head/count consistency, and
	// bit-identical totals reconstruction over exactly the covered prefix.
	// Covered counts only ever grow (the enclave extends, never rewinds),
	// so each lane keeps a cursor and running prefix totals, making the
	// whole pass O(records + checkpoints·shards) rather than re-replaying
	// every prefix per checkpoint.
	type laneCursor struct {
		covered uint64
		totals  UsageLog
	}
	cursors := make([]laneCursor, d.Shards)
	var prevCp [32]byte
	for i := range d.Checkpoints {
		sc := &d.Checkpoints[i]
		cp := &sc.Checkpoint
		if err := VerifyCheckpointSig(*sc, pub, d.Measurement); err != nil {
			return nil, fmt.Errorf("accounting: checkpoint %d: %w", cp.Sequence, err)
		}
		if cp.Sequence != uint64(i) {
			return nil, fmt.Errorf("accounting: checkpoint at index %d carries sequence %d", i, cp.Sequence)
		}
		if cp.PrevHash != prevCp {
			return nil, fmt.Errorf("accounting: checkpoint %d breaks the checkpoint chain", cp.Sequence)
		}
		prevCp = cp.Hash()
		if len(cp.Heads) != d.Shards {
			return nil, fmt.Errorf("accounting: checkpoint %d covers %d shards, dump has %d",
				cp.Sequence, len(cp.Heads), d.Shards)
		}
		var totals UsageLog
		for j := range cp.Heads {
			h := &cp.Heads[j]
			if h.Shard != uint32(j) {
				return nil, fmt.Errorf("accounting: checkpoint %d heads out of shard order at %d", cp.Sequence, j)
			}
			ln, cur := &lanes[j], &cursors[j]
			if h.Count > uint64(len(ln.chain)) {
				return nil, fmt.Errorf("accounting: checkpoint %d covers %d records of shard %d, dump has %d",
					cp.Sequence, h.Count, j, len(ln.chain))
			}
			if h.Count < cur.covered {
				return nil, fmt.Errorf("accounting: checkpoint %d rewinds shard %d from %d to %d records",
					cp.Sequence, j, cur.covered, h.Count)
			}
			for ; cur.covered < h.Count; cur.covered++ {
				aggregate(&cur.totals, &ln.chain[cur.covered].Log)
			}
			var want [32]byte
			if h.Count > 0 {
				want = ln.chain[h.Count-1].Hash
			}
			if h.Head != want {
				return nil, fmt.Errorf("accounting: checkpoint %d head of shard %d does not match the replayed chain",
					cp.Sequence, j)
			}
			merge(&totals, &cur.totals)
		}
		if totals != cp.Totals {
			return nil, fmt.Errorf("accounting: checkpoint %d totals do not reconstruct from the covered records",
				cp.Sequence)
		}
		if i == len(d.Checkpoints)-1 {
			res.CoveredRecords = cp.Covered()
		}
	}
	return res, nil
}

// VerifyReader parses and verifies a serialised dump from r.
func VerifyReader(r io.Reader, opts VerifyOptions) (*VerifyResult, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("accounting: read ledger dump: %w", err)
	}
	d, err := ParseDump(data)
	if err != nil {
		return nil, err
	}
	return VerifyDump(d, opts)
}
