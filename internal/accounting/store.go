// Segmented record store: bounded retention for the hash-chained ledger.
//
// PR 3's ledger kept every record in memory forever — fine for evaluation,
// fatal for a gateway serving millions of users. This file bounds it the
// way shielded middleboxes keep long-lived secure state small: the enclave
// retains only the unsigned tail, and signed checkpoints anchor everything
// older.
//
// Records accumulate in fixed-size in-memory segments per shard. Once a
// checkpoint covers a segment, the segment is *sealed*: its records are
// either dropped outright (memory store) or spilled to an append-only
// per-shard segment file (file store) before leaving memory. The shard's
// chain head and next sequence number carry forward, so the live chain
// never breaks — a record appended after a seal still chains to the hash
// of a record that is no longer resident.
//
// Spill layout (file store, one directory per ledger):
//
//	MANIFEST.json    store identity: format, shards, measurement, PKIX key
//	shard-NNNN.seg   append-only; one JSON frame per line, each frame a
//	                 run of records [base, base+count) with the running
//	                 chain head and shard totals after the frame
//	checkpoints.jsonl every signed checkpoint, appended as it is signed
//
// Seals write frames up to exactly the sealing checkpoint's per-shard
// covered counts, so at rest the spilled prefix of every shard ends on a
// checkpoint boundary. Crash recovery (openFileStore on a non-empty
// directory) replays the frames structurally — sequence continuity,
// prev-hash linkage, head/totals consistency — and anchors the rebuilt
// state at the last persisted checkpoint whose coverage the spill actually
// contains, truncating any unanchored trailing frames or checkpoints a
// crash left behind. Byte-level integrity (recomputing every record hash
// against the checkpoint signature chain) is the verifier's job:
// VerifySpillDir / `acctee-verify -spill`.
package accounting

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"acctee/internal/sgx"
)

// RecordStore is the retention layer behind a Ledger: it owns the records
// themselves, while the ledger's lanes own the chain state (head hash, next
// sequence, running totals) that carries forward when records leave memory.
//
// Records of one shard arrive in strict sequence order (the lane lock
// serialises appends); implementations are safe for concurrent use across
// shards and for concurrent readers.
type RecordStore interface {
	// Append stores a freshly chained record on its shard's open segment.
	Append(rec Record) error
	// Get returns the record at (shard, seq) if it is still reachable —
	// resident in memory, or spilled to disk for a file store.
	Get(shard uint32, seq uint64) (Record, bool)
	// Resident returns how many records are currently held in memory.
	Resident() int
	// Spilled returns how many records of the shard are durably spilled
	// (always 0 for a memory store).
	Spilled(shard uint32) uint64
	// Seal releases every record the checkpoint covers: the file store
	// first spills the not-yet-spilled covered prefix of each shard (and
	// records the checkpoint as the new recovery anchor), then both stores
	// drop fully covered — and, for file stores, fully spilled — segments
	// from memory. It returns how many records left memory.
	Seal(sc *SignedCheckpoint) (released int, err error)
	// PersistCheckpoint makes a signed checkpoint durable (no-op for the
	// memory store). The ledger calls it for every checkpoint it signs, so
	// recovery never has to bridge a gap in the checkpoint hash chain.
	PersistCheckpoint(sc *SignedCheckpoint) error
	// Snapshot pins the shard's reachable records with sequence in
	// [from, to) and returns a replay closure that streams them in order
	// WITHOUT holding store locks: a concurrent Seal may release the
	// records after the snapshot, and the closure must still replay the
	// pinned range (spilled frames are immutable in the append-only file;
	// the resident suffix is copied at snapshot time). Snapshot fails if
	// [from, to) reaches below the earliest reachable sequence.
	Snapshot(shard uint32, from, to uint64) (func(fn func(*Record) error) error, error)
	// Persistent reports whether sealed records remain reachable (file
	// store) or are gone for good (memory store).
	Persistent() bool
	// Close flushes and releases any spill files. The store stays
	// readable for resident records.
	Close() error
}

// segment is one fixed-size run of resident records.
type segment struct {
	base uint64 // sequence number of records[0]
	recs []Record
}

// shardSegs is one shard's resident segment list plus its spill watermark.
type shardSegs struct {
	mu   sync.Mutex
	segs []*segment
	// next is the sequence the next appended record must carry.
	next uint64
	// dropped is the first still-resident sequence (records below it left
	// memory); segs[0].base == dropped whenever segs is non-empty.
	dropped uint64
	// spilled is the number of durably spilled records (file store only).
	spilled uint64
	// spillTotals / spillHead mirror the running aggregate and chain head
	// of the spilled prefix (stamped into frame headers).
	spillTotals UsageLog
	spillHead   [32]byte
	// frames indexes the shard's spill file for O(frame) Get/Stream.
	frames []frameIndex
}

// frameIndex locates one spilled frame inside a shard's segment file.
type frameIndex struct {
	base  uint64
	count uint64
	off   int64 // byte offset of the frame's line
	size  int64 // line length including the trailing newline
}

// segStore is the shared segmented core of both stores.
type segStore struct {
	segRecords int
	shards     []shardSegs
	resident   atomic.Int64
}

func newSegStore(shards, segRecords int) *segStore {
	if segRecords < 1 {
		segRecords = 1
	}
	return &segStore{segRecords: segRecords, shards: make([]shardSegs, shards)}
}

func (s *segStore) Append(rec Record) error {
	sh := &s.shards[rec.Shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec.Log.Sequence != sh.next {
		return fmt.Errorf("accounting: store append out of order: shard %d got %d, want %d",
			rec.Shard, rec.Log.Sequence, sh.next)
	}
	n := len(sh.segs)
	if n == 0 || len(sh.segs[n-1].recs) >= s.segRecords {
		sh.segs = append(sh.segs, &segment{
			base: sh.next,
			recs: make([]Record, 0, s.segRecords),
		})
		n++
	}
	seg := sh.segs[n-1]
	seg.recs = append(seg.recs, rec)
	sh.next++
	s.resident.Add(1)
	return nil
}

func (s *segStore) Get(shard uint32, seq uint64) (Record, bool) {
	if int(shard) >= len(s.shards) {
		return Record{}, false
	}
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec, ok := sh.getResident(seq); ok {
		return rec, true
	}
	return Record{}, false
}

// getResident looks seq up in the resident segments (caller holds sh.mu).
func (sh *shardSegs) getResident(seq uint64) (Record, bool) {
	if seq < sh.dropped || seq >= sh.next {
		return Record{}, false
	}
	i := sort.Search(len(sh.segs), func(i int) bool {
		seg := sh.segs[i]
		return seq < seg.base+uint64(len(seg.recs))
	})
	if i >= len(sh.segs) {
		return Record{}, false
	}
	seg := sh.segs[i]
	if seq < seg.base {
		return Record{}, false
	}
	return seg.recs[seq-seg.base], true
}

func (s *segStore) Resident() int { return int(s.resident.Load()) }

// dropCovered drops every resident segment whose records all lie below
// limit (caller holds sh.mu). Returns how many records left memory.
func (s *segStore) dropCovered(sh *shardSegs, limit uint64) int {
	released := 0
	for len(sh.segs) > 0 {
		seg := sh.segs[0]
		end := seg.base + uint64(len(seg.recs))
		if end > limit {
			// Partially covered segments stay resident whole: sealing is
			// segment-granular in memory (the uncovered suffix must remain
			// reachable). A fully covered open segment is dropped — the
			// next append simply starts a fresh one.
			break
		}
		released += len(seg.recs)
		sh.dropped = end
		sh.segs = sh.segs[1:]
	}
	if len(sh.segs) == 0 {
		sh.dropped = sh.next
	} else {
		sh.dropped = sh.segs[0].base
	}
	s.resident.Add(int64(-released))
	return released
}

// collectResident copies the resident records in [from, to) out of the
// segments (caller holds sh.mu).
func (sh *shardSegs) collectResident(from, to uint64) ([]Record, error) {
	if to > sh.next {
		to = sh.next
	}
	if from >= to {
		return nil, nil
	}
	if from < sh.dropped {
		return nil, fmt.Errorf("accounting: store snapshot from %d below earliest resident %d", from, sh.dropped)
	}
	var out []Record
	for _, seg := range sh.segs {
		end := seg.base + uint64(len(seg.recs))
		if end <= from || seg.base >= to {
			continue
		}
		lo, hi := from, to
		if lo < seg.base {
			lo = seg.base
		}
		if hi > end {
			hi = end
		}
		out = append(out, seg.recs[lo-seg.base:hi-seg.base]...)
	}
	return out, nil
}

// replaySlice wraps a copied record slice as a snapshot closure.
func replaySlice(recs []Record) func(fn func(*Record) error) error {
	return func(fn func(*Record) error) error {
		for i := range recs {
			if err := fn(&recs[i]); err != nil {
				return err
			}
		}
		return nil
	}
}

// ---------------------------------------------------------------------------
// memory store

// memStore keeps records in segments and drops sealed segments outright —
// the bounded-retention mode for gateways that only ever need the signed
// checkpoint chain plus the live tail.
type memStore struct {
	*segStore
}

// NewMemoryStore creates a segmented in-memory record store: sealed
// segments are dropped, their effect surviving only in checkpoint
// signatures and the lanes' carried-forward heads.
func NewMemoryStore(shards, segRecords int) RecordStore {
	return &memStore{segStore: newSegStore(shards, segRecords)}
}

func (m *memStore) Spilled(uint32) uint64                     { return 0 }
func (m *memStore) PersistCheckpoint(*SignedCheckpoint) error { return nil }
func (m *memStore) Persistent() bool                          { return false }
func (m *memStore) Close() error                              { return nil }

func (m *memStore) Seal(sc *SignedCheckpoint) (int, error) {
	released := 0
	for i := range sc.Checkpoint.Heads {
		h := &sc.Checkpoint.Heads[i]
		if int(h.Shard) >= len(m.shards) {
			return released, fmt.Errorf("accounting: seal names shard %d of %d", h.Shard, len(m.shards))
		}
		sh := &m.shards[h.Shard]
		sh.mu.Lock()
		released += m.dropCovered(sh, h.Count)
		sh.mu.Unlock()
	}
	return released, nil
}

func (m *memStore) Snapshot(shard uint32, from, to uint64) (func(fn func(*Record) error) error, error) {
	if int(shard) >= len(m.shards) {
		return nil, fmt.Errorf("accounting: snapshot names shard %d of %d", shard, len(m.shards))
	}
	sh := &m.shards[shard]
	sh.mu.Lock()
	recs, err := sh.collectResident(from, to)
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return replaySlice(recs), nil
}

// ---------------------------------------------------------------------------
// file store

// SpillFormat identifies the spill directory layout.
const SpillFormat = "acctee-spill/v1"

// spillManifest is the MANIFEST.json content binding a spill directory to
// one ledger identity.
type spillManifest struct {
	Format      string          `json:"format"`
	Shards      int             `json:"shards"`
	SegRecords  int             `json:"segmentRecords"`
	Measurement sgx.Measurement `json:"measurement"`
	PublicKey   []byte          `json:"publicKey"` // PKIX DER
}

// spillFrame is one line of a shard's segment file: a contiguous run of
// records plus the shard's chain head and running totals after the run.
type spillFrame struct {
	Shard   uint32   `json:"shard"`
	Base    uint64   `json:"base"`
	Head    [32]byte `json:"head"`
	Totals  UsageLog `json:"totals"`
	Records []Record `json:"records"`
}

const (
	manifestName    = "MANIFEST.json"
	checkpointsName = "checkpoints.jsonl"
)

func shardFileName(shard int) string { return fmt.Sprintf("shard-%04d.seg", shard) }

// fileStore spills sealed records to append-only per-shard segment files.
type fileStore struct {
	*segStore
	dir      string
	manifest spillManifest

	mu    sync.Mutex // guards files + checkpoint file appends
	files []*os.File
	cpF   *os.File
}

// recoveredState is what openFileStore rebuilt from a non-empty spill
// directory: the per-shard carried-forward chain state and the persisted
// checkpoint chain, anchored at the last checkpoint the spill contains.
type recoveredState struct {
	// Heads carries each shard's next sequence (Count) and chain head.
	Heads []ShardHead
	// Totals is each shard's running aggregate over the spilled prefix.
	Totals []UsageLog
	// Checkpoints is the persisted chain up to and including the anchor.
	Checkpoints []SignedCheckpoint
	// DroppedCheckpoints counts persisted checkpoints beyond the spill
	// horizon that recovery had to discard (their covered tail records
	// were resident at crash time and are gone).
	DroppedCheckpoints int
}

// openFileStore creates or reopens a spill directory. On a fresh (or
// empty) directory it writes the manifest and returns a nil recovery
// state; on a populated one it replays the spill and returns the rebuilt
// chain state.
func openFileStore(dir string, shards, segRecords int, meas sgx.Measurement, pubDER []byte) (*fileStore, *recoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("accounting: spill dir: %w", err)
	}
	fs := &fileStore{
		segStore: newSegStore(shards, segRecords),
		dir:      dir,
		manifest: spillManifest{
			Format: SpillFormat, Shards: shards, SegRecords: segRecords,
			Measurement: meas, PublicKey: pubDER,
		},
		files: make([]*os.File, shards),
	}
	manifestPath := filepath.Join(dir, manifestName)
	var rec *recoveredState
	if raw, err := os.ReadFile(manifestPath); err == nil {
		var m spillManifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, nil, fmt.Errorf("accounting: spill manifest: %w", err)
		}
		if m.Format != SpillFormat {
			return nil, nil, fmt.Errorf("accounting: spill format %q, want %q", m.Format, SpillFormat)
		}
		if m.Shards != shards {
			return nil, nil, fmt.Errorf("accounting: spill dir has %d shards, ledger wants %d", m.Shards, shards)
		}
		if m.Measurement != meas || !bytes.Equal(m.PublicKey, pubDER) {
			return nil, nil, fmt.Errorf("accounting: spill dir belongs to a different enclave identity")
		}
		fs.manifest = m
		if rec, err = fs.recover(); err != nil {
			return nil, nil, err
		}
	} else if os.IsNotExist(err) {
		j, err := json.MarshalIndent(fs.manifest, "", " ")
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(manifestPath, j, 0o644); err != nil {
			return nil, nil, fmt.Errorf("accounting: write spill manifest: %w", err)
		}
	} else {
		return nil, nil, fmt.Errorf("accounting: spill manifest: %w", err)
	}
	for i := range fs.files {
		f, err := os.OpenFile(filepath.Join(dir, shardFileName(i)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fs.Close()
			return nil, nil, fmt.Errorf("accounting: open spill file: %w", err)
		}
		fs.files[i] = f
	}
	f, err := os.OpenFile(filepath.Join(dir, checkpointsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fs.Close()
		return nil, nil, fmt.Errorf("accounting: open checkpoint log: %w", err)
	}
	fs.cpF = f
	return fs, rec, nil
}

// scanFrames structurally replays one shard's segment file: frames must be
// contiguous runs with internally consistent sequences, prev-hash linkage
// and head/totals stamps. It returns the frame index, final chain state,
// and the byte offset just past the last good frame (a torn trailing line
// from a crash mid-spill is cut there, not treated as corruption).
func scanShardFile(path string, shard uint32) (frames []frameIndex, next uint64, head [32]byte, totals UsageLog, goodEnd int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, head, totals, 0, nil
	}
	if err != nil {
		return nil, 0, head, totals, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<30)
	var off int64
	for sc.Scan() {
		line := sc.Bytes()
		size := int64(len(line)) + 1
		var fr spillFrame
		if err := json.Unmarshal(line, &fr); err != nil {
			if sc.Scan() {
				// An unparsable line FOLLOWED by more data is corruption,
				// not a torn tail — refuse rather than silently dropping
				// the frames behind it.
				return nil, 0, head, totals, 0, fmt.Errorf(
					"accounting: spill shard %d: corrupt frame at offset %d (not a torn tail)", shard, off)
			}
			// Torn tail from a crash mid-append: everything before it is
			// intact; the caller truncates here.
			return frames, next, head, totals, off, nil
		}
		if fr.Shard != shard || fr.Base != next || len(fr.Records) == 0 {
			return nil, 0, head, totals, 0, fmt.Errorf(
				"accounting: spill shard %d frame at offset %d out of order (base %d, want %d)",
				shard, off, fr.Base, next)
		}
		for i := range fr.Records {
			r := &fr.Records[i]
			if r.Shard != shard || r.Log.Sequence != next {
				return nil, 0, head, totals, 0, fmt.Errorf(
					"accounting: spill shard %d record %d out of sequence (want %d)", shard, r.Log.Sequence, next)
			}
			if r.PrevHash != head {
				return nil, 0, head, totals, 0, fmt.Errorf(
					"accounting: spill shard %d record %d breaks the hash chain", shard, next)
			}
			head = r.Hash
			aggregate(&totals, &r.Log)
			next++
		}
		if fr.Head != head || fr.Totals != totals {
			return nil, 0, head, totals, 0, fmt.Errorf(
				"accounting: spill shard %d frame at offset %d head/totals stamp mismatch", shard, off)
		}
		frames = append(frames, frameIndex{base: fr.Base, count: uint64(len(fr.Records)), off: off, size: size})
		off += size
	}
	if err := sc.Err(); err != nil {
		return nil, 0, head, totals, 0, err
	}
	return frames, next, head, totals, off, nil
}

// recover rebuilds per-shard chain state from the spill directory,
// truncating whatever a crash left unanchored (frames past the last
// persisted checkpoint whose coverage the spill fully contains, and
// checkpoints past the spill horizon).
func (fs *fileStore) recover() (*recoveredState, error) {
	type shardScan struct {
		frames  []frameIndex
		next    uint64
		head    [32]byte
		totals  UsageLog
		goodEnd int64
	}
	scans := make([]shardScan, len(fs.shards))
	for i := range fs.shards {
		frames, next, head, totals, goodEnd, err := scanShardFile(
			filepath.Join(fs.dir, shardFileName(i)), uint32(i))
		if err != nil {
			return nil, err
		}
		scans[i] = shardScan{frames, next, head, totals, goodEnd}
	}
	cps, err := readSpillCheckpoints(fs.dir, len(fs.shards))
	if err != nil {
		return nil, err
	}
	// The anchor is the last persisted checkpoint the spill fully
	// contains AND whose per-shard counts land on frame boundaries —
	// periodic checkpoints signed between seals can be contained yet fall
	// mid-frame, and the spill can only be cut between frames. Later
	// checkpoints covered records that were resident at crash time; they
	// are discarded along with any frames a mid-seal crash wrote past the
	// anchor (at most the last seal can be torn).
	ends := make([]map[uint64]bool, len(fs.shards))
	for i := range scans {
		ends[i] = map[uint64]bool{0: true}
		for _, fr := range scans[i].frames {
			ends[i][fr.base+fr.count] = true
		}
	}
	anchor := -1
	for i := range cps {
		anchored := true
		for _, h := range cps[i].Checkpoint.Heads {
			if h.Count > scans[h.Shard].next || !ends[h.Shard][h.Count] {
				anchored = false
				break
			}
		}
		if anchored {
			anchor = i
		}
	}
	// A spill with records but no anchoring checkpoint means the
	// checkpoint log was lost or corrupted out from under the frames.
	// Refuse: recovering "from genesis" here would truncate every segment
	// file to zero, destroying intact signature-covered records.
	if anchor < 0 {
		for i := range scans {
			if scans[i].next > 0 {
				return nil, fmt.Errorf(
					"accounting: spill dir holds %d records of shard %d but no persisted checkpoint anchors them — refusing to recover (checkpoint log lost or corrupt?)",
					scans[i].next, i)
			}
		}
	}
	rec := &recoveredState{
		Heads:              make([]ShardHead, len(fs.shards)),
		Totals:             make([]UsageLog, len(fs.shards)),
		DroppedCheckpoints: len(cps) - anchor - 1,
	}
	if anchor >= 0 {
		rec.Checkpoints = cps[:anchor+1]
	}
	for i := range fs.shards {
		s := &scans[i]
		var limit uint64 // anchored spill horizon for this shard
		if anchor >= 0 {
			limit = cps[anchor].Checkpoint.Heads[i].Count
		}
		if s.next > limit {
			// Truncate unanchored frames (and re-scan state) back to the
			// anchor boundary. Frames end exactly on seal boundaries, so
			// the cut always lands between frames.
			cut := int64(0)
			kept := s.frames[:0]
			s.next, s.head, s.totals = 0, [32]byte{}, UsageLog{}
			for _, fr := range s.frames {
				if fr.base+fr.count > limit {
					break
				}
				cut = fr.off + fr.size
				kept = append(kept, fr)
			}
			if len(kept) > 0 {
				last := kept[len(kept)-1]
				if last.base+last.count != limit {
					return nil, fmt.Errorf("accounting: spill shard %d cannot be cut at anchor boundary %d", i, limit)
				}
			} else if limit != 0 {
				return nil, fmt.Errorf("accounting: spill shard %d misses anchored records below %d", i, limit)
			}
			// Recompute the carried-forward state over the kept prefix.
			if err := fs.rescanPrefix(i, kept, &s.next, &s.head, &s.totals); err != nil {
				return nil, err
			}
			s.frames, s.goodEnd = kept, cut
		}
		if err := os.Truncate(filepath.Join(fs.dir, shardFileName(i)), s.goodEnd); err != nil {
			return nil, fmt.Errorf("accounting: truncate spill shard %d: %w", i, err)
		}
		sh := &fs.shards[i]
		sh.next, sh.dropped = s.next, s.next
		sh.spilled, sh.spillHead, sh.spillTotals = s.next, s.head, s.totals
		sh.frames = s.frames
		rec.Heads[i] = ShardHead{Shard: uint32(i), Count: s.next, Head: s.head}
		rec.Totals[i] = s.totals
	}
	if rec.DroppedCheckpoints > 0 || anchor < len(cps)-1 {
		if err := fs.rewriteCheckpoints(rec.Checkpoints); err != nil {
			return nil, err
		}
	}
	// Cross-check the rebuilt state against the anchor's signature-covered
	// heads and totals: the carried-forward chain state IS what the last
	// signed checkpoint vouches for.
	if anchor >= 0 {
		cp := &cps[anchor].Checkpoint
		var merged UsageLog
		for i := range rec.Heads {
			if rec.Heads[i] != cp.Heads[i] {
				return nil, fmt.Errorf("accounting: recovered head of shard %d does not match the anchoring checkpoint", i)
			}
			t := rec.Totals[i]
			merge(&merged, &t)
		}
		if merged != cp.Totals {
			return nil, fmt.Errorf("accounting: recovered totals do not match the anchoring checkpoint")
		}
	}
	return rec, nil
}

// rescanPrefix recomputes chain state over a kept frame prefix after a
// truncation decision (rare path: only after a crash mid-seal).
func (fs *fileStore) rescanPrefix(shard int, frames []frameIndex, next *uint64, head *[32]byte, totals *UsageLog) error {
	f, err := os.Open(filepath.Join(fs.dir, shardFileName(shard)))
	if err != nil {
		return err
	}
	defer f.Close()
	for _, fr := range frames {
		frame, err := readFrameAt(f, fr)
		if err != nil {
			return err
		}
		for i := range frame.Records {
			*head = frame.Records[i].Hash
			aggregate(totals, &frame.Records[i].Log)
			*next++
		}
	}
	return nil
}

// readFrameAt decodes one frame at a known offset.
func readFrameAt(f *os.File, fi frameIndex) (*spillFrame, error) {
	buf := make([]byte, fi.size)
	if _, err := f.ReadAt(buf, fi.off); err != nil {
		return nil, fmt.Errorf("accounting: read spill frame: %w", err)
	}
	var fr spillFrame
	if err := json.Unmarshal(bytes.TrimRight(buf, "\n"), &fr); err != nil {
		return nil, fmt.Errorf("accounting: decode spill frame: %w", err)
	}
	return &fr, nil
}

// readSpillCheckpoints reads a spill directory's persisted checkpoint
// chain (torn tail lines are cut, as with frames).
func readSpillCheckpoints(dir string, shards int) ([]SignedCheckpoint, error) {
	f, err := os.Open(filepath.Join(dir, checkpointsName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cps []SignedCheckpoint
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<30)
	for sc.Scan() {
		var c SignedCheckpoint
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			if sc.Scan() {
				// Corruption mid-log (a torn tail can only be the final
				// line): refuse rather than silently forgetting the
				// checkpoints behind it.
				return nil, fmt.Errorf("accounting: corrupt checkpoint log entry before end of file")
			}
			break // torn tail
		}
		if len(c.Checkpoint.Heads) != shards {
			return nil, fmt.Errorf("accounting: persisted checkpoint %d covers %d shards, store has %d",
				c.Checkpoint.Sequence, len(c.Checkpoint.Heads), shards)
		}
		for j := range c.Checkpoint.Heads {
			if c.Checkpoint.Heads[j].Shard != uint32(j) {
				return nil, fmt.Errorf("accounting: persisted checkpoint %d heads out of shard order", c.Checkpoint.Sequence)
			}
		}
		if n := len(cps); n > 0 {
			prev := &cps[n-1].Checkpoint
			if c.Checkpoint.Sequence != prev.Sequence+1 || c.Checkpoint.PrevHash != prev.Hash() {
				return nil, fmt.Errorf("accounting: persisted checkpoint chain breaks at %d", c.Checkpoint.Sequence)
			}
		}
		cps = append(cps, c)
	}
	return cps, sc.Err()
}

// rewriteCheckpoints atomically replaces the checkpoint log (recovery
// discarding entries beyond the spill horizon).
func (fs *fileStore) rewriteCheckpoints(cps []SignedCheckpoint) error {
	tmp := filepath.Join(fs.dir, checkpointsName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i := range cps {
		j, err := json.Marshal(&cps[i])
		if err != nil {
			f.Close()
			return err
		}
		w.Write(j)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(fs.dir, checkpointsName))
}

// Get serves resident records from memory and sealed ones from their
// spill frame (O(frame) via the per-shard frame index) — receipts stay
// resolvable after their records leave memory.
func (fs *fileStore) Get(shard uint32, seq uint64) (Record, bool) {
	if int(shard) >= len(fs.shards) {
		return Record{}, false
	}
	sh := &fs.shards[shard]
	sh.mu.Lock()
	if rec, ok := sh.getResident(seq); ok {
		sh.mu.Unlock()
		return rec, true
	}
	if seq >= sh.spilled {
		sh.mu.Unlock()
		return Record{}, false
	}
	i := sort.Search(len(sh.frames), func(i int) bool {
		fi := &sh.frames[i]
		return seq < fi.base+fi.count
	})
	if i >= len(sh.frames) || seq < sh.frames[i].base {
		sh.mu.Unlock()
		return Record{}, false
	}
	fi := sh.frames[i]
	sh.mu.Unlock()
	f, err := os.Open(filepath.Join(fs.dir, shardFileName(int(shard))))
	if err != nil {
		return Record{}, false
	}
	defer f.Close()
	frame, err := readFrameAt(f, fi)
	if err != nil {
		return Record{}, false
	}
	return frame.Records[seq-fi.base], true
}

func (fs *fileStore) Spilled(shard uint32) uint64 {
	if int(shard) >= len(fs.shards) {
		return 0
	}
	sh := &fs.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.spilled
}

func (fs *fileStore) Persistent() bool { return true }

func (fs *fileStore) PersistCheckpoint(sc *SignedCheckpoint) error {
	j, err := json.Marshal(sc)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cpF == nil {
		return fmt.Errorf("accounting: spill store closed")
	}
	_, err = fs.cpF.Write(append(j, '\n'))
	return err
}

// Seal spills each shard's not-yet-spilled covered prefix as one frame,
// then drops fully spilled segments from memory. Frames therefore always
// end exactly on the sealing checkpoint's boundary — the property crash
// recovery and truncated-dump anchoring rely on.
func (fs *fileStore) Seal(sc *SignedCheckpoint) (int, error) {
	released := 0
	for i := range sc.Checkpoint.Heads {
		h := &sc.Checkpoint.Heads[i]
		if int(h.Shard) >= len(fs.shards) {
			return released, fmt.Errorf("accounting: seal names shard %d of %d", h.Shard, len(fs.shards))
		}
		sh := &fs.shards[h.Shard]
		sh.mu.Lock()
		if h.Count > sh.spilled {
			// Build the frame — and its running head/totals stamps — in
			// locals; shard state commits only after the write succeeds, so
			// a failed spill (ENOSPC, EIO) leaves the stamps consistent and
			// the next Seal retries the same range instead of
			// double-counting it.
			frame := spillFrame{Shard: h.Shard, Base: sh.spilled,
				Head: sh.spillHead, Totals: sh.spillTotals}
			for seq := sh.spilled; seq < h.Count; seq++ {
				rec, ok := sh.getResident(seq)
				if !ok {
					sh.mu.Unlock()
					return released, fmt.Errorf("accounting: seal lost shard %d record %d before spilling", h.Shard, seq)
				}
				frame.Records = append(frame.Records, rec)
				aggregate(&frame.Totals, &rec.Log)
				frame.Head = rec.Hash
			}
			j, err := json.Marshal(&frame)
			if err != nil {
				sh.mu.Unlock()
				return released, err
			}
			fs.mu.Lock()
			f := fs.files[h.Shard]
			var off int64
			if f != nil {
				if off, err = f.Seek(0, 2); err == nil {
					var n int
					if n, err = f.Write(append(j, '\n')); err != nil && n > 0 {
						// A partial write leaves a torn line that the next
						// successful append would bury mid-file (which
						// recovery rejects as corruption, not a torn
						// tail). Cut the file back to the frame start; if
						// even that fails, retire the handle so no later
						// Seal writes past known junk.
						if terr := f.Truncate(off); terr != nil {
							_ = f.Close()
							fs.files[h.Shard] = nil
						}
					}
				}
			} else {
				err = fmt.Errorf("accounting: spill store closed")
			}
			fs.mu.Unlock()
			if err != nil {
				sh.mu.Unlock()
				return released, fmt.Errorf("accounting: spill shard %d: %w", h.Shard, err)
			}
			sh.frames = append(sh.frames, frameIndex{
				base: frame.Base, count: uint64(len(frame.Records)),
				off: off, size: int64(len(j)) + 1,
			})
			sh.spilled = h.Count
			sh.spillHead, sh.spillTotals = frame.Head, frame.Totals
		}
		// Only fully spilled segments may leave memory.
		limit := h.Count
		if sh.spilled < limit {
			limit = sh.spilled
		}
		released += fs.dropCovered(sh, limit)
		sh.mu.Unlock()
	}
	return released, nil
}

// Snapshot pins [from, to): spilled frame locations (immutable in the
// append-only file) plus a copy of the resident suffix. The returned
// closure replays spilled frames straight off disk, one frame in memory
// at a time, with no store locks held — a slow consumer never blocks
// appends or compactions.
func (fs *fileStore) Snapshot(shard uint32, from, to uint64) (func(fn func(*Record) error) error, error) {
	if int(shard) >= len(fs.shards) {
		return nil, fmt.Errorf("accounting: snapshot names shard %d of %d", shard, len(fs.shards))
	}
	sh := &fs.shards[shard]
	sh.mu.Lock()
	spilled := sh.spilled
	frames := append([]frameIndex(nil), sh.frames...)
	lo := from
	if lo < spilled {
		lo = spilled
	}
	resident, err := sh.collectResident(lo, to)
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	path := filepath.Join(fs.dir, shardFileName(int(shard)))
	return func(fn func(*Record) error) error {
		if from < spilled {
			f, err := os.Open(path)
			if err != nil {
				return fmt.Errorf("accounting: open spill shard %d: %w", shard, err)
			}
			defer f.Close()
			for _, fi := range frames {
				if fi.base+fi.count <= from {
					continue
				}
				if fi.base >= to {
					return nil
				}
				frame, err := readFrameAt(f, fi)
				if err != nil {
					return err
				}
				for i := range frame.Records {
					seq := fi.base + uint64(i)
					if seq < from {
						continue
					}
					if seq >= to {
						return nil
					}
					if err := fn(&frame.Records[i]); err != nil {
						return err
					}
				}
			}
		}
		return replaySlice(resident)(fn)
	}, nil
}

func (fs *fileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var first error
	for i, f := range fs.files {
		if f != nil {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			fs.files[i] = nil
		}
	}
	if fs.cpF != nil {
		if err := fs.cpF.Close(); err != nil && first == nil {
			first = err
		}
		fs.cpF = nil
	}
	return first
}
