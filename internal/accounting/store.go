// Segmented record store: bounded retention for the hash-chained ledger.
//
// PR 3's ledger kept every record in memory forever — fine for evaluation,
// fatal for a gateway serving millions of users. This file bounds it the
// way shielded middleboxes keep long-lived secure state small: the enclave
// retains only the unsigned tail, and signed checkpoints anchor everything
// older.
//
// Records accumulate in fixed-size in-memory segments per shard. Once a
// checkpoint covers a segment, the segment is *sealed*: its records are
// either dropped outright (memory store) or spilled to an append-only
// per-shard segment file (file store) before leaving memory. The shard's
// chain head and next sequence number carry forward, so the live chain
// never breaks — a record appended after a seal still chains to the hash
// of a record that is no longer resident.
//
// Spill layout (file store, one directory per ledger):
//
//	MANIFEST.json    store identity: format, shards, measurement, PKIX key
//	shard-NNNN.seg   append-only; one frame per seal, each frame a run of
//	                 records [base, base+count) with the running chain head
//	                 and shard totals after the frame. Format v2 frames are
//	                 length-prefixed binary with a CRC-32C (codec.go);
//	                 format v1 frames are one JSON object per line
//	                 (legacy — still read and, on a reopened v1 directory,
//	                 still written, so a file never mixes codecs).
//	checkpoints.jsonl signed checkpoints, appended as they are signed; with
//	                 pruning enabled the chain may skip sequences (the
//	                 manifest's prunedCheckpoints flag says so)
//
// Spill I/O is asynchronous (PR 7): Seal builds and encodes the frame,
// publishes it on the shard's pending queue, and hands it to a per-shard
// writer goroutine through a bounded channel — backpressure blocks the
// compaction path, never Append. The writer group-commits: it drains
// whatever frames are queued (up to spillGroupCommitMax) and lands the
// batch with one write. Durability is deferred to sync points — every
// spillSyncBytes of frame data, and always on Drain — where the
// checkpoint log fsyncs FIRST (so no durable frame can outrun the
// checkpoint that anchors it) and then the shard files. Pending
// (sealed-but-not-yet-durable) frames stay readable through Get/Snapshot;
// Drain blocks until the pipeline is empty, which is how Ledger.Close,
// WriteDump and Anchor guarantee dumps and verifier runs only ever observe
// fully spilled seals.
//
// Seals write frames up to exactly the sealing checkpoint's per-shard
// covered counts, so at rest the spilled prefix of every shard ends on a
// checkpoint boundary. Crash recovery (openFileStore on a non-empty
// directory) replays the frames structurally — sequence continuity,
// prev-hash linkage, head/totals consistency — and anchors the rebuilt
// state at the last persisted checkpoint whose coverage the spill actually
// contains, truncating any unanchored trailing frames or checkpoints a
// crash (possibly mid-group-commit) left behind. Byte-level integrity
// (recomputing every record hash against the checkpoint signature chain)
// is the verifier's job: VerifySpillDir / `acctee-verify -spill`.
package accounting

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"acctee/internal/fault"
	"acctee/internal/sgx"
)

// RecordStore is the retention layer behind a Ledger: it owns the records
// themselves, while the ledger's lanes own the chain state (head hash, next
// sequence, running totals) that carries forward when records leave memory.
//
// Records of one shard arrive in strict sequence order (the lane lock
// serialises appends); implementations are safe for concurrent use across
// shards and for concurrent readers. Seals are serialised by the ledger's
// checkpoint lock.
type RecordStore interface {
	// Append stores a freshly chained record on its shard's open segment.
	Append(rec Record) error
	// Get returns the record at (shard, seq) if it is still reachable —
	// resident in memory, pending in the spill pipeline, or spilled to
	// disk for a file store.
	Get(shard uint32, seq uint64) (Record, bool)
	// Resident returns how many records are currently held in memory.
	Resident() int
	// Spilled returns how many records of the shard have been sealed out
	// of the resident tail into the spill pipeline (always 0 for a memory
	// store). Drain first if the count must also be durable.
	Spilled(shard uint32) uint64
	// Seal releases every record the checkpoint covers: the file store
	// first hands the not-yet-sealed covered prefix of each shard to its
	// async spill writer (the checkpoint becoming the new recovery anchor
	// once the frame lands), then both stores drop fully covered segments
	// from memory. It returns how many records left the resident tail.
	Seal(sc *SignedCheckpoint) (released int, err error)
	// PersistCheckpoint makes a signed checkpoint durable (no-op for the
	// memory store). The ledger calls it for every checkpoint it signs, so
	// recovery never has to bridge a gap in the checkpoint hash chain.
	PersistCheckpoint(sc *SignedCheckpoint) error
	// Snapshot pins the shard's reachable records with sequence in
	// [from, to) and returns a replay closure that streams them in order
	// WITHOUT holding store locks: a concurrent Seal may release the
	// records after the snapshot, and the closure must still replay the
	// pinned range (spilled frames are immutable in the append-only file;
	// pending frames and the resident suffix are copied at snapshot time).
	// Snapshot fails if [from, to) reaches below the earliest reachable
	// sequence.
	Snapshot(shard uint32, from, to uint64) (func(fn func(*Record) error) error, error)
	// Drain blocks until every seal handed to the spill pipeline has gone
	// through its group commit and forces the durability sync point (no-op
	// for the memory store). A degraded store drains trivially: its
	// pipeline is permanently idle.
	Drain() error
	// Persistent reports whether sealed records remain reachable (file
	// store) or are gone for good (memory store, degraded file store).
	Persistent() bool
	// Degraded reports whether the store gave up on durability after
	// exhausting write retries (the cause comes along), and keeps serving
	// from memory: appends, checkpoints and the hash chain stay live, but
	// newly sealed records are dropped instead of spilled. Always false
	// for the memory store.
	Degraded() (bool, error)
	// Close drains the spill pipeline and releases any spill files. The
	// store stays readable for resident records.
	Close() error
}

// segment is one fixed-size run of resident records.
type segment struct {
	base uint64 // sequence number of records[0]
	recs []Record
}

// pendingFrame is a sealed frame travelling through the async spill
// pipeline: built and encoded under the shard lock at seal time, written
// and committed by the shard's writer goroutine. Its record slice keeps
// the sealed range readable until the frame index takes over.
type pendingFrame struct {
	fr  *spillFrame
	enc []byte // wire encoding (binary v2 frame or JSON line)
}

// shardSegs is one shard's resident segment list plus its spill state.
type shardSegs struct {
	mu   sync.Mutex
	segs []*segment
	// next is the sequence the next appended record must carry.
	next uint64
	// dropped is the first still-resident sequence (records below it left
	// memory); segs[0].base == dropped whenever segs is non-empty.
	dropped uint64
	// spilled is the number of durably spilled records (file store only);
	// sealed is the number handed to the spill pipeline. Records in
	// [spilled, sealed) live in pending frames awaiting their group
	// commit; spilled == sealed whenever the pipeline is drained.
	spilled uint64
	sealed  uint64
	// pending holds the in-flight frames for [spilled, sealed), oldest
	// first (seals are serialised, writers commit in order).
	pending []*pendingFrame
	// spillTotals / spillHead mirror the running aggregate and chain head
	// of the sealed prefix (stamped into frame headers; the next frame
	// chains from them).
	spillTotals UsageLog
	spillHead   [32]byte
	// frames indexes the shard's spill file for O(frame) Get/Stream.
	frames []frameIndex
	// Cache-line pad: shards live in one contiguous slice, and each append
	// takes its shard's mutex while holding the ledger lane lock — without
	// the pad, neighbouring shards' lock words share a line and concurrent
	// appends to *different* shards still ping-pong it.
	_ [64]byte
}

// frameIndex locates one spilled frame inside a shard's segment file.
type frameIndex struct {
	base  uint64
	count uint64
	off   int64 // byte offset of the frame
	size  int64 // full frame length on disk (line incl. newline for v1)
}

// segStore is the shared segmented core of both stores.
type segStore struct {
	segRecords int
	shards     []shardSegs
	resident   atomic.Int64
}

func newSegStore(shards, segRecords int) *segStore {
	if segRecords < 1 {
		segRecords = 1
	}
	return &segStore{segRecords: segRecords, shards: make([]shardSegs, shards)}
}

func (s *segStore) Append(rec Record) error {
	sh := &s.shards[rec.Shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec.Log.Sequence != sh.next {
		return fmt.Errorf("accounting: store append out of order: shard %d got %d, want %d",
			rec.Shard, rec.Log.Sequence, sh.next)
	}
	n := len(sh.segs)
	if n == 0 || len(sh.segs[n-1].recs) >= s.segRecords {
		sh.segs = append(sh.segs, &segment{
			base: sh.next,
			recs: make([]Record, 0, s.segRecords),
		})
		n++
	}
	seg := sh.segs[n-1]
	seg.recs = append(seg.recs, rec)
	sh.next++
	s.resident.Add(1)
	return nil
}

func (s *segStore) Get(shard uint32, seq uint64) (Record, bool) {
	if int(shard) >= len(s.shards) {
		return Record{}, false
	}
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec, ok := sh.getResident(seq); ok {
		return rec, true
	}
	return Record{}, false
}

// getResident looks seq up in the resident segments (caller holds sh.mu).
func (sh *shardSegs) getResident(seq uint64) (Record, bool) {
	if seq < sh.dropped || seq >= sh.next {
		return Record{}, false
	}
	i := sort.Search(len(sh.segs), func(i int) bool {
		seg := sh.segs[i]
		return seq < seg.base+uint64(len(seg.recs))
	})
	if i >= len(sh.segs) {
		return Record{}, false
	}
	seg := sh.segs[i]
	if seq < seg.base {
		return Record{}, false
	}
	return seg.recs[seq-seg.base], true
}

// getPending looks seq up in the in-flight spill frames (caller holds
// sh.mu; pending entries are immutable once published).
func (sh *shardSegs) getPending(seq uint64) (Record, bool) {
	for _, pf := range sh.pending {
		end := pf.fr.Base + uint64(len(pf.fr.Records))
		if seq >= pf.fr.Base && seq < end {
			return pf.fr.Records[seq-pf.fr.Base], true
		}
	}
	return Record{}, false
}

func (s *segStore) Resident() int { return int(s.resident.Load()) }

// dropCovered drops every resident segment whose records all lie below
// limit (caller holds sh.mu). Returns how many records left memory.
func (s *segStore) dropCovered(sh *shardSegs, limit uint64) int {
	released := 0
	for len(sh.segs) > 0 {
		seg := sh.segs[0]
		end := seg.base + uint64(len(seg.recs))
		if end > limit {
			// Partially covered segments stay resident whole: sealing is
			// segment-granular in memory (the uncovered suffix must remain
			// reachable). A fully covered open segment is dropped — the
			// next append simply starts a fresh one.
			break
		}
		released += len(seg.recs)
		sh.dropped = end
		sh.segs = sh.segs[1:]
	}
	if len(sh.segs) == 0 {
		sh.dropped = sh.next
	} else {
		sh.dropped = sh.segs[0].base
	}
	s.resident.Add(int64(-released))
	return released
}

// collectResident copies the resident records in [from, to) out of the
// segments (caller holds sh.mu).
func (sh *shardSegs) collectResident(from, to uint64) ([]Record, error) {
	if to > sh.next {
		to = sh.next
	}
	if from >= to {
		return nil, nil
	}
	if from < sh.dropped {
		return nil, fmt.Errorf("accounting: store snapshot from %d below earliest resident %d", from, sh.dropped)
	}
	var out []Record
	for _, seg := range sh.segs {
		end := seg.base + uint64(len(seg.recs))
		if end <= from || seg.base >= to {
			continue
		}
		lo, hi := from, to
		if lo < seg.base {
			lo = seg.base
		}
		if hi > end {
			hi = end
		}
		out = append(out, seg.recs[lo-seg.base:hi-seg.base]...)
	}
	return out, nil
}

// replaySlice wraps a copied record slice as a snapshot closure.
func replaySlice(recs []Record) func(fn func(*Record) error) error {
	return func(fn func(*Record) error) error {
		for i := range recs {
			if err := fn(&recs[i]); err != nil {
				return err
			}
		}
		return nil
	}
}

// ---------------------------------------------------------------------------
// memory store

// memStore keeps records in segments and drops sealed segments outright —
// the bounded-retention mode for gateways that only ever need the signed
// checkpoint chain plus the live tail.
type memStore struct {
	*segStore
}

// NewMemoryStore creates a segmented in-memory record store: sealed
// segments are dropped, their effect surviving only in checkpoint
// signatures and the lanes' carried-forward heads.
func NewMemoryStore(shards, segRecords int) RecordStore {
	return &memStore{segStore: newSegStore(shards, segRecords)}
}

func (m *memStore) Spilled(uint32) uint64                     { return 0 }
func (m *memStore) PersistCheckpoint(*SignedCheckpoint) error { return nil }
func (m *memStore) Drain() error                              { return nil }
func (m *memStore) Persistent() bool                          { return false }
func (m *memStore) Degraded() (bool, error)                   { return false, nil }
func (m *memStore) Close() error                              { return nil }

func (m *memStore) Seal(sc *SignedCheckpoint) (int, error) {
	released := 0
	for i := range sc.Checkpoint.Heads {
		h := &sc.Checkpoint.Heads[i]
		if int(h.Shard) >= len(m.shards) {
			return released, fmt.Errorf("accounting: seal names shard %d of %d", h.Shard, len(m.shards))
		}
		sh := &m.shards[h.Shard]
		sh.mu.Lock()
		released += m.dropCovered(sh, h.Count)
		sh.mu.Unlock()
	}
	return released, nil
}

func (m *memStore) Snapshot(shard uint32, from, to uint64) (func(fn func(*Record) error) error, error) {
	if int(shard) >= len(m.shards) {
		return nil, fmt.Errorf("accounting: snapshot names shard %d of %d", shard, len(m.shards))
	}
	sh := &m.shards[shard]
	sh.mu.Lock()
	recs, err := sh.collectResident(from, to)
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return replaySlice(recs), nil
}

// ---------------------------------------------------------------------------
// file store

// spillManifest is the MANIFEST.json content binding a spill directory to
// one ledger identity.
type spillManifest struct {
	Format      string          `json:"format"`
	Shards      int             `json:"shards"`
	SegRecords  int             `json:"segmentRecords"`
	Measurement sgx.Measurement `json:"measurement"`
	PublicKey   []byte          `json:"publicKey"` // PKIX DER
	// Pruned declares that the persisted checkpoint chain may skip
	// sequences (checkpoint-chain pruning enabled). Once true it stays
	// true — a pruned chain can never promise completeness again.
	Pruned bool `json:"prunedCheckpoints,omitempty"`
}

// spillFrame is one frame of a shard's segment file: a contiguous run of
// records plus the shard's chain head and running totals after the run.
// The JSON field tags are the v1 wire format; codec.go defines the binary
// v2 encoding of the same struct.
type spillFrame struct {
	Shard   uint32   `json:"shard"`
	Base    uint64   `json:"base"`
	Head    [32]byte `json:"head"`
	Totals  UsageLog `json:"totals"`
	Records []Record `json:"records"`
}

const (
	manifestName    = "MANIFEST.json"
	checkpointsName = "checkpoints.jsonl"
)

// spillQueueDepth bounds each shard's writer channel: seals beyond it
// block the compaction path until the writer catches up.
const spillQueueDepth = 64

// spillGroupCommitMax caps how many queued frames one write may cover.
const spillGroupCommitMax = 64

// spillSyncBytes is the deferred-durability backstop: batches land with
// plain writes plus a non-blocking writeback hint (hintWriteback), and a
// hard fsync happens only at Drain barriers (Close, WriteDump, Anchor,
// checkpoint pruning all drain) — or once this many bytes accumulate
// with no barrier in sight. A crash between sync points loses at most
// the unsynced tail; recovery truncates back to the last anchored
// checkpoint either way, so the window costs durability, never
// consistency.
const spillSyncBytes = 256 << 20

// spillHintBytes is how much new frame data a shard file accumulates
// before the writer nudges the kernel to start writing it back
// (hintWriteback). Large enough to amortise the call, small enough that
// a Drain barrier rarely finds more than a few megabytes still dirty.
const spillHintBytes = 4 << 20

// Spill-writer retry schedule: a failing group commit is retried with
// jittered exponential backoff before the store concludes the disk is gone
// for good and degrades to bounded-in-memory retention. ~4 retries at
// 1/2/4/8 ms (±50% jitter) ride out transient errors in well under the
// checkpoint cadence, while a truly dead disk degrades in ~20 ms instead
// of wedging every later barrier forever.
const (
	spillRetryMax  = 4
	spillRetryBase = time.Millisecond
	spillRetryCap  = 50 * time.Millisecond
)

// Fault-injection point names (see internal/fault): the head of a shard's
// group commit, the durability sync point, and the checkpoint-log append.
const (
	FaultPointWriteBatch = "spill.write-batch"
	FaultPointSync       = "spill.sync"
	FaultPointCheckpoint = "spill.persist-checkpoint"
)

func shardFileName(shard int) string { return fmt.Sprintf("shard-%04d.seg", shard) }

// fileStore spills sealed records to append-only per-shard segment files
// through per-shard async group-commit writers.
type fileStore struct {
	*segStore
	dir      string
	manifest spillManifest
	// binary selects the frame codec: v2 binary for fresh directories,
	// legacy JSON lines when reopening a v1 directory.
	binary bool

	mu      sync.Mutex // guards files + checkpoint file appends
	files   []*os.File
	cpF     *os.File
	cpLines int // lines in checkpoints.jsonl (for amortised prune rewrites)

	// Deferred group durability (all under fs.mu): frames and checkpoint
	// lines are written immediately but fsynced together at sync points —
	// every spillSyncBytes of frame data, on Drain, and once before the
	// first frame ever lands (so a spill directory can never hold frames
	// without any durable checkpoint, the one state recovery refuses).
	// The checkpoint log always syncs before the data files, preserving
	// the no-frame-outruns-its-anchor recovery invariant at every sync
	// point.
	cpDirty   bool
	cpSynced  bool // checkpoint log fsynced at least once since open
	dataDirty []bool
	unsynced  int
	// unhinted/hintOff amortise the writeback hints: each shard file is
	// nudged towards disk once spillHintBytes of new frames accumulate,
	// not per batch (a hint can briefly block when the device queue is
	// congested, so issuing fewer, larger ones keeps the writer fast).
	unhinted []int64
	hintOff  []int64

	// cpFails counts consecutive PersistCheckpoint write failures (under
	// fs.mu); crossing spillRetryMax degrades the store instead of letting
	// a dead checkpoint log stall compaction forever.
	cpFails int

	// faults, when non-nil, interposes on every spill write/sync/truncate
	// (test harness; nil in production, one branch per call).
	faults *fault.Injector

	// Degradation ladder: after a group commit (or durability barrier)
	// exhausts its retries, the store flips degraded instead of wedging —
	// spilling stops, already-durable frames stay readable, pending frames
	// stay resident, and Seal falls back to memStore semantics (drop
	// covered segments) so retention stays bounded and the chain stays
	// live. degraded is read lock-free on hot paths; degradedErr (the
	// cause) is guarded by qmu.
	degraded    atomic.Bool
	degradedErr error

	// Writer pipeline state. qmu guards inflight/degradedErr/closed; qcond
	// signals inflight reaching zero (Drain/Close).
	qmu      sync.Mutex
	qcond    *sync.Cond
	inflight int
	closed   bool
	chans    []chan *pendingFrame
	wg       sync.WaitGroup
	// wbufs holds one reusable batch-concatenation buffer per shard
	// (only shard i's writer goroutine touches wbufs[i], under fs.mu).
	wbufs [][]byte
}

// checkpointPruner is implemented by stores that persist the checkpoint
// chain and can drop pruned entries from it.
type checkpointPruner interface {
	pruneCheckpoints(retained []SignedCheckpoint) error
}

// recoveredState is what openFileStore rebuilt from a non-empty spill
// directory: the per-shard carried-forward chain state and the persisted
// checkpoint chain, anchored at the last checkpoint the spill contains.
type recoveredState struct {
	// Heads carries each shard's next sequence (Count) and chain head.
	Heads []ShardHead
	// Totals is each shard's running aggregate over the spilled prefix.
	Totals []UsageLog
	// Checkpoints is the persisted chain up to and including the anchor.
	Checkpoints []SignedCheckpoint
	// DroppedCheckpoints counts persisted checkpoints beyond the spill
	// horizon that recovery had to discard (their covered tail records
	// were resident at crash time and are gone).
	DroppedCheckpoints int
}

// openFileStore creates or reopens a spill directory. On a fresh (or
// empty) directory it writes a format-v2 manifest and returns a nil
// recovery state; on a populated one it replays the spill (whichever
// format the manifest declares) and returns the rebuilt chain state.
// pruned declares that the ledger above will prune the checkpoint chain.
// faults, when non-nil, interposes the fault-injection harness on the
// store's write/sync/truncate calls (tests only).
func openFileStore(dir string, shards, segRecords int, meas sgx.Measurement, pubDER []byte, pruned bool, faults *fault.Injector) (*fileStore, *recoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("accounting: spill dir: %w", err)
	}
	fs := &fileStore{
		segStore: newSegStore(shards, segRecords),
		faults:   faults,
		dir:      dir,
		manifest: spillManifest{
			Format: SpillFormatV2, Shards: shards, SegRecords: segRecords,
			Measurement: meas, PublicKey: pubDER, Pruned: pruned,
		},
		binary: true,
		files:  make([]*os.File, shards),
		wbufs:  make([][]byte, shards),
	}
	fs.dataDirty = make([]bool, shards)
	fs.unhinted = make([]int64, shards)
	fs.hintOff = make([]int64, shards)
	fs.qcond = sync.NewCond(&fs.qmu)
	manifestPath := filepath.Join(dir, manifestName)
	var rec *recoveredState
	if raw, err := os.ReadFile(manifestPath); err == nil {
		var m spillManifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, nil, fmt.Errorf("accounting: spill manifest: %w", err)
		}
		if m.Format != SpillFormatV1 && m.Format != SpillFormatV2 {
			return nil, nil, fmt.Errorf("accounting: spill format %q, want %q or %q", m.Format, SpillFormatV1, SpillFormatV2)
		}
		if m.Shards != shards {
			return nil, nil, fmt.Errorf("accounting: spill dir has %d shards, ledger wants %d", m.Shards, shards)
		}
		if m.Measurement != meas || !bytes.Equal(m.PublicKey, pubDER) {
			return nil, nil, fmt.Errorf("accounting: spill dir belongs to a different enclave identity")
		}
		// A reopened v1 directory keeps writing v1 JSON frames: one spill
		// file never mixes codecs.
		fs.binary = m.Format == SpillFormatV2
		if pruned && !m.Pruned {
			// Declare pruning before the first entry can go missing; the
			// flag is sticky across reopenings.
			m.Pruned = true
			if err := writeSpillManifest(manifestPath, &m); err != nil {
				return nil, nil, err
			}
		}
		fs.manifest = m
		if rec, err = fs.recover(); err != nil {
			return nil, nil, err
		}
	} else if os.IsNotExist(err) {
		if err := writeSpillManifest(manifestPath, &fs.manifest); err != nil {
			return nil, nil, err
		}
	} else {
		return nil, nil, fmt.Errorf("accounting: spill manifest: %w", err)
	}
	for i := range fs.files {
		f, err := os.OpenFile(filepath.Join(dir, shardFileName(i)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fs.Close()
			return nil, nil, fmt.Errorf("accounting: open spill file: %w", err)
		}
		fs.files[i] = f
	}
	f, err := os.OpenFile(filepath.Join(dir, checkpointsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fs.Close()
		return nil, nil, fmt.Errorf("accounting: open checkpoint log: %w", err)
	}
	fs.cpF = f
	fs.chans = make([]chan *pendingFrame, shards)
	for i := range fs.chans {
		fs.chans[i] = make(chan *pendingFrame, spillQueueDepth)
		fs.wg.Add(1)
		go fs.writeLoop(i, fs.chans[i])
	}
	return fs, rec, nil
}

// writeSpillManifest writes MANIFEST.json.
func writeSpillManifest(path string, m *spillManifest) error {
	j, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, j, 0o644); err != nil {
		return fmt.Errorf("accounting: write spill manifest: %w", err)
	}
	return nil
}

// scanShardFile structurally replays one shard's segment file: frames must
// be contiguous runs with internally consistent sequences, prev-hash
// linkage and head/totals stamps. It returns the frame index, final chain
// state, and the byte offset just past the last good frame (a torn
// trailing frame from a crash mid-group-commit is cut there, not treated
// as corruption). bin selects the frame codec.
func scanShardFile(path string, shard uint32, bin bool) (frames []frameIndex, next uint64, head [32]byte, totals UsageLog, goodEnd int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, head, totals, 0, nil
	}
	if err != nil {
		return nil, 0, head, totals, 0, err
	}
	defer f.Close()
	// validate replays one decoded frame into the running chain state.
	validate := func(fr *spillFrame, off int64) error {
		if fr.Shard != shard || fr.Base != next || len(fr.Records) == 0 {
			return fmt.Errorf(
				"accounting: spill shard %d frame at offset %d out of order (base %d, want %d)",
				shard, off, fr.Base, next)
		}
		for i := range fr.Records {
			r := &fr.Records[i]
			if r.Shard != shard || r.Log.Sequence != next {
				return fmt.Errorf(
					"accounting: spill shard %d record %d out of sequence (want %d)", shard, r.Log.Sequence, next)
			}
			if r.PrevHash != head {
				return fmt.Errorf(
					"accounting: spill shard %d record %d breaks the hash chain", shard, next)
			}
			head = r.Hash
			aggregate(&totals, &r.Log)
			next++
		}
		if fr.Head != head || fr.Totals != totals {
			return fmt.Errorf(
				"accounting: spill shard %d frame at offset %d head/totals stamp mismatch", shard, off)
		}
		return nil
	}
	if bin {
		br := bufio.NewReaderSize(f, 1<<20)
		var off int64
		for {
			fr, size, rerr := readBinFrame(br)
			if rerr == io.EOF || rerr == errTornFrame {
				// Clean end of file, or a frame cut short by a crash
				// mid-group-commit: everything before off is intact; the
				// caller truncates any torn residue.
				return frames, next, head, totals, off, nil
			}
			if rerr != nil {
				return nil, 0, head, totals, 0, fmt.Errorf("accounting: spill shard %d at offset %d: %w", shard, off, rerr)
			}
			if verr := validate(fr, off); verr != nil {
				return nil, 0, head, totals, 0, verr
			}
			frames = append(frames, frameIndex{base: fr.Base, count: uint64(len(fr.Records)), off: off, size: size})
			off += size
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<30)
	var off int64
	for sc.Scan() {
		line := sc.Bytes()
		size := int64(len(line)) + 1
		var fr spillFrame
		if err := json.Unmarshal(line, &fr); err != nil {
			if sc.Scan() {
				// An unparsable line FOLLOWED by more data is corruption,
				// not a torn tail — refuse rather than silently dropping
				// the frames behind it.
				return nil, 0, head, totals, 0, fmt.Errorf(
					"accounting: spill shard %d: corrupt frame at offset %d (not a torn tail)", shard, off)
			}
			// Torn tail from a crash mid-append: everything before it is
			// intact; the caller truncates here.
			return frames, next, head, totals, off, nil
		}
		if verr := validate(&fr, off); verr != nil {
			return nil, 0, head, totals, 0, verr
		}
		frames = append(frames, frameIndex{base: fr.Base, count: uint64(len(fr.Records)), off: off, size: size})
		off += size
	}
	if err := sc.Err(); err != nil {
		return nil, 0, head, totals, 0, err
	}
	return frames, next, head, totals, off, nil
}

// recover rebuilds per-shard chain state from the spill directory,
// truncating whatever a crash left unanchored (frames past the last
// persisted checkpoint whose coverage the spill fully contains, and
// checkpoints past the spill horizon).
func (fs *fileStore) recover() (*recoveredState, error) {
	type shardScan struct {
		frames  []frameIndex
		next    uint64
		head    [32]byte
		totals  UsageLog
		goodEnd int64
	}
	scans := make([]shardScan, len(fs.shards))
	for i := range fs.shards {
		frames, next, head, totals, goodEnd, err := scanShardFile(
			filepath.Join(fs.dir, shardFileName(i)), uint32(i), fs.binary)
		if err != nil {
			return nil, err
		}
		scans[i] = shardScan{frames, next, head, totals, goodEnd}
	}
	cps, err := readSpillCheckpoints(fs.dir, len(fs.shards), fs.manifest.Pruned)
	if err != nil {
		return nil, err
	}
	// The anchor is the last persisted checkpoint the spill fully
	// contains AND whose per-shard counts land on frame boundaries —
	// periodic checkpoints signed between seals can be contained yet fall
	// mid-frame, and the spill can only be cut between frames. Later
	// checkpoints covered records that were resident at crash time; they
	// are discarded along with any frames a mid-seal crash wrote past the
	// anchor (at most the last group commit can be torn).
	ends := make([]map[uint64]bool, len(fs.shards))
	for i := range scans {
		ends[i] = map[uint64]bool{0: true}
		for _, fr := range scans[i].frames {
			ends[i][fr.base+fr.count] = true
		}
	}
	anchor := -1
	for i := range cps {
		anchored := true
		for _, h := range cps[i].Checkpoint.Heads {
			if h.Count > scans[h.Shard].next || !ends[h.Shard][h.Count] {
				anchored = false
				break
			}
		}
		if anchored {
			anchor = i
		}
	}
	// A spill with records but no anchoring checkpoint means the
	// checkpoint log was lost or corrupted out from under the frames.
	// Refuse: recovering "from genesis" here would truncate every segment
	// file to zero, destroying intact signature-covered records.
	if anchor < 0 {
		for i := range scans {
			if scans[i].next > 0 {
				return nil, fmt.Errorf(
					"accounting: spill dir holds %d records of shard %d but no persisted checkpoint anchors them — refusing to recover (checkpoint log lost or corrupt?)",
					scans[i].next, i)
			}
		}
	}
	rec := &recoveredState{
		Heads:              make([]ShardHead, len(fs.shards)),
		Totals:             make([]UsageLog, len(fs.shards)),
		DroppedCheckpoints: len(cps) - anchor - 1,
	}
	if anchor >= 0 {
		rec.Checkpoints = cps[:anchor+1]
	}
	for i := range fs.shards {
		s := &scans[i]
		var limit uint64 // anchored spill horizon for this shard
		if anchor >= 0 {
			limit = cps[anchor].Checkpoint.Heads[i].Count
		}
		if s.next > limit {
			// Truncate unanchored frames (and re-scan state) back to the
			// anchor boundary. Frames end exactly on seal boundaries, so
			// the cut always lands between frames.
			cut := int64(0)
			kept := s.frames[:0]
			s.next, s.head, s.totals = 0, [32]byte{}, UsageLog{}
			for _, fr := range s.frames {
				if fr.base+fr.count > limit {
					break
				}
				cut = fr.off + fr.size
				kept = append(kept, fr)
			}
			if len(kept) > 0 {
				last := kept[len(kept)-1]
				if last.base+last.count != limit {
					return nil, fmt.Errorf("accounting: spill shard %d cannot be cut at anchor boundary %d", i, limit)
				}
			} else if limit != 0 {
				return nil, fmt.Errorf("accounting: spill shard %d misses anchored records below %d", i, limit)
			}
			// Recompute the carried-forward state over the kept prefix.
			if err := fs.rescanPrefix(i, kept, &s.next, &s.head, &s.totals); err != nil {
				return nil, err
			}
			s.frames, s.goodEnd = kept, cut
		}
		if err := os.Truncate(filepath.Join(fs.dir, shardFileName(i)), s.goodEnd); err != nil {
			return nil, fmt.Errorf("accounting: truncate spill shard %d: %w", i, err)
		}
		sh := &fs.shards[i]
		sh.next, sh.dropped = s.next, s.next
		sh.spilled, sh.sealed = s.next, s.next
		sh.spillHead, sh.spillTotals = s.head, s.totals
		sh.frames = s.frames
		rec.Heads[i] = ShardHead{Shard: uint32(i), Count: s.next, Head: s.head}
		rec.Totals[i] = s.totals
	}
	if rec.DroppedCheckpoints > 0 || anchor < len(cps)-1 {
		if err := fs.rewriteCheckpoints(rec.Checkpoints); err != nil {
			return nil, err
		}
	}
	fs.cpLines = len(rec.Checkpoints)
	// Cross-check the rebuilt state against the anchor's signature-covered
	// heads and totals: the carried-forward chain state IS what the last
	// signed checkpoint vouches for.
	if anchor >= 0 {
		cp := &cps[anchor].Checkpoint
		var merged UsageLog
		for i := range rec.Heads {
			if rec.Heads[i] != cp.Heads[i] {
				return nil, fmt.Errorf("accounting: recovered head of shard %d does not match the anchoring checkpoint", i)
			}
			t := rec.Totals[i]
			merge(&merged, &t)
		}
		if merged != cp.Totals {
			return nil, fmt.Errorf("accounting: recovered totals do not match the anchoring checkpoint")
		}
	}
	return rec, nil
}

// rescanPrefix recomputes chain state over a kept frame prefix after a
// truncation decision (rare path: only after a crash mid-seal).
func (fs *fileStore) rescanPrefix(shard int, frames []frameIndex, next *uint64, head *[32]byte, totals *UsageLog) error {
	f, err := os.Open(filepath.Join(fs.dir, shardFileName(shard)))
	if err != nil {
		return err
	}
	defer f.Close()
	for _, fr := range frames {
		frame, err := readFrameAt(f, fr, fs.binary)
		if err != nil {
			return err
		}
		for i := range frame.Records {
			*head = frame.Records[i].Hash
			aggregate(totals, &frame.Records[i].Log)
			*next++
		}
	}
	return nil
}

// readFrameAt decodes one frame at a known offset (bin selects the codec).
func readFrameAt(f *os.File, fi frameIndex, bin bool) (*spillFrame, error) {
	buf := make([]byte, fi.size)
	if _, err := f.ReadAt(buf, fi.off); err != nil {
		return nil, fmt.Errorf("accounting: read spill frame: %w", err)
	}
	if bin {
		if fi.size < 8 {
			return nil, fmt.Errorf("accounting: spill frame index names a %d-byte frame", fi.size)
		}
		payloadLen := binary.LittleEndian.Uint32(buf)
		if int64(payloadLen)+8 != fi.size {
			return nil, fmt.Errorf("accounting: spill frame length drifted (payload %d in a %d-byte frame)", payloadLen, fi.size)
		}
		payload := buf[4 : 4+payloadLen]
		if got := crc32.Checksum(payload, castagnoli); got != binary.LittleEndian.Uint32(buf[4+payloadLen:]) {
			return nil, fmt.Errorf("accounting: spill frame CRC mismatch")
		}
		return decodeBinFramePayload(payload)
	}
	var fr spillFrame
	if err := json.Unmarshal(bytes.TrimRight(buf, "\n"), &fr); err != nil {
		return nil, fmt.Errorf("accounting: decode spill frame: %w", err)
	}
	return &fr, nil
}

// readSpillCheckpoints reads a spill directory's persisted checkpoint
// chain (torn tail lines are cut, as with frames). With pruned set the
// chain may skip sequences — prev-hash linkage is then enforced only
// between adjacent survivors; sequences must still strictly increase.
func readSpillCheckpoints(dir string, shards int, pruned bool) ([]SignedCheckpoint, error) {
	f, err := os.Open(filepath.Join(dir, checkpointsName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cps []SignedCheckpoint
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<30)
	for sc.Scan() {
		var c SignedCheckpoint
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			if sc.Scan() {
				// Corruption mid-log (a torn tail can only be the final
				// line): refuse rather than silently forgetting the
				// checkpoints behind it.
				return nil, fmt.Errorf("accounting: corrupt checkpoint log entry before end of file")
			}
			break // torn tail
		}
		if len(c.Checkpoint.Heads) != shards {
			return nil, fmt.Errorf("accounting: persisted checkpoint %d covers %d shards, store has %d",
				c.Checkpoint.Sequence, len(c.Checkpoint.Heads), shards)
		}
		for j := range c.Checkpoint.Heads {
			if c.Checkpoint.Heads[j].Shard != uint32(j) {
				return nil, fmt.Errorf("accounting: persisted checkpoint %d heads out of shard order", c.Checkpoint.Sequence)
			}
		}
		if n := len(cps); n > 0 {
			prev := &cps[n-1].Checkpoint
			switch {
			case c.Checkpoint.Sequence <= prev.Sequence:
				return nil, fmt.Errorf("accounting: persisted checkpoint chain runs backwards at %d", c.Checkpoint.Sequence)
			case c.Checkpoint.Sequence == prev.Sequence+1:
				if c.Checkpoint.PrevHash != prev.Hash() {
					return nil, fmt.Errorf("accounting: persisted checkpoint chain breaks at %d", c.Checkpoint.Sequence)
				}
			default:
				if !pruned {
					return nil, fmt.Errorf("accounting: persisted checkpoint chain breaks at %d", c.Checkpoint.Sequence)
				}
			}
		}
		cps = append(cps, c)
	}
	return cps, sc.Err()
}

// rewriteCheckpoints atomically replaces the checkpoint log (recovery
// discarding entries beyond the spill horizon, or pruning dropping
// superseded anchors). When the append handle is open the caller must
// hold fs.mu; the handle is reopened on the new inode after the rename.
func (fs *fileStore) rewriteCheckpoints(cps []SignedCheckpoint) error {
	tmp := filepath.Join(fs.dir, checkpointsName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i := range cps {
		j, err := json.Marshal(&cps[i])
		if err != nil {
			f.Close()
			return err
		}
		w.Write(j)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(fs.dir, checkpointsName)); err != nil {
		return err
	}
	if fs.cpF != nil {
		// The old append FD points at the renamed-over inode; reopen so
		// later appends land in the rewritten log.
		_ = fs.cpF.Close()
		nf, err := os.OpenFile(filepath.Join(fs.dir, checkpointsName), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fs.cpF = nil
			return fmt.Errorf("accounting: reopen checkpoint log: %w", err)
		}
		fs.cpF = nf
	}
	fs.cpLines = len(cps)
	// The rewritten log was fsynced before the rename took effect.
	fs.cpDirty, fs.cpSynced = false, true
	return nil
}

// pruneCheckpoints rewrites the persisted checkpoint log down to the
// retained set. Rewrites are amortised: the log is left alone until it
// holds roughly twice as many lines as survivors, so a prune after every
// checkpoint costs O(1) amortised I/O.
func (fs *fileStore) pruneCheckpoints(retained []SignedCheckpoint) error {
	if fs.degraded.Load() {
		return nil // nothing persists any more; nothing to prune
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cpF == nil {
		return fmt.Errorf("accounting: spill store closed")
	}
	if fs.cpLines <= 2*len(retained)+16 {
		return nil
	}
	return fs.rewriteCheckpoints(retained)
}

// Get serves resident records from memory, in-flight seals from their
// pending frames, and durable ones from their spill frame (O(frame) via
// the per-shard frame index) — receipts stay resolvable after their
// records leave memory.
func (fs *fileStore) Get(shard uint32, seq uint64) (Record, bool) {
	if int(shard) >= len(fs.shards) {
		return Record{}, false
	}
	sh := &fs.shards[shard]
	sh.mu.Lock()
	if rec, ok := sh.getResident(seq); ok {
		sh.mu.Unlock()
		return rec, true
	}
	if seq >= sh.sealed {
		sh.mu.Unlock()
		return Record{}, false
	}
	if seq >= sh.spilled {
		rec, ok := sh.getPending(seq)
		sh.mu.Unlock()
		return rec, ok
	}
	i := sort.Search(len(sh.frames), func(i int) bool {
		fi := &sh.frames[i]
		return seq < fi.base+fi.count
	})
	if i >= len(sh.frames) || seq < sh.frames[i].base {
		sh.mu.Unlock()
		return Record{}, false
	}
	fi := sh.frames[i]
	sh.mu.Unlock()
	f, err := os.Open(filepath.Join(fs.dir, shardFileName(int(shard))))
	if err != nil {
		return Record{}, false
	}
	defer f.Close()
	frame, err := readFrameAt(f, fi, fs.binary)
	if err != nil {
		return Record{}, false
	}
	return frame.Records[seq-fi.base], true
}

func (fs *fileStore) Spilled(shard uint32) uint64 {
	if int(shard) >= len(fs.shards) {
		return 0
	}
	sh := &fs.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sealed
}

// Persistent flips to false once the store degrades: sealed records are
// dropped from then on, and the dump path must anchor captures exactly as
// it does for the memory store.
func (fs *fileStore) Persistent() bool { return !fs.degraded.Load() }

func (fs *fileStore) PersistCheckpoint(sc *SignedCheckpoint) error {
	if fs.degraded.Load() {
		// The checkpoint stays live in the ledger's memory (and keeps
		// vouching for the chain); only its persistence is gone.
		return nil
	}
	j, err := json.Marshal(sc)
	if err != nil {
		return err
	}
	fs.faults.Hit(FaultPointCheckpoint)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cpF == nil {
		if fs.degraded.Load() {
			return nil
		}
		return fmt.Errorf("accounting: spill store closed")
	}
	off, err := fs.cpF.Seek(0, 2)
	if err != nil {
		return err
	}
	if n, err := fs.faults.Write(fs.cpF, append(j, '\n')); err != nil {
		if n > 0 {
			// A torn checkpoint line is only recoverable as the FINAL line;
			// a later successful append would bury it mid-log, which
			// recovery refuses. Cut it back; if even that fails, retire the
			// log and degrade — no checkpoint may ever be appended after
			// known junk.
			if terr := fs.faults.Truncate(fs.cpF, off); terr != nil {
				_ = fs.cpF.Close()
				fs.cpF = nil
				fs.degrade(err)
				return err
			}
		}
		// A dying checkpoint log must not stall compaction forever: after
		// spillRetryMax consecutive failures, degrade (the error still
		// surfaces to the caller this once; later checkpoints no-op).
		if fs.cpFails++; fs.cpFails > spillRetryMax {
			fs.degrade(err)
		}
		return err
	}
	fs.cpFails = 0
	fs.cpLines++
	fs.cpDirty = true
	return nil
}

// encodeFrame serialises a frame in the store's codec.
func (fs *fileStore) encodeFrame(fr *spillFrame) ([]byte, error) {
	if fs.binary {
		return encodeBinFrame(fr), nil
	}
	j, err := json.Marshal(fr)
	if err != nil {
		return nil, err
	}
	return append(j, '\n'), nil
}

// reserve claims a writer-pipeline slot (one per frame). It fails once
// the store is closed, so a seal can never advance state the pipeline
// will not process.
func (fs *fileStore) reserve() error {
	fs.qmu.Lock()
	defer fs.qmu.Unlock()
	if fs.closed {
		return fmt.Errorf("accounting: spill store closed")
	}
	fs.inflight++
	return nil
}

// degrade flips the store into bounded-in-memory retention (recording the
// cause once). Idempotent; safe from any goroutine.
func (fs *fileStore) degrade(cause error) {
	fs.qmu.Lock()
	if fs.degradedErr == nil {
		fs.degradedErr = cause
	}
	fs.qmu.Unlock()
	fs.degraded.Store(true)
}

func (fs *fileStore) Degraded() (bool, error) {
	if !fs.degraded.Load() {
		return false, nil
	}
	fs.qmu.Lock()
	defer fs.qmu.Unlock()
	return true, fs.degradedErr
}

// retryWait sleeps out attempt's slot of the jittered exponential backoff
// schedule, returning false (give up early) once the store is closing —
// Close must never wait out a dead disk's full retry budget.
func (fs *fileStore) retryWait(attempt int) bool {
	d := spillRetryBase << attempt
	if d > spillRetryCap {
		d = spillRetryCap
	}
	// ±50% jitter so retries from different shards don't convoy onto a
	// recovering device in lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	time.Sleep(d)
	fs.qmu.Lock()
	defer fs.qmu.Unlock()
	return !fs.closed
}

// Seal builds each shard's not-yet-sealed covered prefix into one frame,
// publishes it on the shard's pending queue, drops the covered segments
// from the resident tail, and hands the frame to the shard's async writer.
// Frames therefore always end exactly on the sealing checkpoint's boundary
// — the property crash recovery and truncated-dump anchoring rely on. The
// channel send blocks when the writer is more than spillQueueDepth seals
// behind: backpressure lands on the compaction path, never on Append.
func (fs *fileStore) Seal(sc *SignedCheckpoint) (int, error) {
	if fs.degraded.Load() {
		// Bounded-in-memory retention: the disk is gone, so covered
		// segments are dropped outright (memStore semantics) instead of
		// spilled — the chain heads and checkpoints stay live, retention
		// stays bounded, and the durable prefix stays exactly where the
		// failure left it. sealed/spillHead are not advanced: they describe
		// the spill pipeline, which is permanently idle now.
		released := 0
		for i := range sc.Checkpoint.Heads {
			h := &sc.Checkpoint.Heads[i]
			if int(h.Shard) >= len(fs.shards) {
				return released, fmt.Errorf("accounting: seal names shard %d of %d", h.Shard, len(fs.shards))
			}
			sh := &fs.shards[h.Shard]
			sh.mu.Lock()
			released += fs.dropCovered(sh, h.Count)
			sh.mu.Unlock()
		}
		return released, nil
	}
	released := 0
	for i := range sc.Checkpoint.Heads {
		h := &sc.Checkpoint.Heads[i]
		if int(h.Shard) >= len(fs.shards) {
			return released, fmt.Errorf("accounting: seal names shard %d of %d", h.Shard, len(fs.shards))
		}
		sh := &fs.shards[h.Shard]
		sh.mu.Lock()
		var pf *pendingFrame
		if h.Count > sh.sealed {
			// Build the frame — and its running head/totals stamps — in
			// locals; shard state commits only after the frame is encoded
			// and a writer slot reserved, so a failed seal leaves the
			// stamps consistent and the next Seal retries the same range
			// instead of double-counting it.
			frame := &spillFrame{Shard: h.Shard, Base: sh.sealed,
				Head: sh.spillHead, Totals: sh.spillTotals}
			// Bulk-copy whole segment ranges instead of a per-sequence
			// lookup: the seal range is contiguous, so one binary search
			// finds the first segment and the rest append slice-at-a-time
			// (this path runs on the compaction caller — often the
			// appender that tripped the retention trigger — so per-record
			// overhead here is paid at wire speed).
			frame.Records = make([]Record, 0, h.Count-sh.sealed)
			for seq := sh.sealed; seq < h.Count; {
				i := sort.Search(len(sh.segs), func(i int) bool {
					seg := sh.segs[i]
					return seq < seg.base+uint64(len(seg.recs))
				})
				if i >= len(sh.segs) || seq < sh.segs[i].base {
					sh.mu.Unlock()
					return released, fmt.Errorf("accounting: seal lost shard %d record %d before spilling", h.Shard, seq)
				}
				seg := sh.segs[i]
				lo := seq - seg.base
				hi := uint64(len(seg.recs))
				if end := h.Count - seg.base; end < hi {
					hi = end
				}
				frame.Records = append(frame.Records, seg.recs[lo:hi]...)
				seq = seg.base + hi
			}
			for i := range frame.Records {
				aggregate(&frame.Totals, &frame.Records[i].Log)
			}
			frame.Head = frame.Records[len(frame.Records)-1].Hash
			enc, err := fs.encodeFrame(frame)
			if err != nil {
				sh.mu.Unlock()
				return released, err
			}
			if err := fs.reserve(); err != nil {
				sh.mu.Unlock()
				return released, err
			}
			pf = &pendingFrame{fr: frame, enc: enc}
			sh.pending = append(sh.pending, pf)
			sh.sealed = h.Count
			sh.spillHead, sh.spillTotals = frame.Head, frame.Totals
		}
		released += fs.dropCovered(sh, h.Count)
		sh.mu.Unlock()
		if pf != nil {
			// Blocking send outside sh.mu: the writer needs sh.mu to
			// commit finished batches. Seals are serialised by the
			// ledger's checkpoint lock, so send order matches the pending
			// queue order the writer commits against.
			fs.chans[h.Shard] <- pf
		}
	}
	return released, nil
}

// writeLoop is one shard's spill writer: it group-commits whatever seals
// are queued, amortising the fsync across them.
func (fs *fileStore) writeLoop(shard int, ch chan *pendingFrame) {
	defer fs.wg.Done()
	for pf := range ch {
		batch := []*pendingFrame{pf}
	gather:
		for len(batch) < spillGroupCommitMax {
			select {
			case next, ok := <-ch:
				if !ok {
					break gather
				}
				batch = append(batch, next)
			default:
				break gather
			}
		}
		fs.commitBatch(shard, batch)
	}
}

// commitBatch lands one group commit and publishes the result. A write
// error is retried with jittered exponential backoff (transient faults —
// a full device queue, a momentary EIO — heal without anyone noticing);
// exhausting the retry budget degrades the store to bounded-in-memory
// retention instead of wedging: the loop keeps draining so blocked senders
// always make progress, the failed batch's frames stay readable on the
// pending queue, and the durable prefix stays exactly where the failure
// left it.
func (fs *fileStore) commitBatch(shard int, batch []*pendingFrame) {
	var err error
	var idx []frameIndex
	if !fs.degraded.Load() {
		for attempt := 0; ; attempt++ {
			idx, err = fs.writeBatch(shard, batch)
			if err == nil || attempt >= spillRetryMax {
				break
			}
			if !fs.retryWait(attempt) {
				break // closing: don't wait out a dead disk's retry budget
			}
		}
		if err == nil {
			sh := &fs.shards[shard]
			sh.mu.Lock()
			sh.frames = append(sh.frames, idx...)
			last := batch[len(batch)-1].fr
			sh.spilled = last.Base + uint64(len(last.Records))
			sh.pending = sh.pending[len(batch):]
			sh.mu.Unlock()
		} else {
			fs.degrade(err)
		}
	}
	fs.qmu.Lock()
	fs.inflight -= len(batch)
	fs.qcond.Broadcast()
	fs.qmu.Unlock()
}

// writeBatch lands one batch of frames with a single concatenated write.
// Durability is deferred: the files are fsynced together at sync points
// (syncLocked), checkpoint log first, so no durable frame ever outruns
// the checkpoint that anchors it. The one exception is the very first
// batch after open, which syncs the checkpoint log up front — a crash
// may then truncate frames back to an anchor, but can never leave frames
// with no durable checkpoint at all (the state recovery refuses).
func (fs *fileStore) writeBatch(shard int, batch []*pendingFrame) ([]frameIndex, error) {
	fs.faults.Hit(FaultPointWriteBatch)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[shard]
	if f == nil {
		return nil, fmt.Errorf("accounting: spill store closed")
	}
	if !fs.cpSynced && fs.cpF != nil {
		if err := fs.faults.Sync(fs.cpF); err != nil {
			return nil, fmt.Errorf("accounting: sync checkpoint log: %w", err)
		}
		fs.cpDirty, fs.cpSynced = false, true
	}
	off, err := f.Seek(0, 2)
	if err != nil {
		return nil, err
	}
	size := 0
	for _, pf := range batch {
		size += len(pf.enc)
	}
	if cap(fs.wbufs[shard]) < size {
		fs.wbufs[shard] = make([]byte, 0, size)
	}
	buf := fs.wbufs[shard][:0]
	idx := make([]frameIndex, len(batch))
	for i, pf := range batch {
		idx[i] = frameIndex{
			base:  pf.fr.Base,
			count: uint64(len(pf.fr.Records)),
			off:   off + int64(len(buf)),
			size:  int64(len(pf.enc)),
		}
		buf = append(buf, pf.enc...)
	}
	if n, werr := fs.faults.Write(f, buf); werr != nil {
		if n > 0 {
			// A partial write leaves a torn frame that the next successful
			// append would bury mid-file (which recovery rejects as
			// corruption, not a torn tail). Cut the file back to the batch
			// start; if even that fails, retire the handle so no later
			// batch writes past known junk.
			if terr := fs.faults.Truncate(f, off); terr != nil {
				_ = f.Close()
				fs.files[shard] = nil
			}
		}
		return nil, fmt.Errorf("accounting: spill shard %d: %w", shard, werr)
	}
	fs.dataDirty[shard] = true
	fs.unsynced += len(buf)
	// Start writeback of the accumulated range without waiting: the
	// kernel flushes behind the appends and the next hard sync point
	// (Drain) has little left to block on.
	if fs.unhinted[shard] += int64(len(buf)); fs.unhinted[shard] >= spillHintBytes {
		end := off + int64(len(buf))
		hintWriteback(f, fs.hintOff[shard], end-fs.hintOff[shard])
		fs.hintOff[shard] = end
		fs.unhinted[shard] = 0
	}
	if fs.unsynced >= spillSyncBytes {
		if err := fs.syncLocked(); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// syncLocked is a deferred-durability sync point: checkpoint log first
// (recovery anchors on it), then every shard file with unsynced frames.
// Caller holds fs.mu.
func (fs *fileStore) syncLocked() error {
	fs.faults.Hit(FaultPointSync)
	if fs.cpDirty && fs.cpF != nil {
		if err := fs.faults.Sync(fs.cpF); err != nil {
			return fmt.Errorf("accounting: sync checkpoint log: %w", err)
		}
		fs.cpDirty, fs.cpSynced = false, true
	}
	for shard, dirty := range fs.dataDirty {
		if !dirty {
			continue
		}
		if f := fs.files[shard]; f != nil {
			if err := fs.faults.Sync(f); err != nil {
				return fmt.Errorf("accounting: sync spill shard %d: %w", shard, err)
			}
		}
		fs.dataDirty[shard] = false
	}
	fs.unsynced = 0
	return nil
}

// Drain blocks until every reserved frame has gone through its group
// commit, forces the deferred sync point, and reports the pipeline's
// health — after Drain returns nil on a healthy store, every seal handed
// to the pipeline before the call is durable on disk. A degraded store
// drains trivially (nil): its pipeline is permanently idle, and callers
// must consult Degraded()/Persistent() for durability claims — the dump
// path already anchors captures from non-persistent stores.
func (fs *fileStore) Drain() error {
	fs.qmu.Lock()
	for fs.inflight > 0 {
		fs.qcond.Wait()
	}
	fs.qmu.Unlock()
	if fs.degraded.Load() {
		return nil
	}
	var err error
	for attempt := 0; ; attempt++ {
		fs.mu.Lock()
		err = fs.syncLocked()
		fs.mu.Unlock()
		if err == nil || attempt >= spillRetryMax {
			break
		}
		if !fs.retryWait(attempt) {
			break
		}
	}
	if err != nil {
		// A barrier that cannot reach the disk even after the retry budget
		// degrades the store just like a failed write: the durable prefix
		// stays where the last successful sync left it.
		fs.degrade(err)
	}
	return err
}

// Snapshot pins [from, to): spilled frame locations (immutable in the
// append-only file) plus copies of the pending frames' records and the
// resident suffix. The returned closure replays spilled frames straight
// off disk, one frame in memory at a time, with no store locks held — a
// slow consumer never blocks appends or compactions.
func (fs *fileStore) Snapshot(shard uint32, from, to uint64) (func(fn func(*Record) error) error, error) {
	if int(shard) >= len(fs.shards) {
		return nil, fmt.Errorf("accounting: snapshot names shard %d of %d", shard, len(fs.shards))
	}
	sh := &fs.shards[shard]
	sh.mu.Lock()
	spilled := sh.spilled
	frames := append([]frameIndex(nil), sh.frames...)
	// Pending frames cover [spilled, sealed); copy the overlap with the
	// request so the snapshot survives the frames landing (and leaving
	// the pending queue) mid-replay.
	var pend []Record
	for _, pf := range sh.pending {
		for i := range pf.fr.Records {
			if seq := pf.fr.Base + uint64(i); seq >= from && seq < to {
				pend = append(pend, pf.fr.Records[i])
			}
		}
	}
	lo := from
	if lo < sh.sealed {
		lo = sh.sealed
	}
	resident, err := sh.collectResident(lo, to)
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	path := filepath.Join(fs.dir, shardFileName(int(shard)))
	bin := fs.binary
	return func(fn func(*Record) error) error {
		if from < spilled {
			f, err := os.Open(path)
			if err != nil {
				return fmt.Errorf("accounting: open spill shard %d: %w", shard, err)
			}
			defer f.Close()
			for _, fi := range frames {
				if fi.base+fi.count <= from {
					continue
				}
				if fi.base >= to {
					return nil
				}
				frame, err := readFrameAt(f, fi, bin)
				if err != nil {
					return err
				}
				for i := range frame.Records {
					seq := fi.base + uint64(i)
					if seq < from {
						continue
					}
					if seq >= to {
						return nil
					}
					if err := fn(&frame.Records[i]); err != nil {
						return err
					}
				}
			}
		}
		if err := replaySlice(pend)(fn); err != nil {
			return err
		}
		return replaySlice(resident)(fn)
	}, nil
}

// Close shuts the writer pipeline down (draining every in-flight seal),
// then releases the spill files. Safe to call more than once.
func (fs *fileStore) Close() error {
	fs.qmu.Lock()
	already := fs.closed
	fs.closed = true
	for fs.inflight > 0 {
		fs.qcond.Wait()
	}
	degradedErr := fs.degradedErr
	fs.qmu.Unlock()
	if !already {
		// closed is set and inflight hit zero: no seal holds a reserved
		// slot, so no sender can be blocked on (or about to enter) a
		// channel send — closing is safe.
		for _, ch := range fs.chans {
			if ch != nil {
				close(ch)
			}
		}
		fs.wg.Wait()
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var first error
	if !already && !fs.degraded.Load() {
		// Final sync point: nothing written after a drained, closed
		// pipeline, so closing durable files afterwards is safe.
		first = fs.syncLocked()
	}
	for i, f := range fs.files {
		if f != nil {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			fs.files[i] = nil
		}
	}
	if fs.cpF != nil {
		if err := fs.cpF.Close(); err != nil && first == nil {
			first = err
		}
		fs.cpF = nil
	}
	if first == nil {
		// A degraded store closes cleanly but still reports why it gave up
		// on durability, for callers that check.
		first = degradedErr
	}
	return first
}
