//go:build linux

package accounting

import (
	"os"
	"syscall"
)

// syncFileRangeWrite is SYNC_FILE_RANGE_WRITE: start writeback of the
// range's dirty pages without waiting for completion.
const syncFileRangeWrite = 2

// hintWriteback asks the kernel to begin writing [off, off+n) of the
// spill file back to disk without blocking the caller: group-committed
// batches then stream to disk continuously behind the appends, and the
// next hard sync point (fileStore.syncLocked, reached via Drain) has
// little left to wait for. Purely advisory — errors are ignored, and a
// filesystem without sync_file_range support just makes the hint free.
func hintWriteback(f *os.File, off, n int64) {
	if f == nil || n <= 0 {
		return
	}
	rc, err := f.SyscallConn()
	if err != nil {
		return
	}
	_ = rc.Control(func(fd uintptr) {
		_, _, _ = syscall.Syscall6(syscall.SYS_SYNC_FILE_RANGE, fd,
			uintptr(off), uintptr(n), syncFileRangeWrite, 0, 0)
	})
}
