package accounting_test

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/fault"
)

func spillOpts(dir string, inj *fault.Injector) accounting.LedgerOptions {
	return accounting.LedgerOptions{
		Shards: 1,
		Retention: accounting.RetentionPolicy{
			MaxResidentRecords: 1 << 20, // explicit compaction points only
			SegmentRecords:     8,
			SpillDir:           dir,
		},
		Faults: inj,
	}
}

// waitDegraded polls until the ledger reports degradation (the async
// writer exhausts its retry budget on its own schedule) or the deadline
// expires.
func waitDegraded(t *testing.T, l *accounting.Ledger) error {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if deg, err := l.Degraded(); deg {
			return err
		}
		if time.Now().After(deadline) {
			t.Fatal("store never degraded after a permanent write fault")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSpillTransientWriteFaultHealsViaRetry: a bounded run of write
// failures (a full device queue, a momentary EIO) must be absorbed by the
// group-commit writer's retry loop — no degradation, no lost frames, and
// the spill directory verifies end to end as if nothing happened.
func TestSpillTransientWriteFaultHealsViaRetry(t *testing.T) {
	dir := t.TempDir()
	e := newEnclave(t)
	inj := fault.New()
	l, err := accounting.NewLedger(e, spillOpts(dir, inj))
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		if _, _, err := l.Append(logFor(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Arm a transient fault. The next injected write is the compaction
	// checkpoint's log line (which must succeed — Compact is synchronous);
	// the two after that are async group-commit batch writes, which the
	// writer retries with backoff until the fault heals.
	armed := inj.Writes()
	inj.FailWrites(armed+2, 2, nil)
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	l.Anchor() // drain barrier: the retried batch is durable
	if deg, derr := l.Degraded(); deg {
		t.Fatalf("transient fault degraded the store: %v", derr)
	}
	if got := l.SpilledRecords(); got != n {
		t.Fatalf("spilled %d records, want %d", got, n)
	}
	if inj.Writes() < armed+3 {
		t.Fatalf("only %d writes interposed after arming at %d — the retry path never ran", inj.Writes(), armed)
	}
	if _, ok := l.Record(0, 0); !ok {
		t.Fatal("record 0/0 unreachable after the healed fault")
	}
	l.Close()
	res, err := accounting.VerifySpillDir(dir, accounting.VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatalf("spill dir after healed fault: %v", err)
	}
	if res.Records != n {
		t.Fatalf("verifier replayed %d records, want %d", res.Records, n)
	}
}

// TestSpillTransientSyncFaultHealsOnDrain: Drain (the durability barrier
// behind Anchor and dumps) retries a failing sync point instead of
// degrading on the first error.
func TestSpillTransientSyncFaultHealsOnDrain(t *testing.T) {
	dir := t.TempDir()
	e := newEnclave(t)
	inj := fault.New()
	l, err := accounting.NewLedger(e, spillOpts(dir, inj))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		if _, _, err := l.Append(logFor(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	l.Anchor() // writes landed, schedule clean: target the next barrier only
	armed := inj.Syncs()
	inj.FailSyncs(armed+1, 2, nil)
	for i := 0; i < n; i++ {
		if _, _, err := l.Append(logFor(2, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	l.Anchor()
	if deg, derr := l.Degraded(); deg {
		t.Fatalf("transient sync fault degraded the store: %v", derr)
	}
	l.Close()
	res, err := accounting.VerifySpillDir(dir, accounting.VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatalf("spill dir after healed sync fault: %v", err)
	}
	if res.Records != 2*n {
		t.Fatalf("verifier replayed %d records, want %d", res.Records, 2*n)
	}
}

// TestSpillPermanentWriteFaultDegrades: when the disk fails for good, the
// store must exhaust its retry budget and then degrade to bounded
// in-memory retention — appends, checkpoints, and compactions keep
// working, retention stays bounded, the failure is reported through
// Degraded(), and dumps auto-anchor so the offline verifier stays green.
func TestSpillPermanentWriteFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	e := newEnclave(t)
	inj := fault.New()
	l, err := accounting.NewLedger(e, spillOpts(dir, inj))
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		if _, _, err := l.Append(logFor(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every batch write from the seal on fails, forever.
	inj.FailWrites(inj.Writes()+2, math.MaxUint64/2, nil)
	if _, err := l.Compact(); err != nil {
		t.Fatalf("compact must succeed even though its async spill will fail: %v", err)
	}
	derr := waitDegraded(t, l)
	if !errors.Is(derr, fault.ErrInjected) {
		t.Fatalf("degradation cause = %v, want the injected write error", derr)
	}

	// The ledger stays live: appends chain, checkpoints sign, and a
	// degraded compaction still bounds retention by dropping covered
	// records (memStore semantics).
	for i := 0; i < n; i++ {
		if _, _, err := l.Append(logFor(2, i)); err != nil {
			t.Fatalf("append after degradation: %v", err)
		}
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after degradation: %v", err)
	}
	if _, err := l.Compact(); err != nil {
		t.Fatalf("compact after degradation: %v", err)
	}
	if res := l.Resident(); res != 0 {
		t.Fatalf("degraded compaction left %d resident records, want 0", res)
	}
	// The failed batch's frames stay readable on the pending queue.
	if _, ok := l.Record(0, 0); !ok {
		t.Fatal("record 0/0 unreachable after degradation")
	}

	// Dumps anchor automatically on a non-persistent store: a tail
	// appended after the anchor replays and the whole stream verifies.
	const tail = 8
	for i := 0; i < tail; i++ {
		if _, _, err := l.Append(logFor(3, i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := l.WriteDump(&buf, accounting.DumpOptions{}); err != nil {
		t.Fatalf("dump from degraded ledger: %v", err)
	}
	vres, err := accounting.VerifyStream(bytes.NewReader(buf.Bytes()), accounting.VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatalf("degraded dump does not verify: %v", err)
	}
	if vres.Records != tail {
		t.Fatalf("anchored dump replayed %d records, want the %d-record tail", vres.Records, tail)
	}

	// The store-level Close still reports why durability was lost, for
	// callers that hold the store directly (Ledger.Close discards it).
	if err := l.Store().Close(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("store Close = %v, want the injected degradation cause", err)
	}
	l.Close()
}
