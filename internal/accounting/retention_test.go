package accounting_test

import (
	"bytes"
	"sync"
	"testing"

	"acctee/internal/accounting"
)

// TestRetentionBoundedResident100k pins the acceptance criterion at the
// ledger level: with MaxResidentRecords = 4096, 100k appends (the gateway
// usage pattern: affinity shard pick, one record per request) keep the
// resident record count bounded — it never exceeds the budget plus one
// in-flight partial segment per shard — while totals, checkpoints and the
// anchored dump stay exactly verifiable.
func TestRetentionBoundedResident100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k appends")
	}
	const (
		total       = 100_000
		maxResident = 4096
		shards      = 4
	)
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{
		Shards:    shards,
		Retention: accounting.RetentionPolicy{MaxResidentRecords: maxResident},
	})
	defer l.Close()
	segRecords := maxResident / (2 * shards) // the documented default
	bound := maxResident + shards*segRecords + 64

	peak := 0
	for i := 0; i < total; i++ {
		if _, _, err := l.Append(logFor(i%5, i)); err != nil {
			t.Fatal(err)
		}
		if r := l.Resident(); r > peak {
			peak = r
		}
	}
	if peak > bound {
		t.Fatalf("resident records peaked at %d, bound %d (budget %d)", peak, bound, maxResident)
	}
	if peak < maxResident/2 {
		t.Fatalf("resident peak %d suspiciously low — retention trigger misconfigured?", peak)
	}
	t.Logf("resident peak %d (budget %d, bound %d), final resident %d", peak, maxResident, bound, l.Resident())

	// The live totals survived every compaction via lane carry-forward.
	if got := l.Totals().Sequence; got != total {
		t.Fatalf("live totals cover %d records, want %d", got, total)
	}
	sc, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Checkpoint.Covered() != total {
		t.Fatalf("checkpoint covers %d, want %d", sc.Checkpoint.Covered(), total)
	}
	// A memory store dropped the sealed records, so the dump is anchored:
	// a non-zero starting sequence verified against the anchor signature.
	d, err := l.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if d.Anchor == nil {
		t.Fatal("post-compaction memory-store dump is not anchored")
	}
	res, err := accounting.VerifyDump(d, accounting.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anchored || res.StartRecords == 0 {
		t.Fatalf("verification did not see the anchor: %+v", res)
	}
	if res.Totals != sc.Checkpoint.Totals {
		t.Fatalf("cumulative verified totals %+v != checkpoint totals %+v", res.Totals, sc.Checkpoint.Totals)
	}
	if res.StartRecords+uint64(res.Records) != total {
		t.Fatalf("carried %d + dumped %d != %d appended", res.StartRecords, res.Records, total)
	}
}

// TestRetentionSpillRoundTrip exercises the file store end to end under
// concurrent appends: spill on compaction, receipt lookup of spilled
// records, the streaming full dump (spilled frames + resident tail), the
// truncated dump, and spill-directory verification.
func TestRetentionSpillRoundTrip(t *testing.T) {
	const (
		goroutines = 4
		each       = 1250
		total      = goroutines * each
	)
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{
		Shards: 2,
		Retention: accounting.RetentionPolicy{
			MaxResidentRecords: 256,
			SegmentRecords:     32,
			SpillDir:           t.TempDir(),
		},
	})
	defer l.Close()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, _, err := l.Append(logFor(g, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if spilled := l.SpilledRecords(); spilled != total {
		t.Fatalf("spilled %d records, want %d after full compaction", spilled, total)
	}
	if l.Resident() != 0 {
		t.Fatalf("resident %d after full compaction, want 0", l.Resident())
	}

	// Spilled records stay receipt-addressable through the frame index.
	rec, ok := l.Record(0, 3)
	if !ok || rec.Shard != 0 || rec.Log.Sequence != 3 {
		t.Fatalf("spilled Record(0,3) = %+v, %v", rec, ok)
	}
	if rec.Hash != rec.ComputeHash() {
		t.Fatal("spilled record hash does not recompute")
	}

	// A tail appended after compaction chains onto the carried-forward
	// heads; the full streaming dump replays spilled frames + tail.
	for i := 0; i < 37; i++ {
		if _, _, err := l.Append(logFor(9, i)); err != nil {
			t.Fatal(err)
		}
	}
	var full bytes.Buffer
	if err := l.WriteDump(&full, accounting.DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := accounting.VerifyStream(bytes.NewReader(full.Bytes()), accounting.VerifyOptions{})
	if err != nil {
		t.Fatalf("full streamed dump: %v", err)
	}
	if res.Records != total+37 || res.Anchored {
		t.Fatalf("full dump replayed %d records (anchored=%v), want %d unanchored", res.Records, res.Anchored, total+37)
	}
	if lt := l.Totals(); res.Totals != lt {
		t.Fatalf("verified totals %+v != live totals %+v", res.Totals, lt)
	}

	// The truncated dump starts at the anchor's non-zero sequences.
	var trunc bytes.Buffer
	if err := l.WriteDump(&trunc, accounting.DumpOptions{Truncated: true}); err != nil {
		t.Fatal(err)
	}
	tres, err := accounting.VerifyStream(bytes.NewReader(trunc.Bytes()), accounting.VerifyOptions{})
	if err != nil {
		t.Fatalf("truncated streamed dump: %v", err)
	}
	if !tres.Anchored || tres.StartRecords != total || tres.Records != 37 {
		t.Fatalf("truncated dump: anchored=%v start=%d records=%d, want true/%d/37",
			tres.Anchored, tres.StartRecords, tres.Records, total)
	}
	if tres.Totals != res.Totals {
		t.Fatalf("truncated cumulative totals %+v != full totals %+v", tres.Totals, res.Totals)
	}

	// The in-memory Dump (compat path) agrees with the stream.
	d, err := l.Dump()
	if err != nil {
		t.Fatal(err)
	}
	dres, err := accounting.VerifyDump(d, accounting.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if *dres != *res {
		t.Fatalf("VerifyDump %+v != VerifyStream %+v", dres, res)
	}

	// The spill directory itself verifies (frames re-hashed against the
	// persisted checkpoint chain).
	sres, err := accounting.VerifySpillDir(l.Options().Retention.SpillDir, accounting.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Records != total {
		t.Fatalf("spill verification replayed %d records, want %d", sres.Records, total)
	}
}

// TestTruncatedDumpTamperDetection drives the verifier's anchored-dump
// checks through semantic mutations: the carried-forward start is only
// trustworthy because every piece is bound to the anchor's signature.
func TestTruncatedDumpTamperDetection(t *testing.T) {
	e := newEnclave(t)
	l := newTestLedger(t, e, accounting.LedgerOptions{
		Shards:    2,
		Retention: accounting.RetentionPolicy{MaxResidentRecords: 16, SegmentRecords: 4},
	})
	defer l.Close()
	for i := 0; i < 60; i++ {
		if _, _, err := l.Append(logFor(2, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := l.Append(logFor(3, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A second post-anchor checkpoint (kept below the auto-compaction
	// trigger so the anchor does not advance past the first one) gives the
	// pruning cases below a mid-chain checkpoint to drop.
	for i := 10; i < 14; i++ {
		if _, _, err := l.Append(logFor(3, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base, err := l.DumpTruncated()
	if err != nil {
		t.Fatal(err)
	}
	if base.Anchor == nil || len(base.Records) == 0 || len(base.Checkpoints) == 0 {
		t.Fatalf("unexpected truncated dump shape: anchor=%v records=%d checkpoints=%d",
			base.Anchor != nil, len(base.Records), len(base.Checkpoints))
	}
	if _, err := accounting.VerifyDump(base, accounting.VerifyOptions{}); err != nil {
		t.Fatalf("pristine truncated dump: %v", err)
	}
	reparse := func() *accounting.Dump {
		j, err := base.JSON()
		if err != nil {
			t.Fatal(err)
		}
		d, err := accounting.ParseDump(j)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name   string
		mutate func(*accounting.Dump)
	}{
		{"shrink the anchor's carried count", func(d *accounting.Dump) {
			d.Anchor.Checkpoint.Heads[0].Count--
		}},
		{"swap the anchor's carried head", func(d *accounting.Dump) {
			d.Anchor.Checkpoint.Heads[0].Head[5] ^= 1
		}},
		{"undercharge the anchor totals", func(d *accounting.Dump) {
			d.Anchor.Checkpoint.Totals.WeightedInstructions /= 2
		}},
		{"drop the first tail record", func(d *accounting.Dump) {
			d.Records = d.Records[1:]
		}},
		{"undercharge a tail record", func(d *accounting.Dump) {
			d.Records[0].Log.WeightedInstructions = 0
		}},
		{"detach the post-anchor checkpoint", func(d *accounting.Dump) {
			d.Checkpoints[0].Checkpoint.PrevHash[0] ^= 1
		}},
		{"strip the anchor entirely", func(d *accounting.Dump) {
			d.Anchor = nil
		}},
		{"smuggle a checkpoint gap without declaring pruning", func(d *accounting.Dump) {
			// Dropping a mid-chain checkpoint breaks adjacency; only a
			// chain that declares pruning may skip sequences.
			d.Checkpoints = d.Checkpoints[1:]
		}},
		{"tamper a retained checkpoint in a pruned chain", func(d *accounting.Dump) {
			// Declared pruning relaxes chain ADJACENCY only — every
			// retained checkpoint is still signature-checked, so a
			// flipped byte in its totals must still be caught.
			d.Pruned = true
			d.Checkpoints = d.Checkpoints[1:]
			d.Checkpoints[0].Checkpoint.Totals.IOBytesIn++
		}},
	}
	for _, tc := range cases {
		d := reparse()
		tc.mutate(d)
		if _, err := accounting.VerifyDump(d, accounting.VerifyOptions{}); err == nil {
			t.Errorf("%s: tampered truncated dump verified", tc.name)
		}
	}

	// The positive control for the pruned cases above: the same dropped
	// checkpoint IS tolerated when the dump declares pruning — and the
	// verifier reports exactly how many gaps it accepted on that basis.
	d := reparse()
	d.Pruned = true
	d.Checkpoints = d.Checkpoints[1:]
	res, err := accounting.VerifyDump(d, accounting.VerifyOptions{})
	if err != nil {
		t.Fatalf("declared-pruned dump with a checkpoint gap: %v", err)
	}
	if res.PrunedCheckpointGaps != 1 {
		t.Fatalf("pruned dump reported %d checkpoint gaps, want 1", res.PrunedCheckpointGaps)
	}
}
