// Sharded, hash-chained, batch-signed usage ledger (paper §3.3, §3.5).
//
// PR 2 left the accounting enclave with one mutex around a global sequence
// counter and a full ECDSA signature per record — the accounting layer, not
// the interpreter, capped concurrent throughput. This file replaces that
// with the structure shielded middleboxes use to scale enclave crypto:
//
//   - records are partitioned into shards, each shard an independent
//     sequence lane with its own lock, lane-local gap-free sequence numbers
//     and its own hash chain (every record carries the previous record's
//     hash, so any retroactive edit breaks the chain);
//   - signing moves off the hot path: a Checkpoint covers the contiguous
//     prefix of every shard with ONE signature ("either periodically or
//     upon request", §3.3/§3.5), and checkpoints themselves are
//     hash-chained so none can be dropped unnoticed;
//   - per-record eager signing stays available via LedgerOptions.EagerSign
//     as the differential-testing baseline (the PR 2 behaviour, minus the
//     global lock).
//
// verify.go replays a serialised ledger offline against the attested key.
package accounting

import (
	"bufio"
	"bytes"
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"acctee/internal/affinity"
	"acctee/internal/fault"
	"acctee/internal/sgx"
)

// Record is one chained ledger entry: a usage log bound to its shard and to
// the previous record in the shard's chain.
type Record struct {
	// Shard is the sequence lane this record belongs to.
	Shard uint32 `json:"shard"`
	// Log is the usage record; Log.Sequence is the lane-local, gap-free
	// sequence number (0, 1, 2, … per shard).
	Log UsageLog `json:"log"`
	// PrevHash chains to the previous record of the same shard (zero for
	// the first record of a lane).
	PrevHash [32]byte `json:"prevHash"`
	// Hash is SHA-256 over Marshal() — the lane's new chain head.
	Hash [32]byte `json:"hash"`
	// Signature is a per-record enclave signature over Marshal(), set only
	// under LedgerOptions.EagerSign.
	Signature []byte `json:"signature,omitempty"`
}

// recordMarshalSize is the exact byte length of a marshalled Record body.
const recordMarshalSize = 4 + 32 + MarshalSize

// Marshal serialises the signed/hashed portion of a record: shard id, the
// previous chain hash, and the usage log.
func (r *Record) Marshal() []byte {
	return r.appendMarshal(make([]byte, 0, recordMarshalSize))
}

// appendMarshal appends the marshalled record to buf — the allocation-free
// form the append hot path uses with a per-lane scratch buffer.
func (r *Record) appendMarshal(buf []byte) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], r.Shard)
	buf = append(buf, b[:]...)
	buf = append(buf, r.PrevHash[:]...)
	return r.Log.AppendMarshal(buf)
}

// ComputeHash recomputes the record's chain hash from its contents.
func (r *Record) ComputeHash() [32]byte { return sha256.Sum256(r.Marshal()) }

// Receipt is what a caller holds after appending a record: enough to locate
// the record and to later check it is covered by a signed checkpoint.
type Receipt struct {
	Shard uint32 `json:"shard"`
	// Sequence is the lane-local sequence number.
	Sequence uint64 `json:"sequence"`
	// ChainHead is the appended record's hash — the shard's chain head at
	// append time.
	ChainHead [32]byte `json:"chainHead"`
}

// ShardHead is one shard's covered state inside a checkpoint: the first
// Count records of the shard, whose chain head is Head.
type ShardHead struct {
	Shard uint32 `json:"shard"`
	// Count is the number of records covered (sequence numbers 0..Count-1).
	Count uint64 `json:"count"`
	// Head is the chain head after Count records (zero when Count is 0).
	Head [32]byte `json:"head"`
}

// Checkpoint covers a contiguous prefix of every shard with a single
// signature: per-shard chain heads in ascending shard order (the
// deterministic merge order) plus totals aggregated over all covered
// records. Checkpoints are themselves hash-chained via PrevHash.
type Checkpoint struct {
	// Sequence numbers checkpoints (0, 1, 2, …).
	Sequence uint64 `json:"sequence"`
	// PrevHash chains to the previous checkpoint (zero for the first).
	PrevHash [32]byte `json:"prevHash"`
	// Heads lists every shard's covered prefix, ascending by shard id.
	Heads []ShardHead `json:"heads"`
	// Totals aggregates the covered records deterministically: sums for
	// counters and integrals, max for peak memory, Sequence = covered
	// record count. WorkloadHash and Policy are zero (records carry them).
	Totals UsageLog `json:"totals"`
}

// Marshal serialises the checkpoint for signing and chaining.
func (c *Checkpoint) Marshal() []byte {
	buf := make([]byte, 0, 8+32+8+len(c.Heads)*(4+8+32)+MarshalSize)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], c.Sequence)
	buf = append(buf, b[:]...)
	buf = append(buf, c.PrevHash[:]...)
	binary.LittleEndian.PutUint64(b[:], uint64(len(c.Heads)))
	buf = append(buf, b[:]...)
	for _, h := range c.Heads {
		binary.LittleEndian.PutUint32(b[:4], h.Shard)
		buf = append(buf, b[:4]...)
		binary.LittleEndian.PutUint64(b[:], h.Count)
		buf = append(buf, b[:]...)
		buf = append(buf, h.Head[:]...)
	}
	return c.Totals.AppendMarshal(buf)
}

// Hash is the checkpoint's chain hash.
func (c *Checkpoint) Hash() [32]byte { return sha256.Sum256(c.Marshal()) }

// Covered returns the total number of records the checkpoint covers.
func (c *Checkpoint) Covered() uint64 {
	var n uint64
	for _, h := range c.Heads {
		n += h.Count
	}
	return n
}

// SignedCheckpoint is a checkpoint signed by the accounting enclave; after
// attestation binds the key to the measurement, one signature vouches for
// every record the checkpoint covers.
type SignedCheckpoint struct {
	Checkpoint  Checkpoint      `json:"checkpoint"`
	Measurement sgx.Measurement `json:"measurement"`
	Signature   []byte          `json:"signature"`
}

// ErrBadCheckpointSignature indicates a forged or corrupted checkpoint.
var ErrBadCheckpointSignature = errors.New("accounting: checkpoint signature invalid")

// clone deep-copies the checkpoint's slices, so handing it to a caller can
// never alias ledger-internal state (a mutated Heads entry or signature
// byte must corrupt only the caller's copy).
func (sc SignedCheckpoint) clone() SignedCheckpoint {
	sc.Checkpoint.Heads = append([]ShardHead(nil), sc.Checkpoint.Heads...)
	sc.Signature = append([]byte(nil), sc.Signature...)
	return sc
}

// SignCheckpoint signs a checkpoint with the enclave's key.
func SignCheckpoint(e *sgx.Enclave, c Checkpoint) (SignedCheckpoint, error) {
	sig, err := e.Sign(c.Marshal())
	if err != nil {
		return SignedCheckpoint{}, fmt.Errorf("accounting: sign checkpoint: %w", err)
	}
	return SignedCheckpoint{Checkpoint: c, Measurement: e.Measurement(), Signature: sig}, nil
}

// VerifyCheckpointSig checks a signed checkpoint against the attested key
// and expected measurement.
func VerifyCheckpointSig(sc SignedCheckpoint, pub *ecdsa.PublicKey, expected sgx.Measurement) error {
	if sc.Measurement != expected {
		return sgx.ErrWrongMeasurement
	}
	if !sgx.VerifyBy(pub, sc.Checkpoint.Marshal(), sc.Signature) {
		return ErrBadCheckpointSignature
	}
	return nil
}

// ErrNoRecordSignature marks a record without a per-record signature: the
// ledger ran in the default batched mode, where records are vouched for by
// checkpoints (VerifyCheckpointSig / VerifyDump), not individually.
var ErrNoRecordSignature = errors.New("accounting: record carries no per-record signature (batched mode; verify via a checkpoint)")

// VerifyRecordSig checks a record's eager per-record signature and that its
// stored hash matches its contents. Records from a batched-mode ledger
// carry no signature and are rejected with ErrNoRecordSignature — their
// authenticity comes from a covering checkpoint instead.
func VerifyRecordSig(r Record, pub *ecdsa.PublicKey) error {
	if r.Hash != r.ComputeHash() {
		return fmt.Errorf("accounting: record %d/%d hash mismatch", r.Shard, r.Log.Sequence)
	}
	if len(r.Signature) == 0 {
		return ErrNoRecordSignature
	}
	if !sgx.VerifyBy(pub, r.Marshal(), r.Signature) {
		return ErrBadLogSignature
	}
	return nil
}

// RetentionPolicy bounds how much of the ledger stays resident in memory.
// The zero value is the unbounded PR 3 behaviour: everything resident,
// nothing spilled, compaction only on explicit request.
type RetentionPolicy struct {
	// MaxResidentRecords, when positive, triggers a compaction (checkpoint
	// + seal) whenever the resident record count exceeds it. Immediately
	// after a compaction at most one partially covered segment per shard
	// remains resident, so memory stays bounded by roughly
	// MaxResidentRecords + Shards·SegmentRecords regardless of how many
	// records the ledger has ever chained.
	MaxResidentRecords int
	// SegmentRecords is the fixed in-memory segment size. Zero picks
	// MaxResidentRecords/(2·Shards) clamped to [64, 4096] (1024 when
	// MaxResidentRecords is zero too).
	SegmentRecords int
	// SpillDir, when set, spills sealed segments to append-only per-shard
	// segment files under this directory instead of dropping them: records
	// stay receipt-addressable, full from-genesis dumps stream from disk,
	// and a crashed ledger reopens from the directory with its chain state
	// carried forward (see NewLedger).
	SpillDir string
	// CheckpointKeepEvery, when > 1, prunes the checkpoint chain after
	// each compaction: below the compaction anchor only every K-th
	// checkpoint (sequence divisible by K) survives, in memory and in the
	// spill directory's persisted log. Everything at or above the anchor
	// is always kept, so recovery and truncated dumps still verify
	// end-to-end — the anchor's signature vouches for the pruned span,
	// and the retained skip-list of K-th checkpoints keeps coarse
	// history. 0 or 1 keeps every checkpoint (the PR 5 behaviour).
	CheckpointKeepEvery int
}

// segmentRecords resolves the effective segment size.
func (r RetentionPolicy) segmentRecords(shards int) int {
	if r.SegmentRecords > 0 {
		return r.SegmentRecords
	}
	if r.MaxResidentRecords <= 0 {
		return 1024
	}
	seg := r.MaxResidentRecords / (2 * shards)
	if seg < 64 {
		seg = 64
	}
	if seg > 4096 {
		seg = 4096
	}
	return seg
}

// LedgerOptions configure a ledger.
type LedgerOptions struct {
	// Shards is the number of independent sequence lanes (default: one per
	// CPU, capped at 16). Concurrent appends to different lanes never
	// contend on a lock.
	Shards int
	// EagerSign signs every record at append time — the per-record
	// signing baseline kept for differential tests. Checkpoints still work.
	EagerSign bool
	// CheckpointInterval, when positive, starts a goroutine that signs a
	// checkpoint periodically (the paper's "periodically"; Checkpoint()
	// remains the "upon request" path). Close() stops it.
	CheckpointInterval time.Duration
	// Retention bounds resident memory; see RetentionPolicy. Checkpoints
	// make covered prefixes independently verifiable, so sealed records
	// can leave memory without weakening the trust guarantee.
	Retention RetentionPolicy
	// Store overrides the record store entirely (nil picks a memory store,
	// or a file store when Retention.SpillDir is set). A custom store is
	// adopted as-is: no crash recovery is attempted and Close closes it.
	Store RecordStore
	// Faults, when non-nil, interposes the fault-injection harness
	// (internal/fault) on the file store's write/sync/truncate calls.
	// Chaos tests only; leave nil in production. It has no effect unless
	// Retention.SpillDir selects the file store.
	Faults *fault.Injector
}

// withDefaults fills zero values.
func (o LedgerOptions) withDefaults() LedgerOptions {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 16 {
			o.Shards = 16
		}
	}
	return o
}

// lane is one shard's chain state: its own lock, gap-free sequence, chain
// head and running totals. The records themselves live in the store; the
// lane state carries forward when sealed records leave memory, so the live
// chain never breaks. Appends to different lanes proceed fully in
// parallel; the trailing pad keeps neighbouring lanes (which live in one
// contiguous slice for locality) off each other's cache lines, so one
// lane's lock traffic never invalidates another's.
type lane struct {
	mu      sync.Mutex
	head    [32]byte
	next    uint64
	totals  UsageLog // aggregated as in Checkpoint.Totals
	scratch []byte   // marshal/hash scratch, reused across appends (guarded by mu)
	_       [64]byte // cache-line pad against false sharing between lanes
}

// Ledger is the sharded, hash-chained usage ledger.
type Ledger struct {
	enclave *sgx.Enclave
	opts    LedgerOptions
	lanes   []lane
	store   RecordStore
	// picker assigns appends to lanes with processor affinity: sticky
	// assignments with periodic round-robin rebalance, instead of a shared
	// per-append atomic counter (a cache-line ping-pong at high core
	// counts that also sprayed each goroutine's appends across every
	// lane's lock in turn).
	picker *affinity.Picker

	cpMu        sync.Mutex
	checkpoints []SignedCheckpoint
	anchor      *SignedCheckpoint // last compaction (or recovery) anchor
	cpFailures  uint64
	cpLastErr   error

	// compactMu serialises compactions against each other and against dump
	// snapshots; the append-path trigger TryLocks it, making auto-
	// compaction single-flight and non-blocking.
	compactMu sync.Mutex
	// recoveredDroppedCheckpoints counts persisted checkpoints a crash
	// recovery had to discard (their covered tail was lost with the
	// resident records).
	recoveredDroppedCheckpoints int

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewLedger creates a ledger signing with the given enclave key.
//
// When Retention.SpillDir names a directory that already holds a spill
// from a previous ledger with the same enclave identity, the ledger
// *recovers*: per-shard heads, sequences and totals carry forward from
// the spilled segments, the persisted checkpoint chain is reloaded, and
// the last checkpoint the spill fully contains becomes the anchor —
// records that were only resident at crash time are gone, but everything
// the anchor's signature vouches for is intact and verifiable.
func NewLedger(e *sgx.Enclave, opts LedgerOptions) (*Ledger, error) {
	opts = opts.withDefaults()
	l := &Ledger{
		enclave: e,
		opts:    opts,
		lanes:   make([]lane, opts.Shards),
		picker:  affinity.NewPicker(opts.Shards, 0),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	var recovered *recoveredState
	switch {
	case opts.Store != nil:
		l.store = opts.Store
	case opts.Retention.SpillDir != "":
		pubDER, err := MarshalPublicKey(e.PublicKey())
		if err != nil {
			return nil, err
		}
		fs, rec, err := openFileStore(opts.Retention.SpillDir, opts.Shards,
			opts.Retention.segmentRecords(opts.Shards), e.Measurement(), pubDER,
			opts.Retention.CheckpointKeepEvery > 1, opts.Faults)
		if err != nil {
			return nil, err
		}
		l.store, recovered = fs, rec
	default:
		l.store = NewMemoryStore(opts.Shards, opts.Retention.segmentRecords(opts.Shards))
	}
	if recovered != nil {
		for i := range l.lanes {
			l.lanes[i].next = recovered.Heads[i].Count
			l.lanes[i].head = recovered.Heads[i].Head
			l.lanes[i].totals = recovered.Totals[i]
		}
		l.checkpoints = recovered.Checkpoints
		if n := len(l.checkpoints); n > 0 {
			a := l.checkpoints[n-1].clone()
			l.anchor = &a
		}
		l.recoveredDroppedCheckpoints = recovered.DroppedCheckpoints
	}
	if opts.CheckpointInterval > 0 {
		go l.checkpointLoop(opts.CheckpointInterval)
	} else {
		close(l.done)
	}
	return l, nil
}

// Recovered reports post-recovery diagnostics: the number of persisted
// checkpoints discarded because a crash lost the resident records they
// covered. Zero for a fresh ledger.
func (l *Ledger) Recovered() (droppedCheckpoints int) {
	return l.recoveredDroppedCheckpoints
}

// checkpointLoop signs checkpoints periodically until Close. Failures are
// recorded (see CheckpointFailures) — silent degradation of the trust
// guarantee would otherwise be invisible to the operator.
func (l *Ledger) checkpointLoop(every time.Duration) {
	defer close(l.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if _, err := l.Checkpoint(); err != nil {
				l.cpMu.Lock()
				l.cpFailures++
				l.cpLastErr = err
				l.cpMu.Unlock()
			}
		}
	}
}

// CheckpointFailures reports how many periodic checkpoint attempts failed
// and the most recent error — a batched-mode deployment should alarm on a
// non-zero count, since records appended after the last good checkpoint
// are not yet vouched for by any signature.
func (l *Ledger) CheckpointFailures() (uint64, error) {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	return l.cpFailures, l.cpLastErr
}

// Close stops the periodic checkpoint goroutine (if any) and closes the
// record store's spill files. The ledger stays readable for resident
// records; further appends are not prevented but can no longer spill.
// Close is idempotent.
func (l *Ledger) Close() {
	l.stopOnce.Do(func() {
		close(l.stop)
		<-l.done
		_ = l.store.Close()
	})
	<-l.done
}

// Options returns the ledger's configuration (after defaulting).
func (l *Ledger) Options() LedgerOptions { return l.opts }

// Shards returns the number of sequence lanes.
func (l *Ledger) Shards() int { return len(l.lanes) }

// Store exposes the ledger's record store.
func (l *Ledger) Store() RecordStore { return l.store }

// Resident returns how many records are currently held in memory.
func (l *Ledger) Resident() int { return l.store.Resident() }

// Degraded reports whether the record store has given up on durable
// spilling after a permanent disk fault, together with the first error
// that forced it. A degraded ledger keeps appending, chaining, and
// checkpointing in memory; only durability is lost.
func (l *Ledger) Degraded() (bool, error) { return l.store.Degraded() }

// SpilledRecords returns how many records have been sealed out of the
// resident tail into the spill pipeline across all shards (0 without a
// file store). Sealed frames become durable asynchronously; Anchor or
// WriteDump act as drain barriers when durability matters.
func (l *Ledger) SpilledRecords() uint64 {
	var n uint64
	for i := range l.lanes {
		n += l.store.Spilled(uint32(i))
	}
	return n
}

// aggregate folds one covered log into running totals using the
// deterministic checkpoint aggregation rule.
func aggregate(t *UsageLog, u *UsageLog) {
	t.WeightedInstructions += u.WeightedInstructions
	if u.PeakMemoryBytes > t.PeakMemoryBytes {
		t.PeakMemoryBytes = u.PeakMemoryBytes
	}
	t.MemoryIntegral += u.MemoryIntegral
	t.IOBytesIn += u.IOBytesIn
	t.IOBytesOut += u.IOBytesOut
	t.SimulatedCycles += u.SimulatedCycles
	t.Sequence++ // covered record count
}

// merge folds one lane's totals into cross-shard totals.
func merge(t *UsageLog, lt *UsageLog) {
	t.WeightedInstructions += lt.WeightedInstructions
	if lt.PeakMemoryBytes > t.PeakMemoryBytes {
		t.PeakMemoryBytes = lt.PeakMemoryBytes
	}
	t.MemoryIntegral += lt.MemoryIntegral
	t.IOBytesIn += lt.IOBytesIn
	t.IOBytesOut += lt.IOBytesOut
	t.SimulatedCycles += lt.SimulatedCycles
	t.Sequence += lt.Sequence
}

// Append chains a usage log onto an affinity-chosen shard: the calling
// goroutine sticks to one lane for a window of appends (so its records
// serialise on a lock that stays hot in its own core's cache) and
// rebalances round-robin between windows, keeping lanes evenly loaded
// over time. Lane choice never affects what is accounted — totals and
// verification are shard-order deterministic regardless. The log's
// Sequence field is overwritten with the lane-local sequence number.
func (l *Ledger) Append(log UsageLog) (Receipt, Record, error) {
	return l.AppendShard(l.picker.Pick(), log)
}

// maybeCompact runs one bounded-retention compaction if the resident
// record count exceeds the configured budget. The TryLock makes triggers
// single-flight AND non-blocking: concurrent appends that also observe
// the budget exceeded return immediately while one compaction runs, and a
// trigger that would have to wait behind a dump snapshot is skipped
// entirely — the budget is still exceeded on the next append, so the
// trigger re-fires once the lock frees. No signature is paid before the
// lock is held. Failures are recorded like periodic-checkpoint failures
// (CheckpointFailures) rather than failing the append that happened to
// trip the threshold.
func (l *Ledger) maybeCompact() {
	max := l.opts.Retention.MaxResidentRecords
	if max <= 0 || l.store.Resident() <= max {
		return
	}
	if !l.compactMu.TryLock() {
		return
	}
	defer l.compactMu.Unlock()
	sc, err := l.Checkpoint()
	if err == nil {
		_, err = l.sealLocked(sc)
	}
	if err != nil {
		l.cpMu.Lock()
		l.cpFailures++
		l.cpLastErr = err
		l.cpMu.Unlock()
	}
}

// AppendShard chains a usage log onto an explicit shard lane. Only the
// lane's own lock is taken. Under EagerSign the ECDSA signature is computed
// while holding it — that serialises the lane exactly like the PR 2
// per-record baseline this mode reproduces, and guarantees a concurrent
// Dump or Record never observes an eager record without its signature.
// Other lanes keep appending in parallel either way.
func (l *Ledger) AppendShard(shard uint32, log UsageLog) (Receipt, Record, error) {
	if int(shard) >= len(l.lanes) {
		return Receipt{}, Record{}, fmt.Errorf("accounting: shard %d out of range (%d lanes)", shard, len(l.lanes))
	}
	ln := &l.lanes[shard]
	ln.mu.Lock()
	log.Sequence = ln.next
	rec := Record{Shard: shard, Log: log, PrevHash: ln.head}
	// Marshal once into the lane's scratch buffer (guarded by ln.mu) and
	// hash/sign from it — the eager path previously marshalled twice, and
	// every append allocated a fresh buffer.
	ln.scratch = rec.appendMarshal(ln.scratch[:0])
	rec.Hash = sha256.Sum256(ln.scratch)
	if l.opts.EagerSign {
		sig, err := l.enclave.Sign(ln.scratch)
		if err != nil {
			ln.mu.Unlock()
			return Receipt{}, Record{}, fmt.Errorf("accounting: eager sign: %w", err)
		}
		rec.Signature = sig
	}
	if err := l.store.Append(rec); err != nil {
		// The lane state is only advanced after the store accepted the
		// record, so a failed append leaves the chain untouched.
		ln.mu.Unlock()
		return Receipt{}, Record{}, err
	}
	ln.head = rec.Hash
	ln.next++
	aggregate(&ln.totals, &log)
	ln.mu.Unlock()
	l.maybeCompact()
	return Receipt{Shard: shard, Sequence: rec.Log.Sequence, ChainHead: rec.Hash}, rec, nil
}

// Record returns a reachable record by shard and lane-local sequence —
// resident in memory, or read back from a spilled segment when the ledger
// runs with a file store.
func (l *Ledger) Record(shard uint32, seq uint64) (Record, bool) {
	if int(shard) >= len(l.lanes) {
		return Record{}, false
	}
	return l.store.Get(shard, seq)
}

// Totals returns the live (unsigned) aggregate over all appended records,
// merged across shards in ascending shard order.
func (l *Ledger) Totals() UsageLog {
	var t UsageLog
	for i := range l.lanes {
		ln := &l.lanes[i]
		ln.mu.Lock()
		lt := ln.totals
		ln.mu.Unlock()
		merge(&t, &lt)
	}
	return t
}

// Checkpoint signs the current state of every lane with one signature (the
// paper's "upon request" log; the periodic goroutine calls it too). The
// covered prefix of each lane is captured under that lane's lock; lanes
// keep accepting appends while the signature is computed. If no lane
// advanced since the last checkpoint, that checkpoint is returned instead
// of signing a duplicate — an idle gateway with periodic checkpointing
// must not grow its checkpoint chain with zero-information entries.
func (l *Ledger) Checkpoint() (SignedCheckpoint, error) {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()

	cp := Checkpoint{
		Heads: make([]ShardHead, len(l.lanes)),
	}
	for i := range l.lanes {
		ln := &l.lanes[i]
		ln.mu.Lock()
		cp.Heads[i] = ShardHead{Shard: uint32(i), Count: ln.next, Head: ln.head}
		lt := ln.totals
		ln.mu.Unlock()
		merge(&cp.Totals, &lt)
	}
	if n := len(l.checkpoints); n > 0 {
		last := &l.checkpoints[n-1]
		same := true
		for i := range cp.Heads {
			if cp.Heads[i] != last.Checkpoint.Heads[i] {
				same = false
				break
			}
		}
		if same {
			return last.clone(), nil
		}
		// A recovered ledger continues the persisted chain, so the next
		// sequence comes from the last checkpoint, not the in-memory count.
		cp.Sequence = last.Checkpoint.Sequence + 1
		cp.PrevHash = last.Checkpoint.Hash()
	}
	sc, err := SignCheckpoint(l.enclave, cp)
	if err != nil {
		return SignedCheckpoint{}, err
	}
	// Persist before publishing: recovery must never see spilled frames
	// anchored by a checkpoint it cannot reload. A persistence failure
	// fails the request — callers alarm exactly as on a signing failure.
	if err := l.store.PersistCheckpoint(&sc); err != nil {
		return SignedCheckpoint{}, fmt.Errorf("accounting: persist checkpoint: %w", err)
	}
	l.checkpoints = append(l.checkpoints, sc)
	return sc.clone(), nil
}

// CompactResult summarises one compaction.
type CompactResult struct {
	// Checkpoint is the anchor the compaction sealed to: the signed state
	// that now vouches for every released record.
	Checkpoint SignedCheckpoint `json:"checkpoint"`
	// Released is how many records left memory.
	Released int `json:"released"`
	// Resident is the post-compaction resident record count.
	Resident int `json:"resident"`
	// SpilledRecords is the cumulative durably spilled record count.
	SpilledRecords uint64 `json:"spilledRecords"`
}

// Compact bounds retention: it signs a checkpoint covering the current
// state of every lane (reusing the latest one when nothing advanced) and
// seals everything the checkpoint covers — sealed segments are spilled to
// the store's segment files or, for a memory store, dropped. The
// checkpoint becomes the ledger's truncation anchor: truncated dumps start
// at its per-shard counts and chain from its heads.
func (l *Ledger) Compact() (CompactResult, error) {
	sc, err := l.Checkpoint()
	if err != nil {
		return CompactResult{}, err
	}
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	return l.sealLocked(sc)
}

// sealLocked seals everything sc covers and advances the anchor. The
// caller holds compactMu.
func (l *Ledger) sealLocked(sc SignedCheckpoint) (CompactResult, error) {
	released, err := l.store.Seal(&sc)
	if err != nil {
		return CompactResult{}, fmt.Errorf("accounting: seal: %w", err)
	}
	l.cpMu.Lock()
	if l.anchor == nil || sc.Checkpoint.Covered() >= l.anchor.Checkpoint.Covered() {
		a := sc.clone()
		l.anchor = &a
	}
	l.cpMu.Unlock()
	if l.opts.Retention.CheckpointKeepEvery > 1 && l.prunableCheckpoints() >= pruneDrainMin {
		// Prune only once the anchor's frames are durable: dropping a
		// checkpoint below the anchor while the anchor's own seal is
		// still in flight could leave a crash with durable frames whose
		// only anchoring checkpoint was just pruned. The drain lands on
		// the compaction path — backpressure never touches Append — and
		// is amortised: a drain is a durability barrier (it forces the
		// deferred sync point), so pruning waits until enough checkpoints
		// are prunable to be worth one.
		if err := l.store.Drain(); err == nil {
			l.cpMu.Lock()
			l.pruneCheckpointsLocked()
			l.cpMu.Unlock()
		}
	}
	return CompactResult{
		Checkpoint:     sc,
		Released:       released,
		Resident:       l.store.Resident(),
		SpilledRecords: l.SpilledRecords(),
	}, nil
}

// pruneDrainMin amortises checkpoint pruning across compactions: each
// prune needs the spill pipeline drained first, so it waits until at
// least this many checkpoints would actually be dropped.
const pruneDrainMin = 64

// prunableCheckpoints counts the checkpoints a prune would drop right
// now (the complement of pruneCheckpointsLocked's retain predicate).
func (l *Ledger) prunableCheckpoints() int {
	k := uint64(l.opts.Retention.CheckpointKeepEvery)
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	if k <= 1 || l.anchor == nil || len(l.checkpoints) == 0 {
		return 0
	}
	anchorSeq := l.anchor.Checkpoint.Sequence
	latest := l.checkpoints[len(l.checkpoints)-1].Checkpoint.Sequence
	n := 0
	for i := range l.checkpoints {
		seq := l.checkpoints[i].Checkpoint.Sequence
		if seq%k != 0 && seq < anchorSeq && seq != latest {
			n++
		}
	}
	return n
}

// pruneCheckpointsLocked drops superseded checkpoints per
// Retention.CheckpointKeepEvery: below the compaction anchor only every
// K-th checkpoint and the latest survive; everything at or above the
// anchor is untouched (any of it may anchor recovery or a truncated
// dump). The surviving set is mirrored into the store's persisted log.
// Caller holds cpMu; the store must be drained first (see sealLocked).
func (l *Ledger) pruneCheckpointsLocked() {
	k := uint64(l.opts.Retention.CheckpointKeepEvery)
	if k <= 1 || l.anchor == nil || len(l.checkpoints) == 0 {
		return
	}
	anchorSeq := l.anchor.Checkpoint.Sequence
	latest := l.checkpoints[len(l.checkpoints)-1].Checkpoint.Sequence
	retained := l.checkpoints[:0]
	pruned := false
	for i := range l.checkpoints {
		seq := l.checkpoints[i].Checkpoint.Sequence
		if seq%k == 0 || seq >= anchorSeq || seq == latest {
			retained = append(retained, l.checkpoints[i])
		} else {
			pruned = true
		}
	}
	if !pruned {
		return
	}
	l.checkpoints = retained
	if p, ok := l.store.(checkpointPruner); ok {
		if err := p.pruneCheckpoints(retained); err != nil {
			l.cpFailures++
			l.cpLastErr = err
		}
	}
}

// Anchor returns the ledger's current truncation anchor: the checkpoint
// the last compaction sealed to (records below it may no longer be
// resident). ok is false while no compaction has happened. Anchor drains
// the spill pipeline first: when it returns, everything the anchor
// vouches for is durable — callers (and tests) use it as the barrier
// before inspecting or verifying the spill directory.
func (l *Ledger) Anchor() (SignedCheckpoint, bool) {
	_ = l.store.Drain()
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	if l.anchor == nil {
		return SignedCheckpoint{}, false
	}
	return l.anchor.clone(), true
}

// LatestCheckpoint returns the most recent signed checkpoint.
func (l *Ledger) LatestCheckpoint() (SignedCheckpoint, bool) {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	if len(l.checkpoints) == 0 {
		return SignedCheckpoint{}, false
	}
	return l.checkpoints[len(l.checkpoints)-1].clone(), true
}

// DumpOptions select what a dump contains.
type DumpOptions struct {
	// Truncated anchors the dump at the ledger's compaction anchor: the
	// anchor checkpoint travels in the dump, records it covers are
	// omitted, and each shard's chain starts at the anchor's counts,
	// chaining from the anchor's carried-forward heads. Without an anchor
	// (no compaction yet) the dump is the full from-genesis one.
	Truncated bool
	// Binary selects the format-v3 container for WriteDump: the same
	// header JSON framed behind a magic, records as length-prefixed
	// binary (codec.go) instead of JSON — roughly 6x smaller and
	// proportionally faster to verify. VerifyStream reads both formats.
	Binary bool
}

// dumpCapture is a consistent snapshot of what a dump will contain, taken
// under compactMu so no compaction can move the anchor or release records
// between the header and the record stream.
type dumpCapture struct {
	anchor *SignedCheckpoint
	cps    []SignedCheckpoint
	starts []uint64 // per-shard first dumped sequence
	ends   []uint64 // per-shard exclusive end (lane next at capture)
}

// capture snapshots the dump contents. Checkpoints are snapshotted before
// lane ends; records only ever append, so every captured checkpoint covers
// a prefix of the captured range and the dump always verifies — appends
// landing in between show up as not-yet-checkpointed tail records.
//
// The caller holds compactMu across capture AND the store.Snapshot calls
// that pin the captured range (a compaction would otherwise release
// records between the two); once the snapshots exist the lock is no
// longer needed — replay is lock-free.
func (l *Ledger) capture(opts DumpOptions) dumpCapture {
	c := dumpCapture{
		starts: make([]uint64, len(l.lanes)),
		ends:   make([]uint64, len(l.lanes)),
	}
	l.cpMu.Lock()
	anchored := opts.Truncated && l.anchor != nil
	if !anchored && l.anchor != nil && !l.store.Persistent() {
		// A memory store already dropped sealed records: a from-genesis
		// dump is no longer possible, so every dump is anchored.
		anchored = true
	}
	if anchored {
		a := l.anchor.clone()
		c.anchor = &a
		for i := range l.checkpoints {
			if l.checkpoints[i].Checkpoint.Sequence > a.Checkpoint.Sequence {
				c.cps = append(c.cps, l.checkpoints[i].clone())
			}
		}
		for i := range c.starts {
			c.starts[i] = a.Checkpoint.Heads[i].Count
		}
	} else {
		for i := range l.checkpoints {
			c.cps = append(c.cps, l.checkpoints[i].clone())
		}
	}
	l.cpMu.Unlock()
	for i := range l.lanes {
		ln := &l.lanes[i]
		ln.mu.Lock()
		c.ends[i] = ln.next
		ln.mu.Unlock()
	}
	return c
}

// Dump serialises the ledger for offline verification: the dumped records
// in deterministic merge order (ascending shard, then lane-local
// sequence), the checkpoints covering them, and the attested identity
// (public key and measurement) verification runs against. With a file
// store the dump is the full from-genesis ledger (spilled segments are
// read back); a memory store that has compacted produces a truncated dump
// anchored at the compaction checkpoint. Dump materialises every record —
// use WriteDump to stream a large ledger in O(segment) memory.
func (l *Ledger) Dump() (*Dump, error) {
	return l.dump(DumpOptions{})
}

// DumpTruncated serialises the bounded live view: the tail above the
// compaction anchor, with the anchor vouching for everything below it.
func (l *Ledger) DumpTruncated() (*Dump, error) {
	return l.dump(DumpOptions{Truncated: true})
}

// snapshotDump captures the dump header and pins the record range, all
// under compactMu — the only phase that needs it. Replaying the returned
// snapshots is lock-free, so a slow dump consumer can never stall
// compaction (and with it, the retention bound).
func (l *Ledger) snapshotDump(opts DumpOptions) (dumpCapture, []func(func(*Record) error) error, error) {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	// Drain the spill pipeline so the dump only ever reflects seals that
	// are durable — a verifier handed the dump and the spill directory
	// must find the same horizon in both. compactMu is already held, so
	// no new seal can start mid-drain.
	if err := l.store.Drain(); err != nil {
		return dumpCapture{}, nil, fmt.Errorf("accounting: drain spill writer: %w", err)
	}
	c := l.capture(opts)
	snaps := make([]func(func(*Record) error) error, len(l.lanes))
	for i := range l.lanes {
		s, err := l.store.Snapshot(uint32(i), c.starts[i], c.ends[i])
		if err != nil {
			return dumpCapture{}, nil, err
		}
		snaps[i] = s
	}
	return c, snaps, nil
}

func (l *Ledger) dump(opts DumpOptions) (*Dump, error) {
	pub, err := MarshalPublicKey(l.enclave.PublicKey())
	if err != nil {
		return nil, err
	}
	c, snaps, err := l.snapshotDump(opts)
	if err != nil {
		return nil, err
	}
	d := &Dump{
		Format:      DumpFormat,
		Shards:      len(l.lanes),
		Measurement: l.enclave.Measurement(),
		PublicKey:   pub,
		Anchor:      c.anchor,
		Checkpoints: c.cps,
		Pruned:      capturedPruned(c.anchor, c.cps),
	}
	for i := range snaps {
		err := snaps[i](func(r *Record) error {
			rec := *r
			if rec.Signature != nil {
				// Detach eager signatures from store-internal storage.
				rec.Signature = append([]byte(nil), rec.Signature...)
			}
			d.Records = append(d.Records, rec)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// WriteDump streams the dump to w in O(segment + resident) memory: the
// header, anchor and checkpoints first, then records shard by shard — the
// resident suffix from a point-in-time copy, sealed segments straight
// from the spill files one frame at a time. The snapshot phase is the
// only part that takes ledger locks: a consumer draining the stream
// slowly (a curl of GET /ledger over a bad link) never blocks appends or
// compaction. The emitted layout always keeps "records" last, which is
// what lets VerifyStream verify it without materialising the record
// array.
func (l *Ledger) WriteDump(w io.Writer, opts DumpOptions) error {
	pub, err := MarshalPublicKey(l.enclave.PublicKey())
	if err != nil {
		return err
	}
	c, snaps, err := l.snapshotDump(opts)
	if err != nil {
		return err
	}
	if opts.Binary {
		return writeBinaryDump(w, l, pub, c, snaps)
	}

	// The header serialises through the Dump struct itself — one field
	// set, one set of tags, shared with Dump()/ParseDump — with an empty
	// (non-nil) Records slice as the last field. Stripping the closing
	// "]}" leaves the stream positioned inside the records array, which
	// is then filled one record at a time.
	head := &Dump{
		Format:      DumpFormat,
		Shards:      len(l.lanes),
		Measurement: l.enclave.Measurement(),
		PublicKey:   pub,
		Anchor:      c.anchor,
		Checkpoints: c.cps,
		Pruned:      capturedPruned(c.anchor, c.cps),
		Records:     []Record{},
	}
	hj, err := json.Marshal(head)
	if err != nil {
		return err
	}
	if !bytes.HasSuffix(hj, []byte(`"records":[]}`)) {
		// Records must stay the last Dump field — VerifyStream depends on
		// the streaming layout.
		return fmt.Errorf("accounting: dump header no longer ends with the records array")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(hj[:len(hj)-2]); err != nil {
		return err
	}
	first := true
	for i := range snaps {
		err := snaps[i](func(r *Record) error {
			if !first {
				if _, err := bw.WriteString(","); err != nil {
					return err
				}
			}
			first = false
			j, err := json.Marshal(r)
			if err != nil {
				return err
			}
			_, err = bw.Write(j)
			return err
		})
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// capturedPruned reports whether the captured checkpoint sequence has
// gaps — pruning removed entries — which the dump header must declare so
// the verifier knows to tolerate exactly those gaps (and no others).
func capturedPruned(anchor *SignedCheckpoint, cps []SignedCheckpoint) bool {
	prev, have := uint64(0), false
	if anchor != nil {
		prev, have = anchor.Checkpoint.Sequence, true
	}
	for i := range cps {
		seq := cps[i].Checkpoint.Sequence
		if have {
			if seq != prev+1 {
				return true
			}
		} else if i == 0 && seq != 0 {
			return true
		}
		prev, have = seq, true
	}
	return false
}

// writeBinaryDump streams the format-v3 container: magic, length-prefixed
// header JSON (the Dump struct with an empty records array), then each
// record as u32 length + binary encoding, closed by a zero length.
func writeBinaryDump(w io.Writer, l *Ledger, pub []byte, c dumpCapture, snaps []func(func(*Record) error) error) error {
	head := &Dump{
		Format:      DumpFormatV3,
		Shards:      len(l.lanes),
		Measurement: l.enclave.Measurement(),
		PublicKey:   pub,
		Anchor:      c.anchor,
		Checkpoints: c.cps,
		Pruned:      capturedPruned(c.anchor, c.cps),
		Records:     []Record{},
	}
	hj, err := json.Marshal(head)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(dumpMagicV3[:]); err != nil {
		return err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(hj)))
	if _, err := bw.Write(b[:]); err != nil {
		return err
	}
	if _, err := bw.Write(hj); err != nil {
		return err
	}
	var rbuf []byte
	for i := range snaps {
		err := snaps[i](func(r *Record) error {
			rbuf = appendRecordBin(rbuf[:0], r)
			binary.LittleEndian.PutUint32(b[:], uint32(len(rbuf)))
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
			_, err := bw.Write(rbuf)
			return err
		})
		if err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(b[:], 0)
	if _, err := bw.Write(b[:]); err != nil {
		return err
	}
	return bw.Flush()
}
