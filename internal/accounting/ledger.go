// Sharded, hash-chained, batch-signed usage ledger (paper §3.3, §3.5).
//
// PR 2 left the accounting enclave with one mutex around a global sequence
// counter and a full ECDSA signature per record — the accounting layer, not
// the interpreter, capped concurrent throughput. This file replaces that
// with the structure shielded middleboxes use to scale enclave crypto:
//
//   - records are partitioned into shards, each shard an independent
//     sequence lane with its own lock, lane-local gap-free sequence numbers
//     and its own hash chain (every record carries the previous record's
//     hash, so any retroactive edit breaks the chain);
//   - signing moves off the hot path: a Checkpoint covers the contiguous
//     prefix of every shard with ONE signature ("either periodically or
//     upon request", §3.3/§3.5), and checkpoints themselves are
//     hash-chained so none can be dropped unnoticed;
//   - per-record eager signing stays available via LedgerOptions.EagerSign
//     as the differential-testing baseline (the PR 2 behaviour, minus the
//     global lock).
//
// verify.go replays a serialised ledger offline against the attested key.
package accounting

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"acctee/internal/sgx"
)

// Record is one chained ledger entry: a usage log bound to its shard and to
// the previous record in the shard's chain.
type Record struct {
	// Shard is the sequence lane this record belongs to.
	Shard uint32 `json:"shard"`
	// Log is the usage record; Log.Sequence is the lane-local, gap-free
	// sequence number (0, 1, 2, … per shard).
	Log UsageLog `json:"log"`
	// PrevHash chains to the previous record of the same shard (zero for
	// the first record of a lane).
	PrevHash [32]byte `json:"prevHash"`
	// Hash is SHA-256 over Marshal() — the lane's new chain head.
	Hash [32]byte `json:"hash"`
	// Signature is a per-record enclave signature over Marshal(), set only
	// under LedgerOptions.EagerSign.
	Signature []byte `json:"signature,omitempty"`
}

// recordMarshalSize is the exact byte length of a marshalled Record body.
const recordMarshalSize = 4 + 32 + MarshalSize

// Marshal serialises the signed/hashed portion of a record: shard id, the
// previous chain hash, and the usage log.
func (r *Record) Marshal() []byte {
	buf := make([]byte, 0, recordMarshalSize)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], r.Shard)
	buf = append(buf, b[:]...)
	buf = append(buf, r.PrevHash[:]...)
	return r.Log.AppendMarshal(buf)
}

// ComputeHash recomputes the record's chain hash from its contents.
func (r *Record) ComputeHash() [32]byte { return sha256.Sum256(r.Marshal()) }

// Receipt is what a caller holds after appending a record: enough to locate
// the record and to later check it is covered by a signed checkpoint.
type Receipt struct {
	Shard uint32 `json:"shard"`
	// Sequence is the lane-local sequence number.
	Sequence uint64 `json:"sequence"`
	// ChainHead is the appended record's hash — the shard's chain head at
	// append time.
	ChainHead [32]byte `json:"chainHead"`
}

// ShardHead is one shard's covered state inside a checkpoint: the first
// Count records of the shard, whose chain head is Head.
type ShardHead struct {
	Shard uint32 `json:"shard"`
	// Count is the number of records covered (sequence numbers 0..Count-1).
	Count uint64 `json:"count"`
	// Head is the chain head after Count records (zero when Count is 0).
	Head [32]byte `json:"head"`
}

// Checkpoint covers a contiguous prefix of every shard with a single
// signature: per-shard chain heads in ascending shard order (the
// deterministic merge order) plus totals aggregated over all covered
// records. Checkpoints are themselves hash-chained via PrevHash.
type Checkpoint struct {
	// Sequence numbers checkpoints (0, 1, 2, …).
	Sequence uint64 `json:"sequence"`
	// PrevHash chains to the previous checkpoint (zero for the first).
	PrevHash [32]byte `json:"prevHash"`
	// Heads lists every shard's covered prefix, ascending by shard id.
	Heads []ShardHead `json:"heads"`
	// Totals aggregates the covered records deterministically: sums for
	// counters and integrals, max for peak memory, Sequence = covered
	// record count. WorkloadHash and Policy are zero (records carry them).
	Totals UsageLog `json:"totals"`
}

// Marshal serialises the checkpoint for signing and chaining.
func (c *Checkpoint) Marshal() []byte {
	buf := make([]byte, 0, 8+32+8+len(c.Heads)*(4+8+32)+MarshalSize)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], c.Sequence)
	buf = append(buf, b[:]...)
	buf = append(buf, c.PrevHash[:]...)
	binary.LittleEndian.PutUint64(b[:], uint64(len(c.Heads)))
	buf = append(buf, b[:]...)
	for _, h := range c.Heads {
		binary.LittleEndian.PutUint32(b[:4], h.Shard)
		buf = append(buf, b[:4]...)
		binary.LittleEndian.PutUint64(b[:], h.Count)
		buf = append(buf, b[:]...)
		buf = append(buf, h.Head[:]...)
	}
	return c.Totals.AppendMarshal(buf)
}

// Hash is the checkpoint's chain hash.
func (c *Checkpoint) Hash() [32]byte { return sha256.Sum256(c.Marshal()) }

// Covered returns the total number of records the checkpoint covers.
func (c *Checkpoint) Covered() uint64 {
	var n uint64
	for _, h := range c.Heads {
		n += h.Count
	}
	return n
}

// SignedCheckpoint is a checkpoint signed by the accounting enclave; after
// attestation binds the key to the measurement, one signature vouches for
// every record the checkpoint covers.
type SignedCheckpoint struct {
	Checkpoint  Checkpoint      `json:"checkpoint"`
	Measurement sgx.Measurement `json:"measurement"`
	Signature   []byte          `json:"signature"`
}

// ErrBadCheckpointSignature indicates a forged or corrupted checkpoint.
var ErrBadCheckpointSignature = errors.New("accounting: checkpoint signature invalid")

// clone deep-copies the checkpoint's slices, so handing it to a caller can
// never alias ledger-internal state (a mutated Heads entry or signature
// byte must corrupt only the caller's copy).
func (sc SignedCheckpoint) clone() SignedCheckpoint {
	sc.Checkpoint.Heads = append([]ShardHead(nil), sc.Checkpoint.Heads...)
	sc.Signature = append([]byte(nil), sc.Signature...)
	return sc
}

// SignCheckpoint signs a checkpoint with the enclave's key.
func SignCheckpoint(e *sgx.Enclave, c Checkpoint) (SignedCheckpoint, error) {
	sig, err := e.Sign(c.Marshal())
	if err != nil {
		return SignedCheckpoint{}, fmt.Errorf("accounting: sign checkpoint: %w", err)
	}
	return SignedCheckpoint{Checkpoint: c, Measurement: e.Measurement(), Signature: sig}, nil
}

// VerifyCheckpointSig checks a signed checkpoint against the attested key
// and expected measurement.
func VerifyCheckpointSig(sc SignedCheckpoint, pub *ecdsa.PublicKey, expected sgx.Measurement) error {
	if sc.Measurement != expected {
		return sgx.ErrWrongMeasurement
	}
	if !sgx.VerifyBy(pub, sc.Checkpoint.Marshal(), sc.Signature) {
		return ErrBadCheckpointSignature
	}
	return nil
}

// ErrNoRecordSignature marks a record without a per-record signature: the
// ledger ran in the default batched mode, where records are vouched for by
// checkpoints (VerifyCheckpointSig / VerifyDump), not individually.
var ErrNoRecordSignature = errors.New("accounting: record carries no per-record signature (batched mode; verify via a checkpoint)")

// VerifyRecordSig checks a record's eager per-record signature and that its
// stored hash matches its contents. Records from a batched-mode ledger
// carry no signature and are rejected with ErrNoRecordSignature — their
// authenticity comes from a covering checkpoint instead.
func VerifyRecordSig(r Record, pub *ecdsa.PublicKey) error {
	if r.Hash != r.ComputeHash() {
		return fmt.Errorf("accounting: record %d/%d hash mismatch", r.Shard, r.Log.Sequence)
	}
	if len(r.Signature) == 0 {
		return ErrNoRecordSignature
	}
	if !sgx.VerifyBy(pub, r.Marshal(), r.Signature) {
		return ErrBadLogSignature
	}
	return nil
}

// LedgerOptions configure a ledger.
//
// Retention: every appended record is kept in memory for receipt lookup
// and Dump — a deliberate (unbounded) choice at this stage. Checkpoints
// make covered prefixes independently verifiable, so bounded retention
// (persist-and-drop with head carry-forward) is the designated follow-up
// for long-lived gateways; see ROADMAP.
type LedgerOptions struct {
	// Shards is the number of independent sequence lanes (default: one per
	// CPU, capped at 16). Concurrent appends to different lanes never
	// contend on a lock.
	Shards int
	// EagerSign signs every record at append time — the per-record
	// signing baseline kept for differential tests. Checkpoints still work.
	EagerSign bool
	// CheckpointInterval, when positive, starts a goroutine that signs a
	// checkpoint periodically (the paper's "periodically"; Checkpoint()
	// remains the "upon request" path). Close() stops it.
	CheckpointInterval time.Duration
}

// withDefaults fills zero values.
func (o LedgerOptions) withDefaults() LedgerOptions {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 16 {
			o.Shards = 16
		}
	}
	return o
}

// lane is one shard: its own lock, gap-free sequence, chain head, retained
// records and running totals. Lanes are padded apart by their own mutexes;
// appends to different lanes proceed fully in parallel.
type lane struct {
	mu      sync.Mutex
	records []Record
	head    [32]byte
	next    uint64
	totals  UsageLog // aggregated as in Checkpoint.Totals
}

// Ledger is the sharded, hash-chained usage ledger.
type Ledger struct {
	enclave *sgx.Enclave
	opts    LedgerOptions
	lanes   []*lane
	rr      atomic.Uint64 // round-robin shard pick

	cpMu        sync.Mutex
	checkpoints []SignedCheckpoint
	cpFailures  uint64
	cpLastErr   error

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewLedger creates a ledger signing with the given enclave key.
func NewLedger(e *sgx.Enclave, opts LedgerOptions) *Ledger {
	opts = opts.withDefaults()
	l := &Ledger{
		enclave: e,
		opts:    opts,
		lanes:   make([]*lane, opts.Shards),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := range l.lanes {
		l.lanes[i] = &lane{}
	}
	if opts.CheckpointInterval > 0 {
		go l.checkpointLoop(opts.CheckpointInterval)
	} else {
		close(l.done)
	}
	return l
}

// checkpointLoop signs checkpoints periodically until Close. Failures are
// recorded (see CheckpointFailures) — silent degradation of the trust
// guarantee would otherwise be invisible to the operator.
func (l *Ledger) checkpointLoop(every time.Duration) {
	defer close(l.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if _, err := l.Checkpoint(); err != nil {
				l.cpMu.Lock()
				l.cpFailures++
				l.cpLastErr = err
				l.cpMu.Unlock()
			}
		}
	}
}

// CheckpointFailures reports how many periodic checkpoint attempts failed
// and the most recent error — a batched-mode deployment should alarm on a
// non-zero count, since records appended after the last good checkpoint
// are not yet vouched for by any signature.
func (l *Ledger) CheckpointFailures() (uint64, error) {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	return l.cpFailures, l.cpLastErr
}

// Close stops the periodic checkpoint goroutine (if any). The ledger stays
// readable; further appends are not prevented.
func (l *Ledger) Close() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// Options returns the ledger's configuration (after defaulting).
func (l *Ledger) Options() LedgerOptions { return l.opts }

// Shards returns the number of sequence lanes.
func (l *Ledger) Shards() int { return len(l.lanes) }

// aggregate folds one covered log into running totals using the
// deterministic checkpoint aggregation rule.
func aggregate(t *UsageLog, u *UsageLog) {
	t.WeightedInstructions += u.WeightedInstructions
	if u.PeakMemoryBytes > t.PeakMemoryBytes {
		t.PeakMemoryBytes = u.PeakMemoryBytes
	}
	t.MemoryIntegral += u.MemoryIntegral
	t.IOBytesIn += u.IOBytesIn
	t.IOBytesOut += u.IOBytesOut
	t.SimulatedCycles += u.SimulatedCycles
	t.Sequence++ // covered record count
}

// merge folds one lane's totals into cross-shard totals.
func merge(t *UsageLog, lt *UsageLog) {
	t.WeightedInstructions += lt.WeightedInstructions
	if lt.PeakMemoryBytes > t.PeakMemoryBytes {
		t.PeakMemoryBytes = lt.PeakMemoryBytes
	}
	t.MemoryIntegral += lt.MemoryIntegral
	t.IOBytesIn += lt.IOBytesIn
	t.IOBytesOut += lt.IOBytesOut
	t.SimulatedCycles += lt.SimulatedCycles
	t.Sequence += lt.Sequence
}

// Append chains a usage log onto a round-robin-chosen shard. The log's
// Sequence field is overwritten with the lane-local sequence number.
func (l *Ledger) Append(log UsageLog) (Receipt, Record, error) {
	shard := uint32(l.rr.Add(1)-1) % uint32(len(l.lanes))
	return l.AppendShard(shard, log)
}

// AppendShard chains a usage log onto an explicit shard lane. Only the
// lane's own lock is taken. Under EagerSign the ECDSA signature is computed
// while holding it — that serialises the lane exactly like the PR 2
// per-record baseline this mode reproduces, and guarantees a concurrent
// Dump or Record never observes an eager record without its signature.
// Other lanes keep appending in parallel either way.
func (l *Ledger) AppendShard(shard uint32, log UsageLog) (Receipt, Record, error) {
	if int(shard) >= len(l.lanes) {
		return Receipt{}, Record{}, fmt.Errorf("accounting: shard %d out of range (%d lanes)", shard, len(l.lanes))
	}
	ln := l.lanes[shard]
	ln.mu.Lock()
	defer ln.mu.Unlock()
	log.Sequence = ln.next
	rec := Record{Shard: shard, Log: log, PrevHash: ln.head}
	rec.Hash = rec.ComputeHash()
	if l.opts.EagerSign {
		sig, err := l.enclave.Sign(rec.Marshal())
		if err != nil {
			return Receipt{}, Record{}, fmt.Errorf("accounting: eager sign: %w", err)
		}
		rec.Signature = sig
	}
	ln.head = rec.Hash
	ln.next++
	aggregate(&ln.totals, &log)
	ln.records = append(ln.records, rec)
	return Receipt{Shard: shard, Sequence: rec.Log.Sequence, ChainHead: rec.Hash}, rec, nil
}

// Record returns a retained record by shard and lane-local sequence.
func (l *Ledger) Record(shard uint32, seq uint64) (Record, bool) {
	if int(shard) >= len(l.lanes) {
		return Record{}, false
	}
	ln := l.lanes[shard]
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if seq >= uint64(len(ln.records)) {
		return Record{}, false
	}
	return ln.records[seq], true
}

// Totals returns the live (unsigned) aggregate over all appended records,
// merged across shards in ascending shard order.
func (l *Ledger) Totals() UsageLog {
	var t UsageLog
	for _, ln := range l.lanes {
		ln.mu.Lock()
		lt := ln.totals
		ln.mu.Unlock()
		merge(&t, &lt)
	}
	return t
}

// Checkpoint signs the current state of every lane with one signature (the
// paper's "upon request" log; the periodic goroutine calls it too). The
// covered prefix of each lane is captured under that lane's lock; lanes
// keep accepting appends while the signature is computed. If no lane
// advanced since the last checkpoint, that checkpoint is returned instead
// of signing a duplicate — an idle gateway with periodic checkpointing
// must not grow its checkpoint chain with zero-information entries.
func (l *Ledger) Checkpoint() (SignedCheckpoint, error) {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()

	cp := Checkpoint{
		Sequence: uint64(len(l.checkpoints)),
		Heads:    make([]ShardHead, len(l.lanes)),
	}
	for i, ln := range l.lanes {
		ln.mu.Lock()
		cp.Heads[i] = ShardHead{Shard: uint32(i), Count: ln.next, Head: ln.head}
		lt := ln.totals
		ln.mu.Unlock()
		merge(&cp.Totals, &lt)
	}
	if n := len(l.checkpoints); n > 0 {
		last := &l.checkpoints[n-1]
		same := true
		for i := range cp.Heads {
			if cp.Heads[i] != last.Checkpoint.Heads[i] {
				same = false
				break
			}
		}
		if same {
			return last.clone(), nil
		}
		cp.PrevHash = last.Checkpoint.Hash()
	}
	sc, err := SignCheckpoint(l.enclave, cp)
	if err != nil {
		return SignedCheckpoint{}, err
	}
	l.checkpoints = append(l.checkpoints, sc)
	return sc.clone(), nil
}

// LatestCheckpoint returns the most recent signed checkpoint.
func (l *Ledger) LatestCheckpoint() (SignedCheckpoint, bool) {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	if len(l.checkpoints) == 0 {
		return SignedCheckpoint{}, false
	}
	return l.checkpoints[len(l.checkpoints)-1].clone(), true
}

// Dump serialises the ledger for offline verification: every retained
// record in deterministic merge order (ascending shard, then lane-local
// sequence), every checkpoint, and the attested identity (public key and
// measurement) verification runs against.
//
// Dump is safe during concurrent appends and checkpointing: checkpoints
// are snapshotted FIRST, then lane records. Records only ever append, so
// every captured checkpoint covers a prefix of the captured records and
// the dump always verifies; appends that land in between simply show up as
// not-yet-checkpointed tail records.
func (l *Ledger) Dump() (*Dump, error) {
	pub, err := MarshalPublicKey(l.enclave.PublicKey())
	if err != nil {
		return nil, err
	}
	d := &Dump{
		Format:      DumpFormat,
		Shards:      len(l.lanes),
		Measurement: l.enclave.Measurement(),
		PublicKey:   pub,
	}
	l.cpMu.Lock()
	for i := range l.checkpoints {
		d.Checkpoints = append(d.Checkpoints, l.checkpoints[i].clone())
	}
	l.cpMu.Unlock()
	for _, ln := range l.lanes {
		ln.mu.Lock()
		d.Records = append(d.Records, ln.records...)
		ln.mu.Unlock()
	}
	for i := range d.Records {
		// Detach eager signatures from ledger-internal storage.
		if sig := d.Records[i].Signature; sig != nil {
			d.Records[i].Signature = append([]byte(nil), sig...)
		}
	}
	sort.SliceStable(d.Records, func(i, j int) bool {
		a, b := &d.Records[i], &d.Records[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Log.Sequence < b.Log.Sequence
	})
	return d, nil
}
