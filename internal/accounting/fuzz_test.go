package accounting

// Fuzz harness for the binary spill-frame decoder. The decoder fronts
// every byte that crash recovery and the offline verifier read off disk,
// so it must never panic and never over-allocate, whatever a hostile or
// half-written file feeds it. Run with:
//
//	go test -fuzz=FuzzBinFrameDecode -fuzztime=30s ./internal/accounting
//
// The committed seed corpus (testdata/fuzz/FuzzBinFrameDecode) covers a
// valid single-record frame, a signed batch, truncations at interesting
// offsets, and single-bit flips.

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

func FuzzBinFrameDecode(f *testing.F) {
	// Valid frames: single record, batch, eager-signed batch.
	f.Add(encodeBinFrame(codecFrame(1, false)))
	f.Add(encodeBinFrame(codecFrame(8, false)))
	f.Add(encodeBinFrame(codecFrame(3, true)))
	// Truncations: inside the length prefix, inside the payload, one byte
	// short of complete — the torn-tail classification boundaries.
	full := encodeBinFrame(codecFrame(2, false))
	f.Add(full[:3])
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-1])
	// Bit flips in the length prefix, payload, and CRC.
	for _, pos := range []int{0, 10, len(full) - 2} {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x80
		f.Add(mut)
	}
	// Two frames back to back, second one torn.
	f.Add(append(append([]byte(nil), full...), full[:7]...))
	// Degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var consumed int64
		for {
			fr, n, err := readBinFrame(br)
			if err != nil {
				// Whatever the input, the decoder must terminate with
				// io.EOF (clean), errTornFrame (cut short), or a hard
				// decode error — never a panic (caught by the harness)
				// and never an unbounded allocation (caught by OOM).
				if err != io.EOF && err != errTornFrame && err == nil {
					t.Fatalf("impossible error state: %v", err)
				}
				break
			}
			if fr == nil || len(fr.Records) == 0 {
				t.Fatal("nil or empty frame returned without error")
			}
			if n <= 8 {
				t.Fatalf("frame of %d records consumed only %d bytes", len(fr.Records), n)
			}
			consumed += n
			if consumed > int64(len(data)) {
				t.Fatalf("decoder consumed %d bytes of a %d-byte input", consumed, len(data))
			}
			// A frame the decoder accepts must survive a re-encode: the
			// codec is its own round-trip oracle.
			re := encodeBinFrame(fr)
			rt, _, err := readBinFrame(bufio.NewReader(bytes.NewReader(re)))
			if err != nil {
				t.Fatalf("re-encoded accepted frame does not decode: %v", err)
			}
			if !framesEqual(fr, rt) {
				t.Fatal("accepted frame does not round-trip through the codec")
			}
		}
	})
}
