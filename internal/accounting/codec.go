// Binary wire codecs for the spill store (format v2) and the ledger dump
// (format v3).
//
// PR 5's spill frames were one JSON object per line — simple, greppable,
// and the reason BENCH_ledger.json showed spill-mode retention collapsing
// to ~0.18x of bounded-in-memory: every sealed record paid ~1.1 KB of JSON
// marshalling on the compaction path. The binary frame reuses the pinned
// serialisations the hash chain is already built on (Record.Marshal,
// UsageLog.AppendMarshal — layouts guarded by TestMarshalPinned), so the
// codec adds no second source of truth about byte layout.
//
// Spill frame (format "acctee-spill/v2", one frame per seal):
//
//	u32  payloadLen          little-endian, length of payload only
//	payload:
//	    u32  shard
//	    u64  base            first sequence in the frame
//	    u32  count           records in the frame (> 0)
//	    count × record:
//	        132 B  Record.Marshal()   (shard u32 | prevHash 32 | log 96)
//	         32 B  hash               the record's chain head
//	        u16    sigLen | sig       eager signature (0 for batched mode)
//	     32 B  head             chain head after the frame
//	     96 B  totals           running shard aggregate after the frame
//	u32  crc                 CRC-32C (Castagnoli) over payload
//
// Torn-tail rule (what crash recovery and the offline verifier both
// apply): a frame is *torn* if and only if the file ends before the
// advertised frame end (length prefix itself cut short, or fewer than
// payloadLen+4 bytes follow it) — the residue of a crash mid-append, cut
// and forgotten. A frame that is fully present but fails its CRC or its
// structural decode is *corruption* and always a hard error, even in tail
// position: a flipped byte can never demote itself to an honest crash.
//
// Dump container (format "acctee-ledger/v3"):
//
//	8 B  magic "ACCTDMP3"
//	u32  headerLen
//	headerLen B of JSON: the Dump struct with an empty records array —
//	     format, shards, measurement, publicKey, anchor, checkpoints,
//	     prunedCheckpoints all travel exactly as in the v2 JSON dump
//	repeated: u32 recLen | recLen B of binary record (layout above)
//	u32  0                   terminator
//
// VerifyStream autodetects the container by its first byte ('{' = JSON v2,
// 'A' of the magic = binary v3) and verifies both through the same
// incremental core.
package accounting

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// SpillFormatV1 is the PR 5 line-delimited JSON spill layout, still read
// (and, on a reopened v1 directory, written — a spill file never mixes
// codecs) but no longer created fresh.
const SpillFormatV1 = "acctee-spill/v1"

// SpillFormatV2 is the length-prefixed binary spill layout documented
// above. Fresh spill directories always use it.
const SpillFormatV2 = "acctee-spill/v2"

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// binRecordSize returns the encoded size of one record.
func binRecordSize(r *Record) int {
	return recordMarshalSize + 32 + 2 + len(r.Signature)
}

// appendRecordBin appends one record in the binary layout.
func appendRecordBin(buf []byte, r *Record) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], r.Shard)
	buf = append(buf, b[:]...)
	buf = append(buf, r.PrevHash[:]...)
	buf = r.Log.AppendMarshal(buf)
	buf = append(buf, r.Hash[:]...)
	if len(r.Signature) > 0xffff {
		// Unreachable for ECDSA signatures; guarded so the u16 length can
		// never silently truncate.
		panic("accounting: record signature exceeds 65535 bytes")
	}
	binary.LittleEndian.PutUint16(b[:2], uint16(len(r.Signature)))
	buf = append(buf, b[:2]...)
	return append(buf, r.Signature...)
}

// decodeRecordBin decodes one record, returning the bytes consumed.
func decodeRecordBin(b []byte) (Record, int, error) {
	var r Record
	if len(b) < recordMarshalSize+32+2 {
		return r, 0, fmt.Errorf("accounting: binary record truncated (%d bytes)", len(b))
	}
	r.Shard = binary.LittleEndian.Uint32(b)
	copy(r.PrevHash[:], b[4:36])
	log, err := UnmarshalUsageLog(b[36 : 36+MarshalSize])
	if err != nil {
		return r, 0, err
	}
	r.Log = log
	off := recordMarshalSize
	copy(r.Hash[:], b[off:off+32])
	off += 32
	sigLen := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+sigLen {
		return r, 0, fmt.Errorf("accounting: binary record signature truncated")
	}
	if sigLen > 0 {
		r.Signature = append([]byte(nil), b[off:off+sigLen]...)
	}
	off += sigLen
	return r, off, nil
}

// maxBinFramePayload bounds a frame's declared payload length so a
// hostile length prefix cannot size a multi-gigabyte allocation.
const maxBinFramePayload = 1 << 30

// encodeBinFrame serialises a spill frame (length prefix + payload + CRC).
func encodeBinFrame(fr *spillFrame) []byte {
	size := 4 + 8 + 4 + 32 + MarshalSize
	for i := range fr.Records {
		size += binRecordSize(&fr.Records[i])
	}
	buf := make([]byte, 4, 4+size+4)
	binary.LittleEndian.PutUint32(buf, uint32(size))
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], fr.Shard)
	buf = append(buf, b[:4]...)
	binary.LittleEndian.PutUint64(b[:], fr.Base)
	buf = append(buf, b[:]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(fr.Records)))
	buf = append(buf, b[:4]...)
	for i := range fr.Records {
		buf = appendRecordBin(buf, &fr.Records[i])
	}
	buf = append(buf, fr.Head[:]...)
	buf = fr.Totals.AppendMarshal(buf)
	binary.LittleEndian.PutUint32(b[:4], crc32.Checksum(buf[4:], castagnoli))
	return append(buf, b[:4]...)
}

// decodeBinFramePayload decodes a frame payload (CRC already checked).
func decodeBinFramePayload(payload []byte) (*spillFrame, error) {
	if len(payload) < 4+8+4+32+MarshalSize {
		return nil, fmt.Errorf("accounting: binary frame payload too short (%d bytes)", len(payload))
	}
	fr := &spillFrame{
		Shard: binary.LittleEndian.Uint32(payload),
		Base:  binary.LittleEndian.Uint64(payload[4:]),
	}
	count := binary.LittleEndian.Uint32(payload[12:])
	if count == 0 {
		return nil, fmt.Errorf("accounting: binary frame declares zero records")
	}
	rest := payload[16:]
	if uint64(count) > uint64(len(rest))/uint64(recordMarshalSize+32+2) {
		return nil, fmt.Errorf("accounting: binary frame declares %d records in %d bytes", count, len(rest))
	}
	fr.Records = make([]Record, 0, count)
	for i := uint32(0); i < count; i++ {
		rec, n, err := decodeRecordBin(rest)
		if err != nil {
			return nil, err
		}
		fr.Records = append(fr.Records, rec)
		rest = rest[n:]
	}
	if len(rest) != 32+MarshalSize {
		return nil, fmt.Errorf("accounting: binary frame has %d trailing bytes, want %d", len(rest), 32+MarshalSize)
	}
	copy(fr.Head[:], rest[:32])
	totals, err := UnmarshalUsageLog(rest[32:])
	if err != nil {
		return nil, err
	}
	fr.Totals = totals
	return fr, nil
}

// errTornFrame marks a frame cut short by the end of the file — the honest
// residue of a crash mid-append, distinct from corruption.
var errTornFrame = fmt.Errorf("accounting: torn binary frame at end of file")

// readBinFrame reads the next frame off r. It returns io.EOF cleanly
// between frames, errTornFrame when the file ends inside a frame, and a
// hard error for a complete frame whose CRC or structure is wrong.
func readBinFrame(r *bufio.Reader) (*spillFrame, int64, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, errTornFrame // length prefix itself cut short
	}
	payloadLen := binary.LittleEndian.Uint32(lenBuf[:])
	if payloadLen == 0 || payloadLen > maxBinFramePayload {
		return nil, 0, fmt.Errorf("accounting: binary frame declares %d-byte payload", payloadLen)
	}
	body := make([]byte, int(payloadLen)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, errTornFrame // file ends before the advertised frame end
	}
	payload := body[:payloadLen]
	wantCRC := binary.LittleEndian.Uint32(body[payloadLen:])
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, 0, fmt.Errorf("accounting: binary frame CRC mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	fr, err := decodeBinFramePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return fr, int64(4 + payloadLen + 4), nil
}

// dumpMagicV3 opens every binary (format v3) dump container.
var dumpMagicV3 = [8]byte{'A', 'C', 'C', 'T', 'D', 'M', 'P', '3'}

// maxBinDumpHeader bounds the declared header length of a binary dump.
const maxBinDumpHeader = 1 << 28

// maxBinDumpRecord bounds one encoded dump record (a record is ~166 bytes
// plus an optional ECDSA signature; anything near the bound is hostile).
const maxBinDumpRecord = 1 << 20
