//go:build !linux

package accounting

import "os"

// hintWriteback is advisory: platforms without sync_file_range rely on
// the OS's own writeback plus the hard sync points (fileStore.syncLocked).
func hintWriteback(*os.File, int64, int64) {}
