package accounting

// White-box tests for the binary spill codec (format v2) and the legacy
// JSON (format v1) compatibility path. These live inside the package to
// exercise encodeBinFrame/readBinFrame directly and to rewrite a spill
// directory down to the v1 layout byte-for-byte.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"acctee/internal/sgx"
)

func codecEnclave(t *testing.T) *sgx.Enclave {
	t.Helper()
	e, err := sgx.NewEnclave([]byte("acctee codec test"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func codecLog(i int) UsageLog {
	return UsageLog{
		WorkloadHash:         [32]byte{0xAB, byte(i)},
		WeightedInstructions: uint64(1000 + i),
		PeakMemoryBytes:      uint64(1<<16 + i),
		MemoryIntegral:       uint64(3 * i),
		IOBytesIn:            uint64(i),
		IOBytesOut:           uint64(2 * i),
		SimulatedCycles:      uint64(5 * i),
		Policy:               PeakMemory,
		Sequence:             uint64(i),
	}
}

func codecFrame(n int, withSig bool) *spillFrame {
	fr := &spillFrame{Shard: 3, Base: 40}
	var prev [32]byte
	var totals UsageLog
	for i := 0; i < n; i++ {
		r := Record{Shard: 3, Log: codecLog(40 + i), PrevHash: prev}
		r.Hash = r.ComputeHash()
		if withSig {
			r.Signature = bytes.Repeat([]byte{byte(i + 1)}, 70+i)
		}
		prev = r.Hash
		aggregate(&totals, &r.Log)
		fr.Records = append(fr.Records, r)
	}
	fr.Head = prev
	fr.Totals = totals
	return fr
}

func framesEqual(a, b *spillFrame) bool {
	if a.Shard != b.Shard || a.Base != b.Base || a.Head != b.Head ||
		a.Totals != b.Totals || len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		x, y := &a.Records[i], &b.Records[i]
		if x.Shard != y.Shard || x.Log != y.Log || x.PrevHash != y.PrevHash ||
			x.Hash != y.Hash || !bytes.Equal(x.Signature, y.Signature) {
			return false
		}
	}
	return true
}

func TestBinFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		withSig bool
	}{
		{"single", 1, false},
		{"batch", 8, false},
		{"signed", 5, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fr := codecFrame(tc.n, tc.withSig)
			enc := encodeBinFrame(fr)
			got, consumed, err := readBinFrame(bufio.NewReader(bytes.NewReader(enc)))
			if err != nil {
				t.Fatalf("readBinFrame: %v", err)
			}
			if consumed != int64(len(enc)) {
				t.Fatalf("consumed %d bytes, frame is %d", consumed, len(enc))
			}
			if !framesEqual(fr, got) {
				t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", fr, got)
			}
		})
	}
}

// TestBinFrameTornVsCorrupt pins the codec's central classification rule:
// a frame cut short by the end of the file is errTornFrame (honest crash
// residue, recoverable); a fully present frame with a flipped byte is a
// hard error at EVERY byte position — length prefix, payload, or CRC.
func TestBinFrameTornVsCorrupt(t *testing.T) {
	fr := codecFrame(4, true)
	enc := encodeBinFrame(fr)

	// Every proper prefix that is not empty is torn (or clean EOF at 0).
	for _, cut := range []int{1, 3, 4, 5, len(enc) / 2, len(enc) - 1} {
		_, _, err := readBinFrame(bufio.NewReader(bytes.NewReader(enc[:cut])))
		if err != errTornFrame {
			t.Fatalf("prefix of %d/%d bytes: got %v, want errTornFrame", cut, len(enc), err)
		}
	}
	if _, _, err := readBinFrame(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Fatalf("empty input: got %v, want io.EOF", err)
	}

	// Any single flipped byte in a complete frame must be a hard error —
	// never io.EOF, never errTornFrame, never a silent success.
	for pos := 0; pos < len(enc); pos++ {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x01
		got, _, err := readBinFrame(bufio.NewReader(bytes.NewReader(mut)))
		if err == nil {
			// A flip inside the length prefix can shrink the advertised
			// frame so the decode sees a shorter-but-complete frame; the
			// CRC (positioned by the same prefix) then fails. A flip may
			// also grow the frame past the buffer: that reads as torn on
			// a lone frame, which is exactly why recovery cross-checks
			// the truncation point against the checkpoint chain. Here a
			// nil error is only acceptable if the decode reproduced the
			// original frame (impossible for a flipped payload).
			if !framesEqual(fr, got) {
				t.Fatalf("flip at byte %d decoded successfully to a different frame", pos)
			}
			t.Fatalf("flip at byte %d round-tripped to the identical frame", pos)
		}
		if pos >= 4 && pos < len(enc)-4 && err == errTornFrame {
			// Payload flips never masquerade as torn: the length prefix
			// is intact, so the full advertised frame is present.
			t.Fatalf("flip at payload byte %d classified as torn tail", pos)
		}
	}
}

// TestBinFrameRejectsHostileHeader: a hostile length prefix or count must
// fail fast and bounded, not allocate gigabytes.
func TestBinFrameRejectsHostileHeader(t *testing.T) {
	var huge [8]byte
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF // ~4 GiB payload
	if _, _, err := readBinFrame(bufio.NewReader(bytes.NewReader(huge[:]))); err == nil || err == errTornFrame {
		t.Fatalf("4 GiB length prefix: got %v, want hard error", err)
	}
	// Valid CRC but count claims more records than the payload can hold.
	fr := codecFrame(1, false)
	enc := encodeBinFrame(fr)
	payload := append([]byte(nil), enc[4:len(enc)-4]...)
	payload[12] = 0xFF // count = 255 in a one-record payload
	if _, err := decodeBinFramePayload(payload); err == nil {
		t.Fatal("overflowing record count decoded without error")
	}
	if _, err := decodeBinFramePayload(payload[:8]); err == nil {
		t.Fatal("short payload decoded without error")
	}
	payload[12] = 0 // count = 0
	if _, err := decodeBinFramePayload(payload); err == nil {
		t.Fatal("zero-record frame decoded without error")
	}
}

// TestLegacyV1SpillReadWrite: a v1 (JSON-lines) spill directory must stay
// fully usable — recovery reads it, the reopened ledger KEEPS WRITING the
// JSON codec (a spill file never mixes codecs), and the offline verifier
// replays it. The v1 directory is produced by transcoding a fresh v2
// directory frame-for-frame, so both codecs cover identical chain state.
func TestLegacyV1SpillReadWrite(t *testing.T) {
	dir := t.TempDir()
	e := codecEnclave(t)
	opts := LedgerOptions{
		Shards:    2,
		Retention: RetentionPolicy{SegmentRecords: 4, SpillDir: dir},
	}
	l1, err := NewLedger(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit alternating shards: the test inspects both shard files, so
	// the populate must not depend on the affinity pick's lane choice.
	for i := 0; i < 16; i++ {
		if _, _, err := l1.AppendShard(uint32(i%2), codecLog(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l1.Compact(); err != nil {
		t.Fatal(err)
	}
	l1.Close()

	// Transcode the directory to the v1 layout: JSON frame lines and a
	// downgraded manifest format stamp.
	mPath := filepath.Join(dir, manifestName)
	mRaw, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var m spillManifest
	if err := json.Unmarshal(mRaw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Format != SpillFormatV2 {
		t.Fatalf("fresh spill dir stamped %q, want %q", m.Format, SpillFormatV2)
	}
	m.Format = SpillFormatV1
	if err := writeSpillManifest(mPath, &m); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < opts.Shards; shard++ {
		path := filepath.Join(dir, shardFileName(shard))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var jsonl bytes.Buffer
		br := bufio.NewReader(bytes.NewReader(raw))
		for {
			fr, _, err := readBinFrame(br)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("shard %d: %v", shard, err)
			}
			line, err := json.Marshal(fr)
			if err != nil {
				t.Fatal(err)
			}
			jsonl.Write(line)
			jsonl.WriteByte('\n')
		}
		if err := os.WriteFile(path, jsonl.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen: recovery must accept the v1 layout and carry on appending.
	l2, err := NewLedger(e, opts)
	if err != nil {
		t.Fatalf("reopening v1 spill dir: %v", err)
	}
	for i := 16; i < 24; i++ {
		if _, _, err := l2.AppendShard(uint32(i%2), codecLog(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	// The directory must still be pure v1: manifest stamp unchanged and
	// every shard file line-delimited JSON (first byte '{').
	mRaw, err = os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mRaw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Format != SpillFormatV1 {
		t.Fatalf("reopened v1 dir restamped to %q", m.Format)
	}
	for shard := 0; shard < opts.Shards; shard++ {
		raw, err := os.ReadFile(filepath.Join(dir, shardFileName(shard)))
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 || raw[0] != '{' || raw[len(raw)-1] != '\n' {
			t.Fatalf("shard %d of a v1 dir is not JSON lines after reopen", shard)
		}
		for _, line := range bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n")) {
			var fr spillFrame
			if err := json.Unmarshal(line, &fr); err != nil {
				t.Fatalf("shard %d: v1 frame line does not parse: %v", shard, err)
			}
		}
	}

	// And the whole mixed-generation directory verifies offline.
	res, err := VerifySpillDir(dir, VerifyOptions{Key: e.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 24 {
		t.Fatalf("v1 spill verification replayed %d records, want 24", res.Records)
	}
}
