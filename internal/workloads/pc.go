package workloads

import (
	"math"

	"acctee/internal/wasm"
)

// BuildPC builds the PC-algorithm workload (gene@home / pc-boinc): starting
// from a complete undirected graph over `vars` variables observed in
// `samples` synthetic expression samples, remove edges whose (partial)
// correlation is insignificant — order-0 tests on the correlation matrix,
// then order-1 tests conditioning on every other variable:
//
//	r_ij·k = (r_ij − r_ik·r_jk) / sqrt((1 − r_ik²)(1 − r_jk²))
//
// Exported: run() -> i64 = number of surviving edges * 2^32 + a hash of the
// adjacency matrix. Dominated by f64 arithmetic and data-dependent
// branching — a very different profile from the factorisation workload.
func BuildPC(vars, samples int) (*wasm.Module, error) {
	V, S := int32(vars), int32(samples)
	b := wasm.NewModule("pc")
	const (
		thr = 0.18 // significance threshold on |r|
	)
	// layout: data [S][V] f64, mean [V], sd [V], corr [V][V], adj [V][V] f64
	dataOff := int32(64)
	meanOff := dataOff + S*V*8
	sdOff := meanOff + V*8
	corrOff := sdOff + V*8
	adjOff := corrOff + V*V*8
	end := adjOff + V*V*8
	pages := uint32((end + wasm.PageSize - 1) / wasm.PageSize)
	b.Memory(pages, pages)

	f := b.Func("run", nil, vi64)
	i := f.Local(wasm.I32)
	j := f.Local(wasm.I32)
	l := f.Local(wasm.I32)
	acc := f.Local(wasm.F64)
	edges := f.Local(wasm.I64)
	hash := f.Local(wasm.I64)

	loadF := func(base int32, idx func()) {
		idx()
		f.I32Const(8).Op(wasm.OpI32Mul)
		f.Load(wasm.OpF64Load, uint32(base))
	}
	idx2 := func(a uint32, cols int32, bb uint32) func() {
		return func() {
			f.LocalGet(a).I32Const(cols).Op(wasm.OpI32Mul).LocalGet(bb).Op(wasm.OpI32Add)
		}
	}
	forTo := func(v uint32, hi int32, body func()) {
		f.ForI32(v, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(hi)}, 1, body)
	}

	// Synthetic expression data: data[s][v] = sin-free deterministic mix
	// ((s*v + s + 3v) % 17)/17 + ((s+v) % 5)/10.
	forTo(i, S, func() {
		forTo(j, V, func() {
			idx2(i, V, j)()
			f.I32Const(8).Op(wasm.OpI32Mul)
			// term1
			f.LocalGet(i).LocalGet(j).Op(wasm.OpI32Mul).LocalGet(i).Op(wasm.OpI32Add)
			f.LocalGet(j).I32Const(3).Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
			f.I32Const(17).Op(wasm.OpI32RemS).Op(wasm.OpF64ConvertI32S)
			f.F64ConstV(17).Op(wasm.OpF64Div)
			// term2
			f.LocalGet(i).LocalGet(j).Op(wasm.OpI32Add).I32Const(5).Op(wasm.OpI32RemS)
			f.Op(wasm.OpF64ConvertI32S).F64ConstV(10).Op(wasm.OpF64Div)
			f.Op(wasm.OpF64Add)
			f.Store(wasm.OpF64Store, uint32(dataOff))
		})
	})
	// mean[v]
	forTo(j, V, func() {
		f.F64ConstV(0).LocalSet(acc)
		forTo(i, S, func() {
			f.LocalGet(acc)
			loadF(dataOff, idx2(i, V, j))
			f.Op(wasm.OpF64Add).LocalSet(acc)
		})
		f.LocalGet(j).I32Const(8).Op(wasm.OpI32Mul)
		f.LocalGet(acc).F64ConstV(float64(samples)).Op(wasm.OpF64Div)
		f.Store(wasm.OpF64Store, uint32(meanOff))
	})
	// sd[v] (population)
	forTo(j, V, func() {
		f.F64ConstV(0).LocalSet(acc)
		forTo(i, S, func() {
			f.LocalGet(acc)
			loadF(dataOff, idx2(i, V, j))
			loadF(meanOff, func() { f.LocalGet(j) })
			f.Op(wasm.OpF64Sub)
			loadF(dataOff, idx2(i, V, j))
			loadF(meanOff, func() { f.LocalGet(j) })
			f.Op(wasm.OpF64Sub)
			f.Op(wasm.OpF64Mul).Op(wasm.OpF64Add).LocalSet(acc)
		})
		f.LocalGet(j).I32Const(8).Op(wasm.OpI32Mul)
		f.LocalGet(acc).F64ConstV(float64(samples)).Op(wasm.OpF64Div).Op(wasm.OpF64Sqrt)
		f.Store(wasm.OpF64Store, uint32(sdOff))
	})
	// corr[i][j]
	forTo(i, V, func() {
		forTo(j, V, func() {
			f.F64ConstV(0).LocalSet(acc)
			forTo(l, S, func() {
				f.LocalGet(acc)
				loadF(dataOff, idx2(l, V, i))
				loadF(meanOff, func() { f.LocalGet(i) })
				f.Op(wasm.OpF64Sub)
				loadF(dataOff, idx2(l, V, j))
				loadF(meanOff, func() { f.LocalGet(j) })
				f.Op(wasm.OpF64Sub)
				f.Op(wasm.OpF64Mul).Op(wasm.OpF64Add).LocalSet(acc)
			})
			idx2(i, V, j)()
			f.I32Const(8).Op(wasm.OpI32Mul)
			f.LocalGet(acc).F64ConstV(float64(samples)).Op(wasm.OpF64Div)
			loadF(sdOff, func() { f.LocalGet(i) })
			loadF(sdOff, func() { f.LocalGet(j) })
			f.Op(wasm.OpF64Mul).Op(wasm.OpF64Div)
			f.Store(wasm.OpF64Store, uint32(corrOff))
		})
	})
	// adj[i][j] = 1 for i != j
	forTo(i, V, func() {
		forTo(j, V, func() {
			idx2(i, V, j)()
			f.I32Const(8).Op(wasm.OpI32Mul)
			f.LocalGet(i).LocalGet(j).Op(wasm.OpI32Ne).Op(wasm.OpF64ConvertI32S)
			f.Store(wasm.OpF64Store, uint32(adjOff))
		})
	})
	// order-0: remove |corr| < thr
	forTo(i, V, func() {
		forTo(j, V, func() {
			loadF(corrOff, idx2(i, V, j))
			f.Op(wasm.OpF64Abs).F64ConstV(thr).Op(wasm.OpF64Lt)
			f.If(wasm.BlockEmpty, func() {
				idx2(i, V, j)()
				f.I32Const(8).Op(wasm.OpI32Mul)
				f.F64ConstV(0)
				f.Store(wasm.OpF64Store, uint32(adjOff))
			}, nil)
		})
	})
	// order-1: for each edge (i,j) and each k != i,j: if adj[i][j] != 0 and
	// |r_ij.k| < thr remove edge.
	rik := f.Local(wasm.F64)
	rjk := f.Local(wasm.F64)
	rij := f.Local(wasm.F64)
	forTo(i, V, func() {
		forTo(j, V, func() {
			forTo(l, V, func() {
				// skip k == i or k == j or removed edge
				f.LocalGet(l).LocalGet(i).Op(wasm.OpI32Ne)
				f.LocalGet(l).LocalGet(j).Op(wasm.OpI32Ne)
				f.Op(wasm.OpI32And)
				f.If(wasm.BlockEmpty, func() {
					loadF(adjOff, idx2(i, V, j))
					f.F64ConstV(0).Op(wasm.OpF64Ne)
					f.If(wasm.BlockEmpty, func() {
						loadF(corrOff, idx2(i, V, j))
						f.LocalSet(rij)
						loadF(corrOff, idx2(i, V, l))
						f.LocalSet(rik)
						loadF(corrOff, idx2(j, V, l))
						f.LocalSet(rjk)
						// partial = (rij - rik*rjk)/sqrt((1-rik^2)(1-rjk^2))
						f.LocalGet(rij)
						f.LocalGet(rik).LocalGet(rjk).Op(wasm.OpF64Mul)
						f.Op(wasm.OpF64Sub)
						f.F64ConstV(1).LocalGet(rik).LocalGet(rik).Op(wasm.OpF64Mul).Op(wasm.OpF64Sub)
						f.F64ConstV(1).LocalGet(rjk).LocalGet(rjk).Op(wasm.OpF64Mul).Op(wasm.OpF64Sub)
						f.Op(wasm.OpF64Mul).Op(wasm.OpF64Sqrt)
						f.Op(wasm.OpF64Div)
						f.Op(wasm.OpF64Abs).F64ConstV(thr).Op(wasm.OpF64Lt)
						f.If(wasm.BlockEmpty, func() {
							idx2(i, V, j)()
							f.I32Const(8).Op(wasm.OpI32Mul)
							f.F64ConstV(0)
							f.Store(wasm.OpF64Store, uint32(adjOff))
						}, nil)
					}, nil)
				}, nil)
			})
		})
	})
	// fold: edges = sum adj; hash = Σ (i*V+j)*adj
	f.I64ConstV(0).LocalSet(edges)
	f.I64ConstV(0).LocalSet(hash)
	forTo(i, V, func() {
		forTo(j, V, func() {
			loadF(adjOff, idx2(i, V, j))
			f.F64ConstV(0).Op(wasm.OpF64Ne)
			f.If(wasm.BlockEmpty, func() {
				f.LocalGet(edges).I64ConstV(1).Op(wasm.OpI64Add).LocalSet(edges)
				idx2(i, V, j)()
				f.Op(wasm.OpI64ExtendI32U)
				f.LocalGet(hash).Op(wasm.OpI64Add).LocalSet(hash)
			}, nil)
		})
	})
	f.LocalGet(edges).I64ConstV(32).Op(wasm.OpI64Shl).LocalGet(hash).Op(wasm.OpI64Add)
	b.ExportFunc("run", f.End())
	return b.Build()
}

// NativePC mirrors BuildPC exactly.
func NativePC(vars, samples int) uint64 {
	const thr = 0.18
	V, S := vars, samples
	data := make([]float64, S*V)
	mean := make([]float64, V)
	sd := make([]float64, V)
	corr := make([]float64, V*V)
	adj := make([]float64, V*V)
	for s := 0; s < S; s++ {
		for v := 0; v < V; v++ {
			data[s*V+v] = float64((s*v+s+3*v)%17)/17 + float64((s+v)%5)/10
		}
	}
	for v := 0; v < V; v++ {
		acc := 0.0
		for s := 0; s < S; s++ {
			acc = acc + data[s*V+v]
		}
		mean[v] = acc / float64(S)
	}
	for v := 0; v < V; v++ {
		acc := 0.0
		for s := 0; s < S; s++ {
			acc = acc + (data[s*V+v]-mean[v])*(data[s*V+v]-mean[v])
		}
		sd[v] = math.Sqrt(acc / float64(S))
	}
	for i := 0; i < V; i++ {
		for j := 0; j < V; j++ {
			acc := 0.0
			for l := 0; l < S; l++ {
				acc = acc + (data[l*V+i]-mean[i])*(data[l*V+j]-mean[j])
			}
			corr[i*V+j] = acc / float64(S) / (sd[i] * sd[j])
		}
	}
	for i := 0; i < V; i++ {
		for j := 0; j < V; j++ {
			if i != j {
				adj[i*V+j] = 1
			}
		}
	}
	for i := 0; i < V; i++ {
		for j := 0; j < V; j++ {
			if math.Abs(corr[i*V+j]) < thr {
				adj[i*V+j] = 0
			}
		}
	}
	for i := 0; i < V; i++ {
		for j := 0; j < V; j++ {
			for l := 0; l < V; l++ {
				if l != i && l != j && adj[i*V+j] != 0 {
					rij := corr[i*V+j]
					rik := corr[i*V+l]
					rjk := corr[j*V+l]
					partial := (rij - rik*rjk) / math.Sqrt((1-rik*rik)*(1-rjk*rjk))
					if math.Abs(partial) < thr {
						adj[i*V+j] = 0
					}
				}
			}
		}
	}
	var edges, hash uint64
	for i := 0; i < V; i++ {
		for j := 0; j < V; j++ {
			if adj[i*V+j] != 0 {
				edges++
				hash += uint64(uint32(i*V + j))
			}
		}
	}
	return edges<<32 + hash
}
