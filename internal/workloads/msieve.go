// Package workloads implements the evaluation workloads of the paper's
// three deployment scenarios (§5.3): volunteer computing (msieve-style
// integer factorisation, the PC algorithm from gene@home, SubsetSum@Home),
// pay-by-computation (a Darknet-style CNN classifier), and FaaS (echo and
// image-resize functions plus a "JavaScript" baseline).
//
// Every workload exists twice: as a Wasm module produced with the builder
// (executed in the two-way sandbox) and as a native Go reference whose
// result must match exactly.
package workloads

import (
	"acctee/internal/wasm"
)

// i64 and i32 shorthands for import signatures.
var (
	vi64 = []wasm.ValueType{wasm.I64}
	vi32 = []wasm.ValueType{wasm.I32}
)

// BuildMSieve builds the factorisation workload: for `count` consecutive
// integers starting at `lo`, find the smallest prime factor by trial
// division up to 256 followed by Pollard's rho, and fold the factors into
// a checksum. Exported: run(lo: i64, count: i32) -> i64.
//
// This models the MSieve/NFS@Home volunteer-computing workload: a
// CPU-bound number-theoretic kernel dominated by 64-bit multiply, divide
// and remainder instructions.
func BuildMSieve() (*wasm.Module, error) {
	b := wasm.NewModule("msieve")

	// gcd(a, b) via Euclid.
	g := b.Func("gcd", []wasm.ValueType{wasm.I64, wasm.I64}, vi64)
	{
		t := g.Local(wasm.I64)
		g.While(func() {
			g.LocalGet(1).I64ConstV(0).Op(wasm.OpI64Ne)
		}, func() {
			g.LocalGet(0).LocalGet(1).Op(wasm.OpI64RemU).LocalSet(t)
			g.LocalGet(1).LocalSet(0)
			g.LocalGet(t).LocalSet(1)
		})
		g.LocalGet(0)
	}
	gcdIdx := g.End()

	// rho(n, c) — Pollard's rho with f(x) = (x*x + c) mod n, x0 = 2.
	// Returns a non-trivial factor or n on failure.
	r := b.Func("rho", []wasm.ValueType{wasm.I64, wasm.I64}, vi64)
	{
		x := r.Local(wasm.I64)
		y := r.Local(wasm.I64)
		d := r.Local(wasm.I64)
		step := func(v uint32) {
			// v = (v*v + c) mod n
			r.LocalGet(v).LocalGet(v).Op(wasm.OpI64Mul)
			r.LocalGet(1).Op(wasm.OpI64Add)
			r.LocalGet(0).Op(wasm.OpI64RemU)
			r.LocalSet(v)
		}
		r.I64ConstV(2).LocalSet(x)
		r.I64ConstV(2).LocalSet(y)
		r.I64ConstV(1).LocalSet(d)
		r.While(func() {
			r.LocalGet(d).I64ConstV(1).Op(wasm.OpI64Eq)
		}, func() {
			step(x)
			step(y)
			step(y)
			// d = gcd(|x-y|, n)
			r.LocalGet(x).LocalGet(y).Op(wasm.OpI64GtU)
			r.If(wasm.BlockOf(wasm.I64), func() {
				r.LocalGet(x).LocalGet(y).Op(wasm.OpI64Sub)
			}, func() {
				r.LocalGet(y).LocalGet(x).Op(wasm.OpI64Sub)
			})
			r.LocalGet(0).Call(gcdIdx).LocalSet(d)
			// if x == y the cycle closed without a factor: fail with d = n
			r.LocalGet(x).LocalGet(y).Op(wasm.OpI64Eq)
			r.If(wasm.BlockEmpty, func() {
				r.LocalGet(0).LocalSet(d)
			}, nil)
		})
		r.LocalGet(d)
	}
	rhoIdx := r.End()

	// spf(n) — smallest prime factor.
	s := b.Func("spf", vi64, vi64)
	{
		dv := s.Local(wasm.I64)
		res := s.Local(wasm.I64)
		c := s.Local(wasm.I64)
		done := s.Local(wasm.I32)
		// even
		s.LocalGet(0).I64ConstV(1).Op(wasm.OpI64And).Op(wasm.OpI64Eqz)
		s.If(wasm.BlockEmpty, func() {
			s.I64ConstV(2).Return()
		}, nil)
		// trial division by odd d up to 255 while d*d <= n
		s.I64ConstV(3).LocalSet(dv)
		s.I64ConstV(0).LocalSet(res)
		s.While(func() {
			// continue while res==0 && d<256 && d*d <= n
			s.LocalGet(res).Op(wasm.OpI64Eqz)
			s.LocalGet(dv).I64ConstV(256).Op(wasm.OpI64LtU)
			s.Op(wasm.OpI32And)
			s.LocalGet(dv).LocalGet(dv).Op(wasm.OpI64Mul).LocalGet(0).Op(wasm.OpI64LeU)
			s.Op(wasm.OpI32And)
		}, func() {
			s.LocalGet(0).LocalGet(dv).Op(wasm.OpI64RemU).Op(wasm.OpI64Eqz)
			s.If(wasm.BlockEmpty, func() {
				s.LocalGet(dv).LocalSet(res)
			}, nil)
			s.LocalGet(dv).I64ConstV(2).Op(wasm.OpI64Add).LocalSet(dv)
		})
		s.LocalGet(res).I64ConstV(0).Op(wasm.OpI64Ne)
		s.If(wasm.BlockEmpty, func() {
			s.LocalGet(res).Return()
		}, nil)
		// n prime if d*d > n after the scan
		s.LocalGet(dv).LocalGet(dv).Op(wasm.OpI64Mul).LocalGet(0).Op(wasm.OpI64GtU)
		s.If(wasm.BlockEmpty, func() {
			s.LocalGet(0).Return()
		}, nil)
		// Pollard rho with increasing c until it yields a proper factor
		// (bounded retries; primes come back as n itself).
		s.I64ConstV(1).LocalSet(c)
		s.I32Const(0).LocalSet(done)
		s.While(func() {
			s.LocalGet(done).Op(wasm.OpI32Eqz)
			s.LocalGet(c).I64ConstV(20).Op(wasm.OpI64LtU)
			s.Op(wasm.OpI32And)
		}, func() {
			s.LocalGet(0).LocalGet(c).Call(rhoIdx).LocalSet(res)
			s.LocalGet(res).LocalGet(0).Op(wasm.OpI64Ne)
			s.LocalGet(res).I64ConstV(1).Op(wasm.OpI64Ne)
			s.Op(wasm.OpI32And)
			s.If(wasm.BlockEmpty, func() {
				s.I32Const(1).LocalSet(done)
			}, func() {
				s.LocalGet(c).I64ConstV(1).Op(wasm.OpI64Add).LocalSet(c)
			})
		})
		// rho returns *a* factor; reduce to the smallest prime factor of it
		// by one more spf step if composite — for checksum purposes the
		// deterministic factor itself suffices, matching the native mirror.
		s.LocalGet(res)
	}
	spfIdx := s.End()

	// run(lo, count): checksum = sum over k of spf(lo+k) * (k+1)
	f := b.Func("run", []wasm.ValueType{wasm.I64, wasm.I32}, vi64)
	{
		k := f.Local(wasm.I32)
		acc := f.Local(wasm.I64)
		f.ForI32(k, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 1)}, 1, func() {
			f.LocalGet(0)
			f.LocalGet(k).Op(wasm.OpI64ExtendI32U).Op(wasm.OpI64Add)
			f.Call(spfIdx)
			f.LocalGet(k).I32Const(1).Op(wasm.OpI32Add).Op(wasm.OpI64ExtendI32U)
			f.Op(wasm.OpI64Mul)
			f.LocalGet(acc).Op(wasm.OpI64Add).LocalSet(acc)
		})
		f.LocalGet(acc)
	}
	b.ExportFunc("run", f.End())
	return b.Build()
}

// NativeMSieve mirrors BuildMSieve exactly.
func NativeMSieve(lo uint64, count uint32) uint64 {
	gcd := func(a, b uint64) uint64 {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	rho := func(n, c uint64) uint64 {
		x, y, d := uint64(2), uint64(2), uint64(1)
		step := func(v uint64) uint64 { return (v*v + c) % n }
		for d == 1 {
			x = step(x)
			y = step(step(y))
			var diff uint64
			if x > y {
				diff = x - y
			} else {
				diff = y - x
			}
			d = gcd(diff, n)
			if x == y {
				d = n
			}
		}
		return d
	}
	spf := func(n uint64) uint64 {
		if n&1 == 0 {
			return 2
		}
		d := uint64(3)
		var res uint64
		for res == 0 && d < 256 && d*d <= n {
			if n%d == 0 {
				res = d
			}
			d += 2
		}
		if res != 0 {
			return res
		}
		if d*d > n {
			return n
		}
		res = n
		for c := uint64(1); c < 20; c++ {
			f := rho(n, c)
			if f != n && f != 1 {
				res = f
				break
			}
		}
		return res
	}
	var acc uint64
	for k := uint32(0); k < count; k++ {
		acc += spf(lo+uint64(k)) * uint64(k+1)
	}
	return acc
}
