package workloads

import (
	"acctee/internal/wasm"
)

// BuildDarknet builds the pay-by-computation workload (paper §5.3): image
// classification with a small Darknet-style convolutional network —
// conv 3×3 (nf filters) → ReLU → 2×2 max-pool → fully-connected layer —
// over a deterministic synthetic image and weights. Exported:
// run() -> f64 = Σ outputs + argmax, a value that pins down the whole
// network evaluation. The profile is dense f64 multiply-accumulate, like
// the reference model in the paper.
func BuildDarknet(imgSize, filters int) (*wasm.Module, error) {
	W := int32(imgSize)  // input width/height
	NF := int32(filters) // conv filters
	CW := W - 2          // conv output width
	PW := CW / 2         // pooled width
	classes := int32(10) // output classes
	b := wasm.NewModule("darknet")

	// memory layout (f64 slots)
	imgOff := int32(64)
	kernOff := imgOff + W*W*8
	convOff := kernOff + NF*9*8
	poolOff := convOff + NF*CW*CW*8
	denseOff := poolOff + NF*PW*PW*8
	outOff := denseOff + classes*NF*PW*PW*8
	end := outOff + classes*8
	pages := uint32((end + wasm.PageSize - 1) / wasm.PageSize)
	b.Memory(pages, pages)

	f := b.Func("run", nil, []wasm.ValueType{wasm.F64})
	i := f.Local(wasm.I32)
	j := f.Local(wasm.I32)
	fi := f.Local(wasm.I32)
	di := f.Local(wasm.I32)
	dj := f.Local(wasm.I32)
	c := f.Local(wasm.I32)
	acc := f.Local(wasm.F64)
	best := f.Local(wasm.F64)
	bestIdx := f.Local(wasm.I32)

	forTo := func(v uint32, hi int32, body func()) {
		f.ForI32(v, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(hi)}, 1, body)
	}
	storeF := func(base int32, idx func(), val func()) {
		idx()
		f.I32Const(8).Op(wasm.OpI32Mul)
		val()
		f.Store(wasm.OpF64Store, uint32(base))
	}
	loadF := func(base int32, idx func()) {
		idx()
		f.I32Const(8).Op(wasm.OpI32Mul)
		f.Load(wasm.OpF64Load, uint32(base))
	}

	// image: ((i*7 + j*13) % 29)/29
	forTo(i, W, func() {
		forTo(j, W, func() {
			storeF(imgOff, func() {
				f.LocalGet(i).I32Const(W).Op(wasm.OpI32Mul).LocalGet(j).Op(wasm.OpI32Add)
			}, func() {
				f.LocalGet(i).I32Const(7).Op(wasm.OpI32Mul)
				f.LocalGet(j).I32Const(13).Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
				f.I32Const(29).Op(wasm.OpI32RemS).Op(wasm.OpF64ConvertI32S)
				f.F64ConstV(29).Op(wasm.OpF64Div)
			})
		})
	})
	// kernels: ((f*9 + t) % 7 - 3)/4
	forTo(fi, NF, func() {
		forTo(j, 9, func() {
			storeF(kernOff, func() {
				f.LocalGet(fi).I32Const(9).Op(wasm.OpI32Mul).LocalGet(j).Op(wasm.OpI32Add)
			}, func() {
				f.LocalGet(fi).I32Const(9).Op(wasm.OpI32Mul).LocalGet(j).Op(wasm.OpI32Add)
				f.I32Const(7).Op(wasm.OpI32RemS).I32Const(3).Op(wasm.OpI32Sub)
				f.Op(wasm.OpF64ConvertI32S).F64ConstV(4).Op(wasm.OpF64Div)
			})
		})
	})
	// conv + ReLU
	forTo(fi, NF, func() {
		forTo(i, CW, func() {
			forTo(j, CW, func() {
				f.F64ConstV(0).LocalSet(acc)
				forTo(di, 3, func() {
					forTo(dj, 3, func() {
						f.LocalGet(acc)
						loadF(imgOff, func() {
							f.LocalGet(i).LocalGet(di).Op(wasm.OpI32Add).I32Const(W).Op(wasm.OpI32Mul)
							f.LocalGet(j).LocalGet(dj).Op(wasm.OpI32Add).Op(wasm.OpI32Add)
						})
						loadF(kernOff, func() {
							f.LocalGet(fi).I32Const(9).Op(wasm.OpI32Mul)
							f.LocalGet(di).I32Const(3).Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
							f.LocalGet(dj).Op(wasm.OpI32Add)
						})
						f.Op(wasm.OpF64Mul).Op(wasm.OpF64Add).LocalSet(acc)
					})
				})
				// ReLU
				f.LocalGet(acc).F64ConstV(0).Op(wasm.OpF64Max).LocalSet(acc)
				storeF(convOff, func() {
					f.LocalGet(fi).I32Const(CW * CW).Op(wasm.OpI32Mul)
					f.LocalGet(i).I32Const(CW).Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
					f.LocalGet(j).Op(wasm.OpI32Add)
				}, func() { f.LocalGet(acc) })
			})
		})
	})
	// 2x2 max pool
	forTo(fi, NF, func() {
		forTo(i, PW, func() {
			forTo(j, PW, func() {
				at := func(ddi, ddj int32) {
					loadF(convOff, func() {
						f.LocalGet(fi).I32Const(CW * CW).Op(wasm.OpI32Mul)
						f.LocalGet(i).I32Const(2).Op(wasm.OpI32Mul).I32Const(ddi).Op(wasm.OpI32Add)
						f.I32Const(CW).Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
						f.LocalGet(j).I32Const(2).Op(wasm.OpI32Mul).I32Const(ddj).Op(wasm.OpI32Add)
						f.Op(wasm.OpI32Add)
					})
				}
				at(0, 0)
				at(0, 1)
				f.Op(wasm.OpF64Max)
				at(1, 0)
				f.Op(wasm.OpF64Max)
				at(1, 1)
				f.Op(wasm.OpF64Max)
				f.LocalSet(acc)
				storeF(poolOff, func() {
					f.LocalGet(fi).I32Const(PW * PW).Op(wasm.OpI32Mul)
					f.LocalGet(i).I32Const(PW).Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
					f.LocalGet(j).Op(wasm.OpI32Add)
				}, func() { f.LocalGet(acc) })
			})
		})
	})
	// dense weights: ((c*31 + t*17) % 11 - 5)/8
	featN := NF * PW * PW
	forTo(c, classes, func() {
		forTo(i, featN, func() {
			storeF(denseOff, func() {
				f.LocalGet(c).I32Const(featN).Op(wasm.OpI32Mul).LocalGet(i).Op(wasm.OpI32Add)
			}, func() {
				f.LocalGet(c).I32Const(31).Op(wasm.OpI32Mul)
				f.LocalGet(i).I32Const(17).Op(wasm.OpI32Mul).Op(wasm.OpI32Add)
				f.I32Const(11).Op(wasm.OpI32RemS).I32Const(5).Op(wasm.OpI32Sub)
				f.Op(wasm.OpF64ConvertI32S).F64ConstV(8).Op(wasm.OpF64Div)
			})
		})
	})
	// dense layer
	forTo(c, classes, func() {
		f.F64ConstV(0).LocalSet(acc)
		forTo(i, featN, func() {
			f.LocalGet(acc)
			loadF(poolOff, func() { f.LocalGet(i) })
			loadF(denseOff, func() {
				f.LocalGet(c).I32Const(featN).Op(wasm.OpI32Mul).LocalGet(i).Op(wasm.OpI32Add)
			})
			f.Op(wasm.OpF64Mul).Op(wasm.OpF64Add).LocalSet(acc)
		})
		storeF(outOff, func() { f.LocalGet(c) }, func() { f.LocalGet(acc) })
	})
	// result = Σ outputs + argmax
	f.F64ConstV(0).LocalSet(acc)
	f.F64ConstV(-1e300).LocalSet(best)
	f.I32Const(0).LocalSet(bestIdx)
	forTo(c, classes, func() {
		f.LocalGet(acc)
		loadF(outOff, func() { f.LocalGet(c) })
		f.Op(wasm.OpF64Add).LocalSet(acc)
		loadF(outOff, func() { f.LocalGet(c) })
		f.LocalGet(best).Op(wasm.OpF64Gt)
		f.If(wasm.BlockEmpty, func() {
			loadF(outOff, func() { f.LocalGet(c) })
			f.LocalSet(best)
			f.LocalGet(c).LocalSet(bestIdx)
		}, nil)
	})
	f.LocalGet(acc).LocalGet(bestIdx).Op(wasm.OpF64ConvertI32S).Op(wasm.OpF64Add)
	b.ExportFunc("run", f.End())
	return b.Build()
}

// NativeDarknet mirrors BuildDarknet exactly.
func NativeDarknet(imgSize, filters int) float64 {
	W, NF := imgSize, filters
	CW := W - 2
	PW := CW / 2
	classes := 10
	img := make([]float64, W*W)
	kern := make([]float64, NF*9)
	conv := make([]float64, NF*CW*CW)
	pool := make([]float64, NF*PW*PW)
	featN := NF * PW * PW
	dense := make([]float64, classes*featN)
	out := make([]float64, classes)
	for i := 0; i < W; i++ {
		for j := 0; j < W; j++ {
			img[i*W+j] = float64((i*7+j*13)%29) / 29
		}
	}
	for fi := 0; fi < NF; fi++ {
		for t := 0; t < 9; t++ {
			kern[fi*9+t] = float64((fi*9+t)%7-3) / 4
		}
	}
	for fi := 0; fi < NF; fi++ {
		for i := 0; i < CW; i++ {
			for j := 0; j < CW; j++ {
				acc := 0.0
				for di := 0; di < 3; di++ {
					for dj := 0; dj < 3; dj++ {
						acc = acc + img[(i+di)*W+(j+dj)]*kern[fi*9+di*3+dj]
					}
				}
				if acc < 0 {
					acc = 0
				}
				conv[fi*CW*CW+i*CW+j] = acc
			}
		}
	}
	max := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	for fi := 0; fi < NF; fi++ {
		for i := 0; i < PW; i++ {
			for j := 0; j < PW; j++ {
				v := conv[fi*CW*CW+(2*i)*CW+2*j]
				v = max(v, conv[fi*CW*CW+(2*i)*CW+2*j+1])
				v = max(v, conv[fi*CW*CW+(2*i+1)*CW+2*j])
				v = max(v, conv[fi*CW*CW+(2*i+1)*CW+2*j+1])
				pool[fi*PW*PW+i*PW+j] = v
			}
		}
	}
	for c := 0; c < classes; c++ {
		for i := 0; i < featN; i++ {
			dense[c*featN+i] = float64((c*31+i*17)%11-5) / 8
		}
	}
	for c := 0; c < classes; c++ {
		acc := 0.0
		for i := 0; i < featN; i++ {
			acc = acc + pool[i]*dense[c*featN+i]
		}
		out[c] = acc
	}
	accT := 0.0
	best := -1e300
	bestIdx := 0
	for c := 0; c < classes; c++ {
		accT = accT + out[c]
		if out[c] > best {
			best = out[c]
			bestIdx = c
		}
	}
	return accT + float64(bestIdx)
}
