package workloads

import (
	"math/bits"

	"acctee/internal/wasm"
)

// BuildSubsetSum builds the SubsetSum@Home workload: a bitset dynamic
// program over 64-bit words that computes the set of achievable subset sums
// of a deterministic pseudo-random multiset, as used to probe the
// empirical density threshold of the subset-sum decision problem.
// Exported: run(nItems: i32, target: i32) -> i64, returning
// reachable(target) * 2^32 + popcount-checksum of the DP bitset.
// Dominated by i64 shifts, ors and loads/stores.
func BuildSubsetSum() (*wasm.Module, error) {
	b := wasm.NewModule("subsetsum")
	const dpOff = 64
	b.Memory(4, 4) // up to ~2M sums

	f := b.Func("run", []wasm.ValueType{wasm.I32, wasm.I32}, vi64)
	item := f.Local(wasm.I32)
	k := f.Local(wasm.I32)
	w := f.Local(wasm.I32) // number of 64-bit words
	val := f.Local(wasm.I32)
	wordSh := f.Local(wasm.I32)
	bitSh := f.Local(wasm.I32)
	carry := f.Local(wasm.I64)
	cur := f.Local(wasm.I64)
	acc := f.Local(wasm.I64)
	kk := f.Local(wasm.I32) // descending surrogate
	seed := f.Local(wasm.I32)

	// w = target/64 + 1
	f.LocalGet(1).I32Const(64).Op(wasm.OpI32DivU).I32Const(1).Op(wasm.OpI32Add).LocalSet(w)
	// zero dp words, set bit 0
	f.ForI32(k, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, w)}, 1, func() {
		f.LocalGet(k).I32Const(8).Op(wasm.OpI32Mul)
		f.I64ConstV(0)
		f.Store(wasm.OpI64Store, dpOff)
	})
	f.I32Const(0).I64ConstV(1).Store(wasm.OpI64Store, dpOff)

	// for each item: value = (seed update) % (target/2) + 1 ; dp |= dp << value
	f.I32Const(12345).LocalSet(seed)
	f.ForI32(item, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		// xorshift-ish: seed = seed*1103515245 + 12345 (mod 2^31)
		f.LocalGet(seed).I32Const(1103515245).Op(wasm.OpI32Mul).I32Const(12345).Op(wasm.OpI32Add)
		f.I32Const(0x7FFFFFFF).Op(wasm.OpI32And).LocalSet(seed)
		f.LocalGet(seed)
		f.LocalGet(1).I32Const(2).Op(wasm.OpI32DivU).Op(wasm.OpI32RemU)
		f.I32Const(1).Op(wasm.OpI32Add).LocalSet(val)
		// wordShift = val/64, bitShift = val%64
		f.LocalGet(val).I32Const(64).Op(wasm.OpI32DivU).LocalSet(wordSh)
		f.LocalGet(val).I32Const(63).Op(wasm.OpI32And).LocalSet(bitSh)
		// dp |= dp << val, processed from the top word down so source words
		// are read before being overwritten.
		f.ForI32(kk, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, w)}, 1, func() {
			// k = w-1-kk
			f.LocalGet(w).I32Const(1).Op(wasm.OpI32Sub).LocalGet(kk).Op(wasm.OpI32Sub).LocalSet(k)
			// cur = k >= wordSh ? dp[k-wordSh] : 0
			f.LocalGet(k).LocalGet(wordSh).Op(wasm.OpI32GeU)
			f.If(wasm.BlockOf(wasm.I64), func() {
				f.LocalGet(k).LocalGet(wordSh).Op(wasm.OpI32Sub).I32Const(8).Op(wasm.OpI32Mul)
				f.Load(wasm.OpI64Load, dpOff)
			}, func() {
				f.I64ConstV(0)
			})
			f.LocalSet(cur)
			// carry = k >= wordSh+1 && bitSh != 0 ? dp[k-wordSh-1] >> (64-bitSh) : 0
			f.LocalGet(k).LocalGet(wordSh).I32Const(1).Op(wasm.OpI32Add).Op(wasm.OpI32GeU)
			f.LocalGet(bitSh).I32Const(0).Op(wasm.OpI32Ne)
			f.Op(wasm.OpI32And)
			f.If(wasm.BlockOf(wasm.I64), func() {
				f.LocalGet(k).LocalGet(wordSh).Op(wasm.OpI32Sub).I32Const(1).Op(wasm.OpI32Sub)
				f.I32Const(8).Op(wasm.OpI32Mul)
				f.Load(wasm.OpI64Load, dpOff)
				f.I32Const(64).LocalGet(bitSh).Op(wasm.OpI32Sub).Op(wasm.OpI64ExtendI32U)
				f.Op(wasm.OpI64ShrU)
			}, func() {
				f.I64ConstV(0)
			})
			f.LocalSet(carry)
			// dp[k] |= (cur << bitSh) | carry
			f.LocalGet(k).I32Const(8).Op(wasm.OpI32Mul)
			f.LocalGet(k).I32Const(8).Op(wasm.OpI32Mul)
			f.Load(wasm.OpI64Load, dpOff)
			f.LocalGet(cur).LocalGet(bitSh).Op(wasm.OpI64ExtendI32U).Op(wasm.OpI64Shl)
			f.LocalGet(carry).Op(wasm.OpI64Or)
			f.Op(wasm.OpI64Or)
			f.Store(wasm.OpI64Store, dpOff)
		})
	})
	// result: reachable(target) << 32 + popcount checksum
	f.I64ConstV(0).LocalSet(acc)
	f.ForI32(k, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, w)}, 1, func() {
		f.LocalGet(acc)
		f.LocalGet(k).I32Const(8).Op(wasm.OpI32Mul)
		f.Load(wasm.OpI64Load, dpOff)
		f.Op(wasm.OpI64Popcnt)
		f.Op(wasm.OpI64Add).LocalSet(acc)
	})
	// bit test dp[target/64] >> (target%64) & 1
	f.LocalGet(1).I32Const(64).Op(wasm.OpI32DivU).I32Const(8).Op(wasm.OpI32Mul)
	f.Load(wasm.OpI64Load, dpOff)
	f.LocalGet(1).I32Const(63).Op(wasm.OpI32And).Op(wasm.OpI64ExtendI32U)
	f.Op(wasm.OpI64ShrU).I64ConstV(1).Op(wasm.OpI64And)
	f.I64ConstV(32).Op(wasm.OpI64Shl)
	f.LocalGet(acc).Op(wasm.OpI64Add)
	b.ExportFunc("run", f.End())
	return b.Build()
}

// NativeSubsetSum mirrors BuildSubsetSum exactly.
func NativeSubsetSum(nItems, target uint32) uint64 {
	w := int(target/64 + 1)
	dp := make([]uint64, w)
	dp[0] = 1
	seed := uint32(12345)
	for item := uint32(0); item < nItems; item++ {
		seed = (seed*1103515245 + 12345) & 0x7FFFFFFF
		val := seed%(target/2) + 1
		wordSh := int(val / 64)
		bitSh := uint(val % 64)
		for kk := 0; kk < w; kk++ {
			k := w - 1 - kk
			var cur, carry uint64
			if k >= wordSh {
				cur = dp[k-wordSh]
			}
			if k >= wordSh+1 && bitSh != 0 {
				carry = dp[k-wordSh-1] >> (64 - bitSh)
			}
			dp[k] |= (cur << bitSh) | carry
		}
	}
	var acc uint64
	for _, word := range dp {
		acc += uint64(bits.OnesCount64(word))
	}
	reach := dp[target/64] >> (target % 64) & 1
	return reach<<32 + acc
}
