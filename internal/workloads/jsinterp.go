package workloads

// This file implements the "pure JavaScript" FaaS baseline (paper §5.3,
// Fig. 9: JIMP on Node.js inside an OpenFaaS Docker container) as a small
// tree-walking interpreter over boxed dynamic values with scope-chain
// variable lookup — the execution model of an unoptimised dynamic-language
// engine. The echo and resize functions are expressed as ASTs in this
// language and evaluated per request, so the baseline pays interpretation
// overhead comparable in kind to what the paper's JS baseline pays
// relative to JIT-compiled WebAssembly.

// jsVal is a boxed dynamic value (numbers are int, arrays []jsVal).
type jsVal interface{}

// jsEnv is a scope-chain environment.
type jsEnv struct {
	vars   map[string]jsVal
	parent *jsEnv
}

func newEnv(parent *jsEnv) *jsEnv {
	return &jsEnv{vars: make(map[string]jsVal, 8), parent: parent}
}

func (e *jsEnv) lookup(name string) jsVal {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v
		}
	}
	return nil
}

func (e *jsEnv) assign(name string, v jsVal) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// jsExpr is an expression node.
type jsExpr interface {
	eval(env *jsEnv) jsVal
}

// jsStmt is a statement node.
type jsStmt interface {
	exec(env *jsEnv)
}

type jsNum int

func (n jsNum) eval(*jsEnv) jsVal { return int(n) }

type jsVar string

func (v jsVar) eval(env *jsEnv) jsVal { return env.lookup(string(v)) }

type jsBin struct {
	op   byte // + - * / % <
	l, r jsExpr
}

func (b jsBin) eval(env *jsEnv) jsVal {
	l, _ := b.l.eval(env).(int)
	r, _ := b.r.eval(env).(int)
	switch b.op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	case '/':
		return l / r
	case '%':
		return l % r
	case '<':
		if l < r {
			return 1
		}
		return 0
	}
	return 0
}

type jsIndex struct {
	arr jsExpr
	idx jsExpr
}

func (ix jsIndex) eval(env *jsEnv) jsVal {
	arr, _ := ix.arr.eval(env).([]jsVal)
	i, _ := ix.idx.eval(env).(int)
	return arr[i]
}

type jsAssign struct {
	name string
	val  jsExpr
}

func (a jsAssign) exec(env *jsEnv) { env.assign(a.name, a.val.eval(env)) }

type jsStore struct {
	arr jsExpr
	idx jsExpr
	val jsExpr
}

func (s jsStore) exec(env *jsEnv) {
	arr, _ := s.arr.eval(env).([]jsVal)
	i, _ := s.idx.eval(env).(int)
	arr[i] = s.val.eval(env)
}

// jsFor is `for (var = lo; var < hi; var++) body` with a fresh scope.
type jsFor struct {
	v      string
	lo, hi jsExpr
	body   []jsStmt
}

func (f jsFor) exec(env *jsEnv) {
	scope := newEnv(env)
	scope.vars[f.v] = f.lo.eval(env)
	for {
		v, _ := scope.vars[f.v].(int)
		hi, _ := f.hi.eval(scope).(int)
		if v >= hi {
			return
		}
		for _, st := range f.body {
			st.exec(scope)
		}
		v, _ = scope.vars[f.v].(int)
		scope.vars[f.v] = v + 1
	}
}

func box(img []byte) []jsVal {
	arr := make([]jsVal, len(img))
	for i, p := range img {
		arr[i] = int(p)
	}
	return arr
}

func unbox(arr []jsVal) []byte {
	out := make([]byte, len(arr))
	for i, v := range arr {
		n, _ := v.(int)
		out[i] = byte(n)
	}
	return out
}

// jsResizeProgram is the resize function's AST — built once, evaluated per
// request, mirroring NativeResize's arithmetic exactly.
var jsResizeProgram = []jsStmt{
	jsFor{v: "oy", lo: jsNum(0), hi: jsVar("T"), body: []jsStmt{
		jsFor{v: "ox", lo: jsNum(0), hi: jsVar("T"), body: []jsStmt{
			jsFor{v: "ch", lo: jsNum(0), hi: jsNum(4), body: []jsStmt{
				jsAssign{"acc", jsNum(0)},
				jsAssign{"cnt", jsNum(0)},
				jsFor{v: "sy", lo: jsNum(0), hi: jsVar("bh"), body: []jsStmt{
					jsFor{v: "sx", lo: jsNum(0), hi: jsVar("bw"), body: []jsStmt{
						// idx = ((oy*bh+sy)*w + (ox*bw+sx))*4 + ch
						jsAssign{"idx", jsBin{'+',
							jsBin{'*',
								jsBin{'+',
									jsBin{'*',
										jsBin{'+', jsBin{'*', jsVar("oy"), jsVar("bh")}, jsVar("sy")},
										jsVar("w")},
									jsBin{'+', jsBin{'*', jsVar("ox"), jsVar("bw")}, jsVar("sx")}},
								jsNum(4)},
							jsVar("ch")}},
						jsAssign{"acc", jsBin{'+', jsVar("acc"), jsIndex{jsVar("img"), jsVar("idx")}}},
						jsAssign{"cnt", jsBin{'+', jsVar("cnt"), jsNum(1)}},
					}},
				}},
				jsStore{jsVar("out"),
					jsBin{'+', jsBin{'*', jsBin{'+', jsBin{'*', jsVar("oy"), jsVar("T")}, jsVar("ox")}, jsNum(4)}, jsVar("ch")},
					jsBin{'/', jsVar("acc"), jsVar("cnt")}},
			}},
		}},
	}},
}

// jsEchoProgram copies the input array to the output array.
var jsEchoProgram = []jsStmt{
	jsFor{v: "i", lo: jsNum(0), hi: jsVar("n"), body: []jsStmt{
		jsStore{jsVar("out"), jsVar("i"), jsIndex{jsVar("img"), jsVar("i")}},
	}},
}

// JSResize runs the resize program through the JS-style interpreter.
func JSResize(img []byte, w, h int) []byte {
	bw := w / ResizeTarget
	if bw == 0 {
		bw = 1
	}
	bh := h / ResizeTarget
	if bh == 0 {
		bh = 1
	}
	env := newEnv(nil)
	env.vars["img"] = box(img)
	out := make([]jsVal, ResizeTarget*ResizeTarget*4)
	env.vars["out"] = out
	env.vars["w"] = w
	env.vars["bw"] = bw
	env.vars["bh"] = bh
	env.vars["T"] = ResizeTarget
	for _, st := range jsResizeProgram {
		st.exec(env)
	}
	return unbox(out)
}

// JSEcho runs the echo program through the JS-style interpreter.
func JSEcho(in []byte) []byte {
	env := newEnv(nil)
	env.vars["img"] = box(in)
	out := make([]jsVal, len(in))
	env.vars["out"] = out
	env.vars["n"] = len(in)
	for _, st := range jsEchoProgram {
		st.exec(env)
	}
	return unbox(out)
}
