package workloads

import (
	"acctee/internal/wasm"
)

// FaaS functions (paper §5.3, Fig. 9). The gateway writes the request body
// into linear memory at InBase before invoking the function and reads the
// response from OutBase after it returns.

// Fixed linear-memory layout for the FaaS calling convention.
const (
	// InBase is where the gateway places the request payload.
	InBase = 1 << 16
	// MaxPayload bounds the request size (1024×1024 RGBA pixels).
	MaxPayload = 4 << 20
	// OutBase is where the function places the response payload.
	OutBase = InBase + MaxPayload
	// OutMax bounds the response size (echo returns the full payload).
	OutMax = MaxPayload
)

func faasPages() uint32 {
	return uint32((OutBase + OutMax + wasm.PageSize - 1) / wasm.PageSize)
}

// BuildEcho builds the echo function: run(len: i32) -> i32 copies the
// request payload to the response buffer unchanged. The paper uses it as
// the worst case: no computation, all overhead in the software layers.
func BuildEcho() (*wasm.Module, error) {
	b := wasm.NewModule("echo")
	b.Memory(faasPages(), faasPages())
	f := b.Func("run", vi32, vi32)
	i := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(i)
		f.LocalGet(i).Load(wasm.OpI32Load8U, InBase)
		f.Store(wasm.OpI32Store8, OutBase)
	})
	f.LocalGet(0)
	b.ExportFunc("run", f.End())
	return b.Build()
}

// NativeEcho mirrors BuildEcho over byte slices.
func NativeEcho(in []byte) []byte {
	out := make([]byte, len(in))
	copy(out, in)
	return out
}

// ResizeTarget is the output edge length of the resize function (§5.3:
// "returns the input JPG image scaled to 64 × 64 pixels").
const ResizeTarget = 64

// BuildResize builds the image-resize function: run(w: i32, h: i32) -> i32
// box-averages an RGBA image of w×h pixels at InBase down to 64×64 at
// OutBase and returns the output byte length. Compute-heavy per request:
// per output pixel it averages a w/64 × h/64 source window per channel.
func BuildResize() (*wasm.Module, error) {
	b := wasm.NewModule("resize")
	b.Memory(faasPages(), faasPages())
	f := b.Func("run", []wasm.ValueType{wasm.I32, wasm.I32}, vi32)
	ox := f.Local(wasm.I32)
	oy := f.Local(wasm.I32)
	ch := f.Local(wasm.I32)
	sx := f.Local(wasm.I32)
	sy := f.Local(wasm.I32)
	bw := f.Local(wasm.I32) // box width = w/64 (>=1)
	bh := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	cnt := f.Local(wasm.I32)
	// bw = max(w/64, 1); bh = max(h/64, 1)
	f.LocalGet(0).I32Const(ResizeTarget).Op(wasm.OpI32DivU).LocalSet(bw)
	f.LocalGet(bw).Op(wasm.OpI32Eqz)
	f.If(wasm.BlockEmpty, func() { f.I32Const(1).LocalSet(bw) }, nil)
	f.LocalGet(1).I32Const(ResizeTarget).Op(wasm.OpI32DivU).LocalSet(bh)
	f.LocalGet(bh).Op(wasm.OpI32Eqz)
	f.If(wasm.BlockEmpty, func() { f.I32Const(1).LocalSet(bh) }, nil)

	f.ForI32(oy, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(ResizeTarget)}, 1, func() {
		f.ForI32(ox, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(ResizeTarget)}, 1, func() {
			f.ForI32(ch, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(4)}, 1, func() {
				f.I32Const(0).LocalSet(acc)
				f.I32Const(0).LocalSet(cnt)
				f.ForI32(sy, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, bh)}, 1, func() {
					f.ForI32(sx, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, bw)}, 1, func() {
						// src pixel (oy*bh+sy, ox*bw+sx), clamped rows/cols
						// are unnecessary: bw*64 <= w, bh*64 <= h.
						f.LocalGet(oy).LocalGet(bh).Op(wasm.OpI32Mul).LocalGet(sy).Op(wasm.OpI32Add)
						f.LocalGet(0).Op(wasm.OpI32Mul) // * w
						f.LocalGet(ox).LocalGet(bw).Op(wasm.OpI32Mul).LocalGet(sx).Op(wasm.OpI32Add)
						f.Op(wasm.OpI32Add)
						f.I32Const(4).Op(wasm.OpI32Mul).LocalGet(ch).Op(wasm.OpI32Add)
						f.Load(wasm.OpI32Load8U, InBase)
						f.LocalGet(acc).Op(wasm.OpI32Add).LocalSet(acc)
						f.LocalGet(cnt).I32Const(1).Op(wasm.OpI32Add).LocalSet(cnt)
					})
				})
				// out[(oy*64+ox)*4+ch] = acc/cnt
				f.LocalGet(oy).I32Const(ResizeTarget).Op(wasm.OpI32Mul).LocalGet(ox).Op(wasm.OpI32Add)
				f.I32Const(4).Op(wasm.OpI32Mul).LocalGet(ch).Op(wasm.OpI32Add)
				f.LocalGet(acc).LocalGet(cnt).Op(wasm.OpI32DivU)
				f.Store(wasm.OpI32Store8, OutBase)
			})
		})
	})
	f.I32Const(ResizeTarget * ResizeTarget * 4)
	b.ExportFunc("run", f.End())
	return b.Build()
}

// NativeResize mirrors BuildResize over an RGBA byte slice.
func NativeResize(img []byte, w, h int) []byte {
	bw := w / ResizeTarget
	if bw == 0 {
		bw = 1
	}
	bh := h / ResizeTarget
	if bh == 0 {
		bh = 1
	}
	out := make([]byte, ResizeTarget*ResizeTarget*4)
	for oy := 0; oy < ResizeTarget; oy++ {
		for ox := 0; ox < ResizeTarget; ox++ {
			for ch := 0; ch < 4; ch++ {
				acc, cnt := 0, 0
				for sy := 0; sy < bh; sy++ {
					for sx := 0; sx < bw; sx++ {
						acc += int(img[((oy*bh+sy)*w+(ox*bw+sx))*4+ch])
						cnt++
					}
				}
				out[(oy*ResizeTarget+ox)*4+ch] = byte(acc / cnt)
			}
		}
	}
	return out
}

// TestImage generates the deterministic RGBA test image used by the FaaS
// evaluation (paper: "random input images with sizes between 64 and 1024
// pixels").
func TestImage(w, h int) []byte {
	img := make([]byte, w*h*4)
	s := uint32(0x1234567)
	for i := range img {
		s = s*1664525 + 1013904223
		img[i] = byte(s >> 24)
	}
	return img
}
