package workloads_test

import (
	"bytes"
	"math"
	"testing"

	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/wasm/validate"
	"acctee/internal/weights"
	"acctee/internal/workloads"
)

func TestMSieveMatchesNative(t *testing.T) {
	m, err := workloads.BuildMSieve()
	if err != nil {
		t.Fatal(err)
	}
	if err := validate.Module(m); err != nil {
		t.Fatal(err)
	}
	vm, err := interp.Instantiate(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo    uint64
		count uint32
	}{
		{10_000_019, 5},    // includes a prime (spf == n)
		{1_000_000, 8},     // small composites
		{2_147_483_640, 4}, // near 2^31
		{999_999_937, 2},   // large prime in range
	}
	for _, tc := range cases {
		res, err := vm.InvokeExport("run", tc.lo, uint64(tc.count))
		if err != nil {
			t.Fatalf("run(%d,%d): %v", tc.lo, tc.count, err)
		}
		want := workloads.NativeMSieve(tc.lo, tc.count)
		if res[0] != want {
			t.Errorf("msieve(%d,%d) = %d, want %d", tc.lo, tc.count, res[0], want)
		}
	}
}

func TestPCMatchesNative(t *testing.T) {
	m, err := workloads.BuildPC(12, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := validate.Module(m); err != nil {
		t.Fatal(err)
	}
	vm, err := interp.Instantiate(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.InvokeExport("run")
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.NativePC(12, 30)
	if res[0] != want {
		t.Errorf("pc = %#x, want %#x", res[0], want)
	}
	if edges := res[0] >> 32; edges == 0 || edges == 12*11 {
		t.Errorf("degenerate edge count %d — threshold not discriminating", edges)
	}
}

func TestSubsetSumMatchesNative(t *testing.T) {
	m, err := workloads.BuildSubsetSum()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := interp.Instantiate(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ n, target uint32 }{
		{10, 500}, {25, 2000}, {40, 10000},
	} {
		res, err := vm.InvokeExport("run", uint64(tc.n), uint64(tc.target))
		if err != nil {
			t.Fatalf("run(%d,%d): %v", tc.n, tc.target, err)
		}
		want := workloads.NativeSubsetSum(tc.n, tc.target)
		if res[0] != want {
			t.Errorf("subsetsum(%d,%d) = %#x, want %#x", tc.n, tc.target, res[0], want)
		}
	}
}

func TestDarknetMatchesNative(t *testing.T) {
	m, err := workloads.BuildDarknet(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := validate.Module(m); err != nil {
		t.Fatal(err)
	}
	vm, err := interp.Instantiate(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.InvokeExport("run")
	if err != nil {
		t.Fatal(err)
	}
	got := math.Float64frombits(res[0])
	want := workloads.NativeDarknet(16, 4)
	if got != want {
		t.Errorf("darknet = %v, want %v", got, want)
	}
}

func TestEchoMatchesNative(t *testing.T) {
	m, err := workloads.BuildEcho()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := interp.Instantiate(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	payload := workloads.TestImage(16, 16) // 1 KiB
	copy(vm.Memory()[workloads.InBase:], payload)
	res, err := vm.InvokeExport("run", uint64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	n := int(uint32(res[0]))
	got := vm.Memory()[workloads.OutBase : workloads.OutBase+n]
	if !bytes.Equal(got, workloads.NativeEcho(payload)) {
		t.Error("echo output differs from input")
	}
}

func TestResizeMatchesNativeAndJS(t *testing.T) {
	m, err := workloads.BuildResize()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := interp.Instantiate(m, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{64, 128, 200} {
		img := workloads.TestImage(size, size)
		copy(vm.Memory()[workloads.InBase:], img)
		res, err := vm.InvokeExport("run", uint64(size), uint64(size))
		if err != nil {
			t.Fatalf("resize %d: %v", size, err)
		}
		n := int(uint32(res[0]))
		if n != workloads.ResizeTarget*workloads.ResizeTarget*4 {
			t.Fatalf("resize output length %d", n)
		}
		got := vm.Memory()[workloads.OutBase : workloads.OutBase+n]
		want := workloads.NativeResize(img, size, size)
		if !bytes.Equal(got, want) {
			t.Errorf("resize %d: wasm and native outputs differ", size)
		}
		js := workloads.JSResize(img, size, size)
		if !bytes.Equal(js, want) {
			t.Errorf("resize %d: JS baseline output differs", size)
		}
	}
}

func TestJSEcho(t *testing.T) {
	in := workloads.TestImage(8, 8)
	if !bytes.Equal(workloads.JSEcho(in), in) {
		t.Error("JS echo mangled payload")
	}
}

// TestWorkloadsInstrumentedExact checks the exactness invariant on the
// scenario workloads (they exercise call-heavy and bit-twiddling code paths
// the PolyBench kernels do not).
func TestWorkloadsInstrumentedExact(t *testing.T) {
	msieve, err := workloads.BuildMSieve()
	if err != nil {
		t.Fatal(err)
	}
	subset, err := workloads.BuildSubsetSum()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []uint64
	}{
		{"msieve", []uint64{1_000_003, 3}},
		{"subsetsum", []uint64{15, 800}},
	} {
		var mod = msieve
		if tc.name == "subsetsum" {
			mod = subset
		}
		ref, err := interp.Instantiate(mod, interp.Config{CostModel: weights.Unit()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.InvokeExport("run", tc.args...); err != nil {
			t.Fatalf("%s ref: %v", tc.name, err)
		}
		want := ref.Cost()
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			res, err := instrument.Instrument(mod, instrument.Options{Level: lvl})
			if err != nil {
				t.Fatalf("%s %v: %v", tc.name, lvl, err)
			}
			vm, err := interp.Instantiate(res.Module, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := vm.InvokeExport("run", tc.args...); err != nil {
				t.Fatalf("%s %v run: %v", tc.name, lvl, err)
			}
			got, _ := vm.Global(res.CounterGlobal)
			if got != want {
				t.Errorf("%s %v: counter %d != %d", tc.name, lvl, got, want)
			}
		}
	}
}
