// Package sgx simulates the Intel SGX primitives AccTEE builds on (paper
// §2.2): enclaves with code measurements, local and remote attestation via
// a quoting enclave and an attestation service, and an EPC cost model that
// reproduces the performance cliff of hardware enclaves whose working set
// exceeds the enclave page cache.
//
// Substitution note (DESIGN.md §1): real SGX hardware is unavailable in
// this environment. The simulation preserves the property the paper relies
// on — both parties can cryptographically verify *which code* produced an
// artefact before trusting it — using SHA-256 measurements and ECDSA-P256
// signatures, and it preserves the performance *shape* via the EPC model.
package sgx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// Mode distinguishes hardware-mode enclaves (EPC paging and transition
// penalties apply) from simulation mode (no hardware charges), matching the
// paper's WASM-SGX HW and WASM-SGX SIM setups.
type Mode int

// Enclave execution modes.
const (
	ModeSimulation Mode = iota + 1
	ModeHardware
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeSimulation:
		return "SIM"
	case ModeHardware:
		return "HW"
	}
	return "mode?"
}

// Measurement identifies enclave code (MRENCLAVE analogue).
type Measurement [32]byte

// MeasureCode computes the measurement of enclave code.
func MeasureCode(code []byte) Measurement { return sha256.Sum256(code) }

// String renders the first bytes of the measurement in hex.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// CostParams parameterise the hardware cost model. Defaults follow the
// paper: 93 MB of usable EPC and expensive enclave transitions.
type CostParams struct {
	// UsableEPCBytes is the EPC capacity before paging sets in.
	UsableEPCBytes uint64
	// PageFaultCycles is charged per EPC page-in (includes re-encryption).
	PageFaultCycles uint64
	// TransitionCycles is charged per enclave entry/exit (ecall/ocall).
	TransitionCycles uint64
}

// DefaultCostParams returns the paper-calibrated parameters.
func DefaultCostParams() CostParams {
	return CostParams{
		UsableEPCBytes:   93 << 20,
		PageFaultCycles:  12000,
		TransitionCycles: 8000,
	}
}

// Enclave is a simulated SGX enclave: measured code plus a key pair whose
// public half is bound to the measurement through attestation.
type Enclave struct {
	measurement Measurement
	mode        Mode
	costs       CostParams
	key         *ecdsa.PrivateKey
	// transitions is atomic: concurrent sandbox runs cross the boundary
	// from multiple goroutines.
	transitions atomic.Uint64
}

// NewEnclave creates an enclave over the given code.
func NewEnclave(code []byte, mode Mode, costs CostParams) (*Enclave, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sgx: generate enclave key: %w", err)
	}
	return &Enclave{
		measurement: MeasureCode(code),
		mode:        mode,
		costs:       costs,
		key:         key,
	}, nil
}

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Mode returns the enclave's execution mode.
func (e *Enclave) Mode() Mode { return e.mode }

// PublicKey returns the enclave's public key (bound to the measurement via
// the report's user data during attestation).
func (e *Enclave) PublicKey() *ecdsa.PublicKey { return &e.key.PublicKey }

// Sign signs data with the enclave's private key. Only code inside the
// enclave can produce such signatures; that is what makes logs and evidence
// trustworthy once the enclave is attested.
func (e *Enclave) Sign(data []byte) ([]byte, error) {
	h := sha256.Sum256(data)
	return ecdsa.SignASN1(rand.Reader, e.key, h[:])
}

// VerifyBy checks a signature against an arbitrary public key.
func VerifyBy(pub *ecdsa.PublicKey, data, sig []byte) bool {
	h := sha256.Sum256(data)
	return ecdsa.VerifyASN1(pub, h[:], sig)
}

// Transition records one enclave boundary crossing and returns its cycle
// cost (zero in simulation mode, like the paper's SIM runs). It is safe to
// call from concurrent sandbox runs.
func (e *Enclave) Transition() uint64 {
	e.transitions.Add(1)
	if e.mode != ModeHardware {
		return 0
	}
	return e.costs.TransitionCycles
}

// Transitions returns the number of recorded boundary crossings.
func (e *Enclave) Transitions() uint64 { return e.transitions.Load() }

// TransitionCost returns the per-crossing cycle charge (zero in simulation
// mode) WITHOUT recording a crossing — for callers attributing a crossing
// someone else already recorded (e.g. the library OS) to a specific run.
func (e *Enclave) TransitionCost() uint64 {
	if e.mode != ModeHardware {
		return 0
	}
	return e.costs.TransitionCycles
}

// Report is a local attestation report (analogue of the SGX REPORT
// structure): the enclave's measurement plus caller-chosen user data, e.g.
// the hash of the enclave's public key.
type Report struct {
	Measurement Measurement
	UserData    [64]byte
}

// CreateReport produces a report binding userData to this enclave.
func (e *Enclave) CreateReport(userData []byte) Report {
	var r Report
	r.Measurement = e.measurement
	copy(r.UserData[:], userData)
	return r
}

// PubKeyUserData derives report user data binding an ECDSA public key.
func PubKeyUserData(pub *ecdsa.PublicKey) []byte {
	b := elliptic.Marshal(elliptic.P256(), pub.X, pub.Y)
	h := sha256.Sum256(b)
	return h[:]
}

// CheckpointUserData derives report user data binding both the enclave's
// public key and a ledger checkpoint hash. A quote over such a report
// attests not just which code is running but the exact accounting-ledger
// state (chain heads, totals) it vouched for — the paper's signed usage log
// lifted to a whole checkpointed history.
func CheckpointUserData(pub *ecdsa.PublicKey, checkpointHash [32]byte) []byte {
	b := elliptic.Marshal(elliptic.P256(), pub.X, pub.Y)
	h := sha256.New()
	h.Write(b)
	h.Write(checkpointHash[:])
	return h.Sum(nil)
}

// marshalReport serialises a report for signing.
func marshalReport(r Report) []byte {
	out := make([]byte, 0, 96)
	out = append(out, r.Measurement[:]...)
	out = append(out, r.UserData[:]...)
	return out
}

// Quote is a remotely-verifiable statement: a report signed by the
// platform's quoting enclave.
type Quote struct {
	Report    Report
	Signature []byte
}

// QuotingEnclave signs reports produced on its platform (paper §2.2). Its
// key is provisioned with the attestation service.
type QuotingEnclave struct {
	key *ecdsa.PrivateKey
}

// NewQuotingEnclave creates a platform quoting enclave.
func NewQuotingEnclave() (*QuotingEnclave, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sgx: generate QE key: %w", err)
	}
	return &QuotingEnclave{key: key}, nil
}

// PublicKey returns the quoting enclave's provisioning key.
func (q *QuotingEnclave) PublicKey() *ecdsa.PublicKey { return &q.key.PublicKey }

// QuoteReport signs a report, producing a quote.
func (q *QuotingEnclave) QuoteReport(r Report) (Quote, error) {
	h := sha256.Sum256(marshalReport(r))
	sig, err := ecdsa.SignASN1(rand.Reader, q.key, h[:])
	if err != nil {
		return Quote{}, fmt.Errorf("sgx: quote: %w", err)
	}
	return Quote{Report: r, Signature: sig}, nil
}

// Attestation errors.
var (
	ErrUnknownPlatform   = errors.New("sgx: quote not signed by a registered platform")
	ErrBadQuoteSignature = errors.New("sgx: quote signature invalid")
	ErrWrongMeasurement  = errors.New("sgx: enclave measurement does not match expectation")
)

// AttestationService verifies quotes against registered platforms — the
// analogue of the Intel Attestation Service (IAS) the paper relies on for
// remote attestation.
type AttestationService struct {
	platforms map[string]*ecdsa.PublicKey
}

// NewAttestationService returns an empty service.
func NewAttestationService() *AttestationService {
	return &AttestationService{platforms: make(map[string]*ecdsa.PublicKey)}
}

// RegisterPlatform provisions a quoting enclave's key (EPID analogue).
func (s *AttestationService) RegisterPlatform(name string, qe *QuotingEnclave) {
	s.platforms[name] = qe.PublicKey()
}

// VerifyQuote checks that the quote was produced by a registered platform's
// quoting enclave.
func (s *AttestationService) VerifyQuote(q Quote) error {
	h := sha256.Sum256(marshalReport(q.Report))
	for _, pub := range s.platforms {
		if ecdsa.VerifyASN1(pub, h[:], q.Signature) {
			return nil
		}
	}
	if len(s.platforms) == 0 {
		return ErrUnknownPlatform
	}
	return ErrBadQuoteSignature
}

// Attest performs the full remote-attestation check a challenger runs: the
// quote must verify, the measurement must match the expected (audited)
// enclave code, and the report must bind the enclave's public key.
func (s *AttestationService) Attest(q Quote, expected Measurement, pub *ecdsa.PublicKey) error {
	return s.attestUserData(q, expected, PubKeyUserData(pub),
		"sgx: report does not bind the presented public key")
}

// AttestCheckpoint verifies a quote whose report binds the enclave key AND
// a specific ledger checkpoint (see CheckpointUserData): proof that the
// attested accounting enclave stood behind exactly that ledger state.
func (s *AttestationService) AttestCheckpoint(q Quote, expected Measurement, pub *ecdsa.PublicKey, checkpointHash [32]byte) error {
	return s.attestUserData(q, expected, CheckpointUserData(pub, checkpointHash),
		"sgx: report does not bind the presented checkpoint")
}

func (s *AttestationService) attestUserData(q Quote, expected Measurement, want []byte, mismatch string) error {
	if err := s.VerifyQuote(q); err != nil {
		return err
	}
	if q.Report.Measurement != expected {
		return ErrWrongMeasurement
	}
	for i, b := range want {
		if q.Report.UserData[i] != b {
			return errors.New(mismatch)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// EPC cost model

// EPCModel is an interp.CostModel combining an instruction weight table
// with hardware-mode EPC paging penalties. Resident pages are tracked with
// a FIFO set sized to the usable EPC; accesses to non-resident pages charge
// PageFaultCycles, reproducing the paper's observation that hardware-mode
// overhead explodes once the working set exceeds the EPC (§5.1).
type EPCModel struct {
	weights  *weights.Table
	mode     Mode
	params   CostParams
	pageSize uint64
	capacity int
	resident map[uint64]int // page -> ring slot
	ring     []uint64
	head     int
	faults   uint64
	lastPage uint64 // fast path for sequential access runs
	hasLast  bool
}

// NewEPCModel builds an EPC model over per-instruction weights. The weights
// argument may be nil for a pure paging model.
func NewEPCModel(mode Mode, params CostParams, w *weights.Table) *EPCModel {
	const page = 4096
	capacity := int(params.UsableEPCBytes / page)
	if capacity < 1 {
		capacity = 1
	}
	return &EPCModel{
		weights:  w,
		mode:     mode,
		params:   params,
		pageSize: page,
		capacity: capacity,
		resident: make(map[uint64]int, capacity),
		ring:     make([]uint64, 0, capacity),
	}
}

// InstrCost implements interp.CostModel: the instruction weight, if a
// weight table is attached.
func (m *EPCModel) InstrCost(op wasm.Opcode) uint64 {
	if m.weights == nil {
		return 0
	}
	return m.weights.InstrCost(op)
}

// touch charges for one page access.
func (m *EPCModel) touch(page uint64) uint64 {
	if m.mode != ModeHardware {
		return 0
	}
	// Sequential runs hit the same page repeatedly; skip the map.
	if m.hasLast && page == m.lastPage {
		return 0
	}
	if _, ok := m.resident[page]; ok {
		m.lastPage = page
		m.hasLast = true
		return 0
	}
	m.faults++
	if len(m.ring) < m.capacity {
		m.resident[page] = len(m.ring)
		m.ring = append(m.ring, page)
		// Cold faults on first touch are charged at a reduced rate: the
		// page is EADDed once, not paged in and out.
		return m.params.PageFaultCycles / 4
	}
	evict := m.ring[m.head]
	delete(m.resident, evict)
	m.ring[m.head] = page
	m.resident[page] = m.head
	m.head = (m.head + 1) % m.capacity
	return m.params.PageFaultCycles
}

// MemCost implements interp.CostModel.
func (m *EPCModel) MemCost(addr, width uint32, store bool, memSize uint32) uint64 {
	first := uint64(addr) / m.pageSize
	last := (uint64(addr) + uint64(width) - 1) / m.pageSize
	var c uint64
	for p := first; p <= last; p++ {
		c += m.touch(p)
	}
	return c
}

// PageFaults reports the number of simulated EPC faults.
func (m *EPCModel) PageFaults() uint64 { return m.faults }

// Hash of cost parameters, included in attestation evidence so both parties
// agree on the cost model.
func (p CostParams) Hash() [32]byte {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], p.UsableEPCBytes)
	binary.LittleEndian.PutUint64(b[8:], p.PageFaultCycles)
	binary.LittleEndian.PutUint64(b[16:], p.TransitionCycles)
	return sha256.Sum256(b[:])
}
