package sgx_test

import (
	"crypto/sha256"
	"errors"
	"testing"

	"acctee/internal/sgx"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

func TestMeasurementDeterministic(t *testing.T) {
	a := sgx.MeasureCode([]byte("enclave v1"))
	b := sgx.MeasureCode([]byte("enclave v1"))
	c := sgx.MeasureCode([]byte("enclave v2"))
	if a != b {
		t.Error("same code produced different measurements")
	}
	if a == c {
		t.Error("different code produced same measurement")
	}
}

func TestSignVerify(t *testing.T) {
	e, err := sgx.NewEnclave([]byte("code"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := e.Sign([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !sgx.VerifyBy(e.PublicKey(), []byte("payload"), sig) {
		t.Error("valid signature rejected")
	}
	if sgx.VerifyBy(e.PublicKey(), []byte("tampered"), sig) {
		t.Error("tampered payload accepted")
	}
	other, _ := sgx.NewEnclave([]byte("code"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if sgx.VerifyBy(other.PublicKey(), []byte("payload"), sig) {
		t.Error("signature verified under wrong key")
	}
}

func TestAttestationChain(t *testing.T) {
	qe, err := sgx.NewQuotingEnclave()
	if err != nil {
		t.Fatal(err)
	}
	svc := sgx.NewAttestationService()
	svc.RegisterPlatform("machine-1", qe)

	e, _ := sgx.NewEnclave([]byte("audited code"), sgx.ModeHardware, sgx.DefaultCostParams())
	rep := e.CreateReport(sgx.PubKeyUserData(e.PublicKey()))
	q, err := qe.QuoteReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	expected := sgx.MeasureCode([]byte("audited code"))
	if err := svc.Attest(q, expected, e.PublicKey()); err != nil {
		t.Errorf("honest attestation failed: %v", err)
	}

	// wrong measurement expectation
	wrong := sgx.MeasureCode([]byte("evil code"))
	if err := svc.Attest(q, wrong, e.PublicKey()); !errors.Is(err, sgx.ErrWrongMeasurement) {
		t.Errorf("wrong measurement: %v", err)
	}

	// quote from unregistered platform
	rogueQE, _ := sgx.NewQuotingEnclave()
	rq, _ := rogueQE.QuoteReport(rep)
	if err := svc.Attest(rq, expected, e.PublicKey()); err == nil {
		t.Error("rogue platform quote accepted")
	}

	// report binding a different key
	imposter, _ := sgx.NewEnclave([]byte("audited code"), sgx.ModeHardware, sgx.DefaultCostParams())
	if err := svc.Attest(q, expected, imposter.PublicKey()); err == nil {
		t.Error("key substitution accepted")
	}

	// tampered quote signature
	bad := q
	bad.Signature = append([]byte(nil), q.Signature...)
	bad.Signature[4] ^= 0xFF
	if err := svc.VerifyQuote(bad); err == nil {
		t.Error("tampered quote accepted")
	}
}

// TestVerifyQuoteNegativePaths pins every rejection path of
// AttestationService.VerifyQuote individually (satellite: previously only
// the happy path was covered directly).
func TestVerifyQuoteNegativePaths(t *testing.T) {
	qe, err := sgx.NewQuotingEnclave()
	if err != nil {
		t.Fatal(err)
	}
	svc := sgx.NewAttestationService()
	svc.RegisterPlatform("machine-1", qe)

	e, _ := sgx.NewEnclave([]byte("audited"), sgx.ModeHardware, sgx.DefaultCostParams())
	rep := e.CreateReport(sgx.PubKeyUserData(e.PublicKey()))
	q, err := qe.QuoteReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.VerifyQuote(q); err != nil {
		t.Fatalf("honest quote rejected: %v", err)
	}

	// Tampered report measurement: the quote signature no longer covers it.
	bad := q
	bad.Report.Measurement[3] ^= 0x40
	if err := svc.VerifyQuote(bad); !errors.Is(err, sgx.ErrBadQuoteSignature) {
		t.Errorf("tampered measurement: %v", err)
	}

	// Tampered report user data.
	bad = q
	bad.Report.UserData[17] ^= 1
	if err := svc.VerifyQuote(bad); !errors.Is(err, sgx.ErrBadQuoteSignature) {
		t.Errorf("tampered user data: %v", err)
	}

	// Quote signed by a quoting enclave of an unregistered platform.
	rogueQE, _ := sgx.NewQuotingEnclave()
	rogue, _ := rogueQE.QuoteReport(rep)
	if err := svc.VerifyQuote(rogue); !errors.Is(err, sgx.ErrBadQuoteSignature) {
		t.Errorf("wrong platform key: %v", err)
	}

	// Truncated signature.
	bad = q
	bad.Signature = append([]byte(nil), q.Signature[:len(q.Signature)-2]...)
	if err := svc.VerifyQuote(bad); !errors.Is(err, sgx.ErrBadQuoteSignature) {
		t.Errorf("truncated signature: %v", err)
	}

	// Empty signature.
	bad = q
	bad.Signature = nil
	if err := svc.VerifyQuote(bad); !errors.Is(err, sgx.ErrBadQuoteSignature) {
		t.Errorf("empty signature: %v", err)
	}

	// A service with no registered platforms reports the distinct error.
	empty := sgx.NewAttestationService()
	if err := empty.VerifyQuote(q); !errors.Is(err, sgx.ErrUnknownPlatform) {
		t.Errorf("empty platform registry: %v", err)
	}
}

// TestAttestCheckpointBinding: a checkpoint-bound report attests exactly
// one (key, checkpoint) pair.
func TestAttestCheckpointBinding(t *testing.T) {
	qe, _ := sgx.NewQuotingEnclave()
	svc := sgx.NewAttestationService()
	svc.RegisterPlatform("machine-1", qe)

	e, _ := sgx.NewEnclave([]byte("accounting enclave"), sgx.ModeHardware, sgx.DefaultCostParams())
	expected := sgx.MeasureCode([]byte("accounting enclave"))
	cpHash := sha256.Sum256([]byte("checkpoint 7"))

	rep := e.CreateReport(sgx.CheckpointUserData(e.PublicKey(), cpHash))
	q, err := qe.QuoteReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AttestCheckpoint(q, expected, e.PublicKey(), cpHash); err != nil {
		t.Fatalf("honest checkpoint attestation failed: %v", err)
	}
	// A different checkpoint hash must not attest under the same quote.
	other := sha256.Sum256([]byte("checkpoint 8"))
	if err := svc.AttestCheckpoint(q, expected, e.PublicKey(), other); err == nil {
		t.Error("quote attested a checkpoint it does not bind")
	}
	// Nor a different key.
	imposter, _ := sgx.NewEnclave([]byte("accounting enclave"), sgx.ModeHardware, sgx.DefaultCostParams())
	if err := svc.AttestCheckpoint(q, expected, imposter.PublicKey(), cpHash); err == nil {
		t.Error("quote attested a key it does not bind")
	}
	// The plain-key attestation path must not accept a checkpoint-bound
	// report (different user-data derivation).
	if err := svc.Attest(q, expected, e.PublicKey()); err == nil {
		t.Error("checkpoint-bound report attested as a plain key binding")
	}
}

func TestTransitionsChargeOnlyInHardware(t *testing.T) {
	params := sgx.DefaultCostParams()
	hw, _ := sgx.NewEnclave([]byte("c"), sgx.ModeHardware, params)
	sim, _ := sgx.NewEnclave([]byte("c"), sgx.ModeSimulation, params)
	if c := hw.Transition(); c != params.TransitionCycles {
		t.Errorf("hw transition cost = %d, want %d", c, params.TransitionCycles)
	}
	if c := sim.Transition(); c != 0 {
		t.Errorf("sim transition cost = %d, want 0", c)
	}
	if hw.Transitions() != 1 || sim.Transitions() != 1 {
		t.Error("transition counters wrong")
	}
}

func TestEPCModelPaging(t *testing.T) {
	params := sgx.CostParams{UsableEPCBytes: 8 * 4096, PageFaultCycles: 1000, TransitionCycles: 0}

	// Working set within EPC: only cold faults.
	m := sgx.NewEPCModel(sgx.ModeHardware, params, nil)
	var within uint64
	for rep := 0; rep < 10; rep++ {
		for page := 0; page < 8; page++ {
			within += m.MemCost(uint32(page*4096), 4, false, 1<<20)
		}
	}
	if m.PageFaults() != 8 {
		t.Errorf("faults within EPC = %d, want 8 cold faults", m.PageFaults())
	}

	// Working set twice the EPC with FIFO-hostile sweep: faults every round.
	m2 := sgx.NewEPCModel(sgx.ModeHardware, params, nil)
	var beyond uint64
	for rep := 0; rep < 10; rep++ {
		for page := 0; page < 16; page++ {
			beyond += m2.MemCost(uint32(page*4096), 4, false, 1<<20)
		}
	}
	if beyond <= within*2 {
		t.Errorf("EPC thrashing cost %d not clearly above resident cost %d", beyond, within)
	}

	// Simulation mode never charges.
	m3 := sgx.NewEPCModel(sgx.ModeSimulation, params, nil)
	if c := m3.MemCost(0, 8, true, 1<<20); c != 0 || m3.PageFaults() != 0 {
		t.Errorf("sim mode charged %d cycles, %d faults", c, m3.PageFaults())
	}
}

func TestEPCModelInstrWeights(t *testing.T) {
	tbl := weights.Unit()
	m := sgx.NewEPCModel(sgx.ModeHardware, sgx.DefaultCostParams(), tbl)
	if c := m.InstrCost(wasm.OpI32Add); c != 1 {
		t.Errorf("i32.add cost = %d, want 1", c)
	}
	if c := m.InstrCost(wasm.OpEnd); c != 0 {
		t.Errorf("end cost = %d, want 0", c)
	}
}

func TestCostParamsHash(t *testing.T) {
	a := sgx.DefaultCostParams()
	b := sgx.DefaultCostParams()
	if a.Hash() != b.Hash() {
		t.Error("equal params hash differently")
	}
	b.PageFaultCycles++
	if a.Hash() == b.Hash() {
		t.Error("different params hash equally")
	}
}
