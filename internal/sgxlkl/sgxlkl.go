// Package sgxlkl simulates the SGX-LKL library OS layer AccTEE runs on
// (paper §3.4, §4): a minimal in-enclave "kernel" that services system
// calls for enclave code. Calls that can be handled inside the enclave
// (clock, in-memory files) stay inside; calls that need external resources
// (network, block device) cross the enclave boundary, are charged an
// enclave transition, and are accounted as I/O. Block-device contents can
// be transparently encrypted (LKL's block-device encryption analogue).
package sgxlkl

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"acctee/internal/sgx"
)

// Errors returned by the library OS.
var (
	ErrBadFD     = errors.New("sgxlkl: bad file descriptor")
	ErrBadLength = errors.New("sgxlkl: bad length")
)

// LibOS is one library-OS instance bound to an enclave. It tracks I/O
// volume crossing the enclave boundary so the accounting enclave can fold
// it into the usage log.
type LibOS struct {
	mu       sync.Mutex
	enclave  *sgx.Enclave
	files    map[int32]*file
	nextFD   int32
	netIn    uint64
	netOut   uint64
	diskIn   uint64
	diskOut  uint64
	extra    uint64 // simulated cycles charged for boundary crossings
	clockSeq uint64
	// netPeer receives writes to the network fd and supplies reads.
	netPeer *Pipe
	block   *blockDevice
}

type file struct {
	kind byte // 'm' in-memory, 'n' network, 'b' block device
	data []byte
	pos  int
}

// New creates a library OS bound to the enclave.
func New(enclave *sgx.Enclave) *LibOS {
	return &LibOS{
		enclave: enclave,
		files:   map[int32]*file{},
		nextFD:  3,
	}
}

// Pipe is an in-memory bidirectional byte channel standing in for a TCP
// connection to the untrusted host network stack.
type Pipe struct {
	mu  sync.Mutex
	in  []byte // host -> enclave
	out []byte // enclave -> host
}

// HostWrite feeds bytes toward the enclave.
func (p *Pipe) HostWrite(b []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.in = append(p.in, b...)
}

// HostRead drains bytes the enclave sent out.
func (p *Pipe) HostRead() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.out
	p.out = nil
	return b
}

// AttachNetwork connects the network fd backend.
func (l *LibOS) AttachNetwork(p *Pipe) { l.netPeer = p }

// blockDevice is a host-side disk image, optionally AES-CTR encrypted so
// the untrusted host never sees plaintext (LKL block-device encryption).
type blockDevice struct {
	image  []byte
	cipher cipher.Block
}

// AttachBlockDevice creates a block device of the given size; when key is
// non-nil the device is encrypted with AES-CTR derived from it.
func (l *LibOS) AttachBlockDevice(size int, key []byte) error {
	bd := &blockDevice{image: make([]byte, size)}
	if key != nil {
		k := sha256.Sum256(key)
		c, err := aes.NewCipher(k[:])
		if err != nil {
			return fmt.Errorf("sgxlkl: block cipher: %w", err)
		}
		bd.cipher = c
	}
	l.block = bd
	return nil
}

func (bd *blockDevice) xorStream(off int, data []byte) {
	// AES-CTR keyed by block offset: deterministic, seekable.
	iv := make([]byte, aes.BlockSize)
	for i := 0; i < 8; i++ {
		iv[i] = byte(uint64(off/aes.BlockSize) >> (8 * i))
	}
	ctr := cipher.NewCTR(bd.cipher, iv)
	// advance to offset within block
	skip := off % aes.BlockSize
	if skip > 0 {
		pad := make([]byte, skip)
		ctr.XORKeyStream(pad, pad)
	}
	ctr.XORKeyStream(data, data)
}

// OpenMemFile creates an in-enclave memory file preloaded with data and
// returns its fd. Reads/writes never leave the enclave.
func (l *LibOS) OpenMemFile(data []byte) int32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	fd := l.nextFD
	l.nextFD++
	l.files[fd] = &file{kind: 'm', data: append([]byte(nil), data...)}
	return fd
}

// NetFD is the fixed descriptor for the simulated network socket.
const NetFD int32 = 1

// BlockFD is the fixed descriptor for the simulated block device.
const BlockFD int32 = 2

// Read services a read system call; external fds charge a transition and
// account the traffic.
func (l *LibOS) Read(fd int32, buf []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch fd {
	case NetFD:
		if l.netPeer == nil {
			return 0, ErrBadFD
		}
		l.extra += l.enclave.Transition()
		l.netPeer.mu.Lock()
		n := copy(buf, l.netPeer.in)
		l.netPeer.in = l.netPeer.in[n:]
		l.netPeer.mu.Unlock()
		l.netIn += uint64(n)
		return n, nil
	case BlockFD:
		return 0, ErrBadFD // block reads go through ReadBlock
	default:
		f, ok := l.files[fd]
		if !ok {
			return 0, ErrBadFD
		}
		n := copy(buf, f.data[f.pos:])
		f.pos += n
		return n, nil
	}
}

// Write services a write system call.
func (l *LibOS) Write(fd int32, data []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch fd {
	case NetFD:
		if l.netPeer == nil {
			return 0, ErrBadFD
		}
		l.extra += l.enclave.Transition()
		l.netPeer.mu.Lock()
		l.netPeer.out = append(l.netPeer.out, data...)
		l.netPeer.mu.Unlock()
		l.netOut += uint64(len(data))
		return len(data), nil
	case BlockFD:
		return 0, ErrBadFD
	default:
		f, ok := l.files[fd]
		if !ok {
			return 0, ErrBadFD
		}
		f.data = append(f.data[:f.pos], data...)
		f.pos = len(f.data)
		return len(data), nil
	}
}

// ReadBlock reads from the block device at the given offset, decrypting if
// the device is encrypted. Crossing to the host disk charges a transition.
func (l *LibOS) ReadBlock(off int, buf []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.block == nil || off < 0 || off+len(buf) > len(l.block.image) {
		return ErrBadLength
	}
	l.extra += l.enclave.Transition()
	copy(buf, l.block.image[off:])
	if l.block.cipher != nil {
		l.block.xorStream(off, buf)
	}
	l.diskIn += uint64(len(buf))
	return nil
}

// WriteBlock writes to the block device, encrypting if configured.
func (l *LibOS) WriteBlock(off int, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.block == nil || off < 0 || off+len(data) > len(l.block.image) {
		return ErrBadLength
	}
	l.extra += l.enclave.Transition()
	tmp := append([]byte(nil), data...)
	if l.block.cipher != nil {
		l.block.xorStream(off, tmp)
	}
	copy(l.block.image[off:], tmp)
	l.diskOut += uint64(len(data))
	return nil
}

// RawImage exposes the host's view of the block device (ciphertext when
// encryption is enabled) — what a malicious infrastructure provider sees.
func (l *LibOS) RawImage() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.block == nil {
		return nil
	}
	return append([]byte(nil), l.block.image...)
}

// Clock returns a monotonically increasing lower-bound timestamp: SGX
// trusted time can be delayed by the host but never reversed (§2.2), which
// this models with a sequence the host cannot decrease.
func (l *LibOS) Clock() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clockSeq++
	return l.clockSeq
}

// IOStats reports accounted I/O volumes and the simulated cycles spent on
// enclave transitions.
func (l *LibOS) IOStats() (netIn, netOut, diskIn, diskOut, transitionCycles uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.netIn, l.netOut, l.diskIn, l.diskOut, l.extra
}

// TransitionCost returns the cycle charge of one enclave boundary crossing
// on this library OS's enclave (zero in simulation mode), without
// recording one — used by per-run accounting to attribute the crossings
// the I/O syscalls above already recorded.
func (l *LibOS) TransitionCost() uint64 { return l.enclave.TransitionCost() }
