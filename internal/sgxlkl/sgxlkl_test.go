package sgxlkl_test

import (
	"bytes"
	"testing"

	"acctee/internal/sgx"
	"acctee/internal/sgxlkl"
)

func newLibOS(t *testing.T, mode sgx.Mode) *sgxlkl.LibOS {
	t.Helper()
	e, err := sgx.NewEnclave([]byte("lkl test"), mode, sgx.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return sgxlkl.New(e)
}

func TestMemFileStaysInEnclave(t *testing.T) {
	l := newLibOS(t, sgx.ModeHardware)
	fd := l.OpenMemFile([]byte("secret data"))
	buf := make([]byte, 6)
	n, err := l.Read(fd, buf)
	if err != nil || n != 6 || string(buf) != "secret" {
		t.Fatalf("read: %v %d %q", err, n, buf)
	}
	// In-enclave file I/O must not charge transitions or count as I/O.
	netIn, netOut, diskIn, diskOut, cycles := l.IOStats()
	if netIn+netOut+diskIn+diskOut+cycles != 0 {
		t.Errorf("in-enclave file read leaked accounting: %d %d %d %d %d",
			netIn, netOut, diskIn, diskOut, cycles)
	}
}

func TestNetworkAccountedAndCharged(t *testing.T) {
	l := newLibOS(t, sgx.ModeHardware)
	pipe := &sgxlkl.Pipe{}
	l.AttachNetwork(pipe)
	pipe.HostWrite([]byte("request!"))
	buf := make([]byte, 8)
	if _, err := l.Read(sgxlkl.NetFD, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write(sgxlkl.NetFD, []byte("response")); err != nil {
		t.Fatal(err)
	}
	if got := pipe.HostRead(); string(got) != "response" {
		t.Errorf("host read %q", got)
	}
	netIn, netOut, _, _, cycles := l.IOStats()
	if netIn != 8 || netOut != 8 {
		t.Errorf("net accounting: in=%d out=%d", netIn, netOut)
	}
	if cycles == 0 {
		t.Error("hardware-mode network I/O charged no transition cycles")
	}
}

func TestBlockDeviceEncryption(t *testing.T) {
	l := newLibOS(t, sgx.ModeHardware)
	if err := l.AttachBlockDevice(4096, []byte("disk key")); err != nil {
		t.Fatal(err)
	}
	plain := []byte("confidential block payload")
	if err := l.WriteBlock(128, plain); err != nil {
		t.Fatal(err)
	}
	// The host's raw view must be ciphertext.
	raw := l.RawImage()
	if bytes.Contains(raw, plain) {
		t.Error("plaintext visible to the untrusted host")
	}
	// The enclave's view decrypts transparently.
	got := make([]byte, len(plain))
	if err := l.ReadBlock(128, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("decrypted read = %q", got)
	}
	_, _, diskIn, diskOut, _ := l.IOStats()
	if diskIn != uint64(len(plain)) || diskOut != uint64(len(plain)) {
		t.Errorf("disk accounting: in=%d out=%d", diskIn, diskOut)
	}
}

func TestBlockDevicePlaintextWhenUnkeyed(t *testing.T) {
	l := newLibOS(t, sgx.ModeSimulation)
	if err := l.AttachBlockDevice(1024, nil); err != nil {
		t.Fatal(err)
	}
	data := []byte("visible")
	if err := l.WriteBlock(0, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(l.RawImage(), data) {
		t.Error("unencrypted device should store plaintext")
	}
}

func TestBlockBoundsChecked(t *testing.T) {
	l := newLibOS(t, sgx.ModeSimulation)
	if err := l.AttachBlockDevice(256, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBlock(250, make([]byte, 10)); err == nil {
		t.Error("out-of-bounds block write accepted")
	}
	if err := l.ReadBlock(-1, make([]byte, 1)); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestBadFD(t *testing.T) {
	l := newLibOS(t, sgx.ModeSimulation)
	if _, err := l.Read(99, make([]byte, 1)); err == nil {
		t.Error("read from bad fd accepted")
	}
	if _, err := l.Write(sgxlkl.NetFD, []byte("x")); err == nil {
		t.Error("write to unattached network accepted")
	}
}

func TestClockMonotone(t *testing.T) {
	l := newLibOS(t, sgx.ModeSimulation)
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		now := l.Clock()
		if now <= prev {
			t.Fatalf("clock went backwards: %d after %d", now, prev)
		}
		prev = now
	}
}

func TestEncryptionIsSeekable(t *testing.T) {
	l := newLibOS(t, sgx.ModeSimulation)
	if err := l.AttachBlockDevice(8192, []byte("k")); err != nil {
		t.Fatal(err)
	}
	// Write two non-adjacent extents, read them back independently and in
	// one span crossing both.
	if err := l.WriteBlock(100, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBlock(104, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := l.ReadBlock(100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaabbbb" {
		t.Errorf("spanning read = %q", got)
	}
}
