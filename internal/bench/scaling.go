package bench

import (
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/faas"
	"acctee/internal/sgx"
	"acctee/internal/workloads"
)

// This file is the multi-core saturation matrix: the same fixed offered
// load (16 concurrent gateway clients, or 8 concurrent ledger appenders)
// re-measured at GOMAXPROCS 1, 4 and 16, with each cell's throughput
// expressed as a ratio over the single-proc cell. After the contention pass
// (lane affinity on the ledger's shard pick, striped instance free-lists,
// padded shard state, atomic gateway counters) the ratios are the figure
// that shows the hot path actually spreads across cores instead of
// serialising on shared locks. The rows land in the `scaling` sections of
// BENCH_faas.json and BENCH_ledger.json.
//
// The ratios are only meaningful up to the host's physical parallelism:
// GOMAXPROCS 16 on a 4-core box measures scheduler pressure, not speedup,
// and on a single-core host every cell collapses to ~1.0x. HostCPUs is
// recorded in the report so a reader (and the smoke gate) can tell a
// contention regression from a small machine.

// ScalingProcs is the GOMAXPROCS matrix.
var ScalingProcs = []int{1, 4, 16}

// ScalingTrials is the best-of count per cell.
var ScalingTrials = 3

// ScalingSmokeFloor is the bench-smoke gate: at GOMAXPROCS 4 both the
// pooled gateway and the bounded ledger must reach this multiple of their
// single-proc throughput. Enforced only on hosts with >= 4 CPUs.
const ScalingSmokeFloor = 1.8

// ScalingRow is one GOMAXPROCS cell.
type ScalingRow struct {
	GoMaxProcs int `json:"gomaxprocs"`
	// Workers is the fixed offered concurrency (gateway clients or
	// appender goroutines) — identical in every row, so the only variable
	// across rows is available parallelism.
	Workers int `json:"workers"`
	// Value is the cell's throughput in the report's Metric unit.
	Value float64 `json:"value"`
	// Scaling is Value over the GOMAXPROCS=1 row's Value.
	Scaling float64 `json:"scaling_vs_1proc"`
}

// ScalingReport is the `scaling` section of a bench JSON.
type ScalingReport struct {
	GeneratedAt string `json:"generated_at"`
	// HostCPUs is runtime.NumCPU() — the ceiling on honest speedup.
	HostCPUs int          `json:"host_cpus"`
	Metric   string       `json:"metric"`
	Rows     []ScalingRow `json:"rows"`
}

// stampScaling fills each row's ratio over the procs=1 row.
func stampScaling(rows []ScalingRow) {
	var base float64
	for _, r := range rows {
		if r.GoMaxProcs == 1 {
			base = r.Value
		}
	}
	if base <= 0 {
		return
	}
	for i := range rows {
		rows[i].Scaling = rows[i].Value / base
	}
}

// bestOfProcs runs cell() ScalingTrials times under the given GOMAXPROCS
// (restoring the ambient value) and returns the fastest throughput.
func bestOfProcs(procs int, cell func() (float64, error)) (float64, error) {
	ambient := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(ambient)
	var best float64
	for t := 0; t < ScalingTrials; t++ {
		v, err := cell()
		if err != nil {
			return 0, err
		}
		if v > best {
			best = v
		}
	}
	return best, nil
}

// FaaSScalingClients is the fixed gateway concurrency of the matrix (the
// paper's h2load runs use 10; 16 keeps every GOMAXPROCS cell oversubscribed).
const FaaSScalingClients = 16

// runFaaSScalingCell serves `requests` resize requests from a pooled
// gateway at the current GOMAXPROCS and returns req/s.
func runFaaSScalingCell(requests int) (float64, error) {
	const imgSide = 24
	payload := workloads.TestImage(imgSide, imgSide)
	srv, err := faas.NewServerWithOptions(faas.Resize, faas.SetupWASM,
		faas.ServerOptions{PoolPrewarm: FaaSScalingClients})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	res := faas.GenerateLoad(ts.URL, FaaSScalingClients, requests, payload, imgSide, imgSide)
	if res.Errors > 0 {
		return 0, fmt.Errorf("bench: faas scaling cell: %d failed requests", res.Errors)
	}
	return res.ReqPerSec, nil
}

// RunFaaSScaling measures pooled-gateway throughput across the GOMAXPROCS
// matrix at a fixed 16-client load.
func RunFaaSScaling(requests int, procs []int) (*ScalingReport, error) {
	if requests < 1 {
		requests = 1
	}
	if len(procs) == 0 {
		procs = ScalingProcs
	}
	rep := &ScalingReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		HostCPUs:    runtime.NumCPU(),
		Metric:      "req_per_sec",
	}
	for _, p := range procs {
		v, err := bestOfProcs(p, func() (float64, error) { return runFaaSScalingCell(requests) })
		if err != nil {
			return nil, fmt.Errorf("bench: faas scaling at %d procs: %w", p, err)
		}
		rep.Rows = append(rep.Rows, ScalingRow{GoMaxProcs: p, Workers: FaaSScalingClients, Value: v})
	}
	stampScaling(rep.Rows)
	return rep, nil
}

// LedgerScalingAppenders is the fixed appender concurrency of the matrix.
const LedgerScalingAppenders = 8

// runLedgerScalingCell appends `records` records from LedgerScalingAppenders
// concurrent goroutines to a bounded 4-shard ledger at the current
// GOMAXPROCS and returns appends/s. Bounded retention (the gateway's
// steady-state configuration) keeps compaction on the measured path.
func runLedgerScalingCell(records int) (float64, error) {
	encl, err := sgx.NewEnclave([]byte("scaling-bench AE"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		return 0, err
	}
	l, err := accounting.NewLedger(encl, accounting.LedgerOptions{
		Shards:    4,
		Retention: accounting.RetentionPolicy{MaxResidentRecords: RetentionMaxResident},
	})
	if err != nil {
		return 0, err
	}
	defer l.Close()

	each := records / LedgerScalingAppenders
	var wg sync.WaitGroup
	errs := make(chan error, LedgerScalingAppenders)
	t0 := time.Now()
	for g := 0; g < LedgerScalingAppenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			log := accounting.UsageLog{
				WorkloadHash:         [32]byte{byte(g)},
				WeightedInstructions: 1_000_000,
				PeakMemoryBytes:      1 << 20,
				Policy:               accounting.PeakMemory,
			}
			for i := 0; i < each; i++ {
				log.SimulatedCycles = uint64(i)
				if _, _, err := l.Append(log); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	close(errs)
	for err := range errs {
		return 0, err
	}
	return float64(each*LedgerScalingAppenders) / elapsed, nil
}

// RunLedgerScaling measures bounded-ledger append throughput across the
// GOMAXPROCS matrix at a fixed 8-appender load.
func RunLedgerScaling(records int, procs []int) (*ScalingReport, error) {
	if records < LedgerScalingAppenders {
		records = LedgerScalingAppenders
	}
	if len(procs) == 0 {
		procs = ScalingProcs
	}
	rep := &ScalingReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		HostCPUs:    runtime.NumCPU(),
		Metric:      "appends_per_sec",
	}
	for _, p := range procs {
		v, err := bestOfProcs(p, func() (float64, error) { return runLedgerScalingCell(records) })
		if err != nil {
			return nil, fmt.Errorf("bench: ledger scaling at %d procs: %w", p, err)
		}
		rep.Rows = append(rep.Rows, ScalingRow{GoMaxProcs: p, Workers: LedgerScalingAppenders, Value: v})
	}
	stampScaling(rep.Rows)
	return rep, nil
}

// ScalingSmokeResult is the bench-smoke scaling gate's measurement.
type ScalingSmokeResult struct {
	// HostCPUs decides whether the gate is enforceable: a host with fewer
	// than 4 CPUs cannot speed up at GOMAXPROCS 4, so the gate reports and
	// skips instead of failing on machine size.
	HostCPUs int
	// FaaS / Ledger are the GOMAXPROCS 4-vs-1 throughput ratios.
	FaaS   float64
	Ledger float64
}

// Enforceable reports whether the host has the parallelism the gate needs.
func (r ScalingSmokeResult) Enforceable() bool { return r.HostCPUs >= 4 }

// Pass applies the ScalingSmokeFloor to both ratios.
func (r ScalingSmokeResult) Pass() bool {
	return r.FaaS >= ScalingSmokeFloor && r.Ledger >= ScalingSmokeFloor
}

// RunScalingSmoke measures the GOMAXPROCS 4-vs-1 ratio for the pooled
// gateway and the bounded ledger at smoke-sized loads. The caller gates on
// Pass() only when Enforceable().
func RunScalingSmoke() (ScalingSmokeResult, error) {
	res := ScalingSmokeResult{HostCPUs: runtime.NumCPU()}
	faasRep, err := RunFaaSScaling(300, []int{1, 4})
	if err != nil {
		return res, err
	}
	ledgerRep, err := RunLedgerScaling(100_000, []int{1, 4})
	if err != nil {
		return res, err
	}
	for _, r := range faasRep.Rows {
		if r.GoMaxProcs == 4 {
			res.FaaS = r.Scaling
		}
	}
	for _, r := range ledgerRep.Rows {
		if r.GoMaxProcs == 4 {
			res.Ledger = r.Scaling
		}
	}
	return res, nil
}

// PrintScaling renders one scaling matrix as a table.
func PrintScaling(w io.Writer, label string, rep *ScalingReport) {
	fmt.Fprintf(w, "%s (host CPUs: %d, workers: %d)\n", label, rep.HostCPUs, rep.Rows[0].Workers)
	tw := newTab(w)
	fmt.Fprintf(tw, "gomaxprocs\t%s\tvs 1 proc\n", rep.Metric)
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%s\n", r.GoMaxProcs, r.Value, fmtRatio(r.Scaling))
	}
	tw.Flush()
}
