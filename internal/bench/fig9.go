package bench

import (
	"fmt"
	"io"
	"net/http/httptest"

	"acctee/internal/faas"
	"acctee/internal/workloads"
)

// Fig9Row is one (function, image size, setup) throughput measurement.
type Fig9Row struct {
	Function  faas.Function
	ImageSize int // square pixels
	Setup     faas.Setup
	ReqPerSec float64
}

// Fig9Options tune the load generation so the experiment fits the host.
type Fig9Options struct {
	// Sizes are square image edge lengths (paper: 64, 128, 512, 1024).
	Sizes []int
	// Clients is the concurrency (paper: 10 via h2load).
	Clients int
	// Requests is the total request count per configuration.
	Requests int
	// Setups limits the configurations (nil = all six).
	Setups []faas.Setup
	// Functions limits the functions (nil = echo and resize).
	Functions []faas.Function
}

func (o *Fig9Options) fill() {
	if o.Sizes == nil {
		o.Sizes = []int{64, 128, 512, 1024}
	}
	if o.Clients == 0 {
		o.Clients = 10
	}
	if o.Requests == 0 {
		o.Requests = 20
	}
	if o.Setups == nil {
		o.Setups = []faas.Setup{
			faas.SetupWASM, faas.SetupSGXSim, faas.SetupSGXHW,
			faas.SetupSGXHWInstr, faas.SetupSGXHWIO, faas.SetupJS,
		}
	}
	if o.Functions == nil {
		o.Functions = []faas.Function{faas.Echo, faas.Resize}
	}
}

// RunFig9 reproduces the FaaS throughput comparison (Fig. 9): the echo and
// resize functions under all six deployment setups, driven by concurrent
// clients over real HTTP.
func RunFig9(opts Fig9Options) ([]Fig9Row, error) {
	opts.fill()
	var rows []Fig9Row
	for _, fn := range opts.Functions {
		for _, size := range opts.Sizes {
			img := workloads.TestImage(size, size)
			// Larger images cost quadratically more per request; scale the
			// request count down so every configuration contributes similar
			// wall time (the paper fixes duration via h2load instead).
			requests := opts.Requests / (size / 64)
			if requests < 3 {
				requests = 3
			}
			for _, setup := range opts.Setups {
				srv, err := faas.NewServer(fn, setup)
				if err != nil {
					return nil, fmt.Errorf("fig9 %v/%v: %w", fn, setup, err)
				}
				ts := httptest.NewServer(srv)
				res := faas.GenerateLoad(ts.URL, opts.Clients, requests, img, size, size)
				ts.Close()
				if res.Errors > 0 {
					return nil, fmt.Errorf("fig9 %v/%v/%d: %d failed requests", fn, setup, size, res.Errors)
				}
				rows = append(rows, Fig9Row{
					Function: fn, ImageSize: size, Setup: setup, ReqPerSec: res.ReqPerSec,
				})
			}
		}
	}
	return rows, nil
}

// PrintFig9 renders the throughput table grouped like the figure.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	tw := newTab(w)
	fmt.Fprintln(tw, "function\timage\tsetup\treq/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%dpx\t%s\t%.2f\n", r.Function, r.ImageSize, r.Setup, r.ReqPerSec)
	}
	_ = tw.Flush()
	fmt.Fprintln(w, "paper shape: echo drops 2.1-4.8x to SGX-LKL; instrumentation and I/O accounting ~free; JS slowest (up to 16x below AccTEE)")
}
