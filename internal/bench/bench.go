// Package bench is AccTEE's evaluation harness: one runner per figure and
// table of the paper's §5, each reproducing the corresponding experiment on
// this repository's substrates and printing rows in the paper's format.
// The experiment index lives in DESIGN.md §3; paper-vs-measured results are
// recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"acctee/internal/interp"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
)

// CyclesPerNs converts simulated enclave cycles into wall-clock effect
// (the paper's Xeon E3-1230 v5 runs at ~3.4 GHz; we assume 3 cycles/ns).
const CyclesPerNs = 3.0

// Fig6EPCBytes is the scaled-down usable EPC for the sandboxing-overhead
// experiment. The paper's kernels use up to hundreds of MB against a 93 MB
// EPC; our interpreter-scale datasets use tens of KB, so the EPC is scaled
// by the same ratio to preserve the working-set/EPC crossover.
const Fig6EPCBytes = 8 << 10

// Fig6FaultCycles is the per-fault charge used by the harness. Real EPC
// paging costs tens of thousands of cycles against JIT-compiled code; this
// interpreter executes the same instructions ~100x slower, so the fault
// charge is scaled down by the same factor to preserve the paper's
// fault-cost-to-compute ratio (HW worst case ≈ +244% over native-relative
// WASM, not orders of magnitude).
const Fig6FaultCycles = 300

// effectiveNs returns wall time plus the simulated-cycle charge.
func effectiveNs(wall time.Duration, cycles uint64) float64 {
	return float64(wall.Nanoseconds()) + float64(cycles)/CyclesPerNs
}

// DefaultEngine is the interpreter tier used by the single-engine figure
// harnesses (Fig. 6/9/10 style timings). The four-way dispatch and
// call-suite benchmarks ignore it — they sweep all tiers explicitly. Set
// from acctee-bench's -engine flag.
var DefaultEngine interp.Engine

// timeWasm instantiates and runs an export once, returning wall time and
// the VM for post-inspection.
func timeWasm(m *wasm.Module, cfg interp.Config, export string, args ...uint64) (time.Duration, *interp.VM, error) {
	cfg.Engine = DefaultEngine
	vm, err := interp.Instantiate(m, cfg)
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	if _, err := vm.InvokeExport(export, args...); err != nil {
		return 0, nil, err
	}
	return time.Since(start), vm, nil
}

// bestOf runs f `trials` times and returns the smallest duration/cycles
// pair (minimum sheds scheduler noise on a busy host).
func bestOf(trials int, f func() (time.Duration, uint64, error)) (time.Duration, uint64, error) {
	var bd time.Duration
	var bc uint64
	for i := 0; i < trials; i++ {
		d, c, err := f()
		if err != nil {
			return 0, 0, err
		}
		if i == 0 || d < bd {
			bd, bc = d, c
		}
	}
	return bd, bc, nil
}

// hwParams returns the Fig. 6 hardware-mode cost parameters.
func hwParams() sgx.CostParams {
	p := sgx.DefaultCostParams()
	p.UsableEPCBytes = Fig6EPCBytes
	p.PageFaultCycles = Fig6FaultCycles
	return p
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtRatio(v float64) string { return fmt.Sprintf("%.2fx", v) }
