package bench

import (
	"fmt"
	"io"

	"acctee/internal/instrument"
	"acctee/internal/polybench"
	"acctee/internal/wasm"
	wasmbin "acctee/internal/wasm/binary"
	"acctee/internal/workloads"
)

// SizeRow is one module's binary-size overhead (paper §5.4).
type SizeRow struct {
	Name          string
	OriginalBytes int
	NaiveBytes    int
	OptBytes      int // loop-based (all optimisations)
	NaivePct      float64
	OptPct        float64
}

// RunSizeTable reproduces the §5.4 binary-size experiment over every
// evaluation module: all 29 PolyBench kernels plus the six scenario
// workloads, encoded to wasm binaries before and after instrumentation.
func RunSizeTable() ([]SizeRow, error) {
	type namedModule struct {
		name string
		mod  *wasm.Module
	}
	var mods []namedModule
	for _, name := range polybench.Names() {
		k, err := polybench.Get(name)
		if err != nil {
			return nil, err
		}
		m, err := k.Build(k.DefaultN)
		if err != nil {
			return nil, err
		}
		mods = append(mods, namedModule{name, m})
	}
	scen := []struct {
		name  string
		build func() (*wasm.Module, error)
	}{
		{"msieve", workloads.BuildMSieve},
		{"pc", func() (*wasm.Module, error) { return workloads.BuildPC(24, 60) }},
		{"subsetsum", workloads.BuildSubsetSum},
		{"darknet", func() (*wasm.Module, error) { return workloads.BuildDarknet(16, 4) }},
		{"echo", workloads.BuildEcho},
		{"resize", workloads.BuildResize},
	}
	for _, s := range scen {
		m, err := s.build()
		if err != nil {
			return nil, err
		}
		mods = append(mods, namedModule{s.name, m})
	}

	var rows []SizeRow
	for _, nm := range mods {
		orig, err := wasmbin.Encode(nm.mod)
		if err != nil {
			return nil, fmt.Errorf("size %s: %w", nm.name, err)
		}
		naive, err := instrument.Instrument(nm.mod, instrument.Options{Level: instrument.Naive})
		if err != nil {
			return nil, err
		}
		naiveBin, err := wasmbin.Encode(naive.Module)
		if err != nil {
			return nil, err
		}
		opt, err := instrument.Instrument(nm.mod, instrument.Options{Level: instrument.LoopBased})
		if err != nil {
			return nil, err
		}
		optBin, err := wasmbin.Encode(opt.Module)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizeRow{
			Name:          nm.name,
			OriginalBytes: len(orig),
			NaiveBytes:    len(naiveBin),
			OptBytes:      len(optBin),
			NaivePct:      pct(len(orig), len(naiveBin)),
			OptPct:        pct(len(orig), len(optBin)),
		})
	}
	return rows, nil
}

func pct(before, after int) float64 {
	if before == 0 {
		return 0
	}
	return (float64(after)/float64(before) - 1) * 100
}

// PrintSizeTable renders the rows plus the min/max summary the paper
// reports (naive +4..39%, optimised +4..27%).
func PrintSizeTable(w io.Writer, rows []SizeRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "module\toriginal\tnaive\topt\tnaive%\topt%")
	minN, maxN := rows[0].NaivePct, rows[0].NaivePct
	minO, maxO := rows[0].OptPct, rows[0].OptPct
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%+.1f%%\t%+.1f%%\n",
			r.Name, r.OriginalBytes, r.NaiveBytes, r.OptBytes, r.NaivePct, r.OptPct)
		if r.NaivePct < minN {
			minN = r.NaivePct
		}
		if r.NaivePct > maxN {
			maxN = r.NaivePct
		}
		if r.OptPct < minO {
			minO = r.OptPct
		}
		if r.OptPct > maxO {
			maxO = r.OptPct
		}
	}
	_ = tw.Flush()
	fmt.Fprintf(w, "naive: %+.1f%% .. %+.1f%% (paper: +4%%..+39%%); optimised: %+.1f%% .. %+.1f%% (paper: +4%%..+27%%)\n",
		minN, maxN, minO, maxO)
}
