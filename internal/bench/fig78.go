package bench

import (
	"fmt"
	"io"
	"sort"

	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// Fig7Result is the per-instruction cost distribution (Fig. 7).
type Fig7Result struct {
	Results []weights.MeasureResult // sorted ascending by cost
	// CheapRatio is the fraction of instructions costing less than 10x the
	// cheapest (paper: 74% execute in under 10 cycles).
	CheapRatio float64
	// Derived is the weight table normalised to the cheapest instruction.
	Derived *weights.Table
}

// RunFig7 measures every non-memory instruction n times (paper: 10,000).
func RunFig7(n uint64) (Fig7Result, error) {
	res, err := weights.MeasureAll(n)
	if err != nil {
		return Fig7Result{}, err
	}
	tbl := weights.Derive(res)
	cheap := 0
	for _, r := range res {
		if tbl.Weight(r.Op) < 10 {
			cheap++
		}
	}
	ratio := 0.0
	if len(res) > 0 {
		ratio = float64(cheap) / float64(len(res))
	}
	return Fig7Result{Results: res, CheapRatio: ratio, Derived: tbl}, nil
}

// PrintFig7 renders the distribution: percentile curve plus the extremes.
func PrintFig7(w io.Writer, r Fig7Result) {
	fmt.Fprintf(w, "measured %d instructions (paper: 127)\n", len(r.Results))
	for _, pct := range []int{10, 25, 50, 74, 90, 100} {
		idx := pct*len(r.Results)/100 - 1
		if idx < 0 {
			idx = 0
		}
		m := r.Results[idx]
		fmt.Fprintf(w, "p%-3d %-22s %6.1f ns/instr (weight %d)\n",
			pct, m.Op, m.NsPerInstr, r.Derived.Weight(m.Op))
	}
	fmt.Fprintf(w, "instructions below weight 10: %.0f%% (paper: 74%% below 10 cycles)\n", r.CheapRatio*100)
	// extremes, as the paper calls out floor/ceil and div/sqrt
	show := func(op wasm.Opcode) {
		for _, m := range r.Results {
			if m.Op == op {
				fmt.Fprintf(w, "  %-22s %6.1f ns (weight %d)\n", op, m.NsPerInstr, r.Derived.Weight(op))
			}
		}
	}
	show(wasm.OpI32Add)
	show(wasm.OpF32Floor)
	show(wasm.OpF64Ceil)
	show(wasm.OpI64DivS)
	show(wasm.OpF32Sqrt)
}

// Fig8Result is the memory access cost surface (Fig. 8).
type Fig8Result struct {
	Points []weights.MemMeasure
}

// RunFig8 measures load/store cost for every value type over linear and
// random patterns across the given memory sizes.
func RunFig8(memSizes []int, n uint64) (Fig8Result, error) {
	if memSizes == nil {
		memSizes = []int{1 << 20, 4 << 20, 16 << 20, 64 << 20}
	}
	var out []weights.MemMeasure
	for _, sz := range memSizes {
		for _, t := range []wasm.ValueType{wasm.F32, wasm.F64, wasm.I32, wasm.I64} {
			for _, store := range []bool{false, true} {
				for _, pat := range []weights.MemPattern{weights.Linear, weights.Random} {
					m, err := weights.MeasureMem(t, store, pat, sz, n)
					if err != nil {
						return Fig8Result{}, err
					}
					out = append(out, m)
				}
			}
		}
	}
	return Fig8Result{Points: out}, nil
}

// PrintFig8 renders the cost table and checks the paper's orderings:
// linear flat and cheap; random loads grow with memory size; random stores
// cost more than random loads at the largest size.
func PrintFig8(w io.Writer, r Fig8Result) {
	tw := newTab(w)
	fmt.Fprintln(tw, "memory\ttype\top\tpattern\tns/op")
	pts := append([]weights.MemMeasure(nil), r.Points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].MemBytes != pts[j].MemBytes {
			return pts[i].MemBytes < pts[j].MemBytes
		}
		return pts[i].NsPerOp < pts[j].NsPerOp
	})
	for _, p := range pts {
		op := "load"
		if p.Store {
			op = "store"
		}
		fmt.Fprintf(tw, "%dMB\t%s\t%s\t%s\t%.1f\n",
			p.MemBytes>>20, p.Type, op, p.Pattern, p.NsPerOp)
	}
	_ = tw.Flush()

	avg := func(pat weights.MemPattern, store bool, mem int) float64 {
		var s float64
		var c int
		for _, p := range r.Points {
			if p.Pattern == pat && p.Store == store && p.MemBytes == mem {
				s += p.NsPerOp
				c++
			}
		}
		if c == 0 {
			return 0
		}
		return s / float64(c)
	}
	sizes := map[int]bool{}
	for _, p := range r.Points {
		sizes[p.MemBytes] = true
	}
	maxSz := 0
	minSz := 1 << 62
	for s := range sizes {
		if s > maxSz {
			maxSz = s
		}
		if s < minSz {
			minSz = s
		}
	}
	fmt.Fprintf(w, "random loads: %.1f ns at %dMB vs %.1f ns at %dMB (paper: grows with memory size)\n",
		avg(weights.Random, false, minSz), minSz>>20, avg(weights.Random, false, maxSz), maxSz>>20)
	fmt.Fprintf(w, "at %dMB: random store %.1f ns vs random load %.1f ns vs linear %.1f ns (paper: store > load >> linear)\n",
		maxSz>>20, avg(weights.Random, true, maxSz), avg(weights.Random, false, maxSz),
		(avg(weights.Linear, false, maxSz)+avg(weights.Linear, true, maxSz))/2)
}
