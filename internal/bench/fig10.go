package bench

import (
	"fmt"
	"io"
	"time"

	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/sgx"
	"acctee/internal/wasm"
	"acctee/internal/workloads"
)

// Fig10Workload identifies one volunteer-computing / pay-by-computation
// program from Fig. 10.
type Fig10Workload struct {
	Name  string
	Build func() (*wasm.Module, error)
	Args  []uint64
}

// Fig10Workloads returns the four Fig. 10 programs with harness-scale
// parameters.
func Fig10Workloads() []Fig10Workload {
	return []Fig10Workload{
		{Name: "MSieve", Build: workloads.BuildMSieve, Args: []uint64{1_000_003, 40}},
		{Name: "PC", Build: func() (*wasm.Module, error) { return workloads.BuildPC(24, 60) }},
		{Name: "SubsetSum", Build: workloads.BuildSubsetSum, Args: []uint64{60, 60_000}},
		{Name: "Darknet", Build: func() (*wasm.Module, error) { return workloads.BuildDarknet(24, 6) }},
	}
}

// Fig10Row is one workload's normalised runtimes per instrumentation level
// and platform (Fig. 10: normalised to no instrumentation on the same
// platform).
type Fig10Row struct {
	Workload string
	// Normalised runtimes on plain WASM.
	WASMNaive, WASMFlow, WASMLoop float64
	// Normalised runtimes on WASM-SGX (hardware mode).
	SGXNaive, SGXFlow, SGXLoop float64
}

// RunFig10 reproduces the instrumentation-optimisation comparison.
func RunFig10(trials int) ([]Fig10Row, error) {
	if trials < 1 {
		trials = 1
	}
	var rows []Fig10Row
	for _, wl := range Fig10Workloads() {
		m, err := wl.Build()
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", wl.Name, err)
		}
		variants := map[instrument.Level]*wasm.Module{}
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			res, err := instrument.Instrument(m, instrument.Options{Level: lvl})
			if err != nil {
				return nil, fmt.Errorf("fig10 %s %v: %w", wl.Name, lvl, err)
			}
			variants[lvl] = res.Module
		}
		// Calibrate the interpreter's ns/instruction once per workload from
		// a wall-clock run of the uninstrumented module; all variants are
		// then compared on deterministic dynamic instruction counts (plus
		// simulated enclave cycles), which reproduces identically across
		// runs — wall-clock ratios on a contended host do not.
		baseWall, _, err := bestOf(trials, func() (time.Duration, uint64, error) {
			d, _, err := timeWasm(m, interp.Config{}, "run", wl.Args...)
			return d, 0, err
		})
		if err != nil {
			return nil, fmt.Errorf("fig10 %s calibrate: %w", wl.Name, err)
		}
		baseVM, err := interp.Instantiate(m, interp.Config{})
		if err != nil {
			return nil, err
		}
		if _, err := baseVM.InvokeExport("run", wl.Args...); err != nil {
			return nil, err
		}
		nsPerInstr := float64(baseWall.Nanoseconds()) / float64(baseVM.InstrCount())

		run := func(mod *wasm.Module, hw bool) (float64, error) {
			var cfg interp.Config
			if hw {
				cfg.CostModel = sgx.NewEPCModel(sgx.ModeHardware, hwParams(), nil)
			}
			vm, err := interp.Instantiate(mod, cfg)
			if err != nil {
				return 0, err
			}
			if _, err := vm.InvokeExport("run", wl.Args...); err != nil {
				return 0, err
			}
			return float64(vm.InstrCount())*nsPerInstr + float64(vm.Cost())/CyclesPerNs, nil
		}
		row := Fig10Row{Workload: wl.Name}
		for _, hw := range []bool{false, true} {
			base, err := run(m, hw)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s base: %w", wl.Name, err)
			}
			if base <= 0 {
				base = 1
			}
			norm := func(lvl instrument.Level) (float64, error) {
				v, err := run(variants[lvl], hw)
				return v / base, err
			}
			na, err := norm(instrument.Naive)
			if err != nil {
				return nil, err
			}
			fl, err := norm(instrument.FlowBased)
			if err != nil {
				return nil, err
			}
			lo, err := norm(instrument.LoopBased)
			if err != nil {
				return nil, err
			}
			if hw {
				row.SGXNaive, row.SGXFlow, row.SGXLoop = na, fl, lo
			} else {
				row.WASMNaive, row.WASMFlow, row.WASMLoop = na, fl, lo
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig10 renders the normalised-overhead table.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tWASM naive\tWASM flow\tWASM loop\tSGX naive\tSGX flow\tSGX loop")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", r.Workload,
			fmtRatio(r.WASMNaive), fmtRatio(r.WASMFlow), fmtRatio(r.WASMLoop),
			fmtRatio(r.SGXNaive), fmtRatio(r.SGXFlow), fmtRatio(r.SGXLoop))
	}
	_ = tw.Flush()
	fmt.Fprintln(w, "paper shape: naive worst (Darknet +34%), loop-based best (-7%..+10%; Darknet +3-4%)")
}
