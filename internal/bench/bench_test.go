package bench_test

import (
	"strings"
	"testing"
	"time"

	"acctee/internal/bench"
	"acctee/internal/faas"
)

func TestRunFig6SubsetShape(t *testing.T) {
	rows, err := bench.RunFig6([]string{"gemm", "jacobi-1d", "doitgen"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WASM <= 0 {
			t.Errorf("%s: nonsensical WASM ratio %v", r.Kernel, r.WASM)
		}
		// SIM must not be radically above HW; HW >= SIM (paging only ever
		// adds cycles).
		if r.WASMSGXHW < r.WASMSGXSim*0.5 {
			t.Errorf("%s: HW %.2f unexpectedly below SIM %.2f", r.Kernel, r.WASMSGXHW, r.WASMSGXSim)
		}
	}
	var sb strings.Builder
	bench.PrintFig6(&sb, rows)
	if !strings.Contains(sb.String(), "gemm") {
		t.Error("print output missing kernel name")
	}
}

func TestRunFig7Small(t *testing.T) {
	r, err := bench.RunFig7(512)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 127 {
		t.Errorf("measured %d instructions, want 127", len(r.Results))
	}
	var sb strings.Builder
	bench.PrintFig7(&sb, r)
	if !strings.Contains(sb.String(), "127") {
		t.Error("print output missing instruction count")
	}
}

func TestRunFig8Small(t *testing.T) {
	r, err := bench.RunFig8([]int{1 << 20}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 16 { // 4 types x load/store x linear/random
		t.Errorf("points = %d, want 16", len(r.Points))
	}
	var sb strings.Builder
	bench.PrintFig8(&sb, r)
	if !strings.Contains(sb.String(), "random") {
		t.Error("print output missing pattern")
	}
}

func TestRunFig9Small(t *testing.T) {
	old := faas.JSDispatchCost
	faas.JSDispatchCost = time.Millisecond
	defer func() { faas.JSDispatchCost = old }()
	rows, err := bench.RunFig9(bench.Fig9Options{
		Sizes:     []int{64},
		Clients:   4,
		Requests:  4,
		Functions: []faas.Function{faas.Echo},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 setups", len(rows))
	}
	for _, r := range rows {
		if r.ReqPerSec <= 0 {
			t.Errorf("%v: req/s = %v", r.Setup, r.ReqPerSec)
		}
	}
	var sb strings.Builder
	bench.PrintFig9(&sb, rows)
	if !strings.Contains(sb.String(), "echo") {
		t.Error("print output missing function")
	}
}

func TestRunLedgerBenchSmall(t *testing.T) {
	old := bench.LedgerBenchTrials
	bench.LedgerBenchTrials = 1
	defer func() { bench.LedgerBenchTrials = old }()
	rep, err := bench.RunLedgerBench(8, 200, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Clients != 2 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
	r := rep.Rows[0]
	if r.EagerRPS <= 0 || r.BatchedRPS <= 0 {
		t.Errorf("nonsensical throughput %+v", r)
	}
	if r.EagerP99Ns < r.EagerP50Ns || r.BatchedP99Ns < r.BatchedP50Ns {
		t.Errorf("latency percentiles not ordered: %+v", r)
	}
	if rep.VerifyRecords != 200 || rep.VerifyNs <= 0 || rep.VerifyNsPerRecord <= 0 {
		t.Errorf("verification stats %+v", rep)
	}
	var sb strings.Builder
	bench.PrintLedgerBench(&sb, rep)
	if !strings.Contains(sb.String(), "offline verification") {
		t.Error("print output missing verification summary")
	}
}

func TestRunSizeTable(t *testing.T) {
	rows, err := bench.RunSizeTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 35 { // 29 kernels + 6 scenario modules
		t.Fatalf("rows = %d, want 35", len(rows))
	}
	var totNaive, totOpt int
	for _, r := range rows {
		if r.NaiveBytes <= r.OriginalBytes {
			t.Errorf("%s: naive instrumentation did not grow the binary", r.Name)
		}
		totNaive += r.NaiveBytes
		totOpt += r.OptBytes
	}
	// Per-module the loop epilogue can outweigh removed increments on tiny
	// binaries; in aggregate the optimised form must be smaller (paper:
	// +4..39% naive vs +4..27% optimised).
	if totOpt >= totNaive {
		t.Errorf("optimised total %d not below naive total %d", totOpt, totNaive)
	}
	var sb strings.Builder
	bench.PrintSizeTable(&sb, rows)
	if !strings.Contains(sb.String(), "paper") {
		t.Error("print output missing paper comparison")
	}
}

func TestRunAblation(t *testing.T) {
	rows, err := bench.RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 33 { // 29 kernels + 4 Fig. 10 workloads
		t.Fatalf("rows = %d, want 33", len(rows))
	}
	for _, r := range rows {
		if r.IncrementsFlow > r.IncrementsNaive {
			t.Errorf("%s: flow-based (%d) above naive (%d)", r.Module, r.IncrementsFlow, r.IncrementsNaive)
		}
		if r.IncrementsLoop > r.IncrementsFlow {
			t.Errorf("%s: loop-based (%d) above flow-based (%d)", r.Module, r.IncrementsLoop, r.IncrementsFlow)
		}
	}
	var sb strings.Builder
	bench.PrintAblation(&sb, rows)
	if !strings.Contains(sb.String(), "eliminates") {
		t.Error("print output missing summary")
	}
}
