package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/faas"
	"acctee/internal/sgx"
)

// This file measures the sharded, hash-chained ledger (PR 3): how much
// gateway throughput checkpoint-batched signing recovers over per-request
// eager signatures at 1/4/16 concurrent clients, and what offline
// verification of a 10k-record dump costs. The report lands in
// BENCH_ledger.json next to BENCH_interp.json / BENCH_faas.json.

// LedgerClientCounts is the default concurrency sweep.
var LedgerClientCounts = []int{1, 4, 16}

// LedgerThroughputRow compares the echo gateway under per-request eager
// signing (every response pays an ECDSA signature on the hot path) against
// checkpoint-batched signing (records are chained per request, one
// signature covers the batch).
type LedgerThroughputRow struct {
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// EagerRPS / BatchedRPS are successful-request throughputs.
	EagerRPS   float64 `json:"eager_req_per_sec"`
	BatchedRPS float64 `json:"batched_req_per_sec"`
	// Speedup is BatchedRPS / EagerRPS.
	Speedup float64 `json:"speedup"`
	// Latency percentiles (ns) surface tail regressions, not just means.
	EagerP50Ns    int64 `json:"eager_p50_ns"`
	EagerP95Ns    int64 `json:"eager_p95_ns"`
	EagerP99Ns    int64 `json:"eager_p99_ns"`
	BatchedP50Ns  int64 `json:"batched_p50_ns"`
	BatchedP95Ns  int64 `json:"batched_p95_ns"`
	BatchedP99Ns  int64 `json:"batched_p99_ns"`
	EagerErrors   int   `json:"eager_errors"`
	BatchedErrors int   `json:"batched_errors"`
}

// LedgerReport is the BENCH_ledger.json payload.
type LedgerReport struct {
	GeneratedAt string `json:"generated_at"`
	Function    string `json:"function"`
	Setup       string `json:"setup"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	// Shards is the gateway ledger's sequence-lane count.
	Shards int                   `json:"shards"`
	Rows   []LedgerThroughputRow `json:"throughput"`
	// Offline verification cost of a VerifyRecords-record dump: chain
	// replay, gap-freedom, checkpoint signatures, totals reconstruction.
	VerifyRecords     int     `json:"verify_records"`
	VerifyCheckpoints int     `json:"verify_checkpoints"`
	VerifyNs          int64   `json:"verify_ns"`
	VerifyNsPerRecord float64 `json:"verify_ns_per_record"`
	DumpBytes         int     `json:"dump_bytes"`
	// DumpBytesBinary is the same dump in the v3 binary container
	// (DumpOptions.Binary) — the satellite target for shrinking the ~11 MB
	// JSON serialisation of 10k records.
	DumpBytesBinary int `json:"dump_bytes_binary"`
	// Retention holds the bounded-retention sweep (acctee-bench -fig
	// retention) and Scaling the GOMAXPROCS matrix (-fig scaling); the
	// figures update their own sections of BENCH_ledger.json without
	// clobbering each other.
	Retention *RetentionReport `json:"retention,omitempty"`
	Scaling   *ScalingReport   `json:"scaling,omitempty"`
}

// LoadLedgerJSON reads an existing BENCH_ledger.json, so one figure can
// update its section while preserving the other's. A missing or
// unparsable file yields nil.
func LoadLedgerJSON(path string) *LedgerReport {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep LedgerReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil
	}
	return &rep
}

// LedgerBenchTrials is the best-of count per throughput cell (minimum
// sheds scheduler noise on a busy host, as in the other figures' bestOf).
var LedgerBenchTrials = 3

// RunLedgerBench measures eager vs batched gateway throughput and offline
// verification cost. requests is the per-row load-generator total;
// verifyRecords sizes the verification dump (default 10_000).
func RunLedgerBench(requests, verifyRecords int, clientCounts []int) (*LedgerReport, error) {
	if requests < 1 {
		requests = 1
	}
	if verifyRecords < 1 {
		verifyRecords = 10_000
	}
	if len(clientCounts) == 0 {
		clientCounts = LedgerClientCounts
	}
	rep := &LedgerReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Function:    "echo",
		Setup:       faas.SetupSGXHWInstr.String(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// 1) Gateway throughput: the echo function keeps per-request compute
	// small so the signing cost is visible, as in a high-rate accounting
	// gateway.
	payload := []byte("ledger-bench-payload")
	throughput := func(eager bool, clients int) (faas.LoadResult, error) {
		srv, err := faas.NewServerWithOptions(faas.Echo, faas.SetupSGXHWInstr, faas.ServerOptions{
			PoolPrewarm: clients,
			Ledger:      accounting.LedgerOptions{EagerSign: eager},
		})
		if err != nil {
			return faas.LoadResult{}, err
		}
		defer srv.Close()
		if rep.Shards == 0 {
			rep.Shards = srv.Ledger().Shards()
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		res := faas.GenerateLoad(ts.URL, clients, requests, payload, 0, 0)
		// Close the batched run with its one checkpoint signature. The
		// load result is already final at this point, so the signature is
		// NOT in BatchedRPS — at one ECDSA signature per `requests`
		// requests its amortised share is far below measurement noise, and
		// signing here keeps the measured ledger state realistic.
		if !eager {
			if _, err := srv.Ledger().Checkpoint(); err != nil {
				return faas.LoadResult{}, err
			}
		}
		return res, nil
	}
	// Best-of-N per cell: the maximum-throughput trial sheds scheduler
	// noise, as elsewhere in the harness.
	best := func(eager bool, clients int) (faas.LoadResult, error) {
		var bestRes faas.LoadResult
		for i := 0; i < LedgerBenchTrials; i++ {
			res, err := throughput(eager, clients)
			if err != nil {
				return faas.LoadResult{}, err
			}
			if i == 0 || res.ReqPerSec > bestRes.ReqPerSec {
				bestRes = res
			}
		}
		return bestRes, nil
	}
	for _, clients := range clientCounts {
		eager, err := best(true, clients)
		if err != nil {
			return nil, err
		}
		batched, err := best(false, clients)
		if err != nil {
			return nil, err
		}
		row := LedgerThroughputRow{
			Clients:       clients,
			Requests:      requests,
			EagerRPS:      eager.ReqPerSec,
			BatchedRPS:    batched.ReqPerSec,
			EagerP50Ns:    eager.LatencyP50.Nanoseconds(),
			EagerP95Ns:    eager.LatencyP95.Nanoseconds(),
			EagerP99Ns:    eager.LatencyP99.Nanoseconds(),
			BatchedP50Ns:  batched.LatencyP50.Nanoseconds(),
			BatchedP95Ns:  batched.LatencyP95.Nanoseconds(),
			BatchedP99Ns:  batched.LatencyP99.Nanoseconds(),
			EagerErrors:   eager.Errors,
			BatchedErrors: batched.Errors,
		}
		if eager.ReqPerSec > 0 {
			row.Speedup = batched.ReqPerSec / eager.ReqPerSec
		}
		rep.Rows = append(rep.Rows, row)
	}

	// 2) Offline verification cost per verifyRecords records.
	encl, err := sgx.NewEnclave([]byte("ledger-bench AE"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		return nil, err
	}
	ledger, err := accounting.NewLedger(encl, accounting.LedgerOptions{Shards: 4})
	if err != nil {
		return nil, err
	}
	defer ledger.Close()
	for i := 0; i < verifyRecords; i++ {
		log := accounting.UsageLog{
			WorkloadHash:         [32]byte{1},
			WeightedInstructions: uint64(1000 + i),
			PeakMemoryBytes:      1 << 16,
			SimulatedCycles:      uint64(i),
			Policy:               accounting.PeakMemory,
		}
		if _, _, err := ledger.Append(log); err != nil {
			return nil, err
		}
		if (i+1)%1000 == 0 {
			if _, err := ledger.Checkpoint(); err != nil {
				return nil, err
			}
		}
	}
	dump, err := ledger.Dump()
	if err != nil {
		return nil, err
	}
	j, err := dump.JSON()
	if err != nil {
		return nil, err
	}
	rep.DumpBytes = len(j)
	var binDump bytes.Buffer
	if err := ledger.WriteDump(&binDump, accounting.DumpOptions{Binary: true}); err != nil {
		return nil, err
	}
	if _, err := accounting.VerifyStream(bytes.NewReader(binDump.Bytes()), accounting.VerifyOptions{Key: encl.PublicKey()}); err != nil {
		return nil, fmt.Errorf("bench: binary dump does not verify: %w", err)
	}
	rep.DumpBytesBinary = binDump.Len()
	rep.VerifyRecords = verifyRecords
	rep.VerifyCheckpoints = len(dump.Checkpoints)
	t0 := time.Now()
	vr, err := accounting.VerifyDump(dump, accounting.VerifyOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: verification of a pristine dump failed: %w", err)
	}
	rep.VerifyNs = time.Since(t0).Nanoseconds()
	if vr.Records != verifyRecords {
		return nil, fmt.Errorf("bench: verified %d records, want %d", vr.Records, verifyRecords)
	}
	rep.VerifyNsPerRecord = float64(rep.VerifyNs) / float64(verifyRecords)
	return rep, nil
}

// WriteLedgerJSON writes the report consumed by the perf-trajectory
// tracking (BENCH_ledger.json).
func WriteLedgerJSON(path string, rep *LedgerReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// PrintLedgerBench renders the report as tables.
func PrintLedgerBench(w io.Writer, rep *LedgerReport) {
	tw := newTab(w)
	fmt.Fprintf(tw, "clients\teager req/s\tbatched req/s\tspeedup\tp99 eager\tp99 batched\n")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%s\t%s\t%s\n",
			r.Clients, r.EagerRPS, r.BatchedRPS, fmtRatio(r.Speedup),
			time.Duration(r.EagerP99Ns), time.Duration(r.BatchedP99Ns))
	}
	tw.Flush()
	fmt.Fprintf(w, "offline verification: %d records (%d checkpoints, %d B dump / %d B binary) in %s (%.0f ns/record)\n",
		rep.VerifyRecords, rep.VerifyCheckpoints, rep.DumpBytes, rep.DumpBytesBinary,
		time.Duration(rep.VerifyNs), rep.VerifyNsPerRecord)
}
