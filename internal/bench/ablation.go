package bench

import (
	"fmt"
	"io"

	"acctee/internal/instrument"
	"acctee/internal/polybench"
	"acctee/internal/wasm"
)

// AblationRow quantifies what each optimisation level contributes for one
// module: the number of counter updates placed statically. This is the
// design-choice ablation DESIGN.md calls out — the paper's Fig. 4/Fig. 10
// argue the flow/loop passes matter; this shows how many updates each pass
// actually eliminates.
type AblationRow struct {
	Module          string
	Blocks          int
	IncrementsNaive int
	IncrementsFlow  int
	IncrementsLoop  int
	LoopsOptimised  int
}

// RunAblation computes the static instrumentation ablation over the
// PolyBench suite plus the scenario workloads used in Fig. 10.
func RunAblation() ([]AblationRow, error) {
	mods, err := evaluationModules()
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, nm := range mods {
		row := AblationRow{Module: nm.name}
		for _, lvl := range []instrument.Level{instrument.Naive, instrument.FlowBased, instrument.LoopBased} {
			res, err := instrument.Instrument(nm.mod, instrument.Options{Level: lvl})
			if err != nil {
				return nil, fmt.Errorf("ablation %s %v: %w", nm.name, lvl, err)
			}
			switch lvl {
			case instrument.Naive:
				row.Blocks = res.Stats.BlocksTotal
				row.IncrementsNaive = res.Stats.IncrementsPlaced
			case instrument.FlowBased:
				row.IncrementsFlow = res.Stats.IncrementsPlaced
			case instrument.LoopBased:
				row.IncrementsLoop = res.Stats.IncrementsPlaced
				row.LoopsOptimised = res.Stats.LoopsOptimised
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type namedMod struct {
	name string
	mod  *wasm.Module
}

func evaluationModules() ([]namedMod, error) {
	var mods []namedMod
	for _, name := range polybench.Names() {
		k, err := polybench.Get(name)
		if err != nil {
			return nil, err
		}
		m, err := k.Build(k.DefaultN)
		if err != nil {
			return nil, err
		}
		mods = append(mods, namedMod{name, m})
	}
	for _, wl := range Fig10Workloads() {
		m, err := wl.Build()
		if err != nil {
			return nil, err
		}
		mods = append(mods, namedMod{wl.Name, m})
	}
	return mods, nil
}

// PrintAblation renders the static ablation table with aggregate
// elimination percentages.
func PrintAblation(w io.Writer, rows []AblationRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "module\tblocks\tnaive\tflow\tloop\tcounted loops")
	var tn, tf, tl int
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Module, r.Blocks, r.IncrementsNaive, r.IncrementsFlow, r.IncrementsLoop, r.LoopsOptimised)
		tn += r.IncrementsNaive
		tf += r.IncrementsFlow
		tl += r.IncrementsLoop
	}
	_ = tw.Flush()
	if tn > 0 {
		fmt.Fprintf(w, "flow-based eliminates %.0f%% of naive updates; loop-based %.0f%% (paper Fig. 4: 2 of 4 eliminated on the example)\n",
			(1-float64(tf)/float64(tn))*100, (1-float64(tl)/float64(tn))*100)
	}
}
