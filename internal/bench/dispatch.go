package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"acctee/internal/interp"
	"acctee/internal/polybench"
	"acctee/internal/wasm"
)

// DispatchKernels is the PolyBench subset used for the interpreter
// four-way dispatch comparison (the Fig. 6 per-commit subset).
var DispatchKernels = []string{"gemm", "2mm", "atax", "jacobi-2d", "cholesky", "nussinov", "doitgen", "durbin"}

// DispatchRow is one kernel's structured / flat / fused / register engine
// measurement.
type DispatchRow struct {
	Kernel       string `json:"kernel"`
	N            int    `json:"n"`
	Instructions uint64 `json:"instructions"`
	StructuredNs int64  `json:"structured_ns"`
	FlatNs       int64  `json:"flat_ns"`
	FusedNs      int64  `json:"fused_ns"`
	RegNs        int64  `json:"reg_ns"`
	// FlatSpeedup is structured/flat (the PR 1 gain); FusedSpeedup is
	// flat/fused (the PR 4 gain, gated at >=1.25x geomean); RegSpeedup is
	// fused/reg (this PR's gain, gated at >=1.4x geomean).
	FlatSpeedup  float64 `json:"flat_speedup"`
	FusedSpeedup float64 `json:"fused_speedup"`
	RegSpeedup   float64 `json:"reg_speedup"`
}

// MicroRow is one microbenchmark's four-way measurement. The ALU row
// isolates raw dispatch on a tight arithmetic loop; the memory-traffic row
// isolates the effective-address fast paths on a load/store-dominated
// kernel. The CI smoke gate fails when FusedVsFlat or RegVsFused drops
// below the noise tolerance.
type MicroRow struct {
	Name         string  `json:"name"`
	Instructions uint64  `json:"instructions"`
	StructuredNs int64   `json:"structured_ns"`
	FlatNs       int64   `json:"flat_ns"`
	FusedNs      int64   `json:"fused_ns"`
	RegNs        int64   `json:"reg_ns"`
	FusedVsFlat  float64 `json:"fused_vs_flat"`
	RegVsFused   float64 `json:"reg_vs_fused"`
}

// DispatchReport is the BENCH_interp.json payload tracking the interpreter
// performance trajectory across commits.
type DispatchReport struct {
	GeneratedAt string `json:"generated_at"`
	Baseline    string `json:"baseline"`
	Candidate   string `json:"candidate"`
	// FusedGeomean is the geometric-mean fused-over-flat speedup and
	// RegGeomean the register-over-fused speedup across the PolyBench rows.
	// CallGeomean is the call-heavy suite's inlined-over-DisableInline
	// speedup on the register engine (callbench.go).
	FusedGeomean float64       `json:"fused_geomean"`
	RegGeomean   float64       `json:"reg_geomean"`
	CallGeomean  float64       `json:"call_geomean"`
	Rows         []DispatchRow `json:"rows"`
	Micro        []MicroRow    `json:"micro"`
	Calls        []CallRow     `json:"calls"`
}

// engines, in measurement order.
var dispatchEngines = []interp.Engine{interp.EngineStructured, interp.EngineFlat, interp.EngineFused, interp.EngineReg}

// measure4 runs the export once per trial per engine on a shared compiled
// artifact and returns the best wall time for each engine plus the
// instruction count (identical across engines by construction).
func measure4(m *wasm.Module, export string, trials int, args ...uint64) (ns [4]int64, instr uint64, err error) {
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		return ns, 0, err
	}
	for ei, engine := range dispatchEngines {
		best := int64(0)
		for t := 0; t < trials; t++ {
			vm, err := cm.Instantiate(interp.Config{Engine: engine})
			if err != nil {
				return ns, 0, err
			}
			start := time.Now()
			if _, err := vm.InvokeExport(export, args...); err != nil {
				return ns, 0, err
			}
			d := time.Since(start).Nanoseconds()
			if t == 0 || d < best {
				best = d
			}
			instr = vm.InstrCount()
		}
		ns[ei] = best
	}
	return ns, instr, nil
}

// RunDispatch measures each kernel under all four engines (best of
// trials), at 2/3 of the kernel's default problem size like the Fig. 6
// per-commit harness.
func RunDispatch(kernels []string, trials int) ([]DispatchRow, error) {
	if len(kernels) == 0 {
		kernels = DispatchKernels
	}
	if trials < 1 {
		trials = 1
	}
	rows := make([]DispatchRow, 0, len(kernels))
	for _, name := range kernels {
		k, err := polybench.Get(name)
		if err != nil {
			return nil, err
		}
		n := k.DefaultN * 2 / 3
		if n < 8 {
			n = 8
		}
		m, err := k.Build(n)
		if err != nil {
			return nil, err
		}
		ns, instr, err := measure4(m, "run", trials)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		row := DispatchRow{
			Kernel:       name,
			N:            n,
			Instructions: instr,
			StructuredNs: ns[0],
			FlatNs:       ns[1],
			FusedNs:      ns[2],
			RegNs:        ns[3],
		}
		if ns[1] > 0 {
			row.FlatSpeedup = float64(ns[0]) / float64(ns[1])
		}
		if ns[2] > 0 {
			row.FusedSpeedup = float64(ns[1]) / float64(ns[2])
		}
		if ns[3] > 0 {
			row.RegSpeedup = float64(ns[2]) / float64(ns[3])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FusedGeomean returns the geometric mean of the fused-over-flat speedups.
func FusedGeomean(rows []DispatchRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		if r.FusedSpeedup <= 0 {
			return 0
		}
		sum += math.Log(r.FusedSpeedup)
	}
	return math.Exp(sum / float64(len(rows)))
}

// RegGeomean returns the geometric mean of the register-over-fused
// speedups (the tentpole gate: >=1.4x on the PolyBench rows).
func RegGeomean(rows []DispatchRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		if r.RegSpeedup <= 0 {
			return 0
		}
		sum += math.Log(r.RegSpeedup)
	}
	return math.Exp(sum / float64(len(rows)))
}

// buildALUMicro is the dispatch microbenchmark: a tight arithmetic loop
// with no memory traffic, so the measurement isolates opcode dispatch and
// ALU fusion.
func buildALUMicro() (*wasm.Module, error) {
	b := wasm.NewModule("alu-micro")
	f := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Xor).LocalSet(acc)
		f.LocalGet(acc).I32Const(3).Op(wasm.OpI32Mul).LocalSet(acc)
		f.LocalGet(acc).I32Const(0x7FFFFF).Op(wasm.OpI32And).LocalSet(acc)
	})
	f.LocalGet(acc)
	b.ExportFunc("run", f.End())
	return b.Build()
}

// buildMemMicro is the memory-traffic microbenchmark: a load/store-
// dominated stream kernel (b[i] = a[i]*s + b[i] over f64 arrays, plus a
// byte-wide histogram touch), so the effective-address fast paths and the
// word-at-a-time access dominate the measurement, separately from ALU
// fusion.
func buildMemMicro() (*wasm.Module, error) {
	const elems = 1024
	const baseA, baseB = 64, 64 + elems*8
	b := wasm.NewModule("mem-micro")
	b.Memory(1, 1)
	f := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.F64})
	rep := f.Local(wasm.I32)
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.F64)
	f.ForI32(rep, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(elems)}, 1, func() {
			// b[i] = a[i]*1.0009765625 + b[i]
			f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul)
			f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul).Load(wasm.OpF64Load, baseA)
			f.F64ConstV(1.0009765625).Op(wasm.OpF64Mul)
			f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul).Load(wasm.OpF64Load, baseB)
			f.Op(wasm.OpF64Add).Store(wasm.OpF64Store, baseB)
			// histogram touch: h[i&255]++ (byte loads/stores past the arrays)
			const baseH = baseB + elems*8
			f.LocalGet(i).I32Const(255).Op(wasm.OpI32And)
			f.LocalGet(i).I32Const(255).Op(wasm.OpI32And).Load(wasm.OpI32Load8U, baseH)
			f.I32Const(1).Op(wasm.OpI32Add).Store(wasm.OpI32Store8, baseH)
		})
		// acc += b[rep & 1023]
		f.LocalGet(acc)
		f.LocalGet(rep).I32Const(1023).Op(wasm.OpI32And).I32Const(8).Op(wasm.OpI32Mul).Load(wasm.OpF64Load, baseB)
		f.Op(wasm.OpF64Add).LocalSet(acc)
	})
	f.LocalGet(acc)
	b.ExportFunc("run", f.End())
	return b.Build()
}

// RunMicro measures the ALU-dispatch and memory-traffic microbenchmarks
// under all four engines (best of trials).
func RunMicro(trials int) ([]MicroRow, error) {
	if trials < 1 {
		trials = 1
	}
	micro := []struct {
		name  string
		build func() (*wasm.Module, error)
		arg   uint64
	}{
		{"alu-dispatch", buildALUMicro, 60_000},
		{"mem-traffic", buildMemMicro, 60},
	}
	rows := make([]MicroRow, 0, len(micro))
	for _, mb := range micro {
		m, err := mb.build()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", mb.name, err)
		}
		ns, instr, err := measure4(m, "run", trials, mb.arg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", mb.name, err)
		}
		row := MicroRow{
			Name:         mb.name,
			Instructions: instr,
			StructuredNs: ns[0],
			FlatNs:       ns[1],
			FusedNs:      ns[2],
			RegNs:        ns[3],
		}
		if ns[2] > 0 {
			row.FusedVsFlat = float64(ns[1]) / float64(ns[2])
		}
		if ns[3] > 0 {
			row.RegVsFused = float64(ns[2]) / float64(ns[3])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CheckMicroGate is the CI bench smoke gate: each engine tier must not be
// slower than the tier below it on any microbenchmark beyond the given
// noise tolerance (e.g. 0.85 allows the upper tier to be up to ~18% slower
// before failing, generous enough for shared CI runners).
func CheckMicroGate(rows []MicroRow, tolerance float64) error {
	for _, r := range rows {
		if r.FusedVsFlat < tolerance {
			return fmt.Errorf("bench gate: %s: fused %.2fx vs flat (tolerance %.2fx): fused=%s flat=%s",
				r.Name, r.FusedVsFlat, tolerance,
				time.Duration(r.FusedNs), time.Duration(r.FlatNs))
		}
		if r.RegVsFused < tolerance {
			return fmt.Errorf("bench gate: %s: reg %.2fx vs fused (tolerance %.2fx): reg=%s fused=%s",
				r.Name, r.RegVsFused, tolerance,
				time.Duration(r.RegNs), time.Duration(r.FusedNs))
		}
	}
	return nil
}

// WriteDispatchJSON writes the report consumed by the perf-trajectory
// tracking (BENCH_interp.json).
func WriteDispatchJSON(path string, rows []DispatchRow, micro []MicroRow, calls []CallRow) error {
	rep := DispatchReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Baseline:     "structured (label-stack, per-instruction accounting)",
		Candidate:    "reg (register-form IR, direct-threaded closures) with call inlining + indirect-call inline cache",
		FusedGeomean: FusedGeomean(rows),
		RegGeomean:   RegGeomean(rows),
		CallGeomean:  CallGeomean(calls),
		Rows:         rows,
		Micro:        micro,
		Calls:        calls,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// PrintDispatch renders the four-way comparison as a table.
func PrintDispatch(w io.Writer, rows []DispatchRow, micro []MicroRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "kernel\tN\tinstr\tstructured\tflat\tfused\treg\tflat/structured\tfused/flat\treg/fused")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Kernel, r.N, r.Instructions,
			time.Duration(r.StructuredNs), time.Duration(r.FlatNs), time.Duration(r.FusedNs), time.Duration(r.RegNs),
			fmtRatio(r.FlatSpeedup), fmtRatio(r.FusedSpeedup), fmtRatio(r.RegSpeedup))
	}
	for _, r := range micro {
		fmt.Fprintf(tw, "%s\t\t%d\t%s\t%s\t%s\t%s\t\t%s\t%s\n",
			r.Name, r.Instructions,
			time.Duration(r.StructuredNs), time.Duration(r.FlatNs), time.Duration(r.FusedNs), time.Duration(r.RegNs),
			fmtRatio(r.FusedVsFlat), fmtRatio(r.RegVsFused))
	}
	tw.Flush()
	if len(rows) > 0 {
		fmt.Fprintf(w, "fused geomean over flat (polybench): %s\n", fmtRatio(FusedGeomean(rows)))
		fmt.Fprintf(w, "reg geomean over fused (polybench): %s\n", fmtRatio(RegGeomean(rows)))
	}
}
