package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"acctee/internal/interp"
	"acctee/internal/polybench"
)

// DispatchKernels is the PolyBench subset used for the interpreter
// before/after dispatch comparison (the Fig. 6 per-commit subset).
var DispatchKernels = []string{"gemm", "2mm", "atax", "jacobi-2d", "cholesky", "nussinov", "doitgen", "durbin"}

// DispatchRow is one kernel's structured-vs-flat engine measurement.
type DispatchRow struct {
	Kernel       string  `json:"kernel"`
	N            int     `json:"n"`
	Instructions uint64  `json:"instructions"`
	StructuredNs int64   `json:"structured_ns"`
	FlatNs       int64   `json:"flat_ns"`
	Speedup      float64 `json:"speedup"`
}

// DispatchReport is the BENCH_interp.json payload tracking the interpreter
// performance trajectory across commits.
type DispatchReport struct {
	GeneratedAt string        `json:"generated_at"`
	Baseline    string        `json:"baseline"`
	Candidate   string        `json:"candidate"`
	Rows        []DispatchRow `json:"rows"`
}

// RunDispatch measures each kernel under the structured reference engine
// and the flat engine (best of trials), at 2/3 of the kernel's default
// problem size like the Fig. 6 per-commit harness.
func RunDispatch(kernels []string, trials int) ([]DispatchRow, error) {
	if len(kernels) == 0 {
		kernels = DispatchKernels
	}
	if trials < 1 {
		trials = 1
	}
	rows := make([]DispatchRow, 0, len(kernels))
	for _, name := range kernels {
		k, err := polybench.Get(name)
		if err != nil {
			return nil, err
		}
		n := k.DefaultN * 2 / 3
		if n < 8 {
			n = 8
		}
		m, err := k.Build(n)
		if err != nil {
			return nil, err
		}
		var instr uint64
		measure := func(engine interp.Engine) (int64, error) {
			best := int64(0)
			for t := 0; t < trials; t++ {
				d, vm, err := timeWasm(m, interp.Config{Engine: engine}, "run")
				if err != nil {
					return 0, err
				}
				if t == 0 || d.Nanoseconds() < best {
					best = d.Nanoseconds()
				}
				instr = vm.InstrCount()
			}
			return best, nil
		}
		structured, err := measure(interp.EngineStructured)
		if err != nil {
			return nil, fmt.Errorf("bench: %s structured: %w", name, err)
		}
		flat, err := measure(interp.EngineFlat)
		if err != nil {
			return nil, fmt.Errorf("bench: %s flat: %w", name, err)
		}
		row := DispatchRow{
			Kernel:       name,
			N:            n,
			Instructions: instr,
			StructuredNs: structured,
			FlatNs:       flat,
		}
		if flat > 0 {
			row.Speedup = float64(structured) / float64(flat)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteDispatchJSON writes the report consumed by the perf-trajectory
// tracking (BENCH_interp.json).
func WriteDispatchJSON(path string, rows []DispatchRow) error {
	rep := DispatchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Baseline:    "structured (label-stack, per-instruction accounting)",
		Candidate:   "flat (precompiled sidetable, block-batched accounting)",
		Rows:        rows,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// PrintDispatch renders the comparison as a table.
func PrintDispatch(w io.Writer, rows []DispatchRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "kernel\tN\tinstr\tstructured\tflat\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\n",
			r.Kernel, r.N, r.Instructions,
			time.Duration(r.StructuredNs), time.Duration(r.FlatNs), fmtRatio(r.Speedup))
	}
	tw.Flush()
}
