package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/sgx"
)

// This file measures bounded ledger retention (the segmented record store
// with checkpoint-anchored truncation): resident record counts, heap
// footprint and append throughput at 10k/100k/1M records, unbounded vs
// bounded (drop) vs bounded with spill-to-disk. Since the binary spill
// codec and async group-commit writer, the spill variant runs at every
// size (the old JSON codec capped it at 100k to spare CI's disk) and each
// size sweeps GOMAXPROCS 1 and 4 so the upcoming multi-core work has a
// baseline. The rows land in BENCH_ledger.json next to the eager-vs-
// batched signing comparison.

// RetentionSizes is the default record-count sweep.
var RetentionSizes = []int{10_000, 100_000, 1_000_000}

// RetentionProcs is the GOMAXPROCS sweep applied to every size (the same
// matrix as the scaling figure, so the retention rows line up with it).
var RetentionProcs = []int{1, 4, 16}

// RetentionMaxResident is the bounded modes' resident budget (the
// acceptance criterion's 4096).
const RetentionMaxResident = 4096

// RetentionKeepEvery is the spill mode's checkpoint-chain pruning factor:
// the persisted chain keeps every 8th checkpoint plus the anchor tip, so
// a long bench run exercises the pruning path the gateway relies on.
const RetentionKeepEvery = 8

// RetentionSmokeRatio is the bench-smoke floor: bounded+spill append
// throughput below this fraction of bounded fails the smoke gate (the
// binary codec + async writer hold well above it; a regression back
// toward the JSON-era 0.18x trips it).
const RetentionSmokeRatio = 0.35

// RetentionRow is one (records, mode, gomaxprocs) cell.
type RetentionRow struct {
	Records int `json:"records"`
	// Mode is "unbounded" (the PR 3 behaviour), "bounded" (sealed
	// segments dropped behind checkpoints) or "bounded+spill" (sealed
	// segments spilled to segment files through the async group-commit
	// writer).
	Mode string `json:"mode"`
	// GoMaxProcs is the GOMAXPROCS this cell ran under.
	GoMaxProcs  int `json:"gomaxprocs"`
	MaxResident int `json:"max_resident,omitempty"`
	// ResidentPeak / ResidentEnd are record counts held in memory.
	ResidentPeak int `json:"resident_peak"`
	ResidentEnd  int `json:"resident_end"`
	// SpilledEnd counts sealed records handed to the spill writer (spill
	// mode only; Close drains them to disk).
	SpilledEnd uint64 `json:"spilled_end,omitempty"`
	// Checkpoints is how many checkpoints were signed (bounded modes sign
	// one per compaction; the trigger amortises to records/MaxResident).
	Checkpoints uint64 `json:"checkpoints"`
	// HeapBytes is HeapAlloc after a forced GC with the ledger still
	// live — the resident footprint the store architecture controls.
	HeapBytes uint64 `json:"heap_bytes_after_gc"`
	// AppendsPerSec is append throughput over the whole run (including
	// compaction pauses — the cost of boundedness must be visible).
	AppendsPerSec float64 `json:"appends_per_sec"`
	// SpillVsBounded is AppendsPerSec relative to the bounded row of the
	// same (records, gomaxprocs) cell — set on bounded+spill rows only.
	// The tentpole target is ≥ 0.5 at the 1M row; the smoke gate floor
	// is RetentionSmokeRatio.
	SpillVsBounded float64 `json:"spill_vs_bounded,omitempty"`
}

// RetentionReport is the BENCH_ledger.json "retention" section.
type RetentionReport struct {
	GeneratedAt string         `json:"generated_at"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Shards      int            `json:"shards"`
	Rows        []RetentionRow `json:"rows"`
}

// runRetentionCell appends `records` records to a fresh ledger in the
// given mode and measures retention behaviour.
func runRetentionCell(records int, mode string, spillDir string) (RetentionRow, error) {
	encl, err := sgx.NewEnclave([]byte("retention-bench AE"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		return RetentionRow{}, err
	}
	opts := accounting.LedgerOptions{Shards: 4}
	if mode != "unbounded" {
		opts.Retention = accounting.RetentionPolicy{MaxResidentRecords: RetentionMaxResident}
	}
	if mode == "bounded+spill" {
		opts.Retention.SpillDir = spillDir
		opts.Retention.CheckpointKeepEvery = RetentionKeepEvery
	}
	l, err := accounting.NewLedger(encl, opts)
	if err != nil {
		return RetentionRow{}, err
	}
	defer l.Close()

	log := accounting.UsageLog{
		WorkloadHash:         [32]byte{42},
		WeightedInstructions: 1_000_000,
		PeakMemoryBytes:      1 << 20,
		Policy:               accounting.PeakMemory,
	}
	row := RetentionRow{Records: records, Mode: mode, GoMaxProcs: runtime.GOMAXPROCS(0)}
	if mode != "unbounded" {
		row.MaxResident = RetentionMaxResident
	}
	t0 := time.Now()
	for i := 0; i < records; i++ {
		log.SimulatedCycles = uint64(i)
		if _, _, err := l.Append(log); err != nil {
			return RetentionRow{}, err
		}
		if i&127 == 0 {
			if r := l.Resident(); r > row.ResidentPeak {
				row.ResidentPeak = r
			}
		}
	}
	row.AppendsPerSec = float64(records) / time.Since(t0).Seconds()
	if r := l.Resident(); r > row.ResidentPeak {
		row.ResidentPeak = r
	}
	row.ResidentEnd = l.Resident()
	row.SpilledEnd = l.SpilledRecords()
	if sc, err := l.Checkpoint(); err == nil {
		row.Checkpoints = sc.Checkpoint.Sequence + 1
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	row.HeapBytes = ms.HeapAlloc
	return row, nil
}

// retentionTrials is the best-of-N per cell: the first run after a spill
// cell often pays the previous cell's pending disk writeback, which is
// device noise, not retention cost.
const retentionTrials = 3

// bestRetentionCell runs one (records, mode) cell retentionTrials times
// and keeps the fastest row. Spill trials each get a fresh subdirectory
// (reopening a populated one would measure recovery, not appends).
func bestRetentionCell(records int, mode, spillRoot string) (RetentionRow, error) {
	var best RetentionRow
	for t := 0; t < retentionTrials; t++ {
		var spill string
		if mode == "bounded+spill" {
			spill = filepath.Join(spillRoot, fmt.Sprintf("trial-%d", t))
		}
		row, err := runRetentionCell(records, mode, spill)
		if spill != "" {
			os.RemoveAll(spill)
		}
		if err != nil {
			return RetentionRow{}, err
		}
		if t == 0 || row.AppendsPerSec > best.AppendsPerSec {
			best = row
		}
	}
	return best, nil
}

// runRetentionModes runs the full mode sweep for one size at the current
// GOMAXPROCS, stamping the spill-vs-bounded ratio.
func runRetentionModes(n int) ([]RetentionRow, error) {
	var rows []RetentionRow
	var bounded float64
	for _, mode := range []string{"unbounded", "bounded", "bounded+spill"} {
		var spill string
		if mode == "bounded+spill" {
			dir, err := os.MkdirTemp("", "acctee-retention-bench")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			spill = dir
		}
		row, err := bestRetentionCell(n, mode, spill)
		if err != nil {
			return nil, fmt.Errorf("bench: retention %s/%d: %w", mode, n, err)
		}
		switch mode {
		case "bounded":
			bounded = row.AppendsPerSec
		case "bounded+spill":
			if bounded > 0 {
				row.SpillVsBounded = row.AppendsPerSec / bounded
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunRetentionBench sweeps record counts across retention modes and
// GOMAXPROCS settings. It temporarily overrides GOMAXPROCS per cell and
// restores the ambient value before returning.
func RunRetentionBench(sizes []int) (*RetentionReport, error) {
	if len(sizes) == 0 {
		sizes = RetentionSizes
	}
	ambient := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(ambient)
	rep := &RetentionReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  ambient,
		Shards:      4,
	}
	for _, n := range sizes {
		for _, procs := range RetentionProcs {
			runtime.GOMAXPROCS(procs)
			rows, err := runRetentionModes(n)
			runtime.GOMAXPROCS(ambient)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, rows...)
		}
	}
	return rep, nil
}

// RunRetentionSmoke runs the bench-smoke retention gate: one bounded and
// one bounded+spill cell at 100k records under the ambient GOMAXPROCS,
// returning the spill-vs-bounded throughput ratio.
func RunRetentionSmoke() (float64, error) {
	const n = 100_000
	bounded, err := bestRetentionCell(n, "bounded", "")
	if err != nil {
		return 0, fmt.Errorf("bench: retention smoke bounded: %w", err)
	}
	dir, err := os.MkdirTemp("", "acctee-retention-smoke")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	spill, err := bestRetentionCell(n, "bounded+spill", dir)
	if err != nil {
		return 0, fmt.Errorf("bench: retention smoke spill: %w", err)
	}
	if bounded.AppendsPerSec <= 0 {
		return 0, fmt.Errorf("bench: retention smoke measured zero bounded throughput")
	}
	return spill.AppendsPerSec / bounded.AppendsPerSec, nil
}

// PrintRetentionBench renders the report as a table.
func PrintRetentionBench(w io.Writer, rep *RetentionReport) {
	tw := newTab(w)
	fmt.Fprintf(tw, "records\tmode\tprocs\tresident peak\tresident end\tspilled\theap after GC\tappends/s\tvs bounded\tcheckpoints\n")
	for _, r := range rep.Rows {
		ratio := ""
		if r.SpillVsBounded > 0 {
			ratio = fmt.Sprintf("%.2fx", r.SpillVsBounded)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%.1f MB\t%.0f\t%s\t%d\n",
			r.Records, r.Mode, r.GoMaxProcs, r.ResidentPeak, r.ResidentEnd, r.SpilledEnd,
			float64(r.HeapBytes)/(1<<20), r.AppendsPerSec, ratio, r.Checkpoints)
	}
	tw.Flush()
}
