package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"acctee/internal/accounting"
	"acctee/internal/sgx"
)

// This file measures bounded ledger retention (the segmented record store
// with checkpoint-anchored truncation): resident record counts, heap
// footprint and append throughput at 10k/100k/1M records, unbounded vs
// bounded (drop) vs bounded with spill-to-disk. The rows land in
// BENCH_ledger.json next to the eager-vs-batched signing comparison.

// RetentionSizes is the default record-count sweep.
var RetentionSizes = []int{10_000, 100_000, 1_000_000}

// RetentionMaxResident is the bounded modes' resident budget (the
// acceptance criterion's 4096).
const RetentionMaxResident = 4096

// retentionSpillCap bounds the sizes that run the spill variant: spilling
// is JSON-framed, so a 1M-record spill writes hundreds of MB — more disk
// traffic than a CI bench run should cause.
const retentionSpillCap = 100_000

// RetentionRow is one (records, mode) cell.
type RetentionRow struct {
	Records int `json:"records"`
	// Mode is "unbounded" (the PR 3 behaviour), "bounded" (sealed
	// segments dropped behind checkpoints) or "bounded+spill" (sealed
	// segments spilled to segment files).
	Mode        string `json:"mode"`
	MaxResident int    `json:"max_resident,omitempty"`
	// ResidentPeak / ResidentEnd are record counts held in memory.
	ResidentPeak int `json:"resident_peak"`
	ResidentEnd  int `json:"resident_end"`
	// SpilledEnd counts durably spilled records (spill mode only).
	SpilledEnd uint64 `json:"spilled_end,omitempty"`
	// Checkpoints is how many checkpoints were signed (bounded modes sign
	// one per compaction; the trigger amortises to records/MaxResident).
	Checkpoints uint64 `json:"checkpoints"`
	// HeapBytes is HeapAlloc after a forced GC with the ledger still
	// live — the resident footprint the store architecture controls.
	HeapBytes uint64 `json:"heap_bytes_after_gc"`
	// AppendsPerSec is append throughput over the whole run (including
	// compaction pauses — the cost of boundedness must be visible).
	AppendsPerSec float64 `json:"appends_per_sec"`
}

// RetentionReport is the BENCH_ledger.json "retention" section.
type RetentionReport struct {
	GeneratedAt string         `json:"generated_at"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Shards      int            `json:"shards"`
	Rows        []RetentionRow `json:"rows"`
}

// runRetentionCell appends `records` records to a fresh ledger in the
// given mode and measures retention behaviour.
func runRetentionCell(records int, mode string, spillDir string) (RetentionRow, error) {
	encl, err := sgx.NewEnclave([]byte("retention-bench AE"), sgx.ModeSimulation, sgx.DefaultCostParams())
	if err != nil {
		return RetentionRow{}, err
	}
	opts := accounting.LedgerOptions{Shards: 4}
	if mode != "unbounded" {
		opts.Retention = accounting.RetentionPolicy{MaxResidentRecords: RetentionMaxResident}
	}
	if mode == "bounded+spill" {
		opts.Retention.SpillDir = spillDir
	}
	l, err := accounting.NewLedger(encl, opts)
	if err != nil {
		return RetentionRow{}, err
	}
	defer l.Close()

	log := accounting.UsageLog{
		WorkloadHash:         [32]byte{42},
		WeightedInstructions: 1_000_000,
		PeakMemoryBytes:      1 << 20,
		Policy:               accounting.PeakMemory,
	}
	row := RetentionRow{Records: records, Mode: mode}
	if mode != "unbounded" {
		row.MaxResident = RetentionMaxResident
	}
	t0 := time.Now()
	for i := 0; i < records; i++ {
		log.SimulatedCycles = uint64(i)
		if _, _, err := l.Append(log); err != nil {
			return RetentionRow{}, err
		}
		if i&127 == 0 {
			if r := l.Resident(); r > row.ResidentPeak {
				row.ResidentPeak = r
			}
		}
	}
	row.AppendsPerSec = float64(records) / time.Since(t0).Seconds()
	if r := l.Resident(); r > row.ResidentPeak {
		row.ResidentPeak = r
	}
	row.ResidentEnd = l.Resident()
	row.SpilledEnd = l.SpilledRecords()
	if sc, err := l.Checkpoint(); err == nil {
		row.Checkpoints = sc.Checkpoint.Sequence + 1
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	row.HeapBytes = ms.HeapAlloc
	return row, nil
}

// RunRetentionBench sweeps record counts across retention modes.
func RunRetentionBench(sizes []int) (*RetentionReport, error) {
	if len(sizes) == 0 {
		sizes = RetentionSizes
	}
	rep := &RetentionReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Shards:      4,
	}
	for _, n := range sizes {
		modes := []string{"unbounded", "bounded"}
		if n <= retentionSpillCap {
			modes = append(modes, "bounded+spill")
		}
		for _, mode := range modes {
			var spill string
			if mode == "bounded+spill" {
				dir, err := os.MkdirTemp("", "acctee-retention-bench")
				if err != nil {
					return nil, err
				}
				defer os.RemoveAll(dir)
				spill = dir
			}
			row, err := runRetentionCell(n, mode, spill)
			if err != nil {
				return nil, fmt.Errorf("bench: retention %s/%d: %w", mode, n, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// PrintRetentionBench renders the report as a table.
func PrintRetentionBench(w io.Writer, rep *RetentionReport) {
	tw := newTab(w)
	fmt.Fprintf(tw, "records\tmode\tresident peak\tresident end\tspilled\theap after GC\tappends/s\tcheckpoints\n")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%.1f MB\t%.0f\t%d\n",
			r.Records, r.Mode, r.ResidentPeak, r.ResidentEnd, r.SpilledEnd,
			float64(r.HeapBytes)/(1<<20), r.AppendsPerSec, r.Checkpoints)
	}
	tw.Flush()
}
