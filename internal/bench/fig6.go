package bench

import (
	"fmt"
	"io"
	"time"

	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/polybench"
	"acctee/internal/sgx"
)

// Fig6Row is one PolyBench kernel's runtimes across the paper's setups,
// normalised to native execution (Fig. 6).
type Fig6Row struct {
	Kernel string
	// Normalised runtimes (1.0 == native).
	WASM         float64
	WASMSGXSim   float64
	WASMSGXHW    float64
	Instrumented float64
	// EPCFaults is the hardware-mode page-fault count (explains blow-ups).
	EPCFaults uint64
}

// RunFig6 reproduces Fig. 6: the 29 PolyBench kernels under WASM,
// WASM-SGX SIM, WASM-SGX HW and WASM-SGX HW + loop-based instrumentation,
// normalised to native runtime. kernels limits the set (nil = all);
// trials >= 1 selects best-of-n timing.
func RunFig6(kernels []string, trials int) ([]Fig6Row, error) {
	if kernels == nil {
		kernels = polybench.Names()
	}
	if trials < 1 {
		trials = 1
	}
	rows := make([]Fig6Row, 0, len(kernels))
	for _, name := range kernels {
		k, err := polybench.Get(name)
		if err != nil {
			return nil, err
		}
		n := k.DefaultN
		m, err := k.Build(n)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", name, err)
		}
		inst, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", name, err)
		}

		// native baseline
		nativeD, _, err := bestOf(trials, func() (time.Duration, uint64, error) {
			start := time.Now()
			_ = k.Native(n)
			return time.Since(start), 0, nil
		})
		if err != nil {
			return nil, err
		}

		// WASM (no SGX)
		wasmD, _, err := bestOf(trials, func() (time.Duration, uint64, error) {
			d, _, err := timeWasm(m, interp.Config{}, "run")
			return d, 0, err
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 %s wasm: %w", name, err)
		}

		// WASM-SGX SIM: simulation mode charges nothing — like SGX-LKL in
		// simulation, the binary runs the identical code path with no
		// hardware costs (paper §5.1: "SGX and SGX-LKL do not add overhead
		// by themselves").
		simD, simC, err := bestOf(trials, func() (time.Duration, uint64, error) {
			d, vm, err := timeWasm(m, interp.Config{}, "run")
			if err != nil {
				return 0, 0, err
			}
			return d, vm.Cost(), nil
		})
		if err != nil {
			return nil, err
		}

		// WASM-SGX HW: EPC paging charges apply.
		var faults uint64
		hwD, hwC, err := bestOf(trials, func() (time.Duration, uint64, error) {
			model := sgx.NewEPCModel(sgx.ModeHardware, hwParams(), nil)
			d, vm, err := timeWasm(m, interp.Config{CostModel: model}, "run")
			if err != nil {
				return 0, 0, err
			}
			faults = model.PageFaults()
			return d, vm.Cost(), nil
		})
		if err != nil {
			return nil, err
		}

		// WASM-SGX HW + instrumentation (loop-based)
		instD, instC, err := bestOf(trials, func() (time.Duration, uint64, error) {
			model := sgx.NewEPCModel(sgx.ModeHardware, hwParams(), nil)
			d, vm, err := timeWasm(inst.Module, interp.Config{CostModel: model}, "run")
			if err != nil {
				return 0, 0, err
			}
			return d, vm.Cost(), nil
		})
		if err != nil {
			return nil, err
		}

		nat := float64(nativeD.Nanoseconds())
		if nat <= 0 {
			nat = 1
		}
		rows = append(rows, Fig6Row{
			Kernel:       name,
			WASM:         float64(wasmD.Nanoseconds()) / nat,
			WASMSGXSim:   effectiveNs(simD, simC) / nat,
			WASMSGXHW:    effectiveNs(hwD, hwC) / nat,
			Instrumented: effectiveNs(instD, instC) / nat,
			EPCFaults:    faults,
		})
	}
	return rows, nil
}

// PrintFig6 renders the rows in the figure's layout plus the summary
// statistics quoted in §5.1.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	tw := newTab(w)
	fmt.Fprintln(tw, "kernel\tWASM\tWASM-SGX SIM\tWASM-SGX HW\tHW instrumented\tEPC faults")
	var sumWasm, sumHW, sumInstrOverHW float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\n",
			r.Kernel, fmtRatio(r.WASM), fmtRatio(r.WASMSGXSim),
			fmtRatio(r.WASMSGXHW), fmtRatio(r.Instrumented), r.EPCFaults)
		sumWasm += r.WASM
		sumHW += r.WASMSGXHW
		if r.WASMSGXHW > 0 {
			sumInstrOverHW += r.Instrumented / r.WASMSGXHW
		}
	}
	_ = tw.Flush()
	n := float64(len(rows))
	if n > 0 {
		var sumHWOverWasm float64
		for _, r := range rows {
			if r.WASM > 0 {
				sumHWOverWasm += r.WASMSGXHW / r.WASM
			}
		}
		fmt.Fprintf(w, "mean: WASM %.2fx native; WASM-SGX HW %.2fx native (%.2fx WASM); instrumentation +%.1f%% over HW\n",
			sumWasm/n, sumHW/n, sumHWOverWasm/n, (sumInstrOverHW/n-1)*100)
		fmt.Fprintf(w, "paper: WASM 1.1x native, WASM-SGX HW 2.1x native (~1.9x WASM), instrumentation +4%% avg / +9%% worst case\n")
		fmt.Fprintf(w, "note: the absolute WASM/native ratio reflects interpreter-vs-JIT speed; the reproduced shape is the per-setup comparison (see EXPERIMENTS.md)\n")
	}
}
