package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"acctee/internal/interp"
	"acctee/internal/wasm"
)

// Call-heavy benchmark suite: the PolyBench kernels are loop-dominated and
// barely exercise the call path, so this file adds four workloads where
// call overhead is the workload — deep recursion, mutual recursion, an
// indirect-dispatch loop and a leaf-call-saturated kernel — and measures
// the inlining + residual-fast-path + inline-cache layer by comparing each
// engine against a DisableInline compile of the same module. The
// register-engine ratio feeds the call_geomean field of BENCH_interp.json
// and the CI smoke gate.

// CallRow is one call-heavy workload's measurement. The four engine
// columns run the default (inlined) artifact; NoInlineRegNs runs the same
// module compiled with LegacyCalls — no inlining, no residual-call fast
// path, no indirect-call inline cache, i.e. the call path as it was before
// this optimization layer — on the register engine, so InlineSpeedup
// isolates what the whole layer buys on the top tier.
type CallRow struct {
	Name         string `json:"name"`
	Instructions uint64 `json:"instructions"`
	StructuredNs int64  `json:"structured_ns"`
	FlatNs       int64  `json:"flat_ns"`
	FusedNs      int64  `json:"fused_ns"`
	RegNs        int64  `json:"reg_ns"`
	// NoInlineRegNs is the register engine without the inlining pass (the
	// pre-call-path baseline); InlineSpeedup = NoInlineRegNs / RegNs.
	NoInlineRegNs int64   `json:"noinline_reg_ns"`
	InlineSpeedup float64 `json:"inline_speedup"`
}

// buildFib is the recursion stressor: naive fib, every call residual
// (self-recursive, so never inlined), exercising the defined-call fast
// path and frame-slab reuse across deep call trees.
func buildFib() (*wasm.Module, error) {
	b := wasm.NewModule("call-fib")
	f := b.Func("fib", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).I32Const(2).Op(wasm.OpI32LtU)
	f.If(wasm.BlockOf(wasm.I32), func() {
		f.LocalGet(0)
	}, func() {
		f.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).Call(f.Index)
		f.LocalGet(0).I32Const(2).Op(wasm.OpI32Sub).Call(f.Index)
		f.Op(wasm.OpI32Add)
	})
	f.End()
	run := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	run.LocalGet(0).Call(f.Index)
	b.ExportFunc("run", run.End())
	return b.Build()
}

// buildMutual is the mutual-recursion stressor: even/odd bouncing between
// two functions, driven from a loop so the recursion depth stays bounded
// while the call volume stays high.
func buildMutual() (*wasm.Module, error) {
	b := wasm.NewModule("call-mutual")
	even := b.Func("even", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	odd := b.Func("odd", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	even.LocalGet(0).Op(wasm.OpI32Eqz)
	even.If(wasm.BlockOf(wasm.I32), func() {
		even.I32Const(1)
	}, func() {
		even.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).Call(odd.Index)
	})
	even.End()
	odd.LocalGet(0).Op(wasm.OpI32Eqz)
	odd.If(wasm.BlockOf(wasm.I32), func() {
		odd.I32Const(0)
	}, func() {
		odd.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).Call(even.Index)
	})
	odd.End()
	run := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	k := run.Local(wasm.I32)
	acc := run.Local(wasm.I32)
	run.ForI32(k, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		run.LocalGet(acc)
		run.LocalGet(k).I32Const(63).Op(wasm.OpI32And).Call(even.Index)
		run.Op(wasm.OpI32Add).LocalSet(acc)
	})
	run.LocalGet(acc)
	b.ExportFunc("run", run.End())
	return b.Build()
}

// buildIndirect is the dispatch-loop stressor: a monomorphic-leaning
// call_indirect in a hot loop (same table slot for long runs, periodic
// retarget), exercising the per-site inline cache hit path and refills.
func buildIndirect() (*wasm.Module, error) {
	b := wasm.NewModule("call-indirect")
	add := b.Func("add", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	add.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add)
	add.End()
	sub := b.Func("sub", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	sub.LocalGet(0).LocalGet(1).Op(wasm.OpI32Sub)
	sub.End()
	b.Table(add.Index, sub.Index)
	ti := b.TypeIndex([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	run := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	k := run.Local(wasm.I32)
	acc := run.Local(wasm.I32)
	run.ForI32(k, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		// elem = (k >> 10) & 1: 1024 consecutive hits per slot, then a miss.
		run.LocalGet(acc).LocalGet(k)
		run.LocalGet(k).I32Const(10).Op(wasm.OpI32ShrU).I32Const(1).Op(wasm.OpI32And)
		run.Emit(wasm.Instr{Op: wasm.OpCallIndirect, Idx: ti})
		run.LocalSet(acc)
	})
	run.LocalGet(acc)
	b.ExportFunc("run", run.End())
	return b.Build()
}

// buildLeaves is the many-small-leaf-functions kernel: every loop
// iteration crosses four tiny callees, the shape the inliner erases
// entirely (markers aside), leaving pure straight-line segments.
func buildLeaves() (*wasm.Module, error) {
	b := wasm.NewModule("call-leaves")
	inc := b.Func("inc", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	inc.LocalGet(0).I32Const(1).Op(wasm.OpI32Add)
	inc.End()
	dbl := b.Func("dbl", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	dbl.LocalGet(0).I32Const(1).Op(wasm.OpI32Shl)
	dbl.End()
	mix := b.Func("mix", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	mix.LocalGet(0).LocalGet(1).Op(wasm.OpI32Xor).I32Const(3).Op(wasm.OpI32Mul)
	mix.End()
	mask := b.Func("mask", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	mask.LocalGet(0).I32Const(0x7FFFFF).Op(wasm.OpI32And)
	mask.End()
	run := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	k := run.Local(wasm.I32)
	acc := run.Local(wasm.I32)
	run.ForI32(k, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		run.LocalGet(acc).Call(inc.Index).Call(dbl.Index)
		run.LocalGet(k).Call(mask.Index)
		run.Call(mix.Index).Call(mask.Index).LocalSet(acc)
	})
	run.LocalGet(acc)
	b.ExportFunc("run", run.End())
	return b.Build()
}

// callWorkloads, in report order.
var callWorkloads = []struct {
	name  string
	build func() (*wasm.Module, error)
	arg   uint64
}{
	{"fib-recursive", buildFib, 21},
	{"mutual-even-odd", buildMutual, 20_000},
	{"indirect-dispatch", buildIndirect, 400_000},
	{"leaf-kernel", buildLeaves, 200_000},
}

// RunCalls measures the call-heavy suite: all four engines on the default
// (inlined) artifact, plus the register engine on a DisableInline compile
// of the same module (best of trials each).
func RunCalls(trials int) ([]CallRow, error) {
	if trials < 1 {
		trials = 1
	}
	rows := make([]CallRow, 0, len(callWorkloads))
	for _, w := range callWorkloads {
		m, err := w.build()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.name, err)
		}
		ns, instr, err := measure4(m, "run", trials, w.arg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.name, err)
		}
		cmOff, err := interp.Compile(m, interp.CompileOptions{LegacyCalls: true})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.name, err)
		}
		best := int64(0)
		for t := 0; t < trials; t++ {
			vm, err := cmOff.Instantiate(interp.Config{Engine: interp.EngineReg})
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", w.name, err)
			}
			start := time.Now()
			if _, err := vm.InvokeExport("run", w.arg); err != nil {
				return nil, fmt.Errorf("bench: %s: %w", w.name, err)
			}
			d := time.Since(start).Nanoseconds()
			if t == 0 || d < best {
				best = d
			}
		}
		row := CallRow{
			Name:          w.name,
			Instructions:  instr,
			StructuredNs:  ns[0],
			FlatNs:        ns[1],
			FusedNs:       ns[2],
			RegNs:         ns[3],
			NoInlineRegNs: best,
		}
		if ns[3] > 0 {
			row.InlineSpeedup = float64(best) / float64(ns[3])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CallGeomean returns the geometric-mean inline speedup (register engine,
// inlined over DisableInline) across the call-heavy workloads — the
// call_geomean field of BENCH_interp.json.
func CallGeomean(rows []CallRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		if r.InlineSpeedup <= 0 {
			return 0
		}
		sum += math.Log(r.InlineSpeedup)
	}
	return math.Exp(sum / float64(len(rows)))
}

// CallSmokeFloor is the CI gate on the call-heavy suite: the inlined
// register engine must hold at least this geomean speedup over the
// DisableInline baseline (the acceptance target is 1.25x on a quiet
// machine; the gate leaves headroom for shared CI runners).
const CallSmokeFloor = 1.15

// CheckCallGate fails when the call-suite geomean drops below floor.
func CheckCallGate(rows []CallRow, floor float64) error {
	g := CallGeomean(rows)
	if g < floor {
		return fmt.Errorf("bench gate: call suite inline geomean %.2fx below floor %.2fx", g, floor)
	}
	return nil
}

// PrintCalls renders the call-heavy suite as a table.
func PrintCalls(w io.Writer, rows []CallRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tinstr\tstructured\tflat\tfused\treg\treg-noinline\tinline speedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Name, r.Instructions,
			time.Duration(r.StructuredNs), time.Duration(r.FlatNs),
			time.Duration(r.FusedNs), time.Duration(r.RegNs),
			time.Duration(r.NoInlineRegNs), fmtRatio(r.InlineSpeedup))
	}
	tw.Flush()
	if len(rows) > 0 {
		fmt.Fprintf(w, "call-suite inline geomean (reg, inlined over noinline): %s\n", fmtRatio(CallGeomean(rows)))
	}
}
