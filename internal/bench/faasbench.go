package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"acctee/internal/faas"
	"acctee/internal/instrument"
	"acctee/internal/interp"
	"acctee/internal/workloads"
)

// This file is the compile-once/run-many gateway experiment (the Fig. 9
// infrastructure re-measured around the CompiledModule artifact): how much
// per-request sandbox setup the shared artifact and instance pool save, and
// how gateway throughput scales with concurrent clients. The report lands
// in BENCH_faas.json next to BENCH_interp.json as part of the perf
// trajectory.

// FaaSClientCounts is the default concurrency sweep.
var FaaSClientCounts = []int{1, 4, 16}

// LatencyStats summarise a latency sample in nanoseconds.
type LatencyStats struct {
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MeanNs int64 `json:"mean_ns"`
}

// FaaSThroughputRow is one client-count measurement of the resize gateway:
// requests/s with per-request recompilation (the seed behaviour) versus the
// pooled CompiledModule serving path.
type FaaSThroughputRow struct {
	Clients          int     `json:"clients"`
	Requests         int     `json:"requests"`
	RecompileRPS     float64 `json:"recompile_req_per_sec"`
	PooledRPS        float64 `json:"pooled_req_per_sec"`
	Speedup          float64 `json:"speedup"`
	RecompileErrors  int     `json:"recompile_errors"`
	PooledErrors     int     `json:"pooled_errors"`
	PooledReqsServed int     `json:"pooled_requests_completed"`
}

// FaaSReport is the BENCH_faas.json payload.
type FaaSReport struct {
	GeneratedAt string `json:"generated_at"`
	Function    string `json:"function"`
	Setup       string `json:"setup"`
	// GOMAXPROCS contextualises the throughput scaling: on a single-CPU
	// host concurrent clients cannot exceed one core's throughput.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Per-request sandbox setup latency on the resize function:
	// CompileInstantiate re-runs the full lowering pass per request (seed
	// behaviour); CachedInstantiate instantiates from one shared artifact;
	// PooledReset recycles an instance through the pool's deterministic
	// Reset.
	Samples            int          `json:"samples"`
	CompileInstantiate LatencyStats `json:"compile_instantiate"`
	CachedInstantiate  LatencyStats `json:"cached_instantiate"`
	PooledReset        LatencyStats `json:"pooled_reset"`
	// SpeedupP50 is CompileInstantiate.P50 / PooledReset.P50 — the
	// single-client instantiate-latency improvement.
	SpeedupP50 float64             `json:"instantiate_speedup_p50"`
	Rows       []FaaSThroughputRow `json:"throughput"`
	// Scaling holds the GOMAXPROCS matrix (acctee-bench -fig scaling); the
	// two figures update their own sections of BENCH_faas.json without
	// clobbering each other.
	Scaling *ScalingReport `json:"scaling,omitempty"`
}

// LoadFaaSJSON reads an existing BENCH_faas.json, so one figure can update
// its section while preserving the other's. A missing or unparsable file
// yields nil.
func LoadFaaSJSON(path string) *FaaSReport {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep FaaSReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil
	}
	return &rep
}

func summarise(ns []int64) LatencyStats {
	if len(ns) == 0 {
		return LatencyStats{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var sum int64
	for _, v := range ns {
		sum += v
	}
	pct := func(p float64) int64 {
		i := int(p * float64(len(ns)-1))
		return ns[i]
	}
	return LatencyStats{P50Ns: pct(0.50), P99Ns: pct(0.99), MeanNs: sum / int64(len(ns))}
}

// RunFaaSBench measures sandbox setup latency and gateway throughput.
// samples is the per-variant latency sample count; requests the per-row
// load-generator total.
func RunFaaSBench(samples, requests int, clientCounts []int) (*FaaSReport, error) {
	if samples < 10 {
		samples = 10
	}
	if requests < 1 {
		requests = 1
	}
	if len(clientCounts) == 0 {
		clientCounts = FaaSClientCounts
	}

	// The instrumented resize function, as deployed by the hw-instr setup.
	m, err := workloads.BuildResize()
	if err != nil {
		return nil, err
	}
	res, err := instrument.Instrument(m, instrument.Options{Level: instrument.LoopBased})
	if err != nil {
		return nil, err
	}
	m = res.Module

	rep := &FaaSReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Function:    "resize",
		Setup:       "WASM",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Samples:     samples,
	}

	// 1) Per-request setup latency.
	timeIt := func(f func() error) (int64, error) {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		return time.Since(t0).Nanoseconds(), nil
	}
	collect := func(f func() error) ([]int64, error) {
		ns := make([]int64, 0, samples)
		for i := 0; i < samples; i++ {
			d, err := timeIt(f)
			if err != nil {
				return nil, err
			}
			ns = append(ns, d)
		}
		return ns, nil
	}

	full, err := collect(func() error {
		_, err := interp.Instantiate(m, interp.Config{})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: per-request compile: %w", err)
	}
	rep.CompileInstantiate = summarise(full)

	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		return nil, err
	}
	cached, err := collect(func() error {
		_, err := cm.Instantiate(interp.Config{})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: cached instantiate: %w", err)
	}
	rep.CachedInstantiate = summarise(cached)

	pool, err := cm.NewPool(interp.Config{}, interp.PoolConfig{Prewarm: 1})
	if err != nil {
		return nil, err
	}
	// Between timed Gets the instance serves a real request, so every timed
	// Reset re-zeroes genuinely dirtied memory — the steady-state gateway
	// cost, not the reset of a pristine instance.
	const latImgSide = 24
	latPayload := workloads.TestImage(latImgSide, latImgSide)
	serve := func(vm *interp.VM) error {
		in, err := vm.MemoryDirty(workloads.InBase, uint32(len(latPayload)))
		if err != nil {
			return err
		}
		copy(in, latPayload)
		_, err = vm.InvokeExport("run", latImgSide, latImgSide)
		return err
	}
	if vm, err := pool.Get(interp.Config{}); err != nil {
		return nil, err
	} else if err := serve(vm); err != nil {
		return nil, err
	} else {
		pool.Put(vm)
	}
	pooled := make([]int64, 0, samples)
	for i := 0; i < samples; i++ {
		t0 := time.Now()
		vm, err := pool.Get(interp.Config{})
		if err != nil {
			return nil, fmt.Errorf("bench: pooled reset: %w", err)
		}
		pooled = append(pooled, time.Since(t0).Nanoseconds())
		if err := serve(vm); err != nil {
			return nil, fmt.Errorf("bench: pooled serve: %w", err)
		}
		pool.Put(vm)
	}
	rep.PooledReset = summarise(pooled)
	if rep.PooledReset.P50Ns > 0 {
		rep.SpeedupP50 = float64(rep.CompileInstantiate.P50Ns) / float64(rep.PooledReset.P50Ns)
	}

	// 2) Gateway throughput, recompile-per-request vs pooled serving.
	const imgSide = 24
	payload := workloads.TestImage(imgSide, imgSide)
	throughput := func(opts faas.ServerOptions, clients int) (faas.LoadResult, error) {
		srv, err := faas.NewServerWithOptions(faas.Resize, faas.SetupWASM, opts)
		if err != nil {
			return faas.LoadResult{}, err
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		return faas.GenerateLoad(ts.URL, clients, requests, payload, imgSide, imgSide), nil
	}
	for _, clients := range clientCounts {
		base, err := throughput(faas.ServerOptions{RecompilePerRequest: true}, clients)
		if err != nil {
			return nil, err
		}
		pooledRes, err := throughput(faas.ServerOptions{PoolPrewarm: clients}, clients)
		if err != nil {
			return nil, err
		}
		row := FaaSThroughputRow{
			Clients:          clients,
			Requests:         requests,
			RecompileRPS:     base.ReqPerSec,
			PooledRPS:        pooledRes.ReqPerSec,
			RecompileErrors:  base.Errors,
			PooledErrors:     pooledRes.Errors,
			PooledReqsServed: pooledRes.Requests,
		}
		if base.ReqPerSec > 0 {
			row.Speedup = pooledRes.ReqPerSec / base.ReqPerSec
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// WriteFaaSJSON writes the report consumed by the perf-trajectory tracking
// (BENCH_faas.json).
func WriteFaaSJSON(path string, rep *FaaSReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// PrintFaaSBench renders the report as tables.
func PrintFaaSBench(w io.Writer, rep *FaaSReport) {
	tw := newTab(w)
	fmt.Fprintln(tw, "sandbox setup (resize)\tp50\tp99\tmean")
	rows := []struct {
		name string
		s    LatencyStats
	}{
		{"compile+instantiate (seed)", rep.CompileInstantiate},
		{"cached artifact instantiate", rep.CachedInstantiate},
		{"pooled reset", rep.PooledReset},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.name,
			time.Duration(r.s.P50Ns), time.Duration(r.s.P99Ns), time.Duration(r.s.MeanNs))
	}
	tw.Flush()
	fmt.Fprintf(w, "p50 instantiate speedup: %s\n\n", fmtRatio(rep.SpeedupP50))

	tw = newTab(w)
	fmt.Fprintln(tw, "clients\trecompile req/s\tpooled req/s\tspeedup\terrors")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%s\t%d/%d\n",
			r.Clients, r.RecompileRPS, r.PooledRPS, fmtRatio(r.Speedup),
			r.RecompileErrors, r.PooledErrors)
	}
	tw.Flush()
}
