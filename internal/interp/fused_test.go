package interp_test

import (
	"errors"
	"math"
	"testing"

	"acctee/internal/interp"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// This file pins the fused engine's deoptimization paths: a trap landing in
// the middle of a superinstruction, and a fuel shortfall inside a fully
// fused segment, must roll accounting back to exactly the per-instruction
// totals of the structured reference engine (diffEngines compares results,
// trap identity, InstrCount, weighted Cost, remaining fuel, memory and
// globals across structured/flat/fused).

// TestFusedTrapMidSuperinstruction drives a trap into every trap-capable
// fused shape. Each module is built so the fusion pass emits the targeted
// superinstruction (pinned by the white-box shape tests) with a suffix
// behind the trap that the batched accounting must roll back.
func TestFusedTrapMidSuperinstruction(t *testing.T) {
	cases := []struct {
		name  string
		build func() *wasm.Module
		args  []uint64
		trap  error
	}{
		{
			// get get div -> opFGetGetBin, trapping at the binop (offset 2).
			name: "getgetbin_div_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("f1")
				f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).LocalGet(1).Op(wasm.OpI32DivS)
				f.I32Const(100).Op(wasm.OpI32Add) // rolled-back suffix
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{6, 0}, trap: interp.ErrDivByZero,
		},
		{
			name: "getgetbin_div_overflow",
			build: func() *wasm.Module {
				b := wasm.NewModule("f2")
				f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).LocalGet(1).Op(wasm.OpI32DivS)
				f.I32Const(1).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{0x80000000, 0xFFFFFFFF}, trap: interp.ErrIntOverflow,
		},
		{
			// get const div -> opFGetConstBin with a zero constant divisor.
			name: "getconstbin_div_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("f3")
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).I32Const(0).Op(wasm.OpI32DivU)
				f.I32Const(2).Op(wasm.OpI32Mul)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{9}, trap: interp.ErrDivByZero,
		},
		{
			// get get rem set -> opFGetGetBinSet, trapping before the set
			// writes the local.
			name: "getgetbinset_rem_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("f4")
				f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
				r := f.Local(wasm.I32)
				f.I32Const(41).LocalSet(r)
				f.LocalGet(0).LocalGet(1).Op(wasm.OpI32RemU).LocalSet(r)
				f.LocalGet(r)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{13, 0}, trap: interp.ErrDivByZero,
		},
		{
			// i64 division inside the fused shape.
			name: "getgetbin_i64_div_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("f5")
				f := b.Func("f", []wasm.ValueType{wasm.I64, wasm.I64}, []wasm.ValueType{wasm.I64})
				f.LocalGet(0).LocalGet(1).Op(wasm.OpI64DivS)
				f.I64ConstV(5).Op(wasm.OpI64Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{100, 0}, trap: interp.ErrDivByZero,
		},
		{
			// const load with folded effective address -> opFConstLoad OOB.
			name: "constload_oob",
			build: func() *wasm.Module {
				b := wasm.NewModule("f6")
				b.Memory(1, 1)
				f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
				f.I32Const(70000).Load(wasm.OpI32Load, 0)
				f.I32Const(3).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			trap: interp.ErrOutOfBounds,
		},
		{
			// folded address overflows only through the memarg offset.
			name: "constload_offset_oob",
			build: func() *wasm.Module {
				b := wasm.NewModule("f7")
				b.Memory(1, 1)
				f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
				f.I32Const(wasm.PageSize-2).Load(wasm.OpI32Load, 4)
				f.I32Const(3).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			trap: interp.ErrOutOfBounds,
		},
		{
			// get load -> opFGetLoad OOB through the local's value.
			name: "getload_oob",
			build: func() *wasm.Module {
				b := wasm.NewModule("f8")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.F64})
				f.LocalGet(0).Load(wasm.OpF64Load, 0)
				f.F64ConstV(1).Op(wasm.OpF64Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{65530}, trap: interp.ErrOutOfBounds,
		},
		{
			// scaled-index load -> opFScaleLoad OOB at the load (offset 2).
			name: "scaleload_oob",
			build: func() *wasm.Module {
				b := wasm.NewModule("f9")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.F64})
				f.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add)
				f.I32Const(8).Op(wasm.OpI32Mul).Load(wasm.OpF64Load, 0)
				f.F64ConstV(2).Op(wasm.OpF64Mul)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{8000, 192}, trap: interp.ErrOutOfBounds,
		},
		{
			// bin store -> opFBinStore trapping in the binop (offset 0): the
			// operands come from fused const-loads of zeroed memory, so the
			// division is 0/0.
			name: "binstore_div_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("f10")
				b.Memory(1, 1)
				f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
				f.I32Const(16)
				f.I32Const(0).Load(wasm.OpI32Load, 0)
				f.I32Const(4).Load(wasm.OpI32Load, 0)
				f.Op(wasm.OpI32DivU).Store(wasm.OpI32Store, 0)
				f.I32Const(1)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			trap: interp.ErrDivByZero,
		},
		{
			// bin store -> opFBinStore trapping in the store (offset 1).
			name: "binstore_oob",
			build: func() *wasm.Module {
				b := wasm.NewModule("f11")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0)
				f.I32Const(0).Load(wasm.OpI32Load, 0)
				f.I32Const(4).Load(wasm.OpI32Load, 8)
				f.Op(wasm.OpI32Add).Store(wasm.OpI32Store, 0)
				f.I32Const(1)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{70000}, trap: interp.ErrOutOfBounds,
		},
		{
			// get store -> opFGetStore OOB.
			name: "getstore_oob",
			build: func() *wasm.Module {
				b := wasm.NewModule("f12")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).LocalGet(1).Store(wasm.OpI32Store, 0)
				f.I32Const(1)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{1 << 20, 7}, trap: interp.ErrOutOfBounds,
		},
		{
			// const store -> opFConstStore OOB.
			name: "conststore_oob",
			build: func() *wasm.Module {
				b := wasm.NewModule("f13")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).I32Const(0xBEEF).Store(wasm.OpI32Store16, 0)
				f.I32Const(1)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{0xFFFFFFFF}, trap: interp.ErrOutOfBounds,
		},
		{
			// get bin with the stack operand produced by a fused load:
			// opFGetBin trapping at the binop (offset 1).
			name: "getbin_div_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("f14")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.I32Const(0).Load(wasm.OpI32Load, 0)
				f.LocalGet(0).Op(wasm.OpI32DivS)
				f.I32Const(9).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{0}, trap: interp.ErrDivByZero,
		},
		{
			// bin br_if -> opFBinBr trapping in the binop (offset 0): both
			// operands come from fused const-loads of zeroed memory, so the
			// branch condition is 0/0.
			name: "binbr_div_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("fbb")
				b.Memory(1, 1)
				f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
				f.Block(wasm.BlockEmpty, func() {
					f.I32Const(0).Load(wasm.OpI32Load, 0)
					f.I32Const(4).Load(wasm.OpI32Load, 0)
					f.Op(wasm.OpI32DivU).BrIf(0)
				})
				f.I32Const(1)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			trap: interp.ErrDivByZero,
		},
		{
			// bin br_if -> opFBinBr trapping with the division-overflow
			// flavour: MinInt32 / -1 assembled in memory by fused stores.
			name: "binbr_div_overflow",
			build: func() *wasm.Module {
				b := wasm.NewModule("fbbov")
				b.Memory(1, 1)
				f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
				f.I32Const(0).I32Const(math.MinInt32).Store(wasm.OpI32Store, 0)
				f.I32Const(4).I32Const(-1).Store(wasm.OpI32Store, 0)
				f.Block(wasm.BlockEmpty, func() {
					f.I32Const(0).Load(wasm.OpI32Load, 0)
					f.I32Const(4).Load(wasm.OpI32Load, 0)
					f.Op(wasm.OpI32DivS).BrIf(0)
				})
				f.I32Const(1)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			trap: interp.ErrIntOverflow,
		},
		{
			// const bin -> opFConstBin with a zero constant divisor.
			name: "constbin_div_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("f15")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.I32Const(0).Load(wasm.OpI32Load, 0)
				f.I32Const(0).Op(wasm.OpI32RemU)
				f.I32Const(9).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{3}, trap: interp.ErrDivByZero,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := diffEngines(t, tc.build(), interp.Config{CostModel: weights.Calibrated()}, "f", tc.args...)
			if !errors.Is(o.err, tc.trap) {
				t.Errorf("trap = %v, want %v", o.err, tc.trap)
			}
		})
	}
}

// TestFusedFuelSweepMemoryLoop sweeps every fuel budget over a counted loop
// whose body is dominated by fused memory superinstructions (scaled-index
// load, bin store) and whose control overhead is fully fused (compare+br_if
// exit, get/const/add/set increment). Every budget must deoptimize to the
// per-instruction tail at the same instruction as the reference engine,
// with identical counters.
func TestFusedFuelSweepMemoryLoop(t *testing.T) {
	b := wasm.NewModule("fm")
	b.Memory(1, 1)
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.F64})
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.F64)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		// mem[i] = mem[i] * 1.5 + 2.25 ; acc += mem[i]
		f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul)
		f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul).Load(wasm.OpF64Load, 64)
		f.F64ConstV(1.5).Op(wasm.OpF64Mul)
		f.F64ConstV(2.25).Op(wasm.OpF64Add).Store(wasm.OpF64Store, 64)
		f.LocalGet(acc)
		f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul).Load(wasm.OpF64Load, 64)
		f.Op(wasm.OpF64Add).LocalSet(acc)
	})
	f.LocalGet(acc)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()

	// One full run of f(5) takes ~160 instructions; sweep well past it.
	for fuel := uint64(1); fuel < 240; fuel++ {
		cfg := interp.Config{Fuel: fuel, CostModel: weights.Calibrated()}
		diffEngines(t, m, cfg, "f", 5)
	}
}

// TestFusedBranchValueCarry exercises a fused compare+br_if whose taken
// edge carries a block result value: the sidetable copy-down must behave
// exactly as the unfused br_if.
func TestFusedBranchValueCarry(t *testing.T) {
	b := wasm.NewModule("bv")
	f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	f.Block(wasm.BlockOf(wasm.I32), func() {
		f.I32Const(777) // result if the fused branch is taken
		f.LocalGet(0).LocalGet(1).Op(wasm.OpI32LtS).BrIf(0)
		f.Op(wasm.OpDrop)
		f.I32Const(333)
	})
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	for _, tc := range []struct {
		a, b, want uint64
	}{{1, 2, 777}, {2, 1, 333}, {5, 5, 333}} {
		o := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated()}, "f", tc.a, tc.b)
		if o.err != nil {
			t.Fatalf("f(%d,%d): %v", tc.a, tc.b, o.err)
		}
		if o.res[0] != tc.want {
			t.Errorf("f(%d,%d) = %d, want %d", tc.a, tc.b, o.res[0], tc.want)
		}
	}
}

// TestFusedEqzBranch covers the inverted fused branch from the While shape
// (cond; eqz; br_if).
func TestFusedEqzBranch(t *testing.T) {
	b := wasm.NewModule("wz")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	n := f.Local(wasm.I32)
	f.LocalGet(0).LocalSet(n)
	f.While(func() {
		f.LocalGet(n)
	}, func() {
		f.LocalGet(n).I32Const(1).Op(wasm.OpI32Sub).LocalSet(n)
	})
	f.LocalGet(n)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	for _, arg := range []uint64{0, 1, 7} {
		o := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated()}, "f", arg)
		if o.err != nil {
			t.Fatalf("f(%d): %v", arg, o.err)
		}
		if o.res[0] != 0 {
			t.Errorf("f(%d) = %d, want 0", arg, o.res[0])
		}
	}
}

// TestFusedBinBrLoopDifferential drives a loop whose back-edge condition is
// an arithmetic result (memory countdown times itself) consumed directly by
// br_if — the opFBinBr shape — through all three engines, including a fuel
// sweep across the fused branch: results, counters and deopt points must
// be bit-identical to the structured reference.
func TestFusedBinBrLoopDifferential(t *testing.T) {
	b := wasm.NewModule("bbl")
	b.Memory(1, 1)
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	acc := f.Local(wasm.I32)
	// mem[0] = n; do { acc += mem[0]; mem[0]--; } while (mem[0]*mem[0] != 0)
	f.I32Const(0).LocalGet(0).Store(wasm.OpI32Store, 0)
	f.Block(wasm.BlockEmpty, func() {
		f.LocalGet(0).Op(wasm.OpI32Eqz).BrIf(0) // n == 0: skip the do-while
		f.Loop(wasm.BlockEmpty, func() {
			f.LocalGet(acc)
			f.I32Const(0).Load(wasm.OpI32Load, 0)
			f.Op(wasm.OpI32Add).LocalSet(acc)
			f.I32Const(0)
			f.I32Const(0).Load(wasm.OpI32Load, 0)
			f.I32Const(1).Op(wasm.OpI32Sub)
			f.Store(wasm.OpI32Store, 0)
			// The back-edge: product of two fused loads drives br_if.
			f.I32Const(0).Load(wasm.OpI32Load, 0)
			f.I32Const(0).Load(wasm.OpI32Load, 0)
			f.Op(wasm.OpI32Mul).BrIf(0)
		})
	})
	f.LocalGet(acc)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()

	for _, n := range []uint64{0, 1, 2, 9} {
		o := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated()}, "f", n)
		if o.err != nil {
			t.Fatalf("f(%d): %v", n, o.err)
		}
		want := n * (n + 1) / 2
		if o.res[0] != want {
			t.Errorf("f(%d) = %d, want %d", n, o.res[0], want)
		}
	}
	// Fuel sweep: every budget must deoptimize at the same instruction as
	// the reference engine, with identical remaining fuel and counters.
	for fuel := uint64(1); fuel < 120; fuel++ {
		diffEngines(t, m, interp.Config{Fuel: fuel, CostModel: weights.Calibrated()}, "f", 4)
	}
}
