package interp

import (
	"testing"

	"acctee/internal/wasm"
)

// White-box invariants for the inlining pass and finalizeCalls: the spliced
// flat IR must keep the structural properties the engines rely on — segments
// tile the body, markers and inline-ends are segment-final, call flags are
// mutually exclusive and total, inline-cache site ids are dense — and
// InlineStats must agree with the artifacts.

// wbModule builds a caller with two inlinable leaves (one call inside a
// loop), a residual looping callee, an indirect dispatch site and a host
// import, so every flag kind appears in the compiled artifact.
func wbModule() *wasm.Module {
	b := wasm.NewModule("wb")
	b.ImportFunc("env", "sink", []wasm.ValueType{wasm.I32}, nil)
	leaf := b.Func("leaf", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	leaf.LocalGet(0).I32Const(1).Op(wasm.OpI32Add)
	leafIdx := leaf.End()
	big := b.Func("big", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := big.Local(wasm.I32)
	acc := big.Local(wasm.I32)
	big.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		big.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
	})
	big.LocalGet(acc)
	bigIdx := big.End()
	b.Table(leafIdx, bigIdx)
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	j := f.Local(wasm.I32)
	s := f.Local(wasm.I32)
	f.ForI32(j, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(s).Call(leafIdx).LocalSet(s)
	})
	f.LocalGet(s).Call(bigIdx).LocalSet(s)
	f.LocalGet(s).Call(0) // host import
	ti := b.TypeIndex([]wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(s).I32Const(0)
	f.Emit(wasm.Instr{Op: wasm.OpCallIndirect, Idx: ti})
	b.ExportFunc("f", f.End())
	return b.MustBuild()
}

func TestInlineArtifactInvariants(t *testing.T) {
	cm, err := Compile(wbModule(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if cm.InlineStats.SitesInlined == 0 {
		t.Fatal("no sites inlined")
	}
	if cm.InlineStats.SitesInlined > cm.InlineStats.SitesConsidered {
		t.Errorf("SitesInlined %d > SitesConsidered %d",
			cm.InlineStats.SitesInlined, cm.InlineStats.SitesConsidered)
	}

	markers, ends, grown := 0, 0, 0
	icSites := map[int32]bool{}
	for fi := range cm.funcs {
		cf := &cm.funcs[fi]
		grown += len(cf.body) - len(cf.sbody)

		// Segments tile the body: each leader's segment ends exactly where
		// the next begins, and the counts sum to the body length.
		sum := 0
		pc := 0
		for pc < len(cf.body) {
			fl := &cf.flat[pc]
			if fl.segCnt == 0 {
				t.Fatalf("func %d: pc %d expected a segment leader", fi, pc)
			}
			if int(fl.segEnd) != pc+int(fl.segCnt)-1 {
				t.Errorf("func %d: leader %d segEnd %d != leader+cnt-1 %d",
					fi, pc, fl.segEnd, pc+int(fl.segCnt)-1)
			}
			sum += int(fl.segCnt)
			pc = int(fl.segEnd) + 1
		}
		if sum != len(cf.body) {
			t.Errorf("func %d: segment counts sum %d != body len %d", fi, sum, len(cf.body))
		}

		for pc := range cf.body {
			fl := &cf.flat[pc]
			op := cf.body[pc].Op
			if fl.flags&fInlEnter != 0 {
				markers++
				if op != wasm.OpCall {
					t.Errorf("func %d pc %d: fInlEnter on %v", fi, pc, op)
				}
				if fl.flags&(fCallDef|fCallHost) != 0 {
					t.Errorf("func %d pc %d: marker also flagged as residual call", fi, pc)
				}
				if int(fl.segEnd) != pc {
					t.Errorf("func %d pc %d: marker not segment-final", fi, pc)
				}
			}
			if fl.flags&fInlEnd != 0 {
				ends++
				if op != wasm.OpEnd {
					t.Errorf("func %d pc %d: fInlEnd on %v", fi, pc, op)
				}
				if int(fl.segEnd) != pc {
					t.Errorf("func %d pc %d: inline end not segment-final", fi, pc)
				}
			}
			if op == wasm.OpCall && fl.flags&fInlEnter == 0 && !cf.preDead[pc] {
				if fl.flags&(fCallDef|fCallHost) == 0 {
					t.Errorf("func %d pc %d: residual call without fast-path flag", fi, pc)
				}
				if fl.flags&fCallDef != 0 && fl.flags&fCallHost != 0 {
					t.Errorf("func %d pc %d: call flagged both defined and host", fi, pc)
				}
			}
			if op == wasm.OpCallIndirect && !cf.preDead[pc] {
				if fl.flags&fICSite == 0 {
					t.Errorf("func %d pc %d: call_indirect without cache site", fi, pc)
				}
				if icSites[fl.target] {
					t.Errorf("func %d pc %d: duplicate cache site id %d", fi, pc, fl.target)
				}
				icSites[fl.target] = true
			}
		}
	}
	if markers != ends {
		t.Errorf("fInlEnter count %d != fInlEnd count %d", markers, ends)
	}
	if markers != cm.InlineStats.SitesInlined {
		t.Errorf("markers %d != InlineStats.SitesInlined %d", markers, cm.InlineStats.SitesInlined)
	}
	if grown != cm.InlineStats.GrownInstrs {
		t.Errorf("body growth %d != InlineStats.GrownInstrs %d", grown, cm.InlineStats.GrownInstrs)
	}
	for id := int32(0); int(id) < cm.numICSites; id++ {
		if !icSites[id] {
			t.Errorf("cache site id %d unassigned (numICSites = %d)", id, cm.numICSites)
		}
	}
	if len(icSites) != cm.numICSites {
		t.Errorf("%d live cache sites, numICSites = %d", len(icSites), cm.numICSites)
	}
}

func TestInlineOversizedCalleeSkipped(t *testing.T) {
	b := wasm.NewModule("wbbig")
	big := b.Func("big", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	big.LocalGet(0)
	for k := 0; k < inlineMaxBody; k++ { // straight-line but over the cap
		big.I32Const(1).Op(wasm.OpI32Add)
	}
	bigIdx := big.End()
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).Call(bigIdx)
	b.ExportFunc("f", f.End())
	cm, err := Compile(b.MustBuild(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cm.InlineStats.SitesInlined != 0 {
		t.Errorf("oversized callee inlined (%d sites)", cm.InlineStats.SitesInlined)
	}
	if cm.InlineStats.SitesConsidered == 0 {
		t.Error("call site never considered")
	}
}

func TestDisableInlineLeavesNoMarkers(t *testing.T) {
	cm, err := Compile(wbModule(), CompileOptions{DisableInline: true})
	if err != nil {
		t.Fatal(err)
	}
	if cm.InlineStats != (InlineStats{}) {
		t.Errorf("InlineStats = %+v, want zero", cm.InlineStats)
	}
	for fi := range cm.funcs {
		cf := &cm.funcs[fi]
		if len(cf.body) != len(cf.sbody) {
			t.Errorf("func %d: body grew with inlining disabled", fi)
		}
		for pc := range cf.body {
			if cf.flat[pc].flags&(fInlEnter|fInlEnd) != 0 {
				t.Errorf("func %d pc %d: inline flag with inlining disabled", fi, pc)
			}
		}
	}
}
