package interp_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acctee/internal/interp"
	"acctee/internal/wasm"
	wasmbin "acctee/internal/wasm/binary"
	"acctee/internal/weights"
)

// unop builds a module computing one unary instruction over its argument.
func unop(t *testing.T, op wasm.Opcode, in, out wasm.ValueType) *interp.VM {
	t.Helper()
	b := wasm.NewModule("u")
	f := b.Func("f", []wasm.ValueType{in}, []wasm.ValueType{out})
	f.LocalGet(0).Op(op)
	b.ExportFunc("f", f.End())
	vm, err := interp.Instantiate(b.MustBuild(), interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// binop builds a module computing one binary instruction.
func binop(t *testing.T, op wasm.Opcode, vt, out wasm.ValueType) *interp.VM {
	t.Helper()
	b := wasm.NewModule("b")
	f := b.Func("f", []wasm.ValueType{vt, vt}, []wasm.ValueType{out})
	f.LocalGet(0).LocalGet(1).Op(op)
	b.ExportFunc("f", f.End())
	vm, err := interp.Instantiate(b.MustBuild(), interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func call1(t *testing.T, vm *interp.VM, args ...uint64) uint64 {
	t.Helper()
	res, err := vm.InvokeExport("f", args...)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	return res[0]
}

func TestBitCountingOps(t *testing.T) {
	clz := unop(t, wasm.OpI32Clz, wasm.I32, wasm.I32)
	ctz := unop(t, wasm.OpI32Ctz, wasm.I32, wasm.I32)
	pop := unop(t, wasm.OpI32Popcnt, wasm.I32, wasm.I32)
	cases := []struct{ v, clz, ctz, pop uint64 }{
		{0, 32, 32, 0},
		{1, 31, 0, 1},
		{0x80000000, 0, 31, 1},
		{0xFFFFFFFF, 0, 0, 32},
		{0x00F0, 24, 4, 4},
	}
	for _, c := range cases {
		if got := call1(t, clz, c.v); got != c.clz {
			t.Errorf("clz(%#x) = %d, want %d", c.v, got, c.clz)
		}
		if got := call1(t, ctz, c.v); got != c.ctz {
			t.Errorf("ctz(%#x) = %d, want %d", c.v, got, c.ctz)
		}
		if got := call1(t, pop, c.v); got != c.pop {
			t.Errorf("popcnt(%#x) = %d, want %d", c.v, got, c.pop)
		}
	}
}

func TestRotates(t *testing.T) {
	rotl := binop(t, wasm.OpI32Rotl, wasm.I32, wasm.I32)
	rotr := binop(t, wasm.OpI32Rotr, wasm.I32, wasm.I32)
	if got := call1(t, rotl, 0x80000001, 1); got != 3 {
		t.Errorf("rotl(0x80000001,1) = %#x, want 3", got)
	}
	if got := call1(t, rotr, 3, 1); got != 0x80000001 {
		t.Errorf("rotr(3,1) = %#x", got)
	}
	// shift counts wrap mod 32
	if got := call1(t, rotl, 0xABCD, 32); got != 0xABCD {
		t.Errorf("rotl by 32 changed value: %#x", got)
	}
}

func TestShiftMasking(t *testing.T) {
	shl := binop(t, wasm.OpI32Shl, wasm.I32, wasm.I32)
	if got := call1(t, shl, 1, 33); got != 2 { // 33 & 31 == 1
		t.Errorf("shl(1,33) = %d, want 2", got)
	}
	shrS := binop(t, wasm.OpI32ShrS, wasm.I32, wasm.I32)
	if got := call1(t, shrS, uint64(uint32(0x80000000)), 31); got != uint64(uint32(0xFFFFFFFF)) {
		t.Errorf("shr_s sign fill = %#x", got)
	}
}

func TestSignExtendingLoads(t *testing.T) {
	b := wasm.NewModule("sx")
	b.Memory(1, 1)
	b.Data(0, []byte{0xFF, 0x80, 0x00, 0x80, 0xFF, 0xFF, 0xFF, 0xFF})
	mk := func(name string, op wasm.Opcode, out wasm.ValueType, off uint32) {
		f := b.Func(name, nil, []wasm.ValueType{out})
		f.I32Const(0).Load(op, off)
		b.ExportFunc(name, f.End())
	}
	mk("l8s", wasm.OpI32Load8S, wasm.I32, 0)   // 0xFF -> -1
	mk("l8u", wasm.OpI32Load8U, wasm.I32, 0)   // 0xFF -> 255
	mk("l16s", wasm.OpI32Load16S, wasm.I32, 2) // 0x8000 -> -32768
	mk("l64_32s", wasm.OpI64Load32S, wasm.I64, 4)
	mk("l64_8s", wasm.OpI64Load8S, wasm.I64, 1) // 0x80 -> -128
	vm, err := interp.Instantiate(b.MustBuild(), interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) uint64 {
		res, err := vm.InvokeExport(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res[0]
	}
	if v := get("l8s"); int32(uint32(v)) != -1 {
		t.Errorf("load8_s = %d", int32(uint32(v)))
	}
	if v := get("l8u"); v != 255 {
		t.Errorf("load8_u = %d", v)
	}
	if v := get("l16s"); int32(uint32(v)) != -32768 {
		t.Errorf("load16_s = %d", int32(uint32(v)))
	}
	if v := get("l64_32s"); int64(v) != -1 {
		t.Errorf("load32_s = %d", int64(v))
	}
	if v := get("l64_8s"); int64(v) != -128 {
		t.Errorf("i64.load8_s = %d", int64(v))
	}
}

func TestFloatMinMaxCorners(t *testing.T) {
	minv := binop(t, wasm.OpF64Min, wasm.F64, wasm.F64)
	maxv := binop(t, wasm.OpF64Max, wasm.F64, wasm.F64)
	fb := math.Float64bits
	// NaN propagates
	if got := call1(t, minv, fb(math.NaN()), fb(1)); !math.IsNaN(math.Float64frombits(got)) {
		t.Error("min(NaN,1) not NaN")
	}
	if got := call1(t, maxv, fb(2), fb(math.NaN())); !math.IsNaN(math.Float64frombits(got)) {
		t.Error("max(2,NaN) not NaN")
	}
	// signed zeros: min(-0,+0) = -0, max(-0,+0) = +0
	if got := call1(t, minv, fb(math.Copysign(0, -1)), fb(0)); !math.Signbit(math.Float64frombits(got)) {
		t.Error("min(-0,+0) lost sign")
	}
	if got := call1(t, maxv, fb(math.Copysign(0, -1)), fb(0)); math.Signbit(math.Float64frombits(got)) {
		t.Error("max(-0,+0) kept sign")
	}
}

func TestWrapAndExtend(t *testing.T) {
	wrap := unop(t, wasm.OpI32WrapI64, wasm.I64, wasm.I32)
	if got := call1(t, wrap, 0x1_00000002); got != 2 {
		t.Errorf("wrap = %d", got)
	}
	extS := unop(t, wasm.OpI64ExtendI32S, wasm.I32, wasm.I64)
	if got := call1(t, extS, uint64(uint32(0xFFFFFFFE))); int64(got) != -2 {
		t.Errorf("extend_s = %d", int64(got))
	}
	extU := unop(t, wasm.OpI64ExtendI32U, wasm.I32, wasm.I64)
	if got := call1(t, extU, uint64(uint32(0xFFFFFFFE))); got != 0xFFFFFFFE {
		t.Errorf("extend_u = %#x", got)
	}
}

func TestMemargOffsetOverflowTraps(t *testing.T) {
	b := wasm.NewModule("ov")
	b.Memory(1, 1)
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.LocalGet(0).Load(wasm.OpI32Load, 0xFFFFFFF0)
	b.ExportFunc("f", f.End())
	vm, err := interp.Instantiate(b.MustBuild(), interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// base + offset overflows well past memory: must trap, not wrap.
	if _, err := vm.InvokeExport("f", 0x100); err == nil {
		t.Error("offset overflow did not trap")
	}
}

// TestQuickDivRemIdentity property-checks (a/b)*b + a%b == a for non-zero b.
func TestQuickDivRemIdentity(t *testing.T) {
	div := binop(t, wasm.OpI32DivS, wasm.I32, wasm.I32)
	rem := binop(t, wasm.OpI32RemS, wasm.I32, wasm.I32)
	f := func(a int32, b int32) bool {
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return true
		}
		q := int32(uint32(call1(t, div, uint64(uint32(a)), uint64(uint32(b)))))
		r := int32(uint32(call1(t, rem, uint64(uint32(a)), uint64(uint32(b)))))
		return q*b+r == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBinaryRoundTripExecutionEquivalence: encoding to wasm binary and
// decoding back must not change behaviour — results, traps, or instruction
// counts — across random structured programs.
func TestBinaryRoundTripExecutionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB1A))
	for trial := 0; trial < 30; trial++ {
		m := randomProgram(rng)
		bin, err := wasmbin.Encode(m)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		back, err := wasmbin.Decode(bin)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		arg := uint64(rng.Intn(25))
		r1, c1, e1 := execCounted(m, arg)
		r2, c2, e2 := execCounted(back, arg)
		if (e1 == nil) != (e2 == nil) || r1 != r2 || c1 != c2 {
			t.Errorf("trial %d: diverged: %d/%d %d/%d %v/%v", trial, r1, r2, c1, c2, e1, e2)
		}
	}
}

func execCounted(m *wasm.Module, arg uint64) (uint64, uint64, error) {
	vm, err := interp.Instantiate(m, interp.Config{CostModel: weights.Unit(), Fuel: 1 << 20})
	if err != nil {
		return 0, 0, err
	}
	res, err := vm.InvokeExport("main", arg)
	if err != nil {
		return 0, 0, err
	}
	return res[0], vm.Cost(), nil
}

// randomProgram mirrors the generator used elsewhere: loops, branches,
// i32/i64 arithmetic, memory traffic.
func randomProgram(rng *rand.Rand) *wasm.Module {
	b := wasm.NewModule("r")
	b.Memory(1, 2)
	f := b.Func("main", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	x := f.Local(wasm.I32)
	f.LocalGet(0).LocalSet(x)
	n := rng.Intn(6) + 2
	for k := 0; k < n; k++ {
		switch rng.Intn(4) {
		case 0:
			f.LocalGet(x).I32Const(int32(rng.Intn(11) + 1)).Op(wasm.OpI32Mul).LocalSet(x)
		case 1:
			i := f.Local(wasm.I32)
			f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(int32(rng.Intn(6)))}, 1, func() {
				f.LocalGet(x).I32Const(1).Op(wasm.OpI32Add).LocalSet(x)
			})
		case 2:
			f.LocalGet(x).I32Const(1).Op(wasm.OpI32And)
			f.If(wasm.BlockEmpty, func() {
				f.LocalGet(x).I32Const(3).Op(wasm.OpI32Add).LocalSet(x)
			}, func() {
				f.LocalGet(x).I32Const(1).Op(wasm.OpI32ShrU).LocalSet(x)
			})
		case 3:
			f.LocalGet(x).I32Const(255).Op(wasm.OpI32And)
			f.LocalGet(x)
			f.Store(wasm.OpI32Store, 128)
			f.LocalGet(x).I32Const(255).Op(wasm.OpI32And)
			f.Load(wasm.OpI32Load, 128)
			f.LocalSet(x)
		}
	}
	f.LocalGet(x)
	b.ExportFunc("main", f.End())
	return b.MustBuild()
}
