package interp

import (
	"math"
	"math/bits"

	"acctee/internal/wasm"
)

// This file is the register engine's runtime: the direct-threaded driver and
// the helpers its closures call. The compile-time half — the stack-to-
// register lowering that builds the closure stream — lives in regalloc.go.
//
// Execution model: a compiled function body is an array of closures,
// ops[i] = func(vm, frame) int, each returning the index of the next closure
// to run. The driver is the two-line loop
//
//	for uint(pc) < uint(len(ops)) { pc = ops[pc](vm, frame) }
//
// so there is no big-switch dispatch, no decoded instruction stream and —
// because every operand-stack slot has a fixed home register — no runtime
// stack pointer. Negative returns (regTrapRet/regErrRet) convert to huge
// uints and exit the loop; regDone is a large positive index past any real
// stream, distinguishing normal completion from a trap.

// regFn is one direct-threaded handler: execute, return the next index.
type regFn func(vm *VM, fr []uint64) int

const (
	// regDone is returned by exit handlers (return / final end / br to the
	// function label) after depositing the result in vm.regRet.
	regDone = 1 << 30
	// regTrapRet signals a trap: vm.regErr and vm.regTrapPC (original
	// body-pc space) are set and the driver performs segment rollback.
	regTrapRet = -1
	// regErrRet signals an error with accounting already exact (the
	// fuel-shortfall deopt tail, which charges per instruction): no rollback.
	regErrRet = -2
)

// regCode is one function's register-form artifact.
type regCode struct {
	ops []regFn
	// spec flags each emitted closure as specialised (a dedicated handler
	// with inline operation) vs generic (dispatching through applyBin/
	// applyUn/fastLoad at runtime); wid records how many original body
	// instructions the closure covers. Both feed RegStats only.
	spec []bool
	wid  []int32
	// regs is the register-file size: numLoc locals + maxStack stack homes.
	regs int
}

// execReg runs a compiled function on the register engine. fi is the
// defined-function index (cost-table lookup); frame is the register file:
// numLoc locals followed by one home register per operand-stack slot.
func (vm *VM) execReg(f *compiledFunc, fi int, frame []uint64) (uint64, error) {
	// Inlined-call markers bump depth mid-stream; restoring the entry depth
	// keeps it right when a trap unwinds past open inline regions.
	d0 := vm.depth
	vm.depth++
	defer func() { vm.depth = d0 }()
	if vm.depth > vm.maxDepth {
		return 0, ErrCallStackExhausted
	}

	ops := f.reg.ops
	pc := 0
	for uint(pc) < uint(len(ops)) {
		pc = ops[pc](vm, frame)
	}
	if pc >= 0 {
		if f.nresults > 0 {
			return vm.regRet, nil
		}
		return 0, nil
	}
	if pc == regTrapRet {
		var fc *funcCosts
		if vm.cost != nil {
			fc = &vm.costs[fi]
		}
		vm.rollback(f, fc, int(vm.regTrapPC))
		return 0, vm.regErr
	}
	// regErrRet: the per-instruction fuel tail already settled accounting.
	return 0, vm.regErr
}

// invokeAtReg calls function idx (combined index space) from a register-
// engine closure. st is the caller's stack-home window (frame[numLoc:]) with
// the arguments materialised at [sp-nargs, sp); results land back at the
// same position, mirroring invokeAt.
func (vm *VM) invokeAtReg(idx uint32, st []uint64, sp int) (int, error) {
	nimp := len(vm.hostFns)
	if int(idx) < nimp {
		return vm.invokeHost(idx, st, sp)
	}
	di := int(idx) - nimp
	cf := &vm.funcs[di]
	frame := vm.getFrame(cf.numLoc+cf.maxStack, cf.nparams, cf.numLoc)
	copy(frame, st[sp-cf.nparams:sp])
	sp -= cf.nparams
	res, err := vm.execReg(cf, di, frame)
	if err != nil {
		return sp, err
	}
	if cf.nresults > 0 {
		st[sp] = res
		sp++
	}
	return sp, nil
}

// invokeAtRegSlow is invokeAtReg without the compile-time call descriptors:
// runtime host/defined split and a fully-cleared callee frame, as the
// engine behaved before the call fast path. Reached only from LegacyCalls
// artifacts (the call-heavy benchmark baseline).
func (vm *VM) invokeAtRegSlow(idx uint32, st []uint64, sp int) (int, error) {
	nimp := len(vm.hostFns)
	if int(idx) < nimp {
		return vm.invokeHost(idx, st, sp)
	}
	di := int(idx) - nimp
	cf := &vm.funcs[di]
	n := cf.numLoc + cf.maxStack
	frame := vm.getFrame(n, 0, n)
	copy(frame, st[sp-cf.nparams:sp])
	sp -= cf.nparams
	res, err := vm.execReg(cf, di, frame)
	if err != nil {
		return sp, err
	}
	if cf.nresults > 0 {
		st[sp] = res
		sp++
	}
	return sp, nil
}

// applyUn executes one single-operand numeric or conversion instruction on a
// raw 64-bit operand, replicating the flat engine's cases exactly. The
// trapping family (float→int truncation) returns the engine trap errors.
func applyUn(op wasm.Opcode, a uint64) (uint64, error) {
	switch op {
	case wasm.OpI32Eqz:
		return b2u(uint32(a) == 0), nil
	case wasm.OpI64Eqz:
		return b2u(a == 0), nil
	case wasm.OpI32Clz:
		return uint64(uint32(bits.LeadingZeros32(uint32(a)))), nil
	case wasm.OpI32Ctz:
		return uint64(uint32(bits.TrailingZeros32(uint32(a)))), nil
	case wasm.OpI32Popcnt:
		return uint64(uint32(bits.OnesCount32(uint32(a)))), nil
	case wasm.OpI64Clz:
		return uint64(bits.LeadingZeros64(a)), nil
	case wasm.OpI64Ctz:
		return uint64(bits.TrailingZeros64(a)), nil
	case wasm.OpI64Popcnt:
		return uint64(bits.OnesCount64(a)), nil

	case wasm.OpF32Abs:
		return f32u(float32(math.Abs(float64(uf32(a))))), nil
	case wasm.OpF32Neg:
		return f32u(-uf32(a)), nil
	case wasm.OpF32Ceil:
		return f32u(float32(math.Ceil(float64(uf32(a))))), nil
	case wasm.OpF32Floor:
		return f32u(float32(math.Floor(float64(uf32(a))))), nil
	case wasm.OpF32Trunc:
		return f32u(float32(math.Trunc(float64(uf32(a))))), nil
	case wasm.OpF32Nearest:
		return f32u(float32(math.RoundToEven(float64(uf32(a))))), nil
	case wasm.OpF32Sqrt:
		return f32u(float32(math.Sqrt(float64(uf32(a))))), nil

	case wasm.OpF64Abs:
		return f64u(math.Abs(uf64(a))), nil
	case wasm.OpF64Neg:
		return f64u(-uf64(a)), nil
	case wasm.OpF64Ceil:
		return f64u(math.Ceil(uf64(a))), nil
	case wasm.OpF64Floor:
		return f64u(math.Floor(uf64(a))), nil
	case wasm.OpF64Trunc:
		return f64u(math.Trunc(uf64(a))), nil
	case wasm.OpF64Nearest:
		return f64u(math.RoundToEven(uf64(a))), nil
	case wasm.OpF64Sqrt:
		return f64u(math.Sqrt(uf64(a))), nil

	case wasm.OpI32WrapI64:
		return uint64(uint32(a)), nil
	case wasm.OpI32TruncF32S:
		v, err := truncS(float64(uf32(a)), i32Lo, i32Hi)
		if err != nil {
			return 0, err
		}
		return i32u(int32(v)), nil
	case wasm.OpI32TruncF32U:
		v, err := truncU(float64(uf32(a)), u32Hi)
		if err != nil {
			return 0, err
		}
		return uint64(uint32(v)), nil
	case wasm.OpI32TruncF64S:
		v, err := truncS(uf64(a), i32Lo, i32Hi)
		if err != nil {
			return 0, err
		}
		return i32u(int32(v)), nil
	case wasm.OpI32TruncF64U:
		v, err := truncU(uf64(a), u32Hi)
		if err != nil {
			return 0, err
		}
		return uint64(uint32(v)), nil
	case wasm.OpI64ExtendI32S:
		return uint64(int64(int32(uint32(a)))), nil
	case wasm.OpI64ExtendI32U:
		return uint64(uint32(a)), nil
	case wasm.OpI64TruncF32S:
		v, err := truncS(float64(uf32(a)), i64Lo, i64Hi)
		if err != nil {
			return 0, err
		}
		return uint64(v), nil
	case wasm.OpI64TruncF32U:
		return truncU(float64(uf32(a)), u64Hi)
	case wasm.OpI64TruncF64S:
		v, err := truncS(uf64(a), i64Lo, i64Hi)
		if err != nil {
			return 0, err
		}
		return uint64(v), nil
	case wasm.OpI64TruncF64U:
		return truncU(uf64(a), u64Hi)
	case wasm.OpF32ConvertI32S:
		return f32u(float32(int32(uint32(a)))), nil
	case wasm.OpF32ConvertI32U:
		return f32u(float32(uint32(a))), nil
	case wasm.OpF32ConvertI64S:
		return f32u(float32(int64(a))), nil
	case wasm.OpF32ConvertI64U:
		return f32u(float32(a)), nil
	case wasm.OpF32DemoteF64:
		return f32u(float32(uf64(a))), nil
	case wasm.OpF64ConvertI32S:
		return f64u(float64(int32(uint32(a)))), nil
	case wasm.OpF64ConvertI32U:
		return f64u(float64(uint32(a))), nil
	case wasm.OpF64ConvertI64S:
		return f64u(float64(int64(a))), nil
	case wasm.OpF64ConvertI64U:
		return f64u(float64(a)), nil
	case wasm.OpF64PromoteF32:
		return f64u(float64(uf32(a))), nil
	case wasm.OpI32ReinterpretF, wasm.OpI64ReinterpretF,
		wasm.OpF32ReinterpretI, wasm.OpF64ReinterpretI:
		return a, nil
	}
	return 0, &UnknownOpcodeError{Op: op}
}

// unCanTrap reports whether a unary op can trap (float→int truncations).
func unCanTrap(op wasm.Opcode) bool {
	switch op {
	case wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI32TruncF64S,
		wasm.OpI32TruncF64U, wasm.OpI64TruncF32S, wasm.OpI64TruncF32U,
		wasm.OpI64TruncF64S, wasm.OpI64TruncF64U:
		return true
	}
	return false
}

// binCanTrap reports whether a binary op can trap (integer div/rem).
func binCanTrap(op wasm.Opcode) bool {
	switch op {
	case wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU,
		wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU:
		return true
	}
	return false
}
