package interp

import (
	"math"
	"math/bits"

	"acctee/internal/wasm"
)

// This file holds the slice-based single-instruction step shared by the
// structured reference engine and the flat engine's fuel-exhaustion tail,
// plus the memory and float helpers both engines use.

// ---------------------------------------------------------------------------
// memory access helpers

func (vm *VM) effAddr(base uint32, off uint32, width uint32) (int, error) {
	addr := uint64(base) + uint64(off)
	if addr+uint64(width) > uint64(len(vm.memory)) {
		return 0, ErrOutOfBounds
	}
	return int(addr), nil
}

func (vm *VM) loadBits(base, off, width uint32, store bool) (uint64, error) {
	a, err := vm.effAddr(base, off, width)
	if err != nil {
		return 0, err
	}
	if vm.cost != nil {
		vm.costAcc += vm.cost.MemCost(uint32(a), width, store, uint32(len(vm.memory)))
	}
	var v uint64
	for i := int(width) - 1; i >= 0; i-- {
		v = v<<8 | uint64(vm.memory[a+i])
	}
	return v, nil
}

func (vm *VM) storeBits(base, off, width uint32, v uint64) error {
	a, err := vm.effAddr(base, off, width)
	if err != nil {
		return err
	}
	if vm.cost != nil {
		vm.costAcc += vm.cost.MemCost(uint32(a), width, true, uint32(len(vm.memory)))
	}
	vm.markDirty(a, int(width))
	for i := 0; i < int(width); i++ {
		vm.memory[a+i] = byte(v)
		v >>= 8
	}
	return nil
}

// ---------------------------------------------------------------------------
// numeric / memory instruction execution

func (vm *VM) numeric(in *wasm.Instr, stack []uint64) ([]uint64, error) {
	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	pushI32 := func(v int32) { push(uint64(uint32(v))) }
	pushBool := func(b bool) {
		if b {
			push(1)
		} else {
			push(0)
		}
	}
	popI32 := func() int32 { return int32(uint32(pop())) }
	popU32 := func() uint32 { return uint32(pop()) }
	popI64 := func() int64 { return int64(pop()) }
	popF32 := func() float32 { return math.Float32frombits(uint32(pop())) }
	popF64 := func() float64 { return math.Float64frombits(pop()) }
	pushF32 := func(f float32) { push(uint64(math.Float32bits(f))) }
	pushF64 := func(f float64) { push(math.Float64bits(f)) }

	op := in.Op
	if op.IsMemAccess() {
		if op.IsStore() {
			val := pop()
			base := popU32()
			var width uint32
			switch op {
			case wasm.OpI32Store8, wasm.OpI64Store8:
				width = 1
			case wasm.OpI32Store16, wasm.OpI64Store16:
				width = 2
			case wasm.OpI32Store, wasm.OpF32Store, wasm.OpI64Store32:
				width = 4
			default:
				width = 8
			}
			if err := vm.storeBits(base, in.Off, width, val); err != nil {
				return stack, err
			}
			return stack, nil
		}
		base := popU32()
		var v uint64
		var err error
		switch op {
		case wasm.OpI32Load, wasm.OpF32Load:
			v, err = vm.loadBits(base, in.Off, 4, false)
		case wasm.OpI64Load, wasm.OpF64Load:
			v, err = vm.loadBits(base, in.Off, 8, false)
		case wasm.OpI32Load8U, wasm.OpI64Load8U:
			v, err = vm.loadBits(base, in.Off, 1, false)
		case wasm.OpI32Load8S:
			v, err = vm.loadBits(base, in.Off, 1, false)
			v = uint64(uint32(int32(int8(v))))
		case wasm.OpI64Load8S:
			v, err = vm.loadBits(base, in.Off, 1, false)
			v = uint64(int64(int8(v)))
		case wasm.OpI32Load16U, wasm.OpI64Load16U:
			v, err = vm.loadBits(base, in.Off, 2, false)
		case wasm.OpI32Load16S:
			v, err = vm.loadBits(base, in.Off, 2, false)
			v = uint64(uint32(int32(int16(v))))
		case wasm.OpI64Load16S:
			v, err = vm.loadBits(base, in.Off, 2, false)
			v = uint64(int64(int16(v)))
		case wasm.OpI64Load32U:
			v, err = vm.loadBits(base, in.Off, 4, false)
		case wasm.OpI64Load32S:
			v, err = vm.loadBits(base, in.Off, 4, false)
			v = uint64(int64(int32(uint32(v))))
		}
		if err != nil {
			return stack, err
		}
		push(v)
		return stack, nil
	}

	switch op {
	// --- i32 comparison
	case wasm.OpI32Eqz:
		pushBool(popU32() == 0)
	case wasm.OpI32Eq:
		b, a := popU32(), popU32()
		pushBool(a == b)
	case wasm.OpI32Ne:
		b, a := popU32(), popU32()
		pushBool(a != b)
	case wasm.OpI32LtS:
		b, a := popI32(), popI32()
		pushBool(a < b)
	case wasm.OpI32LtU:
		b, a := popU32(), popU32()
		pushBool(a < b)
	case wasm.OpI32GtS:
		b, a := popI32(), popI32()
		pushBool(a > b)
	case wasm.OpI32GtU:
		b, a := popU32(), popU32()
		pushBool(a > b)
	case wasm.OpI32LeS:
		b, a := popI32(), popI32()
		pushBool(a <= b)
	case wasm.OpI32LeU:
		b, a := popU32(), popU32()
		pushBool(a <= b)
	case wasm.OpI32GeS:
		b, a := popI32(), popI32()
		pushBool(a >= b)
	case wasm.OpI32GeU:
		b, a := popU32(), popU32()
		pushBool(a >= b)

	// --- i64 comparison
	case wasm.OpI64Eqz:
		pushBool(pop() == 0)
	case wasm.OpI64Eq:
		b, a := pop(), pop()
		pushBool(a == b)
	case wasm.OpI64Ne:
		b, a := pop(), pop()
		pushBool(a != b)
	case wasm.OpI64LtS:
		b, a := popI64(), popI64()
		pushBool(a < b)
	case wasm.OpI64LtU:
		b, a := pop(), pop()
		pushBool(a < b)
	case wasm.OpI64GtS:
		b, a := popI64(), popI64()
		pushBool(a > b)
	case wasm.OpI64GtU:
		b, a := pop(), pop()
		pushBool(a > b)
	case wasm.OpI64LeS:
		b, a := popI64(), popI64()
		pushBool(a <= b)
	case wasm.OpI64LeU:
		b, a := pop(), pop()
		pushBool(a <= b)
	case wasm.OpI64GeS:
		b, a := popI64(), popI64()
		pushBool(a >= b)
	case wasm.OpI64GeU:
		b, a := pop(), pop()
		pushBool(a >= b)

	// --- f32 comparison
	case wasm.OpF32Eq:
		b, a := popF32(), popF32()
		pushBool(a == b)
	case wasm.OpF32Ne:
		b, a := popF32(), popF32()
		pushBool(a != b)
	case wasm.OpF32Lt:
		b, a := popF32(), popF32()
		pushBool(a < b)
	case wasm.OpF32Gt:
		b, a := popF32(), popF32()
		pushBool(a > b)
	case wasm.OpF32Le:
		b, a := popF32(), popF32()
		pushBool(a <= b)
	case wasm.OpF32Ge:
		b, a := popF32(), popF32()
		pushBool(a >= b)

	// --- f64 comparison
	case wasm.OpF64Eq:
		b, a := popF64(), popF64()
		pushBool(a == b)
	case wasm.OpF64Ne:
		b, a := popF64(), popF64()
		pushBool(a != b)
	case wasm.OpF64Lt:
		b, a := popF64(), popF64()
		pushBool(a < b)
	case wasm.OpF64Gt:
		b, a := popF64(), popF64()
		pushBool(a > b)
	case wasm.OpF64Le:
		b, a := popF64(), popF64()
		pushBool(a <= b)
	case wasm.OpF64Ge:
		b, a := popF64(), popF64()
		pushBool(a >= b)

	// --- i32 numeric
	case wasm.OpI32Clz:
		pushI32(int32(bits.LeadingZeros32(popU32())))
	case wasm.OpI32Ctz:
		pushI32(int32(bits.TrailingZeros32(popU32())))
	case wasm.OpI32Popcnt:
		pushI32(int32(bits.OnesCount32(popU32())))
	case wasm.OpI32Add:
		b, a := popU32(), popU32()
		push(uint64(a + b))
	case wasm.OpI32Sub:
		b, a := popU32(), popU32()
		push(uint64(a - b))
	case wasm.OpI32Mul:
		b, a := popU32(), popU32()
		push(uint64(a * b))
	case wasm.OpI32DivS:
		b, a := popI32(), popI32()
		if b == 0 {
			return stack, ErrDivByZero
		}
		if a == math.MinInt32 && b == -1 {
			return stack, ErrIntOverflow
		}
		pushI32(a / b)
	case wasm.OpI32DivU:
		b, a := popU32(), popU32()
		if b == 0 {
			return stack, ErrDivByZero
		}
		push(uint64(a / b))
	case wasm.OpI32RemS:
		b, a := popI32(), popI32()
		if b == 0 {
			return stack, ErrDivByZero
		}
		if a == math.MinInt32 && b == -1 {
			pushI32(0)
		} else {
			pushI32(a % b)
		}
	case wasm.OpI32RemU:
		b, a := popU32(), popU32()
		if b == 0 {
			return stack, ErrDivByZero
		}
		push(uint64(a % b))
	case wasm.OpI32And:
		b, a := popU32(), popU32()
		push(uint64(a & b))
	case wasm.OpI32Or:
		b, a := popU32(), popU32()
		push(uint64(a | b))
	case wasm.OpI32Xor:
		b, a := popU32(), popU32()
		push(uint64(a ^ b))
	case wasm.OpI32Shl:
		b, a := popU32(), popU32()
		push(uint64(a << (b & 31)))
	case wasm.OpI32ShrS:
		b, a := popU32(), popI32()
		pushI32(a >> (b & 31))
	case wasm.OpI32ShrU:
		b, a := popU32(), popU32()
		push(uint64(a >> (b & 31)))
	case wasm.OpI32Rotl:
		b, a := popU32(), popU32()
		push(uint64(bits.RotateLeft32(a, int(b&31))))
	case wasm.OpI32Rotr:
		b, a := popU32(), popU32()
		push(uint64(bits.RotateLeft32(a, -int(b&31))))

	// --- i64 numeric
	case wasm.OpI64Clz:
		push(uint64(bits.LeadingZeros64(pop())))
	case wasm.OpI64Ctz:
		push(uint64(bits.TrailingZeros64(pop())))
	case wasm.OpI64Popcnt:
		push(uint64(bits.OnesCount64(pop())))
	case wasm.OpI64Add:
		b, a := pop(), pop()
		push(a + b)
	case wasm.OpI64Sub:
		b, a := pop(), pop()
		push(a - b)
	case wasm.OpI64Mul:
		b, a := pop(), pop()
		push(a * b)
	case wasm.OpI64DivS:
		b, a := popI64(), popI64()
		if b == 0 {
			return stack, ErrDivByZero
		}
		if a == math.MinInt64 && b == -1 {
			return stack, ErrIntOverflow
		}
		push(uint64(a / b))
	case wasm.OpI64DivU:
		b, a := pop(), pop()
		if b == 0 {
			return stack, ErrDivByZero
		}
		push(a / b)
	case wasm.OpI64RemS:
		b, a := popI64(), popI64()
		if b == 0 {
			return stack, ErrDivByZero
		}
		if a == math.MinInt64 && b == -1 {
			push(0)
		} else {
			push(uint64(a % b))
		}
	case wasm.OpI64RemU:
		b, a := pop(), pop()
		if b == 0 {
			return stack, ErrDivByZero
		}
		push(a % b)
	case wasm.OpI64And:
		b, a := pop(), pop()
		push(a & b)
	case wasm.OpI64Or:
		b, a := pop(), pop()
		push(a | b)
	case wasm.OpI64Xor:
		b, a := pop(), pop()
		push(a ^ b)
	case wasm.OpI64Shl:
		b, a := pop(), pop()
		push(a << (b & 63))
	case wasm.OpI64ShrS:
		b, a := pop(), popI64()
		push(uint64(a >> (b & 63)))
	case wasm.OpI64ShrU:
		b, a := pop(), pop()
		push(a >> (b & 63))
	case wasm.OpI64Rotl:
		b, a := pop(), pop()
		push(bits.RotateLeft64(a, int(b&63)))
	case wasm.OpI64Rotr:
		b, a := pop(), pop()
		push(bits.RotateLeft64(a, -int(b&63)))

	// --- f32 numeric
	case wasm.OpF32Abs:
		pushF32(float32(math.Abs(float64(popF32()))))
	case wasm.OpF32Neg:
		pushF32(-popF32())
	case wasm.OpF32Ceil:
		pushF32(float32(math.Ceil(float64(popF32()))))
	case wasm.OpF32Floor:
		pushF32(float32(math.Floor(float64(popF32()))))
	case wasm.OpF32Trunc:
		pushF32(float32(math.Trunc(float64(popF32()))))
	case wasm.OpF32Nearest:
		pushF32(float32(math.RoundToEven(float64(popF32()))))
	case wasm.OpF32Sqrt:
		pushF32(float32(math.Sqrt(float64(popF32()))))
	case wasm.OpF32Add:
		b, a := popF32(), popF32()
		pushF32(a + b)
	case wasm.OpF32Sub:
		b, a := popF32(), popF32()
		pushF32(a - b)
	case wasm.OpF32Mul:
		b, a := popF32(), popF32()
		pushF32(a * b)
	case wasm.OpF32Div:
		b, a := popF32(), popF32()
		pushF32(a / b)
	case wasm.OpF32Min:
		b, a := popF32(), popF32()
		pushF32(float32(fmin(float64(a), float64(b))))
	case wasm.OpF32Max:
		b, a := popF32(), popF32()
		pushF32(float32(fmax(float64(a), float64(b))))
	case wasm.OpF32Copysign:
		b, a := popF32(), popF32()
		pushF32(float32(math.Copysign(float64(a), float64(b))))

	// --- f64 numeric
	case wasm.OpF64Abs:
		pushF64(math.Abs(popF64()))
	case wasm.OpF64Neg:
		pushF64(-popF64())
	case wasm.OpF64Ceil:
		pushF64(math.Ceil(popF64()))
	case wasm.OpF64Floor:
		pushF64(math.Floor(popF64()))
	case wasm.OpF64Trunc:
		pushF64(math.Trunc(popF64()))
	case wasm.OpF64Nearest:
		pushF64(math.RoundToEven(popF64()))
	case wasm.OpF64Sqrt:
		pushF64(math.Sqrt(popF64()))
	case wasm.OpF64Add:
		b, a := popF64(), popF64()
		pushF64(a + b)
	case wasm.OpF64Sub:
		b, a := popF64(), popF64()
		pushF64(a - b)
	case wasm.OpF64Mul:
		b, a := popF64(), popF64()
		pushF64(a * b)
	case wasm.OpF64Div:
		b, a := popF64(), popF64()
		pushF64(a / b)
	case wasm.OpF64Min:
		b, a := popF64(), popF64()
		pushF64(fmin(a, b))
	case wasm.OpF64Max:
		b, a := popF64(), popF64()
		pushF64(fmax(a, b))
	case wasm.OpF64Copysign:
		b, a := popF64(), popF64()
		pushF64(math.Copysign(a, b))

	// --- conversions
	case wasm.OpI32WrapI64:
		push(uint64(uint32(pop())))
	case wasm.OpI32TruncF32S:
		f := float64(popF32())
		v, err := truncS(f, i32Lo, i32Hi)
		if err != nil {
			return stack, err
		}
		pushI32(int32(v))
	case wasm.OpI32TruncF32U:
		f := float64(popF32())
		v, err := truncU(f, u32Hi)
		if err != nil {
			return stack, err
		}
		push(uint64(uint32(v)))
	case wasm.OpI32TruncF64S:
		v, err := truncS(popF64(), i32Lo, i32Hi)
		if err != nil {
			return stack, err
		}
		pushI32(int32(v))
	case wasm.OpI32TruncF64U:
		v, err := truncU(popF64(), u32Hi)
		if err != nil {
			return stack, err
		}
		push(uint64(uint32(v)))
	case wasm.OpI64ExtendI32S:
		push(uint64(int64(popI32())))
	case wasm.OpI64ExtendI32U:
		push(uint64(popU32()))
	case wasm.OpI64TruncF32S:
		v, err := truncS(float64(popF32()), i64Lo, i64Hi)
		if err != nil {
			return stack, err
		}
		push(uint64(v))
	case wasm.OpI64TruncF32U:
		v, err := truncU(float64(popF32()), u64Hi)
		if err != nil {
			return stack, err
		}
		push(v)
	case wasm.OpI64TruncF64S:
		v, err := truncS(popF64(), i64Lo, i64Hi)
		if err != nil {
			return stack, err
		}
		push(uint64(v))
	case wasm.OpI64TruncF64U:
		v, err := truncU(popF64(), u64Hi)
		if err != nil {
			return stack, err
		}
		push(v)
	case wasm.OpF32ConvertI32S:
		pushF32(float32(popI32()))
	case wasm.OpF32ConvertI32U:
		pushF32(float32(popU32()))
	case wasm.OpF32ConvertI64S:
		pushF32(float32(popI64()))
	case wasm.OpF32ConvertI64U:
		pushF32(float32(pop()))
	case wasm.OpF32DemoteF64:
		pushF32(float32(popF64()))
	case wasm.OpF64ConvertI32S:
		pushF64(float64(popI32()))
	case wasm.OpF64ConvertI32U:
		pushF64(float64(popU32()))
	case wasm.OpF64ConvertI64S:
		pushF64(float64(popI64()))
	case wasm.OpF64ConvertI64U:
		pushF64(float64(pop()))
	case wasm.OpF64PromoteF32:
		pushF64(float64(popF32()))
	case wasm.OpI32ReinterpretF, wasm.OpI64ReinterpretF,
		wasm.OpF32ReinterpretI, wasm.OpF64ReinterpretI:
		// bit pattern unchanged
	default:
		return stack, &UnknownOpcodeError{Op: op}
	}
	return stack, nil
}

// UnknownOpcodeError reports execution of an opcode outside the MVP set.
type UnknownOpcodeError struct{ Op wasm.Opcode }

func (e *UnknownOpcodeError) Error() string {
	return "interp: unknown opcode " + e.Op.String()
}

func fmin(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if math.Signbit(a) || math.Signbit(b) {
			return math.Copysign(0, -1)
		}
		return 0
	}
	return math.Min(a, b)
}

func fmax(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if !math.Signbit(a) || !math.Signbit(b) {
			return 0
		}
		return math.Copysign(0, -1)
	}
	return math.Max(a, b)
}

// truncS truncates f toward zero and traps unless lo <= trunc(f) < hi,
// where lo/hi are the exact float bounds of the target integer type.
func truncS(f, lo, hi float64) (int64, error) {
	if math.IsNaN(f) {
		return 0, ErrInvalidConversion
	}
	t := math.Trunc(f)
	if t < lo || t >= hi {
		return 0, ErrIntOverflow
	}
	return int64(t), nil
}

// truncU truncates f toward zero and traps unless 0 <= trunc(f) < hi.
func truncU(f, hi float64) (uint64, error) {
	if math.IsNaN(f) {
		return 0, ErrInvalidConversion
	}
	t := math.Trunc(f)
	if t <= -1 || t >= hi {
		return 0, ErrIntOverflow
	}
	if t < 0 {
		t = 0
	}
	return uint64(t), nil
}

// Exact float bounds for trapping truncations.
const (
	i32Lo = -2147483648.0
	i32Hi = 2147483648.0
	i64Lo = -9223372036854775808.0
	i64Hi = 9223372036854775808.0
	u32Hi = 4294967296.0
	u64Hi = 18446744073709551616.0
)
