package interp

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"acctee/internal/wasm"
)

// This file implements the compile-once/run-many split (paper §3.3:
// "instrument once, execute many times", and the FaaS gateway of §5.3 that
// spins up a fresh sandbox per request). Compile produces an immutable
// CompiledModule — the lowered flat IR, the fused superinstruction stream,
// branch/segment sidetables and initialiser templates — that any number of
// VMs instantiate from without repeating the lowering or fusion passes. Per-CostModel segment cost sums are cached on
// the artifact keyed by the model's per-opcode cost fingerprint, so a fresh
// stateful model per run (e.g. a new EPC paging model per request) still
// hits the cache. InstancePool recycles VM slabs (memory, globals, table,
// call frames) across runs with a deterministic Reset that is observationally
// identical to a fresh instantiation.

// CompileOptions parameterise Compile.
type CompileOptions struct {
	// CostModels pre-computes the per-segment cost tables for these models'
	// fingerprints at compile time. Models with other fingerprints are
	// computed lazily (and cached) on first instantiation.
	CostModels []CostModel
}

// CompiledModule is the immutable compile artifact shared by all VMs
// instantiated from it. It is safe for concurrent use.
type CompiledModule struct {
	m     *wasm.Module
	funcs []compiledFunc

	importKeys []string
	importSigs []wasm.FuncType

	hasMemory   bool
	minMemBytes int
	memMaxPages uint32
	globalInit  []uint64
	tableInit   []int32

	// opsUsed is the sorted set of opcodes appearing in any function body
	// (plus OpEnd, charged inline on else fallthrough); evaluating a
	// CostModel over it fingerprints the model for the cost-table cache.
	opsUsed []wasm.Opcode

	costMu    sync.Mutex
	costCache map[string]*costTables
}

// funcCosts are one function's cost tables under one CostModel fingerprint:
// the per-segment InstrCost sums charged at segment leaders, and the prefix
// sums used for exact trap rollback.
type funcCosts struct {
	segCost []uint64 // per-pc; the segment's InstrCost sum at leaders, else 0
	costPfx []uint64 // InstrCost prefix sums over the body
}

// costTables hold the cost tables for every function under one fingerprint.
type costTables struct {
	endCost uint64
	funcs   []funcCosts
}

// Compile runs the lowering pass once over every function and returns the
// shared artifact. The module must already be validated; structural errors
// (unmatched control, bad branch depths, out-of-bounds data or element
// segments) are still reported here.
func Compile(m *wasm.Module, opts CompileOptions) (*CompiledModule, error) {
	cm := &CompiledModule{m: m, costCache: make(map[string]*costTables)}

	// Imports: record resolution keys; host functions bind per instantiation.
	for _, im := range m.Imports {
		switch im.Kind {
		case wasm.ExternalFunc:
			cm.importKeys = append(cm.importKeys, im.Module+"."+im.Name)
			cm.importSigs = append(cm.importSigs, m.Types[im.TypeIdx])
		case wasm.ExternalMemory:
			return nil, fmt.Errorf("interp: memory imports must be linked via host.Link")
		}
	}

	// Memory template.
	if len(m.Memories) > 0 {
		cm.hasMemory = true
		cm.minMemBytes = int(m.Memories[0].Limits.Min) * wasm.PageSize
		cm.memMaxPages = uint32(65536)
		if m.Memories[0].Limits.HasMax {
			cm.memMaxPages = m.Memories[0].Limits.Max
		}
	}
	for _, d := range m.Data {
		off := int(d.Offset.I32Val())
		if off < 0 || off+len(d.Bytes) > cm.minMemBytes {
			return nil, fmt.Errorf("interp: data segment out of bounds")
		}
	}

	// Global initialiser template.
	cm.globalInit = make([]uint64, len(m.Globals))
	for i, g := range m.Globals {
		cm.globalInit[i] = g.Init.U64
	}

	// Table template.
	if len(m.Tables) > 0 {
		cm.tableInit = make([]int32, m.Tables[0].Limits.Min)
		for i := range cm.tableInit {
			cm.tableInit[i] = -1
		}
		for _, e := range m.Elements {
			off := int(e.Offset.I32Val())
			if off < 0 || off+len(e.Funcs) > len(cm.tableInit) {
				return nil, fmt.Errorf("interp: element segment out of bounds")
			}
			for j, f := range e.Funcs {
				cm.tableInit[off+j] = int32(f)
			}
		}
	}

	// Lower every function and collect the opcode set for fingerprinting.
	nimp := m.NumImportedFuncs()
	cm.funcs = make([]compiledFunc, len(m.Funcs))
	seen := map[wasm.Opcode]bool{wasm.OpEnd: true}
	for i := range m.Funcs {
		cf, err := compile(m, &m.Funcs[i])
		if err != nil {
			return nil, fmt.Errorf("interp: func %d: %w", nimp+i, err)
		}
		cm.funcs[i] = cf
		regLower(&cm.funcs[i], i)
		for _, in := range cf.body {
			seen[in.Op] = true
		}
	}
	cm.opsUsed = make([]wasm.Opcode, 0, len(seen))
	for op := range seen {
		cm.opsUsed = append(cm.opsUsed, op)
	}
	sort.Slice(cm.opsUsed, func(i, j int) bool { return cm.opsUsed[i] < cm.opsUsed[j] })

	for _, model := range opts.CostModels {
		if model != nil {
			cm.costTablesFor(model)
		}
	}
	return cm, nil
}

// Module returns the underlying module.
func (cm *CompiledModule) Module() *wasm.Module { return cm.m }

// costKey fingerprints a CostModel by evaluating InstrCost over the
// module's opcode set. InstrCost is required to be pure (a fixed function of
// the opcode), so two models with equal fingerprints yield identical segment
// sums — a fresh stateful model per run maps to the same cached tables.
func (cm *CompiledModule) costKey(model CostModel) string {
	b := make([]byte, 8*len(cm.opsUsed))
	for i, op := range cm.opsUsed {
		binary.LittleEndian.PutUint64(b[i*8:], model.InstrCost(op))
	}
	return string(b)
}

// costTablesFor returns (computing and caching if needed) the cost tables
// for the model's fingerprint.
func (cm *CompiledModule) costTablesFor(model CostModel) *costTables {
	key := cm.costKey(model)
	cm.costMu.Lock()
	defer cm.costMu.Unlock()
	if t, ok := cm.costCache[key]; ok {
		return t
	}
	t := &costTables{
		endCost: model.InstrCost(wasm.OpEnd),
		funcs:   make([]funcCosts, len(cm.funcs)),
	}
	for i := range cm.funcs {
		cf := &cm.funcs[i]
		pfx := make([]uint64, len(cf.body)+1)
		for pc, in := range cf.body {
			pfx[pc+1] = pfx[pc] + model.InstrCost(in.Op)
		}
		seg := make([]uint64, len(cf.body))
		for pc := range cf.body {
			if fl := &cf.flat[pc]; fl.segCnt != 0 {
				seg[pc] = pfx[fl.segEnd+1] - pfx[pc]
			}
		}
		t.funcs[i] = funcCosts{segCost: seg, costPfx: pfx}
	}
	cm.costCache[key] = t
	return t
}

// Instantiate creates a fresh VM from the artifact. It performs no
// compilation: it binds the config, allocates the instance state and applies
// the initialiser templates (and runs the start function, if any).
func (cm *CompiledModule) Instantiate(cfg Config) (*VM, error) {
	return cm.instantiate(cfg, false)
}

// instantiate creates a VM, optionally with dirty-page tracking enabled
// from the very first Reset — pool-managed instances need the initial data
// segments and any start-function stores marked, or a later page-granular
// reset would skip them.
func (cm *CompiledModule) instantiate(cfg Config, track bool) (*VM, error) {
	vm := &VM{cm: cm, module: cm.m, funcs: cm.funcs, trackDirty: track}
	if err := vm.Reset(cfg); err != nil {
		return nil, err
	}
	return vm, nil
}

// Reset restores the VM to the state of a fresh instantiation under cfg:
// counters and fuel are reset, linear memory is re-zeroed to its initial
// size with data segments re-applied, globals and the table are
// re-initialised from the module, imports and the cost model are re-bound,
// and the start function (if any) re-runs. A Reset VM is observationally
// identical to a newly instantiated one.
func (vm *VM) Reset(cfg Config) error {
	cm := vm.cm

	// Bind the configuration.
	vm.engine = cfg.Engine
	vm.maxDepth = cfg.MaxCallDepth
	if vm.maxDepth == 0 {
		vm.maxDepth = 1024
	}
	vm.growHook = cfg.GrowHook
	vm.fuel = cfg.Fuel
	vm.fuelLimited = cfg.Fuel > 0
	vm.cost = cfg.CostModel
	vm.costs = nil
	vm.endCost = 0
	if cfg.CostModel != nil {
		t := cm.costTablesFor(cfg.CostModel)
		vm.costs = t.funcs
		vm.endCost = t.endCost
	}
	vm.depth = 0
	vm.instrCount = 0
	vm.costAcc = 0
	vm.ioBytes = 0

	// Imports.
	if n := len(cm.importKeys); n > 0 {
		if vm.hostFns == nil {
			vm.hostFns = make([]HostFunc, n)
		}
		for i, key := range cm.importKeys {
			fn, ok := cfg.Imports[key]
			if !ok {
				return fmt.Errorf("interp: unresolved import %q", key)
			}
			vm.hostFns[i] = fn
		}
		vm.hostSigs = cm.importSigs
	}

	// Globals.
	if cap(vm.globals) < len(cm.globalInit) {
		vm.globals = make([]uint64, len(cm.globalInit))
	}
	vm.globals = vm.globals[:len(cm.globalInit)]
	copy(vm.globals, cm.globalInit)

	// Memory: reuse the retained slab when large enough, re-zeroing only
	// the pages the previous run dirtied, then re-apply the data segments.
	if cm.hasMemory {
		vm.maxPages = cm.memMaxPages
		if cfg.MaxPages > 0 && cfg.MaxPages < vm.maxPages {
			vm.maxPages = cfg.MaxPages
		}
		n := cm.minMemBytes
		if cap(vm.memory) >= n {
			vm.memory = vm.memory[:n]
			vm.clearDirtyMemory()
		} else {
			vm.memory = make([]byte, n)
			vm.dirtyPages = vm.dirtyPages[:0]
			vm.dirtyAll = false
		}
		vm.sizeDirtyMap(n)
		for _, d := range cm.m.Data {
			if len(d.Bytes) == 0 {
				continue
			}
			off := int(d.Offset.I32Val())
			vm.markDirty(off, len(d.Bytes))
			copy(vm.memory[off:], d.Bytes)
		}
	} else {
		vm.memory = nil
		vm.maxPages = 0
	}

	// Table.
	if cm.tableInit != nil {
		if cap(vm.table) < len(cm.tableInit) {
			vm.table = make([]int32, len(cm.tableInit))
		}
		vm.table = vm.table[:len(cm.tableInit)]
		copy(vm.table, cm.tableInit)
	}

	// Start function runs at instantiation.
	if cm.m.Start != nil {
		if _, err := vm.Invoke(*cm.m.Start); err != nil {
			return fmt.Errorf("interp: start: %w", err)
		}
	}
	return nil
}

// PoolConfig tunes an InstancePool.
type PoolConfig struct {
	// Disabled bypasses reuse: Get always instantiates a fresh VM from the
	// compiled artifact and Put drops the instance.
	Disabled bool
	// Prewarm instantiates this many instances at pool construction so the
	// first requests do not pay the cold allocation.
	Prewarm int
}

// InstancePool recycles VM instances of one CompiledModule across runs. Get
// hands out an instance deterministically Reset to fresh-instantiation
// state; Put returns it for reuse. The pool is safe for concurrent use; an
// instance handed out by Get is owned by the caller until Put.
//
// Prewarmed instances live on an owned free-list the garbage collector
// never evicts, so the Prewarm knob delivers deterministically; instances
// beyond that capacity overflow into a sync.Pool and may be collected
// under memory pressure.
type InstancePool struct {
	cm       *CompiledModule
	disabled bool
	mu       sync.Mutex
	warm     []*VM // owned free-list, capacity fixed at Prewarm
	warmCap  int
	pool     sync.Pool
}

// NewPool creates an instance pool over the artifact. base is the
// configuration used for prewarmed instances; Get rebinds each instance to
// its own per-run configuration, so base only matters for prewarming (it
// must resolve the module's imports).
func (cm *CompiledModule) NewPool(base Config, pc PoolConfig) (*InstancePool, error) {
	p := &InstancePool{cm: cm, disabled: pc.Disabled, warmCap: pc.Prewarm}
	if !pc.Disabled {
		for i := 0; i < pc.Prewarm; i++ {
			vm, err := cm.instantiate(base, true)
			if err != nil {
				return nil, fmt.Errorf("interp: prewarm instance %d: %w", i, err)
			}
			p.warm = append(p.warm, vm)
		}
	}
	return p, nil
}

// Get returns a VM bound to cfg: a recycled instance after a deterministic
// Reset, or a fresh instantiation when the pool is empty or disabled.
// Pool-managed instances carry dirty-page tracking from their very first
// instantiation, so every Reset re-zeroes exactly the written pages —
// including data segments and start-function stores.
func (p *InstancePool) Get(cfg Config) (*VM, error) {
	if !p.disabled {
		var vm *VM
		p.mu.Lock()
		if n := len(p.warm); n > 0 {
			vm = p.warm[n-1]
			p.warm = p.warm[:n-1]
		}
		p.mu.Unlock()
		if vm == nil {
			if v := p.pool.Get(); v != nil {
				vm = v.(*VM)
			}
		}
		if vm != nil {
			if err := vm.Reset(cfg); err != nil {
				return nil, err
			}
			return vm, nil
		}
	}
	return p.cm.instantiate(cfg, !p.disabled)
}

// Put returns an instance to the pool for reuse. Instances from other
// modules are rejected; with pooling disabled the instance is dropped.
func (p *InstancePool) Put(vm *VM) {
	if p.disabled || vm == nil || vm.cm != p.cm {
		return
	}
	p.mu.Lock()
	if len(p.warm) < p.warmCap {
		p.warm = append(p.warm, vm)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.pool.Put(vm)
}
