package interp

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"acctee/internal/affinity"
	"acctee/internal/wasm"
)

// This file implements the compile-once/run-many split (paper §3.3:
// "instrument once, execute many times", and the FaaS gateway of §5.3 that
// spins up a fresh sandbox per request). Compile produces an immutable
// CompiledModule — the lowered flat IR, the fused superinstruction stream,
// branch/segment sidetables and initialiser templates — that any number of
// VMs instantiate from without repeating the lowering or fusion passes. Per-CostModel segment cost sums are cached on
// the artifact keyed by the model's per-opcode cost fingerprint, so a fresh
// stateful model per run (e.g. a new EPC paging model per request) still
// hits the cache. InstancePool recycles VM slabs (memory, globals, table,
// call frames) across runs with a deterministic Reset that is observationally
// identical to a fresh instantiation.

// CompileOptions parameterise Compile.
type CompileOptions struct {
	// CostModels pre-computes the per-segment cost tables for these models'
	// fingerprints at compile time. Models with other fingerprints are
	// computed lazily (and cached) on first instantiation.
	CostModels []CostModel
	// DisableInline skips the cross-function inlining pass (inline.go).
	// Used by benchmarks and tests to compare against the pre-inline call
	// path; the residual-call fast path and call_indirect inline caches are
	// unaffected.
	DisableInline bool
	// LegacyCalls additionally skips the residual-call finalization: no
	// fast-path descriptors and no call_indirect inline caches, so every
	// call takes the generic pre-optimization path (runtime host/defined
	// split, full frame clear, full indirect checks). This reconstructs
	// the call path as it was before the inlining PR and exists solely as
	// the call-heavy benchmark baseline (implies DisableInline).
	LegacyCalls bool
}

// CompiledModule is the immutable compile artifact shared by all VMs
// instantiated from it. It is safe for concurrent use.
type CompiledModule struct {
	m     *wasm.Module
	funcs []compiledFunc

	importKeys []string
	importSigs []wasm.FuncType

	hasMemory   bool
	minMemBytes int
	memMaxPages uint32
	globalInit  []uint64
	tableInit   []int32

	// opsUsed is the sorted set of opcodes appearing in any function body
	// (plus OpEnd, charged inline on else fallthrough); evaluating a
	// CostModel over it fingerprints the model for the cost-table cache.
	// Inlining only duplicates existing instructions, so the set (and the
	// fingerprint) is independent of the inlining decisions.
	opsUsed []wasm.Opcode

	// InlineStats summarises the inlining pass over this module.
	InlineStats InlineStats

	// numICSites is the number of static call_indirect sites across all
	// (post-inline) bodies; it sizes each VM's inline-cache array.
	numICSites int

	// costCache maps costKey fingerprints to *costTables. Reads vastly
	// outnumber writes (every pooled Get with a cost model looks up, only
	// the first request per fingerprint computes), so it is a sync.Map;
	// costMu serializes misses only, so concurrent first requests compute
	// the tables once instead of racing duplicate work.
	costMu    sync.Mutex
	costCache sync.Map
}

// funcCosts are one function's cost tables under one CostModel fingerprint:
// the per-segment InstrCost sums charged at segment leaders, and the prefix
// sums used for exact trap rollback.
type funcCosts struct {
	segCost []uint64 // per-pc; the segment's InstrCost sum at leaders, else 0
	costPfx []uint64 // InstrCost prefix sums over the body
}

// costTables hold the cost tables for every function under one fingerprint.
type costTables struct {
	endCost uint64
	funcs   []funcCosts
}

// Compile runs the lowering pass once over every function and returns the
// shared artifact. The module must already be validated; structural errors
// (unmatched control, bad branch depths, out-of-bounds data or element
// segments) are still reported here.
func Compile(m *wasm.Module, opts CompileOptions) (*CompiledModule, error) {
	cm := &CompiledModule{m: m}

	// Imports: record resolution keys; host functions bind per instantiation.
	for _, im := range m.Imports {
		switch im.Kind {
		case wasm.ExternalFunc:
			cm.importKeys = append(cm.importKeys, im.Module+"."+im.Name)
			cm.importSigs = append(cm.importSigs, m.Types[im.TypeIdx])
		case wasm.ExternalMemory:
			return nil, fmt.Errorf("interp: memory imports must be linked via host.Link")
		}
	}

	// Memory template.
	if len(m.Memories) > 0 {
		cm.hasMemory = true
		cm.minMemBytes = int(m.Memories[0].Limits.Min) * wasm.PageSize
		cm.memMaxPages = uint32(65536)
		if m.Memories[0].Limits.HasMax {
			cm.memMaxPages = m.Memories[0].Limits.Max
		}
	}
	for _, d := range m.Data {
		off := int(d.Offset.I32Val())
		if off < 0 || off+len(d.Bytes) > cm.minMemBytes {
			return nil, fmt.Errorf("interp: data segment out of bounds")
		}
	}

	// Global initialiser template.
	cm.globalInit = make([]uint64, len(m.Globals))
	for i, g := range m.Globals {
		cm.globalInit[i] = g.Init.U64
	}

	// Table template.
	if len(m.Tables) > 0 {
		cm.tableInit = make([]int32, m.Tables[0].Limits.Min)
		for i := range cm.tableInit {
			cm.tableInit[i] = -1
		}
		for _, e := range m.Elements {
			off := int(e.Offset.I32Val())
			if off < 0 || off+len(e.Funcs) > len(cm.tableInit) {
				return nil, fmt.Errorf("interp: element segment out of bounds")
			}
			for j, f := range e.Funcs {
				cm.tableInit[off+j] = int32(f)
			}
		}
	}

	// Lower every function and collect the opcode set for fingerprinting.
	nimp := m.NumImportedFuncs()
	cm.funcs = make([]compiledFunc, len(m.Funcs))
	seen := map[wasm.Opcode]bool{wasm.OpEnd: true}
	for i := range m.Funcs {
		cf, err := compile(m, &m.Funcs[i])
		if err != nil {
			return nil, fmt.Errorf("interp: func %d: %w", nimp+i, err)
		}
		cm.funcs[i] = cf
		for _, in := range cf.body {
			seen[in.Op] = true
		}
	}
	cm.opsUsed = make([]wasm.Opcode, 0, len(seen))
	for op := range seen {
		cm.opsUsed = append(cm.opsUsed, op)
	}
	sort.Slice(cm.opsUsed, func(i, j int) bool { return cm.opsUsed[i] < cm.opsUsed[j] })

	// Freeze the original views for the structured reference engine before
	// inlining rewrites the executable ones; for functions the inliner
	// leaves alone these keep aliasing the same arrays.
	for i := range cm.funcs {
		cf := &cm.funcs[i]
		cf.sbody, cf.sctrl, cf.sflat = cf.body, cf.ctrl, cf.flat
	}

	// Cross-function inlining, then residual-call finalization (fast-path
	// descriptors and call_indirect inline-cache site ids — assigned after
	// inlining so duplicated sites get distinct cache slots), then the
	// per-function back ends over the post-inline view.
	if !opts.DisableInline && !opts.LegacyCalls {
		cm.InlineStats = inlinePass(cm)
	}
	if !opts.LegacyCalls {
		finalizeCalls(cm)
	}
	for i := range cm.funcs {
		fuse(&cm.funcs[i])
		regLower(cm, i)
	}

	for _, model := range opts.CostModels {
		if model != nil {
			cm.costTablesFor(model)
		}
	}
	return cm, nil
}

// Module returns the underlying module.
func (cm *CompiledModule) Module() *wasm.Module { return cm.m }

// costKey fingerprints a CostModel by evaluating InstrCost over the
// module's opcode set. InstrCost is required to be pure (a fixed function of
// the opcode), so two models with equal fingerprints yield identical segment
// sums — a fresh stateful model per run maps to the same cached tables.
func (cm *CompiledModule) costKey(model CostModel) string {
	b := make([]byte, 8*len(cm.opsUsed))
	for i, op := range cm.opsUsed {
		binary.LittleEndian.PutUint64(b[i*8:], model.InstrCost(op))
	}
	return string(b)
}

// costTablesFor returns (computing and caching if needed) the cost tables
// for the model's fingerprint. The hit path — every pooled Get/Reset with a
// cost model — is lock-free; only a miss takes costMu, with a double-check
// so concurrent misses on the same fingerprint compute the tables once.
func (cm *CompiledModule) costTablesFor(model CostModel) *costTables {
	key := cm.costKey(model)
	if t, ok := cm.costCache.Load(key); ok {
		return t.(*costTables)
	}
	cm.costMu.Lock()
	defer cm.costMu.Unlock()
	if t, ok := cm.costCache.Load(key); ok {
		return t.(*costTables)
	}
	t := &costTables{
		endCost: model.InstrCost(wasm.OpEnd),
		funcs:   make([]funcCosts, len(cm.funcs)),
	}
	for i := range cm.funcs {
		cf := &cm.funcs[i]
		pfx := make([]uint64, len(cf.body)+1)
		for pc, in := range cf.body {
			pfx[pc+1] = pfx[pc] + model.InstrCost(in.Op)
		}
		seg := make([]uint64, len(cf.body))
		for pc := range cf.body {
			if fl := &cf.flat[pc]; fl.segCnt != 0 {
				seg[pc] = pfx[fl.segEnd+1] - pfx[pc]
			}
		}
		t.funcs[i] = funcCosts{segCost: seg, costPfx: pfx}
	}
	cm.costCache.Store(key, t)
	return t
}

// Instantiate creates a fresh VM from the artifact. It performs no
// compilation: it binds the config, allocates the instance state and applies
// the initialiser templates (and runs the start function, if any).
func (cm *CompiledModule) Instantiate(cfg Config) (*VM, error) {
	return cm.instantiate(cfg, false)
}

// instantiate creates a VM, optionally with dirty-page tracking enabled
// from the very first Reset — pool-managed instances need the initial data
// segments and any start-function stores marked, or a later page-granular
// reset would skip them.
func (cm *CompiledModule) instantiate(cfg Config, track bool) (*VM, error) {
	vm := &VM{cm: cm, module: cm.m, funcs: cm.funcs, trackDirty: track}
	if err := vm.Reset(cfg); err != nil {
		return nil, err
	}
	return vm, nil
}

// Reset restores the VM to the state of a fresh instantiation under cfg:
// counters and fuel are reset, linear memory is re-zeroed to its initial
// size with data segments re-applied, globals and the table are
// re-initialised from the module, imports and the cost model are re-bound,
// and the start function (if any) re-runs. A Reset VM is observationally
// identical to a newly instantiated one.
func (vm *VM) Reset(cfg Config) error {
	cm := vm.cm

	// Bind the configuration.
	vm.engine = cfg.Engine
	vm.maxDepth = cfg.MaxCallDepth
	if vm.maxDepth == 0 {
		vm.maxDepth = 1024
	}
	vm.growHook = cfg.GrowHook
	vm.intr = cfg.Interrupt
	vm.fuel = cfg.Fuel
	vm.fuelLimited = cfg.Fuel > 0
	vm.cost = cfg.CostModel
	vm.costs = nil
	vm.endCost = 0
	if cfg.CostModel != nil {
		t := cm.costTablesFor(cfg.CostModel)
		vm.costs = t.funcs
		vm.endCost = t.endCost
	}
	vm.depth = 0
	vm.instrCount = 0
	vm.costAcc = 0
	vm.ioBytes = 0

	// Imports.
	if n := len(cm.importKeys); n > 0 {
		if vm.hostFns == nil {
			vm.hostFns = make([]HostFunc, n)
		}
		for i, key := range cm.importKeys {
			fn, ok := cfg.Imports[key]
			if !ok {
				return fmt.Errorf("interp: unresolved import %q", key)
			}
			vm.hostFns[i] = fn
		}
		vm.hostSigs = cm.importSigs
	}

	// Globals.
	if cap(vm.globals) < len(cm.globalInit) {
		vm.globals = make([]uint64, len(cm.globalInit))
	}
	vm.globals = vm.globals[:len(cm.globalInit)]
	copy(vm.globals, cm.globalInit)

	// Memory: reuse the retained slab when large enough, re-zeroing only
	// the pages the previous run dirtied, then re-apply the data segments.
	if cm.hasMemory {
		vm.maxPages = cm.memMaxPages
		if cfg.MaxPages > 0 && cfg.MaxPages < vm.maxPages {
			vm.maxPages = cfg.MaxPages
		}
		n := cm.minMemBytes
		if cap(vm.memory) >= n {
			vm.memory = vm.memory[:n]
			vm.clearDirtyMemory()
		} else {
			vm.memory = make([]byte, n)
			vm.dirtyPages = vm.dirtyPages[:0]
			vm.dirtyAll = false
		}
		vm.sizeDirtyMap(n)
		for _, d := range cm.m.Data {
			if len(d.Bytes) == 0 {
				continue
			}
			off := int(d.Offset.I32Val())
			vm.markDirty(off, len(d.Bytes))
			copy(vm.memory[off:], d.Bytes)
		}
	} else {
		vm.memory = nil
		vm.maxPages = 0
	}

	// Table.
	if cm.tableInit != nil {
		if cap(vm.table) < len(cm.tableInit) {
			vm.table = make([]int32, len(cm.tableInit))
		}
		vm.table = vm.table[:len(cm.tableInit)]
		copy(vm.table, cm.tableInit)
	}

	// call_indirect inline caches. Cached entries were validated against the
	// table image, which the copy above has just restored — so they survive
	// Reset (the pooled hot path pays nothing here) unless the previous run
	// mutated the table through SetTableEntry.
	if cap(vm.icache) < cm.numICSites {
		vm.icache = make([]icEntry, cm.numICSites)
		vm.invalidateICache()
	} else if vm.tableMutated {
		vm.icache = vm.icache[:cm.numICSites]
		vm.invalidateICache()
	}
	vm.tableMutated = false

	// Start function runs at instantiation.
	if cm.m.Start != nil {
		if _, err := vm.Invoke(*cm.m.Start); err != nil {
			return fmt.Errorf("interp: start: %w", err)
		}
	}
	return nil
}

// PoolConfig tunes an InstancePool.
type PoolConfig struct {
	// Disabled bypasses reuse: Get always instantiates a fresh VM from the
	// compiled artifact and Put drops the instance.
	Disabled bool
	// Prewarm instantiates this many instances at pool construction so the
	// first requests do not pay the cold allocation.
	Prewarm int
}

// poolStripe is one striped free-list. Stripes live in a contiguous slice,
// so the trailing pad keeps neighbouring stripes' lock words off a shared
// cache line — without it, Get/Put on *different* stripes would still
// ping-pong the line holding both mutexes.
type poolStripe struct {
	mu   sync.Mutex
	warm []*VM
	_    [64]byte
}

// InstancePool recycles VM instances of one CompiledModule across runs. Get
// hands out an instance deterministically Reset to fresh-instantiation
// state; Put returns it for reuse. The pool is safe for concurrent use; an
// instance handed out by Get is owned by the caller until Put.
//
// The owned free-list is striped across min(GOMAXPROCS, 16) stripes, each
// under its own mutex. A caller sticks to one stripe across Get/Put (lane
// affinity with periodic rebalance), so the common cycle touches a mutex no
// other processor is hammering; an empty stripe steals from siblings with
// TryLock only, never serializing behind a busy stripe.
//
// Prewarmed instances live on the owned stripes, which the garbage
// collector never evicts, so the Prewarm knob delivers deterministically;
// instances beyond that capacity overflow into a sync.Pool and may be
// collected under memory pressure.
type InstancePool struct {
	cm       *CompiledModule
	disabled bool
	stripes  []poolStripe
	// stripeCap bounds each stripe's owned list at ceil(Prewarm/stripes),
	// so total owned capacity is at least Prewarm.
	stripeCap int
	picker    *affinity.Picker
	pool      sync.Pool
}

// NewPool creates an instance pool over the artifact. base is the
// configuration used for prewarmed instances; Get rebinds each instance to
// its own per-run configuration, so base only matters for prewarming (it
// must resolve the module's imports).
func (cm *CompiledModule) NewPool(base Config, pc PoolConfig) (*InstancePool, error) {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	p := &InstancePool{
		cm:       cm,
		disabled: pc.Disabled,
		stripes:  make([]poolStripe, n),
		picker:   affinity.NewPicker(n, 0),
	}
	if pc.Prewarm > 0 {
		p.stripeCap = (pc.Prewarm + n - 1) / n
	}
	if !pc.Disabled {
		for i := 0; i < pc.Prewarm; i++ {
			vm, err := cm.instantiate(base, true)
			if err != nil {
				return nil, fmt.Errorf("interp: prewarm instance %d: %w", i, err)
			}
			s := &p.stripes[i%n]
			s.warm = append(s.warm, vm)
		}
	}
	return p, nil
}

// Get returns a VM bound to cfg: a recycled instance after a deterministic
// Reset, or a fresh instantiation when the pool is empty or disabled.
// Pool-managed instances carry dirty-page tracking from their very first
// instantiation, so every Reset re-zeroes exactly the written pages —
// including data segments and start-function stores.
func (p *InstancePool) Get(cfg Config) (*VM, error) {
	if !p.disabled {
		vm := p.take()
		if vm == nil {
			if v := p.pool.Get(); v != nil {
				vm = v.(*VM)
			}
		}
		if vm != nil {
			if err := vm.Reset(cfg); err != nil {
				return nil, err
			}
			return vm, nil
		}
	}
	return p.cm.instantiate(cfg, !p.disabled)
}

// take pops a warm instance: the caller's sticky stripe first (a blocking
// lock — by construction it is rarely contended), then the sibling stripes
// opportunistically. Stealing uses TryLock only: a stripe busy handing out
// its own instances is skipped, not waited on.
func (p *InstancePool) take() *VM {
	home := int(p.picker.Pick())
	s := &p.stripes[home]
	s.mu.Lock()
	vm := s.popLocked()
	s.mu.Unlock()
	if vm != nil {
		return vm
	}
	for d := 1; d < len(p.stripes); d++ {
		s := &p.stripes[(home+d)%len(p.stripes)]
		if !s.mu.TryLock() {
			continue
		}
		vm = s.popLocked()
		s.mu.Unlock()
		if vm != nil {
			return vm
		}
	}
	return nil
}

func (s *poolStripe) popLocked() *VM {
	n := len(s.warm)
	if n == 0 {
		return nil
	}
	vm := s.warm[n-1]
	s.warm[n-1] = nil
	s.warm = s.warm[:n-1]
	return vm
}

// Put returns an instance to the pool for reuse. Instances from other
// modules are rejected; with pooling disabled the instance is dropped. The
// instance lands on the caller's sticky stripe when it has owned capacity,
// spills to a sibling stripe otherwise (so the owned set keeps its full
// Prewarm complement even when callers cluster on one stripe), and only
// then overflows into the GC-managed sync.Pool.
func (p *InstancePool) Put(vm *VM) {
	if p.disabled || vm == nil || vm.cm != p.cm {
		return
	}
	home := int(p.picker.Pick())
	s := &p.stripes[home]
	s.mu.Lock()
	ok := s.pushLocked(vm, p.stripeCap)
	s.mu.Unlock()
	if ok {
		return
	}
	for d := 1; d < len(p.stripes); d++ {
		s := &p.stripes[(home+d)%len(p.stripes)]
		if !s.mu.TryLock() {
			continue
		}
		ok = s.pushLocked(vm, p.stripeCap)
		s.mu.Unlock()
		if ok {
			return
		}
	}
	p.pool.Put(vm)
}

func (s *poolStripe) pushLocked(vm *VM, limit int) bool {
	if len(s.warm) >= limit {
		return false
	}
	s.warm = append(s.warm, vm)
	return true
}
