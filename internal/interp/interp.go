// Package interp implements AccTEE's WebAssembly execution sandbox: a
// from-scratch interpreter for the full MVP instruction set with bounds-
// checked linear memory, a protected call stack, host-function imports and
// cost hooks. It replaces the paper's V8 engine; because the paper's
// accounting counts executed WebAssembly instructions, any conforming engine
// yields identical counts (§3.5), which this interpreter's ground-truth
// counter is used to verify.
//
// Compilation and instantiation are split (paper §3.3, "instrument once,
// execute many times"): Compile lowers a module once into an immutable
// CompiledModule — including the fused superinstruction stream the default
// engine dispatches — from which any number of VMs are instantiated cheaply,
// directly or recycled through an InstancePool with a deterministic Reset.
// Instantiate below composes the two for one-shot use.
package interp

import (
	"errors"
	"fmt"
	"sync/atomic"

	"acctee/internal/wasm"
)

// Trap errors returned by execution. They match the wasm spec trap
// conditions.
var (
	ErrUnreachable        = errors.New("wasm trap: unreachable executed")
	ErrOutOfBounds        = errors.New("wasm trap: out of bounds memory access")
	ErrDivByZero          = errors.New("wasm trap: integer divide by zero")
	ErrIntOverflow        = errors.New("wasm trap: integer overflow")
	ErrInvalidConversion  = errors.New("wasm trap: invalid conversion to integer")
	ErrUndefinedElement   = errors.New("wasm trap: undefined table element")
	ErrIndirectTypeBad    = errors.New("wasm trap: indirect call type mismatch")
	ErrCallStackExhausted = errors.New("wasm trap: call stack exhausted")
	ErrFuelExhausted      = errors.New("wasm trap: fuel exhausted")
	// ErrInterrupted is the cooperative-cancellation trap (TrapInterrupted):
	// the embedder set Config.Interrupt and the engine observed it at a
	// segment-leader charge point. The check runs before the segment is
	// charged, so the accounting counters hold exactly the work executed up
	// to the interrupt — bit-identical across all four engines.
	ErrInterrupted = errors.New("wasm trap: execution interrupted")
)

// HostFunc is a function provided by the embedder (the runtime "glue code").
// Args and results are raw 64-bit values matching the import signature.
type HostFunc func(vm *VM, args []uint64) ([]uint64, error)

// Engine selects the execution strategy of an instantiation.
type Engine int

// Engines.
const (
	// EngineFused (the default) executes the fused IR: the flat engine's
	// precompiled branch sidetable and fixed-size value stack, plus a
	// compile-time fusion pass that collapses the dominant instruction
	// idioms (local.get/local.get/binop, binop/local.set, compare/br_if,
	// const-folded and scaled-index memory accesses) into single
	// superinstructions. Accounting is bit-identical to EngineStructured:
	// fused spans never cross an accounting segment, and traps inside a
	// superinstruction roll back at the trapping constituent's pc.
	EngineFused Engine = iota
	// EngineStructured is the original structured-control-flow interpreter
	// (runtime label stack, per-instruction accounting). It is retained as
	// the reference oracle for differential testing and before/after
	// dispatch benchmarks.
	EngineStructured
	// EngineFlat executes the flat IR without the fusion pass: one
	// dispatch per wasm instruction. It is kept as the mid-tier for
	// three-way dispatch benchmarks (structured / flat / fused).
	EngineFlat
	// EngineReg executes the register-form IR: the flat IR lowered once
	// more by a stack-to-register allocation pass (every operand-stack
	// slot and local pinned to a slot of the frame's flat register file,
	// explicit src/dst operands per instruction, no runtime stack
	// pointer) and emitted as a direct-threaded closure stream, so
	// execution is pc = ops[pc](vm, frame) with no big-switch dispatch.
	// Accounting is bit-identical to EngineStructured by construction:
	// the lowering reuses the flat engine's segment space, block-batched
	// charging, per-original-pc trap rollback and fuel-shortfall deopt.
	EngineReg
)

// String names the engine as accepted by ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineFused:
		return "fused"
	case EngineStructured:
		return "structured"
	case EngineFlat:
		return "flat"
	case EngineReg:
		return "reg"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine maps the CLI spelling of an engine tier to its Engine value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "fused", "":
		return EngineFused, nil
	case "structured":
		return EngineStructured, nil
	case "flat":
		return EngineFlat, nil
	case "reg":
		return EngineReg, nil
	}
	return 0, fmt.Errorf("interp: unknown engine %q (want structured, flat, fused or reg)", s)
}

// Config parameterises instantiation.
type Config struct {
	// Imports maps "module.name" to host implementations.
	Imports map[string]HostFunc
	// Engine selects the execution strategy (default EngineFused).
	Engine Engine
	// MaxPages caps linear memory growth regardless of the module's limit.
	MaxPages uint32
	// Fuel, when >0, bounds the number of executed instructions; execution
	// traps with ErrFuelExhausted when spent. Used by the two-way sandbox to
	// bound resource consumption (paper §2.1, pay-by-computation).
	Fuel uint64
	// CostModel, when non-nil, accrues a weighted cycle count per executed
	// instruction and per memory access; read it back via VM.Cost.
	CostModel CostModel
	// MaxCallDepth bounds recursion; 0 means the default (1024).
	MaxCallDepth int
	// GrowHook, when non-nil, runs after every successful memory.grow with
	// the old and new page counts. The accounting enclave uses it to track
	// the memory-size integral (paper §3.5, fine-grained memory policy).
	GrowHook func(vm *VM, oldPages, newPages uint32)
	// Interrupt, when non-nil, is polled at segment-leader charge points
	// (before the segment is charged) by every engine; once it reads true
	// the invocation aborts with ErrInterrupted. Setting the flag from
	// another goroutine is the cooperative-cancellation mechanism used for
	// deadline propagation: the interrupted run's counters charge exactly
	// the instructions retired before the flag was observed.
	Interrupt *atomic.Bool
}

// CostModel charges simulated cycles for executed instructions. It is how
// the SGX substrate injects EPC/transition penalties and how ground-truth
// weighted instruction counting is implemented.
type CostModel interface {
	// InstrCost returns the cycles charged for one dynamic execution of op.
	// It must be pure (a fixed function of the opcode): the compiled
	// artifact precomputes per-segment sums and caches them per cost
	// fingerprint. Stateful charging belongs in MemCost, which is always
	// invoked per access.
	InstrCost(op wasm.Opcode) uint64
	// MemCost returns extra cycles for a memory access at addr of the given
	// byte width (store=true for stores), given current memory size.
	MemCost(addr uint32, width uint32, store bool, memSize uint32) uint64
}

// VM is an instantiated module ready for invocation. It borrows the
// immutable compiled artifact from its CompiledModule and owns only the
// mutable instance state (memory, globals, table, counters, call frames),
// which Reset restores to fresh-instantiation state for reuse.
type VM struct {
	cm       *CompiledModule
	module   *wasm.Module
	funcs    []compiledFunc // shared, read-only: the compiled artifact
	costs    []funcCosts    // shared, read-only: cost tables for this config
	hostFns  []HostFunc     // imported functions
	hostSigs []wasm.FuncType
	globals  []uint64
	memory   []byte
	maxPages uint32
	table    []int32 // function indices; -1 = undefined

	fuel        uint64
	fuelLimited bool
	cost        CostModel
	costAcc     uint64
	endCost     uint64 // InstrCost(end), charged inline on else fallthrough
	instrCount  uint64 // ground-truth executed instructions (all opcodes)
	ioBytes     uint64 // accounted by host shims via AddIOBytes

	engine   Engine
	maxDepth int
	depth    int
	growHook func(vm *VM, oldPages, newPages uint32)
	intr     *atomic.Bool // cooperative-cancellation flag (nil = never)

	// icache is the per-site monomorphic inline cache for call_indirect:
	// one entry per static call_indirect site (dense ids assigned at
	// compile time), caching the table element last dispatched through the
	// site after it passed the bounds + signature checks. A hit replaces
	// lookup + type walk with one compare. Entries are invalidated by
	// SetTableEntry; tableMutated additionally tells Reset the table (and
	// hence the cache) must be restored to the initial image.
	icache       []icEntry
	tableMutated bool

	// frames holds one reusable call-frame slab per call depth, so repeated
	// invocations on a (pooled) instance allocate no frames at all.
	frames [][]uint64

	// Register-engine scratch: exit handlers deposit the function result
	// in regRet; trapping handlers deposit the error and the original
	// (body-pc-space) trap pc for rollback. Each field is written
	// immediately before the driver reads it, so recursion is safe.
	regRet    uint64
	regErr    error
	regTrapPC int32
	// regFault is the register engine's in-statement fault latch: a
	// trapping evaluator node (load, div/rem, trunc) sets it together with
	// regErr/regTrapPC, later nodes in the same statement see it and skip
	// their side effects (first fault wins), and the statement's commit
	// point converts it into a regTrapRet. Always false between statements.
	regFault bool

	// dirtyPages is a bitmap over linear-memory pages (wasm.PageSize
	// granularity) written since the last reset; Reset re-zeroes only those
	// pages instead of the whole memory. Tracking is enabled only for
	// pool-managed instances (trackDirty), so one-shot instantiations pay
	// nothing per store; untracked VMs fall back to a full clear on Reset.
	// dirtyAll records an escape hatch: the caller took an unscoped
	// Memory() alias, so everything may have been written.
	dirtyPages []uint64
	trackDirty bool
	dirtyAll   bool
}

type compiledFunc struct {
	typeIdx  uint32
	numLoc   int // params + locals
	nparams  int
	nresults int
	maxStack int // operand-stack high-water mark (flat engine frame size)
	body     []wasm.Instr
	ctrl     []ctrlMeta   // structured-engine control metadata
	flat     []flatOp     // flat-engine branch sidetable + segment accounting
	fused    []wasm.Instr // fused stream: body with superinstructions at span leaders
	preH     []int32      // static operand-stack height before each pc
	preDead  []bool       // pc statically unreachable (after unconditional transfer)
	reg      *regCode     // register-form direct-threaded stream (EngineReg)
	name     string

	// Original (pre-inlining) views, used by the structured reference
	// engine: the oracle must execute real call frames so differential
	// tests compare inlined execution against the ground-truth call path.
	// When the inlining pass leaves a function untouched these alias
	// body/ctrl/flat.
	sbody []wasm.Instr
	sctrl []ctrlMeta
	sflat []flatOp
}

// Instantiate compiles and instantiates a module in one step. Callers that
// instantiate the same module repeatedly should Compile once and reuse the
// artifact (optionally through a pool) instead.
func Instantiate(m *wasm.Module, cfg Config) (*VM, error) {
	cm, err := Compile(m, CompileOptions{})
	if err != nil {
		return nil, err
	}
	return cm.Instantiate(cfg)
}

// Compiled returns the compiled artifact this VM was instantiated from.
func (vm *VM) Compiled() *CompiledModule { return vm.cm }

// InstrCount returns the ground-truth number of instructions executed so far
// (every opcode, including structural ones, costed per the weight model).
func (vm *VM) InstrCount() uint64 { return vm.instrCount }

// Cost returns the accumulated simulated-cycle cost (0 without a CostModel).
func (vm *VM) Cost() uint64 { return vm.costAcc }

// AddCost charges extra simulated cycles (used by host shims, e.g. enclave
// transition penalties).
func (vm *VM) AddCost(c uint64) { vm.costAcc += c }

// IOBytes returns the accounted I/O volume.
func (vm *VM) IOBytes() uint64 { return vm.ioBytes }

// AddIOBytes records accounted I/O traffic crossing the sandbox boundary.
func (vm *VM) AddIOBytes(n uint64) { vm.ioBytes += n }

// FuelRemaining reports the remaining fuel (meaningful only when limited).
func (vm *VM) FuelRemaining() uint64 { return vm.fuel }

// MemorySize returns the current linear memory size in bytes.
func (vm *VM) MemorySize() uint32 { return uint32(len(vm.memory)) }

// Memory exposes the whole linear memory for host functions. The returned
// slice aliases the VM's memory; it is invalidated by memory.grow. Because
// the caller may write through the alias, the entire memory is
// conservatively treated as dirty for pooled reset — hot paths should
// prefer MemoryView (reads) and MemoryDirty (writes).
func (vm *VM) Memory() []byte {
	vm.dirtyAll = true
	return vm.memory
}

// MemoryView returns memory[off:off+n] for reading. Writing through the
// view is not allowed: such writes are invisible to the dirty tracking that
// pooled Reset relies on. The view is invalidated by memory.grow.
func (vm *VM) MemoryView(off, n uint32) ([]byte, error) {
	if uint64(off)+uint64(n) > uint64(len(vm.memory)) {
		return nil, ErrOutOfBounds
	}
	return vm.memory[off : off+n : off+n], nil
}

// MemoryDirty returns memory[off:off+n] for host-side writes, recording the
// range as dirty so pooled Reset re-zeroes it. The view is invalidated by
// memory.grow.
func (vm *VM) MemoryDirty(off, n uint32) ([]byte, error) {
	if uint64(off)+uint64(n) > uint64(len(vm.memory)) {
		return nil, ErrOutOfBounds
	}
	if n > 0 {
		vm.markDirty(int(off), int(n))
	}
	return vm.memory[off : off+n : off+n], nil
}

// markDirty records that memory[a:a+n) is about to be written (n >= 1; the
// caller has already bounds-checked the range). It is a no-op unless the
// instance is pool-managed.
func (vm *VM) markDirty(a, n int) {
	if !vm.trackDirty {
		return
	}
	p0 := a / wasm.PageSize
	p1 := (a + n - 1) / wasm.PageSize
	vm.dirtyPages[p0>>6] |= 1 << (p0 & 63)
	vm.dirtyPages[p1>>6] |= 1 << (p1 & 63)
	for p := p0 + 1; p < p1; p++ {
		vm.dirtyPages[p>>6] |= 1 << (p & 63)
	}
}

// clearDirtyMemory re-zeroes the dirty pages of vm.memory (already resliced
// to the target length) and resets the dirty tracking. Untracked instances
// and instances with an unscoped Memory() alias outstanding fall back to
// zeroing everything.
func (vm *VM) clearDirtyMemory() {
	n := len(vm.memory)
	if !vm.trackDirty || vm.dirtyAll {
		clear(vm.memory)
	} else {
		pages := (n + wasm.PageSize - 1) / wasm.PageSize
		for w, word := range vm.dirtyPages {
			if word == 0 || w*64 >= pages {
				continue
			}
			for b := 0; b < 64; b++ {
				if word&(1<<b) == 0 {
					continue
				}
				p := w*64 + b
				if p >= pages {
					break
				}
				lo := p * wasm.PageSize
				hi := lo + wasm.PageSize
				if hi > n {
					hi = n
				}
				clear(vm.memory[lo:hi])
			}
		}
	}
	vm.dirtyAll = false
	clear(vm.dirtyPages)
}

// sizeDirtyMap (re)sizes the dirty bitmap to cover n bytes of memory,
// preserving existing bits (memory.grow keeps old offsets valid and the
// freshly allocated tail starts zeroed, i.e. clean).
func (vm *VM) sizeDirtyMap(n int) {
	pages := (n + wasm.PageSize - 1) / wasm.PageSize
	words := (pages + 63) / 64
	for len(vm.dirtyPages) < words {
		vm.dirtyPages = append(vm.dirtyPages, 0)
	}
}

// Global reads a global by index.
func (vm *VM) Global(i uint32) (uint64, error) {
	if int(i) >= len(vm.globals) {
		return 0, fmt.Errorf("interp: global %d out of range", i)
	}
	return vm.globals[i], nil
}

// SetGlobal writes a global by index (host-side; bypasses mutability).
func (vm *VM) SetGlobal(i uint32, v uint64) error {
	if int(i) >= len(vm.globals) {
		return fmt.Errorf("interp: global %d out of range", i)
	}
	vm.globals[i] = v
	return nil
}

// Module returns the instantiated module.
func (vm *VM) Module() *wasm.Module { return vm.module }

// icEntry is one call_indirect inline-cache slot: the table element index
// the site last dispatched (-1 = empty) and the resolved combined-space
// function index it mapped to after passing the bounds and signature checks.
// Elements are stored as int32, so indices >= 2^31 (which can only trap on
// the full path) can never collide with a cached entry.
type icEntry struct {
	elem int32
	fidx int32
}

// invalidateICache empties every inline-cache slot.
func (vm *VM) invalidateICache() {
	for i := range vm.icache {
		vm.icache[i] = icEntry{elem: -1}
	}
}

// TableEntry reads the function index stored at table slot i (-1 = empty).
func (vm *VM) TableEntry(i uint32) (int32, error) {
	if int(i) >= len(vm.table) {
		return -1, fmt.Errorf("interp: table index %d out of range", i)
	}
	return vm.table[i], nil
}

// SetTableEntry stores function index fidx (-1 to clear) into table slot i.
// It is the host-side table-mutation API; every call invalidates the
// call_indirect inline caches, and Reset restores the module's initial
// table image afterwards.
func (vm *VM) SetTableEntry(i uint32, fidx int32) error {
	if int(i) >= len(vm.table) {
		return fmt.Errorf("interp: table index %d out of range", i)
	}
	if fidx >= 0 {
		if _, err := vm.module.FuncTypeAt(uint32(fidx)); err != nil {
			return fmt.Errorf("interp: table entry: %w", err)
		}
	}
	vm.table[i] = fidx
	vm.tableMutated = true
	vm.invalidateICache()
	return nil
}

// getFrame returns a frame of n slots for the next call, reusing the
// per-depth slab when it is large enough. Depth uniquely identifies the live
// frame at each level, so reuse never aliases an active frame. Only
// [loClear:hiClear) — the callee's declared non-param locals, which the spec
// requires zeroed — is cleared: params are overwritten by the caller, and
// every operand-stack slot is written before it is read (wasm validation's
// stack discipline), so stale values in the slab are unobservable.
func (vm *VM) getFrame(n, loClear, hiClear int) []uint64 {
	d := vm.depth
	for len(vm.frames) <= d {
		vm.frames = append(vm.frames, nil)
	}
	f := vm.frames[d]
	if cap(f) < n {
		f = make([]uint64, n)
		vm.frames[d] = f
		return f
	}
	f = f[:n]
	clear(f[loClear:hiClear])
	return f
}

// InvokeExport calls an exported function by name.
func (vm *VM) InvokeExport(name string, args ...uint64) ([]uint64, error) {
	idx, ok := vm.module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("interp: no exported function %q", name)
	}
	return vm.Invoke(idx, args...)
}

// Invoke calls a function by index in the combined function index space.
func (vm *VM) Invoke(idx uint32, args ...uint64) ([]uint64, error) {
	nimp := len(vm.hostFns)
	if int(idx) < nimp {
		return vm.hostFns[idx](vm, args)
	}
	di := int(idx) - nimp
	if di >= len(vm.funcs) {
		return nil, fmt.Errorf("interp: function index %d out of range", idx)
	}
	f := &vm.funcs[di]
	if len(args) != f.nparams {
		return nil, fmt.Errorf("interp: func %d expects %d args, got %d", idx, f.nparams, len(args))
	}
	if vm.engine == EngineStructured {
		locals := make([]uint64, f.numLoc)
		copy(locals, args)
		return vm.execStructured(f, locals, make([]uint64, 0, 64))
	}
	frame := vm.getFrame(f.numLoc+f.maxStack, f.nparams, f.numLoc)
	copy(frame, args)
	var res uint64
	var err error
	if vm.engine == EngineReg {
		res, err = vm.execReg(f, di, frame)
	} else {
		res, err = vm.exec(f, di, frame)
	}
	if err != nil {
		return nil, err
	}
	if f.nresults > 0 {
		return []uint64{res}, nil
	}
	return nil, nil
}
