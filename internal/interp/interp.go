// Package interp implements AccTEE's WebAssembly execution sandbox: a
// from-scratch interpreter for the full MVP instruction set with bounds-
// checked linear memory, a protected call stack, host-function imports and
// cost hooks. It replaces the paper's V8 engine; because the paper's
// accounting counts executed WebAssembly instructions, any conforming engine
// yields identical counts (§3.5), which this interpreter's ground-truth
// counter is used to verify.
package interp

import (
	"errors"
	"fmt"

	"acctee/internal/wasm"
)

// Trap errors returned by execution. They match the wasm spec trap
// conditions.
var (
	ErrUnreachable        = errors.New("wasm trap: unreachable executed")
	ErrOutOfBounds        = errors.New("wasm trap: out of bounds memory access")
	ErrDivByZero          = errors.New("wasm trap: integer divide by zero")
	ErrIntOverflow        = errors.New("wasm trap: integer overflow")
	ErrInvalidConversion  = errors.New("wasm trap: invalid conversion to integer")
	ErrUndefinedElement   = errors.New("wasm trap: undefined table element")
	ErrIndirectTypeBad    = errors.New("wasm trap: indirect call type mismatch")
	ErrCallStackExhausted = errors.New("wasm trap: call stack exhausted")
	ErrFuelExhausted      = errors.New("wasm trap: fuel exhausted")
)

// HostFunc is a function provided by the embedder (the runtime "glue code").
// Args and results are raw 64-bit values matching the import signature.
type HostFunc func(vm *VM, args []uint64) ([]uint64, error)

// Engine selects the execution strategy of an instantiation.
type Engine int

// Engines.
const (
	// EngineFlat (the default) executes the flat IR produced by the
	// lowering pass: precompiled branch sidetable, fixed-size value stack,
	// and block-batched fuel/cost/instruction accounting. It is the fast
	// path; its accounting is bit-identical to EngineStructured.
	EngineFlat Engine = iota
	// EngineStructured is the original structured-control-flow interpreter
	// (runtime label stack, per-instruction accounting). It is retained as
	// the reference oracle for differential testing and before/after
	// dispatch benchmarks.
	EngineStructured
)

// Config parameterises instantiation.
type Config struct {
	// Imports maps "module.name" to host implementations.
	Imports map[string]HostFunc
	// Engine selects the execution strategy (default EngineFlat).
	Engine Engine
	// MaxPages caps linear memory growth regardless of the module's limit.
	MaxPages uint32
	// Fuel, when >0, bounds the number of executed instructions; execution
	// traps with ErrFuelExhausted when spent. Used by the two-way sandbox to
	// bound resource consumption (paper §2.1, pay-by-computation).
	Fuel uint64
	// CostModel, when non-nil, accrues a weighted cycle count per executed
	// instruction and per memory access; read it back via VM.Cost.
	CostModel CostModel
	// MaxCallDepth bounds recursion; 0 means the default (1024).
	MaxCallDepth int
	// GrowHook, when non-nil, runs after every successful memory.grow with
	// the old and new page counts. The accounting enclave uses it to track
	// the memory-size integral (paper §3.5, fine-grained memory policy).
	GrowHook func(vm *VM, oldPages, newPages uint32)
}

// CostModel charges simulated cycles for executed instructions. It is how
// the SGX substrate injects EPC/transition penalties and how ground-truth
// weighted instruction counting is implemented.
type CostModel interface {
	// InstrCost returns the cycles charged for one dynamic execution of op.
	// It must be pure (a fixed function of the opcode): the flat engine
	// precomputes per-segment sums at instantiation. Stateful charging
	// belongs in MemCost, which is always invoked per access.
	InstrCost(op wasm.Opcode) uint64
	// MemCost returns extra cycles for a memory access at addr of the given
	// byte width (store=true for stores), given current memory size.
	MemCost(addr uint32, width uint32, store bool, memSize uint32) uint64
}

// VM is an instantiated module ready for invocation.
type VM struct {
	module   *wasm.Module
	funcs    []compiledFunc // defined functions, compiled
	hostFns  []HostFunc     // imported functions
	hostSigs []wasm.FuncType
	globals  []uint64
	memory   []byte
	maxPages uint32
	table    []int32 // function indices; -1 = undefined

	fuel        uint64
	fuelLimited bool
	cost        CostModel
	costAcc     uint64
	endCost     uint64 // InstrCost(end), charged inline on else fallthrough
	instrCount  uint64 // ground-truth executed instructions (all opcodes)
	ioBytes     uint64 // accounted by host shims via AddIOBytes

	engine   Engine
	maxDepth int
	depth    int
	growHook func(vm *VM, oldPages, newPages uint32)
}

type compiledFunc struct {
	typeIdx  uint32
	numLoc   int // params + locals
	nparams  int
	nresults int
	maxStack int // operand-stack high-water mark (flat engine frame size)
	body     []wasm.Instr
	ctrl     []ctrlMeta // structured-engine control metadata
	flat     []flatOp   // flat-engine branch sidetable + segment accounting
	costPfx  []uint64   // InstrCost prefix sums (trap rollback), nil if uncosted
	name     string
}

// Instantiate compiles and instantiates a module.
func Instantiate(m *wasm.Module, cfg Config) (*VM, error) {
	vm := &VM{
		module:   m,
		cost:     cfg.CostModel,
		fuel:     cfg.Fuel,
		engine:   cfg.Engine,
		maxDepth: cfg.MaxCallDepth,
		growHook: cfg.GrowHook,
	}
	if vm.maxDepth == 0 {
		vm.maxDepth = 1024
	}
	vm.fuelLimited = cfg.Fuel > 0
	if vm.cost != nil {
		vm.endCost = vm.cost.InstrCost(wasm.OpEnd)
	}

	// Resolve imports.
	for _, im := range m.Imports {
		switch im.Kind {
		case wasm.ExternalFunc:
			key := im.Module + "." + im.Name
			fn, ok := cfg.Imports[key]
			if !ok {
				return nil, fmt.Errorf("interp: unresolved import %q", key)
			}
			vm.hostFns = append(vm.hostFns, fn)
			vm.hostSigs = append(vm.hostSigs, m.Types[im.TypeIdx])
		case wasm.ExternalMemory:
			return nil, fmt.Errorf("interp: memory imports must be linked via host.Link")
		}
	}

	// Globals.
	vm.globals = make([]uint64, len(m.Globals))
	for i, g := range m.Globals {
		vm.globals[i] = g.Init.U64
	}

	// Memory.
	if len(m.Memories) > 0 {
		minPages := m.Memories[0].Limits.Min
		vm.maxPages = uint32(65536)
		if m.Memories[0].Limits.HasMax {
			vm.maxPages = m.Memories[0].Limits.Max
		}
		if cfg.MaxPages > 0 && cfg.MaxPages < vm.maxPages {
			vm.maxPages = cfg.MaxPages
		}
		vm.memory = make([]byte, int(minPages)*wasm.PageSize)
	}
	for _, d := range m.Data {
		off := int(d.Offset.I32Val())
		if off < 0 || off+len(d.Bytes) > len(vm.memory) {
			return nil, fmt.Errorf("interp: data segment out of bounds")
		}
		copy(vm.memory[off:], d.Bytes)
	}

	// Table.
	if len(m.Tables) > 0 {
		vm.table = make([]int32, m.Tables[0].Limits.Min)
		for i := range vm.table {
			vm.table[i] = -1
		}
		for _, e := range m.Elements {
			off := int(e.Offset.I32Val())
			if off < 0 || off+len(e.Funcs) > len(vm.table) {
				return nil, fmt.Errorf("interp: element segment out of bounds")
			}
			for j, f := range e.Funcs {
				vm.table[off+j] = int32(f)
			}
		}
	}

	// Compile functions: control matching plus the flat-IR lowering pass.
	var costFn func(wasm.Opcode) uint64
	if vm.cost != nil {
		costFn = vm.cost.InstrCost
	}
	nimp := m.NumImportedFuncs()
	vm.funcs = make([]compiledFunc, len(m.Funcs))
	for i := range m.Funcs {
		cf, err := compile(m, &m.Funcs[i], costFn)
		if err != nil {
			return nil, fmt.Errorf("interp: func %d: %w", nimp+i, err)
		}
		vm.funcs[i] = cf
	}

	// Start function runs at instantiation.
	if m.Start != nil {
		if _, err := vm.Invoke(*m.Start); err != nil {
			return nil, fmt.Errorf("interp: start: %w", err)
		}
	}
	return vm, nil
}

// InstrCount returns the ground-truth number of instructions executed so far
// (every opcode, including structural ones, costed per the weight model).
func (vm *VM) InstrCount() uint64 { return vm.instrCount }

// Cost returns the accumulated simulated-cycle cost (0 without a CostModel).
func (vm *VM) Cost() uint64 { return vm.costAcc }

// AddCost charges extra simulated cycles (used by host shims, e.g. enclave
// transition penalties).
func (vm *VM) AddCost(c uint64) { vm.costAcc += c }

// IOBytes returns the accounted I/O volume.
func (vm *VM) IOBytes() uint64 { return vm.ioBytes }

// AddIOBytes records accounted I/O traffic crossing the sandbox boundary.
func (vm *VM) AddIOBytes(n uint64) { vm.ioBytes += n }

// FuelRemaining reports the remaining fuel (meaningful only when limited).
func (vm *VM) FuelRemaining() uint64 { return vm.fuel }

// MemorySize returns the current linear memory size in bytes.
func (vm *VM) MemorySize() uint32 { return uint32(len(vm.memory)) }

// Memory exposes the linear memory for host functions. The returned slice
// aliases the VM's memory; it is invalidated by memory.grow.
func (vm *VM) Memory() []byte { return vm.memory }

// Global reads a global by index.
func (vm *VM) Global(i uint32) (uint64, error) {
	if int(i) >= len(vm.globals) {
		return 0, fmt.Errorf("interp: global %d out of range", i)
	}
	return vm.globals[i], nil
}

// SetGlobal writes a global by index (host-side; bypasses mutability).
func (vm *VM) SetGlobal(i uint32, v uint64) error {
	if int(i) >= len(vm.globals) {
		return fmt.Errorf("interp: global %d out of range", i)
	}
	vm.globals[i] = v
	return nil
}

// Module returns the instantiated module.
func (vm *VM) Module() *wasm.Module { return vm.module }

// InvokeExport calls an exported function by name.
func (vm *VM) InvokeExport(name string, args ...uint64) ([]uint64, error) {
	idx, ok := vm.module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("interp: no exported function %q", name)
	}
	return vm.Invoke(idx, args...)
}

// Invoke calls a function by index in the combined function index space.
func (vm *VM) Invoke(idx uint32, args ...uint64) ([]uint64, error) {
	nimp := len(vm.hostFns)
	if int(idx) < nimp {
		return vm.hostFns[idx](vm, args)
	}
	di := int(idx) - nimp
	if di >= len(vm.funcs) {
		return nil, fmt.Errorf("interp: function index %d out of range", idx)
	}
	f := &vm.funcs[di]
	if len(args) != f.nparams {
		return nil, fmt.Errorf("interp: func %d expects %d args, got %d", idx, f.nparams, len(args))
	}
	if vm.engine == EngineStructured {
		locals := make([]uint64, f.numLoc)
		copy(locals, args)
		return vm.execStructured(f, locals, make([]uint64, 0, 64))
	}
	frame := make([]uint64, f.numLoc+f.maxStack)
	copy(frame, args)
	res, err := vm.exec(f, frame)
	if err != nil {
		return nil, err
	}
	if f.nresults > 0 {
		return []uint64{res}, nil
	}
	return nil, nil
}
