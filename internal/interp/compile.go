package interp

import (
	"fmt"

	"acctee/internal/cfg"
	"acctee/internal/wasm"
)

// This file is the interpreter's lowering pass. At instantiation every
// function body is compiled once into a flat internal representation:
//
//   - every br/br_if/br_table/if/else gets a precomputed continuation pc,
//     the operand-stack height it truncates to, and the number of label
//     result values it copies down — so execution never maintains a label
//     stack and never walks labels to resolve a branch;
//   - static stack-height analysis yields the exact operand-stack high-water
//     mark, so each call frame is a single fixed-size allocation indexed by
//     an integer stack pointer;
//   - the body is partitioned into straight-line segments (the shared
//     internal/cfg basic blocks, further split after call, call_indirect and
//     memory.grow so counters are settled at every host-visible point) and
//     fuel, CostModel cycles and the ground-truth instruction counter are
//     charged once per segment, with per-pc rollback metadata keeping trap
//     paths bit-identical to per-instruction accounting;
//   - an inlining pass (inline.go) then splices small straight-line callees
//     into their callers' flat IR, and a final fusion pass (fuse.go)
//     rewrites the stream into superinstructions for the default fused
//     engine, strictly within segment boundaries so the accounting above is
//     untouched.
//
// The pass is cost-model-independent: per-segment cost sums live in the
// CompiledModule's per-fingerprint cache (module.go), not in the flat IR,
// so one artifact serves instantiations under any cost model.

// ctrlMeta holds the pre-resolved structure for a pc: for block/loop/if the
// matching end (and else); for end/else the header. The structured reference
// engine interprets branches through it.
type ctrlMeta struct {
	end   int // pc of matching end (for block/loop/if); for end/else: start pc
	els   int // pc of else for if, or -1
	arity int // number of values the label yields
}

// flatTarget is one precompiled branch edge: continuation pc, the stack
// height the branch truncates to, and how many label results it copies down.
type flatTarget struct {
	pc     int32
	height int32
	arity  int32
}

// flatOp is the per-pc lowered metadata the flat engine executes against.
// target/height/arity describe the taken-branch edge of br/br_if, the
// false edge of if, and the end-continuation of else. segEnd is the pc of
// the enclosing segment's last instruction (trap rollback bound). segCnt is
// non-zero exactly at segment leaders and holds the segment's instruction
// count; the segment's InstrCost sum is looked up in the artifact's
// per-cost-model tables.
type flatOp struct {
	table  []flatTarget // br_table edges; last entry is the default
	target int32
	height int32
	segCnt int32
	segEnd int32
	arity  int32
	flags  uint8 // call-path metadata, see fInl*/fCall*/fICSite
}

// flatOp.flags bits. They are assigned after the inlining pass (inline.go):
// the first two mark the boundaries of spliced callee bodies, the rest are
// the residual-call fast-path descriptors resolved once at compile time.
const (
	// fInlEnter marks an OpCall that was inlined: the callee body follows
	// immediately. The op stays OpCall so its accounting charge (fuel,
	// InstrCount, InstrCost(call)) is unchanged; at runtime it only bumps
	// the logical call depth and zeroes the callee's non-param locals
	// (arity = number of slots to zero; height unused).
	fInlEnter uint8 = 1 << iota
	// fInlEnd marks the spliced copy of an inlined callee's function-final
	// OpEnd: commit the results (arity = nresults) down to the caller's
	// operand height (height = commit base) and drop the logical depth.
	fInlEnd
	// fCallDef marks a residual OpCall to a defined (non-import) function;
	// target holds the defined-function index (body index, imports already
	// subtracted) so the call site never re-derives it.
	fCallDef
	// fCallHost marks a residual OpCall to an imported host function;
	// target holds the host-function index.
	fCallHost
	// fICSite marks an OpCallIndirect with an inline-cache slot; target
	// holds the dense per-module site id indexing VM.icache.
	fICSite
)

// compile builds both engine representations for one function: the ctrl
// sidetable (structured reference engine) and the flat IR (default engine).
// One cfg.Build provides the control matching, the segment boundaries and
// the structural validation for both.
func compile(m *wasm.Module, f *wasm.Func) (compiledFunc, error) {
	t := m.Types[f.TypeIdx]
	cf := compiledFunc{
		typeIdx:  f.TypeIdx,
		nparams:  len(t.Params),
		nresults: len(t.Results),
		numLoc:   len(t.Params) + len(f.Locals),
		body:     f.Body,
		name:     f.Name,
	}
	g, err := cfg.Build(f.Body)
	if err != nil {
		return cf, err
	}
	buildCtrl(&cf, g)
	if err := lower(m, &cf, g); err != nil {
		return cf, err
	}
	// Fusion and register lowering run later, from Compile (module.go): the
	// inlining pass (inline.go) must splice callee bodies into this flat IR
	// first, and both back ends consume the post-inline view.
	return cf, nil
}

// buildCtrl derives the structured engine's per-pc control metadata from
// the shared CFG matching.
func buildCtrl(cf *compiledFunc, g *cfg.Graph) {
	body := cf.body
	cf.ctrl = make([]ctrlMeta, len(body))
	for pc, in := range body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			mi := g.Match[pc]
			arity := 0
			if _, ok := in.BT.Value(); ok {
				arity = 1
			}
			cf.ctrl[pc] = ctrlMeta{end: mi.EndPC, els: mi.ElsePC, arity: arity}
		case wasm.OpElse:
			cf.ctrl[pc] = ctrlMeta{end: g.Match[pc].EndPC, els: -1}
		case wasm.OpEnd:
			if mi, ok := g.Match[pc]; ok {
				cf.ctrl[pc] = ctrlMeta{end: mi.HdrPC, els: -1}
			} else {
				cf.ctrl[pc] = ctrlMeta{end: -1, els: -1} // function-final end
			}
		}
	}
}

// lframe is one open control frame during lowering. opener 0 denotes the
// implicit function frame.
type lframe struct {
	opener  wasm.Opcode
	hdr     int
	height  int32
	results int32
	dead    bool
}

// lower builds the flat IR: branch sidetable, segment accounting tables and
// the stack high-water mark.
func lower(m *wasm.Module, cf *compiledFunc, g *cfg.Graph) error {
	body := cf.body
	flat := make([]flatOp, len(body))
	cf.flat = flat

	// Segment leaders: every basic-block start, plus the instruction after
	// each call/call_indirect/memory.grow so accounting is settled whenever
	// host code (imports, grow hooks) can observe the VM.
	leader := g.Leaders(wasm.OpCall, wasm.OpCallIndirect, wasm.OpMemoryGrow)

	// Accounting tables: per-segment instruction counts charged at leaders
	// (cost sums are derived per cost-model fingerprint in module.go).
	end := int32(len(body) - 1)
	for pc := len(body) - 1; pc >= 0; pc-- {
		flat[pc].segEnd = end
		if leader[pc] {
			flat[pc].segCnt = end - int32(pc) + 1
			end = int32(pc) - 1
		}
	}

	// Branch resolution and stack-height analysis. Heights are static in
	// validated code; code made unreachable by an unconditional transfer is
	// tracked with the dead flag and skipped (it can never execute, but its
	// branches still get structurally-valid targets).
	frames := []lframe{{hdr: -1, results: int32(cf.nresults)}}
	h, maxH := int32(0), int32(0)
	dead := false

	// Record the static height and reachability before every pc: the
	// register lowering (regalloc.go) replays the body against them without
	// re-deriving the control-frame walk.
	cf.preH = make([]int32, len(body))
	cf.preDead = make([]bool, len(body))

	resolve := func(depth uint32) (flatTarget, error) {
		if int(depth) >= len(frames) {
			return flatTarget{}, fmt.Errorf("branch depth %d out of range", depth)
		}
		fr := &frames[len(frames)-1-int(depth)]
		switch {
		case fr.hdr == -1: // function label: branching to it returns
			return flatTarget{pc: int32(len(body)), height: 0, arity: int32(cf.nresults)}, nil
		case fr.opener == wasm.OpLoop: // backward edge, no results
			return flatTarget{pc: int32(fr.hdr + 1), height: fr.height, arity: 0}, nil
		default:
			return flatTarget{pc: int32(cf.ctrl[fr.hdr].end + 1), height: fr.height, arity: fr.results}, nil
		}
	}

	for pc, in := range body {
		cf.preH[pc] = h
		cf.preDead[pc] = dead
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop:
			frames = append(frames, lframe{
				opener: in.Op, hdr: pc, height: h,
				results: int32(cf.ctrl[pc].arity), dead: dead,
			})
		case wasm.OpIf:
			if !dead {
				h-- // condition
			}
			frames = append(frames, lframe{
				opener: in.Op, hdr: pc, height: h,
				results: int32(cf.ctrl[pc].arity), dead: dead,
			})
			if els := cf.ctrl[pc].els; els >= 0 {
				flat[pc].target = int32(els + 1)
			} else {
				flat[pc].target = int32(cf.ctrl[pc].end + 1)
			}
		case wasm.OpElse:
			fr := &frames[len(frames)-1]
			h = fr.height
			dead = fr.dead
			// Fallthrough from the then-arm continues after the matching
			// end; the end it skips is charged by the engine inline.
			flat[pc].target = int32(cf.ctrl[pc].end + 1)
		case wasm.OpEnd:
			if len(frames) > 1 {
				fr := frames[len(frames)-1]
				frames = frames[:len(frames)-1]
				h = fr.height + fr.results
				dead = fr.dead
			} else {
				h = int32(cf.nresults)
			}
		case wasm.OpBr:
			t, err := resolve(in.Idx)
			if err != nil {
				return err
			}
			flat[pc].target, flat[pc].height, flat[pc].arity = t.pc, t.height, t.arity
			dead = true
		case wasm.OpBrIf:
			if !dead {
				h-- // condition
			}
			t, err := resolve(in.Idx)
			if err != nil {
				return err
			}
			flat[pc].target, flat[pc].height, flat[pc].arity = t.pc, t.height, t.arity
		case wasm.OpBrTable:
			if !dead {
				h-- // index
			}
			tbl := make([]flatTarget, len(in.Table))
			for i, d := range in.Table {
				t, err := resolve(d)
				if err != nil {
					return err
				}
				tbl[i] = t
			}
			flat[pc].table = tbl
			dead = true
		case wasm.OpReturn, wasm.OpUnreachable:
			dead = true
		case wasm.OpCall, wasm.OpCallIndirect:
			if !dead {
				var ft wasm.FuncType
				if in.Op == wasm.OpCall {
					var err error
					ft, err = m.FuncTypeAt(in.Idx)
					if err != nil {
						return err
					}
				} else {
					if int(in.Idx) >= len(m.Types) {
						return fmt.Errorf("call_indirect type %d out of range", in.Idx)
					}
					ft = m.Types[in.Idx]
					h-- // table element index
				}
				h += int32(len(ft.Results)) - int32(len(ft.Params))
			}
		default:
			if !dead {
				pop, push, ok := in.Op.StackEffect()
				if !ok {
					return fmt.Errorf("pc %d: no stack effect for %s", pc, in.Op)
				}
				h += int32(push - pop)
			}
		}
		if !dead && h < 0 {
			return fmt.Errorf("pc %d: operand stack underflow", pc)
		}
		if h > maxH {
			maxH = h
		}
	}
	// One slot of headroom so host functions returning their declared single
	// result always fit even when the call site sits at the high-water mark.
	cf.maxStack = int(maxH) + 1
	return nil
}
