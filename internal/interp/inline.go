package interp

import "acctee/internal/wasm"

// This file is the interpreter's inlining pass — the first compiler pass that
// crosses function boundaries. It splices small straight-line callees into
// their callers' flat IR so the hot call path costs nothing at runtime, while
// keeping fuel, InstrCount and weighted cost bit-identical to the non-inlined
// execution *by construction*:
//
//   - the call instruction stays in the body as a marker (fInlEnter), so its
//     own accounting charge — and its position as a segment-final op — are
//     unchanged; at runtime the marker only bumps the logical call depth
//     (preserving call-stack-exhaustion semantics) and zeroes the callee's
//     non-param locals;
//   - the callee body is copied immediately after the marker with local
//     indices and stack heights shifted so the caller's frame doubles as the
//     callee's: params are the operands already on the caller's stack, locals
//     live above them. Because the executing engines treat the whole frame as
//     the locals array, a shifted local index is just a frame-slot index;
//   - the callee's segment table is copied with pcs shifted, so segment
//     leaders — the points where fuel/cost are charged and interrupts are
//     polled — occur in exactly the same dynamic order as a real call, and
//     trap rollback inside the spliced body uses the callee's own segment
//     bounds;
//   - the spliced copy of the callee's function-final end becomes an fInlEnd
//     marker that commits results down to the caller's operand height and
//     drops the logical depth, mirroring the callee-frame return.
//
// Only straight-line callees are spliced: bodies whose every instruction is
// non-control except the function-final end (plus fInlEnter/fInlEnd pairs
// from earlier rounds, which lets inlining compose transitively). Calls,
// indirect calls and memory.grow are allowed — they only split accounting
// segments, which the splice preserves. This keeps the pass free of branch
// retargeting across function boundaries: the caller's own sidetable is
// remapped through a pc map, the callee contributes none.
//
// The structured reference engine never sees any of this: Compile freezes
// the original views (sbody/sctrl/sflat) before the pass runs, so the oracle
// executes real calls and the differential suite checks splice correctness
// on every run.

const (
	// inlineMaxBody is the largest callee body (in flat instructions,
	// including its final end) that will be spliced.
	inlineMaxBody = 24
	// inlineMaxGrowth caps how many instructions a single caller may gain
	// across all rounds, bounding code growth on call-dense modules.
	inlineMaxGrowth = 192
	// inlineRounds bounds transitive splicing (A inlined into B inlined
	// into C); each round re-examines residual sites against callees'
	// current, possibly already-inlined, bodies.
	inlineRounds = 3
)

// InlineStats reports what the inlining pass did to a compiled module.
type InlineStats struct {
	// SitesConsidered counts call-site examinations. A residual site that
	// stays residual may be re-examined (and re-counted) on a later round,
	// so SitesInlined <= SitesConsidered always holds.
	SitesConsidered int
	// SitesInlined counts call sites converted into fInlEnter markers.
	SitesInlined int
	// GrownInstrs is the total number of flat-IR instructions added across
	// all functions (the "bytes grown" measure; one flat instruction is the
	// unit of both accounting and code size here).
	GrownInstrs int
}

// inlineSite is one call site chosen for splicing in the current round.
type inlineSite struct {
	pc int // caller pc of the OpCall
	di int // defined-function index of the callee
}

// inlinePass splices eligible callees into every function of cm, repeating
// for inlineRounds so chains of small functions collapse transitively.
// It must run after lower() and the freezing of the s-views, and before
// finalizeCalls/fuse/regLower, which consume the post-inline bodies.
func inlinePass(cm *CompiledModule) InlineStats {
	var st InlineStats
	nimp := cm.m.NumImportedFuncs()
	grown := make([]int, len(cm.funcs))
	for round := 0; round < inlineRounds; round++ {
		changed := false
		for i := range cm.funcs {
			if inlineInto(cm, i, nimp, grown, &st) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return st
}

// inlineEligible reports whether ce's current body may be spliced into a
// caller: straight-line (no control instruction except its function-final
// end and fInlEnter/fInlEnd pairs from earlier rounds) with at most one
// result. Plain calls, indirect calls and memory.grow are fine — they are
// segment-final, never branch targets.
func inlineEligible(ce *compiledFunc) bool {
	if len(ce.body) > inlineMaxBody || ce.nresults > 1 {
		return false
	}
	for pc := range ce.body {
		op := ce.body[pc].Op
		switch op {
		case wasm.OpCall, wasm.OpCallIndirect, wasm.OpMemoryGrow:
			// Segment-splitting but not control flow within the body.
		case wasm.OpEnd:
			if pc == len(ce.body)-1 {
				continue // function-final end, becomes the fInlEnd
			}
			if ce.flat[pc].flags&fInlEnd == 0 {
				return false // a real block end: not straight-line
			}
		default:
			if op.IsControl() {
				return false
			}
		}
	}
	return true
}

// inlineInto performs one round of splicing for caller i. Returns whether
// anything changed.
func inlineInto(cm *CompiledModule, i, nimp int, grown []int, st *InlineStats) bool {
	cf := &cm.funcs[i]
	budget := inlineMaxGrowth - grown[i]
	if budget <= 0 {
		return false
	}
	var sites []inlineSite
	for pc := range cf.body {
		in := &cf.body[pc]
		if in.Op != wasm.OpCall || cf.flat[pc].flags&fInlEnter != 0 {
			continue
		}
		if cf.preDead[pc] {
			continue // unreachable: preH is stale there, and it never runs
		}
		if int(in.Idx) < nimp {
			continue // host import: must stay a real crossing
		}
		di := int(in.Idx) - nimp
		st.SitesConsidered++
		if di == i {
			continue // direct self-recursion can never collapse
		}
		ce := &cm.funcs[di]
		if !inlineEligible(ce) {
			continue
		}
		if len(ce.body) > budget {
			continue
		}
		budget -= len(ce.body)
		sites = append(sites, inlineSite{pc: pc, di: di})
	}
	if len(sites) == 0 {
		return false
	}
	before := len(cf.body)
	spliceSites(cm, i, sites)
	added := len(cm.funcs[i].body) - before
	grown[i] += added
	st.GrownInstrs += added
	st.SitesInlined += len(sites)
	return true
}

// spliceSites rebuilds caller i's flat IR with each site's callee body
// spliced in after the call marker. sites are in increasing pc order.
//
// The coordinate maps, with np/nl/nres the callee's param/local/result
// counts and H0 = preH[call] - np (the caller operand height beneath the
// arguments — the callee frame's base):
//
//	callee local index l  ->  caller.numLoc + H0 + l   (frame-slot identity:
//	    params are the argument slots already at height H0, non-param locals
//	    sit above them where the marker zeroes them)
//	callee stack height h ->  H0 + nl + h              (operands above the
//	    callee's local window)
//
// Both are uniform shifts, so nested markers/ends from earlier rounds stay
// correct: their stored heights shift with everything else.
func spliceSites(cm *CompiledModule, i int, sites []inlineSite) {
	cf := &cm.funcs[i]
	oldBody, oldFlat := cf.body, cf.flat
	oldCtrl, oldPreH, oldPreDead := cf.ctrl, cf.preH, cf.preDead

	extra := 0
	for _, s := range sites {
		extra += len(cm.funcs[s.di].body)
	}
	n := len(oldBody) + extra
	nb := make([]wasm.Instr, 0, n)
	nf := make([]flatOp, 0, n)
	nc := make([]ctrlMeta, 0, n)
	nh := make([]int32, 0, n)
	nd := make([]bool, 0, n)
	// pcMap[old pc] = new pc, including the virtual function-exit pc
	// len(oldBody) used by return-branches.
	pcMap := make([]int32, len(oldBody)+1)
	// fromCaller marks new pcs whose branch metadata is in old-pc
	// coordinates and needs remapping; callee-origin pcs are shifted in
	// place during the copy.
	fromCaller := make([]bool, 0, n)

	maxStack := cf.maxStack
	si := 0
	for pc := range oldBody {
		pcMap[pc] = int32(len(nb))
		nb = append(nb, oldBody[pc])
		nf = append(nf, oldFlat[pc])
		nc = append(nc, oldCtrl[pc])
		nh = append(nh, oldPreH[pc])
		nd = append(nd, oldPreDead[pc])
		fromCaller = append(fromCaller, true)
		if si < len(sites) && sites[si].pc == pc {
			ce := &cm.funcs[sites[si].di]
			si++
			np, nl := int32(ce.nparams), int32(ce.numLoc)
			h0 := oldPreH[pc] - np
			mk := &nf[len(nf)-1]
			mk.flags |= fInlEnter
			mk.arity = nl - np // non-param locals the marker zeroes
			localShift := uint32(int32(cf.numLoc) + h0)
			heightShift := h0 + nl
			base := int32(len(nb))
			for q := range ce.body {
				in := ce.body[q]
				switch in.Op {
				case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
					in.Idx += localShift
				}
				nb = append(nb, in)
				fo := ce.flat[q]
				fo.segEnd += base
				if fo.flags&fInlEnd != 0 {
					fo.height += heightShift
				}
				nf = append(nf, fo)
				nc = append(nc, ce.ctrl[q])
				nh = append(nh, ce.preH[q]+heightShift)
				nd = append(nd, false)
				fromCaller = append(fromCaller, false)
			}
			// The callee's function-final end becomes this region's exit.
			fe := &nf[len(nf)-1]
			fe.flags |= fInlEnd
			fe.height = h0
			fe.arity = int32(ce.nresults)
			if ms := int(h0) + ce.numLoc + ce.maxStack; ms > maxStack {
				maxStack = ms
			}
		}
	}
	pcMap[len(oldBody)] = int32(len(nb))

	// Remap the caller's own branch metadata into the new pc space. Caller
	// stack heights are untouched (splices only insert between caller pcs),
	// so only pcs move.
	for npc := range nb {
		if !fromCaller[npc] {
			continue
		}
		fo := &nf[npc]
		fo.segEnd = pcMap[fo.segEnd]
		switch nb[npc].Op {
		case wasm.OpIf, wasm.OpElse, wasm.OpBr, wasm.OpBrIf:
			fo.target = pcMap[fo.target]
		case wasm.OpBrTable:
			tbl := make([]flatTarget, len(fo.table))
			for k, t := range fo.table {
				t.pc = pcMap[t.pc]
				tbl[k] = t
			}
			fo.table = tbl
		}
		switch nb[npc].Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf, wasm.OpElse:
			co := &nc[npc]
			co.end = int(pcMap[co.end])
			if co.els >= 0 {
				co.els = int(pcMap[co.els])
			}
		case wasm.OpEnd:
			co := &nc[npc]
			if co.end >= 0 {
				co.end = int(pcMap[co.end])
			}
		}
	}

	cf.body, cf.flat, cf.ctrl = nb, nf, nc
	cf.preH, cf.preDead = nh, nd
	cf.maxStack = maxStack
}

// finalizeCalls resolves every residual call site once, after inlining:
// each surviving OpCall becomes a pre-resolved descriptor (defined-function
// index or host index in flat.target), and every OpCallIndirect gets a
// dense inline-cache slot id. Running after the splice means duplicated
// indirect sites inside inlined bodies each get their own monomorphic slot.
func finalizeCalls(cm *CompiledModule) {
	nimp := cm.m.NumImportedFuncs()
	sites := 0
	for i := range cm.funcs {
		cf := &cm.funcs[i]
		for pc := range cf.body {
			fl := &cf.flat[pc]
			switch cf.body[pc].Op {
			case wasm.OpCall:
				if fl.flags&fInlEnter != 0 {
					continue
				}
				if idx := int(cf.body[pc].Idx); idx < nimp {
					fl.flags |= fCallHost
					fl.target = int32(idx)
				} else {
					fl.flags |= fCallDef
					fl.target = int32(idx - nimp)
				}
			case wasm.OpCallIndirect:
				fl.flags |= fICSite
				fl.target = int32(sites)
				sites++
			}
		}
	}
	cm.numICSites = sites
}
