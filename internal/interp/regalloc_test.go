package interp

import (
	"testing"

	"acctee/internal/polybench"
	"acctee/internal/wasm"
)

// White-box tests for the register lowering: structural invariants of the
// closure stream (the properties the accounting-exactness and dispatch
// arguments rest on) and the coverage the pass achieves on real kernels.

// checkRegInvariants walks every function's register stream and asserts:
//
//   - every pc has a closure (interior and dead pcs get defensive guards,
//     so a lowering bug can never dispatch a nil);
//   - the width table tiles the body: span leaders carry w >= 1, interior
//     pcs carry 0, and consecutive spans are contiguous;
//   - no span interior is a segment leader (so every branch target, post-
//     call and post-grow split point starts its own closure and the batched
//     accounting charge covers each span exactly once);
//   - a span never crosses its leader's segment end (trap rollback bound);
//   - the register file covers locals plus the operand-stack high-water
//     mark.
func checkRegInvariants(t *testing.T, name string, cm *CompiledModule) {
	t.Helper()
	for fi := range cm.funcs {
		cf := &cm.funcs[fi]
		if cf.reg == nil {
			t.Fatalf("%s func %d: no register stream", name, fi)
		}
		rc := cf.reg
		if len(rc.ops) != len(cf.body) || len(rc.wid) != len(cf.body) || len(rc.spec) != len(cf.body) {
			t.Fatalf("%s func %d: stream length mismatch", name, fi)
		}
		if rc.regs != cf.numLoc+cf.maxStack {
			t.Errorf("%s func %d: register file %d != numLoc %d + maxStack %d",
				name, fi, rc.regs, cf.numLoc, cf.maxStack)
		}
		for pc := range rc.ops {
			if rc.ops[pc] == nil {
				t.Fatalf("%s func %d pc %d: nil closure", name, fi, pc)
			}
		}
		for pc := 0; pc < len(cf.body); {
			w := int(rc.wid[pc])
			if w < 1 {
				t.Fatalf("%s func %d pc %d: span leader with width %d", name, fi, pc, w)
			}
			if pc+w > len(cf.body) {
				t.Fatalf("%s func %d pc %d: span overruns body (w=%d)", name, fi, pc, w)
			}
			for q := pc + 1; q < pc+w; q++ {
				if rc.wid[q] != 0 {
					t.Errorf("%s func %d pc %d: interior pc %d has width %d", name, fi, pc, q, rc.wid[q])
				}
				if cf.flat[q].segCnt != 0 {
					t.Errorf("%s func %d pc %d: interior pc %d is a segment leader", name, fi, pc, q)
				}
			}
			if end := int(cf.flat[pc].segEnd); w > 1 && pc+w-1 > end {
				t.Errorf("%s func %d pc %d: span [%d,%d] crosses segment end %d", name, fi, pc, pc, pc+w-1, end)
			}
			pc += w
		}
	}
}

// TestRegInvariantsPolybench checks the invariants on real kernels and
// requires the lowering to actually cover the stream with dedicated
// handlers and to form spans wider than the fused tier's (the two claims
// RegStats makes).
func TestRegInvariantsPolybench(t *testing.T) {
	for _, name := range []string{"gemm", "atax", "jacobi-2d", "cholesky", "durbin"} {
		k, err := polybench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := k.Build(8)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := Compile(m, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkRegInvariants(t, name, cm)
		s := cm.RegStats()
		if s.Registers == 0 || s.Instrs == 0 {
			t.Fatalf("%s: empty RegStats: %+v", name, s)
		}
		if cov := float64(s.Specialised) / float64(s.Instrs); cov < 0.5 {
			t.Errorf("%s: specialisation coverage %.0f%% below 50%% (%d/%d instrs, %d spans)",
				name, 100*cov, s.Specialised, s.Instrs, s.Spans)
		}
		if s.Spans == 0 {
			t.Errorf("%s: no register spans formed", name)
		}
		if s.Widened == 0 {
			t.Errorf("%s: no span wider than the fused tier (Widened=0)", name)
		}
	}
}

// TestRegStatsHandBuilt pins the stats on a function whose lowering is
// known by construction: a[i]*s + c compiles to one statement closure
// covering the whole scaled-load/fma expression up to its local.set sink,
// and the store line to a second; both are wider than any fused
// superinstruction and fully specialised.
func TestRegStatsHandBuilt(t *testing.T) {
	b := wasm.NewModule("rs")
	b.Memory(1, 1)
	f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.F64, wasm.F64}, nil)
	addr := f.Local(wasm.I32)
	val := f.Local(wasm.F64)
	// i*8 scaled load, fma, store back.
	f.LocalGet(0).I32Const(8).Op(wasm.OpI32Mul).LocalTee(addr)
	f.Load(wasm.OpF64Load, 0).LocalGet(1).Op(wasm.OpF64Mul)
	f.LocalGet(2).Op(wasm.OpF64Add).LocalSet(val)
	f.LocalGet(addr).LocalGet(val).Store(wasm.OpF64Store, 0)
	b.ExportFunc("f", f.End())
	cm, err := Compile(b.MustBuild(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkRegInvariants(t, "handbuilt", cm)
	s := cm.RegStats()
	if s.Specialised != s.Instrs {
		t.Errorf("hand-built kernel not fully specialised: %d/%d", s.Specialised, s.Instrs)
	}
	if s.Spans != 2 {
		t.Errorf("expected exactly 2 statement spans (expression + store), got %d", s.Spans)
	}
	if s.Widened != 2 {
		t.Errorf("expected both statements wider than the fused tier, got Widened=%d", s.Widened)
	}
}
