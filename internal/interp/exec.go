package interp

import (
	"fmt"
	"math"
	"math/bits"

	"acctee/internal/wasm"
)

// This file is the flat/fused execution loop, shared by EngineFlat and the
// default EngineFused. It interprets the per-pc IR produced by the lowering
// pass in compile.go — EngineFlat dispatches the original body, EngineFused
// the fused stream built by fuse.go (same pc space, superinstructions at
// span leaders, constituents jumped over):
//
//   - branches jump through the precompiled sidetable (no label stack, no
//     label walk); fused conditional branches read the br_if constituent's
//     sidetable entry directly;
//   - the operand stack is a fixed-size slab indexed by an integer stack
//     pointer, allocated together with the locals in one frame; fused ops
//     read locals and constants without round-tripping through it;
//   - fuel, CostModel cycles and the ground-truth instruction counter are
//     charged once per straight-line segment at its leader (fused spans
//     never cross a segment, so the charge rides on an existing dispatch);
//     traps roll the not-executed suffix back — for a trap inside a
//     superinstruction, from the trapping constituent's own pc — and a fuel
//     shortfall deoptimizes to the per-instruction tail over the original
//     body, so all accounting stays bit-identical to the structured
//     reference engine.

// b2u converts a comparison result to a wasm i32 boolean.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func uf32(u uint64) float32 { return math.Float32frombits(uint32(u)) }
func f32u(f float32) uint64 { return uint64(math.Float32bits(f)) }
func uf64(u uint64) float64 { return math.Float64frombits(u) }
func f64u(f float64) uint64 { return math.Float64bits(f) }
func i32u(v int32) uint64   { return uint64(uint32(v)) }

// exec runs a compiled function body on the flat engine. fi is the
// function's defined-function index (for the cost-table lookup); frame is
// the function's single allocation: numLoc locals followed by maxStack
// operand slots. The single result (if any) is the first return value.
func (vm *VM) exec(f *compiledFunc, fi int, frame []uint64) (uint64, error) {
	// Inlined-call markers bump depth inside the body; restoring the entry
	// depth (rather than decrementing) keeps it right when a trap unwinds
	// past open inline regions.
	d0 := vm.depth
	vm.depth++
	defer func() { vm.depth = d0 }()
	if vm.depth > vm.maxDepth {
		return 0, ErrCallStackExhausted
	}

	// The whole frame doubles as the locals array: inlined callee bodies
	// address their locals at shifted indices >= numLoc (see inline.go).
	locals := frame
	st := frame[f.numLoc:]
	sp := 0
	code := f.fused
	if vm.engine == EngineFlat {
		code = f.body
	}
	flat := f.flat
	costed := vm.cost != nil
	var fc *funcCosts
	if costed {
		fc = &vm.costs[fi]
	}
	pc := 0
	var trapErr error

	for pc < len(code) {
		fl := &flat[pc]
		if n := fl.segCnt; n != 0 {
			// Segment leader: poll cooperative cancellation before charging,
			// so an interrupted run's counters hold exactly the instructions
			// already retired (nothing of this segment ran yet — no rollback
			// needed). Then charge the whole straight-line run at once.
			if vm.intr != nil && vm.intr.Load() {
				return 0, ErrInterrupted
			}
			if vm.fuelLimited && vm.fuel < uint64(n) {
				return 0, vm.execFuelTail(f.body, locals, st, sp, pc)
			}
			vm.instrCount += uint64(n)
			if vm.fuelLimited {
				vm.fuel -= uint64(n)
			}
			if costed {
				vm.costAcc += fc.segCost[pc]
			}
		}
		in := &code[pc]

		switch in.Op {
		// --- control
		case wasm.OpUnreachable:
			trapErr = ErrUnreachable
			goto trap
		case wasm.OpNop, wasm.OpBlock, wasm.OpLoop:
			// structure is precompiled; nothing to do at runtime
		case wasm.OpEnd:
			if fl.flags&fInlEnd != 0 {
				// Exit of an inlined callee body: commit the results down to
				// the caller's operand height, exactly like a frame return.
				if fl.arity > 0 {
					st[fl.height] = st[sp-1]
				}
				sp = int(fl.height) + int(fl.arity)
				vm.depth--
			}
		case wasm.OpIf:
			sp--
			if st[sp] == 0 {
				pc = int(fl.target)
				continue
			}
		case wasm.OpElse:
			// Fallthrough from the then-arm. The reference engine executes
			// the matching end too; charge it inline, then continue after it.
			vm.instrCount++
			if vm.fuelLimited {
				if vm.fuel == 0 {
					trapErr = ErrFuelExhausted
					goto trap
				}
				vm.fuel--
			}
			if costed {
				vm.costAcc += vm.endCost
			}
			pc = int(fl.target)
			continue
		case wasm.OpBr:
			if a := int(fl.arity); a > 0 {
				copy(st[fl.height:int(fl.height)+a], st[sp-a:sp])
			}
			sp = int(fl.height) + int(fl.arity)
			pc = int(fl.target)
			continue
		case wasm.OpBrIf:
			sp--
			if st[sp] != 0 {
				if a := int(fl.arity); a > 0 {
					copy(st[fl.height:int(fl.height)+a], st[sp-a:sp])
				}
				sp = int(fl.height) + int(fl.arity)
				pc = int(fl.target)
				continue
			}
		case wasm.OpBrTable:
			sp--
			tbl := fl.table
			j := int(uint32(st[sp]))
			if j >= len(tbl)-1 {
				j = len(tbl) - 1
			}
			t := &tbl[j]
			if a := int(t.arity); a > 0 {
				copy(st[t.height:int(t.height)+a], st[sp-a:sp])
			}
			sp = int(t.height) + int(t.arity)
			pc = int(t.pc)
			continue
		case wasm.OpReturn:
			goto done
		case wasm.OpCall:
			if fl.flags&fCallDef != 0 {
				// Residual call to a defined function, pre-resolved at
				// compile time: no import-count compare, no bounds check,
				// and the frame slab clears only the non-param locals.
				cf := &vm.funcs[fl.target]
				nf := vm.getFrame(cf.numLoc+cf.maxStack, cf.nparams, cf.numLoc)
				sp -= cf.nparams
				copy(nf, st[sp:sp+cf.nparams])
				res, err := vm.exec(cf, int(fl.target), nf)
				if err != nil {
					trapErr = err
					goto trap
				}
				if cf.nresults > 0 {
					st[sp] = res
					sp++
				}
			} else if fl.flags&fInlEnter != 0 {
				// Inlined call: the charge for the call op already rode on
				// this segment; only the frame bookkeeping remains. Depth
				// still counts so call-stack exhaustion traps exactly where
				// a real call would.
				vm.depth++
				if vm.depth > vm.maxDepth {
					trapErr = ErrCallStackExhausted
					goto trap
				}
				if n := int(fl.arity); n > 0 {
					z := st[sp : sp+n]
					for j := range z {
						z[j] = 0
					}
					sp += n
				}
			} else if fl.flags&fCallHost != 0 {
				nsp, err := vm.invokeHost(uint32(fl.target), st, sp)
				if err != nil {
					trapErr = err
					goto trap
				}
				sp = nsp
			} else {
				// LegacyCalls artifact (bench baseline): the generic
				// pre-optimization path, re-deriving the host/defined split
				// at runtime and clearing the whole callee frame.
				nsp, err := vm.invokeAtSlow(in.Idx, st, sp)
				if err != nil {
					trapErr = err
					goto trap
				}
				sp = nsp
			}
		case wasm.OpCallIndirect:
			sp--
			elem := uint32(st[sp])
			if fl.flags&fICSite != 0 {
				var fi int32
				if ic := &vm.icache[fl.target]; ic.elem == int32(elem) {
					// Monomorphic hit: same table element as last time at this
					// site, bounds and type check already vouched for.
					fi = ic.fidx
				} else {
					if int(elem) >= len(vm.table) {
						trapErr = ErrUndefinedElement
						goto trap
					}
					fi = vm.table[elem]
					if fi < 0 {
						trapErr = ErrUndefinedElement
						goto trap
					}
					want := vm.module.Types[in.Idx]
					got, err := vm.module.FuncTypeAt(uint32(fi))
					if err != nil || !got.Equal(want) {
						trapErr = ErrIndirectTypeBad
						goto trap
					}
					*ic = icEntry{elem: int32(elem), fidx: fi}
				}
				nsp, err := vm.invokeAt(uint32(fi), st, sp)
				if err != nil {
					trapErr = err
					goto trap
				}
				sp = nsp
			} else {
				// LegacyCalls artifact: full checks on every dispatch.
				if int(elem) >= len(vm.table) {
					trapErr = ErrUndefinedElement
					goto trap
				}
				fi := vm.table[elem]
				if fi < 0 {
					trapErr = ErrUndefinedElement
					goto trap
				}
				want := vm.module.Types[in.Idx]
				got, err := vm.module.FuncTypeAt(uint32(fi))
				if err != nil || !got.Equal(want) {
					trapErr = ErrIndirectTypeBad
					goto trap
				}
				nsp, err := vm.invokeAtSlow(uint32(fi), st, sp)
				if err != nil {
					trapErr = err
					goto trap
				}
				sp = nsp
			}

		// --- parametric / variables
		case wasm.OpDrop:
			sp--
		case wasm.OpSelect:
			sp -= 2
			if st[sp+1] == 0 {
				st[sp-1] = st[sp]
			}
		case wasm.OpLocalGet:
			st[sp] = locals[in.Idx]
			sp++
		case wasm.OpLocalSet:
			sp--
			locals[in.Idx] = st[sp]
		case wasm.OpLocalTee:
			locals[in.Idx] = st[sp-1]
		case wasm.OpGlobalGet:
			st[sp] = vm.globals[in.Idx]
			sp++
		case wasm.OpGlobalSet:
			sp--
			vm.globals[in.Idx] = st[sp]

		// --- memory
		case wasm.OpMemorySize:
			st[sp] = uint64(uint32(len(vm.memory) / wasm.PageSize))
			sp++
		case wasm.OpMemoryGrow:
			delta := uint32(st[sp-1])
			old := uint32(len(vm.memory) / wasm.PageSize)
			if delta > vm.maxPages || old+delta > vm.maxPages {
				st[sp-1] = uint64(uint32(0xFFFFFFFF))
				break
			}
			grown := make([]byte, int(old+delta)*wasm.PageSize)
			copy(grown, vm.memory)
			vm.memory = grown
			vm.sizeDirtyMap(len(grown))
			st[sp-1] = uint64(old)
			if vm.growHook != nil {
				vm.growHook(vm, old, old+delta)
			}

		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			st[sp] = in.U64
			sp++

		// --- loads
		case wasm.OpI32Load, wasm.OpF32Load:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 4, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = v
		case wasm.OpI64Load, wasm.OpF64Load:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 8, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = v
		case wasm.OpI32Load8U, wasm.OpI64Load8U:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 1, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = v
		case wasm.OpI32Load8S:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 1, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(uint32(int32(int8(v))))
		case wasm.OpI64Load8S:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 1, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(int64(int8(v)))
		case wasm.OpI32Load16U, wasm.OpI64Load16U:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 2, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = v
		case wasm.OpI32Load16S:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 2, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(uint32(int32(int16(v))))
		case wasm.OpI64Load16S:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 2, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(int64(int16(v)))
		case wasm.OpI64Load32U:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 4, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = v
		case wasm.OpI64Load32S:
			v, err := vm.loadBits(uint32(st[sp-1]), in.Off, 4, false)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(int64(int32(uint32(v))))

		// --- stores
		case wasm.OpI32Store8, wasm.OpI64Store8:
			sp -= 2
			if err := vm.storeBits(uint32(st[sp]), in.Off, 1, st[sp+1]); err != nil {
				trapErr = err
				goto trap
			}
		case wasm.OpI32Store16, wasm.OpI64Store16:
			sp -= 2
			if err := vm.storeBits(uint32(st[sp]), in.Off, 2, st[sp+1]); err != nil {
				trapErr = err
				goto trap
			}
		case wasm.OpI32Store, wasm.OpF32Store, wasm.OpI64Store32:
			sp -= 2
			if err := vm.storeBits(uint32(st[sp]), in.Off, 4, st[sp+1]); err != nil {
				trapErr = err
				goto trap
			}
		case wasm.OpI64Store, wasm.OpF64Store:
			sp -= 2
			if err := vm.storeBits(uint32(st[sp]), in.Off, 8, st[sp+1]); err != nil {
				trapErr = err
				goto trap
			}

		// --- i32 comparison
		case wasm.OpI32Eqz:
			st[sp-1] = b2u(uint32(st[sp-1]) == 0)
		case wasm.OpI32Eq:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) == uint32(st[sp]))
		case wasm.OpI32Ne:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) != uint32(st[sp]))
		case wasm.OpI32LtS:
			sp--
			st[sp-1] = b2u(int32(uint32(st[sp-1])) < int32(uint32(st[sp])))
		case wasm.OpI32LtU:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) < uint32(st[sp]))
		case wasm.OpI32GtS:
			sp--
			st[sp-1] = b2u(int32(uint32(st[sp-1])) > int32(uint32(st[sp])))
		case wasm.OpI32GtU:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) > uint32(st[sp]))
		case wasm.OpI32LeS:
			sp--
			st[sp-1] = b2u(int32(uint32(st[sp-1])) <= int32(uint32(st[sp])))
		case wasm.OpI32LeU:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) <= uint32(st[sp]))
		case wasm.OpI32GeS:
			sp--
			st[sp-1] = b2u(int32(uint32(st[sp-1])) >= int32(uint32(st[sp])))
		case wasm.OpI32GeU:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) >= uint32(st[sp]))

		// --- i64 comparison
		case wasm.OpI64Eqz:
			st[sp-1] = b2u(st[sp-1] == 0)
		case wasm.OpI64Eq:
			sp--
			st[sp-1] = b2u(st[sp-1] == st[sp])
		case wasm.OpI64Ne:
			sp--
			st[sp-1] = b2u(st[sp-1] != st[sp])
		case wasm.OpI64LtS:
			sp--
			st[sp-1] = b2u(int64(st[sp-1]) < int64(st[sp]))
		case wasm.OpI64LtU:
			sp--
			st[sp-1] = b2u(st[sp-1] < st[sp])
		case wasm.OpI64GtS:
			sp--
			st[sp-1] = b2u(int64(st[sp-1]) > int64(st[sp]))
		case wasm.OpI64GtU:
			sp--
			st[sp-1] = b2u(st[sp-1] > st[sp])
		case wasm.OpI64LeS:
			sp--
			st[sp-1] = b2u(int64(st[sp-1]) <= int64(st[sp]))
		case wasm.OpI64LeU:
			sp--
			st[sp-1] = b2u(st[sp-1] <= st[sp])
		case wasm.OpI64GeS:
			sp--
			st[sp-1] = b2u(int64(st[sp-1]) >= int64(st[sp]))
		case wasm.OpI64GeU:
			sp--
			st[sp-1] = b2u(st[sp-1] >= st[sp])

		// --- f32 comparison
		case wasm.OpF32Eq:
			sp--
			st[sp-1] = b2u(uf32(st[sp-1]) == uf32(st[sp]))
		case wasm.OpF32Ne:
			sp--
			st[sp-1] = b2u(uf32(st[sp-1]) != uf32(st[sp]))
		case wasm.OpF32Lt:
			sp--
			st[sp-1] = b2u(uf32(st[sp-1]) < uf32(st[sp]))
		case wasm.OpF32Gt:
			sp--
			st[sp-1] = b2u(uf32(st[sp-1]) > uf32(st[sp]))
		case wasm.OpF32Le:
			sp--
			st[sp-1] = b2u(uf32(st[sp-1]) <= uf32(st[sp]))
		case wasm.OpF32Ge:
			sp--
			st[sp-1] = b2u(uf32(st[sp-1]) >= uf32(st[sp]))

		// --- f64 comparison
		case wasm.OpF64Eq:
			sp--
			st[sp-1] = b2u(uf64(st[sp-1]) == uf64(st[sp]))
		case wasm.OpF64Ne:
			sp--
			st[sp-1] = b2u(uf64(st[sp-1]) != uf64(st[sp]))
		case wasm.OpF64Lt:
			sp--
			st[sp-1] = b2u(uf64(st[sp-1]) < uf64(st[sp]))
		case wasm.OpF64Gt:
			sp--
			st[sp-1] = b2u(uf64(st[sp-1]) > uf64(st[sp]))
		case wasm.OpF64Le:
			sp--
			st[sp-1] = b2u(uf64(st[sp-1]) <= uf64(st[sp]))
		case wasm.OpF64Ge:
			sp--
			st[sp-1] = b2u(uf64(st[sp-1]) >= uf64(st[sp]))

		// --- i32 numeric
		case wasm.OpI32Clz:
			st[sp-1] = uint64(uint32(bits.LeadingZeros32(uint32(st[sp-1]))))
		case wasm.OpI32Ctz:
			st[sp-1] = uint64(uint32(bits.TrailingZeros32(uint32(st[sp-1]))))
		case wasm.OpI32Popcnt:
			st[sp-1] = uint64(uint32(bits.OnesCount32(uint32(st[sp-1]))))
		case wasm.OpI32Add:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) + uint32(st[sp]))
		case wasm.OpI32Sub:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) - uint32(st[sp]))
		case wasm.OpI32Mul:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) * uint32(st[sp]))
		case wasm.OpI32DivS:
			sp--
			b, a := int32(uint32(st[sp])), int32(uint32(st[sp-1]))
			if b == 0 {
				trapErr = ErrDivByZero
				goto trap
			}
			if a == math.MinInt32 && b == -1 {
				trapErr = ErrIntOverflow
				goto trap
			}
			st[sp-1] = i32u(a / b)
		case wasm.OpI32DivU:
			sp--
			b, a := uint32(st[sp]), uint32(st[sp-1])
			if b == 0 {
				trapErr = ErrDivByZero
				goto trap
			}
			st[sp-1] = uint64(a / b)
		case wasm.OpI32RemS:
			sp--
			b, a := int32(uint32(st[sp])), int32(uint32(st[sp-1]))
			if b == 0 {
				trapErr = ErrDivByZero
				goto trap
			}
			if a == math.MinInt32 && b == -1 {
				st[sp-1] = 0
			} else {
				st[sp-1] = i32u(a % b)
			}
		case wasm.OpI32RemU:
			sp--
			b, a := uint32(st[sp]), uint32(st[sp-1])
			if b == 0 {
				trapErr = ErrDivByZero
				goto trap
			}
			st[sp-1] = uint64(a % b)
		case wasm.OpI32And:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) & uint32(st[sp]))
		case wasm.OpI32Or:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) | uint32(st[sp]))
		case wasm.OpI32Xor:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) ^ uint32(st[sp]))
		case wasm.OpI32Shl:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) << (uint32(st[sp]) & 31))
		case wasm.OpI32ShrS:
			sp--
			st[sp-1] = i32u(int32(uint32(st[sp-1])) >> (uint32(st[sp]) & 31))
		case wasm.OpI32ShrU:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) >> (uint32(st[sp]) & 31))
		case wasm.OpI32Rotl:
			sp--
			st[sp-1] = uint64(bits.RotateLeft32(uint32(st[sp-1]), int(uint32(st[sp])&31)))
		case wasm.OpI32Rotr:
			sp--
			st[sp-1] = uint64(bits.RotateLeft32(uint32(st[sp-1]), -int(uint32(st[sp])&31)))

		// --- i64 numeric
		case wasm.OpI64Clz:
			st[sp-1] = uint64(bits.LeadingZeros64(st[sp-1]))
		case wasm.OpI64Ctz:
			st[sp-1] = uint64(bits.TrailingZeros64(st[sp-1]))
		case wasm.OpI64Popcnt:
			st[sp-1] = uint64(bits.OnesCount64(st[sp-1]))
		case wasm.OpI64Add:
			sp--
			st[sp-1] = st[sp-1] + st[sp]
		case wasm.OpI64Sub:
			sp--
			st[sp-1] = st[sp-1] - st[sp]
		case wasm.OpI64Mul:
			sp--
			st[sp-1] = st[sp-1] * st[sp]
		case wasm.OpI64DivS:
			sp--
			b, a := int64(st[sp]), int64(st[sp-1])
			if b == 0 {
				trapErr = ErrDivByZero
				goto trap
			}
			if a == math.MinInt64 && b == -1 {
				trapErr = ErrIntOverflow
				goto trap
			}
			st[sp-1] = uint64(a / b)
		case wasm.OpI64DivU:
			sp--
			if st[sp] == 0 {
				trapErr = ErrDivByZero
				goto trap
			}
			st[sp-1] = st[sp-1] / st[sp]
		case wasm.OpI64RemS:
			sp--
			b, a := int64(st[sp]), int64(st[sp-1])
			if b == 0 {
				trapErr = ErrDivByZero
				goto trap
			}
			if a == math.MinInt64 && b == -1 {
				st[sp-1] = 0
			} else {
				st[sp-1] = uint64(a % b)
			}
		case wasm.OpI64RemU:
			sp--
			if st[sp] == 0 {
				trapErr = ErrDivByZero
				goto trap
			}
			st[sp-1] = st[sp-1] % st[sp]
		case wasm.OpI64And:
			sp--
			st[sp-1] = st[sp-1] & st[sp]
		case wasm.OpI64Or:
			sp--
			st[sp-1] = st[sp-1] | st[sp]
		case wasm.OpI64Xor:
			sp--
			st[sp-1] = st[sp-1] ^ st[sp]
		case wasm.OpI64Shl:
			sp--
			st[sp-1] = st[sp-1] << (st[sp] & 63)
		case wasm.OpI64ShrS:
			sp--
			st[sp-1] = uint64(int64(st[sp-1]) >> (st[sp] & 63))
		case wasm.OpI64ShrU:
			sp--
			st[sp-1] = st[sp-1] >> (st[sp] & 63)
		case wasm.OpI64Rotl:
			sp--
			st[sp-1] = bits.RotateLeft64(st[sp-1], int(st[sp]&63))
		case wasm.OpI64Rotr:
			sp--
			st[sp-1] = bits.RotateLeft64(st[sp-1], -int(st[sp]&63))

		// --- f32 numeric
		case wasm.OpF32Abs:
			st[sp-1] = f32u(float32(math.Abs(float64(uf32(st[sp-1])))))
		case wasm.OpF32Neg:
			st[sp-1] = f32u(-uf32(st[sp-1]))
		case wasm.OpF32Ceil:
			st[sp-1] = f32u(float32(math.Ceil(float64(uf32(st[sp-1])))))
		case wasm.OpF32Floor:
			st[sp-1] = f32u(float32(math.Floor(float64(uf32(st[sp-1])))))
		case wasm.OpF32Trunc:
			st[sp-1] = f32u(float32(math.Trunc(float64(uf32(st[sp-1])))))
		case wasm.OpF32Nearest:
			st[sp-1] = f32u(float32(math.RoundToEven(float64(uf32(st[sp-1])))))
		case wasm.OpF32Sqrt:
			st[sp-1] = f32u(float32(math.Sqrt(float64(uf32(st[sp-1])))))
		case wasm.OpF32Add:
			sp--
			st[sp-1] = f32u(uf32(st[sp-1]) + uf32(st[sp]))
		case wasm.OpF32Sub:
			sp--
			st[sp-1] = f32u(uf32(st[sp-1]) - uf32(st[sp]))
		case wasm.OpF32Mul:
			sp--
			st[sp-1] = f32u(uf32(st[sp-1]) * uf32(st[sp]))
		case wasm.OpF32Div:
			sp--
			st[sp-1] = f32u(uf32(st[sp-1]) / uf32(st[sp]))
		case wasm.OpF32Min:
			sp--
			st[sp-1] = f32u(float32(fmin(float64(uf32(st[sp-1])), float64(uf32(st[sp])))))
		case wasm.OpF32Max:
			sp--
			st[sp-1] = f32u(float32(fmax(float64(uf32(st[sp-1])), float64(uf32(st[sp])))))
		case wasm.OpF32Copysign:
			sp--
			st[sp-1] = f32u(float32(math.Copysign(float64(uf32(st[sp-1])), float64(uf32(st[sp])))))

		// --- f64 numeric
		case wasm.OpF64Abs:
			st[sp-1] = f64u(math.Abs(uf64(st[sp-1])))
		case wasm.OpF64Neg:
			st[sp-1] = f64u(-uf64(st[sp-1]))
		case wasm.OpF64Ceil:
			st[sp-1] = f64u(math.Ceil(uf64(st[sp-1])))
		case wasm.OpF64Floor:
			st[sp-1] = f64u(math.Floor(uf64(st[sp-1])))
		case wasm.OpF64Trunc:
			st[sp-1] = f64u(math.Trunc(uf64(st[sp-1])))
		case wasm.OpF64Nearest:
			st[sp-1] = f64u(math.RoundToEven(uf64(st[sp-1])))
		case wasm.OpF64Sqrt:
			st[sp-1] = f64u(math.Sqrt(uf64(st[sp-1])))
		case wasm.OpF64Add:
			sp--
			st[sp-1] = f64u(uf64(st[sp-1]) + uf64(st[sp]))
		case wasm.OpF64Sub:
			sp--
			st[sp-1] = f64u(uf64(st[sp-1]) - uf64(st[sp]))
		case wasm.OpF64Mul:
			sp--
			st[sp-1] = f64u(uf64(st[sp-1]) * uf64(st[sp]))
		case wasm.OpF64Div:
			sp--
			st[sp-1] = f64u(uf64(st[sp-1]) / uf64(st[sp]))
		case wasm.OpF64Min:
			sp--
			st[sp-1] = f64u(fmin(uf64(st[sp-1]), uf64(st[sp])))
		case wasm.OpF64Max:
			sp--
			st[sp-1] = f64u(fmax(uf64(st[sp-1]), uf64(st[sp])))
		case wasm.OpF64Copysign:
			sp--
			st[sp-1] = f64u(math.Copysign(uf64(st[sp-1]), uf64(st[sp])))

		// --- conversions
		case wasm.OpI32WrapI64:
			st[sp-1] = uint64(uint32(st[sp-1]))
		case wasm.OpI32TruncF32S:
			v, err := truncS(float64(uf32(st[sp-1])), i32Lo, i32Hi)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = i32u(int32(v))
		case wasm.OpI32TruncF32U:
			v, err := truncU(float64(uf32(st[sp-1])), u32Hi)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(uint32(v))
		case wasm.OpI32TruncF64S:
			v, err := truncS(uf64(st[sp-1]), i32Lo, i32Hi)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = i32u(int32(v))
		case wasm.OpI32TruncF64U:
			v, err := truncU(uf64(st[sp-1]), u32Hi)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(uint32(v))
		case wasm.OpI64ExtendI32S:
			st[sp-1] = uint64(int64(int32(uint32(st[sp-1]))))
		case wasm.OpI64ExtendI32U:
			st[sp-1] = uint64(uint32(st[sp-1]))
		case wasm.OpI64TruncF32S:
			v, err := truncS(float64(uf32(st[sp-1])), i64Lo, i64Hi)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(v)
		case wasm.OpI64TruncF32U:
			v, err := truncU(float64(uf32(st[sp-1])), u64Hi)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = v
		case wasm.OpI64TruncF64S:
			v, err := truncS(uf64(st[sp-1]), i64Lo, i64Hi)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = uint64(v)
		case wasm.OpI64TruncF64U:
			v, err := truncU(uf64(st[sp-1]), u64Hi)
			if err != nil {
				trapErr = err
				goto trap
			}
			st[sp-1] = v
		case wasm.OpF32ConvertI32S:
			st[sp-1] = f32u(float32(int32(uint32(st[sp-1]))))
		case wasm.OpF32ConvertI32U:
			st[sp-1] = f32u(float32(uint32(st[sp-1])))
		case wasm.OpF32ConvertI64S:
			st[sp-1] = f32u(float32(int64(st[sp-1])))
		case wasm.OpF32ConvertI64U:
			st[sp-1] = f32u(float32(st[sp-1]))
		case wasm.OpF32DemoteF64:
			st[sp-1] = f32u(float32(uf64(st[sp-1])))
		case wasm.OpF64ConvertI32S:
			st[sp-1] = f64u(float64(int32(uint32(st[sp-1]))))
		case wasm.OpF64ConvertI32U:
			st[sp-1] = f64u(float64(uint32(st[sp-1])))
		case wasm.OpF64ConvertI64S:
			st[sp-1] = f64u(float64(int64(st[sp-1])))
		case wasm.OpF64ConvertI64U:
			st[sp-1] = f64u(float64(st[sp-1]))
		case wasm.OpF64PromoteF32:
			st[sp-1] = f64u(float64(uf32(st[sp-1])))
		case wasm.OpI32ReinterpretF, wasm.OpI64ReinterpretF,
			wasm.OpF32ReinterpretI, wasm.OpF64ReinterpretI:
			// bit pattern unchanged

		// --- superinstructions (fused stream only; see fuse.go for the
		// payload layout). Every case advances pc past its constituents; a
		// trap adjusts pc to the trapping constituent first so rollback
		// reproduces the reference engine's per-instruction totals.

		// ALU fusion: operands straight from locals/constants, result to the
		// stack or straight back into a local.
		case opFGetGetBin:
			v, err := applyBin(wasm.Opcode(in.Align), locals[in.Idx], locals[in.Off])
			if err != nil {
				pc += 2
				trapErr = err
				goto trap
			}
			st[sp] = v
			sp++
			pc += 3
			continue
		case opFGetConstBin:
			v, err := applyBin(wasm.Opcode(in.Align), locals[in.Idx], in.U64)
			if err != nil {
				pc += 2
				trapErr = err
				goto trap
			}
			st[sp] = v
			sp++
			pc += 3
			continue
		case opFGetBin:
			v, err := applyBin(wasm.Opcode(in.Align), st[sp-1], locals[in.Idx])
			if err != nil {
				pc++
				trapErr = err
				goto trap
			}
			st[sp-1] = v
			pc += 2
			continue
		case opFConstBin:
			v, err := applyBin(wasm.Opcode(in.Align), st[sp-1], in.U64)
			if err != nil {
				pc++
				trapErr = err
				goto trap
			}
			st[sp-1] = v
			pc += 2
			continue
		case opFBinSet:
			sp -= 2
			v, err := applyBin(wasm.Opcode(in.Align), st[sp], st[sp+1])
			if err != nil {
				trapErr = err
				goto trap
			}
			locals[in.Idx] = v
			if in.Align&fTee != 0 {
				st[sp] = v
				sp++
			}
			pc += 2
			continue
		case opFGetGetBinSet:
			v, err := applyBin(wasm.Opcode(in.Align), locals[in.Idx], locals[in.Off])
			if err != nil {
				pc += 2
				trapErr = err
				goto trap
			}
			locals[uint32(in.U64)] = v
			if in.Align&fTee != 0 {
				st[sp] = v
				sp++
			}
			pc += 4
			continue
		case opFGetConstBinSet:
			v, err := applyBin(wasm.Opcode(in.Align), locals[in.Idx], in.U64)
			if err != nil {
				pc += 2
				trapErr = err
				goto trap
			}
			locals[in.Off] = v
			if in.Align&fTee != 0 {
				st[sp] = v
				sp++
			}
			pc += 4
			continue
		case opFConstSet:
			locals[in.Idx] = in.U64
			if in.Align&fTee != 0 {
				st[sp] = in.U64
				sp++
			}
			pc += 2
			continue

		// Fused conditional branches: the compare feeds the branch directly
		// (comparisons cannot trap); the taken edge is the br_if
		// constituent's own sidetable entry.
		case opFCmpBr:
			sp -= 2
			v, _ := applyBin(wasm.Opcode(in.Align), st[sp], st[sp+1])
			if v != 0 {
				t := &flat[pc+1]
				if n := int(t.arity); n > 0 {
					copy(st[t.height:int(t.height)+n], st[sp-n:sp])
				}
				sp = int(t.height) + int(t.arity)
				pc = int(t.target)
				continue
			}
			pc += 2
			continue
		case opFGetGetCmpBr:
			v, _ := applyBin(wasm.Opcode(in.Align), locals[in.Idx], locals[in.Off])
			if v != 0 {
				t := &flat[pc+3]
				if n := int(t.arity); n > 0 {
					copy(st[t.height:int(t.height)+n], st[sp-n:sp])
				}
				sp = int(t.height) + int(t.arity)
				pc = int(t.target)
				continue
			}
			pc += 4
			continue
		case opFGetConstCmpBr:
			v, _ := applyBin(wasm.Opcode(in.Align), locals[in.Idx], in.U64)
			if v != 0 {
				t := &flat[pc+3]
				if n := int(t.arity); n > 0 {
					copy(st[t.height:int(t.height)+n], st[sp-n:sp])
				}
				sp = int(t.height) + int(t.arity)
				pc = int(t.target)
				continue
			}
			pc += 4
			continue
		case opFBinBr:
			// Arithmetic feeding the branch directly. Unlike the compare
			// shapes the binop can trap (div/rem by zero, overflow): the
			// trap pc is the binop itself, so no adjustment before rollback.
			sp -= 2
			v, err := applyBin(wasm.Opcode(in.Align), st[sp], st[sp+1])
			if err != nil {
				trapErr = err
				goto trap
			}
			if v != 0 {
				t := &flat[pc+1]
				if n := int(t.arity); n > 0 {
					copy(st[t.height:int(t.height)+n], st[sp-n:sp])
				}
				sp = int(t.height) + int(t.arity)
				pc = int(t.target)
				continue
			}
			pc += 2
			continue
		case opFEqzBr:
			sp--
			var taken bool
			if wasm.Opcode(in.Align) == wasm.OpI32Eqz {
				taken = uint32(st[sp]) == 0
			} else {
				taken = st[sp] == 0
			}
			if taken {
				t := &flat[pc+1]
				if n := int(t.arity); n > 0 {
					copy(st[t.height:int(t.height)+n], st[sp-n:sp])
				}
				sp = int(t.height) + int(t.arity)
				pc = int(t.target)
				continue
			}
			pc += 2
			continue

		// Memory fast paths: effective address folded (or scaled) at compile
		// time, one bounds check, word-at-a-time little-endian access.
		case opFConstLoad:
			al := in.Align
			width := al >> 16 & 0xFF
			ea := in.U64 // const + memarg offset, folded at compile time
			if ea+uint64(width) > uint64(len(vm.memory)) {
				pc++
				trapErr = ErrOutOfBounds
				goto trap
			}
			if costed {
				vm.costAcc += vm.cost.MemCost(uint32(ea), width, false, uint32(len(vm.memory)))
			}
			st[sp] = fastLoad(vm.memory, ea, width, al>>24)
			sp++
			pc += 2
			continue
		case opFGetLoad:
			al := in.Align
			width := al >> 16 & 0xFF
			ea := uint64(uint32(locals[in.Idx])) + uint64(in.Off)
			if ea+uint64(width) > uint64(len(vm.memory)) {
				pc++
				trapErr = ErrOutOfBounds
				goto trap
			}
			if costed {
				vm.costAcc += vm.cost.MemCost(uint32(ea), width, false, uint32(len(vm.memory)))
			}
			st[sp] = fastLoad(vm.memory, ea, width, al>>24)
			sp++
			pc += 2
			continue
		case opFScaleLoad:
			al := in.Align
			width := al >> 16 & 0xFF
			ea := uint64(uint32(st[sp-1])*uint32(in.U64)) + uint64(in.Off)
			if ea+uint64(width) > uint64(len(vm.memory)) {
				pc += 2
				trapErr = ErrOutOfBounds
				goto trap
			}
			if costed {
				vm.costAcc += vm.cost.MemCost(uint32(ea), width, false, uint32(len(vm.memory)))
			}
			st[sp-1] = fastLoad(vm.memory, ea, width, al>>24)
			pc += 3
			continue
		case opFBinStore:
			sp -= 3
			v, err := applyBin(wasm.Opcode(in.Align), st[sp+1], st[sp+2])
			if err != nil {
				trapErr = err
				goto trap
			}
			width := in.Align >> 16 & 0xFF
			ea := uint64(uint32(st[sp])) + uint64(in.Off)
			if ea+uint64(width) > uint64(len(vm.memory)) {
				pc++
				trapErr = ErrOutOfBounds
				goto trap
			}
			if costed {
				vm.costAcc += vm.cost.MemCost(uint32(ea), width, true, uint32(len(vm.memory)))
			}
			vm.markDirty(int(ea), int(width))
			fastStore(vm.memory, ea, width, v)
			pc += 2
			continue
		case opFGetStore:
			sp--
			width := in.Align >> 16 & 0xFF
			ea := uint64(uint32(st[sp])) + uint64(in.Off)
			if ea+uint64(width) > uint64(len(vm.memory)) {
				pc++
				trapErr = ErrOutOfBounds
				goto trap
			}
			if costed {
				vm.costAcc += vm.cost.MemCost(uint32(ea), width, true, uint32(len(vm.memory)))
			}
			vm.markDirty(int(ea), int(width))
			fastStore(vm.memory, ea, width, locals[in.Idx])
			pc += 2
			continue
		case opFConstStore:
			sp--
			width := in.Align >> 16 & 0xFF
			ea := uint64(uint32(st[sp])) + uint64(in.Off)
			if ea+uint64(width) > uint64(len(vm.memory)) {
				pc++
				trapErr = ErrOutOfBounds
				goto trap
			}
			if costed {
				vm.costAcc += vm.cost.MemCost(uint32(ea), width, true, uint32(len(vm.memory)))
			}
			vm.markDirty(int(ea), int(width))
			fastStore(vm.memory, ea, width, in.U64)
			pc += 2
			continue

		default:
			trapErr = &UnknownOpcodeError{Op: in.Op}
			goto trap
		}
		pc++
	}

done:
	if f.nresults > 0 {
		if sp == 0 {
			return 0, ErrUnreachable
		}
		return st[sp-1], nil
	}
	return 0, nil

trap:
	vm.rollback(f, fc, pc)
	return 0, trapErr
}

// rollback undoes the batched charge for the not-executed suffix (pc,
// segEnd] of the trapping instruction's segment, restoring the exact
// per-instruction totals (the trapping instruction itself stays charged,
// matching the reference engine).
func (vm *VM) rollback(f *compiledFunc, fc *funcCosts, pc int) {
	end := int(f.flat[pc].segEnd)
	n := uint64(end - pc)
	if n == 0 {
		return
	}
	vm.instrCount -= n
	if vm.fuelLimited {
		vm.fuel += n
	}
	if fc != nil {
		vm.costAcc -= fc.costPfx[end+1] - fc.costPfx[pc+1]
	}
}

// invokeAt calls function idx (combined index space) from the flat engine,
// popping arguments from and pushing results onto st; it returns the new
// stack pointer.
func (vm *VM) invokeAt(idx uint32, st []uint64, sp int) (int, error) {
	nimp := len(vm.hostFns)
	if int(idx) < nimp {
		return vm.invokeHost(idx, st, sp)
	}
	di := int(idx) - nimp
	cf := &vm.funcs[di]
	frame := vm.getFrame(cf.numLoc+cf.maxStack, cf.nparams, cf.numLoc)
	copy(frame, st[sp-cf.nparams:sp])
	sp -= cf.nparams
	res, err := vm.exec(cf, di, frame)
	if err != nil {
		return sp, err
	}
	if cf.nresults > 0 {
		st[sp] = res
		sp++
	}
	return sp, nil
}

// invokeAtSlow is invokeAt without the compile-time call descriptors: the
// host/defined split happens at runtime and the callee frame is cleared in
// full, as the engine did before the call fast path. Reached only from
// LegacyCalls artifacts (the call-heavy benchmark baseline).
func (vm *VM) invokeAtSlow(idx uint32, st []uint64, sp int) (int, error) {
	nimp := len(vm.hostFns)
	if int(idx) < nimp {
		return vm.invokeHost(idx, st, sp)
	}
	di := int(idx) - nimp
	cf := &vm.funcs[di]
	n := cf.numLoc + cf.maxStack
	frame := vm.getFrame(n, 0, n)
	copy(frame, st[sp-cf.nparams:sp])
	sp -= cf.nparams
	res, err := vm.exec(cf, di, frame)
	if err != nil {
		return sp, err
	}
	if cf.nresults > 0 {
		st[sp] = res
		sp++
	}
	return sp, nil
}

// invokeHost calls imported function idx, popping arguments from and pushing
// results onto st; it returns the new stack pointer. Shared by the flat and
// register engines' call paths.
func (vm *VM) invokeHost(idx uint32, st []uint64, sp int) (int, error) {
	sig := vm.hostSigs[idx]
	n := len(sig.Params)
	args := make([]uint64, n)
	copy(args, st[sp-n:sp])
	sp -= n
	res, err := vm.hostFns[idx](vm, args)
	if err != nil {
		return sp, err
	}
	if len(res) != len(sig.Results) {
		return sp, fmt.Errorf("interp: host import %d returned %d results, want %d", idx, len(res), len(sig.Results))
	}
	for _, v := range res {
		st[sp] = v
		sp++
	}
	return sp, nil
}

// execFuelTail finishes a segment whose batched fuel charge would overdraw:
// it executes instruction by instruction with the reference engine's exact
// per-instruction accounting. It is entered only when the remaining fuel is
// smaller than the segment's instruction count, so it always terminates —
// with ErrFuelExhausted at the precise instruction the reference engine
// would trap on, or with an earlier trap from the instruction itself.
func (vm *VM) execFuelTail(body []wasm.Instr, locals, st []uint64, sp, pc int) error {
	for {
		in := &body[pc]
		op := in.Op
		vm.instrCount++
		if vm.fuel == 0 {
			return ErrFuelExhausted
		}
		vm.fuel--
		if vm.cost != nil {
			vm.costAcc += vm.cost.InstrCost(op)
		}
		switch op {
		case wasm.OpNop:
			// nothing
		case wasm.OpDrop:
			sp--
		case wasm.OpSelect:
			sp -= 2
			if st[sp+1] == 0 {
				st[sp-1] = st[sp]
			}
		case wasm.OpLocalGet:
			st[sp] = locals[in.Idx]
			sp++
		case wasm.OpLocalSet:
			sp--
			locals[in.Idx] = st[sp]
		case wasm.OpLocalTee:
			locals[in.Idx] = st[sp-1]
		case wasm.OpGlobalGet:
			st[sp] = vm.globals[in.Idx]
			sp++
		case wasm.OpGlobalSet:
			sp--
			vm.globals[in.Idx] = st[sp]
		case wasm.OpMemorySize:
			st[sp] = uint64(uint32(len(vm.memory) / wasm.PageSize))
			sp++
		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			st[sp] = in.U64
			sp++
		default:
			if op.IsControl() || op == wasm.OpMemoryGrow {
				// Segments end at control transfers, calls and grows; fuel
				// must have run out before reaching one.
				return fmt.Errorf("interp: internal: fuel tail reached %s", op)
			}
			stack, err := vm.numeric(in, st[:sp])
			if err != nil {
				return err
			}
			sp = len(stack)
		}
		pc++
	}
}
