package interp_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"acctee/internal/interp"
	"acctee/internal/weights"
)

// This file pins the striped free-list of InstancePool: under a multi-P
// scheduler (GOMAXPROCS forced to 4, regardless of host core count) Get/Put
// traffic spread across stripes must never hand the same instance to two
// callers at once, must keep every run observationally identical to a fresh
// instantiation, and must keep the full Prewarm complement on the owned
// (GC-immune) lists even when one caller drains and refills the pool alone.

// TestPoolStripedStress hammers a striped pool from more goroutines than
// stripes (run under -race in CI). Every Get is checked for exclusive
// ownership — a VM handed out twice before its Put is a pool bug even if
// the runs happen to not race — and every run must match the fresh
// observation bit-for-bit.
func TestPoolStripedStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	m := buildFuelSweepModule()
	cfg := interp.Config{CostModel: weights.Calibrated()}
	fresh := observe(t, m, cfg, "f", 6)
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cm.NewPool(cfg, interp.PoolConfig{Prewarm: 8})
	if err != nil {
		t.Fatal(err)
	}

	var ownMu sync.Mutex
	inUse := make(map[*interp.VM]int)

	const goroutines, runs = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*runs)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < runs; r++ {
				vm, err := pool.Get(cfg)
				if err != nil {
					errs <- err
					return
				}
				ownMu.Lock()
				if holder, taken := inUse[vm]; taken {
					ownMu.Unlock()
					errs <- fmt.Errorf("goroutine %d: instance already held by goroutine %d", g, holder)
					return
				}
				inUse[vm] = g
				ownMu.Unlock()

				res, err := vm.InvokeExport("f", 6)
				if err != nil {
					errs <- err
					return
				}
				if res[0] != fresh.res[0] || vm.InstrCount() != fresh.count || vm.Cost() != fresh.cost {
					errs <- fmt.Errorf("goroutine %d run %d diverged: res=%d count=%d cost=%d",
						g, r, res[0], vm.InstrCount(), vm.Cost())
					return
				}

				ownMu.Lock()
				delete(inUse, vm)
				ownMu.Unlock()
				pool.Put(vm)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolStripedDrainRefill pins the cross-stripe paths a single caller
// hits: with more prewarmed instances than any one stripe holds, sequential
// Gets must steal from sibling stripes (5 distinct instances, no fresh
// instantiation), and sequential Puts must spill past the full home stripe
// back onto owned lists — so after a GC the same 5 instances come back.
func TestPoolStripedDrainRefill(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	m := buildFuelSweepModule()
	cfg := interp.Config{}
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const prewarm = 5
	pool, err := cm.NewPool(cfg, interp.PoolConfig{Prewarm: prewarm})
	if err != nil {
		t.Fatal(err)
	}

	owned := make(map[*interp.VM]bool)
	vms := make([]*interp.VM, 0, prewarm)
	for i := 0; i < prewarm; i++ {
		vm, err := pool.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if owned[vm] {
			t.Fatalf("get %d returned an instance already handed out", i)
		}
		owned[vm] = true
		vms = append(vms, vm)
	}
	for _, vm := range vms {
		pool.Put(vm)
	}
	runtime.GC()
	runtime.GC()
	for i := 0; i < prewarm; i++ {
		vm, err := pool.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !owned[vm] {
			t.Fatalf("get %d after refill+GC returned a non-prewarmed instance: "+
				"Put overflowed the owned stripes", i)
		}
		delete(owned, vm)
	}
}
