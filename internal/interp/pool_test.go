package interp_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"acctee/internal/interp"
	"acctee/internal/polybench"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// This file pins the compile-once/run-many split: a VM recycled through
// Reset (directly or via an InstancePool) must be observationally identical
// to a fresh Instantiate — results, traps, InstrCount, weighted Cost,
// remaining fuel, final memory and globals — on every program, after being
// arbitrarily dirtied by previous runs.

// collectObs runs entry on an existing VM and captures the observation
// (the pooled-path counterpart of observe in flat_test.go).
func collectObs(t *testing.T, vm *interp.VM, entry string, args ...uint64) obs {
	t.Helper()
	res, err := vm.InvokeExport(entry, args...)
	o := obs{
		res:    res,
		err:    err,
		count:  vm.InstrCount(),
		cost:   vm.Cost(),
		fuel:   vm.FuelRemaining(),
		memory: bytes.Clone(vm.Memory()),
	}
	for i := range vm.Module().Globals {
		g, _ := vm.Global(uint32(i))
		o.global = append(o.global, g)
	}
	return o
}

// compareObs requires two observations to be bit-identical.
func compareObs(t *testing.T, label string, got, want obs) {
	t.Helper()
	if (got.err == nil) != (want.err == nil) || (want.err != nil && !errors.Is(got.err, want.err)) {
		t.Errorf("%s: error diverged: reused=%v fresh=%v", label, got.err, want.err)
	}
	if len(got.res) != len(want.res) {
		t.Errorf("%s: result arity diverged: reused=%v fresh=%v", label, got.res, want.res)
	} else {
		for i := range got.res {
			if got.res[i] != want.res[i] {
				t.Errorf("%s: result[%d] diverged: reused=%d fresh=%d", label, i, got.res[i], want.res[i])
			}
		}
	}
	if got.count != want.count {
		t.Errorf("%s: InstrCount diverged: reused=%d fresh=%d", label, got.count, want.count)
	}
	if got.cost != want.cost {
		t.Errorf("%s: Cost diverged: reused=%d fresh=%d", label, got.cost, want.cost)
	}
	if got.fuel != want.fuel {
		t.Errorf("%s: FuelRemaining diverged: reused=%d fresh=%d", label, got.fuel, want.fuel)
	}
	if !bytes.Equal(got.memory, want.memory) {
		t.Errorf("%s: final memory diverged", label)
	}
	for i := range want.global {
		if got.global[i] != want.global[i] {
			t.Errorf("%s: global %d diverged: reused=%d fresh=%d", label, i, got.global[i], want.global[i])
		}
	}
}

// reusedObs dirties a pool-managed instance with one throwaway run,
// recycles it through Put/Get (a tracked, page-granular reset), and
// observes a second run on the recycled instance.
func reusedObs(t *testing.T, cm *interp.CompiledModule, cfg interp.Config, entry string, args ...uint64) obs {
	t.Helper()
	pool, err := cm.NewPool(cfg, interp.PoolConfig{})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	vm, err := pool.Get(cfg)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	_, _ = vm.InvokeExport(entry, args...) // dirty memory/globals/counters
	pool.Put(vm)
	vm2, err := pool.Get(cfg)
	if err != nil {
		t.Fatalf("re-get: %v", err)
	}
	// sync.Pool may in principle drop the instance across a GC; either way
	// the observation must match a fresh instantiation.
	return collectObs(t, vm2, entry, args...)
}

// diffReuse pins a reused instance against a fresh instantiation.
func diffReuse(t *testing.T, m *wasm.Module, cfg interp.Config, entry string, args ...uint64) obs {
	t.Helper()
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fresh := observe(t, m, cfg, entry, args...)
	reused := reusedObs(t, cm, cfg, entry, args...)
	compareObs(t, "reset-reuse", reused, fresh)
	return reused
}

// TestPoolReuseBranchShapes covers the branch-table corpus on recycled
// instances.
func TestPoolReuseBranchShapes(t *testing.T) {
	cfg := interp.Config{CostModel: weights.Calibrated()}
	for _, arg := range []uint64{0, 1, 2, 0xFFFFFFFF} {
		o := diffReuse(t, buildBrTableModule(), cfg, "f", arg)
		if o.err != nil {
			t.Fatalf("arg %d: unexpected trap: %v", arg, o.err)
		}
	}
}

// TestPoolReuseStatefulModule pins the pieces Reset must restore: data
// segments, mutable globals, the indirect-call table and grown memory.
func TestPoolReuseStatefulModule(t *testing.T) {
	b := wasm.NewModule("state")
	b.Memory(1, 4)
	b.Data(8, []byte("seed-bytes"))
	g := b.Global("acc", wasm.I64, true, wasm.ConstI64(5))
	callee := b.Func("callee", nil, []wasm.ValueType{wasm.I32})
	callee.I32Const(31)
	ci := callee.End()
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	// mutate the global, overwrite the data segment, grow memory, then
	// read everything back through an indirect call.
	f.GlobalGet(g).I64ConstV(3).Op(wasm.OpI64Add).GlobalSet(g)
	f.I32Const(8).I32Const(0x61626364).Store(wasm.OpI32Store, 0)
	f.I32Const(1).Op(wasm.OpMemoryGrow).Op(wasm.OpDrop)
	f.I32Const(8).Load(wasm.OpI32Load, 0)
	f.LocalGet(0).Emit(wasm.Instr{Op: wasm.OpCallIndirect, Idx: callee.Index})
	f.Op(wasm.OpI32Add)
	b.ExportFunc("f", f.End())
	b.Table(ci)
	m := b.MustBuild()
	// CallIndirect's Idx immediate is a type index; patch it to callee's type.
	for pc, in := range m.Funcs[1].Body {
		if in.Op == wasm.OpCallIndirect {
			m.Funcs[1].Body[pc].Idx = m.Funcs[0].TypeIdx
		}
	}

	cfg := interp.Config{CostModel: weights.Calibrated()}
	o := diffReuse(t, m, cfg, "f", 0)
	if o.err != nil {
		t.Fatalf("unexpected trap: %v", o.err)
	}
}

// TestPoolReuseTraps covers mid-segment traps: the rolled-back accounting
// must survive recycling.
func TestPoolReuseTraps(t *testing.T) {
	cases := []struct {
		name  string
		build func() *wasm.Module
		args  []uint64
		trap  error
	}{
		{
			name: "div_by_zero",
			build: func() *wasm.Module {
				b := wasm.NewModule("dz")
				f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).I32Const(3).Op(wasm.OpI32Mul)
				f.LocalGet(1).Op(wasm.OpI32DivS)
				f.I32Const(100).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{6, 0}, trap: interp.ErrDivByZero,
		},
		{
			name: "oob_store",
			build: func() *wasm.Module {
				b := wasm.NewModule("ob")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).I32Const(7).Store(wasm.OpI32Store, 0)
				f.I32Const(1).I32Const(2).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{70000}, trap: interp.ErrOutOfBounds,
		},
		{
			name: "unreachable",
			build: func() *wasm.Module {
				b := wasm.NewModule("ur")
				f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
				f.I32Const(1).I32Const(2).Op(wasm.OpI32Add).Op(wasm.OpDrop)
				f.Op(wasm.OpUnreachable)
				f.I32Const(9)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			trap: interp.ErrUnreachable,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := diffReuse(t, tc.build(), interp.Config{CostModel: weights.Calibrated()}, "f", tc.args...)
			if !errors.Is(o.err, tc.trap) {
				t.Errorf("trap = %v, want %v", o.err, tc.trap)
			}
		})
	}
}

// buildFuelSweepModule is the branching/calling/memory-touching program of
// TestFuelDifferentialSweep.
func buildFuelSweepModule() *wasm.Module {
	b := wasm.NewModule("fs")
	b.Memory(1, 2)
	helper := b.Func("h", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	helper.LocalGet(0).I32Const(3).Op(wasm.OpI32Mul)
	hi := helper.End()
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	acc := f.Local(wasm.I32)
	i := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Call(hi).Op(wasm.OpI32Add).LocalSet(acc)
		f.LocalGet(i).I32Const(1).Op(wasm.OpI32And)
		f.If(wasm.BlockEmpty, func() {
			f.I32Const(16).LocalGet(acc).Store(wasm.OpI32Store, 0)
		}, func() {
			f.I32Const(16).Load(wasm.OpI32Load, 0).Op(wasm.OpDrop)
		})
	})
	f.LocalGet(acc)
	b.ExportFunc("f", f.End())
	return b.MustBuild()
}

// TestPoolReuseFuelSweep recycles one instance across every fuel budget:
// the fuel-exhaustion tail and trap rollback must stay exact after Reset.
func TestPoolReuseFuelSweep(t *testing.T) {
	m := buildFuelSweepModule()
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := cm.Instantiate(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for fuel := uint64(1); fuel < 260; fuel++ {
		cfg := interp.Config{Fuel: fuel, CostModel: weights.Calibrated()}
		fresh := observe(t, m, cfg, "f", 4)
		if err := vm.Reset(cfg); err != nil {
			t.Fatalf("fuel %d: reset: %v", fuel, err)
		}
		reused := collectObs(t, vm, "f", 4)
		compareObs(t, fmt.Sprintf("fuel=%d", fuel), reused, fresh)
	}
}

// TestPoolReuseRandomPrograms recycles instances across random structured
// programs, under both the fused (default) and the unfused flat engine.
func TestPoolReuseRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9007))
	for trial := 0; trial < 30; trial++ {
		m := randomFlatProgram(rng)
		arg := uint64(rng.Intn(30))
		for _, engine := range []interp.Engine{interp.EngineFused, interp.EngineFlat, interp.EngineReg} {
			cfg := interp.Config{Engine: engine, CostModel: weights.Calibrated(), Fuel: 1 << 20}
			diffReuse(t, m, cfg, "main", arg)
		}
	}
}

// TestPoolReusePolybench pins real kernels on recycled instances.
func TestPoolReusePolybench(t *testing.T) {
	for _, name := range []string{"gemm", "atax", "jacobi-2d", "cholesky"} {
		t.Run(name, func(t *testing.T) {
			k, err := polybench.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := k.Build(8)
			if err != nil {
				t.Fatal(err)
			}
			o := diffReuse(t, m, interp.Config{CostModel: weights.Calibrated()}, "run")
			if o.err != nil {
				t.Fatalf("run: %v", o.err)
			}
		})
	}
}

// TestPoolGetPutCycles drives many Get/run/Put cycles through one pool;
// every cycle must match the fresh observation, including cycles that never
// take the conservative whole-memory path (no Memory() call in between).
func TestPoolGetPutCycles(t *testing.T) {
	m := buildFuelSweepModule()
	cfg := interp.Config{CostModel: weights.Calibrated()}
	fresh := observe(t, m, cfg, "f", 6)
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cm.NewPool(cfg, interp.PoolConfig{Prewarm: 2})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 20; cycle++ {
		vm, err := pool.Get(cfg)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if cycle%2 == 0 {
			// Light check: results and counters only, so the next Reset
			// exercises the page-granular dirty path, not the conservative
			// full clear that Memory() forces.
			res, err := vm.InvokeExport("f", 6)
			if err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
			if res[0] != fresh.res[0] || vm.InstrCount() != fresh.count || vm.Cost() != fresh.cost {
				t.Fatalf("cycle %d diverged: res=%d count=%d cost=%d", cycle, res[0], vm.InstrCount(), vm.Cost())
			}
		} else {
			compareObs(t, fmt.Sprintf("cycle %d", cycle), collectObs(t, vm, "f", 6), fresh)
		}
		pool.Put(vm)
	}
}

// TestPoolConcurrentGetPut hammers one pool from many goroutines (run under
// -race in CI): every concurrent run must observe the fresh-instantiation
// results.
func TestPoolConcurrentGetPut(t *testing.T) {
	m := buildFuelSweepModule()
	cfg := interp.Config{CostModel: weights.Calibrated()}
	fresh := observe(t, m, cfg, "f", 5)
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cm.NewPool(cfg, interp.PoolConfig{Prewarm: 4})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, runs = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*runs)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < runs; r++ {
				vm, err := pool.Get(cfg)
				if err != nil {
					errs <- err
					return
				}
				res, err := vm.InvokeExport("f", 5)
				if err != nil {
					errs <- err
					return
				}
				if res[0] != fresh.res[0] || vm.InstrCount() != fresh.count || vm.Cost() != fresh.cost {
					errs <- fmt.Errorf("diverged: res=%d count=%d cost=%d", res[0], vm.InstrCount(), vm.Cost())
					return
				}
				pool.Put(vm)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolDisabledStillCorrect: a disabled pool must behave like fresh
// instantiation per Get.
func TestPoolDisabledStillCorrect(t *testing.T) {
	m := buildFuelSweepModule()
	cfg := interp.Config{CostModel: weights.Calibrated()}
	fresh := observe(t, m, cfg, "f", 4)
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cm.NewPool(cfg, interp.PoolConfig{Disabled: true, Prewarm: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vm, err := pool.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		compareObs(t, fmt.Sprintf("disabled get %d", i), collectObs(t, vm, "f", 4), fresh)
		pool.Put(vm)
	}
}

// TestPoolReuseStartFunction is the regression test for start-function
// stores: the first instantiation's start runs before any user code, and
// its writes must be dirty-tracked from the very first Reset — a recycled
// instance whose start does mem[0]++ must observe mem[0] == 1 on every
// cycle, not an accumulating counter over stale memory.
func TestPoolReuseStartFunction(t *testing.T) {
	b := wasm.NewModule("st")
	b.Memory(1, 1)
	f := b.Func("init", nil, nil)
	f.I32Const(0)
	f.I32Const(0).Load(wasm.OpI32Load, 0).I32Const(1).Op(wasm.OpI32Add)
	f.Store(wasm.OpI32Store, 0)
	si := f.End()
	g := b.Func("get", nil, []wasm.ValueType{wasm.I32})
	g.I32Const(0).Load(wasm.OpI32Load, 0)
	b.ExportFunc("get", g.End())
	m := b.MustBuild()
	m.Start = &si

	cfg := interp.Config{CostModel: weights.Calibrated()}
	fresh := observe(t, m, cfg, "get")
	if fresh.res[0] != 1 {
		t.Fatalf("fresh instance: start ran %d times, want 1", fresh.res[0])
	}
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cm.NewPool(cfg, interp.PoolConfig{Prewarm: 1})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 4; cycle++ {
		vm, err := pool.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		compareObs(t, fmt.Sprintf("start cycle %d", cycle), collectObs(t, vm, "get"), fresh)
		pool.Put(vm)
	}
}

// TestPoolPrewarmSurvivesGC: prewarmed instances live on an owned
// free-list, so a GC between construction and first use must not evict
// them.
func TestPoolPrewarmSurvivesGC(t *testing.T) {
	m := buildFuelSweepModule()
	cfg := interp.Config{}
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cm.NewPool(cfg, interp.PoolConfig{Prewarm: 2})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.GC()
	vm1, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vm1 == vm2 {
		t.Fatal("pool handed out the same instance twice")
	}
	pool.Put(vm1)
	pool.Put(vm2)
	runtime.GC()
	vm3, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vm3 != vm1 && vm3 != vm2 {
		t.Error("prewarmed instance was evicted by GC despite the owned free-list")
	}
}
