package interp

import (
	"testing"

	"acctee/internal/cfg"
	"acctee/internal/polybench"
	"acctee/internal/wasm"
)

// White-box tests for the fusion pass: structural invariants of the fused
// stream (the properties the accounting-exactness argument rests on) and
// the expected shapes on hand-built idioms.

// flatWeights is a simple pure cost model for the invariant checks.
type flatWeights struct{}

func (flatWeights) InstrCost(op wasm.Opcode) uint64 { return uint64(op)%7 + 1 }
func (flatWeights) MemCost(addr, width uint32, store bool, memSize uint32) uint64 {
	return 0
}

// checkFuseInvariants walks every function's fused stream and asserts, for
// each superinstruction span [p, p+w):
//
//   - the width table matches the shape;
//   - no interior pc is a segment leader (so no branch target, post-call or
//     post-grow split point lands inside the span, and the whole span is
//     covered by exactly one batched accounting charge);
//   - the span stays within its leader's segment (segEnd bound);
//   - no constituent is a control instruction other than a terminal br_if;
//   - the span's per-instruction weight, summed independently through
//     cfg.RangeCost, equals the cost-prefix difference the rollback path
//     uses — the fused op "carries" exactly the summed CostModel weight and
//     instruction count of its constituents.
func checkFuseInvariants(t *testing.T, name string, cm *CompiledModule) {
	t.Helper()
	model := flatWeights{}
	tables := cm.costTablesFor(model)
	for fi := range cm.funcs {
		cf := &cm.funcs[fi]
		if len(cf.fused) != len(cf.body) {
			t.Fatalf("%s func %d: fused stream length %d != body length %d", name, fi, len(cf.fused), len(cf.body))
		}
		fc := &tables.funcs[fi]
		for pc := 0; pc < len(cf.fused); {
			op := cf.fused[pc].Op
			w := fusedWidth(op)
			if w == 0 {
				if op != cf.body[pc].Op {
					t.Errorf("%s func %d pc %d: unfused op rewritten: %s -> %s", name, fi, pc, cf.body[pc].Op, op)
				}
				pc++
				continue
			}
			if pc+w > len(cf.body) {
				t.Fatalf("%s func %d pc %d: span overruns body (w=%d)", name, fi, pc, w)
			}
			for q := pc + 1; q < pc+w; q++ {
				if cf.flat[q].segCnt != 0 {
					t.Errorf("%s func %d pc %d: interior pc %d is a segment leader", name, fi, pc, q)
				}
			}
			if end := int(cf.flat[pc].segEnd); pc+w-1 > end {
				t.Errorf("%s func %d pc %d: span [%d,%d] crosses segment end %d", name, fi, pc, pc, pc+w-1, end)
			}
			for q := pc; q < pc+w; q++ {
				cop := cf.body[q].Op
				if cop.IsControl() && !(cop == wasm.OpBrIf && q == pc+w-1) {
					t.Errorf("%s func %d pc %d: control constituent %s at %d", name, fi, pc, cop, q)
				}
			}
			want := fc.costPfx[pc+w] - fc.costPfx[pc]
			if got := cfg.RangeCost(cf.body, pc, pc+w-1, model.InstrCost); got != want {
				t.Errorf("%s func %d pc %d: span weight %d != prefix-sum weight %d", name, fi, pc, got, want)
			}
			if off := fusedTrapPC(op); off >= w {
				t.Errorf("%s func %d pc %d: trap offset %d outside span width %d", name, fi, pc, off, w)
			}
			pc += w
		}
	}
}

// TestFuseInvariantsPolybench checks the invariants on real kernels and
// requires a substantial fraction of the stream to actually fuse (guarding
// against the pass silently going dead).
func TestFuseInvariantsPolybench(t *testing.T) {
	for _, name := range []string{"gemm", "atax", "jacobi-2d", "cholesky", "durbin"} {
		k, err := polybench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := k.Build(8)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := Compile(m, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkFuseInvariants(t, name, cm)
		s := cm.FuseStats()
		if cov := float64(s.Fused) / float64(s.Instrs); cov < 0.5 {
			t.Errorf("%s: fusion coverage %.0f%% below 50%% (%d/%d instrs in %d spans)",
				name, 100*cov, s.Fused, s.Instrs, s.Spans)
		}
	}
}

// TestFuseExpectedShapes pins the opcode the pass emits for each canonical
// idiom, at the expected pc.
func TestFuseExpectedShapes(t *testing.T) {
	build := func(f func(*wasm.FuncBuilder)) *CompiledModule {
		b := wasm.NewModule("sh")
		b.Memory(1, 1)
		fb := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
		f(fb)
		b.ExportFunc("f", fb.End())
		cm, err := Compile(b.MustBuild(), CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	cases := []struct {
		name string
		emit func(*wasm.FuncBuilder)
		pc   int
		want wasm.Opcode
	}{
		{"get_get_bin", func(f *wasm.FuncBuilder) {
			f.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add)
		}, 0, opFGetGetBin},
		{"get_const_bin", func(f *wasm.FuncBuilder) {
			f.LocalGet(0).I32Const(3).Op(wasm.OpI32Mul)
		}, 0, opFGetConstBin},
		{"get_get_bin_set", func(f *wasm.FuncBuilder) {
			r := f.Local(wasm.I32)
			f.LocalGet(0).LocalGet(1).Op(wasm.OpI32Xor).LocalSet(r)
			f.LocalGet(r)
		}, 0, opFGetGetBinSet},
		{"get_const_bin_tee", func(f *wasm.FuncBuilder) {
			r := f.Local(wasm.I32)
			f.LocalGet(0).I32Const(1).Op(wasm.OpI32Add).LocalTee(r)
		}, 0, opFGetConstBinSet},
		{"const_set", func(f *wasm.FuncBuilder) {
			r := f.Local(wasm.I32)
			f.I32Const(9).LocalSet(r)
			f.LocalGet(r)
		}, 0, opFConstSet},
		{"const_load_folded", func(f *wasm.FuncBuilder) {
			f.I32Const(16).Load(wasm.OpI32Load, 4)
		}, 0, opFConstLoad},
		{"get_load", func(f *wasm.FuncBuilder) {
			f.LocalGet(0).Load(wasm.OpI32Load, 0)
		}, 0, opFGetLoad},
		{"scale_load", func(f *wasm.FuncBuilder) {
			// get+get+add fuses first; const 8; i32.mul; load then fuses
			// into the scaled-index fast path.
			f.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add)
			f.I32Const(8).Op(wasm.OpI32Mul).Load(wasm.OpI32Load, 0)
		}, 3, opFScaleLoad},
		{"bin_store", func(f *wasm.FuncBuilder) {
			f.I32Const(0)
			f.I32Const(8).Load(wasm.OpI32Load, 0)
			f.I32Const(12).Load(wasm.OpI32Load, 0)
			f.Op(wasm.OpI32Add).Store(wasm.OpI32Store, 0)
			f.I32Const(1)
		}, 5, opFBinStore},
		{"get_store", func(f *wasm.FuncBuilder) {
			f.I32Const(0).LocalGet(1).Store(wasm.OpI32Store, 0)
			f.I32Const(1)
		}, 1, opFGetStore},
		{"const_store", func(f *wasm.FuncBuilder) {
			f.LocalGet(0).I32Const(7).Store(wasm.OpI32Store, 0)
			f.I32Const(1)
		}, 1, opFConstStore},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cm := build(tc.emit)
			cf := &cm.funcs[0]
			if got := cf.fused[tc.pc].Op; got != tc.want {
				t.Errorf("pc %d fused op = 0x%02X, want 0x%02X", tc.pc, byte(got), byte(tc.want))
			}
			checkFuseInvariants(t, tc.name, cm)
		})
	}
}

// TestFuseBranchShapes pins the fused conditional-branch forms inside the
// canonical counted-loop shape: the loop exit compare+br_if and the
// increment both collapse to a single dispatch.
func TestFuseBranchShapes(t *testing.T) {
	b := wasm.NewModule("lp")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	i := f.Local(wasm.I32)
	acc := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
	})
	f.LocalGet(acc)
	b.ExportFunc("f", f.End())
	cm, err := Compile(b.MustBuild(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cf := &cm.funcs[0]
	var sawCmpBr, sawIncr bool
	for pc := 0; pc < len(cf.fused); pc++ {
		switch cf.fused[pc].Op {
		case opFGetGetCmpBr:
			sawCmpBr = true
			// The br_if constituent's sidetable entry must be the one the
			// fused branch reads.
			if cf.body[pc+3].Op != wasm.OpBrIf {
				t.Errorf("pc %d: fused cmp-branch not terminated by br_if", pc)
			}
		case opFGetConstBinSet:
			sawIncr = true
		}
	}
	if !sawCmpBr {
		t.Error("loop exit compare+br_if did not fuse")
	}
	if !sawIncr {
		t.Error("loop increment get/const/add/set did not fuse")
	}
	checkFuseInvariants(t, "loop", cm)
}

// TestFuseBinBrShape pins the `binop; br_if` superinstruction: an
// arithmetic result (not a comparison or eqz) consumed directly by a
// conditional branch. The operands come from fused loads, so the binop's
// producers are spans of their own and the binop itself leads the shape.
func TestFuseBinBrShape(t *testing.T) {
	b := wasm.NewModule("bb")
	b.Memory(1, 1)
	f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	f.Block(wasm.BlockEmpty, func() {
		f.I32Const(0).Load(wasm.OpI32Load, 0)
		f.I32Const(4).Load(wasm.OpI32Load, 0)
		f.Op(wasm.OpI32Sub).BrIf(0)
	})
	f.I32Const(7)
	b.ExportFunc("f", f.End())
	cm, err := Compile(b.MustBuild(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cf := &cm.funcs[0]
	found := false
	for pc := 0; pc < len(cf.fused); pc++ {
		if cf.fused[pc].Op != opFBinBr {
			continue
		}
		found = true
		if cf.body[pc].Op != wasm.OpI32Sub {
			t.Errorf("pc %d: fused bin-branch leads with %s, want i32.sub", pc, cf.body[pc].Op)
		}
		if cf.body[pc+1].Op != wasm.OpBrIf {
			t.Errorf("pc %d: fused bin-branch not terminated by br_if", pc)
		}
		if wasm.Opcode(cf.fused[pc].Align) != wasm.OpI32Sub {
			t.Errorf("pc %d: packed inner opcode 0x%02X, want i32.sub", pc, byte(cf.fused[pc].Align))
		}
	}
	if !found {
		t.Fatal("binop; br_if did not fuse to opFBinBr")
	}
	// The binop is the trapping constituent (div/rem shapes): offset 0.
	if off := fusedTrapPC(opFBinBr); off != 0 {
		t.Errorf("fusedTrapPC(opFBinBr) = %d, want 0", off)
	}
	checkFuseInvariants(t, "binbr", cm)

	// The comparison shapes must still win over the generic binop branch:
	// compares are trap-free and keep their dedicated opcode.
	b2 := wasm.NewModule("bb2")
	b2.Memory(1, 1)
	f2 := b2.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	f2.Block(wasm.BlockEmpty, func() {
		f2.I32Const(0).Load(wasm.OpI32Load, 0)
		f2.I32Const(4).Load(wasm.OpI32Load, 0)
		f2.Op(wasm.OpI32LtU).BrIf(0)
	})
	f2.I32Const(7)
	b2.ExportFunc("f", f2.End())
	cm2, err := Compile(b2.MustBuild(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cf2 := &cm2.funcs[0]
	sawCmpBr := false
	for pc := range cf2.fused {
		switch cf2.fused[pc].Op {
		case opFBinBr:
			t.Errorf("pc %d: comparison fused as generic opFBinBr instead of the cmp-branch shape", pc)
		case opFCmpBr:
			sawCmpBr = true
		}
	}
	if !sawCmpBr {
		t.Error("compare; br_if no longer fuses to opFCmpBr")
	}
	checkFuseInvariants(t, "binbr-cmp-priority", cm2)
}
