package interp_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"acctee/internal/interp"
	"acctee/internal/polybench"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// This file pins the flat and fused engines to the structured reference
// engine: the lowering pass (branch sidetable, stack heights, segment
// accounting) and the superinstruction fusion pass must be observationally
// identical — results, traps, InstrCount, weighted Cost, remaining fuel,
// and final memory/global state — on every program.

// obs is everything observable about one execution.
type obs struct {
	res    []uint64
	err    error
	count  uint64
	cost   uint64
	fuel   uint64
	memory []byte
	global []uint64
}

func observe(t *testing.T, m *wasm.Module, cfg interp.Config, entry string, args ...uint64) obs {
	t.Helper()
	vm, err := interp.Instantiate(m, cfg)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := vm.InvokeExport(entry, args...)
	o := obs{
		res:    res,
		err:    err,
		count:  vm.InstrCount(),
		cost:   vm.Cost(),
		fuel:   vm.FuelRemaining(),
		memory: bytes.Clone(vm.Memory()),
	}
	for i := range vm.Module().Globals {
		g, _ := vm.Global(uint32(i))
		o.global = append(o.global, g)
	}
	return o
}

// diffEngines runs entry under all four engines (structured reference,
// flat, fused, register) and requires identical observations; it returns
// the last engine's observation.
func diffEngines(t *testing.T, m *wasm.Module, cfg interp.Config, entry string, args ...uint64) obs {
	t.Helper()
	cfg.Engine = interp.EngineStructured
	ref := observe(t, m, cfg, entry, args...)
	var got obs
	for _, eng := range []struct {
		name   string
		engine interp.Engine
	}{{"flat", interp.EngineFlat}, {"fused", interp.EngineFused}, {"reg", interp.EngineReg}} {
		cfg.Engine = eng.engine
		got = observe(t, m, cfg, entry, args...)

		if (got.err == nil) != (ref.err == nil) || (ref.err != nil && !errors.Is(got.err, ref.err)) {
			t.Errorf("error diverged: %s=%v structured=%v", eng.name, got.err, ref.err)
		}
		if len(got.res) != len(ref.res) {
			t.Errorf("result arity diverged: %s=%v structured=%v", eng.name, got.res, ref.res)
		} else {
			for i := range got.res {
				if got.res[i] != ref.res[i] {
					t.Errorf("result[%d] diverged: %s=%d structured=%d", i, eng.name, got.res[i], ref.res[i])
				}
			}
		}
		if got.count != ref.count {
			t.Errorf("InstrCount diverged: %s=%d structured=%d", eng.name, got.count, ref.count)
		}
		if got.cost != ref.cost {
			t.Errorf("Cost diverged: %s=%d structured=%d", eng.name, got.cost, ref.cost)
		}
		if got.fuel != ref.fuel {
			t.Errorf("FuelRemaining diverged: %s=%d structured=%d", eng.name, got.fuel, ref.fuel)
		}
		if !bytes.Equal(got.memory, ref.memory) {
			t.Errorf("final memory diverged (%s vs structured)", eng.name)
		}
		for i := range ref.global {
			if got.global[i] != ref.global[i] {
				t.Errorf("global %d diverged: %s=%d structured=%d", i, eng.name, got.global[i], ref.global[i])
			}
		}
	}
	return got
}

// TestBranchTargetPrecompilation drives every branch shape the lowering
// pass precompiles through both engines and checks the expected values.
func TestBranchTargetPrecompilation(t *testing.T) {
	cases := []struct {
		name  string
		build func() *wasm.Module
		args  []uint64
		want  uint64
	}{
		{
			// br_table: in-range, edge (last non-default) and default index.
			name: "br_table_edge0",
			build: func() *wasm.Module {
				return buildBrTableModule()
			},
			args: []uint64{0}, want: 10,
		},
		{name: "br_table_edge1", build: buildBrTableModule, args: []uint64{1}, want: 20},
		{name: "br_table_default_first_oob", build: buildBrTableModule, args: []uint64{2}, want: 99},
		{name: "br_table_default_large", build: buildBrTableModule, args: []uint64{0xFFFFFFFF}, want: 99},
		{
			// if without else, both arms of the condition.
			name: "if_no_else_taken",
			build: func() *wasm.Module {
				b := wasm.NewModule("ine")
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				r := f.Local(wasm.I32)
				f.I32Const(5).LocalSet(r)
				f.LocalGet(0)
				f.If(wasm.BlockEmpty, func() {
					f.I32Const(42).LocalSet(r)
				}, nil)
				f.LocalGet(r)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{1}, want: 42,
		},
		{name: "if_no_else_skipped", build: func() *wasm.Module {
			b := wasm.NewModule("ine")
			f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
			r := f.Local(wasm.I32)
			f.I32Const(5).LocalSet(r)
			f.LocalGet(0)
			f.If(wasm.BlockEmpty, func() {
				f.I32Const(42).LocalSet(r)
			}, nil)
			f.LocalGet(r)
			b.ExportFunc("f", f.End())
			return b.MustBuild()
		}, args: []uint64{0}, want: 5},
		{
			// branch with a result value out of nested blocks: the sidetable
			// must copy the label result down to the precomputed height.
			name: "br_value_nested_blocks",
			build: func() *wasm.Module {
				b := wasm.NewModule("bv")
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.Block(wasm.BlockOf(wasm.I32), func() {
					f.I32Const(1000) // clutter below the branch value
					f.Block(wasm.BlockEmpty, func() {
						f.LocalGet(0)
						f.BrIf(0)
						f.I32Const(7)
						f.Br(1) // carries 7 out of both blocks
					})
					f.Op(wasm.OpDrop)
					f.I32Const(3)
				})
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{0}, want: 7,
		},
		{name: "br_value_nested_blocks_other_arm", build: func() *wasm.Module {
			b := wasm.NewModule("bv")
			f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
			f.Block(wasm.BlockOf(wasm.I32), func() {
				f.I32Const(1000)
				f.Block(wasm.BlockEmpty, func() {
					f.LocalGet(0)
					f.BrIf(0)
					f.I32Const(7)
					f.Br(1)
				})
				f.Op(wasm.OpDrop)
				f.I32Const(3)
			})
			b.ExportFunc("f", f.End())
			return b.MustBuild()
		}, args: []uint64{1}, want: 3},
		{
			// branch out of two nested loops from the inner body.
			name: "br_out_of_nested_loops",
			build: func() *wasm.Module {
				b := wasm.NewModule("nl")
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				n := f.Local(wasm.I32)
				f.Block(wasm.BlockEmpty, func() {
					f.Loop(wasm.BlockEmpty, func() { // outer
						f.Loop(wasm.BlockEmpty, func() { // inner
							f.LocalGet(n).I32Const(1).Op(wasm.OpI32Add).LocalSet(n)
							// escape both loops and the block once n == arg
							f.LocalGet(n).LocalGet(0).Op(wasm.OpI32Eq).BrIf(2)
							f.Br(0) // back to inner header
						})
					})
				})
				f.LocalGet(n)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{23}, want: 23,
		},
		{
			// backward branch target: continue the outer loop from the inner.
			name: "continue_outer_loop",
			build: func() *wasm.Module {
				b := wasm.NewModule("co")
				f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
				i := f.Local(wasm.I32)
				total := f.Local(wasm.I32)
				f.Block(wasm.BlockEmpty, func() {
					f.Loop(wasm.BlockEmpty, func() { // outer
						f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalSet(i)
						f.LocalGet(i).I32Const(5).Op(wasm.OpI32GtS).BrIf(1) // done
						f.Loop(wasm.BlockEmpty, func() {                    // inner
							f.LocalGet(total).LocalGet(i).Op(wasm.OpI32Add).LocalSet(total)
							f.Br(1) // continue outer: backward branch across inner
						})
					})
				})
				f.LocalGet(total)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			want: 1 + 2 + 3 + 4 + 5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := diffEngines(t, tc.build(), interp.Config{CostModel: weights.Calibrated()}, "f", tc.args...)
			if o.err != nil {
				t.Fatalf("unexpected trap: %v", o.err)
			}
			if o.res[0] != tc.want {
				t.Errorf("result = %d, want %d", o.res[0], tc.want)
			}
		})
	}
}

func buildBrTableModule() *wasm.Module {
	b := wasm.NewModule("bt")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	r := f.Local(wasm.I32)
	f.I32Const(99).LocalSet(r) // default branch leaves this value
	f.Block(wasm.BlockEmpty, func() {
		f.Block(wasm.BlockEmpty, func() {
			f.Block(wasm.BlockEmpty, func() {
				f.LocalGet(0)
				f.Emit(wasm.Instr{Op: wasm.OpBrTable, Table: []uint32{0, 1, 2}})
			})
			f.I32Const(10).LocalSet(r).Br(1)
		})
		f.I32Const(20).LocalSet(r)
	})
	f.LocalGet(r)
	b.ExportFunc("f", f.End())
	return b.MustBuild()
}

// TestBrToFunctionLevel: a branch whose depth addresses the implicit
// function label acts as a return carrying the result, on both engines.
func TestBrToFunctionLevel(t *testing.T) {
	b := wasm.NewModule("bf")
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f.Block(wasm.BlockEmpty, func() {
		f.I32Const(77)
		f.Br(1) // depth 1 inside one block = the function label
	})
	f.I32Const(1)
	b.ExportFunc("f", f.End())
	o := diffEngines(t, b.MustBuild(), interp.Config{CostModel: weights.Calibrated()}, "f", 0)
	if o.err != nil {
		t.Fatalf("invoke: %v", o.err)
	}
	if o.res[0] != 77 {
		t.Errorf("br-to-function result = %d, want 77", o.res[0])
	}
}

// TestTrapAccountingDifferential traps mid-segment in several ways; the
// batched accounting must roll back to exactly the per-instruction totals.
func TestTrapAccountingDifferential(t *testing.T) {
	cases := []struct {
		name  string
		build func() *wasm.Module
		args  []uint64
		trap  error
	}{
		{
			name: "div_by_zero_mid_block",
			build: func() *wasm.Module {
				b := wasm.NewModule("dz")
				f := b.Func("f", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).I32Const(3).Op(wasm.OpI32Mul)
				f.LocalGet(1).Op(wasm.OpI32DivS)
				f.I32Const(100).Op(wasm.OpI32Add) // suffix that must be rolled back
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{6, 0}, trap: interp.ErrDivByZero,
		},
		{
			name: "oob_store_mid_block",
			build: func() *wasm.Module {
				b := wasm.NewModule("ob")
				b.Memory(1, 1)
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).I32Const(7).Store(wasm.OpI32Store, 0)
				f.I32Const(1).I32Const(2).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{70000}, trap: interp.ErrOutOfBounds,
		},
		{
			name: "trunc_overflow_mid_block",
			build: func() *wasm.Module {
				b := wasm.NewModule("tr")
				f := b.Func("f", []wasm.ValueType{wasm.F64}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).Op(wasm.OpI32TruncF64S)
				f.I32Const(5).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{0x43E0000000000000 /* 2^63 */}, trap: interp.ErrIntOverflow,
		},
		{
			name: "unreachable_after_work",
			build: func() *wasm.Module {
				b := wasm.NewModule("ur")
				f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
				f.I32Const(1).I32Const(2).Op(wasm.OpI32Add).Op(wasm.OpDrop)
				f.Op(wasm.OpUnreachable)
				f.I32Const(9)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			trap: interp.ErrUnreachable,
		},
		{
			name: "trap_inside_callee",
			build: func() *wasm.Module {
				b := wasm.NewModule("tc")
				g := b.Func("g", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				g.I32Const(1).LocalGet(0).Op(wasm.OpI32DivU)
				gi := g.End()
				f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
				f.LocalGet(0).Call(gi)
				f.I32Const(11).Op(wasm.OpI32Add)
				b.ExportFunc("f", f.End())
				return b.MustBuild()
			},
			args: []uint64{0}, trap: interp.ErrDivByZero,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := diffEngines(t, tc.build(), interp.Config{CostModel: weights.Calibrated()}, "f", tc.args...)
			if !errors.Is(o.err, tc.trap) {
				t.Errorf("trap = %v, want %v", o.err, tc.trap)
			}
		})
	}
}

// TestFuelDifferentialSweep runs a branching, calling, memory-touching
// program under every fuel budget from 0 to beyond completion. Each budget
// must trap (or complete) with the same counts, cost and remaining fuel on
// both engines — this exercises the batched-fuel fast path, the
// per-instruction fuel tail, and the trap rollback at every segment offset.
func TestFuelDifferentialSweep(t *testing.T) {
	b := wasm.NewModule("fs")
	b.Memory(1, 2)
	helper := b.Func("h", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	helper.LocalGet(0).I32Const(3).Op(wasm.OpI32Mul)
	hi := helper.End()
	f := b.Func("f", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	acc := f.Local(wasm.I32)
	i := f.Local(wasm.I32)
	f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)}, 1, func() {
		f.LocalGet(acc).LocalGet(i).Call(hi).Op(wasm.OpI32Add).LocalSet(acc)
		f.LocalGet(i).I32Const(1).Op(wasm.OpI32And)
		f.If(wasm.BlockEmpty, func() {
			f.I32Const(16).LocalGet(acc).Store(wasm.OpI32Store, 0)
		}, func() {
			f.I32Const(16).Load(wasm.OpI32Load, 0).Op(wasm.OpDrop)
		})
	})
	f.LocalGet(acc)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()

	// Completion needs ~180 fuel for arg 4; sweep well past it.
	for fuel := uint64(1); fuel < 260; fuel++ {
		cfg := interp.Config{Fuel: fuel, CostModel: weights.Calibrated()}
		diffEngines(t, m, cfg, "f", 4)
	}
}

// TestRandomProgramDifferential generates random structured programs
// (loops, if/else, br_table, calls, memory traffic, i64/f64 arithmetic) and
// requires identical observations from both engines.
func TestRandomProgramDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF1A7))
	for trial := 0; trial < 60; trial++ {
		m := randomFlatProgram(rng)
		arg := uint64(rng.Intn(30))
		cfg := interp.Config{CostModel: weights.Calibrated(), Fuel: 1 << 20}
		diffEngines(t, m, cfg, "main", arg)
	}
}

func randomFlatProgram(rng *rand.Rand) *wasm.Module {
	b := wasm.NewModule("r")
	b.Memory(1, 2)
	helper := b.Func("h", []wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32})
	helper.LocalGet(0).LocalGet(1).Op(wasm.OpI32Xor).I32Const(1).Op(wasm.OpI32Add)
	hi := helper.End()

	f := b.Func("main", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	x := f.Local(wasm.I32)
	f.LocalGet(0).LocalSet(x)
	n := rng.Intn(8) + 3
	for k := 0; k < n; k++ {
		switch rng.Intn(7) {
		case 0:
			f.LocalGet(x).I32Const(int32(rng.Intn(19) + 1)).Op(wasm.OpI32Mul).LocalSet(x)
		case 1:
			i := f.Local(wasm.I32)
			f.ForI32(i, []wasm.Instr{wasm.ConstI32(0)}, []wasm.Instr{wasm.ConstI32(int32(rng.Intn(7)))}, 1, func() {
				f.LocalGet(x).I32Const(3).Op(wasm.OpI32Add).LocalSet(x)
			})
		case 2:
			f.LocalGet(x).I32Const(1).Op(wasm.OpI32And)
			f.If(wasm.BlockEmpty, func() {
				f.LocalGet(x).I32Const(5).Op(wasm.OpI32Add).LocalSet(x)
			}, func() {
				f.LocalGet(x).I32Const(1).Op(wasm.OpI32ShrU).LocalSet(x)
			})
		case 3:
			f.LocalGet(x).I32Const(255).Op(wasm.OpI32And)
			f.LocalGet(x)
			f.Store(wasm.OpI32Store, 64)
			f.LocalGet(x).I32Const(255).Op(wasm.OpI32And)
			f.Load(wasm.OpI32Load, 64)
			f.LocalSet(x)
		case 4:
			f.LocalGet(x).I32Const(int32(rng.Intn(9))).Call(hi).LocalSet(x)
		case 5:
			// br_table over x mod 3 inside nested blocks
			r := f.Local(wasm.I32)
			f.Block(wasm.BlockEmpty, func() {
				f.Block(wasm.BlockEmpty, func() {
					f.Block(wasm.BlockEmpty, func() {
						f.LocalGet(x).I32Const(3).Op(wasm.OpI32RemU)
						f.Emit(wasm.Instr{Op: wasm.OpBrTable, Table: []uint32{0, 1, 2}})
					})
					f.I32Const(2).LocalSet(r).Br(1)
				})
				f.LocalGet(r).I32Const(13).Op(wasm.OpI32Add).LocalSet(r)
			})
			f.LocalGet(x).LocalGet(r).Op(wasm.OpI32Add).LocalSet(x)
		case 6:
			// f64 detour
			f.LocalGet(x).Op(wasm.OpF64ConvertI32U)
			f.F64ConstV(1.5).Op(wasm.OpF64Mul).Op(wasm.OpF64Floor)
			f.Op(wasm.OpI32TruncF64U) // x*1.5 floor always in range
			f.I32Const(0x7FFF).Op(wasm.OpI32And).LocalSet(x)
		}
	}
	f.LocalGet(x)
	b.ExportFunc("main", f.End())
	return b.MustBuild()
}

// TestHostObservationExactness: counters read by a host function mid-call
// and by the grow hook mid-grow must already be settled to the exact
// per-instruction totals (segments are split at every host-visible point).
func TestHostObservationExactness(t *testing.T) {
	build := func() *wasm.Module {
		b := wasm.NewModule("ho")
		b.Memory(1, 4)
		probe := b.ImportFunc("env", "probe", nil, nil)
		f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
		f.I32Const(1).I32Const(2).Op(wasm.OpI32Add).Op(wasm.OpDrop)
		f.Call(probe)
		f.I32Const(3).I32Const(4).Op(wasm.OpI32Mul).Op(wasm.OpDrop)
		f.I32Const(1).Op(wasm.OpMemoryGrow).Op(wasm.OpDrop)
		f.I32Const(7)
		b.ExportFunc("f", f.End())
		return b.MustBuild()
	}
	run := func(engine interp.Engine) (snaps [][2]uint64) {
		cfg := interp.Config{
			Engine:    engine,
			CostModel: weights.Calibrated(),
			Imports: map[string]interp.HostFunc{
				"env.probe": func(vm *interp.VM, args []uint64) ([]uint64, error) {
					snaps = append(snaps, [2]uint64{vm.InstrCount(), vm.Cost()})
					return nil, nil
				},
			},
			GrowHook: func(vm *interp.VM, oldPages, newPages uint32) {
				snaps = append(snaps, [2]uint64{vm.InstrCount(), vm.Cost()})
			},
		}
		vm, err := interp.Instantiate(build(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.InvokeExport("f"); err != nil {
			t.Fatal(err)
		}
		return snaps
	}
	ref := run(interp.EngineStructured)
	for _, engine := range []interp.Engine{interp.EngineFlat, interp.EngineFused, interp.EngineReg} {
		got := run(engine)
		if len(got) != len(ref) {
			t.Fatalf("engine %d: snapshot count diverged: %d vs %d", engine, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Errorf("engine %d: observation %d diverged: got=%v structured=%v", engine, i, got[i], ref[i])
			}
		}
	}
}

// TestHostResultArityChecked: a host function returning a different result
// count than its declared signature is a defined error on both engines, not
// stack corruption.
func TestHostResultArityChecked(t *testing.T) {
	b := wasm.NewModule("ha")
	bad := b.ImportFunc("env", "bad", nil, []wasm.ValueType{wasm.I32})
	f := b.Func("f", nil, []wasm.ValueType{wasm.I32})
	f.Call(bad)
	b.ExportFunc("f", f.End())
	m := b.MustBuild()
	for _, engine := range []interp.Engine{interp.EngineFused, interp.EngineFlat, interp.EngineStructured, interp.EngineReg} {
		vm, err := interp.Instantiate(m, interp.Config{
			Engine: engine,
			Imports: map[string]interp.HostFunc{
				"env.bad": func(vm *interp.VM, args []uint64) ([]uint64, error) {
					return []uint64{1, 2}, nil // declared: one result
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.InvokeExport("f"); err == nil {
			t.Errorf("engine %d: excess host results not rejected", engine)
		}
	}
}

// TestPolybenchDifferential pins engine equivalence on real kernels
// (small problem sizes keep the structured engine affordable).
func TestPolybenchDifferential(t *testing.T) {
	for _, name := range []string{"gemm", "atax", "jacobi-2d", "cholesky"} {
		t.Run(name, func(t *testing.T) {
			k, err := polybench.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := k.Build(8)
			if err != nil {
				t.Fatal(err)
			}
			o := diffEngines(t, m, interp.Config{CostModel: weights.Calibrated()}, "run")
			if o.err != nil {
				t.Fatalf("run: %v", o.err)
			}
		})
	}
}
