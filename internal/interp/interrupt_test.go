package interp_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"acctee/internal/interp"
	"acctee/internal/wasm"
	"acctee/internal/weights"
)

// interruptModule builds a counted loop that calls the host import env.tick
// once per iteration and does a little arithmetic between calls. Host calls
// end accounting segments, so when tick sets the interrupt flag every engine
// observes it at the same next segment leader — the natural deterministic
// trigger for the cross-engine bit-identity test.
func interruptModule() *wasm.Module {
	b := wasm.NewModule("intr")
	tick := b.ImportFunc("env", "tick", nil, nil)
	f := b.Func("run", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	acc := f.Local(wasm.I32)
	i := f.Local(wasm.I32)
	f.ForI32(i,
		[]wasm.Instr{wasm.ConstI32(0)},
		[]wasm.Instr{wasm.WithIdx(wasm.OpLocalGet, 0)},
		1,
		func() {
			f.Call(tick)
			f.LocalGet(acc).I32Const(3).Op(wasm.OpI32Mul).LocalGet(i).Op(wasm.OpI32Add).LocalSet(acc)
		})
	f.LocalGet(acc)
	b.ExportFunc("run", f.End())
	return b.MustBuild()
}

type intrObs struct {
	err               error
	count, cost, fuel uint64
	calls             int
}

// runInterrupted invokes m's "run" export on the given engine with a host
// tick that sets the interrupt flag on its fireAt-th call (0 = pre-set the
// flag before invoking, so not a single instruction may be charged).
func runInterrupted(t *testing.T, m *wasm.Module, eng interp.Engine, fireAt int, iters uint64) intrObs {
	t.Helper()
	var flag atomic.Bool
	calls := 0
	cfg := interp.Config{
		Engine:    eng,
		Fuel:      1 << 20,
		CostModel: weights.Calibrated(),
		Interrupt: &flag,
		Imports: map[string]interp.HostFunc{
			"env.tick": func(vm *interp.VM, args []uint64) ([]uint64, error) {
				calls++
				if calls == fireAt {
					flag.Store(true)
				}
				return nil, nil
			},
		},
	}
	if fireAt == 0 {
		flag.Store(true)
	}
	vm, err := interp.Instantiate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := vm.InvokeExport("run", iters)
	return intrObs{err: rerr, count: vm.InstrCount(), cost: vm.Cost(), fuel: vm.FuelRemaining(), calls: calls}
}

var interruptEngines = []struct {
	name   string
	engine interp.Engine
}{
	{"structured", interp.EngineStructured},
	{"flat", interp.EngineFlat},
	{"fused", interp.EngineFused},
	{"reg", interp.EngineReg},
}

// TestInterruptBitIdenticalAcrossEngines is the acceptance check for
// cooperative cancellation: an interrupted run must charge exactly the work
// done up to the interrupt, bit-identical across all four engines.
func TestInterruptBitIdenticalAcrossEngines(t *testing.T) {
	m := interruptModule()
	for _, fireAt := range []int{1, 5, 50} {
		ref := runInterrupted(t, m, interp.EngineStructured, fireAt, 1000)
		if !errors.Is(ref.err, interp.ErrInterrupted) {
			t.Fatalf("fireAt=%d structured: err=%v, want ErrInterrupted", fireAt, ref.err)
		}
		if ref.count == 0 {
			t.Fatalf("fireAt=%d structured: zero instructions charged before interrupt", fireAt)
		}
		if ref.calls != fireAt {
			t.Errorf("fireAt=%d structured: host ran %d times after flag set, want exactly %d", fireAt, ref.calls, fireAt)
		}
		for _, eng := range interruptEngines[1:] {
			got := runInterrupted(t, m, eng.engine, fireAt, 1000)
			if !errors.Is(got.err, interp.ErrInterrupted) {
				t.Errorf("fireAt=%d %s: err=%v, want ErrInterrupted", fireAt, eng.name, got.err)
			}
			if got.count != ref.count || got.cost != ref.cost || got.fuel != ref.fuel {
				t.Errorf("fireAt=%d %s diverged: count=%d cost=%d fuel=%d, structured count=%d cost=%d fuel=%d",
					fireAt, eng.name, got.count, got.cost, got.fuel, ref.count, ref.cost, ref.fuel)
			}
			if got.calls != fireAt {
				t.Errorf("fireAt=%d %s: host ran %d times, want exactly %d", fireAt, eng.name, got.calls, fireAt)
			}
		}
	}
}

// TestInterruptBeforeEntry pre-sets the flag: the function-entry segment
// leader must observe it before charging anything at all.
func TestInterruptBeforeEntry(t *testing.T) {
	m := interruptModule()
	for _, eng := range interruptEngines {
		got := runInterrupted(t, m, eng.engine, 0, 1000)
		if !errors.Is(got.err, interp.ErrInterrupted) {
			t.Errorf("%s: err=%v, want ErrInterrupted", eng.name, got.err)
		}
		if got.count != 0 || got.cost != 0 {
			t.Errorf("%s: charged count=%d cost=%d before entry, want 0", eng.name, got.count, got.cost)
		}
	}
}

// TestInterruptChargesPrefixOnly: the interrupted counters must be a strict
// prefix of the uninterrupted run's (never over-charged, never negative).
func TestInterruptChargesPrefixOnly(t *testing.T) {
	m := interruptModule()
	for _, eng := range interruptEngines {
		full := runInterrupted(t, m, eng.engine, -1, 1000) // never fires
		if full.err != nil {
			t.Fatalf("%s: uninterrupted run failed: %v", eng.name, full.err)
		}
		cut := runInterrupted(t, m, eng.engine, 5, 1000)
		if !errors.Is(cut.err, interp.ErrInterrupted) {
			t.Fatalf("%s: err=%v, want ErrInterrupted", eng.name, cut.err)
		}
		if cut.count == 0 || cut.count >= full.count {
			t.Errorf("%s: interrupted count=%d not a strict non-empty prefix of full count=%d", eng.name, cut.count, full.count)
		}
		if cut.cost >= full.cost {
			t.Errorf("%s: interrupted cost=%d >= full cost=%d", eng.name, cut.cost, full.cost)
		}
	}
}

// TestInterruptFlagUnboundOnReset: a pooled instance configured with an
// interrupt flag on one Get must not observe it after a Reset without one.
func TestInterruptFlagUnboundOnReset(t *testing.T) {
	m := interruptModule()
	cm, err := interp.Compile(m, interp.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noop := map[string]interp.HostFunc{
		"env.tick": func(vm *interp.VM, args []uint64) ([]uint64, error) { return nil, nil },
	}
	pool, err := cm.NewPool(interp.Config{Imports: noop}, interp.PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var flag atomic.Bool
	flag.Store(true)
	vm, err := pool.Get(interp.Config{Imports: noop, Interrupt: &flag})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.InvokeExport("run", 10); !errors.Is(err, interp.ErrInterrupted) {
		t.Fatalf("interrupt-bound instance: err=%v, want ErrInterrupted", err)
	}
	pool.Put(vm)
	vm, err = pool.Get(interp.Config{Imports: noop}) // no Interrupt: stale flag must be unbound
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.InvokeExport("run", 10); err != nil {
		t.Fatalf("reset instance still interrupted: %v", err)
	}
	pool.Put(vm)
}
