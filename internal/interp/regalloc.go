package interp

import (
	"encoding/binary"
	"fmt"

	"acctee/internal/wasm"
)

// This file is the register engine's compile-time half: a stack-to-register
// allocation pass over the flat IR followed by direct-threaded code
// generation (the runtime half — driver and shared helpers — is regexec.go).
//
// Register allocation is a renaming, not a search: validated wasm has a
// static operand-stack height before every instruction (preH, recorded by
// lower()), so every stack slot at height h gets the fixed home register
// numLoc+h in the frame's flat []uint64, right after the locals. Locals are
// registers 0..numLoc-1. With every value at a known register there is no
// runtime stack pointer at all.
//
// On top of the renaming the pass compiles whole *statements*: the run of
// instructions from one canonical point to the next sink (local/global set,
// store, conditional branch, drop) becomes a single closure. Producers and
// pure operators do not execute at their own pcs; they fold into nested
// evaluator closures (regEval) hanging off the statement's commit point, so
// a 15-instruction address-arithmetic + load + multiply + store chain costs
// one driver dispatch and its intermediate values never touch the home
// registers. This is strictly wider than the fused tier's superinstruction
// shapes, which cap at a handful of constituents and cannot carry values
// through arbitrary tree positions.
//
// Between statements the canonical invariant holds: every live operand-stack
// slot is materialised in its home register. Statements never cross a
// segment leader (the only possible branch targets), so the leader-batched
// accounting charge and the fuel-shortfall deoptimisation — which
// reinterprets the original body against the home window — stay valid.
//
// Trap exactness inside a statement uses a first-fault-wins latch
// (vm.regFault): a trapping node (load out of bounds, div/rem, float→int
// trunc) records the error and its original body pc and sets the latch;
// later effectful nodes in the same statement see it and skip their side
// effects (preserving MemCost order and totals); the statement's commit
// point converts the latch into the driver's regTrapRet, which performs the
// same suffix rollback as the flat engine. Accounting is bit-identical by
// construction:
//   - segment leaders (flat[pc].segCnt != 0) get their closure wrapped with
//     the same block-batched fuel/cost/InstrCount charge, reading the same
//     per-fingerprint segCost tables;
//   - a fuel shortfall deoptimises to the shared per-instruction tail
//     (execFuelTail) over the original body;
//   - traps report the trapping constituent's original body pc through
//     vm.regTrapPC and the driver performs the same suffix rollback.

// regEval evaluates one expression subtree and returns its value. Trapping
// evaluators set the vm.regFault latch instead of returning an error.
type regEval func(vm *VM, fr []uint64) uint64

// regVoid is one materialisation step run before a statement's commit.
type regVoid func(vm *VM, fr []uint64)

type vkind uint8

const (
	vConst vkind = iota // compile-time constant
	vReg                // register-file slot (local or home register)
	vEval               // deferred expression tree
)

// vnode is one virtual operand-stack entry during statement simulation.
type vnode struct {
	kind vkind
	c    uint64
	reg  int
	eval regEval
	// cmp records the top-level operation when the tree is an i32 compare
	// or an eqz, so a consuming conditional branch can test the relation
	// directly instead of materialising a 0/1 value.
	cmp *cmpMeta
}

// cmpMeta is the branch-foldable view of a compare/eqz node.
type cmpMeta struct {
	op   wasm.Opcode
	a, b vnode // b unused for eqz
}

// regEdge is a precompiled taken-branch edge in register space: copy the n
// label results down from src to dst, then continue at target (or exit).
type regEdge struct {
	target int
	src    int
	dst    int
	n      int
	exit   bool // target == len(body): function return via branch
}

// take performs the taken-edge transfer and returns the next closure index.
func (e *regEdge) take(vm *VM, fr []uint64) int {
	if e.n > 0 {
		copy(fr[e.dst:e.dst+e.n], fr[e.src:e.src+e.n])
	}
	if e.exit {
		if e.n > 0 {
			vm.regRet = fr[e.dst]
		}
		return regDone
	}
	return e.target
}

// regLowering is the per-function code generation state.
type regLowering struct {
	cm     *CompiledModule // for pre-resolving residual-call descriptors
	cf     *compiledFunc
	fi     int // defined-function index (cost-table lookup in closures)
	numLoc int
	ops    []regFn
	spec   []bool
	wid    []int32
}

// regLower builds the register-form artifact for compiled function fi.
// It must run after lower() (preH/preDead, flat sidetable), the inlining
// pass and finalizeCalls (the call closures specialise on the fInl*/fCall*/
// fICSite descriptors), and fuse() (RegStats compares statement widths
// against the fused stream).
func regLower(cm *CompiledModule, fi int) {
	cf := &cm.funcs[fi]
	rl := &regLowering{cm: cm, cf: cf, fi: fi, numLoc: cf.numLoc}
	n := len(cf.body)
	rl.ops = make([]regFn, n)
	rl.spec = make([]bool, n)
	rl.wid = make([]int32, n)
	for pc := 0; pc < n; {
		w := rl.emit(pc)
		rl.wid[pc] = int32(w)
		for q := pc + 1; q < pc+w; q++ {
			rl.ops[q] = regInteriorFn(q)
		}
		if cnt := cf.flat[pc].segCnt; cnt != 0 {
			rl.ops[pc] = rl.wrapLeader(pc, rl.ops[pc], cnt)
		}
		pc += w
	}
	cf.reg = &regCode{ops: rl.ops, spec: rl.spec, wid: rl.wid, regs: cf.numLoc + cf.maxStack}
}

// home returns the register index of the operand-stack slot at height h.
func (rl *regLowering) home(h int32) int { return rl.numLoc + int(h) }

// wrapLeader prefixes a closure with the segment's batched accounting
// charge: the same fuel check (with per-instruction deopt on shortfall),
// instruction count and per-fingerprint cost sum the flat engine applies at
// segment leaders. At a leader every live stack value is in its home
// register, so the deopt tail runs the original body against the frame's
// home window directly.
func (rl *regLowering) wrapLeader(pc int, inner regFn, cnt int32) regFn {
	n := uint64(cnt)
	numLoc := rl.numLoc
	sp := int(rl.cf.preH[pc])
	body := rl.cf.body
	fi := rl.fi
	return func(vm *VM, fr []uint64) int {
		// Cooperative cancellation, polled before the charge: nothing of
		// this segment has run, so accounting is already exact and the
		// driver must not roll back (regErrRet, not regTrapRet).
		if vm.intr != nil && vm.intr.Load() {
			vm.regErr = ErrInterrupted
			return regErrRet
		}
		if vm.fuelLimited && vm.fuel < n {
			// The full frame doubles as the locals array: inlined callee
			// bodies address their locals at shifted indices >= numLoc.
			vm.regErr = vm.execFuelTail(body, fr, fr[numLoc:], sp, pc)
			return regErrRet
		}
		vm.instrCount += n
		if vm.fuelLimited {
			vm.fuel -= n
		}
		if vm.cost != nil {
			vm.costAcc += vm.costs[fi].segCost[pc]
		}
		return inner(vm, fr)
	}
}

// regInteriorFn guards a statement-interior pc. It can never be dispatched
// (statements never cross segment leaders, the only possible jump targets);
// reaching one means a lowering bug, reported loudly instead of corrupting.
func regInteriorFn(pc int) regFn {
	return func(vm *VM, fr []uint64) int {
		vm.regErr = fmt.Errorf("interp: internal: jump into register statement interior at pc %d", pc)
		return regErrRet
	}
}

// regDeadFn guards a statically unreachable pc (preDead).
func regDeadFn(pc int) regFn {
	return func(vm *VM, fr []uint64) int {
		vm.regErr = fmt.Errorf("interp: internal: register engine entered dead code at pc %d", pc)
		return regErrRet
	}
}

// regTrapAlways is an instruction whose operands prove it traps on every
// execution (e.g. a constant-folded division by zero).
func regTrapAlways(err error, trapPC int) regFn {
	tp := int32(trapPC)
	return func(vm *VM, fr []uint64) int {
		vm.regErr = err
		vm.regTrapPC = tp
		return regTrapRet
	}
}

// regProducer classifies a pure value producer (local.get / const).
func regProducer(in *wasm.Instr) (vnode, bool) {
	switch in.Op {
	case wasm.OpLocalGet:
		return vnode{kind: vReg, reg: int(in.Idx)}, true
	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		return vnode{kind: vConst, c: in.U64}, true
	}
	return vnode{}, false
}

// regBinLike reports whether op is a two-operand numeric/compare
// instruction (executable through applyBin).
func regBinLike(op wasm.Opcode) bool {
	if op.IsMemAccess() {
		return false
	}
	pop, push, ok := op.StackEffect()
	return ok && pop == 2 && push == 1
}

// regUnLike reports whether op is a one-operand numeric/conversion
// instruction (executable through applyUn).
func regUnLike(op wasm.Opcode) bool {
	switch op {
	case wasm.OpLocalTee, wasm.OpMemoryGrow:
		return false
	}
	if op.IsMemAccess() {
		return false
	}
	pop, push, ok := op.StackEffect()
	return ok && pop == 1 && push == 1
}

// stmtOp reports whether op participates in statement simulation (as a
// producer, operator or sink). Everything else — control flow, calls,
// memory.grow — gets a dedicated single-instruction closure.
func stmtOp(op wasm.Opcode) bool {
	switch op {
	case wasm.OpLocalGet, wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const,
		wasm.OpGlobalGet, wasm.OpMemorySize, wasm.OpLocalTee, wasm.OpSelect, wasm.OpDrop,
		wasm.OpLocalSet, wasm.OpGlobalSet, wasm.OpBrIf, wasm.OpIf:
		return true
	}
	if op.IsLoad() || op.IsStore() {
		return true
	}
	return regBinLike(op) || regUnLike(op)
}

// edge precompiles a taken-branch edge. hAfter is the static stack height
// after the branch pops its condition (the label results sit just below it).
func (rl *regLowering) edge(t flatTarget, hAfter int32) regEdge {
	return regEdge{
		target: int(t.pc),
		src:    rl.home(hAfter - t.arity),
		dst:    rl.home(t.height),
		n:      int(t.arity),
		exit:   int(t.pc) == len(rl.cf.body),
	}
}

// emit generates the closure for the statement starting at pc and returns
// its width in original instructions. Interior pcs are filled by the
// caller.
func (rl *regLowering) emit(pc int) int {
	cf := rl.cf
	if cf.preDead[pc] {
		rl.ops[pc] = regDeadFn(pc)
		return 1
	}
	if stmtOp(cf.body[pc].Op) {
		return rl.emitStmt(pc)
	}
	return rl.emitSingle(pc, cf.preH[pc])
}

// ---------------------------------------------------------------------------
// statement simulation

// stmtState carries the per-statement simulation bookkeeping.
type stmtState struct {
	rl      *regLowering
	pend    []vnode // virtual entries created during this walk (stack top)
	h       int32   // current virtual stack height
	fault   bool    // some node in the statement can set the fault latch
	generic int     // nodes dispatching through applyBin/applyUn/fastLoad
}

// pop removes the top virtual entry; below the walk's own pushes it
// synthesises a home-register leaf (the canonical invariant guarantees the
// value is there).
func (s *stmtState) pop() vnode {
	if n := len(s.pend); n > 0 {
		v := s.pend[n-1]
		s.pend = s.pend[:n-1]
		s.h--
		return v
	}
	s.h--
	return vnode{kind: vReg, reg: s.rl.home(s.h)}
}

func (s *stmtState) push(v vnode) {
	s.pend = append(s.pend, v)
	s.h++
}

// flush materialises every pending entry into its home register, in push
// (program) order, and empties the pending stack. Leaves already resident
// at their home are skipped.
func (s *stmtState) flush() []regVoid {
	base := int(s.h) - len(s.pend)
	var fns []regVoid
	for i, v := range s.pend {
		d := s.rl.home(int32(base + i))
		switch v.kind {
		case vConst:
			c := v.c
			fns = append(fns, func(vm *VM, fr []uint64) { fr[d] = c })
		case vReg:
			if v.reg == d {
				continue
			}
			r := v.reg
			fns = append(fns, func(vm *VM, fr []uint64) { fr[d] = fr[r] })
		case vEval:
			e := v.eval
			fns = append(fns, func(vm *VM, fr []uint64) { fr[d] = e(vm, fr) })
		}
	}
	s.pend = s.pend[:0]
	return fns
}

// seal composes the materialisation prefix with a commit closure.
func seal(pre []regVoid, commit regFn) regFn {
	switch len(pre) {
	case 0:
		return commit
	case 1:
		p := pre[0]
		return func(vm *VM, fr []uint64) int {
			p(vm, fr)
			return commit(vm, fr)
		}
	default:
		return func(vm *VM, fr []uint64) int {
			for _, p := range pre {
				p(vm, fr)
			}
			return commit(vm, fr)
		}
	}
}

// evalOf lowers a vnode to an evaluator closure.
func evalOf(v vnode) regEval {
	switch v.kind {
	case vConst:
		c := v.c
		return func(vm *VM, fr []uint64) uint64 { return c }
	case vReg:
		r := v.reg
		return func(vm *VM, fr []uint64) uint64 { return fr[r] }
	}
	return v.eval
}

// emitStmt simulates the operand stack from start until a sink or a
// boundary (segment leader, control instruction, statement size cap) and
// emits one closure covering the whole run.
func (rl *regLowering) emitStmt(start int) int {
	cf := rl.cf
	body := cf.body
	s := &stmtState{rl: rl, h: cf.preH[start]}
	const maxStmt = 96
	pc := start

	for pc < len(body) {
		if pc > start && (cf.flat[pc].segCnt != 0 || pc-start >= maxStmt) {
			break
		}
		in := &body[pc]
		op := in.Op
		if v, ok := regProducer(in); ok {
			s.push(v)
			pc++
			continue
		}
		switch op {
		case wasm.OpGlobalGet:
			g := int(in.Idx)
			s.push(vnode{kind: vEval, eval: func(vm *VM, fr []uint64) uint64 { return vm.globals[g] }})
			pc++
			continue
		case wasm.OpMemorySize:
			s.push(vnode{kind: vEval, eval: func(vm *VM, fr []uint64) uint64 {
				return uint64(uint32(len(vm.memory) / wasm.PageSize))
			}})
			pc++
			continue
		case wasm.OpLocalTee:
			a := s.pop()
			l := int(in.Idx)
			ae := evalOf(a)
			s.push(vnode{kind: vEval, eval: func(vm *VM, fr []uint64) uint64 {
				v := ae(vm, fr)
				fr[l] = v
				return v
			}})
			pc++
			continue
		case wasm.OpSelect:
			c := s.pop()
			b := s.pop()
			a := s.pop()
			ae, be, ce := evalOf(a), evalOf(b), evalOf(c)
			s.push(vnode{kind: vEval, eval: func(vm *VM, fr []uint64) uint64 {
				x := ae(vm, fr)
				y := be(vm, fr)
				if ce(vm, fr) != 0 {
					return x
				}
				return y
			}})
			pc++
			continue
		case wasm.OpDrop:
			v := s.pop()
			rl.sealStmt(start, s, rl.dropCommit(v, s, pc+1))
			return pc + 1 - start
		case wasm.OpLocalSet:
			v := s.pop()
			rl.sealStmt(start, s, rl.setCommit(v, int(in.Idx), s, pc+1))
			return pc + 1 - start
		case wasm.OpGlobalSet:
			v := s.pop()
			rl.sealStmt(start, s, rl.globalSetCommit(v, int(in.Idx), s, pc+1))
			return pc + 1 - start
		case wasm.OpBrIf:
			cond := s.pop()
			fl := &cf.flat[pc]
			e := rl.edge(flatTarget{pc: fl.target, height: fl.height, arity: fl.arity}, s.h)
			rl.sealStmt(start, s, rl.branchCommit(cond, e, false, s, pc+1))
			return pc + 1 - start
		case wasm.OpIf:
			cond := s.pop()
			e := regEdge{target: int(cf.flat[pc].target)}
			rl.sealStmt(start, s, rl.branchCommit(cond, e, true, s, pc+1))
			return pc + 1 - start
		}
		switch {
		case op == wasm.OpCall && cf.flat[pc].flags&fInlEnter != 0:
			// Inlined-call marker as a statement sink: the preceding
			// argument expressions flush to their homes (the callee's
			// param slots) and the marker's own work — depth bump, zero
			// the callee's non-param locals — rides in the commit, saving
			// a dispatch per inlined call. A marker that is itself a
			// segment leader (possible branch target) never reaches here;
			// the loop breaks at leaders and emitSingle covers it.
			fl := &cf.flat[pc]
			zbase := rl.home(s.h)
			nz := int(fl.arity)
			cpc := int32(pc)
			next := pc + 1
			rl.sealStmt(start, s, func(vm *VM, fr []uint64) int {
				vm.depth++
				if vm.depth > vm.maxDepth {
					vm.regErr = ErrCallStackExhausted
					vm.regTrapPC = cpc
					return regTrapRet
				}
				clear(fr[zbase : zbase+nz])
				return next
			})
			return pc + 1 - start
		case op == wasm.OpEnd && cf.flat[pc].flags&fInlEnd != 0:
			// Inlined-callee end as a statement sink: commit the result
			// expression straight to the caller's receiving register
			// (skipping the callee-top home entirely) and drop the
			// logical depth.
			fl := &cf.flat[pc]
			next := pc + 1
			var commit regFn
			if fl.arity > 0 {
				commit = rl.inlEndCommit(s.pop(), rl.home(fl.height), s, next)
			} else {
				commit = func(vm *VM, fr []uint64) int { vm.depth--; return next }
			}
			rl.sealStmt(start, s, commit)
			return pc + 1 - start
		case op.IsLoad():
			a := s.pop()
			s.push(rl.loadNode(in, a, pc, s))
			pc++
		case op.IsStore():
			v := s.pop()
			a := s.pop()
			rl.sealStmt(start, s, rl.storeCommit(in, a, v, pc, s, pc+1))
			return pc + 1 - start
		case regBinLike(op):
			b := s.pop()
			a := s.pop()
			s.push(rl.binNode(op, a, b, pc, s))
			pc++
		case regUnLike(op):
			a := s.pop()
			s.push(rl.unNode(op, a, pc, s))
			pc++
		default:
			// Control, call, grow: end the statement before it.
			goto done
		}
	}
done:
	// No sink: materialise everything and fall through to the next closure.
	next := pc
	pre := s.flush()
	var commit regFn
	if s.fault {
		commit = func(vm *VM, fr []uint64) int {
			if vm.regFault {
				vm.regFault = false
				return regTrapRet
			}
			return next
		}
	} else {
		commit = func(vm *VM, fr []uint64) int { return next }
	}
	rl.sealStmtAt(start, seal(pre, commit), s)
	return pc - start
}

// sealStmt flushes the remaining pending entries (everything below the
// sink's operands, in program order) and installs the composed closure. If
// the statement contains fault-capable nodes that may run during the flush,
// the latch is converted to a trap before the commit's side effects.
func (rl *regLowering) sealStmt(start int, s *stmtState, commit regFn) {
	pre := s.flush()
	fn := commit
	if s.fault && len(pre) > 0 {
		inner := commit
		fn = func(vm *VM, fr []uint64) int {
			if vm.regFault {
				vm.regFault = false
				return regTrapRet
			}
			return inner(vm, fr)
		}
	}
	rl.sealStmtAt(start, seal(pre, fn), s)
}

func (rl *regLowering) sealStmtAt(start int, fn regFn, s *stmtState) {
	rl.ops[start] = fn
	rl.spec[start] = s.generic == 0
}

// ---------------------------------------------------------------------------
// commit (sink) builders

// dropCommit evaluates a discarded tree for its effects (MemCost, traps);
// pure operands compile to a plain fallthrough.
func (rl *regLowering) dropCommit(v vnode, s *stmtState, next int) regFn {
	if v.kind != vEval {
		return func(vm *VM, fr []uint64) int { return next }
	}
	e := v.eval
	if !s.fault {
		return func(vm *VM, fr []uint64) int {
			e(vm, fr)
			return next
		}
	}
	return func(vm *VM, fr []uint64) int {
		e(vm, fr)
		if vm.regFault {
			vm.regFault = false
			return regTrapRet
		}
		return next
	}
}

// setCommit writes the operand into local l.
func (rl *regLowering) setCommit(v vnode, l int, s *stmtState, next int) regFn {
	switch v.kind {
	case vConst:
		c := v.c
		return func(vm *VM, fr []uint64) int { fr[l] = c; return next }
	case vReg:
		r := v.reg
		return func(vm *VM, fr []uint64) int { fr[l] = fr[r]; return next }
	}
	e := v.eval
	if !s.fault {
		return func(vm *VM, fr []uint64) int { fr[l] = e(vm, fr); return next }
	}
	return func(vm *VM, fr []uint64) int {
		x := e(vm, fr)
		if vm.regFault {
			vm.regFault = false
			return regTrapRet
		}
		fr[l] = x
		return next
	}
}

// inlEndCommit writes an inlined callee's result into the caller's
// receiving register and drops the logical call depth (the fInlEnd
// statement sink).
func (rl *regLowering) inlEndCommit(v vnode, dst int, s *stmtState, next int) regFn {
	switch v.kind {
	case vConst:
		c := v.c
		return func(vm *VM, fr []uint64) int { fr[dst] = c; vm.depth--; return next }
	case vReg:
		r := v.reg
		return func(vm *VM, fr []uint64) int { fr[dst] = fr[r]; vm.depth--; return next }
	}
	e := v.eval
	if !s.fault {
		return func(vm *VM, fr []uint64) int { fr[dst] = e(vm, fr); vm.depth--; return next }
	}
	return func(vm *VM, fr []uint64) int {
		x := e(vm, fr)
		if vm.regFault {
			vm.regFault = false
			return regTrapRet
		}
		fr[dst] = x
		vm.depth--
		return next
	}
}

// globalSetCommit writes the operand into global g. Globals survive the
// frame, so the fault check always precedes the write.
func (rl *regLowering) globalSetCommit(v vnode, g int, s *stmtState, next int) regFn {
	e := evalOf(v)
	if !s.fault {
		return func(vm *VM, fr []uint64) int {
			vm.globals[g] = e(vm, fr)
			return next
		}
	}
	return func(vm *VM, fr []uint64) int {
		x := e(vm, fr)
		if vm.regFault {
			vm.regFault = false
			return regTrapRet
		}
		vm.globals[g] = x
		return next
	}
}

// branchCommit builds a conditional-branch sink. invert is the if-form
// (jump to the false target when the condition is zero, no result copies);
// br_if takes its edge when the condition is non-zero.
func (rl *regLowering) branchCommit(cond vnode, e regEdge, invert bool, s *stmtState, next int) regFn {
	simple := e.n == 0 && !e.exit
	tgt := e.target
	fc := s.fault
	if cond.kind == vConst {
		if (cond.c != 0) != invert {
			if simple {
				return func(vm *VM, fr []uint64) int { return tgt }
			}
			ed := e
			return func(vm *VM, fr []uint64) int { return ed.take(vm, fr) }
		}
		return func(vm *VM, fr []uint64) int { return next }
	}
	if !fc && cond.cmp != nil {
		if fn := rl.cmpBranch(cond.cmp, e, invert, next); fn != nil {
			return fn
		}
	}
	test := evalOf(cond)
	ed := e
	return func(vm *VM, fr []uint64) int {
		v := test(vm, fr)
		if fc && vm.regFault {
			vm.regFault = false
			return regTrapRet
		}
		if (v != 0) != invert {
			if simple {
				return tgt
			}
			return ed.take(vm, fr)
		}
		return next
	}
}

// cmpBranch inlines a compare/eqz feeding a conditional branch: the
// relation is tested directly, no 0/1 value is ever produced. Returns nil
// when the comparison isn't in the hand-inlined set. Only called for
// fault-free statements, so no latch check is needed.
func (rl *regLowering) cmpBranch(m *cmpMeta, e regEdge, invert bool, next int) regFn {
	simple := e.n == 0 && !e.exit
	tgt := e.target
	ed := e
	var pred func(vm *VM, fr []uint64) bool
	switch m.op {
	case wasm.OpI32Eqz:
		a := evalOf(m.a)
		pred = func(vm *VM, fr []uint64) bool { return uint32(a(vm, fr)) == 0 }
	case wasm.OpI64Eqz:
		a := evalOf(m.a)
		pred = func(vm *VM, fr []uint64) bool { return a(vm, fr) == 0 }
	default:
		pred = i32CmpPred(m.op, m.a, m.b)
	}
	if pred == nil {
		return nil
	}
	if invert {
		return func(vm *VM, fr []uint64) int {
			if !pred(vm, fr) {
				return tgt
			}
			return next
		}
	}
	if simple {
		return func(vm *VM, fr []uint64) int {
			if pred(vm, fr) {
				return tgt
			}
			return next
		}
	}
	return func(vm *VM, fr []uint64) int {
		if pred(vm, fr) {
			return ed.take(vm, fr)
		}
		return next
	}
}

// i32CmpPred builds an inlined predicate for the i32 comparisons over the
// common operand layouts (register/subtree against register/subtree/
// constant). Returns nil for anything outside the hand-inlined set.
func i32CmpPred(op wasm.Opcode, a, b vnode) func(vm *VM, fr []uint64) bool {
	if a.kind == vConst {
		// Normalise the constant to the right by flipping the relation.
		switch op {
		case wasm.OpI32Eq, wasm.OpI32Ne:
		case wasm.OpI32LtS:
			op = wasm.OpI32GtS
		case wasm.OpI32GtS:
			op = wasm.OpI32LtS
		case wasm.OpI32LeS:
			op = wasm.OpI32GeS
		case wasm.OpI32GeS:
			op = wasm.OpI32LeS
		case wasm.OpI32LtU:
			op = wasm.OpI32GtU
		case wasm.OpI32GtU:
			op = wasm.OpI32LtU
		case wasm.OpI32LeU:
			op = wasm.OpI32GeU
		case wasm.OpI32GeU:
			op = wasm.OpI32LeU
		default:
			return nil
		}
		a, b = b, a
	}
	if a.kind == vConst {
		return nil
	}
	if b.kind == vConst {
		c := b.c
		ae := evalOf(a)
		if a.kind == vReg {
			r := a.reg
			switch op {
			case wasm.OpI32Eq:
				u := uint32(c)
				return func(vm *VM, fr []uint64) bool { return uint32(fr[r]) == u }
			case wasm.OpI32Ne:
				u := uint32(c)
				return func(vm *VM, fr []uint64) bool { return uint32(fr[r]) != u }
			case wasm.OpI32LtS:
				sc := int32(uint32(c))
				return func(vm *VM, fr []uint64) bool { return int32(uint32(fr[r])) < sc }
			case wasm.OpI32GtS:
				sc := int32(uint32(c))
				return func(vm *VM, fr []uint64) bool { return int32(uint32(fr[r])) > sc }
			case wasm.OpI32LeS:
				sc := int32(uint32(c))
				return func(vm *VM, fr []uint64) bool { return int32(uint32(fr[r])) <= sc }
			case wasm.OpI32GeS:
				sc := int32(uint32(c))
				return func(vm *VM, fr []uint64) bool { return int32(uint32(fr[r])) >= sc }
			case wasm.OpI32LtU:
				u := uint32(c)
				return func(vm *VM, fr []uint64) bool { return uint32(fr[r]) < u }
			case wasm.OpI32GtU:
				u := uint32(c)
				return func(vm *VM, fr []uint64) bool { return uint32(fr[r]) > u }
			case wasm.OpI32LeU:
				u := uint32(c)
				return func(vm *VM, fr []uint64) bool { return uint32(fr[r]) <= u }
			case wasm.OpI32GeU:
				u := uint32(c)
				return func(vm *VM, fr []uint64) bool { return uint32(fr[r]) >= u }
			}
			return nil
		}
		switch op {
		case wasm.OpI32Eq:
			u := uint32(c)
			return func(vm *VM, fr []uint64) bool { return uint32(ae(vm, fr)) == u }
		case wasm.OpI32Ne:
			u := uint32(c)
			return func(vm *VM, fr []uint64) bool { return uint32(ae(vm, fr)) != u }
		case wasm.OpI32LtS:
			sc := int32(uint32(c))
			return func(vm *VM, fr []uint64) bool { return int32(uint32(ae(vm, fr))) < sc }
		case wasm.OpI32GtS:
			sc := int32(uint32(c))
			return func(vm *VM, fr []uint64) bool { return int32(uint32(ae(vm, fr))) > sc }
		case wasm.OpI32LeS:
			sc := int32(uint32(c))
			return func(vm *VM, fr []uint64) bool { return int32(uint32(ae(vm, fr))) <= sc }
		case wasm.OpI32GeS:
			sc := int32(uint32(c))
			return func(vm *VM, fr []uint64) bool { return int32(uint32(ae(vm, fr))) >= sc }
		case wasm.OpI32LtU:
			u := uint32(c)
			return func(vm *VM, fr []uint64) bool { return uint32(ae(vm, fr)) < u }
		case wasm.OpI32GeU:
			u := uint32(c)
			return func(vm *VM, fr []uint64) bool { return uint32(ae(vm, fr)) >= u }
		}
		return nil
	}
	if a.kind == vReg && b.kind == vReg {
		ra, rb := a.reg, b.reg
		switch op {
		case wasm.OpI32Eq:
			return func(vm *VM, fr []uint64) bool { return uint32(fr[ra]) == uint32(fr[rb]) }
		case wasm.OpI32Ne:
			return func(vm *VM, fr []uint64) bool { return uint32(fr[ra]) != uint32(fr[rb]) }
		case wasm.OpI32LtS:
			return func(vm *VM, fr []uint64) bool { return int32(uint32(fr[ra])) < int32(uint32(fr[rb])) }
		case wasm.OpI32GtS:
			return func(vm *VM, fr []uint64) bool { return int32(uint32(fr[ra])) > int32(uint32(fr[rb])) }
		case wasm.OpI32LeS:
			return func(vm *VM, fr []uint64) bool { return int32(uint32(fr[ra])) <= int32(uint32(fr[rb])) }
		case wasm.OpI32GeS:
			return func(vm *VM, fr []uint64) bool { return int32(uint32(fr[ra])) >= int32(uint32(fr[rb])) }
		case wasm.OpI32LtU:
			return func(vm *VM, fr []uint64) bool { return uint32(fr[ra]) < uint32(fr[rb]) }
		case wasm.OpI32GeU:
			return func(vm *VM, fr []uint64) bool { return uint32(fr[ra]) >= uint32(fr[rb]) }
		}
		return nil
	}
	ae, be := evalOf(a), evalOf(b)
	switch op {
	case wasm.OpI32Eq:
		return func(vm *VM, fr []uint64) bool { return uint32(ae(vm, fr)) == uint32(be(vm, fr)) }
	case wasm.OpI32Ne:
		return func(vm *VM, fr []uint64) bool { return uint32(ae(vm, fr)) != uint32(be(vm, fr)) }
	case wasm.OpI32LtS:
		return func(vm *VM, fr []uint64) bool { return int32(uint32(ae(vm, fr))) < int32(uint32(be(vm, fr))) }
	case wasm.OpI32GtS:
		return func(vm *VM, fr []uint64) bool { return int32(uint32(ae(vm, fr))) > int32(uint32(be(vm, fr))) }
	case wasm.OpI32LeS:
		return func(vm *VM, fr []uint64) bool { return int32(uint32(ae(vm, fr))) <= int32(uint32(be(vm, fr))) }
	case wasm.OpI32GeS:
		return func(vm *VM, fr []uint64) bool { return int32(uint32(ae(vm, fr))) >= int32(uint32(be(vm, fr))) }
	case wasm.OpI32LtU:
		return func(vm *VM, fr []uint64) bool { return uint32(ae(vm, fr)) < uint32(be(vm, fr)) }
	case wasm.OpI32GeU:
		return func(vm *VM, fr []uint64) bool { return uint32(ae(vm, fr)) >= uint32(be(vm, fr)) }
	}
	return nil
}

// ---------------------------------------------------------------------------
// memory nodes

// storeCommit builds a store sink: evaluate address then value (program
// order), fault-check, one bounds check, MemCost charge, dirty-page
// tracking, word-at-a-time write. Natural-width stores get dedicated arms.
func (rl *regLowering) storeCommit(in *wasm.Instr, a, v vnode, pc int, s *stmtState, next int) regFn {
	width, ok := storeSpec(in.Op)
	if !ok {
		return regTrapAlways(&UnknownOpcodeError{Op: in.Op}, pc)
	}
	tp := int32(pc)
	off := uint64(in.Off)
	fc := s.fault
	ae := evalOf(a)
	ve := evalOf(v)
	if width == 8 {
		return func(vm *VM, fr []uint64) int {
			ad := ae(vm, fr)
			x := ve(vm, fr)
			if fc && vm.regFault {
				vm.regFault = false
				return regTrapRet
			}
			ea := uint64(uint32(ad)) + off
			if ea+8 > uint64(len(vm.memory)) {
				vm.regErr = ErrOutOfBounds
				vm.regTrapPC = tp
				return regTrapRet
			}
			if vm.cost != nil {
				vm.costAcc += vm.cost.MemCost(uint32(ea), 8, true, uint32(len(vm.memory)))
			}
			vm.markDirty(int(ea), 8)
			binary.LittleEndian.PutUint64(vm.memory[ea:], x)
			return next
		}
	}
	if width == 4 {
		return func(vm *VM, fr []uint64) int {
			ad := ae(vm, fr)
			x := ve(vm, fr)
			if fc && vm.regFault {
				vm.regFault = false
				return regTrapRet
			}
			ea := uint64(uint32(ad)) + off
			if ea+4 > uint64(len(vm.memory)) {
				vm.regErr = ErrOutOfBounds
				vm.regTrapPC = tp
				return regTrapRet
			}
			if vm.cost != nil {
				vm.costAcc += vm.cost.MemCost(uint32(ea), 4, true, uint32(len(vm.memory)))
			}
			vm.markDirty(int(ea), 4)
			binary.LittleEndian.PutUint32(vm.memory[ea:], uint32(x))
			return next
		}
	}
	s.generic++
	wd := uint64(width)
	return func(vm *VM, fr []uint64) int {
		ad := ae(vm, fr)
		x := ve(vm, fr)
		if fc && vm.regFault {
			vm.regFault = false
			return regTrapRet
		}
		ea := uint64(uint32(ad)) + off
		if ea+wd > uint64(len(vm.memory)) {
			vm.regErr = ErrOutOfBounds
			vm.regTrapPC = tp
			return regTrapRet
		}
		if vm.cost != nil {
			vm.costAcc += vm.cost.MemCost(uint32(ea), width, true, uint32(len(vm.memory)))
		}
		vm.markDirty(int(ea), int(width))
		fastStore(vm.memory, ea, width, x)
		return next
	}
}

// loadNode builds a memory-load evaluator: fault-latch entry guard,
// effective address, one bounds check, MemCost charge, word-at-a-time
// read. Natural-width loads get dedicated arms.
func (rl *regLowering) loadNode(in *wasm.Instr, a vnode, pc int, s *stmtState) vnode {
	s.fault = true
	width, ext, ok := loadSpec(in.Op)
	if !ok {
		s.generic++
		return vnode{kind: vEval, eval: regFaultEval(&UnknownOpcodeError{Op: in.Op}, pc)}
	}
	tp := int32(pc)
	off := uint64(in.Off)
	ae := evalOf(a)
	if ext == extNone && width == 8 {
		return vnode{kind: vEval, eval: func(vm *VM, fr []uint64) uint64 {
			if vm.regFault {
				return 0
			}
			ea := uint64(uint32(ae(vm, fr))) + off
			if ea+8 > uint64(len(vm.memory)) {
				vm.regFault = true
				vm.regErr = ErrOutOfBounds
				vm.regTrapPC = tp
				return 0
			}
			if vm.cost != nil {
				vm.costAcc += vm.cost.MemCost(uint32(ea), 8, false, uint32(len(vm.memory)))
			}
			return binary.LittleEndian.Uint64(vm.memory[ea:])
		}}
	}
	if ext == extNone && width == 4 {
		return vnode{kind: vEval, eval: func(vm *VM, fr []uint64) uint64 {
			if vm.regFault {
				return 0
			}
			ea := uint64(uint32(ae(vm, fr))) + off
			if ea+4 > uint64(len(vm.memory)) {
				vm.regFault = true
				vm.regErr = ErrOutOfBounds
				vm.regTrapPC = tp
				return 0
			}
			if vm.cost != nil {
				vm.costAcc += vm.cost.MemCost(uint32(ea), 4, false, uint32(len(vm.memory)))
			}
			return uint64(binary.LittleEndian.Uint32(vm.memory[ea:]))
		}}
	}
	s.generic++
	wd := uint64(width)
	return vnode{kind: vEval, eval: func(vm *VM, fr []uint64) uint64 {
		if vm.regFault {
			return 0
		}
		ea := uint64(uint32(ae(vm, fr))) + off
		if ea+wd > uint64(len(vm.memory)) {
			vm.regFault = true
			vm.regErr = ErrOutOfBounds
			vm.regTrapPC = tp
			return 0
		}
		if vm.cost != nil {
			vm.costAcc += vm.cost.MemCost(uint32(ea), width, false, uint32(len(vm.memory)))
		}
		return fastLoad(vm.memory, ea, width, ext)
	}}
}

// regFaultEval is an evaluator that always sets the fault latch (a
// constant-folded trap or an unlowerable instruction).
func regFaultEval(err error, pc int) regEval {
	tp := int32(pc)
	return func(vm *VM, fr []uint64) uint64 {
		if vm.regFault {
			return 0
		}
		vm.regFault = true
		vm.regErr = err
		vm.regTrapPC = tp
		return 0
	}
}

// ---------------------------------------------------------------------------
// operator nodes

// binNode builds the evaluator for a two-operand numeric/compare. The hot
// arms (i32/i64 add/sub/mul and bitwise, the i32 compares, f64/f32
// arithmetic) are hand-inlined over the common operand layouts; constant
// pairs fold at compile time; trapping ops (div/rem) latch the fault;
// everything else dispatches through applyBin. i32 compares additionally
// carry cmpMeta so a consuming branch can inline the relation.
func (rl *regLowering) binNode(op wasm.Opcode, a, b vnode, pc int, s *stmtState) vnode {
	if a.kind == vConst && b.kind == vConst {
		v, err := applyBin(op, a.c, b.c)
		if err != nil {
			s.fault = true
			return vnode{kind: vEval, eval: regFaultEval(err, pc)}
		}
		return vnode{kind: vConst, c: v}
	}
	// Normalise const-on-the-left for commutative ops so the inline arms
	// only need const-right layouts.
	if a.kind == vConst {
		switch op {
		case wasm.OpI32Add, wasm.OpI32Mul, wasm.OpI32And, wasm.OpI32Or, wasm.OpI32Xor,
			wasm.OpI64Add, wasm.OpI64Mul, wasm.OpI64And, wasm.OpI64Or, wasm.OpI64Xor,
			wasm.OpF64Add, wasm.OpF64Mul, wasm.OpF32Add, wasm.OpF32Mul,
			wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI64Eq, wasm.OpI64Ne:
			a, b = b, a
		}
	}
	n := vnode{kind: vEval}
	switch op {
	case wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI32LtS, wasm.OpI32LtU, wasm.OpI32GtS,
		wasm.OpI32GtU, wasm.OpI32LeS, wasm.OpI32LeU, wasm.OpI32GeS, wasm.OpI32GeU:
		n.cmp = &cmpMeta{op: op, a: a, b: b}
	}
	if e := regBinEvalSpec(op, a, b); e != nil {
		n.eval = e
		return n
	}
	ae, be := evalOf(a), evalOf(b)
	if binCanTrap(op) {
		s.fault = true
		s.generic++
		tp := int32(pc)
		n.eval = func(vm *VM, fr []uint64) uint64 {
			x := ae(vm, fr)
			y := be(vm, fr)
			if vm.regFault {
				return 0
			}
			v, err := applyBin(op, x, y)
			if err != nil {
				vm.regFault = true
				vm.regErr = err
				vm.regTrapPC = tp
				return 0
			}
			return v
		}
		return n
	}
	s.generic++
	n.eval = func(vm *VM, fr []uint64) uint64 {
		v, _ := applyBin(op, ae(vm, fr), be(vm, fr))
		return v
	}
	return n
}

// regBinEvalSpec returns a hand-inlined evaluator for the hot binary ops
// over the common operand layouts, or nil. Callers have already folded
// const/const pairs and normalised commutative constants to the right;
// const-left non-commutative ops fall back to the generic path.
func regBinEvalSpec(op wasm.Opcode, a, b vnode) regEval {
	if a.kind == vConst {
		return nil
	}
	if b.kind == vConst {
		c := b.c
		if a.kind == vReg {
			r := a.reg
			switch op {
			case wasm.OpI32Add:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[r]) + u) }
			case wasm.OpI32Sub:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[r]) - u) }
			case wasm.OpI32Mul:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[r]) * u) }
			case wasm.OpI32And:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[r]) & u) }
			case wasm.OpI32Or:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[r]) | u) }
			case wasm.OpI32Xor:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[r]) ^ u) }
			case wasm.OpI32Shl:
				sh := uint32(c) & 31
				return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[r]) << sh) }
			case wasm.OpI32ShrS:
				sh := uint32(c) & 31
				return func(vm *VM, fr []uint64) uint64 { return i32u(int32(uint32(fr[r])) >> sh) }
			case wasm.OpI32ShrU:
				sh := uint32(c) & 31
				return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[r]) >> sh) }
			case wasm.OpI32Eq:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return b2u(uint32(fr[r]) == u) }
			case wasm.OpI32Ne:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return b2u(uint32(fr[r]) != u) }
			case wasm.OpI32LtS:
				sc := int32(uint32(c))
				return func(vm *VM, fr []uint64) uint64 { return b2u(int32(uint32(fr[r])) < sc) }
			case wasm.OpI32LtU:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return b2u(uint32(fr[r]) < u) }
			case wasm.OpI32GtS:
				sc := int32(uint32(c))
				return func(vm *VM, fr []uint64) uint64 { return b2u(int32(uint32(fr[r])) > sc) }
			case wasm.OpI32LeS:
				sc := int32(uint32(c))
				return func(vm *VM, fr []uint64) uint64 { return b2u(int32(uint32(fr[r])) <= sc) }
			case wasm.OpI32GeS:
				sc := int32(uint32(c))
				return func(vm *VM, fr []uint64) uint64 { return b2u(int32(uint32(fr[r])) >= sc) }
			case wasm.OpI32GeU:
				u := uint32(c)
				return func(vm *VM, fr []uint64) uint64 { return b2u(uint32(fr[r]) >= u) }
			case wasm.OpI64Add:
				return func(vm *VM, fr []uint64) uint64 { return fr[r] + c }
			case wasm.OpI64Sub:
				return func(vm *VM, fr []uint64) uint64 { return fr[r] - c }
			case wasm.OpI64Mul:
				return func(vm *VM, fr []uint64) uint64 { return fr[r] * c }
			case wasm.OpF64Add:
				f := uf64(c)
				return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(fr[r]) + f) }
			case wasm.OpF64Sub:
				f := uf64(c)
				return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(fr[r]) - f) }
			case wasm.OpF64Mul:
				f := uf64(c)
				return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(fr[r]) * f) }
			case wasm.OpF64Div:
				f := uf64(c)
				return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(fr[r]) / f) }
			case wasm.OpF32Add:
				f := uf32(c)
				return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(fr[r]) + f) }
			case wasm.OpF32Mul:
				f := uf32(c)
				return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(fr[r]) * f) }
			}
			return nil
		}
		ae := a.eval
		switch op {
		case wasm.OpI32Add:
			u := uint32(c)
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) + u) }
		case wasm.OpI32Sub:
			u := uint32(c)
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) - u) }
		case wasm.OpI32Mul:
			u := uint32(c)
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) * u) }
		case wasm.OpI32And:
			u := uint32(c)
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) & u) }
		case wasm.OpI32Or:
			u := uint32(c)
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) | u) }
		case wasm.OpI32Xor:
			u := uint32(c)
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) ^ u) }
		case wasm.OpI32Shl:
			sh := uint32(c) & 31
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) << sh) }
		case wasm.OpI64Add:
			return func(vm *VM, fr []uint64) uint64 { return ae(vm, fr) + c }
		case wasm.OpI64Mul:
			return func(vm *VM, fr []uint64) uint64 { return ae(vm, fr) * c }
		case wasm.OpF64Add:
			f := uf64(c)
			return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(ae(vm, fr)) + f) }
		case wasm.OpF64Sub:
			f := uf64(c)
			return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(ae(vm, fr)) - f) }
		case wasm.OpF64Mul:
			f := uf64(c)
			return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(ae(vm, fr)) * f) }
		case wasm.OpF64Div:
			f := uf64(c)
			return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(ae(vm, fr)) / f) }
		case wasm.OpF32Add:
			f := uf32(c)
			return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(ae(vm, fr)) + f) }
		case wasm.OpF32Mul:
			f := uf32(c)
			return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(ae(vm, fr)) * f) }
		}
		return nil
	}
	if a.kind == vReg && b.kind == vReg {
		ra, rb := a.reg, b.reg
		switch op {
		case wasm.OpI32Add:
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[ra]) + uint32(fr[rb])) }
		case wasm.OpI32Sub:
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[ra]) - uint32(fr[rb])) }
		case wasm.OpI32Mul:
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[ra]) * uint32(fr[rb])) }
		case wasm.OpI32And:
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[ra]) & uint32(fr[rb])) }
		case wasm.OpI32Or:
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[ra]) | uint32(fr[rb])) }
		case wasm.OpI32Xor:
			return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(fr[ra]) ^ uint32(fr[rb])) }
		case wasm.OpI32Eq:
			return func(vm *VM, fr []uint64) uint64 { return b2u(uint32(fr[ra]) == uint32(fr[rb])) }
		case wasm.OpI32Ne:
			return func(vm *VM, fr []uint64) uint64 { return b2u(uint32(fr[ra]) != uint32(fr[rb])) }
		case wasm.OpI32LtS:
			return func(vm *VM, fr []uint64) uint64 { return b2u(int32(uint32(fr[ra])) < int32(uint32(fr[rb]))) }
		case wasm.OpI32GtS:
			return func(vm *VM, fr []uint64) uint64 { return b2u(int32(uint32(fr[ra])) > int32(uint32(fr[rb]))) }
		case wasm.OpI32LeS:
			return func(vm *VM, fr []uint64) uint64 { return b2u(int32(uint32(fr[ra])) <= int32(uint32(fr[rb]))) }
		case wasm.OpI32GeS:
			return func(vm *VM, fr []uint64) uint64 { return b2u(int32(uint32(fr[ra])) >= int32(uint32(fr[rb]))) }
		case wasm.OpI32LtU:
			return func(vm *VM, fr []uint64) uint64 { return b2u(uint32(fr[ra]) < uint32(fr[rb])) }
		case wasm.OpI32GeU:
			return func(vm *VM, fr []uint64) uint64 { return b2u(uint32(fr[ra]) >= uint32(fr[rb])) }
		case wasm.OpI64Add:
			return func(vm *VM, fr []uint64) uint64 { return fr[ra] + fr[rb] }
		case wasm.OpI64Sub:
			return func(vm *VM, fr []uint64) uint64 { return fr[ra] - fr[rb] }
		case wasm.OpI64Mul:
			return func(vm *VM, fr []uint64) uint64 { return fr[ra] * fr[rb] }
		case wasm.OpF64Add:
			return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(fr[ra]) + uf64(fr[rb])) }
		case wasm.OpF64Sub:
			return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(fr[ra]) - uf64(fr[rb])) }
		case wasm.OpF64Mul:
			return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(fr[ra]) * uf64(fr[rb])) }
		case wasm.OpF64Div:
			return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(fr[ra]) / uf64(fr[rb])) }
		case wasm.OpF32Add:
			return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(fr[ra]) + uf32(fr[rb])) }
		case wasm.OpF32Sub:
			return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(fr[ra]) - uf32(fr[rb])) }
		case wasm.OpF32Mul:
			return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(fr[ra]) * uf32(fr[rb])) }
		case wasm.OpF32Div:
			return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(fr[ra]) / uf32(fr[rb])) }
		}
		return nil
	}
	ae, be := evalOf(a), evalOf(b)
	switch op {
	case wasm.OpI32Add:
		return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) + uint32(be(vm, fr))) }
	case wasm.OpI32Sub:
		return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) - uint32(be(vm, fr))) }
	case wasm.OpI32Mul:
		return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) * uint32(be(vm, fr))) }
	case wasm.OpI32And:
		return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) & uint32(be(vm, fr))) }
	case wasm.OpI32Or:
		return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) | uint32(be(vm, fr))) }
	case wasm.OpI32Xor:
		return func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr)) ^ uint32(be(vm, fr))) }
	case wasm.OpI64Add:
		return func(vm *VM, fr []uint64) uint64 { return ae(vm, fr) + be(vm, fr) }
	case wasm.OpI64Sub:
		return func(vm *VM, fr []uint64) uint64 { return ae(vm, fr) - be(vm, fr) }
	case wasm.OpI64Mul:
		return func(vm *VM, fr []uint64) uint64 { return ae(vm, fr) * be(vm, fr) }
	case wasm.OpF64Add:
		return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(ae(vm, fr)) + uf64(be(vm, fr))) }
	case wasm.OpF64Sub:
		return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(ae(vm, fr)) - uf64(be(vm, fr))) }
	case wasm.OpF64Mul:
		return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(ae(vm, fr)) * uf64(be(vm, fr))) }
	case wasm.OpF64Div:
		return func(vm *VM, fr []uint64) uint64 { return f64u(uf64(ae(vm, fr)) / uf64(be(vm, fr))) }
	case wasm.OpF32Add:
		return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(ae(vm, fr)) + uf32(be(vm, fr))) }
	case wasm.OpF32Mul:
		return func(vm *VM, fr []uint64) uint64 { return f32u(uf32(ae(vm, fr)) * uf32(be(vm, fr))) }
	}
	return nil
}

// unNode builds the evaluator for a one-operand numeric/conversion, with
// the same fold / inline / generic structure as binNode. Eqz carries
// cmpMeta for branch inlining.
func (rl *regLowering) unNode(op wasm.Opcode, a vnode, pc int, s *stmtState) vnode {
	if a.kind == vConst {
		v, err := applyUn(op, a.c)
		if err != nil {
			s.fault = true
			return vnode{kind: vEval, eval: regFaultEval(err, pc)}
		}
		return vnode{kind: vConst, c: v}
	}
	n := vnode{kind: vEval}
	if op == wasm.OpI32Eqz || op == wasm.OpI64Eqz {
		n.cmp = &cmpMeta{op: op, a: a}
	}
	ae := evalOf(a)
	switch op {
	case wasm.OpI32Eqz:
		n.eval = func(vm *VM, fr []uint64) uint64 { return b2u(uint32(ae(vm, fr)) == 0) }
		return n
	case wasm.OpI64Eqz:
		n.eval = func(vm *VM, fr []uint64) uint64 { return b2u(ae(vm, fr) == 0) }
		return n
	case wasm.OpI32WrapI64, wasm.OpI64ExtendI32U:
		n.eval = func(vm *VM, fr []uint64) uint64 { return uint64(uint32(ae(vm, fr))) }
		return n
	case wasm.OpI64ExtendI32S:
		n.eval = func(vm *VM, fr []uint64) uint64 { return uint64(int64(int32(uint32(ae(vm, fr))))) }
		return n
	case wasm.OpF64Neg:
		n.eval = func(vm *VM, fr []uint64) uint64 { return f64u(-uf64(ae(vm, fr))) }
		return n
	case wasm.OpF64ConvertI32S:
		n.eval = func(vm *VM, fr []uint64) uint64 { return f64u(float64(int32(uint32(ae(vm, fr))))) }
		return n
	case wasm.OpI32ReinterpretF, wasm.OpI64ReinterpretF,
		wasm.OpF32ReinterpretI, wasm.OpF64ReinterpretI:
		n.eval = ae
		return n
	}
	if unCanTrap(op) {
		s.fault = true
		s.generic++
		tp := int32(pc)
		n.eval = func(vm *VM, fr []uint64) uint64 {
			x := ae(vm, fr)
			if vm.regFault {
				return 0
			}
			v, err := applyUn(op, x)
			if err != nil {
				vm.regFault = true
				vm.regErr = err
				vm.regTrapPC = tp
				return 0
			}
			return v
		}
		return n
	}
	s.generic++
	n.eval = func(vm *VM, fr []uint64) uint64 {
		v, _ := applyUn(op, ae(vm, fr))
		return v
	}
	return n
}

// ---------------------------------------------------------------------------
// single-instruction closures (control, calls, memory admin)

// emitSingle generates the one-instruction closure for everything outside
// statement simulation: control flow, calls, memory.grow. All are
// dedicated handlers.
func (rl *regLowering) emitSingle(pc int, h int32) int {
	cf := rl.cf
	body := cf.body
	in := &body[pc]
	numLoc := rl.numLoc
	next := pc + 1
	rl.spec[pc] = true

	switch in.Op {
	case wasm.OpUnreachable:
		rl.ops[pc] = regTrapAlways(ErrUnreachable, pc)

	case wasm.OpNop, wasm.OpBlock, wasm.OpLoop:
		rl.ops[pc] = func(vm *VM, fr []uint64) int { return next }

	case wasm.OpEnd:
		if fl := &cf.flat[pc]; fl.flags&fInlEnd != 0 {
			// Exit of an inlined callee body: commit the result from its
			// home down to the caller's operand height, drop the logical
			// depth — a frame return without the frame.
			if fl.arity > 0 {
				dst := rl.home(fl.height)
				src := rl.home(h - 1)
				rl.ops[pc] = func(vm *VM, fr []uint64) int {
					fr[dst] = fr[src]
					vm.depth--
					return next
				}
			} else {
				rl.ops[pc] = func(vm *VM, fr []uint64) int {
					vm.depth--
					return next
				}
			}
		} else if pc == len(body)-1 {
			// Function-final end: deposit the result, exit the driver.
			if cf.nresults > 0 {
				s := rl.home(h - 1)
				rl.ops[pc] = func(vm *VM, fr []uint64) int { vm.regRet = fr[s]; return regDone }
			} else {
				rl.ops[pc] = func(vm *VM, fr []uint64) int { return regDone }
			}
		} else {
			rl.ops[pc] = func(vm *VM, fr []uint64) int { return next }
		}

	case wasm.OpElse:
		// Fallthrough from the then-arm: charge the skipped end inline
		// (the reference engine executes it), then continue after it.
		tgt := int(cf.flat[pc].target)
		epc := int32(pc)
		rl.ops[pc] = func(vm *VM, fr []uint64) int {
			vm.instrCount++
			if vm.fuelLimited {
				if vm.fuel == 0 {
					vm.regErr = ErrFuelExhausted
					vm.regTrapPC = epc
					return regTrapRet
				}
				vm.fuel--
			}
			if vm.cost != nil {
				vm.costAcc += vm.endCost
			}
			return tgt
		}

	case wasm.OpBr:
		fl := &cf.flat[pc]
		e := rl.edge(flatTarget{pc: fl.target, height: fl.height, arity: fl.arity}, h)
		if e.n == 0 && !e.exit {
			tgt := e.target
			rl.ops[pc] = func(vm *VM, fr []uint64) int { return tgt }
		} else {
			rl.ops[pc] = func(vm *VM, fr []uint64) int { return e.take(vm, fr) }
		}

	case wasm.OpBrTable:
		tbl := cf.flat[pc].table
		edges := make([]regEdge, len(tbl))
		for i, t := range tbl {
			edges[i] = rl.edge(t, h-1)
		}
		c := rl.home(h - 1)
		rl.ops[pc] = func(vm *VM, fr []uint64) int {
			j := int(uint32(fr[c]))
			if j >= len(edges)-1 {
				j = len(edges) - 1
			}
			return edges[j].take(vm, fr)
		}

	case wasm.OpReturn:
		if cf.nresults > 0 {
			s := rl.home(h - 1)
			rl.ops[pc] = func(vm *VM, fr []uint64) int { vm.regRet = fr[s]; return regDone }
		} else {
			rl.ops[pc] = func(vm *VM, fr []uint64) int { return regDone }
		}

	case wasm.OpCall:
		fl := &cf.flat[pc]
		cpc := int32(pc)
		switch {
		case fl.flags&fInlEnter != 0:
			// Inlined call marker: the op's charge rode on the segment;
			// bump the logical depth (so call-stack exhaustion traps
			// exactly where a real call would) and zero the callee's
			// non-param local registers.
			zbase := rl.home(h)
			nz := int(fl.arity)
			rl.ops[pc] = func(vm *VM, fr []uint64) int {
				vm.depth++
				if vm.depth > vm.maxDepth {
					vm.regErr = ErrCallStackExhausted
					vm.regTrapPC = cpc
					return regTrapRet
				}
				clear(fr[zbase : zbase+nz])
				return next
			}
		case fl.flags&fCallDef != 0:
			// Residual call to a defined function: everything the generic
			// path derives per call — import compare, function lookup,
			// frame size, result commit — is resolved here, once.
			di := int(fl.target)
			ce := &rl.cm.funcs[di]
			fsize := ce.numLoc + ce.maxStack
			np, loc := ce.nparams, ce.numLoc
			argBase := rl.home(h) - np
			if ce.nresults > 0 {
				rl.ops[pc] = func(vm *VM, fr []uint64) int {
					nf := vm.getFrame(fsize, np, loc)
					copy(nf, fr[argBase:argBase+np])
					res, err := vm.execReg(ce, di, nf)
					if err != nil {
						vm.regErr = err
						vm.regTrapPC = cpc
						return regTrapRet
					}
					fr[argBase] = res
					return next
				}
			} else {
				rl.ops[pc] = func(vm *VM, fr []uint64) int {
					nf := vm.getFrame(fsize, np, loc)
					copy(nf, fr[argBase:argBase+np])
					if _, err := vm.execReg(ce, di, nf); err != nil {
						vm.regErr = err
						vm.regTrapPC = cpc
						return regTrapRet
					}
					return next
				}
			}
		case fl.flags&fCallHost != 0:
			hidx := uint32(fl.target)
			sp := int(h)
			rl.ops[pc] = func(vm *VM, fr []uint64) int {
				if _, err := vm.invokeHost(hidx, fr[numLoc:], sp); err != nil {
					vm.regErr = err
					vm.regTrapPC = cpc
					return regTrapRet
				}
				return next
			}
		default:
			// LegacyCalls artifact (bench baseline): the generic
			// pre-optimization path.
			fidx := in.Idx
			sp := int(h)
			rl.ops[pc] = func(vm *VM, fr []uint64) int {
				if _, err := vm.invokeAtRegSlow(fidx, fr[numLoc:], sp); err != nil {
					vm.regErr = err
					vm.regTrapPC = cpc
					return regTrapRet
				}
				return next
			}
		}

	case wasm.OpCallIndirect:
		tidx := in.Idx
		fl := &cf.flat[pc]
		c := rl.home(h - 1)
		sp := int(h - 1)
		cpc := int32(pc)
		if fl.flags&fICSite != 0 {
			site := int(fl.target)
			rl.ops[pc] = func(vm *VM, fr []uint64) int {
				elem := uint32(fr[c])
				var fi int32
				if ic := &vm.icache[site]; ic.elem == int32(elem) {
					// Monomorphic hit: bounds and type check already vouched
					// for this element at this site.
					fi = ic.fidx
				} else {
					if int(elem) >= len(vm.table) {
						vm.regErr = ErrUndefinedElement
						vm.regTrapPC = cpc
						return regTrapRet
					}
					fi = vm.table[elem]
					if fi < 0 {
						vm.regErr = ErrUndefinedElement
						vm.regTrapPC = cpc
						return regTrapRet
					}
					want := vm.module.Types[tidx]
					got, err := vm.module.FuncTypeAt(uint32(fi))
					if err != nil || !got.Equal(want) {
						vm.regErr = ErrIndirectTypeBad
						vm.regTrapPC = cpc
						return regTrapRet
					}
					*ic = icEntry{elem: int32(elem), fidx: fi}
				}
				if _, err := vm.invokeAtReg(uint32(fi), fr[numLoc:], sp); err != nil {
					vm.regErr = err
					vm.regTrapPC = cpc
					return regTrapRet
				}
				return next
			}
		} else {
			// LegacyCalls artifact: full checks on every dispatch.
			rl.ops[pc] = func(vm *VM, fr []uint64) int {
				elem := uint32(fr[c])
				if int(elem) >= len(vm.table) {
					vm.regErr = ErrUndefinedElement
					vm.regTrapPC = cpc
					return regTrapRet
				}
				fi := vm.table[elem]
				if fi < 0 {
					vm.regErr = ErrUndefinedElement
					vm.regTrapPC = cpc
					return regTrapRet
				}
				want := vm.module.Types[tidx]
				got, err := vm.module.FuncTypeAt(uint32(fi))
				if err != nil || !got.Equal(want) {
					vm.regErr = ErrIndirectTypeBad
					vm.regTrapPC = cpc
					return regTrapRet
				}
				if _, err := vm.invokeAtRegSlow(uint32(fi), fr[numLoc:], sp); err != nil {
					vm.regErr = err
					vm.regTrapPC = cpc
					return regTrapRet
				}
				return next
			}
		}

	case wasm.OpMemoryGrow:
		s := rl.home(h - 1)
		rl.ops[pc] = func(vm *VM, fr []uint64) int {
			delta := uint32(fr[s])
			old := uint32(len(vm.memory) / wasm.PageSize)
			if delta > vm.maxPages || old+delta > vm.maxPages {
				fr[s] = uint64(uint32(0xFFFFFFFF))
				return next
			}
			grown := make([]byte, int(old+delta)*wasm.PageSize)
			copy(grown, vm.memory)
			vm.memory = grown
			vm.sizeDirtyMap(len(grown))
			fr[s] = uint64(old)
			if vm.growHook != nil {
				vm.growHook(vm, old, old+delta)
			}
			return next
		}

	default:
		rl.ops[pc] = regTrapAlways(&UnknownOpcodeError{Op: in.Op}, pc)
		rl.spec[pc] = false
	}
	return 1
}

// ---------------------------------------------------------------------------
// stats

// RegStats summarises the register lowering over a compiled artifact.
type RegStats struct {
	// Registers is the total register-file size across all functions
	// (locals plus one home register per operand-stack slot).
	Registers int
	// Instrs is the total original instruction count across all functions.
	Instrs int
	// Specialised is how many of those instructions are covered by
	// statement closures built entirely from dedicated handlers (no
	// runtime dispatch through applyBin/applyUn/fastLoad generic paths).
	Specialised int
	// Spans is the number of multi-instruction statement closures emitted.
	Spans int
	// Widened is the number of statements strictly wider than the fused
	// tier's superinstruction at the same pc — shapes the stack form
	// couldn't express.
	Widened int
}

// RegStats reports how much of the module the register lowering covered
// with dedicated handlers and how its statements compare against the fused
// tier's spans.
func (cm *CompiledModule) RegStats() RegStats {
	var s RegStats
	for i := range cm.funcs {
		cf := &cm.funcs[i]
		if cf.reg == nil {
			continue
		}
		s.Registers += cf.reg.regs
		s.Instrs += len(cf.body)
		for pc := 0; pc < len(cf.body); {
			w := int(cf.reg.wid[pc])
			if w == 0 {
				pc++
				continue
			}
			if cf.reg.spec[pc] {
				s.Specialised += w
			}
			if w > 1 {
				s.Spans++
				fw := fusedWidth(cf.fused[pc].Op)
				if fw == 0 {
					fw = 1
				}
				if w > fw {
					s.Widened++
				}
			}
			pc += w
		}
	}
	return s
}
