package interp

import (
	"fmt"

	"acctee/internal/wasm"
)

// This file is the structured reference engine (EngineStructured): the
// original interpreter over structured control flow, with a runtime label
// stack and per-instruction accounting. It defines the accounting semantics
// the flat engine must reproduce bit-for-bit, and serves as the oracle for
// differential tests and before/after dispatch benchmarks.

// labelRT is a runtime control label.
type labelRT struct {
	headerPC int
	endPC    int
	height   int // operand stack height at label entry
	arity    int
	isLoop   bool
}

// execStructured runs a compiled function body to completion and returns
// its results.
func (vm *VM) execStructured(f *compiledFunc, locals []uint64, stack []uint64) ([]uint64, error) {
	vm.depth++
	defer func() { vm.depth-- }()
	if vm.depth > vm.maxDepth {
		return nil, ErrCallStackExhausted
	}

	// The oracle runs the frozen pre-inline views (sbody/sctrl/sflat): every
	// call is a real frame, so the differential suite checks the inliner's
	// accounting-exactness claim on every run.
	labels := make([]labelRT, 0, 16)
	body := f.sbody
	pc := 0

	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	for pc < len(body) {
		in := &body[pc]
		op := in.Op

		// Poll cooperative cancellation at the same program points the
		// batched engines do — segment leaders (flat sidetable segCnt != 0)
		// — and before charging this instruction, so the abort pc and the
		// counters are bit-identical across engines.
		if vm.intr != nil && f.sflat[pc].segCnt != 0 && vm.intr.Load() {
			return nil, ErrInterrupted
		}

		vm.instrCount++
		if vm.fuelLimited {
			if vm.fuel == 0 {
				return nil, ErrFuelExhausted
			}
			vm.fuel--
		}
		if vm.cost != nil {
			vm.costAcc += vm.cost.InstrCost(op)
		}

		switch op {
		case wasm.OpUnreachable:
			return nil, ErrUnreachable
		case wasm.OpNop:
			// nothing
		case wasm.OpBlock, wasm.OpIf, wasm.OpLoop:
			meta := f.sctrl[pc]
			l := labelRT{
				headerPC: pc,
				endPC:    meta.end,
				height:   len(stack),
				arity:    meta.arity,
				isLoop:   op == wasm.OpLoop,
			}
			if op == wasm.OpIf {
				cond := pop()
				l.height = len(stack)
				if cond == 0 {
					if meta.els >= 0 {
						labels = append(labels, l)
						pc = meta.els + 1
						continue
					}
					// no else: skip past end entirely
					pc = meta.end + 1
					continue
				}
			}
			labels = append(labels, l)
		case wasm.OpElse:
			// Reached by falling off the then-branch: jump to matching end,
			// which pops the label.
			pc = f.sctrl[pc].end
			continue
		case wasm.OpEnd:
			if f.sctrl[pc].end == -1 && len(labels) == 0 {
				// function-final end
				break
			}
			labels = labels[:len(labels)-1]
		case wasm.OpBr:
			var err error
			pc, labels, stack, err = vm.branch(f, int(in.Idx), labels, stack)
			if err != nil {
				return nil, err
			}
			continue
		case wasm.OpBrIf:
			if pop() != 0 {
				var err error
				pc, labels, stack, err = vm.branch(f, int(in.Idx), labels, stack)
				if err != nil {
					return nil, err
				}
				continue
			}
		case wasm.OpBrTable:
			i := uint32(pop())
			var d uint32
			if int(i) < len(in.Table)-1 {
				d = in.Table[i]
			} else {
				d = in.Table[len(in.Table)-1]
			}
			var err error
			pc, labels, stack, err = vm.branch(f, int(d), labels, stack)
			if err != nil {
				return nil, err
			}
			continue
		case wasm.OpReturn:
			if f.nresults > 0 {
				return []uint64{stack[len(stack)-1]}, nil
			}
			return nil, nil
		case wasm.OpCall:
			var err error
			stack, err = vm.callFuncStructured(in.Idx, stack)
			if err != nil {
				return nil, err
			}
		case wasm.OpCallIndirect:
			elem := uint32(pop())
			if int(elem) >= len(vm.table) {
				return nil, ErrUndefinedElement
			}
			fi := vm.table[elem]
			if fi < 0 {
				return nil, ErrUndefinedElement
			}
			want := vm.module.Types[in.Idx]
			got, err := vm.module.FuncTypeAt(uint32(fi))
			if err != nil || !got.Equal(want) {
				return nil, ErrIndirectTypeBad
			}
			stack, err = vm.callFuncStructured(uint32(fi), stack)
			if err != nil {
				return nil, err
			}
		case wasm.OpDrop:
			pop()
		case wasm.OpSelect:
			c := pop()
			b := pop()
			a := pop()
			if c != 0 {
				push(a)
			} else {
				push(b)
			}
		case wasm.OpLocalGet:
			push(locals[in.Idx])
		case wasm.OpLocalSet:
			locals[in.Idx] = pop()
		case wasm.OpLocalTee:
			locals[in.Idx] = stack[len(stack)-1]
		case wasm.OpGlobalGet:
			push(vm.globals[in.Idx])
		case wasm.OpGlobalSet:
			vm.globals[in.Idx] = pop()
		case wasm.OpMemorySize:
			push(uint64(uint32(len(vm.memory) / wasm.PageSize)))
		case wasm.OpMemoryGrow:
			delta := uint32(pop())
			old := uint32(len(vm.memory) / wasm.PageSize)
			if delta > vm.maxPages || old+delta > vm.maxPages {
				push(uint64(uint32(0xFFFFFFFF)))
				break
			}
			grown := make([]byte, int(old+delta)*wasm.PageSize)
			copy(grown, vm.memory)
			vm.memory = grown
			vm.sizeDirtyMap(len(grown))
			push(uint64(old))
			if vm.growHook != nil {
				vm.growHook(vm, old, old+delta)
			}
		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			push(in.U64)

		default:
			var err error
			stack, err = vm.numeric(in, stack)
			if err != nil {
				return nil, err
			}
		}

		if op == wasm.OpEnd && f.sctrl[pc].end == -1 && len(labels) == 0 {
			break
		}
		pc++
	}

	if f.nresults > 0 {
		if len(stack) == 0 {
			return nil, ErrUnreachable
		}
		return []uint64{stack[len(stack)-1]}, nil
	}
	return nil, nil
}

// branch performs `br depth` and returns the new pc/labels/stack.
func (vm *VM) branch(f *compiledFunc, depth int, labels []labelRT, stack []uint64) (int, []labelRT, []uint64, error) {
	if depth == len(labels) {
		// The implicit function label: the branch returns, carrying the
		// function results.
		keep := f.nresults
		if keep > 0 {
			copy(stack[0:], stack[len(stack)-keep:])
		}
		return len(f.sbody), labels[:0], stack[:keep], nil
	}
	l := labels[len(labels)-1-depth]
	if l.isLoop {
		// jump back to the first instruction after the loop header; the
		// loop's own label stays.
		labels = labels[:len(labels)-depth]
		stack = stack[:l.height]
		return l.headerPC + 1, labels, stack, nil
	}
	// keep the label's result values
	keep := l.arity
	if keep > 0 {
		copy(stack[l.height:], stack[len(stack)-keep:])
	}
	stack = stack[:l.height+keep]
	labels = labels[:len(labels)-1-depth]
	return l.endPC + 1, labels, stack, nil
}

// callFuncStructured invokes function idx from the structured engine,
// popping args from and pushing results onto the operand stack.
func (vm *VM) callFuncStructured(idx uint32, stack []uint64) ([]uint64, error) {
	nimp := len(vm.hostFns)
	if int(idx) < nimp {
		sig := vm.hostSigs[idx]
		n := len(sig.Params)
		args := make([]uint64, n)
		copy(args, stack[len(stack)-n:])
		stack = stack[:len(stack)-n]
		res, err := vm.hostFns[idx](vm, args)
		if err != nil {
			return stack, err
		}
		if len(res) != len(sig.Results) {
			return stack, fmt.Errorf("interp: host import %d returned %d results, want %d", idx, len(res), len(sig.Results))
		}
		return append(stack, res...), nil
	}
	f := &vm.funcs[int(idx)-nimp]
	locals := make([]uint64, f.numLoc)
	n := f.nparams
	copy(locals, stack[len(stack)-n:])
	stack = stack[:len(stack)-n]
	res, err := vm.execStructured(f, locals, make([]uint64, 0, 32))
	if err != nil {
		return stack, err
	}
	return append(stack, res...), nil
}
